# Storage Tank reproduction — build and verification entry points.

GO ?= go

.PHONY: all build test race vet verify experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: everything must compile, pass vet, and
# run the full suite (including the live-TCP chaos tests) race-clean.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# Regenerate the paper's figures and tables (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/simulate -all

clean:
	$(GO) clean ./...
