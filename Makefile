# Storage Tank reproduction — build and verification entry points.

GO ?= go
TANKLINT ?= bin/tanklint

.PHONY: all build test race vet lint verify bench bench-gate experiments clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint builds tanklint (cmd/tanklint) and runs its six protocol-
# invariant passes — clockhygiene, locksafety, ackdurable,
# traceexhaustive, hotpathalloc, bufown — over the whole module through
# `go vet -vettool`, so results ride the build cache. Exemptions need a
# visible //lint:allow pass(reason) directive; `tanklint help <pass>`
# lists the tree's current exemptions. Add -json for machine output.
lint:
	$(GO) build -o $(TANKLINT) ./cmd/tanklint
	$(GO) vet -vettool=$(TANKLINT) ./...

# verify is the pre-merge gate: everything must compile, pass vet and
# tanklint, and run the full suite (including the live-TCP chaos tests
# and the kill -9 crash-restart durability harness, scalar and
# vectored) race-clean, plus the shard-scaling smoke tier (64 clients,
# 2 authorities must clear 1.3x one) and the replica chaos harness —
# SIGKILL the active lease authority mid-traffic, assert the bounded
# takeover and Theorem 3.1 across the boundary from the JSONL traces —
# explicitly and race-clean. The suite then runs once more under
# -tags tankdebug, where bufpool.Put poisons released buffers (0xDB)
# and double-Put panics with the first Put's stack: dynamic
# cross-validation of what the static bufown pass proves per-path.
verify: lint
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run 'TestCrashRestart' ./internal/rpcnet/
	$(GO) test -race -count=1 -run 'TestShardScaleSmoke' ./internal/shard/
	$(GO) test -race -count=1 -run 'TestLiveReplicaFailoverSIGKILL' ./internal/rpcnet/
	$(GO) test -race -tags tankdebug ./...

# bench runs every benchmark with allocation stats and renders the
# results as BENCH_tier1.json (op/s and ns/op per benchmark; see
# cmd/benchjson).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_tier1.json

# bench-gate regenerates BENCH_tier1.json AND fails (exit 1) if any
# benchmark's allocs/op or B/op regressed more than 5% against the
# checked-in baseline — the alloc regression gate for the zero-copy
# wire codec. One benchmark run feeds both: the old report is snapshot
# to bin/ first, then compared against the fresh numbers.
bench-gate:
	@mkdir -p bin
	cp BENCH_tier1.json bin/bench_baseline.json
	$(GO) test -run=NONE -bench=. -benchmem ./... | $(GO) run ./cmd/benchjson -o BENCH_tier1.json -compare bin/bench_baseline.json

# Regenerate the paper's figures and tables (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/simulate -all

clean:
	$(GO) clean ./...
	rm -f bin/tanklint
