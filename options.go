package storagetank

// This file is the unified construction surface. Historically the repo
// grew three configuration vocabularies — the cluster.Options struct for
// simulated installations, rpcnet's functional options for live nodes,
// and the disk/blockstore option structs underneath both — and a caller
// wiring a tracer or a media store had to know which of the three each
// knob belonged to. The With* options below speak all three dialects:
// each option knows every surface it applies to, so the same
// []Option configures a simulated Cluster (NewClusterWith), a simulated
// sharded installation (NewShardClusterWith), or a live TCP node
// (StartServer / StartDisk / StartClient).

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/replica"
	"repro/internal/rpcnet"
	"repro/internal/server"
	"repro/internal/stats"
)

// Build is the resolved configuration an []Option produces: the same
// knobs projected onto every construction surface at once. Options
// mutate it; the constructors read only the slice relevant to them.
type Build struct {
	// Cluster configures a simulated single-server installation
	// (NewClusterWith).
	Cluster cluster.Options
	// Shard configures a simulated sharded installation
	// (NewShardClusterWith).
	Shard ShardOptions
	// Node accumulates live-node functional options (StartServer,
	// StartDisk, StartClient).
	Node []rpcnet.Option

	// liveDiskService is the service time a live disk node simulates
	// (only when set explicitly: real hardware has real latency, so the
	// simulator's default is not projected onto live nodes).
	liveDiskService time.Duration
}

// Option is one knob in the unified configuration vocabulary. Every
// option documents which surfaces it reaches; options that do not apply
// to the surface being built are silently inert, so one option list can
// be shared between a simulation and its live counterpart.
type Option func(*Build)

// NewBuild returns the default configuration: a 3-client, 2-disk
// single-server installation for the cluster surface,
// DefaultShardOptions for the sharded surface, and no live-node
// options.
func NewBuild() Build {
	return Build{Cluster: cluster.DefaultOptions(), Shard: DefaultShardOptions()}
}

// Resolve applies opts over the defaults. Constructors call this; it is
// exported for callers that need the resolved configuration itself
// (printing τ, sizing a table) without building anything.
func Resolve(opts ...Option) Build {
	b := NewBuild()
	for _, o := range opts {
		o(&b)
	}
	return b
}

// WithSeed seeds all deterministic randomness (scheduler, clock skew,
// network jitter). [sim, shard]
func WithSeed(seed int64) Option {
	return func(b *Build) {
		b.Cluster.Seed = seed
		b.Shard.Seed = seed
	}
}

// WithClients sets the number of clients. [sim, shard]
func WithClients(n int) Option {
	return func(b *Build) {
		b.Cluster.Clients = n
		b.Shard.Clients = n
	}
}

// WithDisks sets the number of SAN disks in a single-server
// installation. [sim]
func WithDisks(n int) Option {
	return func(b *Build) { b.Cluster.Disks = n }
}

// WithShards sets the number of independent lease authorities the
// namespace is partitioned across. [shard]
func WithShards(n int) Option {
	return func(b *Build) { b.Shard.Shards = n }
}

// WithReplicas gives every lease authority a replica group of m
// members (m ≥ 2) negotiating the active role by diskless PaxosLease
// (DESIGN.md §15); m ≤ 1 keeps singleton authorities. Live
// installations declare groups in Topology.ReplicaGroups instead — the
// topology is the address book, so membership must live there. [shard]
func WithReplicas(m int) Option {
	return func(b *Build) { b.Shard.Replicas = m }
}

// WithReplicaLeaseTerm sets the authority-lease term of a replicated
// installation (0 = the default; shorter terms take over faster and
// renew more often). The takeover window after an active replica's
// crash is bounded by term·(1+ε) plus negotiation retries plus the
// grace period. [shard, live server]
func WithReplicaLeaseTerm(d time.Duration) Option {
	return func(b *Build) { b.Shard.ReplicaLeaseTerm = d }
}

// WithPlacement sets the deterministic path-to-shard placement map
// (default: hash over the full path). [shard]
func WithPlacement(p Placement) Option {
	return func(b *Build) { b.Shard.Placement = p }
}

// WithServerService models each lease authority as a single-threaded
// request processor with the given per-request service time (0 = the
// default infinite capacity) — the knob the shard scale benchmark turns
// to make metadata throughput authority-bound. [shard]
func WithServerService(d time.Duration) Option {
	return func(b *Build) { b.Shard.ServerService = d }
}

// WithDisksPerServer sets how many SAN disks each authority of a
// sharded installation owns. [shard]
func WithDisksPerServer(n int) Option {
	return func(b *Build) { b.Shard.DisksPerServer = n }
}

// WithDiskBlocks sets each disk's capacity in 4 KiB blocks.
// [sim, shard, live disk]
func WithDiskBlocks(n uint64) Option {
	return func(b *Build) {
		b.Cluster.DiskBlocks = n
		b.Shard.DiskBlocks = n
	}
}

// WithProtocol sets the lease protocol configuration (τ, ε, phase
// boundaries, retries). [sim, shard, live server, live client]
func WithProtocol(cfg Config) Option {
	return func(b *Build) {
		b.Cluster.Core = cfg
		b.Shard.Core = cfg
	}
}

// WithPolicy selects the lease/recovery/data-path policy.
// [sim, live server, live client]
func WithPolicy(p Policy) Option {
	return func(b *Build) { b.Cluster.Policy = p }
}

// WithFlushInterval enables periodic client write-back (0 = off, the
// default: dirty data then flushes only on demands and phase 4).
// [sim, live client]
func WithFlushInterval(d time.Duration) Option {
	return func(b *Build) { b.Cluster.FlushInterval = d }
}

// WithFlushBatch bounds how many dirty pages one vectored SAN write may
// carry per target disk (0 = the client default; 1 = legacy per-page
// write-back). [sim, live client]
func WithFlushBatch(n int) Option {
	return func(b *Build) { b.Cluster.FlushBatch = n }
}

// WithCacheMaxPages bounds each client's resident cache (0 =
// unbounded). [sim, live client]
func WithCacheMaxPages(n int) Option {
	return func(b *Build) { b.Cluster.CacheMaxPages = n }
}

// WithCacheQuota bounds each client's resident cache in bytes, counted
// after content dedup — pages sharing one content block cost its size
// once (0 = unbounded). Clean pages are evicted LRU beyond the quota;
// dirty pages are pinned until flushed. Composes with
// WithCacheMaxPages: both bounds are enforced. [sim, live client]
func WithCacheQuota(bytes int64) Option {
	return func(b *Build) { b.Cluster.CacheQuota = bytes }
}

// WithPrefetch sets each client's sequential read-ahead window: after
// two consecutive block reads the client issues one vectored SAN read
// for the next n uncached blocks (n ≤ 0 disables read-ahead; the
// default window is 3). [sim, live client]
func WithPrefetch(n int) Option {
	return func(b *Build) {
		if n <= 0 {
			b.Cluster.Prefetch = -1
			return
		}
		b.Cluster.Prefetch = n
	}
}

// WithClockSkew draws per-node clock rates within the pairwise rate
// bound ε when on (the default), or pins every clock to rate 1. [sim]
func WithClockSkew(on bool) Option {
	return func(b *Build) { b.Cluster.ClockSkew = on }
}

// WithDiskService sets the per-operation disk latency a disk simulates
// before replying. A vectored batch pays it once. [sim, shard, live disk]
func WithDiskService(d time.Duration) Option {
	return func(b *Build) {
		b.Cluster.DiskService = d
		b.Shard.DiskService = d
		b.liveDiskService = d
	}
}

// WithoutChecker disables the consistency oracle (benchmarks measuring
// raw protocol cost). [sim, shard]
func WithoutChecker() Option {
	return func(b *Build) {
		b.Cluster.NoChecker = true
		b.Shard.NoChecker = true
	}
}

// WithGracePeriod overrides a restarted server's lock-reassertion
// window. [sim]
func WithGracePeriod(d time.Duration) Option {
	return func(b *Build) { b.Cluster.GracePeriod = d }
}

// WithTracer attaches the lease-lifecycle event bus to every node of
// the installation — phase transitions, renewals, NACKs, steals,
// demands, flushes, fences, vectored-batch disk commits, and transport
// drops land in one totally-ordered stream. [sim, shard, live]
func WithTracer(tr *Tracer) Option {
	return func(b *Build) {
		b.Cluster.Tracer = tr
		b.Shard.Tracer = tr
		b.Node = append(b.Node, rpcnet.WithTracer(tr))
	}
}

// WithMedia backs a live disk node with the given storage (see
// OpenFileMedia for the durable, crash-recovering implementation).
// [live disk]
func WithMedia(m Media) Option {
	return func(b *Build) { b.Node = append(b.Node, rpcnet.WithMedia(m)) }
}

// WithFaults installs runtime-mutable fault-injection plans on a live
// node's transports: ctrl on the control network, san on the SAN
// (either may be nil for a healthy fabric). [live]
func WithFaults(ctrl, san *Faults) Option {
	return func(b *Build) { b.Node = append(b.Node, rpcnet.WithFaults(ctrl, san)) }
}

// WithRegistry supplies the metrics registry a live node's instruments
// live in — share one across every node of an in-process installation
// for a single statistics dump. [live]
func WithRegistry(reg *StatsRegistry) Option {
	return func(b *Build) { b.Node = append(b.Node, rpcnet.WithRegistry(reg)) }
}

// WithLogf installs a printf-style debug logger on a live node's
// transports. [live]
func WithLogf(f func(format string, args ...any)) Option {
	return func(b *Build) { b.Node = append(b.Node, rpcnet.WithLogf(f)) }
}

// WithWireCodec selects the encoding a live node dials with —
// WireBinary (the zero-copy default) or WireGob (the fallback stream).
// Acceptors adopt each dialer's choice, so nodes configured differently
// still interoperate. [live]
func WithWireCodec(c WireCodec) Option {
	return func(b *Build) { b.Node = append(b.Node, rpcnet.WithCodec(c)) }
}

// NewClusterWith builds a simulated single-server installation from the
// unified vocabulary; equivalent to NewCluster over a hand-built
// Options. Nothing runs until its scheduler does (cl.Start registers
// the clients).
func NewClusterWith(opts ...Option) *Cluster {
	b := Resolve(opts...)
	return cluster.New(b.Cluster)
}

// NewShardClusterWith builds a simulated sharded installation from the
// unified vocabulary.
func NewShardClusterWith(opts ...Option) *ShardCluster {
	b := Resolve(opts...)
	return NewShardCluster(b.Shard)
}

// SyncClient is the blocking facade over the event-driven client: plain
// calls returning error, available both from a simulated cluster
// (Cluster.SyncClient) and a live client node (ClientNode.Sync).
type SyncClient = client.SyncClient

// StatsRegistry is the metrics registry nodes record their instruments
// in (counters, distributions; see Cluster.Reg and ServerNode.Reg).
type StatsRegistry = stats.Registry

// NewStatsRegistry creates an empty metrics registry.
func NewStatsRegistry() *StatsRegistry { return stats.NewRegistry() }

// Topology is a live installation's address book: the metadata server's
// control address and each SAN disk's listen address.
type Topology = rpcnet.Topology

// NodeSpec identifies one node within a live topology.
type NodeSpec = rpcnet.NodeSpec

// ServerNode, DiskNode, and ClientNode are the live TCP counterparts of
// the simulated server, disk, and client.
type (
	ServerNode = rpcnet.ServerNode
	DiskNode   = rpcnet.DiskNode
	ClientNode = rpcnet.ClientNode
)

// Loopback returns "127.0.0.1:0" for ephemeral live-node listeners.
func Loopback() string { return rpcnet.Loopback() }

// StartServer launches a live metadata server for the topology in
// spec: it listens for clients on Topo.ServerAddr and dials the disks
// in Topo.Disks. diskCaps lists each disk's capacity in blocks (nil =
// every disk in the topology at the configured WithDiskBlocks size).
func StartServer(spec NodeSpec, diskCaps map[NodeID]uint64, opts ...Option) (*ServerNode, error) {
	b := Resolve(opts...)
	if diskCaps == nil {
		diskCaps = make(map[msg.NodeID]uint64, len(spec.Topo.Disks))
		for id := range spec.Topo.Disks {
			diskCaps[id] = b.Cluster.DiskBlocks
		}
	}
	cfg := server.Config{Core: b.Cluster.Core, Policy: b.Cluster.Policy, Disks: diskCaps}
	// A node listed in a Topology.ReplicaGroups group runs the PaxosLease
	// negotiator (rpcnet fills the rest of the replica config from the
	// group); the option only overrides the lease term.
	if b.Shard.ReplicaLeaseTerm != 0 && spec.Topo.GroupOf(spec.ID) != nil {
		cfg.Replica = &replica.Config{LeaseTerm: b.Shard.ReplicaLeaseTerm}
	}
	return rpcnet.StartServerNode(spec, cfg, b.Node...)
}

// StartDisk launches a live SAN disk node listening on its Topo.Disks
// address. By default it serves at media speed; WithDiskService adds
// simulated per-operation latency, and WithMedia makes it durable.
func StartDisk(spec NodeSpec, opts ...Option) (*DiskNode, error) {
	b := Resolve(opts...)
	cfg := disk.Config{Blocks: b.Cluster.DiskBlocks, ServiceTime: b.liveDiskService}
	return rpcnet.StartDiskNode(spec, cfg, b.Node...)
}

// StartClient launches a live client node: it dials the topology's
// server on the control network and the disks on the SAN, registers,
// and waits for its first lease — the returned node is immediately
// usable. Use node.Sync(timeout) for the blocking call surface.
func StartClient(spec NodeSpec, opts ...Option) (*ClientNode, error) {
	b := Resolve(opts...)
	cfg := client.Config{
		Core: b.Cluster.Core, Policy: b.Cluster.Policy,
		FlushInterval: b.Cluster.FlushInterval,
		CacheMaxPages: b.Cluster.CacheMaxPages,
		CacheQuota:    b.Cluster.CacheQuota,
		FlushBatch:    b.Cluster.FlushBatch,
		Prefetch:      b.Cluster.Prefetch,
	}
	cn, err := rpcnet.StartClientNode(spec, cfg, b.Node...)
	if err != nil {
		return nil, err
	}
	// Register with the server; the first granted epoch marks the node
	// ready. The hook is restored before user code can observe it.
	ready := make(chan struct{})
	cn.Do(func() {
		cn.Client.OnRecovered = func(msg.Epoch) {
			cn.Client.OnRecovered = nil
			close(ready)
		}
		cn.Client.Start()
	})
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		cn.Close()
		return nil, fmt.Errorf("storagetank: client %v got no lease from server %v within 30s",
			spec.ID, spec.Topo.ServerAddr)
	}
	return cn, nil
}
