// Package storagetank is a from-scratch reproduction of "Safe Caching in
// a Distributed File System for Network Attached Storage" (Burns, Rees,
// Long — IPPS 2000): the IBM Storage Tank lease-based safety protocol,
// together with every substrate it needs — a SAN-attached block-storage
// fabric, a metadata/lock server, a write-back caching client, a
// deterministic two-network simulator, a live TCP transport, and the
// comparison baselines (V-style per-object leases, Frangipani-style
// heartbeats, fencing-only recovery, naive lock stealing, NFS polling,
// GFS dlocks).
//
// The package re-exports the pieces a downstream user composes:
//
//   - Cluster / Options: a complete simulated installation (Fig 1) for
//     deterministic experiments and tests.
//   - Config: the protocol parameters (τ, ε, phase boundaries).
//   - Policy and the named baselines for comparative runs.
//   - Experiments: the runners that regenerate every figure and table of
//     the paper's argument (DESIGN.md §4, EXPERIMENTS.md).
//
// For a live deployment, see cmd/tankd and cmd/tankcli, built on
// internal/rpcnet; the protocol code is identical in both worlds.
package storagetank

import (
	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/multiserver"
	"repro/internal/workload"
)

// Config is the lease protocol configuration (τ, ε, phases, retries).
type Config = core.Config

// DefaultConfig returns the protocol parameters used throughout the
// reproduction (τ=30s, ε=5%, phases at 0.50/0.70/0.85τ).
func DefaultConfig() Config { return core.DefaultConfig() }

// Phase is the client's position in its lease period (Fig 4).
type Phase = core.Phase

// The four phases plus the boundary states.
const (
	PhaseNone    = core.PhaseNone
	Phase1Valid  = core.Phase1Valid
	Phase2Renew  = core.Phase2Renewal
	Phase3Quiet  = core.Phase3Suspect
	Phase4Flush  = core.Phase4Flush
	PhaseExpired = core.PhaseExpired
)

// Policy selects the lease/recovery/data-path behaviour of a cluster.
type Policy = baselines.Policy

// The named policies the paper compares against.
var (
	StorageTank  = baselines.StorageTank
	Frangipani   = baselines.Frangipani
	VSystem      = baselines.VSystem
	HonorLocks   = baselines.HonorLocks
	NaiveSteal   = baselines.NaiveSteal
	FenceOnly    = baselines.FenceOnly
	FunctionShip = baselines.FunctionShip
	NFSPoll      = baselines.NFSPoll
	GFSDlock     = baselines.GFSDlock
	AllPolicies  = baselines.All
)

// Cluster is a complete simulated installation: scheduler, rate-skewed
// clocks, control network, SAN, disks, server, clients, and the
// consistency oracle.
type Cluster = cluster.Cluster

// Options configures a Cluster.
type Options = cluster.Options

// DefaultOptions returns a 3-client, 2-disk installation.
func DefaultOptions() Options { return cluster.DefaultOptions() }

// NewCluster builds an installation; nothing runs until its scheduler
// does (cl.Start registers the clients).
func NewCluster(opts Options) *Cluster { return cluster.New(opts) }

// BlockSize is the data block size used throughout (4 KiB).
const BlockSize = cluster.BlockSize

// WorkloadConfig shapes synthetic client activity.
type WorkloadConfig = workload.Config

// DefaultWorkload returns a moderately skewed, read-mostly workload.
func DefaultWorkload() WorkloadConfig { return workload.DefaultConfig() }

// NewWorkloadRunner drives one cluster client with generated load.
func NewWorkloadRunner(cl *Cluster, clientIdx int, cfg WorkloadConfig, seed int64) *workload.Runner {
	return workload.NewRunner(cl, clientIdx, cfg, seed)
}

// PopulateWorkload creates the shared file population for runners.
func PopulateWorkload(cl *Cluster, cfg WorkloadConfig) { workload.Populate(cl, cfg) }

// MultiServer is an installation with a cluster of metadata servers
// (Fig 1), the namespace sharded by path prefix, and one lease per
// (client, server) pair (§4).
type MultiServer = multiserver.Installation

// MultiServerOptions configures a MultiServer installation.
type MultiServerOptions = multiserver.Options

// NewMultiServer builds a server-cluster installation.
func NewMultiServer(opts MultiServerOptions) *MultiServer { return multiserver.New(opts) }

// DefaultMultiServerOptions returns a 2-server, 2-client installation.
func DefaultMultiServerOptions() MultiServerOptions { return multiserver.DefaultOptions() }

// Experiment is one reproducible figure/table runner.
type Experiment = experiments.Experiment

// ExperimentParams scales an experiment run.
type ExperimentParams = experiments.Params

// ExperimentResult is an experiment's rendered table and named metrics.
type ExperimentResult = experiments.Result

// Experiments lists every figure/table runner in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one runner ("F1".."F5", "T1".."T8", "A1".."A2").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
