// Package storagetank is a from-scratch reproduction of "Safe Caching in
// a Distributed File System for Network Attached Storage" (Burns, Rees,
// Long — IPPS 2000): the IBM Storage Tank lease-based safety protocol,
// together with every substrate it needs — a SAN-attached block-storage
// fabric, a metadata/lock server, a write-back caching client, a
// deterministic two-network simulator, a live TCP transport, and the
// comparison baselines (V-style per-object leases, Frangipani-style
// heartbeats, fencing-only recovery, naive lock stealing, NFS polling,
// GFS dlocks).
//
// The package re-exports the pieces a downstream user composes:
//
//   - The unified With* option vocabulary (options.go): one set of
//     knobs that configures a simulated Cluster (NewClusterWith), a
//     simulated sharded server cluster (NewShardClusterWith), and live TCP nodes
//     (StartServer / StartDisk / StartClient) alike.
//   - Cluster: a complete simulated installation (Fig 1) for
//     deterministic experiments and tests.
//   - Config: the protocol parameters (τ, ε, phase boundaries).
//   - Policy and the named baselines for comparative runs.
//   - Experiments: the runners that regenerate every figure and table of
//     the paper's argument (DESIGN.md §4, EXPERIMENTS.md).
//
// For a live deployment, see cmd/tankd and cmd/tankcli, built on
// internal/rpcnet; the protocol code is identical in both worlds.
package storagetank

import (
	"io"

	"repro/internal/baselines"
	"repro/internal/blockstore"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/shard"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Config is the lease protocol configuration (τ, ε, phases, retries).
type Config = core.Config

// DefaultConfig returns the protocol parameters used throughout the
// reproduction (τ=30s, ε=5%, phases at 0.50/0.70/0.85τ).
func DefaultConfig() Config { return core.DefaultConfig() }

// Phase is the client's position in its lease period (Fig 4).
type Phase = core.Phase

// The four phases plus the boundary states.
const (
	PhaseNone    = core.PhaseNone
	Phase1Valid  = core.Phase1Valid
	Phase2Renew  = core.Phase2Renewal
	Phase3Quiet  = core.Phase3Suspect
	Phase4Flush  = core.Phase4Flush
	PhaseExpired = core.PhaseExpired
)

// Policy selects the lease/recovery/data-path behaviour of a cluster.
type Policy = baselines.Policy

// The named policies the paper compares against.
var (
	StorageTank  = baselines.StorageTank
	Frangipani   = baselines.Frangipani
	VSystem      = baselines.VSystem
	HonorLocks   = baselines.HonorLocks
	NaiveSteal   = baselines.NaiveSteal
	FenceOnly    = baselines.FenceOnly
	FunctionShip = baselines.FunctionShip
	NFSPoll      = baselines.NFSPoll
	GFSDlock     = baselines.GFSDlock
	AllPolicies  = baselines.All
)

// Cluster is a complete simulated installation: scheduler, rate-skewed
// clocks, control network, SAN, disks, server, clients, and the
// consistency oracle.
type Cluster = cluster.Cluster

// BlockSize is the data block size used throughout (4 KiB).
const BlockSize = cluster.BlockSize

// Media is the storage a SAN disk serves from: the durable half of the
// paper's safety argument. The in-memory implementation backs the
// simulator; the file-backed implementation (OpenFileMedia) persists
// block data, version stamps, and the fence table across disk-node
// restarts, detects torn writes by per-block CRC32C trailers, and
// journals fence operations so they are fsync-durable before they are
// acknowledged.
type Media = blockstore.Media

// MediaOptions configures a file-backed media store.
type MediaOptions = blockstore.Options

// MediaBlockWrite is one block of a vectored media write (Media.WriteV).
// File-backed media commit a whole batch under one fsync pair.
type MediaBlockWrite = blockstore.BlockWrite

// MediaRecovery reports what a file-backed store's open-time recovery
// pass found (journal records replayed, blocks verified, torn blocks).
type MediaRecovery = blockstore.RecoveryReport

// WireCodec selects the encoding live nodes dial with (DESIGN.md §12).
// The acceptor adopts each dialer's choice, so mixed-codec
// installations interoperate.
type WireCodec = wire.ID

const (
	// WireBinary is the zero-copy fixed-layout codec (the default):
	// length-prefixed frames, bulk page data sent as a scatter-gather
	// tail and received into pooled buffers.
	WireBinary = wire.Binary
	// WireGob is the original encoding/gob stream, kept as a fallback.
	WireGob = wire.Gob
)

// ErrTornBlock marks a read refused because the block's checksum does
// not match its trailer: a write torn by a crash, detected rather than
// served. Test with errors.Is.
var ErrTornBlock = blockstore.ErrTorn

// NewMemMedia returns the in-memory media a disk uses by default.
func NewMemMedia() Media { return blockstore.NewMem() }

// OpenFileMedia creates or recovers a file-backed media store in dir.
// Pass it to a live disk node with rpcnet.WithMedia (or run tankd with
// -data-dir). Inspect the recovery pass with Recovery().
func OpenFileMedia(dir string, opts MediaOptions) (Media, error) {
	return blockstore.Open(dir, opts)
}

// WorkloadConfig shapes synthetic client activity.
type WorkloadConfig = workload.Config

// DefaultWorkload returns a moderately skewed, read-mostly workload.
func DefaultWorkload() WorkloadConfig { return workload.DefaultConfig() }

// NewWorkloadRunner drives one cluster client with generated load.
func NewWorkloadRunner(cl *Cluster, clientIdx int, cfg WorkloadConfig, seed int64) *workload.Runner {
	return workload.NewRunner(cl, clientIdx, cfg, seed)
}

// PopulateWorkload creates the shared file population for runners.
func PopulateWorkload(cl *Cluster, cfg WorkloadConfig) { workload.Populate(cl, cfg) }

// ShardCluster is an installation with a cluster of metadata servers
// (Fig 1): the namespace partitioned across independent lease
// authorities by a deterministic placement map, one lease per
// (client, server) pair (§4), and server-to-server handoff for renames
// that cross authorities (DESIGN.md §14).
type ShardCluster = shard.Cluster

// ShardOptions configures a ShardCluster installation.
type ShardOptions = shard.Options

// NewShardCluster builds a sharded installation.
func NewShardCluster(opts ShardOptions) *ShardCluster { return shard.New(opts) }

// DefaultShardOptions returns a 2-shard, 2-client installation.
func DefaultShardOptions() ShardOptions { return shard.DefaultOptions() }

// Placement deterministically maps a path to the shard that owns it;
// every client and server of an installation must share one.
type Placement = shard.Placement

// HashPlacement is the default placement: FNV-1a over the full path,
// modulo the shard count — total and statistically balanced.
type HashPlacement = shard.Hash

// SubtreePlacement places paths by longest matching directory prefix —
// the administrator-controlled split ("/home on shard 0").
type SubtreePlacement = shard.Subtree

// Tracer is the lease-lifecycle event bus: attach one to a cluster
// (Options.Tracer) or a live node (rpcnet.WithTracer) and every phase
// transition, renewal, keep-alive, NACK, steal, demand, flush, and fence
// lands in one totally-ordered stream.
type Tracer = trace.Tracer

// TraceEvent is one structured lease-lifecycle event.
type TraceEvent = trace.Event

// TraceStream is an ordered slice of events with assertion helpers
// (Filter, Precedes, PhaseSequence).
type TraceStream = trace.Stream

// TraceRing is a bounded in-memory event sink.
type TraceRing = trace.Ring

// NewTracer creates an event bus fanning out to the given sinks.
func NewTracer(sinks ...trace.Sink) *Tracer { return trace.New(sinks...) }

// NewTraceRing creates an in-memory sink retaining the last n events.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// NewTraceJSONL creates a sink writing each event as one JSON line.
func NewTraceJSONL(w io.Writer) trace.Sink { return trace.NewJSONL(w) }

// NewTraceLogf adapts a printf-style logger into a sink — the structured
// replacement for the deprecated rpcnet Transport.SetLogf.
func NewTraceLogf(logf func(format string, args ...any)) trace.Sink {
	return trace.NewLogf(logf)
}

// NodeID identifies a participant (server, client, or disk).
type NodeID = msg.NodeID

// Handle names an open file on a client (returned by SyncClient.Open
// and the Cluster conveniences).
type Handle = msg.Handle

// TraceEventType classifies a trace event.
type TraceEventType = trace.Type

// The lease-lifecycle event taxonomy (DESIGN.md §7).
const (
	TracePhase        = trace.EvPhase
	TraceRenew        = trace.EvRenew
	TraceKeepAlive    = trace.EvKeepAlive
	TraceNACK         = trace.EvNACK
	TraceNACKSent     = trace.EvNACKSent
	TraceStealArmed   = trace.EvStealArmed
	TraceStealFired   = trace.EvStealFired
	TraceDemand       = trace.EvDemand
	TraceDemandRecv   = trace.EvDemandRecv
	TraceDemandFailed = trace.EvDemandFailed
	TraceQuiesce      = trace.EvQuiesce
	TraceFlushStart   = trace.EvFlushStart
	TraceFlushDone    = trace.EvFlushDone
	TraceExpire       = trace.EvExpire
	TraceFence        = trace.EvFence
	TraceRejoin       = trace.EvRejoin
	TraceReassert     = trace.EvReassert
	TraceTransport    = trace.EvTransport
	TraceDisk         = trace.EvDisk
	TraceShardHandoff = trace.EvShardHandoff
	TraceShardInstall = trace.EvShardInstall
	TraceShardDone    = trace.EvShardDone
	TraceShardAbort   = trace.EvShardAbort
)

// The replicated-authority event family (DESIGN.md §15): PaxosLease
// ballots among a shard's replica group, authority-lease grants and
// lapses, and takeover (Note "cold", "grace", or "grace-end").
const (
	TraceReplicaBallotOpen   = trace.EvReplicaBallotOpen
	TraceReplicaPromise      = trace.EvReplicaPromise
	TraceReplicaPropose      = trace.EvReplicaPropose
	TraceReplicaLeaseGranted = trace.EvReplicaLeaseGranted
	TraceReplicaStepdown     = trace.EvReplicaStepdown
	TraceReplicaTakeover     = trace.EvReplicaTakeover
)

// TracePred selects events in TraceStream queries.
type TracePred = trace.Pred

// TraceByType matches events of any of the given types.
func TraceByType(types ...TraceEventType) TracePred { return trace.ByType(types...) }

// TraceByNode matches events emitted at node n.
func TraceByNode(n NodeID) TracePred { return trace.ByNode(n) }

// TraceByPeer matches events about peer p.
func TraceByPeer(p NodeID) TracePred { return trace.ByPeer(p) }

// TraceAnd conjoins predicates.
func TraceAnd(preds ...TracePred) TracePred { return trace.And(preds...) }

// TraceByNote matches events whose Note is exactly note.
func TraceByNote(note string) TracePred { return trace.ByNote(note) }

// TraceByNotePrefix matches events whose Note starts with prefix
// ("drop:" selects every fault-induced transport drop).
func TraceByNotePrefix(prefix string) TracePred { return trace.ByNotePrefix(prefix) }

// Faults is a runtime-mutable fault-injection plan for live TCP
// transports: directed blocks, partitions, isolation, per-link loss and
// latency — the simulator's failure vocabulary on real sockets. Install
// with rpcnet.WithFaults (or tankd's -fault-* flags); injected drops
// appear in traces as EvTransport events noted "drop:<reason>".
type Faults = faultnet.Faults

// FaultLink sets loss/latency characteristics of one directed link.
type FaultLink = faultnet.Link

// NewFaults creates an empty, enabled fault plan with seeded randomness.
func NewFaults(seed int64) *Faults { return faultnet.New(seed) }

// DropReason classifies an undelivered message, identically on the
// simulated and the live network.
type DropReason = simnet.DropReason

// The drop taxonomy shared by simnet and faultnet.
const (
	DropLoss       = simnet.DropLoss
	DropBlocked    = simnet.DropBlocked
	DropCrashed    = simnet.DropCrashed
	DropNoSuchNode = simnet.DropNoSuchNode
)

// Experiment is one reproducible figure/table runner.
type Experiment = experiments.Experiment

// ExperimentParams scales an experiment run.
type ExperimentParams = experiments.Params

// ExperimentResult is an experiment's rendered table and named metrics.
type ExperimentResult = experiments.Result

// Experiments lists every figure/table runner in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one runner ("F1".."F5", "T1".."T8", "A1".."A2").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
