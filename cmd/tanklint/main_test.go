package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoClean runs the full tanklint suite in-process over every
// package in the module and requires zero findings: the shipped tree
// must satisfy its own invariants, with every exemption carried by a
// visible, reasoned //lint:allow directive.
func TestRepoClean(t *testing.T) {
	root := repoRoot(t)
	pkgs, fset, err := driver.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := driver.Run(fset, pkgs, Analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVettool exercises the unitchecker protocol end to end: build the
// real binary, hand it to `go vet -vettool`, and require a clean exit
// over the whole module. This is the exact invocation `make lint` and
// CI use.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole module")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "tanklint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tanklint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tanklint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestDirectiveBudget pins the exemption surface of the shipped tree,
// per pass and exactly: growing it means editing this map in the same
// diff that adds the directive, so every new exemption is a visible,
// reviewed decision. Fixtures under testdata exist to be suppressed and
// do not count. Every directive must also name a pass that actually
// exists — an allow for a misspelled or renamed pass suppresses
// nothing and would otherwise rot silently.
func TestDirectiveBudget(t *testing.T) {
	root := repoRoot(t)
	// The complete, intended exemption surface. A pass absent from this
	// map has a budget of zero — bufown in particular ships with none:
	// every sanctioned transfer is a //tank:owns/adopt/alias annotation
	// the pass checks, not an exemption from checking.
	want := map[string]int{
		"clockhygiene": 1, // (*File).sync fsync latency stamp, internal/blockstore/file.go
	}
	dirs, err := driver.TreeAllows(root, "")
	if err != nil {
		t.Fatal(err)
	}
	known := make(map[string]bool)
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	got := make(map[string]int)
	var sites []string
	for _, d := range dirs {
		got[d.Analyzer]++
		rel, _ := filepath.Rel(root, d.File)
		sites = append(sites, fmt.Sprintf("%s:%d: lint:allow %s(%s)", rel, d.FromLine, d.Analyzer, d.Reason))
		if d.Reason == "" {
			t.Errorf("directive without a reason: %s:%d", rel, d.FromLine)
		}
	}
	fset := token.NewFileSet()
	for _, diag := range analysis.UnknownPasses(dirs, known) {
		t.Errorf("%s (at %v)", diag.Message, fset.Position(diag.Pos))
	}
	for pass, n := range got {
		if n != want[pass] {
			t.Errorf("pass %s: %d lint:allow directives in the shipped tree, budget is exactly %d:\n  %s",
				pass, n, want[pass], strings.Join(sites, "\n  "))
		}
	}
	for pass, n := range want {
		if got[pass] != n {
			t.Errorf("pass %s: budget expects exactly %d directives, tree has %d (stale budget entry?)",
				pass, n, got[pass])
		}
	}
}

// TestFixtureAllowsExcluded proves the budget's testdata exclusion is
// load-bearing: the analysistest fixtures do contain //lint:allow
// directives (they exercise suppression), and none of them reach the
// budget scan.
func TestFixtureAllowsExcluded(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	fixtures := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		if !strings.Contains(path, string(filepath.Separator)+"testdata"+string(filepath.Separator)) {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", path, err)
		}
		dirs, _ := analysis.PackageDirectives(fset, []*ast.File{f})
		fixtures += len(dirs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixtures == 0 {
		t.Fatal("expected at least one //lint:allow inside testdata fixtures (suppression coverage)")
	}
	budget, err := driver.TreeAllows(root, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range budget {
		if strings.Contains(d.File, "testdata") {
			t.Errorf("budget scan leaked a fixture directive: %s:%d", d.File, d.FromLine)
		}
	}
}

// TestHelpListsAllows: `tanklint help <pass>` prints the pass doc and
// the shipped tree's //lint:allow sites for that pass with file, line,
// and reason — the audit view of the exemption surface.
func TestHelpListsAllows(t *testing.T) {
	var out, errOut strings.Builder
	if code := driver.Main(Analyzers, []string{"help", "clockhygiene"}, &out, &errOut); code != 0 {
		t.Fatalf("help clockhygiene: exit %d, stderr:\n%s", code, errOut.String())
	}
	for _, wantSub := range []string{
		"clockhygiene:",
		"internal/blockstore/file.go:",
		"fsync latency",
	} {
		if !strings.Contains(out.String(), wantSub) {
			t.Errorf("help clockhygiene output missing %q:\n%s", wantSub, out.String())
		}
	}
	out.Reset()
	if code := driver.Main(Analyzers, []string{"help", "bufown"}, &out, &errOut); code != 0 {
		t.Fatalf("help bufown: exit %d", code)
	}
	if !strings.Contains(out.String(), "No //lint:allow bufown exemptions") {
		t.Errorf("help bufown should report an empty exemption surface:\n%s", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := driver.Main(Analyzers, []string{"help", "nosuchpass"}, &out, &errOut); code != 1 {
		t.Fatalf("help nosuchpass: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown pass") || !strings.Contains(errOut.String(), "bufown") {
		t.Errorf("unknown-pass error should name the known passes:\n%s", errOut.String())
	}
}

// TestJSONMode: `tanklint -json` emits a JSON array (empty, not null,
// on a clean tree) so CI scripting can `jq` the findings.
func TestJSONMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := driver.Main(Analyzers, []string{"-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-json ./...: exit %d, stderr:\n%s", code, errOut.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean package produced %d JSON findings:\n%s", len(diags), out.String())
	}
}
