package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// repoRoot walks up from the test's working directory to the module
// root (the directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoClean runs the full tanklint suite in-process over every
// package in the module and requires zero findings: the shipped tree
// must satisfy its own invariants, with every exemption carried by a
// visible, reasoned //lint:allow directive.
func TestRepoClean(t *testing.T) {
	root := repoRoot(t)
	pkgs, fset, err := driver.Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := driver.Run(fset, pkgs, Analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestVettool exercises the unitchecker protocol end to end: build the
// real binary, hand it to `go vet -vettool`, and require a clean exit
// over the whole module. This is the exact invocation `make lint` and
// CI use.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole module")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "tanklint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tanklint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tanklint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestDirectiveBudget enforces the exemption ceiling: at most 3 parsed
// //lint:allow directives in the shipped tree (fixtures under testdata
// exist to be suppressed and do not count; prose mentions and quoted
// examples are not directives).
func TestDirectiveBudget(t *testing.T) {
	root := repoRoot(t)
	const budget = 3
	fset := token.NewFileSet()
	var sites []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", path, err)
		}
		dirs, _ := analysis.PackageDirectives(fset, []*ast.File{f})
		for _, dir := range dirs {
			rel, _ := filepath.Rel(root, dir.File)
			sites = append(sites, fmt.Sprintf("%s:%d: lint:allow %s(%s)", rel, dir.FromLine, dir.Analyzer, dir.Reason))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) > budget {
		t.Errorf("%d lint:allow directives in the shipped tree, budget is %d:\n  %s",
			len(sites), budget, strings.Join(sites, "\n  "))
	}
}
