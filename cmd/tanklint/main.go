// Command tanklint is the repository's protocol-invariant linter: five
// static-analysis passes that machine-check the discipline rules the
// paper's safety argument (Theorem 3.1) and the zero-copy data path
// rest on but the compiler cannot see.
//
//	clockhygiene     protocol time flows through the injected sim.Clock
//	                 (rate-synchronized clocks, DESIGN §3)
//	locksafety       no blocking operation, double-lock, or lock-order
//	                 inversion while a protocol mutex is held
//	ackdurable       a DiskWrite/FenceSet acknowledgment implies the
//	                 media call succeeded and was fsynced through the
//	                 sanctioned helper (flush-before-expiry, DESIGN §4/§9)
//	traceexhaustive  trace/drop/errno enums stay exhaustively mapped and
//	                 protocol-error paths emit their trace events
//	hotpathalloc     //tank:hotpath-marked codec primitives contain no
//	                 allocating constructs outside the buffer pool
//	                 (zero-copy wire codec, DESIGN §12)
//	bufown           flow-sensitive ownership of pooled buffers: every
//	                 bufpool.Get reaches exactly one Put or sanctioned
//	                 //tank:owns transfer on every path, no use after
//	                 Put, Envelope Retain/Release balance (DESIGN §16)
//
// Usage:
//
//	tanklint ./...                       # standalone over package patterns
//	go vet -vettool=$(which tanklint) ./...   # unit-checked, build-cached
//
// Site-level exemptions use a visible, reasoned directive:
//
//	//lint:allow clockhygiene(measures real fsync latency)
//
// The binary exits 0 when clean, 2 when findings were reported.
package main

import (
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/ackdurable"
	"repro/internal/analysis/bufown"
	"repro/internal/analysis/clockhygiene"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/locksafety"
	"repro/internal/analysis/traceexhaustive"
)

// Analyzers is the tanklint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	clockhygiene.Analyzer,
	locksafety.Analyzer,
	ackdurable.Analyzer,
	traceexhaustive.Analyzer,
	hotpathalloc.Analyzer,
	bufown.Analyzer,
}

func main() {
	os.Exit(driver.Main(Analyzers, os.Args[1:], os.Stdout, os.Stderr))
}
