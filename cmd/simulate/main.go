// Command simulate runs the paper-reproduction experiments (DESIGN.md §4)
// on the deterministic simulator and prints their tables — the data
// behind every figure and table claim recorded in EXPERIMENTS.md.
//
//	simulate                 # run everything, full scale
//	simulate -run F2,T1      # selected experiments
//	simulate -quick          # smaller sweeps (what the test suite runs)
//	simulate -seed 42        # different deterministic universe
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment IDs (F1-F5, T1-T8, A1-A2) or 'all'")
		seed  = flag.Int64("seed", 1, "simulation seed")
		quick = flag.Bool("quick", false, "smaller sweeps and durations")
	)
	flag.Parse()

	var selected []experiments.Experiment
	if strings.EqualFold(*run, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment %q (have F1-F5, T1-T8, A1-A2)", id)
			}
			selected = append(selected, e)
		}
	}

	params := experiments.Params{Seed: *seed, Quick: *quick}
	fmt.Printf("Safe Caching in a Distributed File System for Network Attached Storage — reproduction\n")
	fmt.Printf("seed=%d quick=%v\n\n", *seed, *quick)
	for _, e := range selected {
		start := time.Now()
		res := e.Run(params)
		fmt.Print(res.String())
		fmt.Printf("  (wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
