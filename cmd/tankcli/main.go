// Command tankcli is a live Storage Tank client: it registers with a
// tankd server over TCP, performs file-system operations — metadata
// through the control network, data directly against the SAN disk ports —
// and prints the results.
//
//	tankcli -server 127.0.0.1:7001 -disks "1000=127.0.0.1:7101,1001=127.0.0.1:7102" \
//	        -id 10 write /hello.txt 0 "hello storage tank"
//	tankcli ... -id 11 read /hello.txt 0
//
// Commands: mkdir PATH | create PATH | ls PATH | stat PATH | rm PATH |
// mv OLD NEW | write PATH BLOCK TEXT | read PATH BLOCK | bench OPS |
// idle DURATION | role
//
// Against a sharded installation, pass the full authority address book
// instead of -server:
//
//	tankcli -shards "1=127.0.0.1:7001,2=127.0.0.1:7002" -disks "..." stat /hello.txt
//
// The client then runs one protocol instance per authority and routes
// each operation by the same hash placement the servers use; mv between
// paths owned by different authorities exercises the cross-shard
// handoff.
//
// Against a replicated authority (a group of tankds started with
// -replicas), pass the group's address book; the client dials every
// member and follows ErrNotActive redirects to whichever replica holds
// the authority lease, so kill -9 on the active server only stalls
// operations for the bounded takeover window:
//
//	tankcli -replicas "1=127.0.0.1:7001,101=127.0.0.1:7002,201=127.0.0.1:7003" \
//	        -disks "..." role
//
// The role command asks the currently-targeted replica for its
// negotiation state: passive, candidate, or active, the last PaxosLease
// ballot it touched, and who it believes is active.
package main

import (
	"flag"
	"fmt"
	"log"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/rpcnet"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		serverAddr = flag.String("server", "127.0.0.1:7001", "tankd control address")
		shardsFlag = flag.String("shards", "", "sharded authority address book: id=addr,id=addr,... (overrides -server)")
		replFlag   = flag.String("replicas", "", "replicated authority address book: id=addr,id=addr,... — one group's members; the client follows the active replica (overrides -server)")
		disksFlag  = flag.String("disks", "", "SAN address book: id=addr,id=addr,...")
		id         = flag.Int("id", 10, "this client's node id")
		tau        = flag.Duration("tau", 30*time.Second, "lease period τ (must match tankd)")
		eps        = flag.Float64("eps", 0.05, "rate bound ε (must match tankd)")
		tracing    = flag.Bool("trace", false, "log lease-lifecycle events to stderr")
		codecName  = flag.String("codec", "binary", "wire codec to dial with: binary (zero-copy) or gob (fallback)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: tankcli [flags] COMMAND ARGS...\ncommands: mkdir create ls stat rm mv write read bench idle role")
	}

	diskAddrs, err := parseDisks(*disksFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	cfg.Bound.Eps = *eps

	var opts []rpcnet.Option
	if *tracing {
		opts = append(opts, rpcnet.WithTracer(trace.New(trace.NewLogf(log.Printf))))
	}
	codecOpt, err := rpcnet.WithWireCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	opts = append(opts, codecOpt)

	cli := &cli{id: *id}
	if *shardsFlag != "" {
		servers, err := parseDisks(*shardsFlag)
		if err != nil {
			log.Fatalf("-shards: %v", err)
		}
		topo := rpcnet.Topology{Servers: servers, Disks: diskAddrs}
		// The same hash placement over sorted authority IDs the servers
		// compute from their -shards flag.
		ids := topo.ServerIDs()
		place := shard.Hash{N: len(ids)}
		route := func(path string) msg.NodeID {
			idx, ok := place.Owner(path)
			if !ok {
				return msg.None
			}
			return ids[idx]
		}
		node, err := rpcnet.StartShardClientNode(rpcnet.NodeSpec{ID: msg.NodeID(*id), Topo: topo},
			client.Config{Core: cfg}, route, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		cli.shard = node
	} else {
		topo := rpcnet.Topology{Server: 1, ServerAddr: *serverAddr, Disks: diskAddrs}
		if *replFlag != "" {
			members, err := parseDisks(*replFlag)
			if err != nil {
				log.Fatalf("-replicas: %v", err)
			}
			group := replicaGroup(members)
			topo.Server = group[0]
			topo.ServerAddr = members[group[0]]
			topo.Servers = members
			topo.ReplicaGroups = map[msg.NodeID][]msg.NodeID{group[0]: group}
		}
		node, err := rpcnet.StartClientNode(rpcnet.NodeSpec{ID: msg.NodeID(*id), Topo: topo},
			client.Config{Core: cfg}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		cli.node = node
	}
	cli.register()
	if err := cli.run(flag.Args()); err != nil {
		log.Fatal(err)
	}
}

type cli struct {
	id    int
	node  *rpcnet.ClientNode      // single-authority mode
	shard *rpcnet.ShardClientNode // -shards mode
}

// pick returns the protocol instance that serves path.
func (c *cli) pick(path string) *client.Client {
	if c.shard != nil {
		sub := c.shard.Route(path)
		if sub == nil {
			log.Fatalf("no authority owns %s", path)
		}
		return sub
	}
	return c.node.Client
}

func (c *cli) submit(fn func()) {
	if c.shard != nil {
		c.shard.Do(fn)
		return
	}
	c.node.Do(fn)
}

func (c *cli) reg() *stats.Registry {
	if c.shard != nil {
		return c.shard.Reg
	}
	return c.node.Reg
}

// do runs fn on the client executor and waits for completion.
func (c *cli) do(fn func(done func())) {
	ch := make(chan struct{})
	c.submit(func() { fn(func() { close(ch) }) })
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		log.Fatal("operation timed out")
	}
}

func (c *cli) register() {
	if c.shard != nil {
		if err := c.shard.Start(0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered as n%d with %d authorities\n", c.id, len(c.shard.Subs))
		return
	}
	c.do(func(done func()) {
		c.node.Client.OnRecovered = func(e msg.Epoch) {
			fmt.Printf("registered as n%d epoch %d\n", c.node.Client.ID(), e)
			done()
		}
		c.node.Client.Start()
	})
}

func (c *cli) open(path string, write, create bool) (msg.Handle, msg.Attr, msg.Errno) {
	var h msg.Handle
	var attr msg.Attr
	var errno msg.Errno
	c.do(func(done func()) {
		c.pick(path).Open(path, write, create, func(gh msg.Handle, a msg.Attr, e msg.Errno) {
			h, attr, errno = gh, a, e
			done()
		})
	})
	return h, attr, errno
}

func (c *cli) run(args []string) error {
	cmd, rest := args[0], args[1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "mkdir", "create":
		if err := need(1); err != nil {
			return err
		}
		var errno msg.Errno
		c.do(func(done func()) {
			c.pick(rest[0]).Create(rest[0], cmd == "mkdir", func(_ msg.Attr, e msg.Errno) {
				errno = e
				done()
			})
		})
		return errno.Or()

	case "ls":
		if err := need(1); err != nil {
			return err
		}
		_, attr, errno := c.open(rest[0], false, false)
		if errno != msg.OK {
			return errno
		}
		var entries []msg.DirEntry
		c.do(func(done func()) {
			c.pick(rest[0]).Readdir(attr.Ino, func(es []msg.DirEntry, e msg.Errno) {
				entries, errno = es, e
				done()
			})
		})
		if errno != msg.OK {
			return errno
		}
		for _, e := range entries {
			kind := "f"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %8v %s\n", kind, e.Ino, e.Name)
		}
		return nil

	case "stat":
		if err := need(1); err != nil {
			return err
		}
		var attr msg.Attr
		var errno msg.Errno
		c.do(func(done func()) {
			c.pick(rest[0]).Lookup(rest[0], func(a msg.Attr, e msg.Errno) {
				attr, errno = a, e
				done()
			})
		})
		if errno != msg.OK {
			return errno
		}
		fmt.Printf("ino=%v dir=%v size=%d version=%d nlink=%d\n",
			attr.Ino, attr.IsDir, attr.Size, attr.Version, attr.Nlink)
		return nil

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		var errno msg.Errno
		c.do(func(done func()) {
			c.pick(rest[0]).Unlink(rest[0], func(e msg.Errno) { errno = e; done() })
		})
		return errno.Or()

	case "mv":
		if err := need(2); err != nil {
			return err
		}
		// Routed to the authority owning the OLD path; when the new path
		// hashes to a different authority the servers run the cross-shard
		// handoff and this call returns once the file lives at its new
		// home.
		var errno msg.Errno
		c.do(func(done func()) {
			c.pick(rest[0]).Rename(rest[0], rest[1], func(e msg.Errno) { errno = e; done() })
		})
		if errno == msg.OK {
			fmt.Printf("moved %s -> %s\n", rest[0], rest[1])
		}
		return errno.Or()

	case "write":
		if err := need(3); err != nil {
			return err
		}
		idx, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil {
			return err
		}
		h, _, errno := c.open(rest[0], true, true)
		if errno != msg.OK {
			return errno
		}
		c.do(func(done func()) {
			c.pick(rest[0]).Write(h, idx, []byte(rest[2]), func(e msg.Errno) { errno = e; done() })
		})
		if errno != msg.OK {
			return errno
		}
		c.do(func(done func()) {
			c.pick(rest[0]).Sync(func(e msg.Errno) { errno = e; done() })
		})
		if errno == msg.OK {
			fmt.Printf("wrote %d bytes to %s block %d (flushed)\n", len(rest[2]), rest[0], idx)
		}
		return errno.Or()

	case "read":
		if err := need(2); err != nil {
			return err
		}
		idx, err := strconv.ParseUint(rest[1], 10, 64)
		if err != nil {
			return err
		}
		h, _, errno := c.open(rest[0], false, false)
		if errno != msg.OK {
			return errno
		}
		var data []byte
		c.do(func(done func()) {
			c.pick(rest[0]).Read(h, idx, func(d []byte, e msg.Errno) { data, errno = d, e; done() })
		})
		if errno != msg.OK {
			return errno
		}
		fmt.Printf("%s\n", strings.TrimRight(string(data), "\x00"))
		return nil

	case "bench":
		if err := need(1); err != nil {
			return err
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil {
			return err
		}
		path := fmt.Sprintf("/bench-n%d", c.id)
		h, _, errno := c.open(path, true, true)
		if errno != msg.OK {
			return errno
		}
		start := time.Now()
		buf := make([]byte, 4096)
		for i := 0; i < n; i++ {
			var e msg.Errno
			c.do(func(done func()) {
				c.pick(path).Write(h, uint64(i%8), buf, func(ee msg.Errno) { e = ee; done() })
			})
			if e != msg.OK {
				return e
			}
		}
		c.do(func(done func()) { c.pick(path).Sync(func(msg.Errno) { done() }) })
		el := time.Since(start)
		fmt.Printf("%d writes in %v (%.0f ops/s)\n", n, el, float64(n)/el.Seconds())
		return nil

	case "idle":
		if err := need(1); err != nil {
			return err
		}
		d, err := time.ParseDuration(rest[0])
		if err != nil {
			return err
		}
		// Demonstrate keep-alives: touch a file, then idle. The client's
		// lease machinery preserves the cache with NULL messages.
		h, _, errno := c.open("/idle-demo", true, true)
		if errno != msg.OK {
			return errno
		}
		c.do(func(done func()) {
			c.pick("/idle-demo").Write(h, 0, []byte("cached"), func(msg.Errno) { done() })
		})
		fmt.Printf("idling %v with cached state...\n", d)
		time.Sleep(d)
		ch := make(chan [2]uint64, 1)
		c.submit(func() {
			ch <- [2]uint64{
				c.reg().CounterValue(fmt.Sprintf("client.n%d.lease.keepalives", c.id)),
				c.reg().CounterValue(fmt.Sprintf("client.n%d.lease.expiries", c.id)),
			}
		})
		v := <-ch
		fmt.Printf("keep-alives sent: %d, lease expiries: %d\n", v[0], v[1])
		return nil

	case "role":
		// Ask the replica the channel currently targets — after a
		// takeover that is whoever the redirects settled on — for its
		// negotiation state. Passive replicas answer too: the query is
		// lease-neutral and served before registration checks.
		var info msg.ReplicaInfoRes
		var errno msg.Errno
		c.do(func(done func()) {
			c.pick("/").ReplicaInfo(func(i msg.ReplicaInfoRes, e msg.Errno) {
				info, errno = i, e
				done()
			})
		})
		if errno != msg.OK {
			return errno
		}
		fmt.Printf("role=%s ballot=%d active=%v\n", msg.RoleName(info.Role), info.Ballot, info.Active)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// replicaGroup orders a -replicas book's member IDs. The first — the
// lowest — is the group's primary: the authority identity the client
// routes by, matching what each tankd derives from the same book.
func replicaGroup(members map[msg.NodeID]string) []msg.NodeID {
	group := make([]msg.NodeID, 0, len(members))
	for m := range members {
		group = append(group, m)
	}
	slices.Sort(group)
	return group
}

func parseDisks(s string) (map[msg.NodeID]string, error) {
	out := make(map[msg.NodeID]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -disks entry %q (want id=addr)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad disk id %q: %v", kv[0], err)
		}
		out[msg.NodeID(id)] = kv[1]
	}
	return out, nil
}
