package main

import (
	"testing"

	"repro/internal/msg"
)

func TestParseDisks(t *testing.T) {
	got, err := parseDisks("1000=127.0.0.1:7101, 1001=127.0.0.1:7102")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1000] != "127.0.0.1:7101" || got[1001] != "127.0.0.1:7102" {
		t.Fatalf("parsed = %v", got)
	}
	if m, err := parseDisks(""); err != nil || len(m) != 0 {
		t.Fatalf("empty: %v %v", m, err)
	}
	if _, err := parseDisks("nonsense"); err == nil {
		t.Fatal("malformed entry accepted")
	}
	if _, err := parseDisks("abc=addr"); err == nil {
		t.Fatal("non-numeric id accepted")
	}
}

func TestReplicaGroupOrdering(t *testing.T) {
	group := replicaGroup(map[msg.NodeID]string{
		201: "c:3", 1: "a:1", 101: "b:2",
	})
	if len(group) != 3 || group[0] != 1 || group[1] != 101 || group[2] != 201 {
		t.Fatalf("group = %v, want [n1 n101 n201]", group)
	}
}
