package main

import (
	"testing"

	"repro/internal/msg"
)

func TestPolicyByName(t *testing.T) {
	if p, ok := policyByName("storage-tank"); !ok || p.Name != "storage-tank" {
		t.Fatalf("lookup failed: %v %v", p, ok)
	}
	if _, ok := policyByName("nope"); ok {
		t.Fatal("unknown policy accepted")
	}
}

func TestDiskFlag(t *testing.T) {
	got := diskFlag(map[msg.NodeID]string{1000: "a:1", 1001: "b:2"})
	if got != "1000=a:1,1001=b:2" {
		t.Fatalf("diskFlag = %q", got)
	}
	if diskFlag(nil) != "" {
		t.Fatal("empty map should yield empty flag")
	}
}
