package main

import (
	"testing"

	"repro/internal/msg"
)

func TestPolicyByName(t *testing.T) {
	if p, ok := policyByName("storage-tank"); !ok || p.Name != "storage-tank" {
		t.Fatalf("lookup failed: %v %v", p, ok)
	}
	if _, ok := policyByName("nope"); ok {
		t.Fatal("unknown policy accepted")
	}
}

func TestDiskFlag(t *testing.T) {
	got := diskFlag(map[msg.NodeID]string{1000: "a:1", 1001: "b:2"}, 1000)
	if got != "1000=a:1,1001=b:2" {
		t.Fatalf("diskFlag = %q", got)
	}
	if diskFlag(nil, 1000) != "" {
		t.Fatal("empty map should yield empty flag")
	}
	if got := diskFlag(map[msg.NodeID]string{1100: "a:1"}, 1100); got != "1100=a:1" {
		t.Fatalf("diskFlag with base = %q", got)
	}
}

func TestParseAddrBook(t *testing.T) {
	got, err := parseAddrBook("1=127.0.0.1:7001, 2=127.0.0.1:7002")
	if err != nil || len(got) != 2 || got[1] != "127.0.0.1:7001" || got[2] != "127.0.0.1:7002" {
		t.Fatalf("parseAddrBook = %v, %v", got, err)
	}
	if _, err := parseAddrBook("nonsense"); err == nil {
		t.Fatal("bad entry accepted")
	}
}

func TestReplicaGroupPrimaryIsLowestID(t *testing.T) {
	group := replicaGroup(map[msg.NodeID]string{
		201: "127.0.0.1:7003", 1: "127.0.0.1:7001", 101: "127.0.0.1:7002",
	})
	if len(group) != 3 || group[0] != 1 || group[1] != 101 || group[2] != 201 {
		t.Fatalf("group = %v, want primary n1 first", group)
	}
}
