// Command tankd runs a live Storage Tank installation's server side: the
// metadata/lock server on a TCP control port, plus the installation's SAN
// disks, each on its own TCP port. Clients (cmd/tankcli) connect to the
// control port for metadata and locks and directly to the disk ports for
// data — the paper's two-network architecture on loopback or a LAN.
//
//	tankd -ctrl :7001 -san-base 7101 -disks 2 -tau 30s -trace events.jsonl
//
// With -trace FILE every lease-lifecycle and transport event is appended
// to FILE as JSON lines. SIGUSR1 dumps the current statistics and the
// most recent trace events to stdout without stopping the server. On
// SIGINT/SIGTERM it prints the server's statistics, including the
// authority counters that demonstrate the protocol's passivity, and
// exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/rpcnet"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		ctrlAddr   = flag.String("ctrl", ":7001", "control-network listen address")
		sanHost    = flag.String("san-host", "127.0.0.1", "host disks listen on")
		sanBase    = flag.Int("san-base", 7101, "first SAN port; disk i listens on san-base+i")
		nDisks     = flag.Int("disks", 2, "number of SAN disks to host")
		diskBlocks = flag.Uint64("disk-blocks", 1<<16, "capacity of each disk in 4KiB blocks")
		tau        = flag.Duration("tau", 30*time.Second, "lease period τ")
		eps        = flag.Float64("eps", 0.05, "clock rate-synchronization bound ε")
		policyName = flag.String("policy", "storage-tank", "recovery policy (see internal/baselines)")
		tracePath  = flag.String("trace", "", "append lease-lifecycle events to FILE as JSON lines")
		traceRing  = flag.Int("trace-ring", 256, "recent events kept for the SIGUSR1 dump")
		verbose    = flag.Bool("v", false, "log transport events")
	)
	flag.Parse()

	pol, ok := policyByName(*policyName)
	if !ok {
		log.Fatalf("unknown policy %q", *policyName)
	}
	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	cfg.Bound.Eps = *eps

	// The trace bus: a ring for the signal-handler dump, plus an optional
	// JSONL file. Both the server and the disks share it.
	ring := trace.NewRing(*traceRing)
	tracer := trace.New(ring)
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		traceFile = f
		tracer.Attach(trace.NewJSONL(f))
		fmt.Printf("tracing to %s\n", *tracePath)
	}
	if *verbose {
		tracer.Attach(trace.NewLogf(log.Printf))
	}

	nodeOpts := []rpcnet.Option{rpcnet.WithTracer(tracer)}

	// Disks first, so the server's address book is complete.
	topo := rpcnet.Topology{Server: 1, ServerAddr: *ctrlAddr, Disks: make(map[msg.NodeID]string)}
	diskCaps := make(map[msg.NodeID]uint64)
	var diskNodes []*rpcnet.DiskNode
	for i := 0; i < *nDisks; i++ {
		id := msg.NodeID(1000 + i)
		topo.Disks[id] = fmt.Sprintf("%s:%d", *sanHost, *sanBase+i)
		dn, err := rpcnet.StartDiskNode(rpcnet.NodeSpec{ID: id, Topo: topo},
			disk.Config{Blocks: *diskBlocks}, nodeOpts...)
		if err != nil {
			log.Fatalf("disk %v: %v", id, err)
		}
		diskNodes = append(diskNodes, dn)
		topo.Disks[id] = dn.Addr.String()
		diskCaps[id] = *diskBlocks
		fmt.Printf("disk %v listening on %v (%d blocks)\n", id, dn.Addr, *diskBlocks)
	}

	srv, err := rpcnet.StartServerNode(rpcnet.NodeSpec{ID: topo.Server, Topo: topo}, server.Config{
		Core: cfg, Policy: pol, Disks: diskCaps,
	}, nodeOpts...)
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	fmt.Printf("server n1 listening on %v (policy=%s τ=%v ε=%g)\n", srv.Addr, pol.Name, *tau, *eps)
	fmt.Printf("clients: tankcli -server %v -disks %q\n", srv.Addr, diskFlag(topo.Disks))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	for s := range sig {
		if s == syscall.SIGUSR1 {
			dumpState(srv, ring)
			continue
		}
		break
	}

	fmt.Println("\n--- server statistics ---")
	fmt.Print(srv.Reg.Dump())
	srv.Close()
	for _, d := range diskNodes {
		d.Close()
	}
	if traceFile != nil {
		traceFile.Close()
	}
}

// dumpState prints the live metrics and the tail of the event stream —
// the SIGUSR1 "what is the lease protocol doing right now" report.
func dumpState(srv *rpcnet.ServerNode, ring *trace.Ring) {
	fmt.Println("--- statistics ---")
	fmt.Print(srv.Reg.Dump())
	evs := ring.Events()
	fmt.Printf("--- last %d trace events (%d total) ---\n", len(evs), ring.Total())
	for _, e := range evs {
		fmt.Println(e.String())
	}
}

func policyByName(name string) (baselines.Policy, bool) {
	for _, p := range baselines.All() {
		if p.Name == name {
			return p, true
		}
	}
	return baselines.Policy{}, false
}

func diskFlag(addrs map[msg.NodeID]string) string {
	out := ""
	for id := msg.NodeID(1000); ; id++ {
		addr, ok := addrs[id]
		if !ok {
			break
		}
		if out != "" {
			out += ","
		}
		out += fmt.Sprintf("%d=%s", id, addr)
	}
	return out
}
