// Command tankd runs a live Storage Tank installation's server side: the
// metadata/lock server on a TCP control port, plus the installation's SAN
// disks, each on its own TCP port. Clients (cmd/tankcli) connect to the
// control port for metadata and locks and directly to the disk ports for
// data — the paper's two-network architecture on loopback or a LAN.
//
//	tankd -ctrl :7001 -san-base 7101 -disks 2 -tau 30s -trace events.jsonl
//
// With -trace FILE every lease-lifecycle and transport event is appended
// to FILE as JSON lines. SIGUSR1 dumps the current statistics, the fault
// plan, and the most recent trace events to stdout without stopping the
// server. On SIGINT/SIGTERM it prints the server's statistics, including
// the authority counters that demonstrate the protocol's passivity, and
// exits.
//
// The -fault-loss, -fault-delay, and -fault-jitter flags arm a
// control-network fault-injection plan (internal/faultnet) on the
// server's transport: messages are dropped or delayed exactly as the
// simulator would, and every injected drop appears in the trace as an
// EvTransport "drop:..." event. SIGUSR2 toggles the plan at runtime, so
// a live installation can be degraded and healed mid-experiment:
//
//	tankd -fault-loss 0.2 -fault-delay 5ms -fault-jitter 5ms -trace events.jsonl
//
// A sharded installation runs one tankd per lease authority, each with
// -shard-id and the full -shards address book (and a distinct
// -disk-base). Every authority serves the hash-placed slice of the
// namespace and hands files whose rename destination lives elsewhere to
// the owning peer (DESIGN.md §14). The per-authority lock count is the
// server.<id>.locks_held gauge in the SIGUSR1 dump:
//
//	tankd -shard-id 1 -ctrl :7001 -san-base 7101 -disk-base 1000 -shards "1=127.0.0.1:7001,2=127.0.0.1:7002"
//	tankd -shard-id 2 -ctrl :7002 -san-base 7201 -disk-base 1100 -shards "1=127.0.0.1:7001,2=127.0.0.1:7002"
//
// A replicated installation instead runs one tankd per replica of the
// SAME authority, each with the full -replicas book (DESIGN.md §15).
// The members run the diskless PaxosLease negotiation to elect the
// active authority; the others stay passive and redirect clients. The
// SAN must be hosted by its own process (-no-server) so the disks
// survive any authority kill; every member needs the full SAN view
// (-san-disks) to allocate and fence once it activates, and all members
// share one -meta-persist snapshot file (the paper's highly-available
// server storage) so the takeover winner inherits the namespace. The
// SIGUSR1 dump and the server.<id>.role / server.<id>.ballot gauges
// report each member's view of the election:
//
//	tankd -no-server -san-base 7101 -disks 2
//	tankd -shard-id 1   -ctrl :7001 -disks 0 -san-disks "1000=127.0.0.1:7101,1001=127.0.0.1:7102" -meta-persist /srv/tank/meta.json -replicas "1=127.0.0.1:7001,101=127.0.0.1:7002,201=127.0.0.1:7003"
//	tankd -shard-id 101 -ctrl :7002 -disks 0 -san-disks "1000=127.0.0.1:7101,1001=127.0.0.1:7102" -meta-persist /srv/tank/meta.json -replicas "1=127.0.0.1:7001,101=127.0.0.1:7002,201=127.0.0.1:7003"
//	tankd -shard-id 201 -ctrl :7003 -disks 0 -san-disks "1000=127.0.0.1:7101,1001=127.0.0.1:7102" -meta-persist /srv/tank/meta.json -replicas "1=127.0.0.1:7001,101=127.0.0.1:7002,201=127.0.0.1:7003"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/baselines"
	"repro/internal/blockstore"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faultnet"
	"repro/internal/msg"
	"repro/internal/replica"
	"repro/internal/rpcnet"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		ctrlAddr   = flag.String("ctrl", ":7001", "control-network listen address")
		shardID    = flag.Int("shard-id", 1, "this lease authority's node id")
		shardsFlag = flag.String("shards", "", "sharded control address book: id=addr,id=addr,... including this authority; enables hash placement and cross-shard renames")
		replFlag   = flag.String("replicas", "", "replica group address book: id=addr,id=addr,... including this node; members run PaxosLease to elect the active lease authority")
		replTerm   = flag.Duration("replica-lease-term", 0, "PaxosLease authority-lease term (0 = protocol default)")
		metaFile   = flag.String("meta-persist", "", "replicated authorities: metadata snapshot FILE on shared highly-available storage — the active snapshots before every reply, the takeover winner loads it (paper §1.1; every member must name the same file)")
		sanDisks   = flag.String("san-disks", "", "SAN disks hosted by OTHER processes: id=addr,id=addr,... — every replica member needs the full SAN view to allocate and fence once it activates (capacity assumed -disk-blocks each)")
		noServer   = flag.Bool("no-server", false, "host only the SAN disks, no lease authority — a network-attached storage box that outlives any server kill")
		sanHost    = flag.String("san-host", "127.0.0.1", "host disks listen on")
		sanBase    = flag.Int("san-base", 7101, "first SAN port; disk i listens on san-base+i")
		nDisks     = flag.Int("disks", 2, "number of SAN disks to host")
		diskBase   = flag.Int("disk-base", 1000, "first disk node id (give each authority of a sharded installation a distinct range)")
		diskBlocks = flag.Uint64("disk-blocks", 1<<16, "capacity of each disk in 4KiB blocks")
		dataDir    = flag.String("data-dir", "", "persist disk contents under DIR/disk-<id> (file-backed media; empty = in-memory, lost on exit)")
		noSync     = flag.Bool("no-fsync", false, "with -data-dir, skip per-operation fsync (durable across process restarts, not power loss)")
		tau        = flag.Duration("tau", 30*time.Second, "lease period τ")
		eps        = flag.Float64("eps", 0.05, "clock rate-synchronization bound ε")
		policyName = flag.String("policy", "storage-tank", "recovery policy (see internal/baselines)")
		codecName  = flag.String("codec", "binary", "wire codec this process dials with: binary (zero-copy) or gob (fallback); acceptors adopt each dialer's choice")
		tracePath  = flag.String("trace", "", "append lease-lifecycle events to FILE as JSON lines")
		traceRing  = flag.Int("trace-ring", 256, "recent events kept for the SIGUSR1 dump")
		verbose    = flag.Bool("v", false, "log transport events")

		faultLoss   = flag.Float64("fault-loss", 0, "control-network message loss probability [0,1]")
		faultDelay  = flag.Duration("fault-delay", 0, "added one-way control-network latency")
		faultJitter = flag.Duration("fault-jitter", 0, "added uniform control-network jitter in [0,jitter)")
		faultSeed   = flag.Int64("fault-seed", 1, "fault-injection randomness seed")
	)
	flag.Parse()

	pol, ok := policyByName(*policyName)
	if !ok {
		log.Fatalf("unknown policy %q", *policyName)
	}
	if *noServer {
		// A pure NAS box: the paper's network-attached disks outlive any
		// lease authority, so the storage must not die with a server kill.
		switch {
		case *replFlag != "":
			log.Fatal("-no-server hosts no authority; drop -replicas")
		case *shardsFlag != "":
			log.Fatal("-no-server hosts no authority; drop -shards")
		case *replTerm != 0:
			log.Fatal("-no-server hosts no authority; drop -replica-lease-term")
		case *metaFile != "":
			log.Fatal("-no-server hosts no authority; drop -meta-persist")
		case *sanDisks != "":
			log.Fatal("-no-server hosts disks, it does not dial them; drop -san-disks")
		case *nDisks == 0:
			log.Fatal("-no-server with -disks 0 hosts nothing")
		}
	}
	cfg := core.DefaultConfig()
	cfg.Tau = *tau
	cfg.Bound.Eps = *eps

	// The trace bus: a ring for the signal-handler dump, plus an optional
	// JSONL file. Both the server and the disks share it.
	ring := trace.NewRing(*traceRing)
	tracer := trace.New(ring)
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		traceFile = f
		tracer.Attach(trace.NewJSONL(f))
		fmt.Printf("tracing to %s\n", *tracePath)
	}
	if *verbose {
		tracer.Attach(trace.NewLogf(log.Printf))
	}

	// The control-network fault plan: configured by the -fault-* flags,
	// armed only when at least one is set, and toggled at runtime with
	// SIGUSR2 (the dropped/delayed messages land in the trace stream as
	// EvTransport "drop:..." events). The SAN is left clean: the paper's
	// chaos scenarios partition the control network while the storage
	// fabric keeps working.
	ctrlFaults := faultnet.New(*faultSeed)
	ctrlFaults.SetDefaultLink(faultnet.Link{Loss: *faultLoss, Delay: *faultDelay, Jitter: *faultJitter})
	faultsConfigured := *faultLoss > 0 || *faultDelay > 0 || *faultJitter > 0
	ctrlFaults.SetEnabled(faultsConfigured)

	// One registry shared by the server and every disk in this process,
	// so the SIGUSR1/exit dumps cover the whole installation (including
	// the media layer's fsync and journal instruments).
	reg := stats.NewRegistry()
	codecOpt, err := rpcnet.WithWireCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	nodeOpts := []rpcnet.Option{rpcnet.WithTracer(tracer), rpcnet.WithFaults(ctrlFaults, nil),
		rpcnet.WithRegistry(reg), codecOpt}

	// Disks first, so the server's address book is complete. With
	// -data-dir each disk opens (or recovers) a file-backed store, so a
	// tankd restart from the same directory preserves every acknowledged
	// write and the fence table; without it the media is in-memory.
	topo := rpcnet.Topology{Server: msg.NodeID(*shardID), ServerAddr: *ctrlAddr,
		Disks: make(map[msg.NodeID]string)}
	if *shardsFlag != "" {
		servers, err := parseAddrBook(*shardsFlag)
		if err != nil {
			log.Fatalf("-shards: %v", err)
		}
		if _, ok := servers[topo.Server]; !ok {
			log.Fatalf("-shards %q does not include this authority (-shard-id %d)", *shardsFlag, *shardID)
		}
		topo.Servers = servers
	}
	if *replFlag != "" {
		members, err := parseAddrBook(*replFlag)
		if err != nil {
			log.Fatalf("-replicas: %v", err)
		}
		if _, ok := members[topo.Server]; !ok {
			log.Fatalf("-replicas %q does not include this node (-shard-id %d)", *replFlag, *shardID)
		}
		group := replicaGroup(members)
		if topo.Servers == nil {
			topo.Servers = make(map[msg.NodeID]string)
		}
		for m, addr := range members {
			if _, ok := topo.Servers[m]; !ok {
				topo.Servers[m] = addr
			}
		}
		topo.ReplicaGroups = map[msg.NodeID][]msg.NodeID{group[0]: group}
	}
	diskCaps := make(map[msg.NodeID]uint64)
	if *sanDisks != "" {
		// SAN disks living in other processes: the server still needs
		// their addresses (fencing, function-shipping) and capacities
		// (block allocation). A replica member that hosts no disks of its
		// own is useless as a successor without this view.
		remote, err := parseAddrBook(*sanDisks)
		if err != nil {
			log.Fatalf("-san-disks: %v", err)
		}
		for id, addr := range remote {
			topo.Disks[id] = addr
			diskCaps[id] = *diskBlocks
		}
	}
	var diskNodes []*rpcnet.DiskNode
	for i := 0; i < *nDisks; i++ {
		id := msg.NodeID(*diskBase + i)
		diskOpts := nodeOpts
		if *dataDir != "" {
			dir := filepath.Join(*dataDir, fmt.Sprintf("disk-%d", id))
			media, err := blockstore.Open(dir, blockstore.Options{
				Blocks: *diskBlocks, NoSync: *noSync,
				Registry: reg, StatsPrefix: fmt.Sprintf("disk.%v.media.", id),
			})
			if err != nil {
				log.Fatalf("disk %v media: %v", id, err)
			}
			if rep := media.Recovery(); rep.Recovered {
				fmt.Printf("disk %v recovered from %s: %v\n", id, dir, rep)
			} else {
				fmt.Printf("disk %v created %s (%d blocks)\n", id, dir, *diskBlocks)
			}
			diskOpts = append(append([]rpcnet.Option(nil), nodeOpts...), rpcnet.WithMedia(media))
		}
		topo.Disks[id] = fmt.Sprintf("%s:%d", *sanHost, *sanBase+i)
		dn, err := rpcnet.StartDiskNode(rpcnet.NodeSpec{ID: id, Topo: topo},
			disk.Config{Blocks: *diskBlocks}, diskOpts...)
		if err != nil {
			log.Fatalf("disk %v: %v", id, err)
		}
		diskNodes = append(diskNodes, dn)
		topo.Disks[id] = dn.Addr.String()
		diskCaps[id] = *diskBlocks
		fmt.Printf("disk %v listening on %v (%d blocks)\n", id, dn.Addr, *diskBlocks)
	}

	var srv *rpcnet.ServerNode
	if *noServer {
		fmt.Printf("no server: hosting %d SAN disks only\n", *nDisks)
		fmt.Printf("servers: tankd -disks 0 -san-disks %q ...\n", diskFlag(topo.Disks, *diskBase))
	} else {
		scfg := server.Config{Core: cfg, Policy: pol, Disks: diskCaps,
			MetaPersist: *metaFile}
		if *metaFile != "" && topo.GroupOf(topo.Server) == nil {
			log.Fatal("-meta-persist needs -replicas")
		}
		if *replTerm != 0 {
			if topo.GroupOf(topo.Server) == nil {
				log.Fatal("-replica-lease-term needs -replicas")
			}
			scfg.Replica = &replica.Config{LeaseTerm: *replTerm}
		}
		if len(topo.Servers) > 0 {
			// Hash placement over the sorted authority IDs — every tankd and
			// every tankcli of the installation computes the same map.
			ids := topo.ServerIDs()
			place := shard.Hash{N: len(ids)}
			scfg.PlaceOwner = func(path string) msg.NodeID {
				idx, ok := place.Owner(path)
				if !ok {
					return msg.None
				}
				return ids[idx]
			}
		}
		s, err := rpcnet.StartServerNode(rpcnet.NodeSpec{ID: topo.Server, Topo: topo}, scfg, nodeOpts...)
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		srv = s
		fmt.Printf("server n%d listening on %v (policy=%s τ=%v ε=%g)\n", *shardID, srv.Addr, pol.Name, *tau, *eps)
		switch {
		case *replFlag != "":
			term := *replTerm
			if term == 0 {
				term = replica.DefaultLeaseTerm
			}
			role := srv.Reg.Gauge(fmt.Sprintf("server.%v.role", topo.Server)).Value()
			fmt.Printf("replica %s of group %v (PaxosLease term %v)\n",
				msg.RoleName(uint8(role)), topo.GroupOf(topo.Server), term)
			if *metaFile == "" {
				fmt.Println("warning: no -meta-persist — the namespace dies with the active; point every member at one snapshot file on shared storage")
			}
			fmt.Printf("clients: tankcli -replicas %q -disks %q\n", *replFlag, diskFlag(topo.Disks, *diskBase))
		case *shardsFlag != "":
			fmt.Printf("shard %d of %d (hash placement over %v)\n", *shardID, len(topo.Servers), topo.ServerIDs())
			fmt.Printf("clients: tankcli -shards %q -disks %q\n", *shardsFlag, diskFlag(topo.Disks, *diskBase))
		default:
			fmt.Printf("clients: tankcli -server %v -disks %q\n", srv.Addr, diskFlag(topo.Disks, *diskBase))
		}
	}
	if faultsConfigured {
		fmt.Printf("%s (SIGUSR2 toggles)\n", ctrlFaults.Summary())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGUSR2)
	for s := range sig {
		switch s {
		case syscall.SIGUSR1:
			self := msg.None
			if srv != nil {
				self = topo.Server
			}
			dumpState(reg, self, ring, ctrlFaults)
			continue
		case syscall.SIGUSR2:
			ctrlFaults.Toggle()
			fmt.Println(ctrlFaults.Summary())
			continue
		}
		break
	}

	fmt.Println("\n--- statistics ---")
	fmt.Print(reg.Dump())
	if srv != nil {
		srv.Close()
	}
	for _, d := range diskNodes {
		d.Close()
	}
	if traceFile != nil {
		traceFile.Close()
	}
}

// dumpState prints the live metrics and the tail of the event stream —
// the SIGUSR1 "what is the lease protocol doing right now" report. With
// self == msg.None (a -no-server disk box) the replica line is skipped.
func dumpState(reg *stats.Registry, self msg.NodeID, ring *trace.Ring, faults *faultnet.Faults) {
	fmt.Println("--- statistics ---")
	if self != msg.None {
		// Read the operator gauges rather than the server state machine:
		// the signal handler runs off the server's executor, and the
		// gauges are the atomically-published view of role and ballot.
		role := reg.Gauge(fmt.Sprintf("server.%v.role", self)).Value()
		ballot := reg.Gauge(fmt.Sprintf("server.%v.ballot", self)).Value()
		fmt.Printf("replica role=%s ballot=%d\n", msg.RoleName(uint8(role)), ballot)
	}
	fmt.Print(reg.Dump())
	fmt.Println(faults.Summary())
	evs := ring.Events()
	fmt.Printf("--- last %d trace events (%d total) ---\n", len(evs), ring.Total())
	for _, e := range evs {
		fmt.Println(e.String())
	}
}

func policyByName(name string) (baselines.Policy, bool) {
	for _, p := range baselines.All() {
		if p.Name == name {
			return p, true
		}
	}
	return baselines.Policy{}, false
}

func diskFlag(addrs map[msg.NodeID]string, base int) string {
	out := ""
	for id := msg.NodeID(base); ; id++ {
		addr, ok := addrs[id]
		if !ok {
			break
		}
		if out != "" {
			out += ","
		}
		out += fmt.Sprintf("%d=%s", id, addr)
	}
	return out
}

// replicaGroup orders a -replicas book's member IDs. The first — the
// lowest — is the group's primary: the authority identity clients route
// by. Every tankd and tankcli of the installation derives the same
// ordering from the same book.
func replicaGroup(members map[msg.NodeID]string) []msg.NodeID {
	group := make([]msg.NodeID, 0, len(members))
	for m := range members {
		group = append(group, m)
	}
	slices.Sort(group)
	return group
}

// parseAddrBook parses "id=addr,id=addr,..." into a node address book.
func parseAddrBook(s string) (map[msg.NodeID]string, error) {
	out := make(map[msg.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad entry %q (want id=addr)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad node id %q: %v", kv[0], err)
		}
		out[msg.NodeID(id)] = kv[1]
	}
	return out, nil
}
