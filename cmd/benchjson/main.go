// Command benchjson converts `go test -bench` output on stdin into a
// JSON report: one record per benchmark with iteration count, ns/op,
// derived op/s, and every extra metric the -benchmem flags emit (B/op,
// allocs/op, custom ReportMetric units). The Makefile's `bench` target
// uses it to produce BENCH_tier1.json:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -o BENCH_tier1.json
//
// When the stream carries both halves of a batched/per-page benchmark
// pair (the vectored write-back suite in bench_test.go), the report
// gains a "derived" section with the headline reduction ratios —
// SAN messages per flush, fsyncs per flush, and simulated drain time,
// per-page over batched.
//
// Non-benchmark lines (PASS, ok, package headers) pass through to
// stderr so a terminal run still shows the suite's progress.
//
// With -compare BASELINE.json the command also gates deterministic
// regressions: for every benchmark present in both the baseline report
// and the current stream, the lower-is-better metrics (allocs/op, B/op,
// san_reads/scan) may not exceed the baseline by more than 5%, and the
// higher-is-better cache-effectiveness ratios (dedup_bytes_saved_ratio,
// prefetch_hit_ratio) may not drop more than 5% below it. Any
// regression is listed and the exit status is 1, so `make bench-gate`
// (and the CI bench job) fail loudly when a change quietly reintroduces
// per-message allocations or erodes the cache's dedup or read-ahead.
// Benchmarks that exist on only one side are ignored (new benchmarks
// have no baseline; retired ones no current number), and timing metrics
// are never gated — ns/op is hardware-noisy in CI, the gated counts and
// ratios come out of the deterministic simulator. Two absolute gates
// also apply: when the shard scale benchmark is present, the derived
// 4-shard metadata-throughput speedup must be at least 3x the single
// authority (shardscale.speedup_4x), and when the replica failover
// benchmark is present, the derived takeover window
// (failover.takeover_ms) must stay under the analytic takeover bound —
// takeover_ms is also in the relative gate, so the window can only
// shrink release over release.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, parsed.
type Result struct {
	// Name is the benchmark's full name including any -cpu suffix
	// (e.g. "BenchmarkLeaseRenewal-8").
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in, taken from the preceding
	// "pkg:" header (empty if the stream carried none).
	Pkg string `json:"pkg,omitempty"`
	// Iters is b.N: how many iterations the timing covers.
	Iters int64 `json:"iters"`
	// NsPerOp is the headline latency metric.
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is 1e9/NsPerOp, the throughput view of the same number.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Metrics holds every further "value unit" pair on the line:
	// "B/op", "allocs/op", and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to FILE (default stdout)")
	compare := flag.String("compare", "",
		"gate against a baseline report: exit 1 if any benchmark's allocs/op or B/op regresses >5%")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	report := Report{Results: results, Derived: derive(results)}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	switch {
	case *out == "" && *compare == "":
		os.Stdout.Write(buf)
	case *out != "":
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *out)
	}
	if *compare != "" {
		regressions, err := compareBaseline(*compare, results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION "+r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d allocation regression(s) vs %s\n",
				len(regressions), *compare)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: allocation gate clean vs %s\n", *compare)
	}
}

// gatedMetrics are the lower-is-better units the -compare gate enforces
// as ceilings: allocation behavior and the simulated SAN cost of a
// sequential scan — deterministic per run, unlike wall-clock timing.
var gatedMetrics = []string{"allocs/op", "B/op", "san_reads/scan", "takeover_ms"}

// flooredMetrics are the higher-is-better units the gate enforces as
// floors: cache-effectiveness ratios the simulator computes exactly. A
// drop below baseline/1.05 means dedup or read-ahead quietly regressed.
var flooredMetrics = []string{"dedup_bytes_saved_ratio", "prefetch_hit_ratio"}

// regressionSlack is how far above the baseline a gated metric may
// drift before the gate fails (benchmarks with tiny absolute counts
// jitter by an alloc or two across runs).
const regressionSlack = 1.05

// compareBaseline diffs the current results against a stored report and
// returns one human-readable line per gated regression.
func compareBaseline(path string, current []Result) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var regressions []string
	for _, cur := range current {
		old, ok := baseline[cur.Name]
		if !ok {
			continue
		}
		for _, unit := range gatedMetrics {
			was, okOld := old.Metrics[unit]
			now, okNew := cur.Metrics[unit]
			if !okOld || !okNew || now <= was*regressionSlack {
				continue
			}
			regressions = append(regressions, fmt.Sprintf(
				"%s %s: %.0f -> %.0f (+%.1f%%, gate is +5%%)",
				cur.Name, unit, was, now, (now/was-1)*100))
		}
		for _, unit := range flooredMetrics {
			was, okOld := old.Metrics[unit]
			now, okNew := cur.Metrics[unit]
			if !okOld || !okNew || now >= was/regressionSlack {
				continue
			}
			regressions = append(regressions, fmt.Sprintf(
				"%s %s: %.3f -> %.3f (-%.1f%%, floor is -5%%)",
				cur.Name, unit, was, now, (1-now/was)*100))
		}
	}
	// Absolute floors on derived ratios, independent of the baseline: the
	// shard-scaling claim is "4 authorities ≥ 3× one" on the Zipf
	// metadata workload, and the gate holds the repo to it whenever the
	// scale benchmark is in the stream.
	if d := derive(current); d != nil {
		if speedup, ok := d["shardscale.speedup_4x"]; ok && speedup < shardSpeedup4xFloor {
			regressions = append(regressions, fmt.Sprintf(
				"shardscale.speedup_4x: %.2f (floor is %.1fx over 1 shard)",
				speedup, shardSpeedup4xFloor))
		}
		if w, ok := d["failover.takeover_ms"]; ok && w > takeoverMsCeiling {
			regressions = append(regressions, fmt.Sprintf(
				"failover.takeover_ms: %.0f (ceiling is %.0fms, the analytic takeover bound)",
				w, takeoverMsCeiling))
		}
	}
	return regressions, nil
}

// shardSpeedup4xFloor is the minimum metadata-throughput speedup a
// 4-shard installation must show over a single authority on the Zipf
// scale benchmark.
const shardSpeedup4xFloor = 3.0

// takeoverMsCeiling is the absolute bound on the replicated authority's
// simulated takeover window: the benchmark's 1s authority lease term and
// 100ms retry interval give the analytic bound (1+ε)·term +
// (1+ε)·8·retry ≈ 1.9s at ε=0.05, and the gate holds the measured
// window under it. The relative gate (takeover_ms in gatedMetrics)
// additionally keeps it within 5% of the stored baseline, so the window
// can only shrink.
const takeoverMsCeiling = 1900.0

// Report is the full JSON document: the parsed benchmark records plus
// any cross-benchmark ratios derivable from them.
type Report struct {
	Results []Result           `json:"results"`
	Derived map[string]float64 `json:"derived,omitempty"`
}

// derive computes the vectored write-back reduction ratios when both
// halves of a pair are present: how much cheaper a 64-dirty-page flush
// is batched than per-page, in SAN messages, fsyncs, and drain time.
func derive(results []Result) map[string]float64 {
	metric := func(bench, unit string) (float64, bool) {
		for _, r := range results {
			if strings.HasPrefix(r.Name, bench) {
				v, ok := r.Metrics[unit]
				return v, ok
			}
		}
		return 0, false
	}
	out := map[string]float64{}
	ratio := func(key, perPage, batched, unit string) {
		p, okP := metric(perPage, unit)
		b, okB := metric(batched, unit)
		if okP && okB && b > 0 {
			out[key] = p / b
			out[key+".batched"] = b
			out[key+".per_page"] = p
		}
	}
	ratio("flush64.san_msgs_reduction",
		"BenchmarkFlushDrain64PerPage", "BenchmarkFlushDrain64Batched", "san_msgs/flush")
	ratio("flush64.drain_time_reduction",
		"BenchmarkFlushDrain64PerPage", "BenchmarkFlushDrain64Batched", "sim_drain_ms")
	ratio("flush64.fsync_reduction",
		"BenchmarkGroupCommit64PerBlock", "BenchmarkGroupCommit64Batched", "fsyncs/flush")
	// Read-ahead: how many fewer SAN messages a cold sequential scan
	// costs with the default prefetch window.
	if p, okP := metric("BenchmarkSeqScanPrefetch", "san_reads/scan"); okP {
		if n, okN := metric("BenchmarkSeqScanNoPrefetch", "san_reads/scan"); okN && p > 0 {
			out["seqscan32.san_reads_reduction"] = n / p
			out["seqscan32.san_reads_reduction.prefetch"] = p
			out["seqscan32.san_reads_reduction.no_prefetch"] = n
		}
	}
	// Content dedup: the fraction of the hot-file working set's bytes the
	// content-addressed cache shares away, surfaced as a headline number.
	if d, ok := metric("BenchmarkSharedHotFile", "dedup_bytes_saved_ratio"); ok {
		out["hotfile.dedup_bytes_saved_ratio"] = d
	}
	// Replica failover: the simulated takeover window — authority lost to
	// successor serving — straight from the PaxosLease benchmark. Gated
	// both relatively (takeover_ms is in gatedMetrics, so -compare holds
	// it within 5% of baseline: the window can only shrink) and
	// absolutely against the protocol's analytic bound.
	if w, ok := metric("BenchmarkReplicaFailover", "takeover_ms"); ok {
		out["failover.takeover_ms"] = w
	}
	// Shard scaling: metadata throughput of an N-authority installation
	// over the single-authority baseline under the Zipf workload. The
	// speedup ratios are the headline of the scale benchmark's curve.
	if base, ok := metric("BenchmarkShardScaleZipf/shards=1", "mdops_per_simsec"); ok && base > 0 {
		out["shardscale.mdops_per_simsec.1"] = base
		for _, n := range []int{2, 4, 8} {
			v, ok := metric(fmt.Sprintf("BenchmarkShardScaleZipf/shards=%d", n), "mdops_per_simsec")
			if !ok {
				continue
			}
			out[fmt.Sprintf("shardscale.mdops_per_simsec.%d", n)] = v
			out[fmt.Sprintf("shardscale.speedup_%dx", n)] = v / base
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// parseBenchLine parses one "BenchmarkName-8  1234  987 ns/op  0 B/op ..."
// line. The format is fields alternating value/unit after the name and
// iteration count.
func parseBenchLine(line, pkg string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Pkg: pkg, Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := f[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			if val > 0 {
				r.OpsPerSec = 1e9 / val
			}
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = val
	}
	if r.NsPerOp == 0 && r.Metrics == nil {
		return Result{}, false
	}
	return r, true
}
