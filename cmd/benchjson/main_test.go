package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	buf, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, allocs, bytes float64) Result {
	return Result{Name: name, Metrics: map[string]float64{
		"allocs/op": allocs, "B/op": bytes}}
}

func TestCompareBaselineCleanWithinSlack(t *testing.T) {
	base := writeBaseline(t, []Result{bench("BenchmarkF1-8", 1000, 50000)})
	// +4% is inside the 5% slack; improvements are always fine.
	regs, err := compareBaseline(base, []Result{bench("BenchmarkF1-8", 1040, 40000)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
}

func TestCompareBaselineFlagsRegression(t *testing.T) {
	base := writeBaseline(t, []Result{
		bench("BenchmarkF1-8", 1000, 50000),
		bench("BenchmarkF2-8", 10, 100),
	})
	regs, err := compareBaseline(base, []Result{
		bench("BenchmarkF1-8", 1100, 50000), // allocs +10%
		bench("BenchmarkF2-8", 10, 120),     // bytes +20%
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
}

func TestCompareBaselineIgnoresUnmatched(t *testing.T) {
	base := writeBaseline(t, []Result{bench("BenchmarkRetired-8", 1, 1)})
	regs, err := compareBaseline(base, []Result{bench("BenchmarkNew-8", 1e9, 1e9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v; unmatched benchmarks must not gate", regs)
	}
}

func ratios(name string, dedup, prefetch float64) Result {
	return Result{Name: name, Metrics: map[string]float64{
		"dedup_bytes_saved_ratio": dedup, "prefetch_hit_ratio": prefetch}}
}

func TestCompareBaselineFloorsCacheRatios(t *testing.T) {
	base := writeBaseline(t, []Result{ratios("BenchmarkSharedHotFile-8", 0.75, 0.9)})
	// Within the floor: -4% dedup, improved prefetch.
	regs, err := compareBaseline(base, []Result{ratios("BenchmarkSharedHotFile-8", 0.72, 0.95)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
	// Below the floor: both ratios eroded >5%.
	regs, err = compareBaseline(base, []Result{ratios("BenchmarkSharedHotFile-8", 0.50, 0.70)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
}

func TestCompareBaselineGatesSeqScanReads(t *testing.T) {
	mk := func(reads float64) Result {
		return Result{Name: "BenchmarkSeqScanPrefetch-8",
			Metrics: map[string]float64{"san_reads/scan": reads}}
	}
	base := writeBaseline(t, []Result{mk(22)})
	regs, err := compareBaseline(base, []Result{mk(32)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want the san_reads/scan ceiling", regs)
	}
}

func TestCompareBaselineMissingFile(t *testing.T) {
	if _, err := compareBaseline(filepath.Join(t.TempDir(), "nope.json"), nil); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
