package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	buf, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, allocs, bytes float64) Result {
	return Result{Name: name, Metrics: map[string]float64{
		"allocs/op": allocs, "B/op": bytes}}
}

func TestCompareBaselineCleanWithinSlack(t *testing.T) {
	base := writeBaseline(t, []Result{bench("BenchmarkF1-8", 1000, 50000)})
	// +4% is inside the 5% slack; improvements are always fine.
	regs, err := compareBaseline(base, []Result{bench("BenchmarkF1-8", 1040, 40000)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
}

func TestCompareBaselineFlagsRegression(t *testing.T) {
	base := writeBaseline(t, []Result{
		bench("BenchmarkF1-8", 1000, 50000),
		bench("BenchmarkF2-8", 10, 100),
	})
	regs, err := compareBaseline(base, []Result{
		bench("BenchmarkF1-8", 1100, 50000), // allocs +10%
		bench("BenchmarkF2-8", 10, 120),     // bytes +20%
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
}

func TestCompareBaselineIgnoresUnmatched(t *testing.T) {
	base := writeBaseline(t, []Result{bench("BenchmarkRetired-8", 1, 1)})
	regs, err := compareBaseline(base, []Result{bench("BenchmarkNew-8", 1e9, 1e9)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v; unmatched benchmarks must not gate", regs)
	}
}

func ratios(name string, dedup, prefetch float64) Result {
	return Result{Name: name, Metrics: map[string]float64{
		"dedup_bytes_saved_ratio": dedup, "prefetch_hit_ratio": prefetch}}
}

func TestCompareBaselineFloorsCacheRatios(t *testing.T) {
	base := writeBaseline(t, []Result{ratios("BenchmarkSharedHotFile-8", 0.75, 0.9)})
	// Within the floor: -4% dedup, improved prefetch.
	regs, err := compareBaseline(base, []Result{ratios("BenchmarkSharedHotFile-8", 0.72, 0.95)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
	// Below the floor: both ratios eroded >5%.
	regs, err = compareBaseline(base, []Result{ratios("BenchmarkSharedHotFile-8", 0.50, 0.70)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}
}

func TestCompareBaselineGatesSeqScanReads(t *testing.T) {
	mk := func(reads float64) Result {
		return Result{Name: "BenchmarkSeqScanPrefetch-8",
			Metrics: map[string]float64{"san_reads/scan": reads}}
	}
	base := writeBaseline(t, []Result{mk(22)})
	regs, err := compareBaseline(base, []Result{mk(32)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want the san_reads/scan ceiling", regs)
	}
}

func shardbench(shards int, mdops float64) Result {
	return Result{Name: "BenchmarkShardScaleZipf/shards=" + fmt.Sprint(shards) + "-8",
		Metrics: map[string]float64{"mdops_per_simsec": mdops}}
}

func TestDeriveShardScale(t *testing.T) {
	d := derive([]Result{
		shardbench(1, 1000), shardbench(2, 1900),
		shardbench(4, 3600), shardbench(8, 6400),
	})
	if d == nil {
		t.Fatal("no derived metrics")
	}
	for key, want := range map[string]float64{
		"shardscale.speedup_2x": 1.9, "shardscale.speedup_4x": 3.6,
		"shardscale.speedup_8x": 6.4, "shardscale.mdops_per_simsec.1": 1000,
	} {
		if got := d[key]; got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("%s = %v, want %v", key, got, want)
		}
	}
}

func TestCompareEnforcesShardSpeedupFloor(t *testing.T) {
	base := writeBaseline(t, nil)
	// 4 shards only 2.1x one shard: below the 3x absolute floor.
	regs, err := compareBaseline(base, []Result{shardbench(1, 1000), shardbench(4, 2100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want the speedup_4x floor", regs)
	}
	// At 3.4x the floor passes.
	regs, err = compareBaseline(base, []Result{shardbench(1, 1000), shardbench(4, 3400)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
}

func failover(ms float64) Result {
	return Result{Name: "BenchmarkReplicaFailover-8",
		Metrics: map[string]float64{"takeover_ms": ms}}
}

func TestDeriveFailoverTakeover(t *testing.T) {
	d := derive([]Result{failover(1100)})
	if d == nil || d["failover.takeover_ms"] != 1100 {
		t.Fatalf("derived = %v, want failover.takeover_ms 1100", d)
	}
}

func TestCompareEnforcesTakeoverCeiling(t *testing.T) {
	// Absolute ceiling: the analytic takeover bound, baseline or not.
	base := writeBaseline(t, nil)
	regs, err := compareBaseline(base, []Result{failover(takeoverMsCeiling + 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want the takeover_ms ceiling", regs)
	}
	regs, err = compareBaseline(base, []Result{failover(1100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
	// Relative gate: the window may not grow >5% over the stored baseline
	// even while under the absolute ceiling.
	base = writeBaseline(t, []Result{failover(1100)})
	regs, err = compareBaseline(base, []Result{failover(1300)})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want the takeover_ms +5%% gate", regs)
	}
}

func TestCompareBaselineMissingFile(t *testing.T) {
	if _, err := compareBaseline(filepath.Join(t.TempDir(), "nope.json"), nil); err == nil {
		t.Fatal("missing baseline accepted")
	}
}
