package replica

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// harness wires M negotiators over a lossy simulated bus with per-node
// rate-skewed clocks — the smallest installation that can exercise the
// negotiation under fire.
type harness struct {
	s      *sim.Scheduler
	cfg    Config // template: LeaseTerm, Bound, RetryInterval
	group  []msg.NodeID
	nodes  map[msg.NodeID]*Negotiator
	clocks map[msg.NodeID]*sim.NodeClock
	tr     *trace.Tracer
	ring   *trace.Ring

	// events records each emission alongside GLOBAL sim time, giving the
	// safety assertion one timeline across skewed local clocks.
	events []timedEvent

	delay time.Duration
	// dropRate is the seeded per-message loss probability; partitioned
	// and crashed describe harder faults.
	dropRate    float64
	partitioned map[msg.NodeID]bool
	crashed     map[msg.NodeID]bool

	// intervals accumulates per-node believed-active spans for the
	// at-most-one-holder assertion.
	open   map[msg.NodeID]sim.Time
	closed []holderSpan
}

type timedEvent struct {
	ev     trace.Event
	global sim.Time
}

type holderSpan struct {
	node       msg.NodeID
	from, till sim.Time
}

func newHarness(t *testing.T, seed int64, m int, term time.Duration) *harness {
	t.Helper()
	h := &harness{
		s: sim.NewScheduler(seed),
		cfg: Config{
			LeaseTerm:     term,
			Bound:         sim.RateBound{Eps: 0.05},
			RetryInterval: 50 * time.Millisecond,
		},
		nodes:       make(map[msg.NodeID]*Negotiator),
		clocks:      make(map[msg.NodeID]*sim.NodeClock),
		ring:        trace.NewRing(1 << 14),
		partitioned: make(map[msg.NodeID]bool),
		crashed:     make(map[msg.NodeID]bool),
		open:        make(map[msg.NodeID]sim.Time),
		delay:       500 * time.Microsecond,
	}
	h.tr = trace.New(h.ring, trace.SinkFunc(func(e trace.Event) {
		h.events = append(h.events, timedEvent{e, h.s.Now()})
		switch e.Type {
		case trace.EvReplicaLeaseGranted:
			if _, is := h.open[e.Node]; !is {
				h.open[e.Node] = h.s.Now()
			}
		case trace.EvReplicaStepdown:
			h.closeSpan(e.Node)
		}
	}))
	for i := 0; i < m; i++ {
		h.group = append(h.group, msg.NodeID(1+i))
	}
	for _, id := range h.group {
		h.boot(id, false)
	}
	return h
}

func (h *harness) closeSpan(id msg.NodeID) {
	if from, is := h.open[id]; is {
		h.closed = append(h.closed, holderSpan{id, from, h.s.Now()})
		delete(h.open, id)
	}
}

func (h *harness) boot(id msg.NodeID, warmup bool) {
	rng := rand.New(rand.NewSource(int64(id) * 7919))
	clock := h.s.NewClockWithin(h.cfg.Bound.Eps, rng)
	cfg := h.cfg
	cfg.Self, cfg.Group, cfg.Warmup = id, h.group, warmup
	n := New(cfg, clock, h.sender(id), h.tr)
	h.nodes[id] = n
	h.clocks[id] = clock
	delete(h.crashed, id)
	n.Start()
}

func (h *harness) sender(from msg.NodeID) func(msg.NodeID, msg.Message) {
	return func(to msg.NodeID, m msg.Message) {
		if h.crashed[from] || h.partitioned[from] || h.partitioned[to] {
			return
		}
		if h.dropRate > 0 && h.s.Rand().Float64() < h.dropRate {
			return
		}
		jitter := time.Duration(h.s.Rand().Intn(500)) * time.Microsecond
		h.s.After(h.delay+jitter, func() {
			if h.crashed[to] || h.partitioned[from] || h.partitioned[to] {
				return
			}
			if n := h.nodes[to]; n != nil {
				n.Deliver(m)
			}
		})
	}
}

func (h *harness) crash(id msg.NodeID) {
	h.nodes[id].Stop()
	h.crashed[id] = true
	h.closeSpan(id) // a dead replica believes nothing
}

// assertAtMostOneHolder verifies the PaxosLease safety property on the
// global timeline: no two replicas' believed-active spans overlap.
func (h *harness) assertAtMostOneHolder(t *testing.T) {
	t.Helper()
	spans := append([]holderSpan(nil), h.closed...)
	for id, from := range h.open {
		spans = append(spans, holderSpan{id, from, h.s.Now()})
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.node == b.node {
				continue
			}
			if a.from.Before(b.till) && b.from.Before(a.till) {
				t.Fatalf("two holders at once: %v active [%v,%v] overlaps %v active [%v,%v]",
					a.node, a.from, a.till, b.node, b.from, b.till)
			}
		}
	}
}

func (h *harness) activeNode() (msg.NodeID, bool) {
	for id, n := range h.nodes {
		if !h.crashed[id] && n.Active() {
			return id, true
		}
	}
	return msg.None, false
}

// TestElectsSingleHolder: a cold 3-replica group elects exactly one
// active, and renewals keep it active indefinitely.
func TestElectsSingleHolder(t *testing.T) {
	h := newHarness(t, 1, 3, 2*time.Second)
	h.s.RunFor(time.Second)
	id, ok := h.activeNode()
	if !ok {
		t.Fatal("no replica became active")
	}
	if id != h.group[0] {
		t.Fatalf("cold boot elected %v, want staggered winner %v", id, h.group[0])
	}
	// Hold through many renewal cycles.
	h.s.RunFor(30 * time.Second)
	if got, ok := h.activeNode(); !ok || got != id {
		t.Fatalf("holder changed without a fault: %v -> %v", id, got)
	}
	events := h.ring.Events()
	if n := events.Count(trace.ByType(trace.EvReplicaStepdown)); n != 0 {
		t.Fatalf("%d stepdowns during steady state", n)
	}
	if n := events.Count(trace.ByType(trace.EvReplicaLeaseGranted), trace.ByNote("renew")); n < 10 {
		t.Fatalf("only %d renewals in 30s with a 2s term", n)
	}
	h.assertAtMostOneHolder(t)
}

// TestFailoverWithinBound: crash the active; a passive takes over within
// one stretched lease term plus negotiation slack.
func TestFailoverWithinBound(t *testing.T) {
	h := newHarness(t, 2, 3, 2*time.Second)
	h.s.RunFor(time.Second)
	id, ok := h.activeNode()
	if !ok {
		t.Fatal("no replica became active")
	}
	killedAt := h.s.Now()
	h.crash(id)
	bound := h.cfg.Bound.Stretch(h.cfg.LeaseTerm) + // acceptors forget the dead holder
		h.cfg.Bound.Stretch(4*h.cfg.RetryInterval*time.Duration(len(h.group))) // candidacy pacing + a round
	h.s.RunWhile(func() bool {
		_, ok := h.activeNode()
		return !ok && h.s.Now().Sub(killedAt) < time.Minute
	})
	succ, ok := h.activeNode()
	if !ok {
		t.Fatal("no takeover after a minute")
	}
	if succ == id {
		t.Fatal("crashed node still counted active")
	}
	if took := h.s.Now().Sub(killedAt); took > bound {
		t.Fatalf("takeover took %v, bound %v", took, bound)
	}
	h.assertAtMostOneHolder(t)
}

// TestRestartWarmupRequired: a replica that crashes and restarts must sit
// out the acquisition timeout before voting again (diskless amnesia).
func TestRestartWarmupRequired(t *testing.T) {
	h := newHarness(t, 3, 3, 2*time.Second)
	h.s.RunFor(time.Second)
	id, _ := h.activeNode()
	h.crash(id)
	h.s.RunFor(100 * time.Millisecond)
	h.boot(id, true)
	restarted := h.nodes[id]
	h.s.RunFor(time.Second) // inside the warmup window
	if restarted.Active() {
		t.Fatal("restarted replica became active inside its warmup window")
	}
	h.s.RunFor(time.Minute)
	if _, ok := h.activeNode(); !ok {
		t.Fatal("group never re-elected after restart")
	}
	h.assertAtMostOneHolder(t)
}
