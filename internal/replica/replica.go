// Package replica elects the active lease authority for a shard among M
// diskless server replicas, PaxosLease-style (Trencseni, Gazso, Reinhardt;
// see PAPERS.md).
//
// The paper's lease economy makes the authority cheap to replicate: during
// normal operation the server keeps ZERO per-client lease state (§3), so a
// passive replica needs nothing but the metadata store to take over — lock
// state is re-asserted by the clients themselves through the §6
// grace-period recovery. What remains is agreeing on WHO is active, and
// PaxosLease does that with no disk writes and no distinguished master:
//
//   - A candidate opens a ballot and sends ReplicaPrepare to the group.
//   - Acceptors promise the ballot (ReplicaPromise), reporting any lease
//     they have accepted that has not yet expired on their own clock.
//   - If a majority promises and no live accepted lease names another
//     replica, the candidate proposes itself (ReplicaPropose); once a
//     majority accepts (ReplicaAccept), it holds the authority lease for
//     the fixed term, measured from an instant captured BEFORE the first
//     prepare was sent — the same conservative ordered-events rule the
//     client lease uses for tC1 (§3.1).
//
// Safety needs no clock synchronization, only the paper's rate bound ε:
// the holder believes its lease runs [t0, t0+term) on its clock, while
// every acceptor holds the accepted state for term·(1+ε) on its own clock
// from an acceptance that happened after t0. Any competing candidate must
// intersect the granting majority, finds a live accepted lease there, and
// backs off. Lease timeouts are therefore strictly shorter than
// acquisition timeouts by construction, and two replicas can never both
// believe they are active at the same instant.
//
// The state machines are driven entirely by the injected sim.Clock: they
// run deterministically on the simulator and on wall clocks under rpcnet.
package replica

import (
	"fmt"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultLeaseTerm is the authority-lease term used when a deployment
// does not choose one: long enough that renewal traffic is negligible
// next to client traffic, short enough to keep failover within a few
// seconds.
const DefaultLeaseTerm = 2 * time.Second

// Config parameterizes one replica's negotiator.
type Config struct {
	// Self is this replica's node ID.
	Self msg.NodeID
	// Group is the full replica group, including Self. Order must be
	// identical at every member (it determines ballot disambiguation and
	// candidacy staggering).
	Group []msg.NodeID
	// LeaseTerm is how long one granted authority lease runs on the
	// holder's clock. The holder re-negotiates at half term; acceptors
	// hold accepted state for LeaseTerm·(1+ε), which is the acquisition
	// timeout that makes safety clock-sync-free.
	LeaseTerm time.Duration
	// Bound is the installation's clock rate-synchronization bound ε.
	Bound sim.RateBound
	// RetryInterval paces candidacy checks and bounds a negotiation
	// round; it should comfortably exceed one group round trip.
	RetryInterval time.Duration
	// Warmup must be set when this negotiator replaces a crashed one:
	// a diskless acceptor has forgotten its promises and accepted state,
	// so it must neither answer prepares/proposes nor campaign until one
	// full acquisition timeout has passed on its clock — otherwise its
	// amnesia could let a second holder win a quorum while the first's
	// lease is still live. A cold-booting group (no prior incarnation)
	// may skip the wait.
	Warmup bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case len(c.Group) == 0:
		return fmt.Errorf("replica: empty group")
	case c.LeaseTerm <= 0:
		return fmt.Errorf("replica: LeaseTerm must be positive, got %v", c.LeaseTerm)
	case c.RetryInterval <= 0:
		return fmt.Errorf("replica: RetryInterval must be positive, got %v", c.RetryInterval)
	}
	for i, n := range c.Group {
		if n == c.Self {
			return nil
		}
		if i > 0 && c.Group[i-1] == n {
			return fmt.Errorf("replica: duplicate group member %v", n)
		}
	}
	return fmt.Errorf("replica: Self %v not in group %v", c.Self, c.Group)
}

// Negotiator is one replica's combined proposer and acceptor. It is not
// safe for concurrent use; the owning server serializes access (the
// scheduler goroutine in simulation, the node executor under rpcnet).
type Negotiator struct {
	cfg   Config
	idx   int // Self's position in Group
	clock sim.Clock
	send  func(to msg.NodeID, m msg.Message)
	tr    *trace.Tracer

	// OnActive fires when this replica wins (or re-wins after a
	// stepdown) the authority lease. Renewals of a held lease do not
	// re-fire it.
	OnActive func(ballot uint64)
	// OnStepdown fires when a held lease lapses without extension or a
	// higher-ballot holder is observed.
	OnStepdown func()

	// Proposer state.
	active      bool
	campaigning bool
	ballot      uint64 // ballot of the in-flight campaign
	round       uint64
	t0          sim.Time // conservative lease start of the in-flight campaign
	leaseUntil  sim.Time // local expiry of the held lease
	promises    map[msg.NodeID]*msg.ReplicaPromise
	accepts     map[msg.NodeID]bool
	roundTimer  sim.Timer
	renewTimer  sim.Timer
	expireTimer sim.Timer
	checkTimer  sim.Timer

	// Acceptor state.
	promised  uint64
	accBallot uint64
	accHolder msg.NodeID
	accExpiry sim.Time

	// warmupUntil gates all participation after a restart (see
	// Config.Warmup).
	warmupUntil sim.Time

	stopped bool
}

// New creates a negotiator. send delivers a message to a peer replica
// (never called with Self). The negotiator is inert until Start.
func New(cfg Config, clock sim.Clock, send func(to msg.NodeID, m msg.Message), tr *trace.Tracer) *Negotiator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	idx := 0
	for i, id := range cfg.Group {
		if id == cfg.Self {
			idx = i
		}
	}
	return &Negotiator{cfg: cfg, idx: idx, clock: clock, send: send, tr: tr}
}

// Start arms the candidacy loop. The first check is staggered by group
// position so a cold-booting group converges on its first member without
// a ballot duel (safety never depends on this — ballots do). A warming-up
// restart sits out one acquisition timeout first.
func (n *Negotiator) Start() {
	delay := n.cfg.RetryInterval * time.Duration(n.idx) / 2
	if n.cfg.Warmup {
		n.warmupUntil = n.clock.Now().Add(n.acquireTimeout())
		n.scheduleCheck(n.acquireTimeout() + delay)
		return
	}
	n.scheduleCheck(delay)
	if n.idx == 0 {
		n.campaign()
	}
}

// Stop halts all activity (replica crash, node shutdown).
func (n *Negotiator) Stop() {
	n.stopped = true
	for _, t := range []sim.Timer{n.roundTimer, n.renewTimer, n.expireTimer, n.checkTimer} {
		if t != nil {
			t.Stop()
		}
	}
}

// Active reports whether this replica currently holds the authority lease.
func (n *Negotiator) Active() bool { return n.active }

// Role reports the replica's role as a msg.Role* constant.
func (n *Negotiator) Role() uint8 {
	switch {
	case n.active:
		return msg.RoleActive
	case n.campaigning:
		return msg.RoleCandidate
	}
	return msg.RolePassive
}

// Ballot reports the highest ballot this replica has opened or promised,
// for operator display.
func (n *Negotiator) Ballot() uint64 {
	if n.ballot > n.promised {
		return n.ballot
	}
	return n.promised
}

// ActiveHint reports the replica this node believes holds the authority
// lease: itself when active, otherwise the holder of its live accepted
// state, otherwise None.
func (n *Negotiator) ActiveHint() msg.NodeID {
	if n.active {
		return n.cfg.Self
	}
	if n.acceptedLive() {
		return n.accHolder
	}
	return msg.None
}

// majority is the quorum size.
func (n *Negotiator) majority() int { return len(n.cfg.Group)/2 + 1 }

// acquireTimeout is how long an acceptor holds accepted state on its own
// clock: the lease term stretched by the rate bound, so it provably
// outlives the holder's belief (Theorem 3.1's argument).
func (n *Negotiator) acquireTimeout() time.Duration {
	return n.cfg.Bound.Stretch(n.cfg.LeaseTerm)
}

func (n *Negotiator) acceptedLive() bool {
	return n.accHolder != msg.None && n.clock.Now().Before(n.accExpiry)
}

func (n *Negotiator) emit(ev trace.Event) {
	if !n.tr.Enabled() {
		return
	}
	ev.Node = n.cfg.Self
	ev.Time = n.clock.Now()
	n.tr.Emit(ev)
}

// scheduleCheck arms the candidacy loop: campaign whenever no live lease
// is visible and nothing is in flight.
func (n *Negotiator) scheduleCheck(d time.Duration) {
	n.checkTimer = n.clock.AfterFunc(d, func() {
		if n.stopped {
			return
		}
		if !n.campaigning {
			switch {
			case n.active:
				// Retry an overdue renewal: the half-term renewTimer fires
				// once, and a round lost to the network must not leave the
				// holder idling toward hard expiry.
				if !n.clock.Now().Before(n.leaseUntil.Add(-n.cfg.LeaseTerm / 2)) {
					n.campaign()
				}
			case !n.acceptedLive():
				n.campaign()
			}
		}
		// Passive replicas re-check one interval after the lease they
		// know of could lapse; everyone else at the pacing interval.
		d := n.cfg.RetryInterval * time.Duration(1+n.idx)
		if n.active {
			d = n.cfg.RetryInterval
		}
		n.scheduleCheck(d)
	})
}

// campaign opens a fresh ballot: the prepare phase.
func (n *Negotiator) campaign() {
	if n.stopped {
		return
	}
	n.round++
	n.ballot = n.round*uint64(len(n.cfg.Group)) + uint64(n.idx) + 1
	n.t0 = n.clock.Now() // captured BEFORE any prepare is sent
	n.campaigning = true
	n.promises = make(map[msg.NodeID]*msg.ReplicaPromise, len(n.cfg.Group))
	n.accepts = nil
	n.emit(trace.Event{Type: trace.EvReplicaBallotOpen, Epoch: msg.Epoch(n.ballot)})
	if n.roundTimer != nil {
		n.roundTimer.Stop()
	}
	ballot := n.ballot
	n.roundTimer = n.clock.AfterFunc(n.cfg.RetryInterval*2, func() {
		// The round went stale (lost messages, a duel with a higher
		// ballot): abandon it; the candidacy loop will retry.
		if !n.stopped && n.campaigning && n.ballot == ballot {
			n.abandon()
		}
	})
	prepare := &msg.ReplicaPrepare{From: n.cfg.Self, Ballot: n.ballot}
	for _, id := range n.cfg.Group {
		if id == n.cfg.Self {
			n.handlePrepare(prepare)
			continue
		}
		n.send(id, prepare)
	}
}

// abandon ends the in-flight campaign without a lease.
func (n *Negotiator) abandon() {
	n.campaigning = false
	n.promises = nil
	n.accepts = nil
	if n.roundTimer != nil {
		n.roundTimer.Stop()
	}
}

// Deliver routes one negotiation message; it returns false for messages
// that are not part of the replica protocol.
func (n *Negotiator) Deliver(m msg.Message) bool {
	if n.stopped {
		// A stopped negotiator's node is down; its transports are too.
		// Tolerate stragglers during teardown.
		switch m.(type) {
		case *msg.ReplicaPrepare, *msg.ReplicaPromise, *msg.ReplicaPropose, *msg.ReplicaAccept:
			return true
		}
		return false
	}
	switch m := m.(type) {
	case *msg.ReplicaPrepare:
		n.handlePrepare(m)
	case *msg.ReplicaPromise:
		n.handlePromise(m)
	case *msg.ReplicaPropose:
		n.handlePropose(m)
	case *msg.ReplicaAccept:
		n.handleAccept(m)
	default:
		return false
	}
	return true
}

// reply sends a response to a peer, or short-circuits it locally when the
// peer is Self (a candidate is its own acceptor).
func (n *Negotiator) reply(to msg.NodeID, m msg.Message) {
	if to == n.cfg.Self {
		n.Deliver(m)
		return
	}
	n.send(to, m)
}

// --- Acceptor --------------------------------------------------------------

func (n *Negotiator) handlePrepare(m *msg.ReplicaPrepare) {
	if n.clock.Now().Before(n.warmupUntil) {
		return // restarted acceptor: amnesiac, must not vote yet
	}
	if m.Ballot < n.promised {
		n.emit(trace.Event{Type: trace.EvReplicaPromise, Peer: m.From,
			Epoch: msg.Epoch(m.Ballot), Note: "reject"})
		n.reply(m.From, &msg.ReplicaPromise{From: n.cfg.Self, Ballot: m.Ballot})
		return
	}
	n.promised = m.Ballot
	p := &msg.ReplicaPromise{From: n.cfg.Self, Ballot: m.Ballot, OK: true}
	note := ""
	if n.acceptedLive() {
		p.Accepted = true
		p.AcceptedBallot = n.accBallot
		p.AcceptedHolder = n.accHolder
		note = fmt.Sprintf("accepted=%v", n.accHolder)
	}
	n.emit(trace.Event{Type: trace.EvReplicaPromise, Peer: m.From,
		Epoch: msg.Epoch(m.Ballot), Note: note})
	n.reply(m.From, p)
}

func (n *Negotiator) handlePropose(m *msg.ReplicaPropose) {
	if n.clock.Now().Before(n.warmupUntil) {
		return // restarted acceptor: amnesiac, must not vote yet
	}
	if m.Ballot < n.promised {
		n.reply(m.From, &msg.ReplicaAccept{From: n.cfg.Self, Ballot: m.Ballot})
		return
	}
	n.promised = m.Ballot
	n.accBallot = m.Ballot
	n.accHolder = m.Holder
	n.accExpiry = n.clock.Now().Add(n.acquireTimeout())
	if n.active && m.Holder != n.cfg.Self {
		// A higher ballot installed another holder. Under the rate bound
		// this cannot happen while our lease is live; if it does reach us
		// (our own expiry timer races the message), cede immediately.
		n.stepdown("superseded")
	}
	n.reply(m.From, &msg.ReplicaAccept{From: n.cfg.Self, Ballot: m.Ballot, OK: true})
}

// --- Proposer --------------------------------------------------------------

func (n *Negotiator) handlePromise(m *msg.ReplicaPromise) {
	if !n.campaigning || m.Ballot != n.ballot || n.accepts != nil {
		return // stale round, or already past the prepare phase
	}
	if !m.OK {
		return // rejected; the round timer will abandon the campaign
	}
	n.promises[m.From] = m
	if len(n.promises) < n.majority() {
		return
	}
	// Quorum of promises. PaxosLease's simplification of classic Paxos:
	// if any live accepted lease names ANOTHER replica, do not adopt it —
	// back off and let it run (leases expire on their own; only the
	// holder may extend).
	for _, p := range n.promises {
		if p.Accepted && p.AcceptedHolder != n.cfg.Self {
			n.abandon()
			return
		}
	}
	n.accepts = make(map[msg.NodeID]bool, len(n.cfg.Group))
	n.emit(trace.Event{Type: trace.EvReplicaPropose, Epoch: msg.Epoch(n.ballot)})
	propose := &msg.ReplicaPropose{From: n.cfg.Self, Ballot: n.ballot, Holder: n.cfg.Self}
	for _, id := range n.cfg.Group {
		if id == n.cfg.Self {
			n.handlePropose(propose)
			continue
		}
		n.send(id, propose)
	}
}

func (n *Negotiator) handleAccept(m *msg.ReplicaAccept) {
	if !n.campaigning || m.Ballot != n.ballot || n.accepts == nil {
		return
	}
	if !m.OK {
		return
	}
	n.accepts[m.From] = true
	if len(n.accepts) < n.majority() {
		return
	}
	// Majority accepted: the lease is ours for [t0, t0+term) on our
	// clock — t0 was read before the first prepare left, so every
	// acceptor's acquire timeout outlives this interval.
	n.campaigning = false
	if n.roundTimer != nil {
		n.roundTimer.Stop()
	}
	wasActive := n.active
	n.active = true
	n.leaseUntil = n.t0.Add(n.cfg.LeaseTerm)
	note := ""
	if wasActive {
		note = "renew"
	}
	n.emit(trace.Event{Type: trace.EvReplicaLeaseGranted,
		Epoch: msg.Epoch(n.ballot), TC1: n.t0, Note: note})
	n.armLeaseTimers()
	if !wasActive && n.OnActive != nil {
		n.OnActive(n.ballot)
	}
}

// armLeaseTimers schedules the half-term renewal and the hard expiry.
func (n *Negotiator) armLeaseTimers() {
	if n.renewTimer != nil {
		n.renewTimer.Stop()
	}
	if n.expireTimer != nil {
		n.expireTimer.Stop()
	}
	renewAt := n.cfg.LeaseTerm / 2
	n.renewTimer = n.clock.AfterFunc(renewAt, func() {
		if !n.stopped && n.active && !n.campaigning {
			n.campaign()
		}
	})
	until := n.leaseUntil
	n.expireTimer = n.clock.AfterFunc(n.leaseUntil.Sub(n.clock.Now()), func() {
		if n.stopped || !n.active || n.leaseUntil != until {
			return // a renewal extended the lease
		}
		n.stepdown("expired")
	})
}

// stepdown cedes the authority lease.
func (n *Negotiator) stepdown(why string) {
	n.active = false
	n.abandon()
	n.emit(trace.Event{Type: trace.EvReplicaStepdown,
		Epoch: msg.Epoch(n.ballot), Note: why})
	if n.OnStepdown != nil {
		n.OnStepdown()
	}
}
