package replica

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/msg"
)

// TestSafetyFaultMatrix is the PaxosLease safety property test: across a
// matrix of partitions, replica crashes (with diskless warmup restarts),
// and seeded message loss injected at randomized points in the
// negotiation, at most one replica believes it holds the authority lease
// at any global trace timestamp. Liveness is asserted only for rounds
// that end with a healed majority.
func TestSafetyFaultMatrix(t *testing.T) {
	type fault struct {
		name   string
		inject func(h *harness, victim msg.NodeID)
		heal   func(h *harness, victim msg.NodeID)
	}
	faults := []fault{
		{
			name:   "partition-active",
			inject: func(h *harness, v msg.NodeID) { h.partitioned[v] = true },
			heal:   func(h *harness, v msg.NodeID) { delete(h.partitioned, v) },
		},
		{
			name:   "crash-active",
			inject: func(h *harness, v msg.NodeID) { h.crash(v) },
			heal:   func(h *harness, v msg.NodeID) { h.boot(v, true) },
		},
		{
			name: "crash-then-amnesiac-restart",
			inject: func(h *harness, v msg.NodeID) {
				h.crash(v)
				// Restart almost immediately: the dangerous case, where a
				// forgetful acceptor could re-promise inside a window it
				// already vouched for. Warmup must prevent that.
				h.s.After(20*time.Millisecond, func() { h.boot(v, true) })
			},
			heal: func(h *harness, v msg.NodeID) {},
		},
		{
			name: "partition-minority",
			inject: func(h *harness, v msg.NodeID) {
				h.partitioned[v] = true
				for _, id := range h.group {
					if id != v && !h.crashed[id] {
						h.partitioned[id] = true
						break
					}
				}
			},
			heal: func(h *harness, v msg.NodeID) {
				for id := range h.partitioned {
					delete(h.partitioned, id)
				}
			},
		},
	}
	for _, m := range []int{3, 5} {
		for _, drop := range []float64{0, 0.05, 0.20} {
			for fi, f := range faults {
				f := f
				name := fmt.Sprintf("m%d/drop%.0f%%/%s", m, drop*100, f.name)
				t.Run(name, func(t *testing.T) {
					seed := int64(1000*m + int(drop*100) + fi)
					h := newHarness(t, seed, m, time.Second)
					h.dropRate = drop
					// Let an initial regime establish (or fail to, under
					// heavy loss — safety must hold either way).
					h.s.RunFor(2 * time.Second)
					// Inject the fault at a randomized point relative to the
					// lease cycle, aimed at whoever currently holds it.
					h.s.RunFor(time.Duration(h.s.Rand().Intn(1000)) * time.Millisecond)
					victim, held := h.activeNode()
					if !held {
						victim = h.group[0]
					}
					f.inject(h, victim)
					h.s.RunFor(10 * time.Second)
					f.heal(h, victim)
					h.s.RunFor(20 * time.Second)
					h.assertAtMostOneHolder(t)
					if _, ok := h.activeNode(); !ok && drop < 0.20 {
						t.Fatal("no active replica after heal with a live majority")
					}
				})
			}
		}
	}
}
