package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/msg"
	"repro/internal/trace"
)

// sanSnapshot captures every block of every disk: contents and version
// stamp — the SAN's entire durable state.
type sanSnapshot map[msg.NodeID]map[uint64]string

func snapshotSAN(cl *Cluster) sanSnapshot {
	out := make(sanSnapshot)
	for _, d := range cl.Disks {
		blocks := make(map[uint64]string)
		for b := uint64(0); b < d.Capacity(); b++ {
			if data, ver, ok := d.PeekBlock(b); ok {
				blocks[b] = fmt.Sprintf("v%d:%x", ver, data)
			}
		}
		out[d.ID()] = blocks
	}
	return out
}

// runFlushPattern drives one cluster through a randomized dirty-page
// pattern — several files, random pages, some pages re-dirtied across an
// intermediate sync — and returns the SAN state after the final sync.
// The op sequence depends only on seed, never on batch, so any state
// difference between batch settings is the flush path's fault.
func runFlushPattern(t *testing.T, seed int64, batch int) sanSnapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Disks = 3
	opts.DiskBlocks = 512
	opts.FlushBatch = batch
	cl := New(opts)
	cl.Start()

	nfiles := 1 + rng.Intn(4)
	handles := make([]msg.Handle, nfiles)
	for f := 0; f < nfiles; f++ {
		h, _ := cl.MustOpen(0, fmt.Sprintf("/f%d", f), true, true)
		handles[f] = h
	}
	write := func(f int, page uint64, fill byte) {
		if errno := cl.Write(0, handles[f], page, block(fill)); errno != msg.OK {
			t.Fatalf("write f%d page %d: %v", f, page, errno)
		}
	}
	for f := 0; f < nfiles; f++ {
		for _, page := range rng.Perm(64)[:1+rng.Intn(48)] {
			write(f, uint64(page), byte('a'+rng.Intn(26)))
		}
	}
	// Intermediate sync, then re-dirty a subset: in-flight-version
	// handling (MarkClean only when the version still matches) must not
	// depend on how the flush was batched.
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatalf("mid sync: %v", errno)
	}
	for f := 0; f < nfiles; f++ {
		for _, page := range rng.Perm(64)[:rng.Intn(24)] {
			write(f, uint64(page), byte('A'+rng.Intn(26)))
		}
	}
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatalf("final sync: %v", errno)
	}
	for i := range cl.Clients {
		if dirty := cl.Clients[i].Cache().TotalDirty(); dirty != 0 {
			t.Fatalf("client %d still has %d dirty pages after sync", i, dirty)
		}
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations (batch=%d): %v", batch, got)
	}
	return snapshotSAN(cl)
}

// TestFlushCoalescingEquivalence is the tentpole's safety property:
// whatever the batch size, a flush leaves the SAN byte-identical (data
// AND version stamps) to the legacy per-page write path.
func TestFlushCoalescingEquivalence(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := int64(1000 + trial)
		rng := rand.New(rand.NewSource(seed))
		batch := 2 + rng.Intn(63)
		perPage := runFlushPattern(t, seed, 1)
		coalesced := runFlushPattern(t, seed, batch)
		if len(perPage) != len(coalesced) {
			t.Fatalf("trial %d: disk sets differ", trial)
		}
		for diskID, want := range perPage {
			got := coalesced[diskID]
			if len(got) != len(want) {
				t.Fatalf("trial %d (batch=%d): disk %v has %d written blocks per-page, %d coalesced",
					trial, batch, diskID, len(want), len(got))
			}
			for b, w := range want {
				if got[b] != w {
					t.Fatalf("trial %d (batch=%d): disk %v block %d differs:\nper-page  %.60s\ncoalesced %.60s",
						trial, batch, diskID, b, w, got[b])
				}
			}
		}
	}
}

// traceRun executes a fixed default-config scenario (burst writes from
// two clients, syncs, a cross-client read forcing a demand flush) and
// returns the full trace record.
func traceRun(t *testing.T) []string {
	t.Helper()
	ring := trace.NewRing(1 << 14)
	opts := DefaultOptions()
	opts.Tracer = trace.New(ring)
	cl := New(opts)
	cl.Start()
	h0, _ := cl.MustOpen(0, "/a", true, true)
	for i := 0; i < 16; i++ {
		if errno := cl.Write(0, h0, uint64(i), block(byte('a'+i))); errno != msg.OK {
			t.Fatalf("write %d: %v", i, errno)
		}
	}
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatalf("sync: %v", errno)
	}
	for i := 0; i < 8; i++ {
		cl.Write(0, h0, uint64(i), block(byte('A'+i)))
	}
	// The reader's demand triggers a vectored demand-compliance flush.
	h1, _ := cl.MustOpen(1, "/a", false, false)
	if _, errno := cl.Read(1, h1, 3); errno != msg.OK {
		t.Fatalf("read: %v", errno)
	}
	events := ring.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%+v", e)
	}
	return out
}

// TestDefaultConfigTraceDeterministic: with vectored flushing on by
// default, two identical default-config runs still produce an identical
// event record — batching must not introduce nondeterminism.
func TestDefaultConfigTraceDeterministic(t *testing.T) {
	a := traceRun(t)
	b := traceRun(t)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at event %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	// And the batched flush actually happened: the burst sync must have
	// emitted at least one vectored-write disk event.
	found := false
	for _, line := range a {
		if bytes.Contains([]byte(line), []byte("writev n=")) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no vectored write in the default-config trace — coalescing is not on by default")
	}
}
