package cluster

import (
	"fmt"
	"testing"

	"repro/internal/msg"
	"repro/internal/trace"
)

// TestTraceTheorem31Ordering replays the paper's central scenario (Fig 2)
// with the trace bus attached and asserts Theorem 3.1 against the event
// record itself: the isolated client walks all four lease phases and its
// PhaseExpired strictly precedes the server's steal — on the global
// event order, not on any synchronized clock.
func TestTraceTheorem31Ordering(t *testing.T) {
	ring := trace.NewRing(8192)
	opts := DefaultOptions()
	opts.Tracer = trace.New(ring)
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/shared", true, true)
	if errno := cl.Write(0, h0, 0, block('X')); errno != msg.OK {
		t.Fatal(errno)
	}
	cl.Sync(0)
	// Re-dirty the block so the isolated client has something for its
	// phase-4 flush.
	if errno := cl.Write(0, h0, 0, block('Y')); errno != msg.OK {
		t.Fatal(errno)
	}

	cl.IsolateClient(0)

	// The survivor demands the same file; the server's demand goes
	// undelivered, the steal timer arms, and after τ(1+ε) the lock moves.
	h1, _, errno := cl.Open(1, "/shared", true, false)
	if errno != msg.OK {
		t.Fatalf("open on survivor: %v", errno)
	}
	if errno := cl.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatalf("survivor write: %v", errno)
	}

	events := ring.Events()
	isolated := ClientID(0)

	// The client walked the full state machine of Fig 4, in order.
	phases := events.PhaseSequence(isolated)
	want := []string{"valid", "renewal", "suspect", "flush", "expired"}
	if !trace.HasSubsequence(phases, want) {
		t.Fatalf("client phase sequence %v missing subsequence %v", phases, want)
	}

	// The server observed the delivery failure and armed, then fired, the
	// τ(1+ε) steal timer for exactly this client.
	if n := events.Count(trace.ByNode(ServerID), trace.ByType(trace.EvStealArmed), trace.ByPeer(isolated)); n != 1 {
		t.Fatalf("steal timer armed %d times, want 1", n)
	}
	if n := events.Count(trace.ByNode(ServerID), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated)); n != 1 {
		t.Fatalf("steal fired %d times, want 1", n)
	}

	// Theorem 3.1: the client's own expiry (after its flush completed)
	// precedes the server's steal in the global event order.
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire)),
		trace.And(trace.ByNode(ServerID), trace.ByType(trace.EvStealFired))); err != nil {
		t.Fatalf("Theorem 3.1 ordering: %v", err)
	}
	// And the flush finished before the lease ran out: the expiry event
	// must not be marked dirty.
	exp, _ := events.First(trace.ByNode(isolated), trace.ByType(trace.EvExpire))
	if exp.Note == "dirty" {
		t.Fatal("client expired with the phase-4 flush incomplete")
	}
	// The fence ROSE with (not before) the steal. Fence-lift events (On
	// false) happen at every rejoin and are not part of this invariant.
	fenceUp := func(e trace.Event) bool { return e.On }
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire)),
		trace.And(trace.ByNode(ServerID), trace.ByType(trace.EvFence), fenceUp)); err != nil {
		t.Fatalf("fence ordering: %v", err)
	}

	// Every event carries a node and a clock reading; client events
	// during the valid lease carry the registration epoch.
	for _, e := range events {
		if e.Node == 0 {
			t.Fatalf("event without node identity: %s", e)
		}
	}
}

// TestTraceSteadyStateServerSilent asserts the paper's headline claim on
// the event record: during failure-free operation — active clients,
// cross-client sharing, several lease periods long — the server emits NO
// lease events at all, and the clients renew purely opportunistically
// (zero keep-alives, because traffic never pauses long enough to reach
// phase 2).
func TestTraceSteadyStateServerSilent(t *testing.T) {
	ring := trace.NewRing(1 << 16)
	opts := DefaultOptions()
	opts.Tracer = trace.New(ring)
	cl := New(opts)
	cl.Start()
	// Registration itself emits rejoin bookkeeping (fence lifts); the
	// steady-state claim starts after every client is registered.
	steadyFrom := ring.Total()

	// Ordinary metadata traffic: every message doubles as a renewal
	// (§3.1). Cache-hit-only activity would legitimately need
	// keep-alives — the lease is renewed by messages, not local work —
	// so each iteration opens a fresh file (a Create request) and writes.
	end := cl.Sched.Now().Add(2*opts.Core.Tau + opts.Core.Tau/2)
	for i := 0; cl.Sched.Now().Before(end); i++ {
		h, _ := cl.MustOpen(0, fmt.Sprintf("/steady-%d", i), true, true)
		if errno := cl.Write(0, h, 0, block(byte('a'+i%26))); errno != msg.OK {
			t.Fatal(errno)
		}
		cl.Close(0, h)
		cl.RunFor(opts.Core.Tau / 25)
	}

	events := ring.Events().Filter(func(e trace.Event) bool { return e.Seq > steadyFrom })
	// The server performed zero lease work: no NACKs, no steal timers, no
	// demands-gone-bad, no fences. (Demands themselves are lock traffic
	// and legitimate; none occur in this single-writer run either.)
	if err := events.None(trace.ByNode(ServerID), trace.ByType(
		trace.EvNACKSent, trace.EvStealArmed, trace.EvStealFired,
		trace.EvDemandFailed, trace.EvFence)); err != nil {
		t.Fatalf("server lease activity in steady state: %v", err)
	}
	if cl.Server.Authority().SuspectCount() != 0 {
		t.Fatal("authority holds lease state in steady state")
	}
	if ops := cl.Reg.CounterValue("server.authority.ops"); ops != 0 {
		t.Fatalf("authority performed %d lease operations in steady state", ops)
	}

	// The ACTIVE client renewed opportunistically the whole time:
	// renewals present, keep-alives absent, no phase past renewal. (The
	// idle clients legitimately keep-alive to preserve their caches —
	// that is phase 2 doing its job, not a violation.)
	if n := events.Count(trace.ByNode(ClientID(0)), trace.ByType(trace.EvRenew)); n == 0 {
		t.Fatal("no opportunistic renewals recorded")
	}
	if err := events.None(trace.ByNode(ClientID(0)), trace.ByType(trace.EvKeepAlive)); err != nil {
		t.Fatalf("keep-alive during active traffic: %v", err)
	}
	for _, bad := range []string{"suspect", "flush", "expired"} {
		for _, ph := range events.PhaseSequence(ClientID(0)) {
			if ph == bad {
				t.Fatalf("active client reached phase %q", bad)
			}
		}
	}
}
