// Package cluster wires a complete simulated Storage Tank installation —
// scheduler, rate-skewed clocks, control network, SAN, disks, metadata
// server, clients, and the consistency oracle — exactly the topology of
// the paper's Figure 1. Tests, examples, and every experiment build on
// this harness.
package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/checker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Well-known node IDs: the server is 1, clients count up from 10, disks
// from 1000.
const (
	ServerID    msg.NodeID = 1
	FirstClient msg.NodeID = 10
	FirstDisk   msg.NodeID = 1000
)

// Options configures an installation.
type Options struct {
	Seed       int64
	Clients    int
	Disks      int
	DiskBlocks uint64
	// Core is the protocol configuration shared by all nodes.
	Core   core.Config
	Policy baselines.Policy
	// FlushInterval configures periodic client write-back (0 = off).
	FlushInterval time.Duration
	// ClockSkew draws client/server clock rates within the pairwise rate
	// bound Core.Bound.Eps when true; all clocks run at rate 1 otherwise.
	ClockSkew bool
	// Control/SAN override the network characteristics.
	Control, SAN simnet.Config
	// DiskService overrides per-op disk latency.
	DiskService time.Duration
	// NoChecker disables the consistency oracle (benchmarks measuring raw
	// cost).
	NoChecker bool
	// NoNACK and DisableFence are protocol ablations (see server.Config).
	NoNACK       bool
	DisableFence bool
	// DisableReassert turns off §6 lock reassertion after server restarts
	// (clients then pay the full lease recovery).
	DisableReassert bool
	// GracePeriod overrides the restarted server's reassertion window.
	GracePeriod time.Duration
	// CacheMaxPages bounds each client's resident cache (0 = unbounded).
	CacheMaxPages int
	// CacheQuota bounds each client's resident cache in bytes, counted
	// after content dedup (0 = unbounded).
	CacheQuota int64
	// FlushBatch bounds how many dirty pages one vectored SAN write may
	// carry (0 = client default; 1 = legacy per-page write-back).
	FlushBatch int
	// Prefetch is each client's sequential read-ahead window (0 = client
	// default; negative = disabled).
	Prefetch int
	// ClientRates pins explicit clock rates per client (overrides
	// ClockSkew for those indices); ServerRate pins the server's.
	ClientRates []float64
	ServerRate  float64
	// Tracer, when non-nil, receives lease-lifecycle events from every
	// node. Simulated clocks make the event timestamps deterministic.
	Tracer *trace.Tracer
}

// DefaultOptions returns a 3-client, 2-disk installation with the default
// protocol parameters (but a short τ suited to simulation runs).
func DefaultOptions() Options {
	cfg := core.DefaultConfig()
	cfg.Tau = 10 * time.Second
	cfg.RetryInterval = 200 * time.Millisecond
	return Options{
		Seed:        1,
		Clients:     3,
		Disks:       2,
		DiskBlocks:  1 << 14,
		Core:        cfg,
		Policy:      baselines.StorageTank(),
		ClockSkew:   true,
		Control:     simnet.DefaultControlConfig(),
		SAN:         simnet.DefaultSANConfig(),
		DiskService: 100 * time.Microsecond,
	}
}

// Cluster is one running installation.
type Cluster struct {
	Opts    Options
	Sched   *sim.Scheduler
	Control *simnet.Network
	SAN     *simnet.Network
	Server  *server.Server
	Clients []*client.Client
	Disks   []*disk.Disk
	Checker *checker.Checker
	Reg     *stats.Registry
}

// New builds an installation. Nothing runs until the scheduler does.
func New(opts Options) *Cluster {
	if opts.Clients < 1 || opts.Disks < 1 {
		panic("cluster: need at least one client and one disk")
	}
	s := sim.NewScheduler(opts.Seed)
	reg := stats.NewRegistry()
	cl := &Cluster{
		Opts:    opts,
		Sched:   s,
		Control: simnet.New(s, opts.Control),
		SAN:     simnet.New(s, opts.SAN),
		Reg:     reg,
	}
	if !opts.NoChecker {
		cl.Checker = checker.New(s)
	}
	cl.observeNetworks()
	// Dropped messages land in the trace stream under the same DropReason
	// taxonomy the live fault injector (internal/faultnet) uses.
	cl.Control.SetTracer(opts.Tracer)
	cl.SAN.SetTracer(opts.Tracer)

	newClock := func() *sim.NodeClock {
		if opts.ClockSkew && opts.Core.Bound.Eps > 0 {
			// Draw each rate within sqrt(1+eps) of 1 so any PAIR of
			// clocks satisfies the bound eps.
			half := math.Sqrt(1+opts.Core.Bound.Eps) - 1
			lo := 1 / (1 + half)
			hi := 1 + half
			rate := lo + s.Rand().Float64()*(hi-lo)
			return s.NewClock(rate, sim.Duration(s.Rand().Int63n(int64(time.Hour))))
		}
		return s.NewClock(1, 0)
	}

	// Disks.
	diskMap := make(map[msg.NodeID]uint64, opts.Disks)
	var obs disk.Observer
	for i := 0; i < opts.Disks; i++ {
		id := FirstDisk + msg.NodeID(i)
		d := disk.New(id, disk.Config{Blocks: opts.DiskBlocks, ServiceTime: opts.DiskService},
			s.NewClock(1, 0),
			func(to msg.NodeID, m msg.Message) { cl.SAN.Send(id, to, m) },
			reg, obs, disk.WithTracer(opts.Tracer))
		cl.Disks = append(cl.Disks, d)
		cl.SAN.Attach(id, d.Deliver)
		diskMap[id] = opts.DiskBlocks
	}

	// Server: attached to both networks (Fig 1).
	srvCfg := server.Config{
		Core: opts.Core, Policy: opts.Policy, Disks: diskMap,
		NoNACK: opts.NoNACK, DisableFence: opts.DisableFence,
	}
	serverClock := newClock()
	if opts.ServerRate > 0 {
		serverClock = s.NewClock(opts.ServerRate, 0)
	}
	srv := server.New(ServerID, srvCfg, serverClock,
		func(to msg.NodeID, m msg.Message) { cl.Control.Send(ServerID, to, m) },
		func(to msg.NodeID, m msg.Message) { cl.SAN.Send(ServerID, to, m) },
		reg, opts.Tracer)
	cl.Server = srv
	cl.Control.Attach(ServerID, srv.Deliver)
	cl.SAN.Attach(ServerID, srv.DeliverSAN)

	// Clients: attached to both networks.
	var oracle checker.Oracle = checker.Nop{}
	if cl.Checker != nil {
		oracle = cl.Checker
	}
	for i := 0; i < opts.Clients; i++ {
		id := FirstClient + msg.NodeID(i)
		ccfg := client.Config{
			Core: opts.Core, Policy: opts.Policy,
			FlushInterval: opts.FlushInterval, DisableReassert: opts.DisableReassert,
			CacheMaxPages: opts.CacheMaxPages, CacheQuota: opts.CacheQuota,
			FlushBatch: opts.FlushBatch, Prefetch: opts.Prefetch,
		}
		clientClock := newClock()
		if i < len(opts.ClientRates) && opts.ClientRates[i] > 0 {
			clientClock = s.NewClock(opts.ClientRates[i], 0)
		}
		c := client.New(id, ServerID, ccfg, clientClock,
			func(to msg.NodeID, m msg.Message) { cl.Control.Send(id, to, m) },
			func(to msg.NodeID, m msg.Message) { cl.SAN.Send(id, to, m) },
			oracle, reg, opts.Tracer)
		cl.Clients = append(cl.Clients, c)
		cl.Control.Attach(id, c.Deliver)
		cl.SAN.Attach(id, c.DeliverSAN)
	}
	return cl
}

// observeNetworks counts message traffic per network and kind. The
// observer runs once per simulated message, so the counter handles are
// resolved up front (the Kind space is a small enum) — building the
// counter name per event would put two string concatenations and a
// mutex-guarded map lookup on the simulator's hottest path.
func (cl *Cluster) observeNetworks() {
	count := func(net string) func(simnet.Event) {
		var sent, delivered [msg.KindShard + 1]*stats.Counter
		for k := msg.KindControlReq; k <= msg.KindShard; k++ {
			sent[k] = cl.Reg.Counter(net + ".sent." + k.String())
			delivered[k] = cl.Reg.Counter(net + ".delivered." + k.String())
		}
		bytes := cl.Reg.Counter(net + ".bytes")
		return func(e simnet.Event) {
			k := e.Env.Payload.Kind()
			if int(k) >= len(sent) || sent[k] == nil {
				// Unknown kind (future enum growth): fall back to the slow path.
				cl.Reg.Counter(net + ".sent." + k.String()).Inc()
				bytes.Add(uint64(e.Env.Payload.Size()))
				if e.Delivered {
					cl.Reg.Counter(net + ".delivered." + k.String()).Inc()
				}
				return
			}
			sent[k].Inc()
			bytes.Add(uint64(e.Env.Payload.Size()))
			if e.Delivered {
				delivered[k].Inc()
			}
		}
	}
	cl.Control.Observer = count("net.control")
	cl.SAN.Observer = count("net.san")
}

// ClientID returns the node ID of client index i.
func ClientID(i int) msg.NodeID { return FirstClient + msg.NodeID(i) }

// Start registers every client and runs the simulation until all are
// registered (panics after a generous bound — registration cannot hang on
// a healthy network).
func (cl *Cluster) Start() {
	for _, c := range cl.Clients {
		c.Start()
	}
	deadline := cl.Sched.Now().Add(time.Minute)
	cl.Sched.RunWhile(func() bool {
		if cl.Sched.Now().After(deadline) {
			panic("cluster: clients failed to register")
		}
		for _, c := range cl.Clients {
			if !c.Registered() {
				return true
			}
		}
		return false
	})
	for _, c := range cl.Clients {
		if !c.Registered() {
			panic("cluster: registration incomplete")
		}
	}
}

// Await runs the simulation until the operation started by start calls
// done, or the queue drains, or maxSim elapses. It reports completion.
func (cl *Cluster) Await(maxSim time.Duration, start func(done func())) bool {
	finished := false
	deadline := cl.Sched.Now().Add(maxSim)
	start(func() { finished = true })
	cl.Sched.RunWhile(func() bool {
		return !finished && !cl.Sched.Now().After(deadline)
	})
	return finished
}

// RunFor advances the installation by d of simulated time.
func (cl *Cluster) RunFor(d time.Duration) { cl.Sched.RunFor(d) }

// SyncClient returns a blocking wrapper over client i, pumped by the
// simulator: each call advances the scheduler until the operation
// completes (at most a simulated minute).
func (cl *Cluster) SyncClient(i int) *client.SyncClient {
	return client.NewSync(cl.Clients[i], func(start func(done func())) bool {
		return cl.Await(time.Minute, start)
	})
}

// --- Synchronous convenience wrappers (tests, examples, experiments) --------

// MustOpen opens (optionally creating) a file on client i.
func (cl *Cluster) MustOpen(i int, path string, write, create bool) (msg.Handle, msg.Attr) {
	var h msg.Handle
	var attr msg.Attr
	var errno msg.Errno = msg.ErrStale
	ok := cl.Await(time.Minute, func(done func()) {
		cl.Clients[i].Open(path, write, create, func(gh msg.Handle, a msg.Attr, e msg.Errno) {
			h, attr, errno = gh, a, e
			done()
		})
	})
	if !ok || errno != msg.OK {
		panic(fmt.Sprintf("cluster: open %s on client %d: ok=%v errno=%v", path, i, ok, errno))
	}
	return h, attr
}

// Open opens a file and returns the errno.
func (cl *Cluster) Open(i int, path string, write, create bool) (msg.Handle, msg.Attr, msg.Errno) {
	var h msg.Handle
	var attr msg.Attr
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[i].Open(path, write, create, func(gh msg.Handle, a msg.Attr, e msg.Errno) {
			h, attr, errno = gh, a, e
			done()
		})
	})
	return h, attr, errno
}

// Write writes one block on client i and returns the errno (which
// reflects acceptance into the write-back cache).
func (cl *Cluster) Write(i int, h msg.Handle, idx uint64, data []byte) msg.Errno {
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[i].Write(h, idx, data, func(e msg.Errno) {
			errno = e
			done()
		})
	})
	return errno
}

// Read reads one block on client i.
func (cl *Cluster) Read(i int, h msg.Handle, idx uint64) ([]byte, msg.Errno) {
	var data []byte
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[i].Read(h, idx, func(d []byte, e msg.Errno) {
			data, errno = d, e
			done()
		})
	})
	return data, errno
}

// Sync flushes client i's dirty data.
func (cl *Cluster) Sync(i int) msg.Errno {
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[i].Sync(func(e msg.Errno) {
			errno = e
			done()
		})
	})
	return errno
}

// Close closes a handle on client i.
func (cl *Cluster) Close(i int, h msg.Handle) msg.Errno {
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[i].Close(h, func(e msg.Errno) {
			errno = e
			done()
		})
	})
	return errno
}

// IsolateClient cuts client i off the control network only — the paper's
// canonical failure (Fig 2): the SAN still works.
func (cl *Cluster) IsolateClient(i int) { cl.Control.Isolate(ClientID(i)) }

// HealControl removes all control-network partitions.
func (cl *Cluster) HealControl() { cl.Control.Heal() }

// CrashClient fails client i on both networks and discards its state.
func (cl *Cluster) CrashClient(i int) {
	cl.Clients[i].Crash()
	cl.Control.Crash(ClientID(i))
	cl.SAN.Crash(ClientID(i))
}

// CrashServer fails the metadata server: volatile state (locks, epochs,
// lease bookkeeping) is gone; the metadata store survives on the
// server's private highly-available storage (§6). While down, the
// server receives nothing.
func (cl *Cluster) CrashServer() {
	cl.Server.Stop()
	cl.Control.Crash(ServerID)
	cl.SAN.Crash(ServerID)
}

// RestartServer brings a crashed server back with the recovered store
// and a reassertion grace window. Clients rebuild its lock state (§6).
func (cl *Cluster) RestartServer() {
	cl.Control.Restart(ServerID)
	cl.SAN.Restart(ServerID)
	diskMap := make(map[msg.NodeID]uint64, len(cl.Disks))
	for _, d := range cl.Disks {
		diskMap[d.ID()] = d.Capacity()
	}
	srvCfg := server.Config{
		Core: cl.Opts.Core, Policy: cl.Opts.Policy, Disks: diskMap,
		NoNACK: cl.Opts.NoNACK, DisableFence: cl.Opts.DisableFence,
		Store: cl.Server.Store(), GracePeriod: cl.Opts.GracePeriod,
	}
	clock := cl.Sched.NewClock(1, 0)
	srv := server.New(ServerID, srvCfg, clock,
		func(to msg.NodeID, m msg.Message) { cl.Control.Send(ServerID, to, m) },
		func(to msg.NodeID, m msg.Message) { cl.SAN.Send(ServerID, to, m) },
		cl.Reg, cl.Opts.Tracer)
	cl.Server = srv
	cl.Control.Attach(ServerID, srv.Deliver)
	cl.SAN.Attach(ServerID, srv.DeliverSAN)
}

// BlockSize re-exports the installation's data block size.
const BlockSize = client.BlockSize
