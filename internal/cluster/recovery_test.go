package cluster

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/msg"
)

// Tests for §6 server recovery: the metadata store survives on the
// server's private storage; lock state is rebuilt by client-driven
// reassertion during a grace window.

func TestServerRestartReassertionPreservesCache(t *testing.T) {
	opts := DefaultOptions()
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/persist", true, true)
	if errno := cl.Write(0, h0, 0, block('A')); errno != msg.OK {
		t.Fatal(errno)
	}
	// Dirty page in cache, exclusive lock held.
	if cl.Clients[0].Cache().TotalDirty() != 1 {
		t.Fatal("setup: no dirty page")
	}
	epochBefore := cl.Clients[0].Epoch()

	cl.CrashServer()
	cl.RunFor(time.Second)
	cl.RestartServer()

	// The client's next ordinary request is NACKed (unknown epoch at the
	// restarted server) and triggers reassertion.
	recovered := false
	cl.Clients[0].OnRecovered = func(msg.Epoch) { recovered = true }
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[0].Stat(1, func(msg.Attr, msg.Errno) { done() })
	})
	deadline := cl.Sched.Now().Add(5 * time.Second)
	cl.Sched.RunWhile(func() bool { return !recovered && !cl.Sched.Now().After(deadline) })
	if !recovered {
		t.Fatalf("client did not reassert (phase %v)", cl.Clients[0].Lease().Phase())
	}

	// THE point of reassertion: cache, dirty data, handles, and locks all
	// survived the server failure.
	if cl.Clients[0].Cache().TotalDirty() != 1 {
		t.Fatal("dirty cache lost across server restart")
	}
	if cl.Clients[0].Epoch() <= epochBefore {
		t.Fatal("epoch did not advance")
	}
	if cl.Server.Locks().Held(ClientID(0), inoOf(t, cl, "/persist")) != msg.LockExclusive {
		t.Fatal("lock not reinstalled at the restarted server")
	}
	// The old handle still works; more writes proceed immediately (the
	// reasserted lock needs no re-acquire).
	if errno := cl.Write(0, h0, 1, block('B')); errno != msg.OK {
		t.Fatalf("post-restart write: %v", errno)
	}
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatal(errno)
	}

	// After the grace window, other clients can take locks as usual.
	cl.RunFor(opts.Core.StealDelay() + time.Second)
	h1, _ := cl.MustOpen(1, "/persist", false, false)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('A')) {
		t.Fatalf("cross-client read after recovery: %v", errno)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestServerRestartWithoutReassertionLosesCache(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableReassert = true
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/persist", true, true)
	mustWrite(t, cl, 0, h0, 0, block('A'))
	cl.CrashServer()
	cl.RunFor(time.Second)
	cl.RestartServer()

	// Trigger the NACK; without reassertion the client must walk the full
	// lease recovery: quiesce, flush (the SAN is fine), expire, rejoin.
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[0].Stat(1, func(msg.Attr, msg.Errno) { done() })
	})
	cl.RunFor(opts.Core.Tau + 2*time.Second)
	if !cl.Clients[0].Registered() {
		t.Fatalf("client did not rejoin (phase %v)", cl.Clients[0].Lease().Phase())
	}
	if cl.Clients[0].Cache().Len() != 0 {
		t.Fatal("cache survived although reassertion was disabled")
	}
	// Crucially, still no lost update: the phase-4 flush saved the dirty
	// data even on the slow path.
	cl.RunFor(opts.Core.StealDelay())
	h1, _ := cl.MustOpen(1, "/persist", false, false)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('A')) {
		t.Fatalf("data lost on non-reassert recovery: %v", errno)
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestReassertRefusedAfterGrace(t *testing.T) {
	opts := DefaultOptions()
	opts.GracePeriod = time.Second // unrealistically short, for the test
	cl := New(opts)
	cl.Start()
	h0, _ := cl.MustOpen(0, "/late", true, true)
	mustWrite(t, cl, 0, h0, 0, block('L'))
	// Drain background traffic (the size-extension SetAttr) so the client
	// is genuinely silent when the server goes down.
	cl.RunFor(2 * time.Second)
	cl.CrashServer()
	cl.RunFor(time.Second)
	cl.RestartServer()
	// The client's first contact is its phase-2 keep-alive, which lands
	// well after the 1s grace window: the reassert is refused and the
	// client must fall back to full recovery.
	cl.RunFor(opts.Core.Tau + 4*time.Second)
	if !cl.Clients[0].Registered() {
		t.Fatal("client never recovered")
	}
	if cl.Clients[0].Cache().Len() != 0 {
		t.Fatal("cache survived a refused reassertion")
	}
}

func TestNewAcquiresDeferredDuringGrace(t *testing.T) {
	opts := DefaultOptions()
	opts.GracePeriod = 5 * time.Second
	cl := New(opts)
	cl.Start()
	// Client 0 holds the lock before the crash but never reasserts (it
	// stays silent): its lease protects the lock for τ.
	h0, _ := cl.MustOpen(0, "/contest", true, true)
	mustWrite(t, cl, 0, h0, 0, block('X'))

	cl.CrashServer()
	cl.RunFor(500 * time.Millisecond)
	cl.RestartServer()
	restart := cl.Sched.Now()

	// Client 1 re-registers (NACK → reassert with no claims → revive) and
	// then asks for the contested lock: the grant must wait out the grace
	// window, because client 0's lease may still cover it.
	cl.Await(time.Minute, func(done func()) {
		cl.Clients[1].Stat(1, func(msg.Attr, msg.Errno) { done() })
	})
	cl.RunFor(time.Second) // let the (empty) reassertion complete
	h1, _, errno := cl.Open(1, "/contest", true, false)
	if errno != msg.OK {
		t.Fatalf("open: %v", errno)
	}
	granted := false
	var grantAt time.Duration
	cl.Clients[1].Write(h1, 0, block('Y'), func(e msg.Errno) {
		granted = true
		grantAt = cl.Sched.Now().Sub(restart)
	})
	deadline := cl.Sched.Now().Add(30 * time.Second)
	cl.Sched.RunWhile(func() bool { return !granted && !cl.Sched.Now().After(deadline) })
	if !granted {
		t.Fatal("acquire never completed")
	}
	if grantAt < opts.GracePeriod {
		t.Fatalf("new acquire granted %v after restart, inside the %v grace window", grantAt, opts.GracePeriod)
	}
}

func inoOf(t *testing.T, cl *Cluster, path string) msg.ObjectID {
	t.Helper()
	in, errno := cl.Server.Store().Lookup(path)
	if errno != msg.OK {
		t.Fatalf("lookup %s: %v", path, errno)
	}
	return in.Ino
}

func mustWrite(t *testing.T, cl *Cluster, i int, h msg.Handle, idx uint64, data []byte) {
	t.Helper()
	if errno := cl.Write(i, h, idx, data); errno != msg.OK {
		t.Fatalf("write: %v", errno)
	}
}
