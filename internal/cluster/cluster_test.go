package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/msg"
)

func block(fill byte) []byte {
	b := make([]byte, 4096)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestStartRegistersAllClients(t *testing.T) {
	cl := New(DefaultOptions())
	cl.Start()
	for i, c := range cl.Clients {
		if !c.Registered() || c.Epoch() == 0 {
			t.Fatalf("client %d not registered (epoch %d)", i, c.Epoch())
		}
		if !cl.Server.Registered(ClientID(i)) {
			t.Fatalf("server does not know client %d", i)
		}
	}
	if cl.Clients[0].Lease().Phase() != core.Phase1Valid {
		t.Fatalf("lease phase = %v after registration", cl.Clients[0].Lease().Phase())
	}
}

func TestWriteSyncReadAcrossClients(t *testing.T) {
	cl := New(DefaultOptions())
	cl.Start()
	h0, _ := cl.MustOpen(0, "/file1", true, true)
	if errno := cl.Write(0, h0, 0, block('A')); errno != msg.OK {
		t.Fatalf("write: %v", errno)
	}
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatalf("sync: %v", errno)
	}
	// Client 1 reads: triggers a demand that downgrades client 0 to
	// shared; data must match.
	h1, attr := cl.MustOpen(1, "/file1", false, false)
	if attr.Size != 4096 {
		t.Fatalf("size = %d, want 4096", attr.Size)
	}
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('A')) {
		t.Fatalf("read: %v, data[0]=%q", errno, data[:1])
	}
	cl.RunFor(time.Second)
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestDemandFlushesDirtyData(t *testing.T) {
	cl := New(DefaultOptions())
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	// Write WITHOUT sync: data lives only in client 0's cache.
	if errno := cl.Write(0, h0, 0, block('D')); errno != msg.OK {
		t.Fatalf("write: %v", errno)
	}
	if cl.Clients[0].Cache().TotalDirty() != 1 {
		t.Fatal("no dirty page in cache")
	}
	// Reader on client 1 forces the demand; the flush must happen before
	// the shared grant, so the read sees the dirty data.
	h1, _ := cl.MustOpen(1, "/f", false, false)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('D')) {
		t.Fatalf("read after demand: %v", errno)
	}
	if cl.Clients[0].Cache().TotalDirty() != 0 {
		t.Fatal("dirty data survived the demand")
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestExclusiveWriterHandoff(t *testing.T) {
	cl := New(DefaultOptions())
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	cl.Write(0, h0, 0, block('1'))
	h1, _ := cl.MustOpen(1, "/f", true, false)
	// Client 1 writes the same block: full revoke of client 0.
	if errno := cl.Write(1, h1, 0, block('2')); errno != msg.OK {
		t.Fatalf("write 2: %v", errno)
	}
	cl.Sync(1)
	// Client 0 reads it back (re-acquiring a lock).
	data, errno := cl.Read(0, h0, 0)
	if errno != msg.OK || !bytes.Equal(data, block('2')) {
		t.Fatalf("read-back: %v, got %q", errno, data[:1])
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestNormalOperationHasZeroLeaseOverhead(t *testing.T) {
	opts := DefaultOptions()
	cl := New(opts)
	cl.Start()
	// Active clients: an op roughly every second for 6 lease periods.
	h := make([]msg.Handle, len(cl.Clients))
	for i := range cl.Clients {
		h[i], _ = cl.MustOpen(i, fmt.Sprintf("/wf%d", i), true, true)
	}
	for round := 0; round < 60; round++ {
		for i := range cl.Clients {
			if errno := cl.Write(i, h[i], uint64(round%4), block(byte(round))); errno != msg.OK {
				t.Fatalf("round %d client %d: %v", round, i, errno)
			}
			// An ordinary metadata message each round: the paper's model
			// of an active client, whose lock/metadata traffic renews the
			// lease opportunistically ("the frequency of lock and
			// metadata messages is much higher than the lease interval").
			cl.Await(time.Minute, func(done func()) {
				cl.Clients[i].Stat(meta.RootIno, func(msg.Attr, msg.Errno) { done() })
			})
		}
		cl.RunFor(time.Second)
	}
	// The paper's headline: zero keep-alives, zero lease ops and memory
	// at the server, no NACKs, no expiries.
	if n := cl.Reg.CounterValue("net.control.sent.keepalive"); n != 0 {
		t.Fatalf("active clients sent %d keep-alives", n)
	}
	if n := cl.Reg.CounterValue("server.authority.ops"); n != 0 {
		t.Fatalf("authority performed %d ops", n)
	}
	if b := cl.Server.Authority().StateBytes(); b != 0 {
		t.Fatalf("authority holds %d bytes", b)
	}
	if n := cl.Reg.CounterValue("server.nacks_sent"); n != 0 {
		t.Fatalf("server sent %d NACKs", n)
	}
	for i := range cl.Clients {
		if n := cl.Reg.CounterValue(fmt.Sprintf("client.%v.lease.expiries", ClientID(i))); n != 0 {
			t.Fatalf("client %d lease expired %d times", i, n)
		}
	}
}

func TestIdleClientPreservesCacheWithKeepAlives(t *testing.T) {
	cl := New(DefaultOptions())
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	cl.Write(0, h0, 0, block('K'))
	cl.Sync(0)
	// Then: total silence for 5 lease periods. The keep-alive machinery
	// must hold the lease; the cache must survive.
	cl.RunFor(50 * time.Second)
	c := cl.Clients[0]
	if !c.Lease().Valid() {
		t.Fatalf("idle client lost its lease (phase %v)", c.Lease().Phase())
	}
	if n := cl.Reg.CounterValue(fmt.Sprintf("client.%v.lease.keepalives", ClientID(0))); n == 0 {
		t.Fatal("idle client sent no keep-alives")
	}
	if n := cl.Reg.CounterValue(fmt.Sprintf("client.%v.lease.expiries", ClientID(0))); n != 0 {
		t.Fatal("idle client's lease expired")
	}
	if c.Cache().Object(0) == nil && c.Cache().Len() == 0 {
		t.Fatal("cache was dropped")
	}
}

// TestIsolatedClientLeaseRecovery is the paper's central scenario (Fig 2 +
// §3): a client holding an exclusive lock with dirty data is isolated on
// the control network. The protocol must (1) eventually grant the lock to
// another client, (2) get the dirty data to disk first (phase 4), and
// (3) produce zero consistency violations.
func TestIsolatedClientLeaseRecovery(t *testing.T) {
	opts := DefaultOptions()
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/shared", true, true)
	if errno := cl.Write(0, h0, 0, block('X')); errno != msg.OK {
		t.Fatal(errno)
	}
	cl.Sync(0)
	// Re-dirty the block: v2 lives only in client 0's cache.
	if errno := cl.Write(0, h0, 0, block('Y')); errno != msg.OK {
		t.Fatal(errno)
	}
	if cl.Clients[0].Cache().TotalDirty() != 1 {
		t.Fatal("setup: no dirty data")
	}

	cl.IsolateClient(0)

	// Client 1 wants to write the same file. Under honor-locks this would
	// hang forever; under the lease protocol it completes after roughly
	// demand-retries + τ(1+ε).
	start := cl.Sched.Now()
	h1, _, errno := cl.Open(1, "/shared", true, false)
	if errno != msg.OK {
		t.Fatalf("open on survivor: %v", errno)
	}
	if errno := cl.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatalf("survivor write: %v", errno)
	}
	waited := cl.Sched.Now().Sub(start)
	tau := opts.Core.Tau
	if waited < tau {
		t.Fatalf("lock granted after %v — before the lease could expire (τ=%v)", waited, tau)
	}
	if waited > 2*tau {
		t.Fatalf("lock granted after %v — far beyond τ(1+ε)", waited)
	}

	// The survivor must read its own Z, and the isolated client's Y must
	// have reached disk before the steal (phase-4 flush): check the
	// version history shows no lost update and no stale read.
	cl.Sync(1)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('Z')) {
		t.Fatalf("survivor read: %v", errno)
	}

	// Isolated client: quiesced, flushed, expired, and now recovering.
	c0 := cl.Clients[0]
	if c0.Lease().Valid() {
		t.Fatal("isolated client still believes its lease is valid")
	}
	if c0.Cache().TotalDirty() != 0 {
		t.Fatal("dirty data stranded in the isolated client")
	}
	if n := cl.Reg.CounterValue(fmt.Sprintf("client.%v.lease.dirty_at_expiry", ClientID(0))); n != 0 {
		t.Fatal("phase-4 flush did not complete before expiry")
	}

	// Heal: the isolated client rejoins with a fresh epoch and can work
	// again.
	cl.HealControl()
	cl.Await(time.Minute, func(done func()) {
		prev := c0.OnRecovered
		c0.OnRecovered = func(e msg.Epoch) {
			if prev != nil {
				prev(e)
			}
			done()
		}
	})
	if !c0.Registered() {
		t.Fatal("isolated client did not rejoin after heal")
	}
	hA, _, errno := cl.Open(0, "/shared", false, false)
	if errno != msg.OK {
		t.Fatalf("post-rejoin open: %v", errno)
	}
	data, errno = cl.Read(0, hA, 0)
	if errno != msg.OK || !bytes.Equal(data, block('Z')) {
		t.Fatalf("post-rejoin read: %v (must see survivor's data)", errno)
	}

	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations under the lease protocol: %v", got)
	}
}

// TestFenceOnlyViolatesConsistency reproduces §2.1: with fencing as the
// only recovery mechanism, the isolated client serves stale cache data
// and its dirty data is stranded.
func TestFenceOnlyViolatesConsistency(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.FenceOnly()
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/shared", true, true)
	cl.Write(0, h0, 0, block('X'))
	// Also commit a second block, then re-dirty it: this is the stranded
	// update.
	cl.Write(0, h0, 1, block('P'))
	cl.Sync(0)
	cl.Write(0, h0, 1, block('Q')) // dirty, stranded forever

	cl.IsolateClient(0)

	// Survivor takes the lock by fencing+stealing within ~1s.
	h1, _, errno := cl.Open(1, "/shared", true, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatal(errno)
	}
	cl.Sync(1)

	// The fenced client is unaware (§2.1): local processes keep reading
	// the stale cache.
	data, errno := cl.Read(0, h0, 0)
	if errno != msg.OK || !bytes.Equal(data, block('X')) {
		t.Fatalf("fenced client read: %v (expected stale X from cache)", errno)
	}

	if n := cl.Checker.Count(checker.StaleRead); n == 0 {
		t.Fatal("no stale read detected — fencing-only should violate coherency")
	}
	cl.Checker.FinalCheck()
	if n := cl.Checker.Count(checker.LostUpdate); n == 0 {
		t.Fatal("no lost update detected — dirty data should be stranded")
	}
}

// TestNaiveStealViolatesConsistency reproduces §1.2: stealing without
// fencing or leases lets two writers act concurrently.
func TestNaiveStealViolatesConsistency(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.NaiveSteal()
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/shared", true, true)
	cl.Write(0, h0, 0, block('X'))
	cl.Sync(0)
	cl.IsolateClient(0)

	h1, _, errno := cl.Open(1, "/shared", true, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatal(errno)
	}
	// The isolated client still believes it holds exclusive and keeps
	// writing — directly to the SAN, which never failed.
	if errno := cl.Write(0, h0, 0, block('W')); errno != msg.OK {
		t.Fatalf("isolated client write refused: %v", errno)
	}
	cl.Sync(0) // and its flush reaches the disk: no fence stops it
	cl.Sync(1)

	if n := cl.Checker.Count(checker.ConcurrentConflict); n == 0 {
		t.Fatal("no concurrent-conflict detected under naive steal")
	}
}

// TestHonorLocksUnavailableUntilHeal reproduces §2's availability
// problem: without stealing, the survivor waits for the partition.
func TestHonorLocksUnavailableUntilHeal(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.HonorLocks()
	cl := New(opts)
	cl.Start()

	h0, _ := cl.MustOpen(0, "/shared", true, true)
	cl.Write(0, h0, 0, block('X'))
	cl.IsolateClient(0)

	h1, _, errno := cl.Open(1, "/shared", true, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	granted := false
	cl.Clients[1].Write(h1, 0, block('Z'), func(e msg.Errno) { granted = true })
	// Run well past τ(1+ε): still nothing.
	cl.RunFor(3 * opts.Core.Tau)
	if granted {
		t.Fatal("honor-locks granted a stolen lock")
	}
	// Heal: the demand finally reaches the holder, which complies.
	cl.HealControl()
	cl.Sched.RunWhile(func() bool { return !granted })
	if !granted {
		t.Fatal("write never completed after heal")
	}
	// Quiesce before the final audit: FinalCheck treats any acked write
	// still sitting dirty in a healthy cache as lost, so flush first.
	cl.Sync(0)
	cl.Sync(1)
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations under honor-locks: %v", got)
	}
}

func TestCrashedClientRecovery(t *testing.T) {
	opts := DefaultOptions()
	cl := New(opts)
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	cl.Write(0, h0, 0, block('X'))
	cl.CrashClient(0)

	// Survivor acquires after the lease timeout; the crashed client's
	// dirty data is legitimately gone (no lost-update charge).
	h1, _, errno := cl.Open(1, "/f", true, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	start := cl.Sched.Now()
	if errno := cl.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatal(errno)
	}
	if waited := cl.Sched.Now().Sub(start); waited < opts.Core.Tau {
		t.Fatalf("granted after %v, before timeout", waited)
	}
	cl.Sync(1)
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations after crash recovery: %v", got)
	}
}

func TestHeartbeatPolicyWorksAndRecovers(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.Frangipani()
	cl := New(opts)
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	cl.Write(0, h0, 0, block('H'))
	cl.Sync(0)
	cl.RunFor(20 * time.Second)
	// Heartbeats flowed even though the client was also active.
	if n := cl.Reg.CounterValue("net.control.sent.lease-admin"); n == 0 {
		t.Fatal("no heartbeats sent")
	}
	if cl.Reg.Gauge("server.lease_state_bytes").Value() == 0 {
		t.Fatal("heartbeat server holds no lease state — should always hold some")
	}
	// Isolate and let the survivor take over after the heartbeat TTL.
	cl.IsolateClient(0)
	h1, _, errno := cl.Open(1, "/f", true, false)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatalf("survivor write: %v", errno)
	}
	cl.Sync(1)
	cl.Checker.FinalCheck()
	// Heartbeat leases are also safe (client stops at TTL; steal waits
	// longer) — the difference vs the paper is the standing cost, not
	// correctness.
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations under heartbeat policy: %v", got)
	}
}

func TestVLeasePolicyRenewsPerObject(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.VSystem()
	cl := New(opts)
	cl.Start()
	// Cache several objects, then idle: per-object renewals must flow and
	// scale with the number of cached objects.
	for i := 0; i < 5; i++ {
		h, _ := cl.MustOpen(0, fmt.Sprintf("/f%d", i), true, true)
		cl.Write(0, h, 0, block(byte('a'+i)))
	}
	cl.Sync(0)
	cl.RunFor(30 * time.Second)
	if n := cl.Reg.CounterValue("server.lease_ops"); n == 0 {
		t.Fatal("V server performed no per-object lease work")
	}
	if cl.Reg.Gauge("server.lease_state_bytes").Max() == 0 {
		t.Fatal("V server held no per-object lease state")
	}
	if n := cl.Reg.CounterValue("net.control.sent.lease-admin"); n == 0 {
		t.Fatal("no RenewObjects messages sent")
	}
	cl.Checker.FinalCheck()
	if got := cl.Checker.Violations(); len(got) != 0 {
		t.Fatalf("violations under V leases: %v", got)
	}
}

func TestFunctionShipDataPath(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.FunctionShip()
	cl := New(opts)
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	if errno := cl.Write(0, h0, 0, block('F')); errno != msg.OK {
		t.Fatalf("write: %v", errno)
	}
	h1, _ := cl.MustOpen(1, "/f", false, false)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('F')) {
		t.Fatalf("read: %v", errno)
	}
	// File data moved through the server.
	if n := cl.Reg.CounterValue("server.data_bytes"); n < 8192 {
		t.Fatalf("server.data_bytes = %d, want >= 8192", n)
	}
}

func TestNFSPollPolicy(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy = baselines.NFSPoll()
	cl := New(opts)
	cl.Start()
	h0, _ := cl.MustOpen(0, "/f", true, true)
	cl.Write(0, h0, 0, block('1'))
	h1, _ := cl.MustOpen(1, "/f", false, false)
	data, errno := cl.Read(1, h1, 0)
	if errno != msg.OK || !bytes.Equal(data, block('1')) {
		t.Fatalf("first read: %v", errno)
	}
	// Immediately after, client 0 rewrites; client 1's attr cache is
	// fresh so it serves the stale page — NFS weak consistency.
	cl.Write(0, h0, 0, block('2'))
	data, _ = cl.Read(1, h1, 0)
	if !bytes.Equal(data, block('1')) {
		t.Fatal("expected stale cached page within attribute TTL")
	}
	// After the attribute TTL the poll notices the new version.
	cl.RunFor(5 * time.Second)
	data, _ = cl.Read(1, h1, 0)
	if !bytes.Equal(data, block('2')) {
		t.Fatal("attribute poll did not refresh the cache")
	}
}

func TestStaleEpochNACKed(t *testing.T) {
	cl := New(DefaultOptions())
	cl.Start()
	// Forge a message with a stale epoch directly.
	nacked := false
	cl.Control.Attach(ClientID(0), func(env msg.Envelope) {
		if r, ok := env.Payload.(*msg.Reply); ok && r.Status == msg.NACK {
			nacked = true
		}
	})
	cl.Control.Send(ClientID(0), ServerID, &msg.GetAttr{
		ReqHeader: msg.ReqHeader{Client: ClientID(0), Req: 9999, Epoch: 999},
		Ino:       1,
	})
	cl.RunFor(time.Second)
	if !nacked {
		t.Fatal("stale epoch was not NACKed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		opts := DefaultOptions()
		cl := New(opts)
		cl.Start()
		h0, _ := cl.MustOpen(0, "/f", true, true)
		cl.Write(0, h0, 0, block('A'))
		cl.IsolateClient(0)
		h1, _, _ := cl.Open(1, "/f", true, false)
		cl.Write(1, h1, 0, block('B'))
		cl.HealControl()
		cl.RunFor(30 * time.Second)
		sent, _, _ := cl.Control.Counts()
		return sent, cl.Sched.Fired()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Fatalf("non-deterministic: msgs %d vs %d, events %d vs %d", s1, s2, f1, f2)
	}
}
