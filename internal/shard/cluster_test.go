package shard

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
)

func block(b byte) []byte {
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// subtreeOptions splits the namespace by subtree — /s0 on shard 0, /s1
// on shard 1 — so a test can aim an operation at a specific authority
// by path. (DefaultOptions uses Hash, which is total: good for routing
// transparency, useless for aiming.)
func subtreeOptions() Options {
	opts := DefaultOptions()
	opts.Placement = Subtree{Prefixes: map[string]int{"/s0": 0, "/s1": 1}}
	return opts
}

func TestRoutingAcrossShards(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()

	// One file per shard, written by node 0, read by node 1.
	h0 := inst.MustOpen(0, "/s0/a.txt", true, true)
	h1 := inst.MustOpen(0, "/s1/b.txt", true, true)
	if errno := inst.Write(0, h0, 0, block('A')); errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := inst.Write(0, h1, 0, block('B')); errno != msg.OK {
		t.Fatal(errno)
	}
	inst.Sync(0)

	r0 := inst.MustOpen(1, "/s0/a.txt", false, false)
	r1 := inst.MustOpen(1, "/s1/b.txt", false, false)
	if data, errno := inst.Read(1, r0, 0); errno != msg.OK || !bytes.Equal(data, block('A')) {
		t.Fatalf("shard 0 read: %v", errno)
	}
	if data, errno := inst.Read(1, r1, 0); errno != msg.OK || !bytes.Equal(data, block('B')) {
		t.Fatalf("shard 1 read: %v", errno)
	}
	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

// TestHashRoutingTransparent drives the default (hash) placement: the
// caller never names a shard, yet every path lands on some authority
// and reads back intact from another node.
func TestHashRoutingTransparent(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 4
	inst := New(opts)
	inst.Start()
	paths := []string{"/a", "/deep/nested/file", "/b.txt", "/x/y", "/zzz"}
	for i, p := range paths {
		h := inst.MustOpen(0, p, true, true)
		if errno := inst.Write(0, h, 0, block(byte('0'+i))); errno != msg.OK {
			t.Fatalf("write %s: %v", p, errno)
		}
	}
	inst.Sync(0)
	for i, p := range paths {
		h := inst.MustOpen(1, p, false, false)
		if data, errno := inst.Read(1, h, 0); errno != msg.OK || data[0] != byte('0'+i) {
			t.Fatalf("read %s: %v %q", p, errno, data[0])
		}
	}
	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestUnroutablePath(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()
	errno := msg.OK
	inst.Nodes[0].Open("/nowhere/x", true, true, func(_ msg.Handle, _ msg.Attr, e msg.Errno) { errno = e })
	inst.RunFor(time.Second)
	if errno != msg.ErrNoEnt {
		t.Fatalf("unroutable open = %v, want ErrNoEnt", errno)
	}
	var rerr msg.Errno
	inst.Nodes[0].Read(999, 0, func(_ []byte, e msg.Errno) { rerr = e })
	if rerr != msg.ErrBadHandle {
		t.Fatalf("bad node handle = %v", rerr)
	}
}

// TestPerPairLeaseIndependence is §4's granularity argument as a test: a
// failure between a client and ONE authority invalidates exactly the
// locks and cache held with that authority; the client's leases with
// other shards — and its service on them — continue untouched.
func TestPerPairLeaseIndependence(t *testing.T) {
	opts := subtreeOptions()
	inst := New(opts)
	inst.Start()
	tau := opts.Core.Tau

	h0 := inst.MustOpen(0, "/s0/f", true, true)
	h1 := inst.MustOpen(0, "/s1/f", true, true)
	if errno := inst.Write(0, h0, 0, block('X')); errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := inst.Write(0, h1, 0, block('Y')); errno != msg.OK {
		t.Fatal(errno)
	}

	// Partition ONLY the link between node 0 and shard 0.
	inst.IsolatePair(0, 0)

	// The shard-1 lease must stay valid throughout; use it actively.
	for i := 0; i < 12; i++ {
		inst.RunFor(time.Second)
		if errno := inst.Write(0, h1, uint64(i%4), block(byte('a'+i))); errno != msg.OK {
			t.Fatalf("shard-1 write during shard-0 partition: %v", errno)
		}
	}
	phases := inst.LeasePhases(0)
	if phases[0] == core.Phase1Valid {
		t.Fatalf("shard-0 lease still valid after %v of partition", 12*time.Second)
	}
	if phases[1] != core.Phase1Valid {
		t.Fatalf("shard-1 lease disturbed: %v", phases[1])
	}

	// Shard 0's lock is recoverable by the other node after τ(1+ε); the
	// partitioned sub flushed its dirty X in phase 4 first.
	w := inst.MustOpen(1, "/s0/f", true, false)
	if errno := inst.Write(1, w, 0, block('Z')); errno != msg.OK {
		t.Fatalf("survivor write on shard 0: %v", errno)
	}
	inst.Sync(1)

	// Heal; the node's shard-0 sub rejoins; everything audits clean.
	inst.HealAll()
	inst.RunFor(2 * tau)
	inst.Sync(0)
	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
	// Shard-1 cache was never invalidated (no recovery on that pair).
	if n := inst.Reg.CounterValue("client.n10.lease.expiries"); n == 0 {
		t.Fatal("expected exactly the shard-0 lease to expire")
	}
}

func TestShardNamespacesAreDisjoint(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()
	// Same basename on both shards: distinct objects.
	a := inst.MustOpen(0, "/s0/same", true, true)
	b := inst.MustOpen(0, "/s1/same", true, true)
	inst.Write(0, a, 0, block('1'))
	inst.Write(0, b, 0, block('2'))
	inst.Sync(0)
	ra := inst.MustOpen(1, "/s0/same", false, false)
	rb := inst.MustOpen(1, "/s1/same", false, false)
	da, _ := inst.Read(1, ra, 0)
	db, _ := inst.Read(1, rb, 0)
	if da[0] != '1' || db[0] != '2' {
		t.Fatalf("cross-shard bleed: %q %q", da[0], db[0])
	}
}

// TestLocksHeldGauge: each authority exports server.<id>.locks_held —
// the per-shard load signal the flag surface (tankd SIGUSR1) dumps.
func TestLocksHeldGauge(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()
	h := inst.MustOpen(0, "/s0/locked", true, true)
	if errno := inst.Write(0, h, 0, block('L')); errno != msg.OK {
		t.Fatal(errno)
	}
	if v := inst.Reg.Gauge("server.n1.locks_held").Value(); v != 1 {
		t.Fatalf("shard 0 locks_held = %d, want 1", v)
	}
	if v := inst.Reg.Gauge("server.n2.locks_held").Value(); v != 0 {
		t.Fatalf("shard 1 locks_held = %d, want 0", v)
	}
}
