package shard

import (
	"fmt"
	"testing"

	"repro/internal/msg"
	"repro/internal/trace"
)

// TestTheorem31PerShard asserts the paper's safety theorem INDEPENDENTLY
// per lease authority: each (client, server) pair runs its own lease, so
// when a node is cut off from every shard at once, each shard's steal
// must still be preceded — in the global event order — by the client's
// expiry of that specific pair's lease. The per-event Peer stamp is what
// lets the assertion bind client-side expiries to the one authority
// whose steal clock they race.
func TestTheorem31PerShard(t *testing.T) {
	ring := trace.NewRing(1 << 16)
	opts := subtreeOptions()
	opts.Tracer = trace.New(ring)
	inst := New(opts)
	inst.Start()
	tau := opts.Core.Tau

	// Node 0 dirties one file per shard: both pairs hold an exclusive
	// lock with dirty data, so both expiries must run a phase-4 flush.
	handles := make([]msg.Handle, opts.Shards)
	for si := 0; si < opts.Shards; si++ {
		path := fmt.Sprintf("/s%d/f", si)
		handles[si] = inst.MustOpen(0, path, true, true)
		if errno := inst.Write(0, handles[si], 0, block(byte('a'+si))); errno != msg.OK {
			t.Fatal(errno)
		}
	}

	// Cut node 0 off from EVERY authority.
	for si := 0; si < opts.Shards; si++ {
		inst.IsolatePair(0, si)
	}

	// The survivor demands both files; each authority independently arms
	// and fires its τ(1+ε) steal.
	for si := 0; si < opts.Shards; si++ {
		path := fmt.Sprintf("/s%d/f", si)
		h := inst.MustOpen(1, path, true, false)
		if errno := inst.Write(1, h, 0, block('Z')); errno != msg.OK {
			t.Fatalf("survivor write on shard %d: %v", si, errno)
		}
	}

	events := ring.Events()
	isolated := ClientID(0)
	for si := 0; si < opts.Shards; si++ {
		sid := ServerID(si)
		// Exactly one steal per shard, aimed at the isolated node.
		if n := events.Count(trace.ByNode(sid), trace.ByType(trace.EvStealFired),
			trace.ByPeer(isolated)); n != 1 {
			t.Fatalf("shard %d: steal fired %d times, want 1", si, n)
		}
		// Theorem 3.1, this shard's instance: the client expired THIS
		// pair's lease (Peer = this authority) before this authority
		// stole.
		if err := events.Precedes(
			trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire), trace.ByPeer(sid)),
			trace.And(trace.ByNode(sid), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated)),
		); err != nil {
			t.Fatalf("Theorem 3.1 on shard %d: %v", si, err)
		}
		// The pair's phase-4 flush completed before its lease ran out.
		exp, _ := events.First(trace.ByNode(isolated), trace.ByType(trace.EvExpire), trace.ByPeer(sid))
		if exp.Note == "dirty" {
			t.Fatalf("shard %d: client expired with the phase-4 flush incomplete", si)
		}
	}

	// Heal, settle, audit every shard's history.
	inst.HealAll()
	inst.RunFor(2 * tau)
	inst.Sync(0)
	inst.Sync(1)
	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}
