package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/workload"
)

// scaleOptions is the benchmark configuration: the authority is the
// bottleneck (100µs of metadata service per request, zero disk time, no
// oracle), leases are long and retries lazy so the lease protocol is
// pure background, and placement is the default hash — every client's
// working set spreads across all shards.
func scaleOptions(shards, clients int) Options {
	opts := DefaultOptions()
	opts.Shards = shards
	opts.Clients = clients
	opts.Core.Tau = 60 * time.Second
	opts.Core.RetryInterval = 2 * time.Second
	opts.NoChecker = true
	opts.ServerService = 100 * time.Microsecond
	opts.DiskService = 0
	return opts
}

// runShardScale boots the installation, drives every client closed-loop
// with Zipf-skewed metadata traffic (skew 1.2 over a 16-file private
// working set) for `dur` of simulated time, and returns completed
// metadata operations per simulated second.
func runShardScale(tb testing.TB, shards, clients int, dur time.Duration) float64 {
	tb.Helper()
	inst := New(scaleOptions(shards, clients))
	inst.Start()

	runners := make([]*workload.MetaRunner, clients)
	for ci := 0; ci < clients; ci++ {
		runners[ci] = workload.NewMetaRunner(inst.Nodes[ci], inst.Sched, ci,
			16, 1.2, int64(1000+ci))
		runners[ci].Start()
	}
	inst.RunFor(dur)

	var ops, errs uint64
	for _, r := range runners {
		r.Stop()
		ops += r.Ops
		errs += r.Errors
	}
	if errs > ops/100 {
		tb.Fatalf("error rate too high to trust the curve: %d errors / %d ops", errs, ops)
	}
	return float64(ops) / dur.Seconds()
}

// BenchmarkShardScaleZipf is the scaling curve: 1000 clients of
// Zipf-skewed closed-loop metadata traffic against 1, 2, 4, and 8
// lease authorities. mdops_per_simsec is simulator-time throughput —
// deterministic, independent of host speed. benchjson derives
// derived.shardscale.speedup_{2,4,8}x from the curve and -compare
// enforces the 4-shard ≥ 3× floor.
func BenchmarkShardScaleZipf(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = runShardScale(b, shards, 1000, 2*time.Second)
			}
			b.ReportMetric(rate, "mdops_per_simsec")
			b.ReportMetric(0, "ns/op") // sim-time metric; wall ns/op is noise
		})
	}
}

// BenchmarkShardScaleZipf10k is the top of the client range: ten
// thousand closed-loop clients (80k protocol instances) against 8
// authorities. Throughput matches the 1k-client point — the authority
// is the bottleneck either way — so this tier exists to prove the
// installation HOLDS at that scale, not to move the curve. Not part of
// the derived speedup gate.
func BenchmarkShardScaleZipf10k(b *testing.B) {
	for _, shards := range []int{8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = runShardScale(b, shards, 10000, time.Second)
			}
			b.ReportMetric(rate, "mdops_per_simsec")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// TestShardScaleSmoke is the make-verify tier of the curve: 64 clients,
// 2 shards vs 1, a second of simulated traffic each. Two authorities
// must clear ≥1.3× one — far below the asymptotic 2×, high enough to
// catch a serialization bug (a global lock, a misrouted hash) that
// collapses the curve.
func TestShardScaleSmoke(t *testing.T) {
	base := runShardScale(t, 1, 64, time.Second)
	two := runShardScale(t, 2, 64, time.Second)
	if base <= 0 {
		t.Fatal("no throughput on a single shard")
	}
	ratio := two / base
	t.Logf("1 shard: %.0f mdops/simsec; 2 shards: %.0f (%.2fx)", base, two, ratio)
	if ratio < 1.3 {
		t.Fatalf("2-shard speedup %.2fx < 1.3x: sharding is not scaling", ratio)
	}
}
