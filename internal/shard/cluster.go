package shard

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/checker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/meta"
	"repro/internal/msg"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures a sharded installation.
type Options struct {
	Seed int64
	// Shards is the number of independent lease authorities.
	Shards  int
	Clients int
	// DisksPerServer: each shard allocates from its own SAN devices (a
	// shard's allocator never mixes with another's), though handed-off
	// files keep blocks on their original disks.
	DisksPerServer int
	DiskBlocks     uint64
	Core           core.Config
	// Placement maps paths to shard indices (default: Hash over the
	// full path — total and balanced).
	Placement Placement
	// Tracer, when non-nil, receives lease-lifecycle and shard-handoff
	// events from every server and every per-pair protocol instance.
	Tracer *trace.Tracer
	// NoChecker disables the per-shard consistency oracles (benchmarks).
	NoChecker bool
	// ServerService models each authority as a single-threaded request
	// processor with this per-request service time (0 = infinite
	// capacity). The scale benchmark sets it so a single shard
	// saturates.
	ServerService time.Duration
	// DiskService is the per-operation disk latency.
	DiskService time.Duration
	// Replicas, when ≥ 2, gives every shard a replicated lease authority:
	// M diskless server replicas negotiate the active role PaxosLease-
	// style (internal/replica), sharing one metadata store (the paper's
	// highly-available server-private storage). 0 or 1 = sole authority,
	// behavior unchanged.
	Replicas int
	// ReplicaLeaseTerm is the authority-lease term for replicated shards
	// (default DefaultReplicaLeaseTerm). Takeover after an active crash is
	// bounded by this term stretched by ε plus negotiation slack.
	ReplicaLeaseTerm time.Duration
}

// DefaultOptions returns a 2-shard, 2-client installation.
func DefaultOptions() Options {
	cfg := core.DefaultConfig()
	cfg.Tau = 10 * time.Second
	cfg.RetryInterval = 200 * time.Millisecond
	return Options{
		Seed: 1, Shards: 2, Clients: 2,
		DisksPerServer: 1, DiskBlocks: 1 << 14,
		Core:        cfg,
		DiskService: 100 * time.Microsecond,
	}
}

// Node IDs: servers 1..S, clients 10.., replica peers 1001.., disks
// 100000.. — the disk base sits above any realistic client count (the
// scale benchmark runs 10k clients, i.e. IDs up to ~10010) and below the
// allocator's 1<<20 ID ceiling.
const diskBase msg.NodeID = 100000

// DefaultReplicaLeaseTerm is the authority-lease term when
// Options.ReplicaLeaseTerm is zero.
const DefaultReplicaLeaseTerm = replica.DefaultLeaseTerm

// ServerID returns the node ID of shard index i's lease authority.
func ServerID(i int) msg.NodeID { return msg.NodeID(1 + i) }

// ReplicaID returns the node ID of replica j of shard i's authority
// group: replica 0 is ServerID(i), higher replicas sit at +1000 strides —
// clear of client IDs (10..) and below the disk base.
func ReplicaID(i, j int) msg.NodeID { return ServerID(i) + msg.NodeID(1000*j) }

// ClientID returns the node ID of client index i.
func ClientID(i int) msg.NodeID { return msg.NodeID(10 + i) }

// Shard is one lease authority and its private resources.
type Shard struct {
	ID     msg.NodeID
	Server *server.Server
	// Disks lists the shard's own SAN devices and capacities.
	Disks map[msg.NodeID]uint64
	// Replicated-authority state (Options.Replicas ≥ 2). Replicas holds
	// every group member (Replicas[0] == Server); Group their node IDs in
	// ballot order; Store the shared metadata store that models the
	// paper's highly-available server-private storage.
	Replicas []*server.Server
	Group    []msg.NodeID
	Store    *meta.Store
}

// Active returns the replica currently holding the shard's authority
// lease, or nil if none does right now. For an unreplicated shard it is
// always the server.
func (sh *Shard) Active() *server.Server {
	if len(sh.Replicas) == 0 {
		return sh.Server
	}
	for _, srv := range sh.Replicas {
		if !srv.Stopped() && srv.ActiveAuthority() {
			return srv
		}
	}
	return nil
}

// Cluster is the full sharded installation.
type Cluster struct {
	Opts    Options
	Sched   *sim.Scheduler
	Control *simnet.Network
	SAN     *simnet.Network
	Shards  []Shard
	Nodes   []*Node
	// Checkers is one consistency oracle per shard: object IDs (inode
	// numbers) are per-authority, so histories must not mix.
	Checkers []*checker.Checker
	Reg      *stats.Registry
	// allDisks is the installation-wide disk set every shard fences on.
	allDisks map[msg.NodeID]uint64
}

// New builds the installation: S servers — each owning its disks and
// serving the slice of the namespace the placement map assigns it — and
// C client nodes with one protocol instance per server.
func New(opts Options) *Cluster {
	if opts.Shards < 1 || opts.Clients < 1 {
		panic("shard: need at least one shard and one client")
	}
	if opts.Placement == nil {
		opts.Placement = Hash{N: opts.Shards}
	}
	s := sim.NewScheduler(opts.Seed)
	reg := stats.NewRegistry()
	cl := &Cluster{
		Opts:     opts,
		Sched:    s,
		Control:  simnet.New(s, simnet.DefaultControlConfig()),
		SAN:      simnet.New(s, simnet.DefaultSANConfig()),
		Reg:      reg,
		allDisks: make(map[msg.NodeID]uint64),
	}

	nextDisk := diskBase
	diskMaps := make([]map[msg.NodeID]uint64, opts.Shards)
	for si := 0; si < opts.Shards; si++ {
		if opts.NoChecker {
			cl.Checkers = append(cl.Checkers, nil)
		} else {
			cl.Checkers = append(cl.Checkers, checker.New(s))
		}
		diskMap := make(map[msg.NodeID]uint64, opts.DisksPerServer)
		for d := 0; d < opts.DisksPerServer; d++ {
			id := nextDisk
			nextDisk++
			dev := disk.New(id, disk.Config{Blocks: opts.DiskBlocks, ServiceTime: opts.DiskService},
				s.NewClock(1, 0),
				func(to msg.NodeID, m msg.Message) { cl.SAN.Send(id, to, m) },
				reg, disk.Observer{})
			cl.SAN.Attach(id, dev.Deliver)
			diskMap[id] = opts.DiskBlocks
			cl.allDisks[id] = opts.DiskBlocks
		}
		diskMaps[si] = diskMap
	}
	for si := 0; si < opts.Shards; si++ {
		sid := ServerID(si)
		if opts.Replicas < 2 {
			srv := cl.bootServer(sid, cl.serverConfig(diskMaps[si], nil, nil))
			cl.Shards = append(cl.Shards, Shard{ID: sid, Server: srv, Disks: diskMaps[si]})
			continue
		}
		// Replicated authority: M diskless negotiators share one metadata
		// store (HA server-private storage) and elect the active.
		sh := Shard{ID: sid, Disks: diskMaps[si],
			Store: meta.NewStore(meta.NewAllocator(diskMaps[si]))}
		for j := 0; j < opts.Replicas; j++ {
			sh.Group = append(sh.Group, ReplicaID(si, j))
		}
		for j := 0; j < opts.Replicas; j++ {
			rid := ReplicaID(si, j)
			srv := cl.bootServer(rid,
				cl.serverConfig(diskMaps[si], sh.Store, cl.replicaConfig(&sh, rid, false)))
			sh.Replicas = append(sh.Replicas, srv)
		}
		sh.Server = sh.Replicas[0]
		cl.Shards = append(cl.Shards, sh)
	}

	for ci := 0; ci < opts.Clients; ci++ {
		node := &Node{
			cl:      cl,
			idx:     ci,
			subs:    make(map[msg.NodeID]*client.Client, opts.Shards),
			routes:  make(map[msg.NodeID]*client.Client, opts.Shards),
			handles: make(map[msg.Handle]routedHandle),
		}
		cid := ClientID(ci)
		// One protocol instance per authority — the paper's
		// one-lease-per-(client,server)-pair, exactly. All share the
		// node's network address; inbound control traffic routes by
		// source, SAN replies by request-ID base.
		for si := range cl.Shards {
			sh := &cl.Shards[si]
			var oracle checker.Oracle
			if cl.Checkers[si] != nil {
				oracle = cl.Checkers[si]
			}
			sub := client.New(cid, sh.ID, client.Config{
				Core: opts.Core, Policy: baselines.StorageTank(),
				SANReqBase: msg.ReqID(si+1) << 48,
				Replicas:   sh.Group,
			}, s.NewClock(1, 0),
				func(to msg.NodeID, m msg.Message) { cl.Control.Send(cid, to, m) },
				func(to msg.NodeID, m msg.Message) { cl.SAN.Send(cid, to, m) },
				oracle, reg, opts.Tracer)
			node.subs[sh.ID] = sub
			node.routes[sh.ID] = sub
			// Replies and demands may arrive from any member of a
			// replicated authority group; route them all to this sub.
			for _, rid := range sh.Group {
				node.routes[rid] = sub
			}
			node.byIdx = append(node.byIdx, sub)
		}
		cl.Nodes = append(cl.Nodes, node)
		cl.Control.Attach(cid, node.deliverControl)
		cl.SAN.Attach(cid, node.deliverSAN)
	}
	return cl
}

// serverConfig builds one shard's server configuration: the shard
// allocates from its own disks, serves the placement map's slice of the
// namespace (with auto-created parents — server.New enables them when
// PlaceOwner is set), and fences the installation-wide disk set, since a
// handed-off file's blocks may live on any shard's disks. store is
// non-nil on restart.
func (cl *Cluster) serverConfig(disks map[msg.NodeID]uint64, store *meta.Store,
	rep *replica.Config) server.Config {
	place := cl.Opts.Placement
	shards := cl.Opts.Shards
	return server.Config{
		Core: cl.Opts.Core, Policy: baselines.StorageTank(),
		Disks: disks, Store: store, Replica: rep,
		PlaceOwner: func(path string) msg.NodeID {
			idx, ok := place.Owner(path)
			if !ok || idx < 0 || idx >= shards {
				return msg.None
			}
			return ServerID(idx)
		},
		FenceDisks:  cl.allDisks,
		ServiceTime: cl.Opts.ServerService,
	}
}

// replicaConfig builds the negotiation parameters for one member of a
// shard's authority group.
func (cl *Cluster) replicaConfig(sh *Shard, self msg.NodeID, warmup bool) *replica.Config {
	term := cl.Opts.ReplicaLeaseTerm
	if term == 0 {
		term = DefaultReplicaLeaseTerm
	}
	return &replica.Config{
		Self: self, Group: sh.Group,
		LeaseTerm: term, Bound: cl.Opts.Core.Bound,
		RetryInterval: cl.Opts.Core.RetryInterval,
		Warmup:        warmup,
	}
}

// bootServer creates and attaches one server (or replica) node.
func (cl *Cluster) bootServer(id msg.NodeID, cfg server.Config) *server.Server {
	srv := server.New(id, cfg, cl.Sched.NewClock(1, 0),
		func(to msg.NodeID, m msg.Message) { cl.Control.Send(id, to, m) },
		func(to msg.NodeID, m msg.Message) { cl.SAN.Send(id, to, m) },
		cl.Reg, cl.Opts.Tracer)
	cl.Control.Attach(id, srv.Deliver)
	cl.SAN.Attach(id, srv.DeliverSAN)
	return srv
}

// Start registers every protocol instance with its authority (in shard
// order, for deterministic replay) and runs until all are registered.
func (cl *Cluster) Start() {
	var pending []*client.Client
	for _, node := range cl.Nodes {
		for _, sub := range node.byIdx {
			sub.Start()
			pending = append(pending, sub)
		}
	}
	deadline := cl.Sched.Now().Add(time.Minute)
	// Cursor over pending: registrations complete roughly in order, so
	// the predicate stays O(1) amortized even at 10k clients × 8 shards.
	i := 0
	cl.Sched.RunWhile(func() bool {
		if cl.Sched.Now().After(deadline) {
			panic("shard: registration hung")
		}
		for i < len(pending) && pending[i].Registered() {
			i++
		}
		return i < len(pending)
	})
}

// --- client-side router ------------------------------------------------------

// Node is one client machine: a router over per-authority protocol
// instances. Every sub-client has its own channel, lease state machine,
// lock set, cache, and SAN request-ID space.
type Node struct {
	cl   *Cluster
	idx  int
	subs map[msg.NodeID]*client.Client
	// routes maps EVERY node a sub-client may hear from — the primary
	// authority plus its replica peers — to that sub.
	routes map[msg.NodeID]*client.Client
	byIdx  []*client.Client

	// Node-level handles map to (server, sub-handle).
	nextH   msg.Handle
	handles map[msg.Handle]routedHandle
}

type routedHandle struct {
	sub *client.Client
	h   msg.Handle
}

// deliverControl routes inbound control traffic to the sub-client that
// owns the lease with the sending server.
func (n *Node) deliverControl(env msg.Envelope) {
	if sub, ok := n.routes[env.From]; ok {
		sub.Deliver(env)
	}
}

// deliverSAN routes a disk reply by the request ID's shard base. Disk
// identity cannot route here: after a cross-shard handoff a file's
// blocks live on the source shard's disks while the destination's
// sub-client reads them.
func (n *Node) deliverSAN(env msg.Envelope) {
	var req msg.ReqID
	switch m := env.Payload.(type) {
	case *msg.DiskReadRes:
		req = m.Req
	case *msg.DiskWriteRes:
		req = m.Req
	case *msg.DiskReadVRes:
		req = m.Req
	case *msg.DiskWriteVRes:
		req = m.Req
	case *msg.FenceRes:
		req = m.Req
	case *msg.DLockRes:
		req = m.Req
	default:
		return
	}
	if si := int(req>>48) - 1; si >= 0 && si < len(n.byIdx) {
		n.byIdx[si].DeliverSAN(env)
	}
}

// Sub returns the node's protocol instance for the given authority.
func (n *Node) Sub(server msg.NodeID) *client.Client { return n.subs[server] }

// owner resolves a path to the sub-client talking to its authority.
func (n *Node) owner(path string) (*client.Client, msg.Errno) {
	idx, ok := n.cl.Opts.Placement.Owner(path)
	if !ok || idx < 0 || idx >= len(n.byIdx) {
		return nil, msg.ErrNoEnt
	}
	return n.byIdx[idx], msg.OK
}

// Lookup resolves a path at its owning authority.
func (n *Node) Lookup(path string, cb func(attr msg.Attr, errno msg.Errno)) {
	sub, errno := n.owner(path)
	if errno != msg.OK {
		cb(msg.Attr{}, errno)
		return
	}
	sub.Lookup(path, cb)
}

// Create makes a file or directory at its owning authority.
func (n *Node) Create(path string, isDir bool, cb func(attr msg.Attr, errno msg.Errno)) {
	sub, errno := n.owner(path)
	if errno != msg.OK {
		cb(msg.Attr{}, errno)
		return
	}
	sub.Create(path, isDir, cb)
}

// Unlink removes a path at its owning authority.
func (n *Node) Unlink(path string, cb func(errno msg.Errno)) {
	sub, errno := n.owner(path)
	if errno != msg.OK {
		cb(errno)
		return
	}
	sub.Unlink(path, cb)
}

// Rename moves oldPath to newPath. The request goes to the authority
// owning oldPath; when newPath is placed on a different authority the
// source server runs the cross-shard handoff and answers only once the
// object durably lives at its new home.
func (n *Node) Rename(oldPath, newPath string, cb func(errno msg.Errno)) {
	sub, errno := n.owner(oldPath)
	if errno != msg.OK {
		cb(errno)
		return
	}
	sub.Rename(oldPath, newPath, cb)
}

// Open routes an open to the owning authority and returns a node-level
// handle.
func (n *Node) Open(path string, write, create bool, cb func(h msg.Handle, attr msg.Attr, errno msg.Errno)) {
	sub, errno := n.owner(path)
	if errno != msg.OK {
		cb(0, msg.Attr{}, errno)
		return
	}
	sub.Open(path, write, create, func(h msg.Handle, attr msg.Attr, e msg.Errno) {
		if e != msg.OK {
			cb(0, msg.Attr{}, e)
			return
		}
		n.nextH++
		nh := n.nextH
		n.handles[nh] = routedHandle{sub: sub, h: h}
		cb(nh, attr, msg.OK)
	})
}

// Read routes a block read through the owning sub-client.
func (n *Node) Read(h msg.Handle, idx uint64, cb client.DataCallback) {
	rh, ok := n.handles[h]
	if !ok {
		cb(nil, msg.ErrBadHandle)
		return
	}
	rh.sub.Read(rh.h, idx, cb)
}

// Write routes a block write through the owning sub-client.
func (n *Node) Write(h msg.Handle, idx uint64, data []byte, cb client.ErrnoCallback) {
	rh, ok := n.handles[h]
	if !ok {
		cb(msg.ErrBadHandle)
		return
	}
	rh.sub.Write(rh.h, idx, data, cb)
}

// Close closes a node-level handle.
func (n *Node) Close(h msg.Handle, cb client.ErrnoCallback) {
	rh, ok := n.handles[h]
	if !ok {
		cb(msg.ErrBadHandle)
		return
	}
	delete(n.handles, h)
	rh.sub.Close(rh.h, cb)
}

// SyncAll flushes every authority's dirty data.
func (n *Node) SyncAll(cb func()) {
	remaining := len(n.byIdx)
	for _, sub := range n.byIdx {
		sub.Sync(func(msg.Errno) {
			remaining--
			if remaining == 0 && cb != nil {
				cb()
			}
		})
	}
}

// --- fault injection ---------------------------------------------------------

// IsolatePair blocks the control-network link between client node ci
// and shard si only — the narrowest possible failure, invalidating
// exactly one lease.
func (cl *Cluster) IsolatePair(ci, si int) {
	cl.Control.Block(ClientID(ci), ServerID(si))
}

// IsolateServers blocks the server-to-server control link between
// shards si and sj (a handoff mid-flight stalls until HealAll).
func (cl *Cluster) IsolateServers(si, sj int) {
	cl.Control.Block(ServerID(si), ServerID(sj))
}

// HealAll removes all control partitions.
func (cl *Cluster) HealAll() { cl.Control.Heal() }

// CrashServer fails shard si: volatile state (locks, epochs, leases)
// is gone; the metadata store — including export records and the
// import ledger — survives on private storage (§6).
func (cl *Cluster) CrashServer(si int) {
	sh := &cl.Shards[si]
	sh.Server.Stop()
	cl.Control.Crash(sh.ID)
	cl.SAN.Crash(sh.ID)
}

// RestartServer brings a crashed shard back with its recovered store; a
// pending export found there is re-driven immediately (server.New).
func (cl *Cluster) RestartServer(si int) {
	sh := &cl.Shards[si]
	cl.Control.Restart(sh.ID)
	cl.SAN.Restart(sh.ID)
	srv := cl.bootServer(sh.ID, cl.serverConfig(sh.Disks, sh.Server.Store(), nil))
	sh.Server = srv
}

// CrashReplica fails member ri of shard si's authority group: its
// negotiator, volatile state, and network presence are gone; the shared
// store (HA server-private storage) survives.
func (cl *Cluster) CrashReplica(si, ri int) {
	sh := &cl.Shards[si]
	srv := sh.Replicas[ri]
	srv.Stop()
	cl.Control.Crash(srv.ID())
	cl.SAN.Crash(srv.ID())
}

// RestartReplica brings member ri of shard si's group back as a fresh
// diskless negotiator. It restarts in warmup: having forgotten its
// promises, it must sit out one acquisition timeout before voting or
// campaigning again (see replica.Config.Warmup).
func (cl *Cluster) RestartReplica(si, ri int) {
	sh := &cl.Shards[si]
	rid := sh.Group[ri]
	cl.Control.Restart(rid)
	cl.SAN.Restart(rid)
	srv := cl.bootServer(rid, cl.serverConfig(sh.Disks, sh.Store, cl.replicaConfig(sh, rid, true)))
	sh.Replicas[ri] = srv
	if ri == 0 {
		sh.Server = srv
	}
}

// IsolateReplica partitions member ri of shard si's group from its peers
// and from every client node — the replica stays up but can neither
// renew nor serve. HealAll lifts it.
func (cl *Cluster) IsolateReplica(si, ri int) {
	sh := &cl.Shards[si]
	rid := sh.Group[ri]
	for _, peer := range sh.Group {
		if peer != rid {
			cl.Control.Block(rid, peer)
		}
	}
	for ci := 0; ci < cl.Opts.Clients; ci++ {
		cl.Control.Block(rid, ClientID(ci))
	}
}

// --- synchronous conveniences (tests, experiments) ---------------------------

// Await runs the simulation until done fires or maxSim passes.
func (cl *Cluster) Await(maxSim time.Duration, start func(done func())) bool {
	finished := false
	deadline := cl.Sched.Now().Add(maxSim)
	start(func() { finished = true })
	cl.Sched.RunWhile(func() bool { return !finished && !cl.Sched.Now().After(deadline) })
	return finished
}

// MustOpen opens a path on node i.
func (cl *Cluster) MustOpen(i int, path string, write, create bool) msg.Handle {
	var h msg.Handle
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Nodes[i].Open(path, write, create, func(gh msg.Handle, _ msg.Attr, e msg.Errno) {
			h, errno = gh, e
			done()
		})
	})
	if errno != msg.OK {
		panic(fmt.Sprintf("shard: open %s: %v", path, errno))
	}
	return h
}

// Write writes one block on node i.
func (cl *Cluster) Write(i int, h msg.Handle, idx uint64, data []byte) msg.Errno {
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Nodes[i].Write(h, idx, data, func(e msg.Errno) { errno = e; done() })
	})
	return errno
}

// Read reads one block on node i.
func (cl *Cluster) Read(i int, h msg.Handle, idx uint64) ([]byte, msg.Errno) {
	var data []byte
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Nodes[i].Read(h, idx, func(d []byte, e msg.Errno) { data, errno = d, e; done() })
	})
	return data, errno
}

// Rename moves oldPath to newPath from node i.
func (cl *Cluster) Rename(i int, oldPath, newPath string) msg.Errno {
	errno := msg.ErrStale
	cl.Await(time.Minute, func(done func()) {
		cl.Nodes[i].Rename(oldPath, newPath, func(e msg.Errno) { errno = e; done() })
	})
	return errno
}

// Sync flushes node i on all shards.
func (cl *Cluster) Sync(i int) {
	cl.Await(time.Minute, func(done func()) { cl.Nodes[i].SyncAll(done) })
}

// RunFor advances the simulation.
func (cl *Cluster) RunFor(d time.Duration) { cl.Sched.RunFor(d) }

// FinalCheck audits every shard's history and returns all violations.
func (cl *Cluster) FinalCheck() []checker.Violation {
	var out []checker.Violation
	for _, c := range cl.Checkers {
		if c == nil {
			continue
		}
		c.FinalCheck()
		out = append(out, c.Violations()...)
	}
	return out
}

// LeasePhases reports node i's lease phase per shard, in shard order.
func (cl *Cluster) LeasePhases(i int) []core.Phase {
	ids := make([]int, 0, len(cl.Nodes[i].subs))
	for id := range cl.Nodes[i].subs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]core.Phase, 0, len(ids))
	for _, id := range ids {
		out = append(out, cl.Nodes[i].subs[msg.NodeID(id)].Lease().Phase())
	}
	return out
}
