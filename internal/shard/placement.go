// Package shard partitions the Storage Tank namespace across N
// independent lease authorities — the Lustre-style metadata split
// ROADMAP item 1 calls for. Each shard runs the paper's protocol
// UNCHANGED: the lease is per (client, server) pair, nothing in the
// safety argument couples two files served by different authorities, so
// Theorem 3.1 holds per shard by construction (DESIGN.md §14).
//
// The package supplies the deterministic placement map (hash by
// default, pluggable subtree placement), the client-side router that
// resolves every operation to its authority, and the simulated
// installation the scale benchmark and fault tests drive. Cross-shard
// renames run the server-to-server handoff protocol in
// internal/server/shard.go.
package shard

import (
	"hash/fnv"
	"strings"
)

// Placement deterministically maps an absolute path to the index of the
// shard that owns it. Implementations must be pure functions of the
// path: every client and every server must agree on ownership without
// communicating.
type Placement interface {
	// Owner returns the owning shard index, or ok=false if no shard is
	// responsible for the path (possible only for partial maps like
	// Subtree).
	Owner(path string) (int, bool)
}

// Hash places paths by FNV-1a over the full path, modulo N — the
// default: total (every path routable) and statistically balanced.
type Hash struct{ N int }

// Owner implements Placement.
func (h Hash) Owner(path string) (int, bool) {
	if h.N <= 0 {
		return 0, false
	}
	f := fnv.New32a()
	f.Write([]byte(path))
	return int(f.Sum32() % uint32(h.N)), true
}

// Subtree places paths by longest matching directory prefix — the
// administrator-controlled split ("/home on shard 0, /scratch on shard
// 1"). Paths matching no prefix are unroutable.
type Subtree struct {
	// Prefixes maps a directory prefix ("/s0") to a shard index. "/"
	// may be used as a catch-all.
	Prefixes map[string]int
}

// Owner implements Placement.
func (t Subtree) Owner(path string) (int, bool) {
	best, bestLen, ok := 0, -1, false
	for prefix, idx := range t.Prefixes {
		if len(prefix) <= bestLen {
			continue
		}
		if path == prefix || prefix == "/" ||
			strings.HasPrefix(path, prefix+"/") {
			best, bestLen, ok = idx, len(prefix), true
		}
	}
	return best, ok
}
