package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
)

// TestHandoffSingleOwner is the safety property of the handoff protocol
// under fire: whatever fails mid-migration — the source crashing, the
// destination crashing, or the server-to-server link partitioning — and
// whenever it fails relative to the handshake, the file ends up owned by
// EXACTLY one shard. Never zero (a lost answer leaves the source owner),
// never two (the destination's ledger deduplicates retransmissions and
// the source unlinks only after the destination durably owns).
//
// The fault is injected at a sweep of delays spanning the handshake's
// message flights (control latency is 200–800µs per hop), so every
// protocol point — before the export, migrate in flight, answer in
// flight, after settlement — gets hit across the matrix.
func TestHandoffSingleOwner(t *testing.T) {
	delays := []time.Duration{
		0,
		200 * time.Microsecond,
		400 * time.Microsecond,
		700 * time.Microsecond,
		time.Millisecond,
		2 * time.Millisecond,
		5 * time.Millisecond,
		// Past the first retransmission interval (200ms).
		210 * time.Millisecond,
	}
	faults := []struct {
		name   string
		inject func(inst *Cluster)
		heal   func(inst *Cluster)
	}{
		{
			name:   "partition-servers",
			inject: func(inst *Cluster) { inst.IsolateServers(0, 1) },
			heal:   func(inst *Cluster) { inst.HealAll() },
		},
		{
			name:   "crash-source",
			inject: func(inst *Cluster) { inst.CrashServer(0) },
			heal:   func(inst *Cluster) { inst.RestartServer(0) },
		},
		{
			name:   "crash-dest",
			inject: func(inst *Cluster) { inst.CrashServer(1) },
			heal:   func(inst *Cluster) { inst.RestartServer(1) },
		},
	}
	for _, f := range faults {
		for _, d := range delays {
			t.Run(fmt.Sprintf("%s/at=%v", f.name, d), func(t *testing.T) {
				runHandoffFault(t, f.inject, f.heal, d)
			})
		}
	}
}

// lookupRetry resolves path on node i, retrying across the transient
// ErrStale a rejoining sub-client surfaces after its authority restarts.
func lookupRetry(t *testing.T, inst *Cluster, i int, path string) msg.Errno {
	t.Helper()
	for try := 0; ; try++ {
		errno := lookupErr(t, inst, i, path)
		if errno != msg.ErrStale {
			return errno
		}
		if try > 30 {
			t.Fatalf("lookup %s stale after 30 retries", path)
		}
		inst.RunFor(time.Second)
	}
}

func runHandoffFault(t *testing.T, inject, heal func(*Cluster), at time.Duration) {
	ring := trace.NewRing(1 << 16)
	opts := subtreeOptions()
	opts.Seed = int64(at) + 7
	opts.Tracer = trace.New(ring)
	inst := New(opts)
	inst.Start()

	h := inst.MustOpen(0, "/s0/victim", true, true)
	if errno := inst.Write(0, h, 0, block('V')); errno != msg.OK {
		t.Fatal(errno)
	}
	inst.Sync(0)
	releaseLock(t, inst, 0, "/s0/victim")

	// Issue the rename async, let the handshake run for `at`, then pull
	// the plug.
	settled := false
	var renErr msg.Errno
	inst.Nodes[0].Rename("/s0/victim", "/s1/victim", func(e msg.Errno) {
		renErr, settled = e, true
	})
	inst.RunFor(at)
	inject(inst)
	// Let the failure do its damage (retransmissions into a dead peer,
	// client retries into a dead authority), then recover.
	inst.RunFor(5 * time.Second)
	heal(inst)

	// The client's rename must settle: the export is durable, the migrate
	// retransmits until answered, and the client's own retry re-attaches
	// to a re-driven handoff after a source restart.
	deadline := inst.Sched.Now().Add(4 * time.Minute)
	inst.Sched.RunWhile(func() bool { return !settled && !inst.Sched.Now().After(deadline) })
	if !settled {
		t.Fatal("rename never settled after recovery")
	}
	// A lease lost to the crash cancels the in-flight op with ErrStale;
	// that is the client surfacing "outcome unknown" for the application
	// to retry — exactly-once is the HANDOFF's guarantee (the durable
	// export/ledger pair), not the client RPC's. Retry like one.
	for try := 0; renErr == msg.ErrStale; try++ {
		if try > 30 {
			t.Fatal("rename still unsettled after 30 retries")
		}
		inst.RunFor(time.Second)
		renErr = inst.Rename(0, "/s0/victim", "/s1/victim")
	}
	// OK: this attempt drove the handoff. ErrNoEnt: a prior attempt
	// already moved the object and the retry found no source — resolved
	// below by the ownership check (the new name must exist).
	if renErr != msg.OK && renErr != msg.ErrNoEnt {
		t.Fatalf("rename settled with %v", renErr)
	}

	// Exactly one owner, asserted from the namespace: the old name is
	// gone, the new name resolves — from a node that took no part in the
	// rename.
	oldErr := lookupRetry(t, inst, 1, "/s0/victim")
	newErr := lookupRetry(t, inst, 1, "/s1/victim")
	if oldErr != msg.ErrNoEnt || newErr != msg.OK {
		t.Fatalf("ownership after recovery: old=%v new=%v (want ErrNoEnt/OK)", oldErr, newErr)
	}

	// And from the trace: retransmissions and replays notwithstanding,
	// the destination installed the object exactly once, and the source
	// retired its copy only after that install.
	events := ring.Events()
	src, dst := ServerID(0), ServerID(1)
	if n := events.Count(trace.ByNode(dst), trace.ByType(trace.EvShardInstall)); n != 1 {
		t.Fatalf("object installed %d times, want exactly 1", n)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(dst), trace.ByType(trace.EvShardInstall)),
		trace.And(trace.ByNode(src), trace.ByType(trace.EvShardDone))); err != nil {
		t.Fatalf("install/done ordering under fault: %v", err)
	}

	// The file's data survived the move.
	rh := inst.MustOpen(1, "/s1/victim", false, false)
	if data, errno := inst.Read(1, rh, 0); errno != msg.OK || data[0] != 'V' {
		t.Fatalf("data lost in handoff: %v", errno)
	}
}
