package shard

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
)

// releaseLock looks up path on node i and voluntarily returns its data
// lock — renames (like unlinks) are refused while any client holds a
// lock on the object, so tests release after writing.
func releaseLock(t *testing.T, inst *Cluster, i int, path string) {
	t.Helper()
	var ino msg.ObjectID
	ok := inst.Await(time.Minute, func(done func()) {
		inst.Nodes[i].Lookup(path, func(attr msg.Attr, e msg.Errno) {
			if e != msg.OK {
				t.Fatalf("lookup %s: %v", path, e)
			}
			ino = attr.Ino
			done()
		})
	})
	if !ok {
		t.Fatalf("lookup %s timed out", path)
	}
	sub, errno := inst.Nodes[i].owner(path)
	if errno != msg.OK {
		t.Fatalf("owner(%s): %v", path, errno)
	}
	if !inst.Await(time.Minute, func(done func()) {
		sub.ReleaseLock(ino, func(e msg.Errno) {
			if e != msg.OK {
				t.Fatalf("release %s: %v", path, e)
			}
			done()
		})
	}) {
		t.Fatalf("release %s timed out", path)
	}
}

// lookupErr resolves path on node i and returns the errno.
func lookupErr(t *testing.T, inst *Cluster, i int, path string) msg.Errno {
	t.Helper()
	errno := msg.ErrStale
	if !inst.Await(2*time.Minute, func(done func()) {
		inst.Nodes[i].Lookup(path, func(_ msg.Attr, e msg.Errno) { errno = e; done() })
	}) {
		t.Fatalf("lookup %s timed out", path)
	}
	return errno
}

// TestCrossShardRenameMovesData is the handoff happy path: a file with
// data on shard 0 renamed into shard 1's namespace migrates — the old
// name stops resolving, the new name serves the same bytes (from the
// file's ORIGINAL disk blocks), and the trace shows the ordered
// handshake: source handoff → destination install → source done.
func TestCrossShardRenameMovesData(t *testing.T) {
	ring := trace.NewRing(1 << 14)
	opts := subtreeOptions()
	opts.Tracer = trace.New(ring)
	inst := New(opts)
	inst.Start()

	h := inst.MustOpen(0, "/s0/file", true, true)
	if errno := inst.Write(0, h, 0, block('M')); errno != msg.OK {
		t.Fatal(errno)
	}
	inst.Sync(0)
	releaseLock(t, inst, 0, "/s0/file")

	if errno := inst.Rename(0, "/s0/file", "/s1/file"); errno != msg.OK {
		t.Fatalf("cross-shard rename: %v", errno)
	}

	if e := lookupErr(t, inst, 1, "/s0/file"); e != msg.ErrNoEnt {
		t.Fatalf("old name still resolves: %v", e)
	}
	rh := inst.MustOpen(1, "/s1/file", false, false)
	if data, errno := inst.Read(1, rh, 0); errno != msg.OK || !bytes.Equal(data, block('M')) {
		t.Fatalf("read at new home: %v", errno)
	}
	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}

	// The handshake, in global event order: the source announced the
	// handoff, the destination durably installed, and only then did the
	// source retire its copy (single-owner: the overlap is dual-frozen,
	// never dual-served).
	events := ring.Events()
	src, dst := ServerID(0), ServerID(1)
	if n := events.Count(trace.ByNode(src), trace.ByType(trace.EvShardHandoff), trace.ByPeer(dst)); n != 1 {
		t.Fatalf("handoff announced %d times, want 1", n)
	}
	if n := events.Count(trace.ByNode(dst), trace.ByType(trace.EvShardInstall), trace.ByPeer(src)); n != 1 {
		t.Fatalf("installed %d times, want 1", n)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(src), trace.ByType(trace.EvShardHandoff)),
		trace.And(trace.ByNode(dst), trace.ByType(trace.EvShardInstall))); err != nil {
		t.Fatalf("handoff/install ordering: %v", err)
	}
	if err := events.Precedes(
		trace.And(trace.ByNode(dst), trace.ByType(trace.EvShardInstall)),
		trace.And(trace.ByNode(src), trace.ByType(trace.EvShardDone))); err != nil {
		t.Fatalf("install/done ordering: %v", err)
	}
	if err := events.None(trace.ByType(trace.EvShardAbort)); err != nil {
		t.Fatalf("unexpected abort: %v", err)
	}
}

// TestCrossShardRenameSameShardStaysLocal: a rename whose source and
// destination live on the same authority is an ordinary local move — no
// handoff traffic at all.
func TestCrossShardRenameSameShardStaysLocal(t *testing.T) {
	ring := trace.NewRing(1 << 12)
	opts := subtreeOptions()
	opts.Tracer = trace.New(ring)
	inst := New(opts)
	inst.Start()
	inst.MustOpen(0, "/s0/a", true, true)
	if errno := inst.Rename(0, "/s0/a", "/s0/b"); errno != msg.OK {
		t.Fatalf("local rename: %v", errno)
	}
	if err := ring.Events().None(trace.ByType(
		trace.EvShardHandoff, trace.EvShardInstall, trace.EvShardDone, trace.EvShardAbort)); err != nil {
		t.Fatalf("local rename emitted handoff traffic: %v", err)
	}
}

// TestCrossShardRenameLockedRefused: an active lock holder pins the
// object to its shard; the handoff never starts.
func TestCrossShardRenameLockedRefused(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()
	h := inst.MustOpen(0, "/s0/busy", true, true)
	if errno := inst.Write(0, h, 0, block('B')); errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := inst.Rename(1, "/s0/busy", "/s1/busy"); errno != msg.ErrConflict {
		t.Fatalf("rename of locked file = %v, want ErrConflict", errno)
	}
}

// TestCrossShardRenameDirRefused: directory subtrees are placed, not
// migrated — single-inode handoff only.
func TestCrossShardRenameDirRefused(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()
	if !inst.Await(time.Minute, func(done func()) {
		inst.Nodes[0].Create("/s0/dir", true, func(_ msg.Attr, e msg.Errno) {
			if e != msg.OK {
				t.Fatalf("mkdir: %v", e)
			}
			done()
		})
	}) {
		t.Fatal("mkdir timed out")
	}
	if errno := inst.Rename(0, "/s0/dir", "/s1/dir"); errno != msg.ErrIsDir {
		t.Fatalf("cross-shard dir rename = %v, want ErrIsDir", errno)
	}
}

// TestCrossShardRenameUnroutableDest: a destination name no authority
// serves fails cleanly; the object stays put.
func TestCrossShardRenameUnroutableDest(t *testing.T) {
	inst := New(subtreeOptions())
	inst.Start()
	inst.MustOpen(0, "/s0/f", true, true)
	if errno := inst.Rename(0, "/s0/f", "/limbo/f"); errno != msg.ErrNoEnt {
		t.Fatalf("rename to unroutable dest = %v, want ErrNoEnt", errno)
	}
	if e := lookupErr(t, inst, 0, "/s0/f"); e != msg.OK {
		t.Fatalf("object lost after refused rename: %v", e)
	}
}
