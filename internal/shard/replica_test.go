package shard

import (
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/trace"
)

func replicatedOptions(seed int64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Shards = 1
	opts.Clients = 2
	opts.Replicas = 3
	opts.ReplicaLeaseTerm = time.Second
	return opts
}

// takeoverBound is the window within which a passive replica must assume
// a crashed active's authority: the acceptors' acquisition timeout (they
// must forget the dead holder's lease) plus negotiation slack.
func takeoverBound(opts Options) time.Duration {
	return opts.Core.Bound.Stretch(opts.ReplicaLeaseTerm) +
		opts.Core.Bound.Stretch(8*opts.Core.RetryInterval)
}

func activeReplica(t *testing.T, sh *Shard) int {
	t.Helper()
	for i, srv := range sh.Replicas {
		if !srv.Stopped() && srv.ActiveAuthority() {
			return i
		}
	}
	t.Fatal("no active replica")
	return -1
}

// TestReplicatedTakeover: crash the active replica of a 3-way group
// mid-workload. A passive must take over within the bounded window, enter
// grace-period recovery (clients had registered), and serve the same
// namespace: no acknowledged write may be lost, and the surviving client
// state must come through reassertion, not fencing.
func TestReplicatedTakeover(t *testing.T) {
	ring := trace.NewRing(1 << 16)
	opts := replicatedOptions(7)
	opts.Tracer = trace.New(ring)
	inst := New(opts)
	inst.Start()
	sh := &inst.Shards[0]

	h := inst.MustOpen(0, "/f", true, true)
	if errno := inst.Write(0, h, 0, block('a')); errno != msg.OK {
		t.Fatal(errno)
	}
	inst.Sync(0) // the write is acknowledged and on the SAN

	oldIdx := activeReplica(t, sh)
	oldID := sh.Group[oldIdx]
	crashedAt := inst.Sched.Now()
	inst.CrashReplica(0, oldIdx)

	// A peer must take over within the bound.
	bound := takeoverBound(opts)
	inst.Sched.RunWhile(func() bool {
		return sh.Active() == nil && inst.Sched.Now().Sub(crashedAt) < time.Minute
	})
	succ := sh.Active()
	if succ == nil {
		t.Fatal("no replica took over")
	}
	if took := inst.Sched.Now().Sub(crashedAt); took > bound {
		t.Fatalf("takeover took %v, bound %v", took, bound)
	}

	// The takeover entered grace: clients had registered under the old
	// regime (durable epoch > 0), so their locks get the reassertion
	// window.
	events := ring.Events()
	tk, ok := events.Last(trace.ByNode(succ.ID()), trace.ByType(trace.EvReplicaTakeover))
	if !ok {
		t.Fatal("no takeover event at the successor")
	}
	if tk.Note != "grace" {
		t.Fatalf("takeover note = %q, want \"grace\" (epoch was nonzero)", tk.Note)
	}

	// Let grace complete, then read the acknowledged write back through
	// the new active — client 1 opens fresh, so the data must come from
	// the recovered metadata + SAN, not from node 0's cache.
	inst.RunFor(opts.Core.StealDelay() + time.Second)
	h1 := inst.MustOpen(1, "/f", false, false)
	data, errno := inst.Read(1, h1, 0)
	if errno != msg.OK || len(data) == 0 || data[0] != 'a' {
		t.Fatalf("acknowledged write lost across takeover: data=%v errno=%v", data, errno)
	}

	// No client was fenced: recovery came through grace + reassertion.
	// (Fencing a client whose lease never lapsed would be a safety bug;
	// fencing one that reasserted in time would be a double penalty.)
	for ci := 0; ci < opts.Clients; ci++ {
		if n := events.Count(trace.ByPeer(ClientID(ci)), trace.ByType(trace.EvFence),
			func(e trace.Event) bool { return e.On }); n != 0 {
			t.Fatalf("client %d fenced %d times during a clean takeover", ci, n)
		}
	}
	// And the lease-granted record shows exactly one takeover regime
	// change (old holder, then successor; renewals carry the same node).
	if n := events.Count(trace.ByType(trace.EvReplicaLeaseGranted),
		func(e trace.Event) bool { return e.Note == "" && e.Node != oldID && e.Node != succ.ID() }); n != 0 {
		t.Fatalf("%d lease grants at replicas other than the two holders", n)
	}

	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

// TestTheorem31AcrossTakeover: the paper's safety theorem must hold even
// when the steal fires on a DIFFERENT replica than the one the client's
// lease was minted against. Client 0 dirties a file, the active crashes,
// a peer takes over, and client 0 is cut off; when the successor steals
// client 0's locks, the client's own expiry must already have happened —
// the τ(1+ε) bound spans the takeover boundary because the successor's
// suspicion clock starts no earlier than its first unanswered demand.
func TestTheorem31AcrossTakeover(t *testing.T) {
	ring := trace.NewRing(1 << 16)
	opts := replicatedOptions(11)
	opts.Tracer = trace.New(ring)
	inst := New(opts)
	inst.Start()
	sh := &inst.Shards[0]

	h := inst.MustOpen(0, "/f", true, true)
	if errno := inst.Write(0, h, 0, block('a')); errno != msg.OK {
		t.Fatal(errno)
	}

	// Crash the active; wait for the successor.
	oldIdx := activeReplica(t, sh)
	inst.CrashReplica(0, oldIdx)
	crashedAt := inst.Sched.Now()
	inst.Sched.RunWhile(func() bool {
		return sh.Active() == nil && inst.Sched.Now().Sub(crashedAt) < time.Minute
	})
	succ := sh.Active()
	if succ == nil {
		t.Fatal("no replica took over")
	}

	// Let grace run out: client 0 rejoins the successor and reasserts its
	// write lock, so the new regime actually KNOWS who holds /f. (Cutting
	// the client before reassertion would leave the successor with nothing
	// to steal — the grace window itself covers that case.)
	inst.RunFor(opts.Core.StealDelay() + time.Second)

	// Now cut client 0 off from every replica: its lease (reminted under
	// the successor) must expire before the successor steals.
	for ri := range sh.Group {
		if ri != oldIdx {
			inst.Control.Block(ClientID(0), sh.Group[ri])
		}
	}

	// Client 1 wants the file; the successor demands, fails to deliver,
	// and arms its steal.
	h1 := inst.MustOpen(1, "/f", true, false)
	if errno := inst.Write(1, h1, 0, block('Z')); errno != msg.OK {
		t.Fatalf("survivor write: %v", errno)
	}

	events := ring.Events()
	isolated := ClientID(0)
	if n := events.Count(trace.ByNode(succ.ID()), trace.ByType(trace.EvStealFired),
		trace.ByPeer(isolated)); n != 1 {
		t.Fatalf("successor fired %d steals at the isolated client, want 1", n)
	}
	// Theorem 3.1 across the takeover boundary: client expiry (its lease
	// names the shard's primary ID) strictly precedes the successor's
	// steal.
	if err := events.Precedes(
		trace.And(trace.ByNode(isolated), trace.ByType(trace.EvExpire)),
		trace.And(trace.ByNode(succ.ID()), trace.ByType(trace.EvStealFired), trace.ByPeer(isolated)),
	); err != nil {
		t.Fatalf("Theorem 3.1 across takeover: %v", err)
	}
	// The phase-4 flush saved the dirty block before expiry.
	if exp, ok := events.First(trace.ByNode(isolated), trace.ByType(trace.EvExpire)); !ok || exp.Note == "dirty" {
		t.Fatalf("expiry = %+v (ok=%v), want a clean flushed expiry", exp, ok)
	}

	inst.HealAll()
	inst.RunFor(2 * opts.Core.Tau)
	inst.Sync(0)
	inst.Sync(1)
	if got := inst.FinalCheck(); len(got) != 0 {
		t.Fatalf("violations: %v", got)
	}
}

// TestReplicaRestartRejoinsGroup: a crashed replica restarts (diskless,
// warmup) and the group keeps exactly one active throughout.
func TestReplicaRestartRejoinsGroup(t *testing.T) {
	opts := replicatedOptions(13)
	inst := New(opts)
	inst.Start()
	sh := &inst.Shards[0]

	oldIdx := activeReplica(t, sh)
	inst.CrashReplica(0, oldIdx)
	inst.RunFor(500 * time.Millisecond)
	inst.RestartReplica(0, oldIdx)

	// The restarted member must not grab the lease inside its warmup.
	inst.RunFor(takeoverBound(opts) + time.Second)
	actives := 0
	for _, srv := range sh.Replicas {
		if !srv.Stopped() && srv.ActiveAuthority() {
			actives++
		}
	}
	if actives != 1 {
		t.Fatalf("%d active replicas after restart, want exactly 1", actives)
	}
	// And the cluster still serves. The takeover invalidated node 0's
	// registration, so the first attempts surface the transient ErrStale
	// the client hands applications to retry (see fault_test.go).
	h := openRetry(t, inst, 0, "/g")
	if errno := inst.Write(0, h, 0, block('x')); errno != msg.OK {
		t.Fatalf("write after restart: %v", errno)
	}
}

// openRetry opens path for writing on node i, retrying across the
// transient ErrStale a client surfaces while re-registering after an
// authority change.
func openRetry(t *testing.T, inst *Cluster, i int, path string) msg.Handle {
	t.Helper()
	for try := 0; ; try++ {
		var h msg.Handle
		errno := msg.ErrStale
		inst.Await(time.Minute, func(done func()) {
			inst.Nodes[i].Open(path, true, true, func(gh msg.Handle, _ msg.Attr, e msg.Errno) {
				h, errno = gh, e
				done()
			})
		})
		if errno == msg.OK {
			return h
		}
		if errno != msg.ErrStale {
			t.Fatalf("open %s: %v", path, errno)
		}
		if try > 30 {
			t.Fatalf("open %s stale after 30 retries", path)
		}
		inst.RunFor(time.Second)
	}
}

// BenchmarkReplicaFailover measures the takeover window: sim time from
// SIGKILLing the active to a peer holding the authority lease. benchjson
// derives failover.takeover_ms from it and gates regressions.
func BenchmarkReplicaFailover(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		opts := replicatedOptions(int64(100 + i))
		opts.NoChecker = true
		inst := New(opts)
		inst.Start()
		sh := &inst.Shards[0]
		var oldIdx int
		for ri, srv := range sh.Replicas {
			if srv.ActiveAuthority() {
				oldIdx = ri
			}
		}
		inst.CrashReplica(0, oldIdx)
		crashedAt := inst.Sched.Now()
		inst.Sched.RunWhile(func() bool {
			return sh.Active() == nil && inst.Sched.Now().Sub(crashedAt) < time.Minute
		})
		if sh.Active() == nil {
			b.Fatal("no takeover")
		}
		total += inst.Sched.Now().Sub(crashedAt)
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "takeover_ms")
}
