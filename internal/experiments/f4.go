package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// phaseEvent is one recorded lease transition.
type phaseEvent struct {
	phase core.Phase
	at    sim.Time // global
	dirty int
}

// RunF4 traces Fig 4, the four phases of the lease period, on a live
// installation: a client with dirty data is isolated and we record when
// each phase begins (as a fraction of τ since isolation, global time),
// how many dirty pages remain at each boundary, when the flush completes,
// and when the server steals. The paper's invariant: no dirty pages by
// the end of phase 4, and the steal strictly after the client's expiry.
func RunF4(p Params) *Result {
	opts := baseOptions(p.Seed)
	opts.Clients = 2
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	var events []phaseEvent
	c0 := cl.Clients[0]
	c0.OnPhase = func(from, to core.Phase) {
		events = append(events, phaseEvent{phase: to, at: cl.Sched.Now(), dirty: c0.Cache().TotalDirty()})
	}

	// Dirty state: two committed + re-dirtied blocks.
	h0, _ := cl.MustOpen(0, "/traced", true, true)
	mustOK(cl.Write(0, h0, 0, blockData('A')))
	mustOK(cl.Write(0, h0, 1, blockData('B')))
	mustOK(cl.Sync(0))
	mustOK(cl.Write(0, h0, 0, blockData('C')))
	mustOK(cl.Write(0, h0, 1, blockData('D')))

	events = nil // ignore registration-time transitions
	isoAt := cl.Sched.Now()
	cl.IsolateClient(0)
	// A survivor contends, so the server-side timeout machinery runs too.
	h1, _, _ := cl.Open(1, "/traced", true, false)
	stealDone := false
	var grantAt sim.Time
	cl.Clients[1].Write(h1, 0, blockData('E'), func(e msg.Errno) {
		stealDone = true
		grantAt = cl.Sched.Now()
	})
	deadline := cl.Sched.Now().Add(3 * tau)
	cl.Sched.RunWhile(func() bool { return !stealDone && !cl.Sched.Now().After(deadline) })
	cl.RunFor(tau / 2)

	keepalives := int(cl.Reg.CounterValue(fmt.Sprintf("client.%v.lease.keepalives", cluster.ClientID(0))))

	res := &Result{ID: "F4", Title: "lease-phase timeline of an isolated client"}
	res.Table = stats.NewTable("",
		"event", "t (global)", "t/τ since isolation", "dirty pages")

	frac := func(at sim.Time) string {
		return stats.FmtF(float64(at.Sub(isoAt)) / float64(tau))
	}
	var expiryAt, flushAt sim.Time
	for _, ev := range events {
		switch ev.phase {
		case core.Phase4Flush:
			flushAt = ev.at
		case core.PhaseExpired:
			expiryAt = ev.at
		}
		res.Table.AddRow("enter "+ev.phase.String(), ev.at.String(), frac(ev.at), stats.FmtN(ev.dirty))
	}
	res.Table.AddRow("survivor granted (steal)", grantAt.String(), frac(grantAt), "")
	res.Table.AddNote("phase boundaries configured at %.2f/%.2f/%.2fτ; keep-alives sent in phase 2: %d",
		opts.Core.P1End, opts.Core.P2End, opts.Core.P3End, keepalives)

	res.Metric("dirty_at_expiry", float64(dirtyAt(events, core.PhaseExpired)))
	res.Metric("dirty_at_flush_entry", float64(dirtyAt(events, core.Phase4Flush)))
	res.Metric("keepalives", float64(keepalives))
	res.Metric("steal_after_expiry_secs", grantAt.Sub(expiryAt).Seconds())
	res.Metric("flush_entry_frac", float64(flushAt.Sub(isoAt))/float64(tau))
	mustOK(cl.Sync(1)) // quiesce the survivor before the audit
	cl.Checker.FinalCheck()
	res.Metric("violations", float64(len(cl.Checker.Violations())))
	return res
}

func dirtyAt(events []phaseEvent, p core.Phase) int {
	for _, ev := range events {
		if ev.phase == p {
			return ev.dirty
		}
	}
	return -1
}

func mustOK(errno msg.Errno) {
	if errno != msg.OK {
		panic(fmt.Sprintf("experiments: unexpected errno %v", errno))
	}
}
