package experiments

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RunF3 reproduces Fig 3 and Theorem 3.1: a lease obtained from the send
// time tC1 of an ACKed message, on clocks that are only RATE synchronized
// within ε, always expires at the client before the server's τ(1+ε)
// steal. We sweep ε, drawing random clock-rate pairs inside the bound,
// and measure the safety margin (steal time − client expiry, global);
// the final row draws rates OUTSIDE the bound to show the assumption is
// load-bearing.
func RunF3(p Params) *Result {
	trials := 2000
	if p.Quick {
		trials = 300
	}
	epsSweep := []float64{0, 0.01, 0.05, 0.10}

	res := &Result{ID: "F3", Title: "Theorem 3.1 as a measured property"}
	res.Table = stats.NewTable("",
		"eps", "trials", "violations", "min margin", "mean margin")

	rng := rand.New(rand.NewSource(p.Seed))
	for _, eps := range epsSweep {
		viol, minM, meanM := theoremTrials(rng, eps, trials, false)
		res.Table.AddRow(
			stats.FmtF(eps),
			stats.FmtN(trials),
			stats.FmtN(viol),
			minM.String(),
			meanM.String(),
		)
		res.Metric("violations.eps="+stats.FmtF(eps), float64(viol))
	}
	// Adversarial: rates violating the bound.
	viol, minM, meanM := theoremTrials(rng, 0.05, trials, true)
	res.Table.AddRow("0.05 (violated)", stats.FmtN(trials), stats.FmtN(viol), minM.String(), meanM.String())
	res.Metric("violations.outside_bound", float64(viol))
	res.Table.AddNote("margin = global(steal) − global(client lease expiry); negative = unsafe")
	return res
}

// theoremTrials runs the renewal/steal race. When outsideBound is set the
// clock rates deliberately exceed the pairwise bound (slow client, fast
// server), the regime §6 retains fencing for.
func theoremTrials(rng *rand.Rand, eps float64, trials int, outsideBound bool) (violations int, minMargin, meanMargin time.Duration) {
	cfg := core.DefaultConfig()
	cfg.Bound = sim.RateBound{Eps: eps}
	var sum time.Duration
	minMargin = time.Duration(math.MaxInt64)

	for t := 0; t < trials; t++ {
		// τ between 50ms and ~1s keeps trials fast without loss of
		// generality (the theorem is scale-free).
		cfg.Tau = time.Duration(50+rng.Intn(950)) * time.Millisecond

		var rc, rs float64
		if outsideBound {
			rc = 0.75 + 0.05*rng.Float64() // slow client
			rs = 1.20 + 0.05*rng.Float64() // fast server
		} else {
			base := 0.8 + 0.4*rng.Float64()
			half := math.Sqrt(1+eps) - 1
			rc = base * (1 + (2*rng.Float64()-1)*half)
			rs = base * (1 + (2*rng.Float64()-1)*half)
		}

		s := sim.NewScheduler(rng.Int63())
		clientClock := s.NewClock(rc, sim.Duration(rng.Int63n(int64(time.Hour))))
		serverClock := s.NewClock(rs, sim.Duration(rng.Int63n(int64(time.Hour))))

		var expiredAt, stolenAt sim.Time
		lease := core.NewLeaseClient(cfg, clientClock, &phaseRecorder{
			s: s, onExpire: func(at sim.Time) { expiredAt = at },
		}, core.Env{})
		auth := core.NewAuthority(cfg, serverClock, stealFn(func(at sim.Time) { stolenAt = at }, s), core.Env{})

		// The client's message is sent now (tC1); the server observes the
		// delivery failure some time ≥ tC1 later (message latency + demand
		// retries).
		lease.Renewed(clientClock.Now())
		gap := time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
		s.After(gap, func() { auth.OnDeliveryFailure(3) })
		s.Run()

		margin := stolenAt.Sub(expiredAt)
		if margin < 0 {
			violations++
		}
		if margin < minMargin {
			minMargin = margin
		}
		sum += margin
	}
	return violations, minMargin, sum / time.Duration(trials)
}

// phaseRecorder is a minimal LeaseActions that auto-completes flushes and
// records expiry.
type phaseRecorder struct {
	s        *sim.Scheduler
	onExpire func(at sim.Time)
	onPhase  func(from, to core.Phase, at sim.Time)
}

func (r *phaseRecorder) SendKeepAlive()    {}
func (r *phaseRecorder) Quiesce()          {}
func (r *phaseRecorder) Flush(done func()) { done() }
func (r *phaseRecorder) Expired() {
	if r.onExpire != nil {
		r.onExpire(r.s.Now())
	}
}
func (r *phaseRecorder) PhaseChange(from, to core.Phase) {
	if r.onPhase != nil {
		r.onPhase(from, to, r.s.Now())
	}
}

// stealFn adapts a closure to core.AuthorityActions.
type stealRecorder struct {
	s  *sim.Scheduler
	fn func(at sim.Time)
}

func stealFn(fn func(at sim.Time), s *sim.Scheduler) stealRecorder {
	return stealRecorder{s: s, fn: fn}
}

func (r stealRecorder) StealLocks(client msg.NodeID) { r.fn(r.s.Now()) }
