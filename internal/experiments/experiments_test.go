package experiments

import (
	"strings"
	"testing"
)

func quick() Params { return Params{Seed: 7, Quick: true} }

func TestAllRegisteredAndLookup(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("experiments = %d, want 15 (F1-F5, T1-T8, A1-A2)", len(all))
	}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		got, ok := ByID(strings.ToLower(e.ID))
		if !ok || got.ID != e.ID {
			t.Fatalf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestF1DirectBeatsFunctionShip(t *testing.T) {
	r := RunF1(quick())
	if r.Metrics["direct.server_data_bytes"] != 0 {
		t.Fatalf("direct path moved %v bytes through the server", r.Metrics["direct.server_data_bytes"])
	}
	if r.Metrics["funcship.server_data_bytes"] == 0 {
		t.Fatal("function-ship path moved no data through the server")
	}
	if r.Metrics["speedup_at_max_clients"] < 1.3 {
		t.Fatalf("direct access slower than function shipping: %v", r.Metrics["speedup_at_max_clients"])
	}
}

func TestF2OnlyLeaseIsAvailableAndSafe(t *testing.T) {
	r := RunF2(quick())
	if v := r.Metrics["storage-tank.violations"]; v != 0 {
		t.Fatalf("lease protocol violated consistency %v times", v)
	}
	if w := r.Metrics["storage-tank.lock_wait_secs"]; w <= 0 {
		t.Fatal("lease protocol did not recover the lock")
	}
	if w := r.Metrics["honor-locks.lock_wait_secs"]; w != -1 {
		t.Fatalf("honor-locks recovered within the horizon (wait %v)", w)
	}
	if v := r.Metrics["naive-steal.violations"]; v == 0 {
		t.Fatal("naive steal produced no violations")
	}
	if v := r.Metrics["fence-only.violations"]; v == 0 {
		t.Fatal("fence-only produced no violations")
	}
}

func TestF3TheoremHoldsInsideBound(t *testing.T) {
	r := RunF3(quick())
	for _, eps := range []string{"0", "0.01", "0.05", "0.1"} {
		if v := r.Metrics["violations.eps="+eps]; v != 0 {
			t.Fatalf("eps=%s: %v violations inside the bound", eps, v)
		}
	}
	if v := r.Metrics["violations.outside_bound"]; v == 0 {
		t.Fatal("no violations outside the bound — the assumption would be vacuous")
	}
}

func TestF4PhasesFlushBeforeExpiry(t *testing.T) {
	r := RunF4(quick())
	if d := r.Metrics["dirty_at_expiry"]; d != 0 {
		t.Fatalf("dirty pages at expiry: %v", d)
	}
	if d := r.Metrics["dirty_at_flush_entry"]; d <= 0 {
		t.Fatalf("nothing dirty at phase-4 entry (%v) — scenario broken", d)
	}
	if s := r.Metrics["steal_after_expiry_secs"]; s < 0 {
		t.Fatalf("steal preceded client expiry by %v s", -s)
	}
	if k := r.Metrics["keepalives"]; k <= 0 {
		t.Fatal("no keep-alives in phase 2")
	}
	if v := r.Metrics["violations"]; v != 0 {
		t.Fatalf("violations: %v", v)
	}
	// Phase 4 begins at the configured fraction of τ (allowing clock
	// skew and failure-detection offsets of a few percent).
	if f := r.Metrics["flush_entry_frac"]; f < 0.7 || f > 1.0 {
		t.Fatalf("flush entry at %.2fτ, want ≈0.85τ", f)
	}
}

func TestF5NACKSavesTrafficAndTime(t *testing.T) {
	r := RunF5(quick())
	if r.Metrics["nack.msgs_after_heal"] >= r.Metrics["ignore.msgs_after_heal"] {
		t.Fatalf("NACK did not reduce traffic: %v vs %v",
			r.Metrics["nack.msgs_after_heal"], r.Metrics["ignore.msgs_after_heal"])
	}
	if r.Metrics["nack.time_to_quiesce_secs"] >= r.Metrics["ignore.time_to_quiesce_secs"] {
		t.Fatalf("NACK did not quiesce sooner: %v vs %v",
			r.Metrics["nack.time_to_quiesce_secs"], r.Metrics["ignore.time_to_quiesce_secs"])
	}
}

func TestT1StorageTankIsFree(t *testing.T) {
	r := RunT1(quick())
	if v := r.Metrics["storage-tank.active_lease_msgs_per_tau"]; v != 0 {
		t.Fatalf("active Storage Tank clients sent %v lease msgs/τ", v)
	}
	if v := r.Metrics["storage-tank.server_lease_ops"]; v != 0 {
		t.Fatalf("Storage Tank server performed %v lease ops", v)
	}
	if v := r.Metrics["storage-tank.server_lease_bytes_max"]; v != 0 {
		t.Fatalf("Storage Tank server held %v lease bytes", v)
	}
	// Idle Storage Tank clients pay a couple of keep-alives per τ — far
	// fewer than Frangipani's always-on heartbeats.
	if v := r.Metrics["storage-tank.idle_lease_msgs_per_tau"]; v <= 0 || v > 3 {
		t.Fatalf("idle keep-alives per τ = %v, want (0,3]", v)
	}
	if r.Metrics["frangipani.active_lease_msgs_per_tau"] <= 0 {
		t.Fatal("Frangipani sent no heartbeats while active")
	}
	if r.Metrics["frangipani.server_lease_bytes_max"] <= 0 {
		t.Fatal("Frangipani server held no lease state")
	}
	if r.Metrics["v-leases.server_lease_bytes_max"] <=
		r.Metrics["frangipani.server_lease_bytes_max"] {
		t.Fatal("per-object lease state should exceed per-client state")
	}
}

func TestT2AvailabilityScalesWithTau(t *testing.T) {
	r := RunT2(quick())
	w5 := r.Metrics["storage-tank.wait_secs.tau=5s"]
	w20 := r.Metrics["storage-tank.wait_secs.tau=20s"]
	if w5 <= 0 || w20 <= 0 {
		t.Fatalf("lease recovery failed: %v / %v", w5, w20)
	}
	if w20 < 2*w5 {
		t.Fatalf("wait does not scale with τ: τ=5s→%vs, τ=20s→%vs", w5, w20)
	}
	// Recovery lands near τ(1+ε) + detection.
	if w5 < 5 || w5 > 8 {
		t.Fatalf("τ=5s wait = %vs, want ≈5.25-7s", w5)
	}
	if r.Metrics["honor-locks.wait_secs.tau=5s"] != -1 {
		t.Fatal("honor-locks recovered")
	}
	if fo := r.Metrics["fence-only.wait_secs.tau=5s"]; fo <= 0 || fo > 2 {
		t.Fatalf("fence-only wait = %vs, want sub-2s (unsafe but fast)", fo)
	}
}

func TestT3OnlySafePoliciesAreClean(t *testing.T) {
	r := RunT3(quick())
	if v := r.Metrics["storage-tank.total_violations"]; v != 0 {
		t.Fatalf("storage-tank violations: %v", v)
	}
	if v := r.Metrics["honor-locks.total_violations"]; v != 0 {
		t.Fatalf("honor-locks violations: %v", v)
	}
	if v := r.Metrics["frangipani.total_violations"]; v != 0 {
		t.Fatalf("frangipani violations: %v", v)
	}
	unsafe := r.Metrics["naive-steal.total_violations"] + r.Metrics["fence-only.total_violations"]
	if unsafe == 0 {
		t.Fatal("failure injection produced no violations for the unsafe policies")
	}
}

func TestT4DlockCostsMoreSAN(t *testing.T) {
	r := RunT4(quick())
	st := r.Metrics["storage-tank.san_msgs_per_op"]
	gfs := r.Metrics["gfs-dlock.san_msgs_per_op"]
	if gfs <= st {
		t.Fatalf("dlock SAN cost (%v/op) not above logical locks (%v/op)", gfs, st)
	}
	if gfs < 2 {
		t.Fatalf("dlock should cost at least lock+unlock round trips, got %v/op", gfs)
	}
}

func TestT5KeepAliveCrossover(t *testing.T) {
	r := RunT5(quick())
	opts := baseOptions(7)
	tau := opts.Core.Tau
	busy := "keepalives_per_tau.think=" + (tau / 20).String()
	idle := "keepalives_per_tau.think=" + (2 * tau).String()
	if v := r.Metrics[busy]; v != 0 {
		t.Fatalf("busy clients sent %v keep-alives/τ", v)
	}
	if v := r.Metrics[idle]; v <= 0 {
		t.Fatal("idle clients sent no keep-alives")
	}
	for name, v := range r.Metrics {
		if strings.HasPrefix(name, "expiries.") && v != 0 {
			t.Fatalf("%s = %v: a lease expired without any failure", name, v)
		}
	}
}

func TestT6FenceStopsSlowClients(t *testing.T) {
	r := RunT6(quick())
	if r.Metrics["nofence.late_write_corrupted"] != 1 {
		t.Fatal("without the fence, the slow client's late flush should corrupt the disk")
	}
	if r.Metrics["fence.late_write_corrupted"] != 0 {
		t.Fatal("the fence failed to stop the late write")
	}
	if r.Metrics["fence.fenced_rejections"] == 0 {
		t.Fatal("the fence never rejected anything")
	}
}

func TestT7ReassertionBeatsFullRecovery(t *testing.T) {
	r := RunT7(quick())
	if r.Metrics["reassert.cache_survived"] != 1 {
		t.Fatal("reassertion lost the cache")
	}
	if r.Metrics["norecover.cache_survived"] != 0 {
		t.Fatal("ablation kept the cache")
	}
	if r.Metrics["reassert.outage_secs"] >= r.Metrics["norecover.outage_secs"] {
		t.Fatalf("reassertion outage %vs not below full recovery %vs",
			r.Metrics["reassert.outage_secs"], r.Metrics["norecover.outage_secs"])
	}
	if r.Metrics["reassert.violations"] != 0 || r.Metrics["norecover.violations"] != 0 {
		t.Fatal("server recovery violated consistency")
	}
}

func TestT8PerPairGranularity(t *testing.T) {
	r := RunT8(quick())
	if r.Metrics["unaffected_shard_errors"] != 0 {
		t.Fatalf("unaffected shards saw %v errors", r.Metrics["unaffected_shard_errors"])
	}
	if r.Metrics["unaffected_leases_valid"] != 1 {
		t.Fatal("unaffected shard leases were disturbed")
	}
	if r.Metrics["partitioned_shard_errors"] == 0 {
		t.Fatal("the partitioned shard saw no errors — the partition did nothing")
	}
	if r.Metrics["violations"] != 0 {
		t.Fatalf("violations: %v", r.Metrics["violations"])
	}
}

func TestA1PhaseBoundaries(t *testing.T) {
	r := RunA1(quick())
	if v := r.Metrics["dirty_at_expiry.p3=0.85"]; v != 0 {
		t.Fatalf("default boundaries left %v dirty pages at expiry", v)
	}
	if v := r.Metrics["dirty_at_expiry.p3=0.98"]; v == 0 {
		t.Fatal("reckless flush window absorbed the cache — the ablation shows nothing")
	}
}

func TestA2RetryPolicy(t *testing.T) {
	r := RunA2(quick())
	if r.Metrics["false_suspicions.retries=0"] <= r.Metrics["false_suspicions.retries=3"] {
		t.Fatalf("zero-retry policy not more trigger-happy: %v vs %v",
			r.Metrics["false_suspicions.retries=0"], r.Metrics["false_suspicions.retries=3"])
	}
	if r.Metrics["detection_secs.retries=3"] <= 0 {
		t.Fatal("real failure never detected")
	}
}

func TestResultRendering(t *testing.T) {
	r := RunF3(Params{Seed: 1, Quick: true})
	out := r.String()
	for _, want := range []string{"== F3", "eps", "violations", "metric"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered result missing %q:\n%s", want, out)
		}
	}
}
