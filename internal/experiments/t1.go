package experiments

import (
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunT1 measures the standing cost of each lease design during normal
// (failure-free) operation — the paper's headline comparison against the
// V system (§4) and Frangipani (§5). Clients run an active phase and an
// idle-but-caching phase; we report lease-specific messages per client
// per lease period, and the server's lease memory and lease operations.
// Storage Tank: zero during activity (opportunistic renewal), a couple of
// keep-alives per τ when idle, and a server that does nothing at all.
func RunT1(p Params) *Result {
	nClients := 4
	phase := 60 * time.Second
	if p.Quick {
		phase = 30 * time.Second
	}

	res := &Result{ID: "T1", Title: "lease overhead during normal operation"}
	res.Table = stats.NewTable("",
		"policy", "active: lease msgs/client/τ", "idle: lease msgs/client/τ",
		"server lease ops", "server lease bytes (max)", "ctl msgs/op")

	policies := []baselines.Policy{
		baselines.StorageTank(),
		baselines.Frangipani(),
		baselines.VSystem(),
		baselines.NFSPoll(),
	}

	for _, pol := range policies {
		opts := baseOptions(p.Seed)
		opts.Clients = nClients
		opts.Policy = pol
		opts.NoChecker = true
		cl := cluster.New(opts)
		cl.Start()
		tau := opts.Core.Tau

		wcfg := workload.DefaultConfig()
		wcfg.Files = 12
		wcfg.BlocksPerFile = 4
		wcfg.MeanThink = 100 * time.Millisecond
		workload.Populate(cl, wcfg)

		// Active phase.
		activeBase := cl.Reg.Snapshot()
		runners := make([]*workload.Runner, nClients)
		var ops uint64
		for i := range runners {
			runners[i] = workload.NewRunner(cl, i, wcfg, p.Seed+int64(i))
			runners[i].Start()
		}
		cl.RunFor(phase)
		for _, r := range runners {
			r.Stop()
			ops += r.Ops
		}
		activeDiff := cl.Reg.DiffFrom(activeBase)
		activeLease := leaseTraffic(activeDiff, pol)
		ctlMsgs := activeDiff["net.control.sent.control-req"] + activeLease

		// Idle phase: no operations, but caches and locks are retained.
		idleBase := cl.Reg.Snapshot()
		cl.RunFor(phase)
		idleDiff := cl.Reg.DiffFrom(idleBase)
		idleLease := leaseTraffic(idleDiff, pol)

		perClientPerTau := func(n uint64) float64 {
			periods := float64(phase) / float64(tau)
			return float64(n) / float64(nClients) / periods
		}

		res.Table.AddRow(
			pol.Name,
			stats.FmtF(perClientPerTau(activeLease)),
			stats.FmtF(perClientPerTau(idleLease)),
			stats.FmtN(cl.Reg.CounterValue("server.lease_ops")+cl.Reg.CounterValue("server.authority.ops")),
			stats.FmtBytes(uint64(cl.Reg.Gauge("server.lease_state_bytes").Max())+uint64(cl.Reg.Gauge("server.authority.state_bytes").Max())),
			stats.FmtF(safeDiv(float64(ctlMsgs), float64(ops))),
		)
		res.Metric(pol.Name+".active_lease_msgs_per_tau", perClientPerTau(activeLease))
		res.Metric(pol.Name+".idle_lease_msgs_per_tau", perClientPerTau(idleLease))
		res.Metric(pol.Name+".server_lease_ops",
			float64(cl.Reg.CounterValue("server.lease_ops")+cl.Reg.CounterValue("server.authority.ops")))
		res.Metric(pol.Name+".server_lease_bytes_max",
			float64(cl.Reg.Gauge("server.lease_state_bytes").Max()+cl.Reg.Gauge("server.authority.state_bytes").Max()))
	}
	res.Table.AddNote("τ=%v; lease msgs = keep-alives + heartbeats + per-object renewals + NFS attr polls",
		baseOptions(p.Seed).Core.Tau)
	return res
}

// leaseTraffic counts the messages that exist only to maintain
// leases/liveness/coherence under the given policy: keep-alives,
// heartbeats, per-object renewals, and NFS attribute polls.
func leaseTraffic(diff stats.Snapshot, pol baselines.Policy) uint64 {
	n := diff["net.control.sent.keepalive"] + diff["net.control.sent.lease-admin"]
	if pol.NFS {
		for name, v := range diff {
			if strings.HasSuffix(name, ".nfs_polls") {
				n += v
			}
		}
	}
	return n
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
