package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RunF5 reproduces Fig 5 / §3.3: after a transient partition during which
// the server started timing a client out, the recovered-but-inconsistent
// client keeps sending valid requests. With the NACK the very first reply
// tells it to enter recovery; with the server merely ignoring it (the
// ablation), the client burns retries and keep-alives until its lease
// runs out on its own. We count the client's control messages from the
// heal until it reaches recovery, and how long it kept believing its
// cache.
func RunF5(p Params) *Result {
	res := &Result{ID: "F5", Title: "NACK vs silent-ignore for inconsistent clients"}
	res.Table = stats.NewTable("",
		"server behaviour", "msgs after heal", "retries after heal", "time to quiesce", "time to rejoin")

	for _, noNACK := range []bool{false, true} {
		name := "NACK (paper)"
		if noNACK {
			name = "ignore (ablation)"
		}
		msgs, retries, quiesce, rejoin := nackScenario(p, noNACK)
		res.Table.AddRow(name,
			stats.FmtN(msgs),
			stats.FmtN(retries),
			quiesce.Round(time.Millisecond).String(),
			rejoin.Round(time.Millisecond).String(),
		)
		prefix := "nack"
		if noNACK {
			prefix = "ignore"
		}
		res.Metric(prefix+".msgs_after_heal", float64(msgs))
		res.Metric(prefix+".time_to_quiesce_secs", quiesce.Seconds())
		res.Metric(prefix+".time_to_rejoin_secs", rejoin.Seconds())
	}
	res.Table.AddNote("transient partition long enough for the server to begin the lease timeout, then healed")
	return res
}

func nackScenario(p Params, noNACK bool) (msgs, retries uint64, timeToQuiesce, timeToRejoin time.Duration) {
	opts := baseOptions(p.Seed)
	opts.Clients = 2
	opts.NoNACK = noNACK
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	// Client 0 holds the lock; transient partition makes it miss the
	// demand triggered by client 1, so the server starts its timeout.
	h0, _ := cl.MustOpen(0, "/f5", true, true)
	mustOK(cl.Write(0, h0, 0, blockData('A')))
	mustOK(cl.Sync(0))

	cl.IsolateClient(0)
	h1, _, _ := cl.Open(1, "/f5", true, false)
	cl.Clients[1].Write(h1, 0, blockData('B'), func(msg.Errno) {})
	// Run just long enough for the demand retries to fail (delivery
	// failure → suspect) but far less than τ.
	cl.RunFor(2 * time.Second)
	if !cl.Server.Authority().Suspect(cluster.ClientID(0)) {
		panic("f5: server never became suspicious")
	}

	// Heal: the transient failure is over; client 0 has missed a message
	// but does not know it.
	cl.HealControl()
	healAt := cl.Sched.Now()
	sentBase := cl.Reg.CounterValue(fmt.Sprintf("client.%v.chan.sent", cluster.ClientID(0)))
	retryBase := cl.Reg.CounterValue(fmt.Sprintf("client.%v.chan.retries", cluster.ClientID(0)))

	// The client now sends an ordinary valid request (§3.3's "sends new
	// requests to a server").
	var quiesceAt, rejoinAt sim.Time
	cl.Clients[0].OnRecovered = func(msg.Epoch) {
		if rejoinAt == 0 {
			rejoinAt = cl.Sched.Now()
		}
	}
	cl.Clients[0].Stat(1, func(msg.Attr, msg.Errno) {})
	cl.Sched.RunWhile(func() bool {
		if quiesceAt == 0 && cl.Clients[0].Quiesced() {
			quiesceAt = cl.Sched.Now()
		}
		return rejoinAt == 0 && cl.Sched.Now().Sub(healAt) < 3*tau
	})
	if quiesceAt == 0 {
		quiesceAt = cl.Sched.Now()
	}
	if rejoinAt == 0 {
		rejoinAt = cl.Sched.Now()
	}

	msgs = cl.Reg.CounterValue(fmt.Sprintf("client.%v.chan.sent", cluster.ClientID(0))) - sentBase
	retries = cl.Reg.CounterValue(fmt.Sprintf("client.%v.chan.retries", cluster.ClientID(0))) - retryBase
	return msgs, retries, quiesceAt.Sub(healAt), rejoinAt.Sub(healAt)
}
