package experiments

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/stats"
)

// RunT7 measures §6's server-recovery policy: after a metadata-server
// failure, the durable store survives but the lock table is volatile;
// clients rebuild it by reasserting their locks during the restarted
// server's grace window. With reassertion, a lock-holding client keeps
// its cache, its locks, and its open handles, and resumes service as
// soon as it makes contact; the ablation (reassertion disabled) walks
// the full lease recovery instead — safe, but the cache and locks are
// lost and service resumes only after the lease runs out.
func RunT7(p Params) *Result {
	res := &Result{ID: "T7", Title: "server failure: lock reassertion vs full recovery"}
	res.Table = stats.NewTable("",
		"client recovery", "service outage", "cache survived", "locks survived", "violations")

	for _, disable := range []bool{false, true} {
		name := "reassert (paper §6)"
		if disable {
			name = "full lease recovery (ablation)"
		}
		outage, cacheOK, locksOK, violations := serverRecoveryScenario(p, disable)
		res.Table.AddRow(name,
			outage.Round(time.Millisecond).String(),
			yesNo(cacheOK), yesNo(locksOK), stats.FmtN(violations))
		key := "reassert"
		if disable {
			key = "norecover"
		}
		res.Metric(key+".outage_secs", outage.Seconds())
		res.Metric(key+".cache_survived", boolToF(cacheOK))
		res.Metric(key+".violations", float64(violations))
	}
	res.Table.AddNote("server down 1s; grace window τ(1+ε); outage = crash → holder's next successful write")
	return res
}

func serverRecoveryScenario(p Params, disableReassert bool) (outage time.Duration, cacheOK, locksOK bool, violations int) {
	opts := baseOptions(p.Seed)
	opts.Clients = 2
	opts.DisableReassert = disableReassert
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	h0, _ := cl.MustOpen(0, "/journal", true, true)
	mustOK(cl.Write(0, h0, 0, blockData('A')))
	mustOK(cl.Sync(0))
	mustOK(cl.Write(0, h0, 0, blockData('B'))) // dirty page at crash time

	crashAt := cl.Sched.Now()
	cl.CrashServer()
	cl.RunFor(time.Second)
	cl.RestartServer()

	// The holder keeps trying to work: one write attempt per 250ms until
	// one succeeds end-to-end again. Like a real application, it reopens
	// the file when its handle dies (which happens on the full-recovery
	// path when the lease expires).
	recoveredAt := cl.Sched.Now()
	ok := false
	h := h0
	var attempt func()
	attempt = func() {
		cl.Clients[0].Write(h, 1, blockData('C'), func(e msg.Errno) {
			switch e {
			case msg.OK:
				ok = true
				recoveredAt = cl.Sched.Now()
			case msg.ErrBadHandle:
				cl.Clients[0].Open("/journal", true, false, func(nh msg.Handle, _ msg.Attr, oe msg.Errno) {
					if oe == msg.OK {
						h = nh
					}
					cl.Sched.After(250*time.Millisecond, attempt)
				})
			default:
				cl.Sched.After(250*time.Millisecond, attempt)
			}
		})
	}
	attempt()
	deadline := crashAt.Add(3 * tau)
	cl.Sched.RunWhile(func() bool { return !ok && !cl.Sched.Now().After(deadline) })
	if !ok {
		recoveredAt = cl.Sched.Now()
	}
	outage = recoveredAt.Sub(crashAt)

	// "Cache survived" means the PRE-CRASH cached page (block 0, written
	// before the failure) is still resident — not merely that new ops
	// repopulated the cache afterwards.
	if o := cl.Clients[0].Cache().Object(inoOf(cl, "/journal")); o != nil {
		if pg := o.Page(0); pg != nil && pg.Data[0] == 'B' {
			cacheOK = true
		}
	}
	locksOK = cl.Server.Locks().Held(cluster.ClientID(0), inoOf(cl, "/journal")) == msg.LockExclusive

	// Settle past the grace window; audit the whole episode.
	cl.RunFor(opts.Core.StealDelay() + tau)
	mustOK(cl.Sync(0))
	cl.Checker.FinalCheck()
	violations = len(cl.Checker.Violations())
	return outage, cacheOK, locksOK, violations
}
