// Package experiments reproduces every figure and table of the paper's
// argument as a measured experiment (see DESIGN.md §4 for the index).
// Each Run* function builds simulated installations, drives them, and
// returns a Result holding both a rendered table (what cmd/simulate
// prints and EXPERIMENTS.md records) and named metrics that the test
// suite and benchmarks assert on.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/stats"
)

// Params scales an experiment run.
type Params struct {
	// Seed drives all randomness; identical Params give identical output.
	Seed int64
	// Quick shrinks sweeps and durations for tests and benchmarks.
	Quick bool
}

// Result is one experiment's outcome.
type Result struct {
	ID      string
	Title   string
	Table   *stats.Table
	Metrics map[string]float64
}

// Metric records a named metric.
func (r *Result) Metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// String renders the experiment header, table and metrics.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Table.String())
	names := make([]string, 0, len(r.Metrics))
	for n := range r.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  metric %-36s %s\n", n, stats.FmtF(r.Metrics[n]))
	}
	return b.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) *Result
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"F1", "server load: direct SAN access vs function-shipping (Fig 1, §1.1)", RunF1},
		{"F2", "two-network partition: availability and safety by policy (Fig 2, §2)", RunF2},
		{"F3", "lease renewal under rate-synchronized clocks (Fig 3, Thm 3.1)", RunF3},
		{"F4", "the four phases of the lease period (Fig 4, §3.2)", RunF4},
		{"F5", "NACKs for inconsistent clients (Fig 5, §3.3)", RunF5},
		{"T1", "lease overhead in normal operation vs V/Frangipani/NFS (§3-5)", RunT1},
		{"T2", "lock unavailability after isolation vs τ (§1.2, §2)", RunT2},
		{"T3", "consistency violations under failure injection (§2.1)", RunT3},
		{"T4", "GFS dlock vs logical locks: messages per operation (§5)", RunT4},
		{"T5", "opportunistic renewal vs client activity (§3.1)", RunT5},
		{"T6", "slow computers beyond the rate bound: fencing backstop (§6)", RunT6},
		{"T7", "server failure and recovery: lock reassertion (§6)", RunT7},
		{"T8", "server cluster: per-pair lease granularity (§4, Fig 1)", RunT8},
		{"A1", "ablation: lease phase boundaries (DESIGN §5)", RunA1},
		{"A2", "ablation: demand retry policy under datagram loss (DESIGN §5)", RunA2},
	}
}

// ByID returns the experiment with the given ID (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared helpers ----------------------------------------------------------

// blockData builds one block filled with b.
func blockData(b byte) []byte {
	buf := make([]byte, cluster.BlockSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// baseOptions returns the standard experiment installation.
func baseOptions(seed int64) cluster.Options {
	opts := cluster.DefaultOptions()
	opts.Seed = seed
	return opts
}

// shortCore returns a protocol config with the given τ and proportional
// retry timing.
func shortCore(tau time.Duration) core.Config {
	cfg := core.DefaultConfig()
	cfg.Tau = tau
	cfg.RetryInterval = tau / 50
	return cfg
}

// isolationScenario is the canonical Fig 2 setup: client 0 holds an
// exclusive lock with both committed and dirty data; it is isolated on
// the control network; client 1 then writes the contended block. It
// returns the survivor's wait for the lock and the cluster (with the
// partition still in place unless heal ran).
type isolationOutcome struct {
	lockWait    time.Duration
	granted     bool
	survivorErr msg.Errno
	isolatedH   msg.Handle // client 0's open handle from the setup
}

func isolationScenario(cl *cluster.Cluster, horizon time.Duration) isolationOutcome {
	h0, _ := cl.MustOpen(0, "/contended", true, true)
	if errno := cl.Write(0, h0, 0, blockData('X')); errno != msg.OK {
		panic(fmt.Sprintf("setup write: %v", errno))
	}
	// Commit block 1, then re-dirty it: the at-risk update.
	if errno := cl.Write(0, h0, 1, blockData('P')); errno != msg.OK {
		panic(fmt.Sprintf("setup write2: %v", errno))
	}
	if errno := cl.Sync(0); errno != msg.OK {
		panic(fmt.Sprintf("setup sync: %v", errno))
	}
	if errno := cl.Write(0, h0, 1, blockData('Q')); errno != msg.OK {
		panic(fmt.Sprintf("setup redirty: %v", errno))
	}

	cl.IsolateClient(0)

	h1, _, errno := cl.Open(1, "/contended", true, false)
	if errno != msg.OK {
		panic(fmt.Sprintf("survivor open: %v", errno))
	}
	out := isolationOutcome{isolatedH: h0}
	start := cl.Sched.Now()
	finished := false
	cl.Clients[1].Write(h1, 0, blockData('Z'), func(e msg.Errno) {
		finished = true
		out.granted = e == msg.OK
		out.survivorErr = e
		out.lockWait = cl.Sched.Now().Sub(start)
	})
	deadline := start.Add(horizon)
	cl.Sched.RunWhile(func() bool {
		return !finished && !cl.Sched.Now().After(deadline)
	})
	if !finished {
		out.lockWait = horizon
	}
	return out
}
