package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/stats"
)

// RunA1 ablates the phase boundaries (DESIGN.md §5): the paper fixes the
// ORDER of the four phases but not where they begin. The flush window
// (1−P3End)·τ must absorb the worst-case write-back of the client's
// dirty cache against a queuing disk; push phase 4 too late and dirty
// pages survive to expiry — exactly the lost updates the protocol
// exists to prevent. Push phase 2 too late and idle clients renew with
// less slack; too early and they keep-alive more than necessary.
func RunA1(p Params) *Result {
	res := &Result{ID: "A1", Title: "ablation: lease phase boundaries"}
	res.Table = stats.NewTable("",
		"boundaries (P1/P2/P3)", "keep-alives", "dirty at flush entry", "dirty at expiry", "flush margin")

	type variant struct{ p1, p2, p3 float64 }
	variants := []variant{
		{0.50, 0.70, 0.85}, // the default
		{0.30, 0.50, 0.70}, // conservative: early warning, wide flush window
		{0.70, 0.85, 0.95}, // aggressive: late detection, thin flush window
		{0.80, 0.90, 0.98}, // reckless: the flush window cannot absorb the cache
	}
	if p.Quick {
		variants = []variant{{0.50, 0.70, 0.85}, {0.80, 0.90, 0.98}}
	}

	for _, v := range variants {
		keepalives, dirtyFlush, dirtyExpiry, margin := phaseAblation(p, v.p1, v.p2, v.p3)
		res.Table.AddRow(
			fmt.Sprintf("%.2f/%.2f/%.2f", v.p1, v.p2, v.p3),
			stats.FmtN(keepalives),
			stats.FmtN(dirtyFlush),
			stats.FmtN(dirtyExpiry),
			margin.Round(time.Millisecond).String(),
		)
		key := fmt.Sprintf("p3=%.2f", v.p3)
		res.Metric("dirty_at_expiry."+key, float64(dirtyExpiry))
	}
	res.Table.AddNote("isolated client with 48 dirty pages; one disk, 10ms service (FIFO queue); per-page write-back (FlushBatch=1); margin = expiry − flush completion")
	return res
}

func phaseAblation(p Params, p1, p2, p3 float64) (keepalives uint64, dirtyAtFlush, dirtyAtExpiry int, margin time.Duration) {
	opts := baseOptions(p.Seed)
	opts.Clients = 1
	opts.Disks = 1 // a single queuing device: flush time scales with dirty pages
	opts.Core.P1End, opts.Core.P2End, opts.Core.P3End = p1, p2, p3
	opts.DiskService = 10 * time.Millisecond
	// Per-page write-back: this ablation measures how the flush WINDOW
	// sizes against a drain time that scales with dirty pages. Vectored
	// write-back (the default) collapses the drain to one batched service
	// slot, which is exactly the fix for a thin window — but it is studied
	// separately; here it would flatten the effect under test.
	opts.FlushBatch = 1
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	// Dirty working set: 48 pages, all committed once, then re-dirtied.
	h, _ := cl.MustOpen(0, "/abl", true, true)
	for i := 0; i < 48; i++ {
		mustOK(cl.Write(0, h, uint64(i), blockData('a')))
	}
	mustOK(cl.Sync(0))
	for i := 0; i < 48; i++ {
		mustOK(cl.Write(0, h, uint64(i), blockData('b')))
	}

	c0 := cl.Clients[0]
	var flushEntryDirty, expiryDirty int
	var expiryAt, flushDoneAt time.Duration
	c0.OnPhase = func(from, to core.Phase) {
		switch to {
		case core.Phase4Flush:
			flushEntryDirty = c0.Cache().TotalDirty()
		case core.PhaseExpired:
			expiryDirty = c0.Cache().TotalDirty()
			expiryAt = time.Duration(cl.Sched.Now())
		}
	}
	cl.IsolateClient(0)
	// Sample the flush completion time: poll dirty count each 10ms.
	var poll func()
	poll = func() {
		if flushDoneAt == 0 && flushEntryDirty > 0 && c0.Cache().TotalDirty() == 0 {
			flushDoneAt = time.Duration(cl.Sched.Now())
		}
		if expiryAt == 0 {
			cl.Sched.After(10*time.Millisecond, poll)
		}
	}
	poll()
	cl.RunFor(2 * tau)

	keepalives = cl.Reg.CounterValue(fmt.Sprintf("client.%v.lease.keepalives", cluster.ClientID(0)))
	if flushDoneAt == 0 || flushDoneAt > expiryAt {
		margin = 0
	} else {
		margin = expiryAt - flushDoneAt
	}
	return keepalives, flushEntryDirty, expiryDirty, margin
}

// RunA2 ablates the failure-detection policy (DESIGN.md §5): how many
// times the server re-sends an unacknowledged Demand, at what interval,
// before declaring a delivery failure. On a lossy control network an
// aggressive policy mistakes dropped datagrams for dead clients — every
// false positive costs a full τ(1+ε) unavailability round for the locks
// involved plus a needless client recovery — while a lax policy delays
// real failure detection.
func RunA2(p Params) *Result {
	res := &Result{ID: "A2", Title: "ablation: demand retry policy (failure detection)"}
	res.Table = stats.NewTable("",
		"retries", "interval", "false suspicions", "real-failure detection", "ops completed")

	type variant struct {
		retries  int
		interval time.Duration
	}
	variants := []variant{
		{0, 100 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{3, 200 * time.Millisecond}, // the default
		{6, 400 * time.Millisecond},
	}
	if p.Quick {
		variants = []variant{{0, 100 * time.Millisecond}, {3, 200 * time.Millisecond}}
	}

	for _, v := range variants {
		falseSusp, detect, ops := retryAblation(p, v.retries, v.interval)
		res.Table.AddRow(
			stats.FmtN(v.retries),
			v.interval.String(),
			stats.FmtN(falseSusp),
			detect.Round(10*time.Millisecond).String(),
			stats.FmtN(ops),
		)
		res.Metric(fmt.Sprintf("false_suspicions.retries=%d", v.retries), float64(falseSusp))
		res.Metric(fmt.Sprintf("detection_secs.retries=%d", v.retries), detect.Seconds())
	}
	res.Table.AddNote("control network with 15%% datagram loss; contended two-client workload, then a real isolation")
	return res
}

func retryAblation(p Params, retries int, interval time.Duration) (falseSuspicions uint64, detection time.Duration, ops int) {
	opts := baseOptions(p.Seed)
	opts.Clients = 2
	opts.Core.DemandRetries = retries
	opts.Core.RetryInterval = interval
	opts.Control.LossProb = 0.15
	opts.NoChecker = true
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	// Phase 1: healthy but lossy. The two clients ping-pong an exclusive
	// lock, generating a stream of demands, each of which can be falsely
	// timed out when the loss eats the DemandAck.
	h0, _ := cl.MustOpen(0, "/pingpong", true, true)
	h1, _ := cl.MustOpen(1, "/pingpong", true, false)
	handles := []msg.Handle{h0, h1}
	for round := 0; round < 60; round++ {
		who := round % 2
		if errno := cl.Write(who, handles[who], 0, blockData(byte(round))); errno == msg.OK {
			ops++
		}
		cl.RunFor(300 * time.Millisecond)
	}
	falseSuspicions = cl.Reg.CounterValue("server.authority.timeouts_started")

	// Phase 2: a real failure; measure how long until the server begins
	// the lease timeout. Both clients must be in good standing first (a
	// false suspicion from the lossy phase costs a full recovery — part
	// of what this ablation measures), and the victim must hold the lock
	// so the contender's write provokes a demand.
	for i := 0; i < 2; i++ {
		for tries := 0; cl.Server.Authority().Suspect(cluster.ClientID(i)); tries++ {
			if tries > 5 {
				panic("a2: client never recovered from false suspicion")
			}
			cl.RunFor(2 * tau)
		}
	}
	// The reopen can still catch a client mid lease recovery (no longer
	// suspect at the server, lease not yet re-established locally), so
	// tolerate transient refusals the same way.
	reopen := func(who int) msg.Handle {
		for tries := 0; ; tries++ {
			h, _, errno := cl.Open(who, "/pingpong", true, false)
			if errno == msg.OK {
				return h
			}
			if tries > 5 {
				panic(fmt.Sprintf("a2: reopen on client %d: %v", who, errno))
			}
			cl.RunFor(2 * tau)
		}
	}
	h0 = reopen(0)
	h1 = reopen(1)
	// The victim's write can be refused the same way (a recovery between
	// the reopen and the write invalidates the handle); re-establish and
	// retry until it holds the lock with committed data.
	for tries := 0; ; tries++ {
		if errno := cl.Write(0, h0, 0, blockData('v')); errno == msg.OK {
			break
		} else if tries > 5 {
			panic(fmt.Sprintf("a2: victim write never committed: %v", errno))
		}
		cl.RunFor(2 * tau)
		h0 = reopen(0)
	}
	cl.IsolateClient(0)
	isoAt := cl.Sched.Now()
	// Client 1 provokes a demand to the isolated holder.
	cl.Clients[1].Write(h1, 0, blockData('z'), func(msg.Errno) {})
	deadline := cl.Sched.Now().Add(3 * tau)
	cl.Sched.RunWhile(func() bool {
		return !cl.Server.Authority().Suspect(cluster.ClientID(0)) &&
			!cl.Sched.Now().After(deadline)
	})
	detection = cl.Sched.Now().Sub(isoAt)
	return falseSuspicions, detection, ops
}
