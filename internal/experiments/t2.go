package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/stats"
)

// RunT2 sweeps the lease period τ and measures the lock-unavailability
// window — the time from a client's isolation until another client can
// take its conflicting lock — for each recovery policy. This quantifies
// the paper's availability trade-off: honor-locks never recovers;
// naive steal and fence-only recover in one demand-retry round (but
// unsafely, see T3); the lease protocol recovers in ≈ τ(1+ε) plus the
// failure-detection time, scaling linearly with τ.
func RunT2(p Params) *Result {
	taus := []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second, 40 * time.Second}
	if p.Quick {
		taus = []time.Duration{5 * time.Second, 20 * time.Second}
	}
	policies := []baselines.Policy{
		baselines.StorageTank(),
		baselines.Frangipani(),
		baselines.VSystem(),
		baselines.FenceOnly(),
		baselines.NaiveSteal(),
		baselines.HonorLocks(),
	}

	res := &Result{ID: "T2", Title: "lock unavailability after client isolation"}
	headers := []string{"policy"}
	for _, tau := range taus {
		headers = append(headers, "τ="+tau.String())
	}
	res.Table = stats.NewTable("", headers...)

	for _, pol := range policies {
		row := []string{pol.Name}
		for _, tau := range taus {
			opts := baseOptions(p.Seed)
			opts.Clients = 2
			opts.Policy = pol
			opts.Core = shortCore(tau)
			opts.NoChecker = true
			cl := cluster.New(opts)
			cl.Start()

			horizon := 3 * tau
			out := isolationScenario(cl, horizon)
			if out.granted {
				row = append(row, out.lockWait.Round(10*time.Millisecond).String())
				res.Metric(pol.Name+".wait_secs.tau="+tau.String(), out.lockWait.Seconds())
			} else {
				row = append(row, "> "+horizon.String())
				res.Metric(pol.Name+".wait_secs.tau="+tau.String(), -1)
			}
		}
		res.Table.AddRow(row...)
	}
	res.Table.AddNote("wait = isolation → conflicting exclusive grant; steal-based policies are unsafe (T3)")
	return res
}
