package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/msg"
	"repro/internal/stats"
)

// RunT6 reproduces §6's slow-computer analysis: a client whose clock rate
// violates the synchronization bound measures its lease period far too
// slowly, so its phase-4 flush arrives AFTER the server's τ(1+ε) steal.
// Without fencing, that late write lands on the disk and corrupts the new
// holder's data; with the fence (the paper's backstop) the disk rejects
// it. We run both variants and inspect the contended block's final
// content on disk.
func RunT6(p Params) *Result {
	res := &Result{ID: "T6", Title: "slow computers beyond the rate bound (fencing backstop)"}
	res.Table = stats.NewTable("",
		"variant", "late write reached disk", "fenced I/O rejections", "final block content")

	for _, disableFence := range []bool{true, false} {
		name := "lease only (fence disabled)"
		if !disableFence {
			name = "lease + fence (paper)"
		}
		corrupted, rejections, content := slowClientScenario(p, disableFence)
		res.Table.AddRow(name, yesNo(corrupted), stats.FmtN(rejections), content)
		key := "fence"
		if disableFence {
			key = "nofence"
		}
		res.Metric(key+".late_write_corrupted", boolToF(corrupted))
		res.Metric(key+".fenced_rejections", float64(rejections))
	}
	res.Table.AddNote("slow client clock rate 0.55 vs bound ε=0.05: its τ runs ~1.8x slow in real time")
	return res
}

func slowClientScenario(p Params, disableFence bool) (corrupted bool, rejections uint64, content string) {
	opts := baseOptions(p.Seed)
	opts.Clients = 2
	opts.ClockSkew = false
	// Client 0's clock violates the bound badly; server and client 1 run
	// at nominal rate.
	opts.ClientRates = []float64{0.55, 1.0}
	opts.ServerRate = 1.0
	opts.DisableFence = disableFence
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	// Slow client holds the lock with dirty data.
	h0, _ := cl.MustOpen(0, "/slow", true, true)
	mustOK(cl.Write(0, h0, 0, blockData('O'))) // old committed content
	mustOK(cl.Sync(0))
	mustOK(cl.Write(0, h0, 0, blockData('Y'))) // dirty: will flush LATE

	cl.IsolateClient(0)

	// Survivor takes the lock after the steal (τ(1+ε) on the server's
	// clock — but the slow client's own lease has NOT yet expired) and
	// writes fresh data.
	h1, _, errno := cl.Open(1, "/slow", true, false)
	mustOK(errno)
	granted := false
	cl.Clients[1].Write(h1, 0, blockData('Z'), func(e msg.Errno) { granted = e == msg.OK })
	deadline := cl.Sched.Now().Add(3 * tau)
	cl.Sched.RunWhile(func() bool { return !granted && !cl.Sched.Now().After(deadline) })
	if !granted {
		panic("t6: survivor never granted")
	}
	mustOK(cl.Sync(1))

	// Now run long enough for the slow client's phases to reach phase 4
	// and attempt the late flush (its τ takes ~1.8x real time).
	cl.RunFor(3 * tau)

	// Inspect the contended block on disk.
	ino := inoOf(cl, "/slow")
	ref := blockRefOf(cl, ino, 0)
	for _, d := range cl.Disks {
		if d.ID() == ref.Disk {
			data, _, ok := d.PeekBlock(ref.Num)
			if !ok {
				content = "(missing)"
				break
			}
			switch {
			case bytes.Equal(data, blockData('Z')):
				content = "survivor's Z (correct)"
			case bytes.Equal(data, blockData('Y')):
				content = "slow client's late Y (CORRUPTED)"
				corrupted = true
			default:
				content = fmt.Sprintf("unexpected %q", data[0])
			}
		}
	}
	rejections = cl.Reg.CounterValue(fmt.Sprintf("client.%v.fenced_io", cluster.ClientID(0)))
	return corrupted, rejections, content
}

func inoOf(cl *cluster.Cluster, path string) msg.ObjectID {
	in, errno := cl.Server.Store().Lookup(path)
	if errno != msg.OK {
		panic("t6: lookup failed")
	}
	return in.Ino
}

func blockRefOf(cl *cluster.Cluster, ino msg.ObjectID, idx int) msg.BlockRef {
	in, errno := cl.Server.Store().Get(ino)
	if errno != msg.OK || idx >= len(in.Blocks) {
		panic("t6: block map")
	}
	return in.Blocks[idx]
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
