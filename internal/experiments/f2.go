package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/checker"
	"repro/internal/cluster"
	"repro/internal/stats"
)

// RunF2 reproduces the two-network partition scenario of Fig 2 (§2): a
// client holding a write lock is cut off the control network while the
// SAN keeps working. For each recovery policy we measure how long the
// surviving client waits for the contended lock and what consistency
// damage the recovery causes. The paper's protocol is the only row that
// is both available (bounded wait ≈ τ(1+ε)) and safe (zero violations).
func RunF2(p Params) *Result {
	res := &Result{ID: "F2", Title: "control-network partition: availability and safety"}
	res.Table = stats.NewTable("",
		"policy", "lock wait", "available", "conflicts", "stale reads", "lost updates")

	policies := []baselines.Policy{
		baselines.HonorLocks(),
		baselines.NaiveSteal(),
		baselines.FenceOnly(),
		baselines.StorageTank(),
	}

	for _, pol := range policies {
		opts := baseOptions(p.Seed)
		opts.Clients = 3
		opts.Policy = pol
		cl := cluster.New(opts)
		cl.Start()

		tau := opts.Core.Tau
		horizon := 3 * tau
		out := isolationScenario(cl, horizon)

		// Give the isolated client's local processes a chance to act on
		// its (possibly stale) cache, mirroring §2.1: it reads the block
		// the survivor rewrote. Cache hits need no network, so this works
		// even while partitioned — unless the policy (the paper's) makes
		// the client refuse service.
		cl.Read(0, out.isolatedH, 0)
		cl.Read(0, out.isolatedH, 1)
		cl.RunFor(tau)

		// Heal, let everything settle, flush survivors, audit.
		cl.HealControl()
		cl.RunFor(2 * tau)
		for i := range cl.Clients {
			cl.Sync(i)
		}
		cl.Checker.FinalCheck()

		avail := "yes"
		wait := out.lockWait.Round(time.Millisecond).String()
		if !out.granted {
			avail = "no"
			wait = "> " + horizon.String()
		}
		res.Table.AddRow(
			pol.Name,
			wait,
			avail,
			stats.FmtN(cl.Checker.Count(checker.ConcurrentConflict)),
			stats.FmtN(cl.Checker.Count(checker.StaleRead)),
			stats.FmtN(cl.Checker.Count(checker.LostUpdate)),
		)

		total := float64(len(cl.Checker.Violations()))
		res.Metric(pol.Name+".violations", total)
		if out.granted {
			res.Metric(pol.Name+".lock_wait_secs", out.lockWait.Seconds())
		} else {
			res.Metric(pol.Name+".lock_wait_secs", -1)
		}
	}
	res.Table.AddNote("τ=%v, steal at τ(1+ε)=%v; honor-locks horizon %v",
		baseOptions(p.Seed).Core.Tau,
		baseOptions(p.Seed).Core.StealDelay(),
		3*baseOptions(p.Seed).Core.Tau)
	return res
}
