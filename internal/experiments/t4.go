package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunT4 compares Storage Tank's logical locks (granted by the server,
// cached by clients, demanded back only on conflict) against the Global
// File System's dlock (§5): a physical lock on a disk-address range,
// taken from the disk itself with a TTL, paid on EVERY operation and
// precluding data caching. We run the same workload under both and count
// SAN messages and control messages per completed operation.
func RunT4(p Params) *Result {
	duration := 30 * time.Second
	if p.Quick {
		duration = 12 * time.Second
	}

	res := &Result{ID: "T4", Title: "logical locks vs GFS dlocks"}
	res.Table = stats.NewTable("",
		"locking", "ops", "san msgs/op", "ctl msgs/op", "cache hit rate")

	for _, pol := range []baselines.Policy{baselines.StorageTank(), baselines.GFSDlock()} {
		opts := baseOptions(p.Seed)
		opts.Clients = 3
		opts.Policy = pol
		opts.NoChecker = true
		cl := cluster.New(opts)
		cl.Start()

		wcfg := workload.DefaultConfig()
		wcfg.Files = 9
		wcfg.BlocksPerFile = 4
		wcfg.MeanThink = 50 * time.Millisecond
		workload.Populate(cl, wcfg)

		base := cl.Reg.Snapshot()
		runners := make([]*workload.Runner, opts.Clients)
		var ops uint64
		for i := range runners {
			runners[i] = workload.NewRunner(cl, i, wcfg, p.Seed+int64(i))
			runners[i].Start()
		}
		cl.RunFor(duration)
		for _, r := range runners {
			r.Stop()
			ops += r.Ops
		}
		diff := cl.Reg.DiffFrom(base)
		san := diff["net.san.sent.san-io"] + diff["net.san.sent.san-reply"]
		ctl := diff["net.control.sent.control-req"]
		hits := float64(diff["client."+cluster.ClientID(0).String()+".cache.hits"])
		miss := float64(diff["client."+cluster.ClientID(0).String()+".cache.misses"])
		for i := 1; i < opts.Clients; i++ {
			hits += float64(diff["client."+cluster.ClientID(i).String()+".cache.hits"])
			miss += float64(diff["client."+cluster.ClientID(i).String()+".cache.misses"])
		}

		res.Table.AddRow(
			pol.Name,
			stats.FmtN(ops),
			stats.FmtF(safeDiv(float64(san), float64(ops))),
			stats.FmtF(safeDiv(float64(ctl), float64(ops))),
			stats.FmtF(safeDiv(hits, hits+miss)),
		)
		res.Metric(pol.Name+".san_msgs_per_op", safeDiv(float64(san), float64(ops)))
		res.Metric(pol.Name+".ctl_msgs_per_op", safeDiv(float64(ctl), float64(ops)))
		res.Metric(pol.Name+".ops", float64(ops))
	}
	res.Table.AddNote("dlock pays lock+unlock disk round-trips per op and cannot cache data (§5)")
	return res
}
