package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/checker"
	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunT3 injects random failures into a running workload and counts the
// consistency violations each recovery policy produces — the quantified
// form of §2.1's argument. Each trial runs contended traffic, isolates a
// random client at a random time, heals later, lets everything settle,
// flushes, and audits. The paper's protocol and honor-locks must be
// violation-free (honor-locks pays with T2's unavailability); naive steal
// yields concurrent conflicts; fence-only yields stale reads and lost
// updates.
func RunT3(p Params) *Result {
	trials := 6
	runFor := 40 * time.Second
	if p.Quick {
		trials = 2
		runFor = 25 * time.Second
	}

	res := &Result{ID: "T3", Title: "violations under failure injection"}
	res.Table = stats.NewTable("",
		"policy", "trials", "conflicts", "stale reads", "lost updates", "ops completed")

	policies := []baselines.Policy{
		baselines.StorageTank(),
		baselines.HonorLocks(),
		baselines.NaiveSteal(),
		baselines.FenceOnly(),
		baselines.Frangipani(),
	}

	for _, pol := range policies {
		var conflicts, stale, lost, ops int
		for trial := 0; trial < trials; trial++ {
			c, s, l, o := injectionTrial(p.Seed+int64(trial)*131, pol, runFor)
			conflicts += c
			stale += s
			lost += l
			ops += o
		}
		res.Table.AddRow(pol.Name, stats.FmtN(trials),
			stats.FmtN(conflicts), stats.FmtN(stale), stats.FmtN(lost), stats.FmtN(ops))
		res.Metric(pol.Name+".conflicts", float64(conflicts))
		res.Metric(pol.Name+".stale_reads", float64(stale))
		res.Metric(pol.Name+".lost_updates", float64(lost))
		res.Metric(pol.Name+".total_violations", float64(conflicts+stale+lost))
	}
	res.Table.AddNote("each trial: contended workload; one random client isolated mid-run, healed before the audit")
	return res
}

func injectionTrial(seed int64, pol baselines.Policy, runFor time.Duration) (conflicts, stale, lost, ops int) {
	opts := baseOptions(seed)
	opts.Clients = 3
	opts.Policy = pol
	cl := cluster.New(opts)
	cl.Start()
	tau := opts.Core.Tau

	wcfg := workload.DefaultConfig()
	wcfg.Files = 6 // few files: high contention
	wcfg.BlocksPerFile = 4
	wcfg.MeanThink = 60 * time.Millisecond
	wcfg.ReadFrac, wcfg.WriteFrac = 0.45, 0.4
	workload.Populate(cl, wcfg)

	runners := make([]*workload.Runner, opts.Clients)
	for i := range runners {
		runners[i] = workload.NewRunner(cl, i, wcfg, seed+int64(i))
		runners[i].Start()
	}

	// Isolate a random client somewhere in the first third, heal a lease
	// period (and a bit) later.
	victim := int(cl.Sched.Rand().Int31n(int32(opts.Clients)))
	isoAt := time.Duration(cl.Sched.Rand().Int63n(int64(runFor / 3)))
	cl.Sched.After(isoAt, func() { cl.IsolateClient(victim) })
	cl.Sched.After(isoAt+tau+tau/2, func() { cl.HealControl() })

	cl.RunFor(runFor)
	for _, r := range runners {
		r.Stop()
		ops += int(r.Ops)
	}
	// Settle: give recoveries time to finish, then flush all clients that
	// can flush and audit.
	cl.RunFor(2 * tau)
	for i := range cl.Clients {
		cl.Sync(i)
	}
	cl.Checker.FinalCheck()
	return cl.Checker.Count(checker.ConcurrentConflict),
		cl.Checker.Count(checker.StaleRead),
		cl.Checker.Count(checker.LostUpdate),
		ops
}
