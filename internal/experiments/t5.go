package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunT5 maps the opportunistic-renewal claim (§3.1): a client whose
// ordinary control traffic is more frequent than the phase-1 window never
// sends a lease-specific message; only as it idles past that window do
// keep-alives appear, capped at a few per lease period. We sweep the mean
// think time across the phase-1 boundary (P1End·τ) and report renewals
// and keep-alives per client per τ.
func RunT5(p Params) *Result {
	opts0 := baseOptions(p.Seed)
	tau := opts0.Core.Tau
	p1 := time.Duration(float64(tau) * opts0.Core.P1End)

	thinks := []time.Duration{
		tau / 20,   // 0.5s: very active
		tau / 5,    // 2s: active
		p1 * 4 / 5, // just inside phase 1
		p1 * 6 / 5, // just past the boundary
		tau,        // idle-ish
		2 * tau,    // idle
	}
	duration := 10 * tau
	if p.Quick {
		thinks = []time.Duration{tau / 20, p1 * 6 / 5, 2 * tau}
		duration = 6 * tau
	}

	res := &Result{ID: "T5", Title: "keep-alives vs client activity (opportunistic renewal)"}
	res.Table = stats.NewTable("",
		"mean think", "ops", "renewals/τ", "keep-alives/client/τ", "expiries")

	for _, think := range thinks {
		opts := baseOptions(p.Seed)
		opts.Clients = 2
		opts.NoChecker = true
		cl := cluster.New(opts)
		cl.Start()

		wcfg := workload.DefaultConfig()
		wcfg.Files = 4
		wcfg.BlocksPerFile = 2
		wcfg.MeanThink = think
		// Metadata-leaning mix so ops translate to control messages (the
		// paper's "lock and metadata messages").
		wcfg.ReadFrac, wcfg.WriteFrac, wcfg.StatFrac = 0.2, 0.2, 0.5
		workload.Populate(cl, wcfg)

		base := cl.Reg.Snapshot()
		runners := make([]*workload.Runner, opts.Clients)
		var ops uint64
		for i := range runners {
			runners[i] = workload.NewRunner(cl, i, wcfg, p.Seed+int64(i))
			runners[i].Start()
		}
		cl.RunFor(duration)
		for _, r := range runners {
			r.Stop()
			ops += r.Ops
		}
		diff := cl.Reg.DiffFrom(base)

		periods := float64(duration) / float64(tau)
		kas := float64(diff["net.control.sent.keepalive"]) / float64(opts.Clients) / periods
		var renewals, expiries uint64
		for i := 0; i < opts.Clients; i++ {
			renewals += diff[fmt.Sprintf("client.%v.lease.renewals", cluster.ClientID(i))]
			expiries += diff[fmt.Sprintf("client.%v.lease.expiries", cluster.ClientID(i))]
		}

		res.Table.AddRow(
			think.String(),
			stats.FmtN(ops),
			stats.FmtF(float64(renewals)/float64(opts.Clients)/periods),
			stats.FmtF(kas),
			stats.FmtN(expiries),
		)
		res.Metric("keepalives_per_tau.think="+think.String(), kas)
		res.Metric("expiries.think="+think.String(), float64(expiries))
	}
	res.Table.AddNote("phase 1 ends at %v (%.2fτ): busier clients than that renew for free", p1, opts0.Core.P1End)
	return res
}
