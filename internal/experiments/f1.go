package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RunF1 reproduces the architectural claim behind Fig 1 (§1.1): with
// clients accessing the SAN directly, the metadata server handles only
// transactions and moves no file data, so client data throughput scales
// past what a function-shipping server sustains. We sweep the client
// count for both data paths and report client ops/s, server
// transactions/s, and file bytes moved through the server.
func RunF1(p Params) *Result {
	clientCounts := []int{1, 2, 4, 8}
	duration := 30 * time.Second
	if p.Quick {
		clientCounts = []int{1, 4}
		duration = 10 * time.Second
	}

	res := &Result{ID: "F1", Title: "direct SAN access vs function-shipping server"}
	res.Table = stats.NewTable("",
		"data path", "clients", "client ops/s", "server tx/s", "server data bytes", "errors")

	type cell struct{ ops, dataBytes float64 }
	byKey := map[string]cell{}

	for _, pol := range []baselines.Policy{baselines.StorageTank(), baselines.FunctionShip()} {
		for _, n := range clientCounts {
			opts := baseOptions(p.Seed)
			opts.Clients = n
			opts.Policy = pol
			opts.NoChecker = true // measuring cost, not correctness
			cl := cluster.New(opts)
			cl.Start()

			// Disjoint per-client working sets: F1 measures the data-path
			// architecture, not lock contention (T3/T4 cover contention).
			const filesPerClient = 4
			wcfg := workload.DefaultConfig()
			wcfg.Files = filesPerClient * n
			wcfg.BlocksPerFile = 4
			wcfg.MeanThink = 2 * time.Millisecond
			workload.Populate(cl, wcfg)

			base := cl.Reg.Snapshot()
			startTx := cl.Reg.CounterValue("server.transactions")
			startData := cl.Reg.CounterValue("server.data_bytes")
			runners := make([]*workload.Runner, n)
			for i := range runners {
				rcfg := wcfg
				rcfg.Files = filesPerClient
				rcfg.FileBase = i * filesPerClient
				runners[i] = workload.NewRunner(cl, i, rcfg, p.Seed+int64(i)*97)
				runners[i].Start()
			}
			cl.RunFor(duration)
			for _, r := range runners {
				r.Stop()
			}
			_ = base

			var ops, errs uint64
			for _, r := range runners {
				ops += r.Ops
				errs += r.Errors
			}
			secs := duration.Seconds()
			tx := cl.Reg.CounterValue("server.transactions") - startTx
			data := cl.Reg.CounterValue("server.data_bytes") - startData
			res.Table.AddRow(
				pol.Name,
				stats.FmtN(n),
				stats.FmtF(float64(ops)/secs),
				stats.FmtF(float64(tx)/secs),
				stats.FmtBytes(data),
				stats.FmtN(errs),
			)
			byKey[key2(pol.Name, n)] = cell{ops: float64(ops) / secs, dataBytes: float64(data)}
		}
	}

	nMax := clientCounts[len(clientCounts)-1]
	direct := byKey[key2("storage-tank", nMax)]
	ship := byKey[key2("function-ship", nMax)]
	res.Metric("direct.server_data_bytes", direct.dataBytes)
	res.Metric("funcship.server_data_bytes", ship.dataBytes)
	res.Metric("direct.ops_per_sec", direct.ops)
	res.Metric("funcship.ops_per_sec", ship.ops)
	if ship.ops > 0 {
		res.Metric("speedup_at_max_clients", direct.ops/ship.ops)
	}
	res.Table.AddNote("direct-access servers move no file data; their load is transactions (§1.1)")
	return res
}

func key2(name string, n int) string {
	return name + "/" + stats.FmtN(n)
}
