package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/shard"
	"repro/internal/stats"
)

// RunT8 measures the lease-granularity argument of §4 on a multi-server
// installation (Fig 1's server cluster): one lease per (client, server)
// pair means a partition between a client and ONE server costs exactly
// that pair's lease — service on every other shard continues untouched,
// and the per-object alternative's renewal traffic is avoided without
// giving up failure isolation.
func RunT8(p Params) *Result {
	opts := shard.DefaultOptions()
	opts.Seed = p.Seed
	opts.Shards = 3
	if p.Quick {
		opts.Shards = 2
	}
	prefixes := make(map[string]int, opts.Shards)
	for si := 0; si < opts.Shards; si++ {
		prefixes[fmt.Sprintf("/s%d", si)] = si
	}
	opts.Placement = shard.Subtree{Prefixes: prefixes}
	inst := shard.New(opts)
	inst.Start()
	tau := opts.Core.Tau

	res := &Result{ID: "T8", Title: "server cluster: one lease per client/server pair"}
	res.Table = stats.NewTable("",
		"shard", "partitioned", "ops during partition", "errors", "lease at end")

	// Node 0 works on every shard.
	handles := make([]msg.Handle, opts.Shards)
	for si := 0; si < opts.Shards; si++ {
		handles[si] = inst.MustOpen(0, fmt.Sprintf("/s%d/data", si), true, true)
		mustOK(inst.Write(0, handles[si], 0, blockData(byte('a'+si))))
	}

	// Partition exactly the (node 0, server 0) pair.
	inst.IsolatePair(0, 0)

	// Keep working on every shard through 1.5 lease periods.
	ops := make([]int, opts.Shards)
	errs := make([]int, opts.Shards)
	rounds := int((3 * tau / 2) / (500 * time.Millisecond))
	for r := 0; r < rounds; r++ {
		inst.RunFor(500 * time.Millisecond)
		for si := 0; si < opts.Shards; si++ {
			errno := inst.Write(0, handles[si], uint64(r%4), blockData(byte(r)))
			ops[si]++
			if errno != msg.OK {
				errs[si]++
			}
		}
	}

	phases := inst.LeasePhases(0)
	for si := 0; si < opts.Shards; si++ {
		res.Table.AddRow(
			fmt.Sprintf("/s%d", si),
			yesNo(si == 0),
			stats.FmtN(ops[si]),
			stats.FmtN(errs[si]),
			phases[si].String(),
		)
	}
	res.Metric("partitioned_shard_errors", float64(errs[0]))
	unaffectedErrs := 0
	for si := 1; si < opts.Shards; si++ {
		unaffectedErrs += errs[si]
	}
	res.Metric("unaffected_shard_errors", float64(unaffectedErrs))
	res.Metric("unaffected_leases_valid", boolToF(allValid(phases[1:])))

	// Heal, settle, audit all shards.
	inst.HealAll()
	inst.RunFor(2 * tau)
	inst.Sync(0)
	res.Metric("violations", float64(len(inst.FinalCheck())))
	res.Table.AddNote("partition between node 0 and server 0 only; τ=%v; %d write rounds per shard", tau, rounds)
	return res
}

func allValid(phases []core.Phase) bool {
	for _, p := range phases {
		if p != core.Phase1Valid {
			return false
		}
	}
	return true
}
