package baselines

import "testing"

func TestNamedPoliciesValidate(t *testing.T) {
	names := make(map[string]bool)
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Name == "" {
			t.Error("unnamed policy")
		}
		if names[p.Name] {
			t.Errorf("duplicate policy name %q", p.Name)
		}
		names[p.Name] = true
	}
	if len(names) != 9 {
		t.Fatalf("expected 9 named policies, got %d", len(names))
	}
	if All()[0].Name != "storage-tank" {
		t.Fatal("storage-tank must come first")
	}
}

func TestInvalidCombinationsRejected(t *testing.T) {
	bad := []Policy{
		{Lease: LeaseStorageTank, Recovery: RecoverHonorLocks},
		{Lease: LeaseHeartbeat, Recovery: RecoverLeaseFence},
		{Lease: LeasePerObject, Recovery: RecoverHeartbeatSteal},
		{Lease: LeaseNone, Recovery: RecoverLeaseFence},
		{Lease: LeaseNone, Recovery: RecoverHeartbeatSteal},
		{Lease: LeaseNone, Recovery: RecoverPerObjectExpire},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("combination %d validated but should not", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for _, p := range []LeasePolicy{LeaseStorageTank, LeaseHeartbeat, LeasePerObject, LeaseNone, LeasePolicy(99)} {
		if p.String() == "" {
			t.Errorf("empty string for lease policy %d", p)
		}
	}
	for _, r := range []RecoveryPolicy{RecoverLeaseFence, RecoverHonorLocks, RecoverStealImmediate,
		RecoverFenceOnly, RecoverHeartbeatSteal, RecoverPerObjectExpire, RecoveryPolicy(99)} {
		if r.String() == "" {
			t.Errorf("empty string for recovery policy %d", r)
		}
	}
	if DataDirect.String() == "" || DataFunctionShip.String() == "" {
		t.Error("empty data path string")
	}
}

func TestPolicyFlags(t *testing.T) {
	if !NFSPoll().NFS || NFSPoll().Data != DataFunctionShip {
		t.Fatal("NFSPoll flags wrong")
	}
	if !GFSDlock().DLock || GFSDlock().Data != DataDirect {
		t.Fatal("GFSDlock flags wrong")
	}
	if StorageTank().NFS || StorageTank().DLock {
		t.Fatal("StorageTank must not carry baseline flags")
	}
}
