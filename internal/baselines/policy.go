// Package baselines defines the policy axes along which the reproduction
// compares the paper's protocol against prior systems (§1.2, §2.1, §4,
// §5): how leases are maintained, how the server recovers locks from
// unreachable clients, and how file data travels. The real client/server
// implementations are parameterized by these policies, so every baseline
// exercises the same metadata, lock, cache, and network code — only the
// safety/recovery behaviour differs.
package baselines

import "fmt"

// LeasePolicy selects the lease/liveness mechanism.
type LeasePolicy uint8

const (
	// LeaseStorageTank is the paper's protocol: a single lease per
	// client/server pair, renewed opportunistically by ordinary ACKed
	// messages, with a passive server.
	LeaseStorageTank LeasePolicy = iota
	// LeaseHeartbeat models Frangipani (§5): one lease per client, but
	// maintained by explicit periodic heartbeats, with the server storing
	// last-heard state for every client at all times.
	LeaseHeartbeat
	// LeasePerObject models the V system (§4): every cached object has
	// its own lease the client must renew; the server stores one lease
	// record per (client, object).
	LeasePerObject
	// LeaseNone has no lease machinery at all (honor-locks, naive-steal,
	// fencing-only, NFS-style configurations).
	LeaseNone
)

func (p LeasePolicy) String() string {
	switch p {
	case LeaseStorageTank:
		return "storage-tank"
	case LeaseHeartbeat:
		return "heartbeat"
	case LeasePerObject:
		return "per-object"
	case LeaseNone:
		return "no-lease"
	}
	return fmt.Sprintf("LeasePolicy(%d)", uint8(p))
}

// RecoveryPolicy selects what the server does when a client stops
// acknowledging demands.
type RecoveryPolicy uint8

const (
	// RecoverLeaseFence is the paper's protocol: NACK the client, wait
	// τ(1+ε), then steal locks and fence (fencing as the slow-computer
	// backstop, §6).
	RecoverLeaseFence RecoveryPolicy = iota
	// RecoverHonorLocks never steals: locked data stays unavailable until
	// the partition heals (§2's unavailability problem).
	RecoverHonorLocks
	// RecoverStealImmediate steals at once without fencing — safe for
	// server-marshaled I/O, catastrophic for network-attached storage
	// (§1.2).
	RecoverStealImmediate
	// RecoverFenceOnly fences the client at the disks and then steals
	// immediately — §2.1's strawman: no concurrent writers, but stranded
	// dirty data and undetected stale caches.
	RecoverFenceOnly
	// RecoverHeartbeatSteal waits until the client's heartbeat lease
	// lapses (last-heard older than τ on the server's clock), then steals
	// and fences. Pairs with LeaseHeartbeat.
	RecoverHeartbeatSteal
	// RecoverPerObjectExpire waits τ(1+ε) (the worst-case remaining
	// validity of any of the client's per-object leases), then steals.
	// Pairs with LeasePerObject.
	RecoverPerObjectExpire
)

func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverLeaseFence:
		return "lease+fence"
	case RecoverHonorLocks:
		return "honor-locks"
	case RecoverStealImmediate:
		return "naive-steal"
	case RecoverFenceOnly:
		return "fence-only"
	case RecoverHeartbeatSteal:
		return "heartbeat-steal"
	case RecoverPerObjectExpire:
		return "per-object-expire"
	}
	return fmt.Sprintf("RecoveryPolicy(%d)", uint8(p))
}

// DataPath selects how file data moves.
type DataPath uint8

const (
	// DataDirect: clients read and write the SAN disks directly; the
	// server never touches file data (Storage Tank, Fig 1).
	DataDirect DataPath = iota
	// DataFunctionShip: clients ship every data request to the server,
	// which performs the disk I/O — the traditional client/server file
	// system of §1.1, used by experiment F1.
	DataFunctionShip
)

func (p DataPath) String() string {
	if p == DataDirect {
		return "direct"
	}
	return "function-ship"
}

// Policy is one complete configuration.
type Policy struct {
	Name     string
	Lease    LeasePolicy
	Recovery RecoveryPolicy
	Data     DataPath
	// NFS enables NFS-style attribute polling on the function-ship path:
	// no locks, a TTL'd attribute cache, and weak consistency (§5).
	NFS bool
	// DLock replaces logical locking with GFS-style disk-address-range
	// locks enforced (with TTLs) by the disks themselves (§5). No data
	// caching: every operation pays disk round-trips for the lock.
	DLock bool
}

// Validate rejects combinations that make no sense.
func (p Policy) Validate() error {
	switch p.Lease {
	case LeaseStorageTank:
		if p.Recovery != RecoverLeaseFence {
			return fmt.Errorf("baselines: %s requires lease+fence recovery", p.Lease)
		}
	case LeaseHeartbeat:
		if p.Recovery != RecoverHeartbeatSteal {
			return fmt.Errorf("baselines: %s requires heartbeat-steal recovery", p.Lease)
		}
	case LeasePerObject:
		if p.Recovery != RecoverPerObjectExpire {
			return fmt.Errorf("baselines: %s requires per-object-expire recovery", p.Lease)
		}
	case LeaseNone:
		switch p.Recovery {
		case RecoverHonorLocks, RecoverStealImmediate, RecoverFenceOnly:
		default:
			return fmt.Errorf("baselines: no-lease cannot use %s recovery", p.Recovery)
		}
	}
	return nil
}

// The named configurations the experiments run.

// StorageTank is the paper's system.
func StorageTank() Policy {
	return Policy{Name: "storage-tank", Lease: LeaseStorageTank, Recovery: RecoverLeaseFence, Data: DataDirect}
}

// Frangipani is the heartbeat-lease comparison (§5).
func Frangipani() Policy {
	return Policy{Name: "frangipani", Lease: LeaseHeartbeat, Recovery: RecoverHeartbeatSteal, Data: DataDirect}
}

// VSystem is the per-object-lease comparison (§4).
func VSystem() Policy {
	return Policy{Name: "v-leases", Lease: LeasePerObject, Recovery: RecoverPerObjectExpire, Data: DataDirect}
}

// HonorLocks never recovers (§2's indefinite unavailability).
func HonorLocks() Policy {
	return Policy{Name: "honor-locks", Lease: LeaseNone, Recovery: RecoverHonorLocks, Data: DataDirect}
}

// NaiveSteal is the traditional recovery applied unsafely to NAS (§1.2).
func NaiveSteal() Policy {
	return Policy{Name: "naive-steal", Lease: LeaseNone, Recovery: RecoverStealImmediate, Data: DataDirect}
}

// FenceOnly is §2.1's inadequate strawman.
func FenceOnly() Policy {
	return Policy{Name: "fence-only", Lease: LeaseNone, Recovery: RecoverFenceOnly, Data: DataDirect}
}

// FunctionShip is the traditional server-marshaled data path (F1
// comparison); recovery by immediate steal is safe there.
func FunctionShip() Policy {
	return Policy{Name: "function-ship", Lease: LeaseNone, Recovery: RecoverStealImmediate, Data: DataFunctionShip}
}

// NFSPoll is the NFS comparison (§5): attribute polling, no locks, weak
// consistency, data through the server.
func NFSPoll() Policy {
	return Policy{Name: "nfs-poll", Lease: LeaseNone, Recovery: RecoverStealImmediate, Data: DataFunctionShip, NFS: true}
}

// GFSDlock is the Global File System comparison (§5): physical locks on
// disk-address ranges, enforced by the disks with timeouts.
func GFSDlock() Policy {
	return Policy{Name: "gfs-dlock", Lease: LeaseNone, Recovery: RecoverStealImmediate, Data: DataDirect, DLock: true}
}

// All returns every named policy, Storage Tank first.
func All() []Policy {
	return []Policy{StorageTank(), Frangipani(), VSystem(), HonorLocks(), NaiveSteal(), FenceOnly(), FunctionShip(), NFSPoll(), GFSDlock()}
}
