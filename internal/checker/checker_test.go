package checker

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/sim"
)

func newChecker() (*sim.Scheduler, *Checker) {
	s := sim.NewScheduler(1)
	return s, New(s)
}

func TestCleanHistoryNoViolations(t *testing.T) {
	_, c := newChecker()
	// Single writer, flush, then another client reads the committed data.
	c.LockActive(1, 10, msg.LockExclusive)
	v := c.NextVer(1, 10, 0)
	c.Read(1, 10, 0, v) // own read sees own write
	c.Committed(1, 10, 0, v)
	c.LockInactive(1, 10)
	c.LockActive(2, 10, msg.LockShared)
	c.Read(2, 10, 0, v)
	c.LockInactive(2, 10)
	c.FinalCheck()
	if n := len(c.Violations()); n != 0 {
		t.Fatalf("violations = %v", c.Violations())
	}
}

func TestStaleReadDetected(t *testing.T) {
	_, c := newChecker()
	v1 := c.NextVer(1, 10, 0)
	c.Committed(1, 10, 0, v1)
	c.NextVer(1, 10, 0) // v2 dirty in client 1's cache, never flushed
	// Client 2 reads from disk and sees v1: stale.
	c.Read(2, 10, 0, v1)
	if c.Count(StaleRead) != 1 {
		t.Fatalf("stale reads = %d, want 1: %v", c.Count(StaleRead), c.Violations())
	}
	// The writer itself is excused: its newer version lives in its own
	// cache, so the oracle attributes no staleness to it.
	c.Read(1, 10, 0, v1)
	if c.Count(StaleRead) != 1 {
		t.Fatal("writer's own-read must not be flagged")
	}
}

func TestOwnNewerWritesNotStale(t *testing.T) {
	_, c := newChecker()
	v1 := c.NextVer(1, 10, 0)
	c.Committed(1, 10, 0, v1)
	v2 := c.NextVer(1, 10, 0) // dirty
	c.Read(1, 10, 0, v2)      // reads own cache: newest
	if c.Count(StaleRead) != 0 {
		t.Fatalf("false positive: %v", c.Violations())
	}
	// Reader 2 sees v2 after flush: fine.
	c.Committed(1, 10, 0, v2)
	c.Read(2, 10, 0, v2)
	if c.Count(StaleRead) != 0 {
		t.Fatalf("false positive after flush: %v", c.Violations())
	}
}

func TestReadOfNeverWrittenBlock(t *testing.T) {
	_, c := newChecker()
	c.Read(2, 10, 0, 0)
	if len(c.Violations()) != 0 {
		t.Fatal("reading a never-written block is not a violation")
	}
}

func TestConcurrentConflictDetected(t *testing.T) {
	_, c := newChecker()
	// Naive steal: client 1 believes it holds exclusive; server granted
	// client 2 exclusive too. Both write.
	c.LockActive(1, 10, msg.LockExclusive)
	c.LockActive(2, 10, msg.LockExclusive)
	c.NextVer(1, 10, 0)
	if c.Count(ConcurrentConflict) != 1 {
		t.Fatalf("conflicts = %d, want 1", c.Count(ConcurrentConflict))
	}
	// Deduped: more ops between the same pair count once.
	c.NextVer(2, 10, 1)
	c.NextVer(1, 10, 2)
	if c.Count(ConcurrentConflict) != 1 {
		t.Fatalf("conflicts = %d, want deduped 1", c.Count(ConcurrentConflict))
	}
}

func TestSharedReadersNoConflict(t *testing.T) {
	_, c := newChecker()
	c.LockActive(1, 10, msg.LockShared)
	c.LockActive(2, 10, msg.LockShared)
	c.Read(1, 10, 0, 0)
	c.Read(2, 10, 0, 0)
	if c.Count(ConcurrentConflict) != 0 {
		t.Fatalf("false conflict: %v", c.Violations())
	}
}

func TestReadWithoutLockAgainstExclusiveHolder(t *testing.T) {
	_, c := newChecker()
	// Fenced client 1 lost its lock (stolen) but still serves reads from
	// cache: its window is gone, but client 2 now holds exclusive. The
	// lockless read conflicts with the exclusive window.
	c.LockActive(2, 10, msg.LockExclusive)
	c.Read(1, 10, 0, 0)
	if c.Count(ConcurrentConflict) != 1 {
		t.Fatalf("conflicts = %d, want 1", c.Count(ConcurrentConflict))
	}
}

func TestLockInactiveEndsWindow(t *testing.T) {
	_, c := newChecker()
	c.LockActive(1, 10, msg.LockExclusive)
	c.NextVer(1, 10, 0)
	c.LockInactive(1, 10)
	c.LockActive(2, 10, msg.LockExclusive)
	c.NextVer(2, 10, 0)
	if c.Count(ConcurrentConflict) != 0 {
		t.Fatalf("false conflict after release: %v", c.Violations())
	}
	// Downgrade to none via LockActive(None) also ends the window.
	c.LockActive(2, 10, msg.LockNone)
	c.LockActive(3, 10, msg.LockExclusive)
	c.NextVer(3, 10, 0)
	if c.Count(ConcurrentConflict) != 0 {
		t.Fatalf("false conflict after downgrade: %v", c.Violations())
	}
}

func TestLostUpdateDetected(t *testing.T) {
	_, c := newChecker()
	v1 := c.NextVer(1, 10, 0)
	c.Committed(1, 10, 0, v1)
	c.NextVer(1, 10, 0) // v2 stranded: fenced before flush
	got := c.FinalCheck()
	if len(got) != 1 || got[0].Kind != LostUpdate || got[0].Actor != 1 {
		t.Fatalf("final = %v", got)
	}
	if c.Count(LostUpdate) != 1 {
		t.Fatal("violation not recorded")
	}
}

func TestLostUpdateExcusedForCrashedClient(t *testing.T) {
	_, c := newChecker()
	c.NextVer(1, 10, 0) // dirty
	c.ClientCrashed(1)  // the machine failed: volatile state gone, no guarantee
	if got := c.FinalCheck(); len(got) != 0 {
		t.Fatalf("crashed client's dirty data flagged: %v", got)
	}
}

func TestLostUpdateSupersededBySameWriter(t *testing.T) {
	_, c := newChecker()
	c.NextVer(1, 10, 0)       // v1 dirty, overwritten in cache
	v2 := c.NextVer(1, 10, 0) // v2 dirty
	c.Committed(1, 10, 0, v2) // only the final content is flushed
	if got := c.FinalCheck(); len(got) != 0 {
		t.Fatalf("superseded write flagged: %v", got)
	}
}

func TestCrashEndsWindows(t *testing.T) {
	_, c := newChecker()
	c.LockActive(1, 10, msg.LockExclusive)
	c.ClientCrashed(1)
	c.LockActive(2, 10, msg.LockExclusive)
	c.NextVer(2, 10, 0)
	if c.Count(ConcurrentConflict) != 0 {
		t.Fatalf("crashed client's window still active: %v", c.Violations())
	}
}

func TestNopOracle(t *testing.T) {
	var o Oracle = Nop{}
	if o.NextVer(1, 2, 3) != 0 {
		t.Fatal("Nop.NextVer must return 0")
	}
	o.Committed(1, 2, 3, 4)
	o.Read(1, 2, 3, 4)
	o.LockActive(1, 2, msg.LockShared)
	o.LockInactive(1, 2)
	o.ClientCrashed(1)
}

func TestKindAndViolationStrings(t *testing.T) {
	for k := StaleRead; k <= ConcurrentConflict; k++ {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if Kind(0).String() == "" {
		t.Fatal("unknown kind must format")
	}
	v := Violation{Kind: StaleRead, Ino: 1, Block: 2, Actor: 3, Other: 4, Detail: "x"}
	if v.String() == "" {
		t.Fatal("violation must format")
	}
}
