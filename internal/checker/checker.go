// Package checker is the consistency oracle for the simulated
// installation. It watches, from outside the protocol, every cache write,
// disk commit, read, and lock-window transition, and detects the three
// failure modes the paper argues about (§2, §2.1):
//
//   - ConcurrentConflict: a client operates on an object while another
//     client's conflicting lock window is still active — the "multiple
//     writers without synchronization" caused by naive lock stealing.
//   - StaleRead: a read returns data older than the newest acknowledged
//     write by another client — what fenced clients serve from their
//     caches, and what readers get when dirty data is stranded.
//   - LostUpdate: an acknowledged write whose data never reaches stable
//     storage although the writer was isolated, not failed — stranded
//     dirty data under fencing-only recovery.
//
// The oracle uses global simulation time and version stamps that ride
// along with block data; protocol code never reads either.
package checker

import (
	"fmt"
	"sort"

	"repro/internal/msg"
	"repro/internal/sim"
)

// Kind classifies a violation.
type Kind uint8

const (
	StaleRead Kind = iota + 1
	LostUpdate
	ConcurrentConflict
)

func (k Kind) String() string {
	switch k {
	case StaleRead:
		return "stale-read"
	case LostUpdate:
		return "lost-update"
	case ConcurrentConflict:
		return "concurrent-conflict"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Violation is one detected consistency failure.
type Violation struct {
	Kind   Kind
	At     sim.Time
	Ino    msg.ObjectID
	Block  uint64
	Actor  msg.NodeID // the client whose operation exposed the violation
	Other  msg.NodeID // the conflicting/overwritten party, if any
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v at %v ino=%v blk=%d actor=%v other=%v: %s",
		v.Kind, v.At, v.Ino, v.Block, v.Actor, v.Other, v.Detail)
}

// Oracle is the recording interface clients call. A nil *Checker is a
// valid no-op Oracle via the Nop type below.
type Oracle interface {
	// NextVer stamps a new acknowledged cache write and returns its
	// version. Call when the client accepts a write into its cache.
	NextVer(client msg.NodeID, ino msg.ObjectID, block uint64) uint64
	// Committed records that version ver reached stable storage.
	Committed(client msg.NodeID, ino msg.ObjectID, block uint64, ver uint64)
	// Read records a read that observed version verSeen (0 = never
	// written).
	Read(client msg.NodeID, ino msg.ObjectID, block uint64, verSeen uint64)
	// LockActive records that the client now considers itself holding
	// mode on ino; LockInactive that it stopped (release, downgrade to
	// none, invalidation, or local lease expiry).
	LockActive(client msg.NodeID, ino msg.ObjectID, mode msg.LockMode)
	LockInactive(client msg.NodeID, ino msg.ObjectID)
	// ClientCrashed excuses the client's pending writes from lost-update
	// accounting: volatile state of a failed machine is legitimately gone.
	ClientCrashed(client msg.NodeID)
}

// Nop is an Oracle that records nothing (live deployments).
type Nop struct{}

func (Nop) NextVer(msg.NodeID, msg.ObjectID, uint64) uint64    { return 0 }
func (Nop) Committed(msg.NodeID, msg.ObjectID, uint64, uint64) {}
func (Nop) Read(msg.NodeID, msg.ObjectID, uint64, uint64)      {}
func (Nop) LockActive(msg.NodeID, msg.ObjectID, msg.LockMode)  {}
func (Nop) LockInactive(msg.NodeID, msg.ObjectID)              {}
func (Nop) ClientCrashed(msg.NodeID)                           {}

type blockKey struct {
	ino   msg.ObjectID
	block uint64
}

type write struct {
	ver       uint64
	writer    msg.NodeID
	at        sim.Time
	committed bool
}

type blockState struct {
	writes []write // version-ordered (versions are globally monotonic)
	// latestCommitted is the highest committed version.
	latestCommitted uint64
}

type activeKey struct {
	ino    msg.ObjectID
	client msg.NodeID
}

// Checker implements Oracle with full recording.
type Checker struct {
	s       *sim.Scheduler
	nextVer uint64
	blocks  map[blockKey]*blockState
	active  map[activeKey]msg.LockMode
	crashed map[msg.NodeID]bool

	violations []Violation
	// seenConflict dedups concurrent-conflict reports per (a, b, ino).
	seenConflict map[string]bool
}

// New creates a checker reading global time from s.
func New(s *sim.Scheduler) *Checker {
	return &Checker{
		s:            s,
		blocks:       make(map[blockKey]*blockState),
		active:       make(map[activeKey]msg.LockMode),
		crashed:      make(map[msg.NodeID]bool),
		seenConflict: make(map[string]bool),
	}
}

func (c *Checker) block(k blockKey) *blockState {
	b := c.blocks[k]
	if b == nil {
		b = &blockState{}
		c.blocks[k] = b
	}
	return b
}

func (c *Checker) violate(v Violation) {
	v.At = c.s.Now()
	c.violations = append(c.violations, v)
}

// NextVer implements Oracle.
func (c *Checker) NextVer(client msg.NodeID, ino msg.ObjectID, block uint64) uint64 {
	c.nextVer++
	b := c.block(blockKey{ino, block})
	b.writes = append(b.writes, write{ver: c.nextVer, writer: client, at: c.s.Now()})
	c.checkConflict(client, ino, "write")
	return c.nextVer
}

// Committed implements Oracle.
func (c *Checker) Committed(client msg.NodeID, ino msg.ObjectID, block uint64, ver uint64) {
	b := c.block(blockKey{ino, block})
	for i := range b.writes {
		if b.writes[i].ver == ver {
			b.writes[i].committed = true
		}
	}
	if ver > b.latestCommitted {
		b.latestCommitted = ver
	}
}

// Read implements Oracle.
func (c *Checker) Read(client msg.NodeID, ino msg.ObjectID, block uint64, verSeen uint64) {
	b := c.block(blockKey{ino, block})
	// Sequential consistency per object: the read must observe the newest
	// acknowledged write, unless every newer write is the reader's own
	// (its cache would have served those).
	for i := len(b.writes) - 1; i >= 0; i-- {
		w := b.writes[i]
		if w.ver <= verSeen {
			break
		}
		if w.writer != client {
			c.violate(Violation{
				Kind: StaleRead, Ino: ino, Block: block,
				Actor: client, Other: w.writer,
				Detail: fmt.Sprintf("read saw v%d but v%d was written at %v", verSeen, w.ver, w.at),
			})
			break
		}
	}
	c.checkConflict(client, ino, "read")
}

// LockActive implements Oracle.
func (c *Checker) LockActive(client msg.NodeID, ino msg.ObjectID, mode msg.LockMode) {
	if mode == msg.LockNone {
		delete(c.active, activeKey{ino, client})
		return
	}
	c.active[activeKey{ino, client}] = mode
}

// LockInactive implements Oracle.
func (c *Checker) LockInactive(client msg.NodeID, ino msg.ObjectID) {
	delete(c.active, activeKey{ino, client})
}

// ClientCrashed implements Oracle.
func (c *Checker) ClientCrashed(client msg.NodeID) {
	c.crashed[client] = true
	for k := range c.active {
		if k.client == client {
			delete(c.active, k)
		}
	}
}

// checkConflict flags an operation performed while another client's
// conflicting lock window is active. The operating client's own believed
// mode is read from its window; operations without any window (no lock
// believed held) are flagged against any exclusive holder.
func (c *Checker) checkConflict(client msg.NodeID, ino msg.ObjectID, op string) {
	own := c.active[activeKey{ino, client}]
	for k, mode := range c.active {
		if k.ino != ino || k.client == client {
			continue
		}
		conflict := !mode.Compatible(own)
		if own == msg.LockNone {
			conflict = mode == msg.LockExclusive
		}
		if !conflict {
			continue
		}
		key := fmt.Sprintf("%v|%v|%v", ino, minNode(client, k.client), maxNode(client, k.client))
		if c.seenConflict[key] {
			continue
		}
		c.seenConflict[key] = true
		c.violate(Violation{
			Kind: ConcurrentConflict, Ino: ino,
			Actor: client, Other: k.client,
			Detail: fmt.Sprintf("%s while %v holds %v and actor holds %v", op, k.client, mode, own),
		})
	}
}

func minNode(a, b msg.NodeID) msg.NodeID {
	if a < b {
		return a
	}
	return b
}

func maxNode(a, b msg.NodeID) msg.NodeID {
	if a > b {
		return a
	}
	return b
}

// FinalCheck scans for lost updates: for each block and each non-crashed
// writer, the writer's newest acknowledged version must not exceed the
// block's newest committed version — otherwise data an application was
// told was written can never be read by anyone. Call after the experiment
// quiesces (failures healed, flushes drained).
func (c *Checker) FinalCheck() []Violation {
	keys := make([]blockKey, 0, len(c.blocks))
	for k := range c.blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ino != keys[j].ino {
			return keys[i].ino < keys[j].ino
		}
		return keys[i].block < keys[j].block
	})
	var out []Violation
	for _, k := range keys {
		b := c.blocks[k]
		maxByWriter := make(map[msg.NodeID]uint64)
		for _, w := range b.writes {
			if w.ver > maxByWriter[w.writer] {
				maxByWriter[w.writer] = w.ver
			}
		}
		for writer, vmax := range maxByWriter {
			if c.crashed[writer] {
				continue
			}
			if vmax > b.latestCommitted {
				v := Violation{
					Kind: LostUpdate, Ino: k.ino, Block: k.block,
					Actor: writer, At: c.s.Now(),
					Detail: fmt.Sprintf("acked v%d never committed (newest on disk v%d)", vmax, b.latestCommitted),
				}
				c.violations = append(c.violations, v)
				out = append(out, v)
			}
		}
	}
	return out
}

// Violations returns everything recorded so far (FinalCheck results
// included once FinalCheck has run).
func (c *Checker) Violations() []Violation { return c.violations }

// Count returns the number of violations of kind k.
func (c *Checker) Count(k Kind) int {
	n := 0
	for _, v := range c.violations {
		if v.Kind == k {
			n++
		}
	}
	return n
}

var _ Oracle = (*Checker)(nil)
var _ Oracle = Nop{}
