// Package stats provides the measurement instruments for the reproduction:
// counters, gauges, duration histograms, and a registry with stable
// snapshot/diff semantics. The experiment harness reads protocol costs
// (messages, bytes, server lease state, server lease operations) from
// these instruments; the protocol code only increments them.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. Safe for concurrent use:
// the simulation is single-threaded and the live transport funnels each
// node's activity through one executor goroutine, but a process hosting
// several live nodes may share one registry across their executors, and
// monitoring (signal-handler dumps, test assertions) reads from other
// goroutines.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (d must be ≥ 0 in spirit; wraparound is the caller's bug).
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous level (e.g. bytes of lease state held).
// Safe for concurrent use; the high-water mark is maintained with a CAS
// loop so concurrent Sets never lose a maximum.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set replaces the level and tracks the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add shifts the level by d.
func (g *Gauge) Add(d int64) {
	v := g.v.Add(d)
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram records durations in logarithmic buckets (~2 buckets per
// decade from 1µs to ~18h) and exact sum/count/min/max, good enough for
// the latency distributions the experiments report. A mutex guards the
// multi-field update; observation rates here are far below contention
// concern.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [64]uint64 // bucket i: [2^i, 2^(i+1)) nanoseconds
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := 63 - leadingZeros64(uint64(d))
	return b
}

func leadingZeros64(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return the extreme observations (0 when empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from the
// bucket boundaries — within 2x of the true value, which suffices for the
// shape comparisons the experiments make.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return h.max
}

// Registry is a flat namespace of named instruments. Names are
// dot-separated ("server.msgs.keepalive"). Instruments are created on
// first use so protocol code never has to pre-declare them. The maps are
// mutex-guarded so a registry may be shared across node executors and
// read by monitoring goroutines; instrument lookups on hot paths should
// be hoisted to construction time (as the protocol packages do).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value, or 0 if it was never
// touched (reading must not create noise entries).
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if ok {
		return c.Value()
	}
	return 0
}

// SumPrefix sums every counter whose name begins with prefix.
func (r *Registry) SumPrefix(prefix string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.Value()
		}
	}
	return total
}

// Snapshot is a point-in-time copy of all counter values.
type Snapshot map[string]uint64

// Snapshot copies current counter values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := make(Snapshot, len(r.counters))
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	return s
}

// DiffFrom returns the per-counter increase since the earlier snapshot.
func (r *Registry) DiffFrom(earlier Snapshot) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := make(Snapshot)
	for name, c := range r.counters {
		if delta := c.Value() - earlier[name]; delta != 0 {
			d[name] = delta
		}
	}
	return d
}

// Names returns all counter names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dump renders every counter, gauge and histogram as aligned text lines.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, n := range r.namesLocked() {
		fmt.Fprintf(&b, "%-40s %d\n", n, r.counters[n].Value())
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		g := r.gauges[n]
		fmt.Fprintf(&b, "%-40s %d (max %d)\n", n, g.Value(), g.Max())
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := r.hists[n]
		fmt.Fprintf(&b, "%-40s n=%d mean=%v p99<=%v max=%v\n",
			n, h.Count(), h.Mean(), h.Quantile(0.99), h.Max())
	}
	return b.String()
}
