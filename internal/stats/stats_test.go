package stats

import (
	"math/rand"
	"sync"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 || g.Max() != 10 {
		t.Fatalf("value=%d max=%d", g.Value(), g.Max())
	}
	g.Set(20)
	if g.Max() != 20 {
		t.Fatalf("max=%d want 20", g.Max())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatal("negative observation must clamp to 0")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Property: quantile upper bound is ≥ the exact quantile and ≤ 2x of
	// it (bucket resolution), for uniform random data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		var all []time.Duration
		for i := 0; i < 500; i++ {
			d := time.Duration(rng.Int63n(int64(time.Second))) + 1
			h.Observe(d)
			all = append(all, d)
		}
		// exact p50 via sort-free selection: just check max/min sanity and
		// p100 against max.
		if h.Quantile(1) < h.Max() {
			return false
		}
		return h.Quantile(0.5) >= h.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCreateOnUse(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Inc()
	r.Counter("a.b").Inc()
	r.Counter("a.c").Add(3)
	if r.CounterValue("a.b") != 2 || r.CounterValue("a.c") != 3 {
		t.Fatal("counter values wrong")
	}
	if r.CounterValue("missing") != 0 {
		t.Fatal("missing counter must read 0")
	}
	if _, ok := r.counters["missing"]; ok {
		t.Fatal("reading a missing counter must not create it")
	}
	if r.SumPrefix("a.") != 5 {
		t.Fatalf("SumPrefix = %d", r.SumPrefix("a."))
	}
}

func TestRegistrySnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(10)
	snap := r.Snapshot()
	r.Counter("x").Add(5)
	r.Counter("y").Inc()
	d := r.DiffFrom(snap)
	if d["x"] != 5 || d["y"] != 1 {
		t.Fatalf("diff = %v", d)
	}
	if len(d) != 2 {
		t.Fatalf("diff has unexpected entries: %v", d)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Counter("a")
	r.Counter("m")
	names := r.Names()
	if names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(7)
	r.Gauge("state").Set(42)
	r.Histogram("lat").Observe(time.Millisecond)
	out := r.Dump()
	for _, want := range []string{"msgs", "7", "state", "42", "lat", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1 overhead", "policy", "msgs/op", "server bytes")
	tb.AddRow("storage-tank", "0", "0")
	tb.AddRow("v-leases", "1.25", "4096")
	tb.AddRow("short")
	tb.AddNote("τ=%v", time.Second)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "T1 overhead" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "policy") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(out, "storage-tank") || !strings.Contains(out, "note: τ=1s") {
		t.Fatalf("table output:\n%s", out)
	}
	// Columns must align: every data line has the same prefix width up to
	// the second column.
	idx := strings.Index(lines[1], "msgs/op")
	for _, l := range lines[3:5] {
		if len(l) < idx {
			t.Fatalf("row too short for aligned columns: %q", l)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if FmtF(1.50) != "1.5" || FmtF(2.00) != "2" || FmtF(0.25) != "0.25" {
		t.Fatalf("FmtF: %q %q %q", FmtF(1.50), FmtF(2.00), FmtF(0.25))
	}
	if FmtRate(3.0) != "3/s" {
		t.Fatalf("FmtRate = %q", FmtRate(3.0))
	}
	if FmtBytes(512) != "512B" || FmtBytes(2048) != "2.0KiB" || FmtBytes(3<<20) != "3.0MiB" {
		t.Fatalf("FmtBytes: %q %q %q", FmtBytes(512), FmtBytes(2048), FmtBytes(3<<20))
	}
	if FmtN(42) != "42" {
		t.Fatalf("FmtN = %q", FmtN(42))
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	if q := h.Quantile(-1); q == 0 {
		t.Fatal("q<0 should clamp, not return 0 for nonempty histogram")
	}
	if h.Quantile(2) < time.Second {
		t.Fatal("q>1 must cover max")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	// Shared registries are real in live deployments (one process hosting
	// several node executors, plus monitoring readers); every instrument
	// must tolerate concurrent writers and readers. Run with -race.
	reg := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared.count")
			g := reg.Gauge("shared.level")
			h := reg.Histogram("shared.lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(w*perWorker + i))
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				_ = reg.CounterValue("shared.count")
			}
		}()
	}
	// A concurrent reader exercising snapshot/diff/dump while writes run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			snap := reg.Snapshot()
			reg.DiffFrom(snap)
			_ = reg.Dump()
			_ = reg.SumPrefix("shared.")
		}
	}()
	wg.Wait()
	<-done
	if got := reg.CounterValue("shared.count"); got != workers*perWorker {
		t.Fatalf("counter lost increments: got %d, want %d", got, workers*perWorker)
	}
	if max := reg.Gauge("shared.level").Max(); max < workers*perWorker-1 {
		t.Fatalf("gauge high-water mark lost: %d", max)
	}
	if n := reg.Histogram("shared.lat").Count(); n != workers*perWorker {
		t.Fatalf("histogram lost observations: %d", n)
	}
}
