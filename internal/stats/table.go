package stats

import (
	"fmt"
	"strings"
)

// Table renders experiment results as aligned ASCII, in the row/column
// style of the paper's would-be tables. Cells are strings; use the Fmt*
// helpers for consistent numeric formatting across experiments.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row[:len(t.Headers)])
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// FmtF formats a float with 2 decimals, trimming trailing zeros.
func FmtF(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// FmtRate formats a per-second rate.
func FmtRate(v float64) string { return FmtF(v) + "/s" }

// FmtBytes formats a byte count with a unit suffix.
func FmtBytes(v uint64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%dB", v)
}

// FmtN formats an integer count.
func FmtN[T ~uint64 | ~int64 | ~int | ~uint32 | ~int32](v T) string {
	return fmt.Sprintf("%d", v)
}
