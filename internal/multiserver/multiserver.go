// Package multiserver builds installations with a CLUSTER of metadata
// servers (Fig 1 shows several), the namespace partitioned across them
// by path prefix. It realizes the paper's lease granularity argument
// (§4) literally: a client node holds ONE lease per server it talks to —
// implemented as one protocol instance (channel + lease state machine +
// cache) per (client, server) pair — so a failure between the client and
// one server invalidates exactly the locks held with that server and
// nothing else.
package multiserver

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/checker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures a multi-server installation.
type Options struct {
	Seed    int64
	Servers int
	Clients int
	// DisksPerServer: each server owns its own SAN devices (its shard's
	// data never mixes with another shard's allocator).
	DisksPerServer int
	DiskBlocks     uint64
	Core           core.Config
	// Tracer, when non-nil, receives lease-lifecycle events from every
	// server and every per-pair protocol instance.
	Tracer *trace.Tracer
}

// DefaultOptions returns a 2-server, 2-client installation.
func DefaultOptions() Options {
	cfg := core.DefaultConfig()
	cfg.Tau = 10 * time.Second
	cfg.RetryInterval = 200 * time.Millisecond
	return Options{
		Seed: 1, Servers: 2, Clients: 2,
		DisksPerServer: 1, DiskBlocks: 1 << 14,
		Core: cfg,
	}
}

// Node IDs: servers 1..S, clients 10.., disks 1000.. .
func serverID(i int) msg.NodeID { return msg.NodeID(1 + i) }

// ClientID returns the node ID of client index i.
func ClientID(i int) msg.NodeID { return msg.NodeID(10 + i) }

// Shard is one server's slice of the namespace.
type Shard struct {
	// Prefix is the path prefix this server owns ("/s0", "/s1", ...).
	Prefix string
	Server *server.Server
	ID     msg.NodeID
}

// Node is one client machine: a router over per-server protocol
// instances. Every sub-client has its own channel, lease, lock set, and
// cache — the paper's one-lease-per-pair, exactly.
type Node struct {
	inst *Installation
	idx  int
	subs map[msg.NodeID]*client.Client

	// handle routing: node-level handles map to (server, sub-handle).
	nextH   msg.Handle
	handles map[msg.Handle]routedHandle
}

type routedHandle struct {
	server msg.NodeID
	h      msg.Handle
}

// Installation is the full multi-server world.
type Installation struct {
	Opts    Options
	Sched   *sim.Scheduler
	Control *simnet.Network
	SAN     *simnet.Network
	Shards  []Shard
	Nodes   []*Node
	// Checkers is one consistency oracle per shard: object IDs (inode
	// numbers) are per-server, so histories must not mix across shards.
	Checkers []*checker.Checker
	Reg      *stats.Registry
	// diskOwner routes SAN replies to the sub-client whose shard owns
	// the disk.
	diskOwner map[msg.NodeID]msg.NodeID
}

// New builds the installation: S servers (each owning its disks and the
// namespace under its prefix), C client nodes with one sub-client per
// server.
func New(opts Options) *Installation {
	if opts.Servers < 1 || opts.Clients < 1 {
		panic("multiserver: need at least one server and one client")
	}
	s := sim.NewScheduler(opts.Seed)
	reg := stats.NewRegistry()
	inst := &Installation{
		Opts:      opts,
		Sched:     s,
		Control:   simnet.New(s, simnet.DefaultControlConfig()),
		SAN:       simnet.New(s, simnet.DefaultSANConfig()),
		Reg:       reg,
		diskOwner: make(map[msg.NodeID]msg.NodeID),
	}

	nextDisk := msg.NodeID(1000)
	for si := 0; si < opts.Servers; si++ {
		inst.Checkers = append(inst.Checkers, checker.New(s))
		diskMap := make(map[msg.NodeID]uint64, opts.DisksPerServer)
		for d := 0; d < opts.DisksPerServer; d++ {
			id := nextDisk
			nextDisk++
			inst.diskOwner[id] = serverID(si)
			dev := disk.New(id, disk.Config{Blocks: opts.DiskBlocks, ServiceTime: 100 * time.Microsecond},
				s.NewClock(1, 0),
				func(to msg.NodeID, m msg.Message) { inst.SAN.Send(id, to, m) },
				reg, disk.Observer{})
			inst.SAN.Attach(id, dev.Deliver)
			diskMap[id] = opts.DiskBlocks
		}
		sid := serverID(si)
		srv := server.New(sid, server.Config{
			Core: opts.Core, Policy: baselines.StorageTank(), Disks: diskMap,
		}, s.NewClock(1, 0),
			func(to msg.NodeID, m msg.Message) { inst.Control.Send(sid, to, m) },
			func(to msg.NodeID, m msg.Message) { inst.SAN.Send(sid, to, m) },
			reg, opts.Tracer)
		inst.Control.Attach(sid, srv.Deliver)
		inst.SAN.Attach(sid, srv.DeliverSAN)
		inst.Shards = append(inst.Shards, Shard{
			Prefix: fmt.Sprintf("/s%d", si), Server: srv, ID: sid,
		})
	}

	for ci := 0; ci < opts.Clients; ci++ {
		node := &Node{
			inst:    inst,
			idx:     ci,
			subs:    make(map[msg.NodeID]*client.Client),
			handles: make(map[msg.Handle]routedHandle),
		}
		cid := ClientID(ci)
		// One protocol instance per server. All share the node's network
		// address; the dispatcher routes inbound traffic by source.
		for si, sh := range inst.Shards {
			sub := client.New(cid, sh.ID, client.Config{Core: opts.Core, Policy: baselines.StorageTank()},
				s.NewClock(1, 0),
				func(to msg.NodeID, m msg.Message) { inst.Control.Send(cid, to, m) },
				func(to msg.NodeID, m msg.Message) { inst.SAN.Send(cid, to, m) },
				inst.Checkers[si], reg, opts.Tracer)
			node.subs[sh.ID] = sub
		}
		inst.Nodes = append(inst.Nodes, node)
		inst.Control.Attach(cid, node.deliverControl)
		inst.SAN.Attach(cid, node.deliverSAN)
	}
	return inst
}

// deliverControl routes inbound control traffic to the sub-client that
// owns the lease with the sending server.
func (n *Node) deliverControl(env msg.Envelope) {
	if sub, ok := n.subs[env.From]; ok {
		sub.Deliver(env)
	}
}

// deliverSAN routes a disk reply to the sub-client whose shard owns the
// disk (request IDs are per-sub, so fan-out would misdeliver).
func (n *Node) deliverSAN(env msg.Envelope) {
	owner, ok := n.inst.diskOwner[env.From]
	if !ok {
		return
	}
	if sub, ok := n.subs[owner]; ok {
		sub.DeliverSAN(env)
	}
}

// Start registers every sub-client with its server (in shard order, for
// deterministic replay).
func (inst *Installation) Start() {
	for _, node := range inst.Nodes {
		for _, sh := range inst.Shards {
			node.subs[sh.ID].Start()
		}
	}
	deadline := inst.Sched.Now().Add(time.Minute)
	inst.Sched.RunWhile(func() bool {
		if inst.Sched.Now().After(deadline) {
			panic("multiserver: registration hung")
		}
		for _, node := range inst.Nodes {
			for _, sub := range node.subs {
				if !sub.Registered() {
					return true
				}
			}
		}
		return false
	})
}

// shardFor routes a path to its owning shard.
func (inst *Installation) shardFor(path string) (*Shard, string, msg.Errno) {
	for i := range inst.Shards {
		sh := &inst.Shards[i]
		if strings.HasPrefix(path, sh.Prefix+"/") || path == sh.Prefix {
			// The shard's server owns the whole subtree; strip the prefix
			// so each server's namespace is rooted at "/".
			rest := strings.TrimPrefix(path, sh.Prefix)
			if rest == "" {
				rest = "/"
			}
			return sh, rest, msg.OK
		}
	}
	return nil, "", msg.ErrNoEnt
}

// Sub returns the node's protocol instance for the given server.
func (n *Node) Sub(server msg.NodeID) *client.Client { return n.subs[server] }

// Open routes an open to the owning shard and returns a node-level handle.
func (n *Node) Open(path string, write, create bool, cb func(h msg.Handle, attr msg.Attr, errno msg.Errno)) {
	sh, rest, errno := n.inst.shardFor(path)
	if errno != msg.OK {
		cb(0, msg.Attr{}, errno)
		return
	}
	n.subs[sh.ID].Open(rest, write, create, func(h msg.Handle, attr msg.Attr, e msg.Errno) {
		if e != msg.OK {
			cb(0, msg.Attr{}, e)
			return
		}
		n.nextH++
		nh := n.nextH
		n.handles[nh] = routedHandle{server: sh.ID, h: h}
		cb(nh, attr, msg.OK)
	})
}

// Read routes a block read through the owning sub-client.
func (n *Node) Read(h msg.Handle, idx uint64, cb client.DataCallback) {
	rh, ok := n.handles[h]
	if !ok {
		cb(nil, msg.ErrBadHandle)
		return
	}
	n.subs[rh.server].Read(rh.h, idx, cb)
}

// Write routes a block write through the owning sub-client.
func (n *Node) Write(h msg.Handle, idx uint64, data []byte, cb client.ErrnoCallback) {
	rh, ok := n.handles[h]
	if !ok {
		cb(msg.ErrBadHandle)
		return
	}
	n.subs[rh.server].Write(rh.h, idx, data, cb)
}

// SyncAll flushes every shard's dirty data.
func (n *Node) SyncAll(cb func()) {
	remaining := len(n.subs)
	for _, sh := range n.inst.Shards {
		sub := n.subs[sh.ID]
		sub.Sync(func(msg.Errno) {
			remaining--
			if remaining == 0 && cb != nil {
				cb()
			}
		})
	}
}

// --- synchronous conveniences (tests, experiments) ---------------------------

// Await runs the simulation until done fires or maxSim passes.
func (inst *Installation) Await(maxSim time.Duration, start func(done func())) bool {
	finished := false
	deadline := inst.Sched.Now().Add(maxSim)
	start(func() { finished = true })
	inst.Sched.RunWhile(func() bool { return !finished && !inst.Sched.Now().After(deadline) })
	return finished
}

// MustOpen opens a path on node i.
func (inst *Installation) MustOpen(i int, path string, write, create bool) msg.Handle {
	var h msg.Handle
	errno := msg.ErrStale
	inst.Await(time.Minute, func(done func()) {
		inst.Nodes[i].Open(path, write, create, func(gh msg.Handle, _ msg.Attr, e msg.Errno) {
			h, errno = gh, e
			done()
		})
	})
	if errno != msg.OK {
		panic(fmt.Sprintf("multiserver: open %s: %v", path, errno))
	}
	return h
}

// Write writes one block on node i.
func (inst *Installation) Write(i int, h msg.Handle, idx uint64, data []byte) msg.Errno {
	errno := msg.ErrStale
	inst.Await(time.Minute, func(done func()) {
		inst.Nodes[i].Write(h, idx, data, func(e msg.Errno) { errno = e; done() })
	})
	return errno
}

// Read reads one block on node i.
func (inst *Installation) Read(i int, h msg.Handle, idx uint64) ([]byte, msg.Errno) {
	var data []byte
	errno := msg.ErrStale
	inst.Await(time.Minute, func(done func()) {
		inst.Nodes[i].Read(h, idx, func(d []byte, e msg.Errno) { data, errno = d, e; done() })
	})
	return data, errno
}

// Sync flushes node i on all shards.
func (inst *Installation) Sync(i int) {
	inst.Await(time.Minute, func(done func()) { inst.Nodes[i].SyncAll(done) })
}

// RunFor advances the simulation.
func (inst *Installation) RunFor(d time.Duration) { inst.Sched.RunFor(d) }

// IsolatePair blocks the control-network link between client node i and
// server shard si only — the narrowest possible failure, invalidating
// exactly one lease.
func (inst *Installation) IsolatePair(i, si int) {
	inst.Control.Block(ClientID(i), serverID(si))
}

// HealAll removes all control partitions.
func (inst *Installation) HealAll() { inst.Control.Heal() }

// FinalCheck audits every shard's history and returns all violations.
func (inst *Installation) FinalCheck() []checker.Violation {
	var out []checker.Violation
	for _, c := range inst.Checkers {
		c.FinalCheck()
		out = append(out, c.Violations()...)
	}
	return out
}

// LeasePhases reports node i's lease phase per shard, sorted by shard.
func (inst *Installation) LeasePhases(i int) []core.Phase {
	ids := make([]int, 0, len(inst.Nodes[i].subs))
	for id := range inst.Nodes[i].subs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]core.Phase, 0, len(ids))
	for _, id := range ids {
		out = append(out, inst.Nodes[i].subs[msg.NodeID(id)].Lease().Phase())
	}
	return out
}
