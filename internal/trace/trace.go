// Package trace is the observability substrate for the lease protocol: a
// low-overhead, concurrency-safe event bus that records every
// lease-lifecycle event — phase transitions, opportunistic renewals with
// their tC1, keep-alives, NACKs, steal timers arming and firing, demand
// revocations, flush/quiesce start and drain, and fence operations — each
// stamped with the emitting node's ID, its registration epoch, and its
// own clock reading.
//
// The paper's headline claim is that normal operation costs zero
// messages, zero server memory, and zero server computation (§3); the
// trace stream turns that claim from an end-of-run counter comparison
// into a per-event assertion ("the server emitted no lease event during
// steady state", "the client's lease expired strictly before the
// server's steal") that holds on both the deterministic simulator and
// the live TCP transport. See Stream for the assertion helpers.
//
// Design notes:
//
//   - A Tracer is a fan-out point with a global sequence number. Within
//     one process the sequence totally orders events across nodes — on
//     the simulator that order is deterministic; on the live transport
//     it is assignment order under the tracer's lock, which is a valid
//     linearization because every event is emitted by the node it
//     describes at the moment it happens.
//   - Event timestamps are LOCAL clock readings (sim.Time), never a
//     shared clock: the protocol itself has no synchronized time, and
//     the trace must not pretend otherwise. Cross-node ordering comes
//     from Seq alone.
//   - A nil *Tracer is valid and silently discards events, so protocol
//     code traces unconditionally without nil checks at every call site.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/msg"
	"repro/internal/sim"
)

// Type classifies a lease-lifecycle event.
type Type uint8

const (
	// EvPhase: a client lease phase transition (From → To), covering
	// valid→renewal→suspect→flush→expired and the rejoin resets.
	EvPhase Type = iota + 1
	// EvRenew: an opportunistic renewal (§3.1) — an ACK arrived for a
	// message FIRST sent at TC1; the lease now runs [TC1, TC1+τ).
	EvRenew
	// EvKeepAlive: the client sent a NULL keep-alive (phase 2).
	EvKeepAlive
	// EvNACK: the client received a negative acknowledgment (§3.3).
	EvNACK
	// EvNACKSent: the server refused service to Peer.
	EvNACKSent
	// EvStealArmed: the authority observed a delivery failure for Peer
	// and armed the τ(1+ε) steal timer (the first lease state the server
	// has held for this client).
	EvStealArmed
	// EvStealFired: Peer's locks were stolen — the timer elapsed, the
	// client's own rejoin made the steal safe early, or a baseline
	// policy's recovery ran (Note names the path).
	EvStealFired
	// EvDemand: the server (re)sent a lock demand for Ino to Peer.
	EvDemand
	// EvDemandRecv: the client received a demand for Ino from Peer.
	EvDemandRecv
	// EvDemandFailed: a demand to Peer went unacknowledged through its
	// retries — the delivery error that activates the recovery policy.
	EvDemandFailed
	// EvQuiesce: the client stopped admitting new operations (phase 3).
	EvQuiesce
	// EvFlushStart: a flush of dirty data began (phase 4, or demand
	// compliance for one object — Note distinguishes).
	EvFlushStart
	// EvFlushDone: the flush drained to the SAN.
	EvFlushDone
	// EvExpire: the client's lease expired; cache and locks are invalid.
	EvExpire
	// EvFence: the server set (On=true) or lifted (On=false) the SAN
	// fence for Peer.
	EvFence
	// EvRejoin: the server granted Peer a fresh registration epoch.
	EvRejoin
	// EvReassert: the server accepted Peer's lock reassertion (§6).
	EvReassert
	// EvTransport: a live-transport diagnostic (dial/read failure,
	// accepted connection); Note holds the detail.
	EvTransport
	// EvDisk: a disk-media durability event. Note names the occurrence:
	// "recovered" (open-time recovery pass, with journal/verified/torn
	// counts), "fence-replay" (a fence for Peer restored from the
	// journal), "torn" (Block failed its checksum during recovery),
	// "torn-read" (a torn Block was asked for and refused), and
	// "media-error" (an I/O failure answering for Block).
	EvDisk
	// EvPrefetch: the client detected a sequential scan on Ino and
	// issued a read-ahead batch starting at file-block Block; Note
	// carries the batch width ("window=N"). Prefetch is an optimization
	// on top of the data path, never a protocol step: the batch runs
	// under the same lock/lease gating as a demand read.
	EvPrefetch
	// EvShardHandoff: a source shard began migrating Ino to Peer for a
	// cross-shard rename; Note carries the durable handoff id ("hid=N").
	EvShardHandoff
	// EvShardInstall: a destination shard installed an object received
	// from Peer; Ino is the fresh local inode, Note the handoff id.
	EvShardInstall
	// EvShardDone: the source shard completed a handoff — the object now
	// lives at Peer and the local copy is unlinked; Note the handoff id.
	EvShardDone
	// EvShardAbort: the destination refused a handoff and the source
	// shard kept ownership of Ino; Note carries the handoff id and errno.
	EvShardAbort
	// EvReplicaBallotOpen: a replica opened a PaxosLease ballot (Epoch
	// carries the ballot number) and sent prepares to the group.
	EvReplicaBallotOpen
	// EvReplicaPromise: an acceptor promised ballot Epoch to Peer; Note
	// is "accepted=nK holder" when the promise carried live accepted
	// state, "reject" when the ballot was refused.
	EvReplicaPromise
	// EvReplicaPropose: a candidate with a promised majority proposed
	// itself as lease holder under ballot Epoch.
	EvReplicaPropose
	// EvReplicaLeaseGranted: a majority accepted — the replica holds the
	// authority lease under ballot Epoch. TC1 is the conservative lease
	// start (captured before the prepare was sent); the lease runs
	// [TC1, TC1+term) on the holder's clock. Note is "renew" for
	// extensions of a lease already held.
	EvReplicaLeaseGranted
	// EvReplicaStepdown: the holder's lease lapsed without a successful
	// extension (or it observed a higher ballot) and it stopped acting as
	// the authority.
	EvReplicaStepdown
	// EvReplicaTakeover: a replica activated as the shard's lease
	// authority and entered service; Note is "cold" for a first boot with
	// no prior client registrations, "grace" when the activation opened a
	// §6 grace-period recovery window, and "grace-end" marks the same
	// node leaving that window.
	EvReplicaTakeover
)

var typeNames = [...]string{
	EvPhase:        "phase",
	EvRenew:        "renew",
	EvKeepAlive:    "keepalive",
	EvNACK:         "nack",
	EvNACKSent:     "nack-sent",
	EvStealArmed:   "steal-armed",
	EvStealFired:   "steal-fired",
	EvDemand:       "demand",
	EvDemandRecv:   "demand-recv",
	EvDemandFailed: "demand-failed",
	EvQuiesce:      "quiesce",
	EvFlushStart:   "flush-start",
	EvFlushDone:    "flush-done",
	EvExpire:       "expire",
	EvFence:        "fence",
	EvRejoin:       "rejoin",
	EvReassert:     "reassert",
	EvTransport:    "transport",
	EvDisk:         "disk",
	EvPrefetch:     "prefetch",
	EvShardHandoff: "shard-handoff",
	EvShardInstall: "shard-install",
	EvShardDone:    "shard-done",
	EvShardAbort:   "shard-abort",

	EvReplicaBallotOpen:   "replica-ballot-open",
	EvReplicaPromise:      "replica-promise",
	EvReplicaPropose:      "replica-propose",
	EvReplicaLeaseGranted: "replica-lease-granted",
	EvReplicaStepdown:     "replica-stepdown",
	EvReplicaTakeover:     "replica-takeover",
}

func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// MarshalJSON renders the type as its name, keeping JSONL streams
// readable and stable across taxonomy reordering.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON parses a type name back to its value, so JSONL streams
// written by one process (a crashed disk node, a tankd run) can be
// decoded and asserted on by another.
func (t *Type) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("trace: event type %s is not a string", b)
	}
	name := string(b[1 : len(b)-1])
	for v, n := range typeNames {
		if n == name && n != "" {
			*t = Type(v)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event type %q", name)
}

// Event is one lease-lifecycle occurrence. Node, Time, and Epoch are the
// mandatory stamp (who, when on whose clock, under which registration);
// the remaining fields are type-specific and zero when inapplicable.
type Event struct {
	// Seq is the tracer-assigned global sequence number: the only
	// cross-node order in the stream.
	Seq uint64 `json:"seq"`
	// Type classifies the event.
	Type Type `json:"type"`
	// Node is the participant the event happened AT (not necessarily the
	// one it is about — see Peer).
	Node msg.NodeID `json:"node"`
	// Time is Node's own clock reading: deterministic simulated time
	// under internal/sim, wall-clock nanoseconds under internal/rpcnet.
	Time sim.Time `json:"t"`
	// Epoch is Node's registration epoch at emission (0 = unregistered
	// or not applicable).
	Epoch msg.Epoch `json:"epoch,omitempty"`
	// Peer is the other party, when the event concerns one (the suspect
	// client for server events, the server for client events).
	Peer msg.NodeID `json:"peer,omitempty"`
	// Ino is the object, for demand and per-object flush events.
	Ino msg.ObjectID `json:"ino,omitempty"`
	// Block is the disk block, for EvDisk media events.
	Block uint64 `json:"block,omitempty"`
	// From and To are phase names for EvPhase.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// TC1 is the renewal's first-send time (EvRenew), on Node's clock.
	TC1 sim.Time `json:"tc1,omitempty"`
	// On is the fence direction for EvFence.
	On bool `json:"on,omitempty"`
	// Note carries free-form detail ("retry", "rejoin", policy names,
	// transport diagnostics).
	Note string `json:"note,omitempty"`
}

// String renders the event compactly for logs.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %v %s t=%v", e.Seq, e.Node, e.Type, e.Time)
	if e.Epoch != 0 {
		s += fmt.Sprintf(" epoch=%d", e.Epoch)
	}
	if e.Peer != msg.None {
		s += fmt.Sprintf(" peer=%v", e.Peer)
	}
	if e.Ino != 0 {
		s += fmt.Sprintf(" %v", e.Ino)
	}
	if e.Type == EvDisk && e.Block != 0 {
		s += fmt.Sprintf(" block=%d", e.Block)
	}
	if e.Type == EvPhase {
		s += fmt.Sprintf(" %s→%s", e.From, e.To)
	}
	if e.Type == EvRenew {
		s += fmt.Sprintf(" tC1=%v", e.TC1)
	}
	if e.Type == EvFence {
		if e.On {
			s += " on"
		} else {
			s += " off"
		}
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Sink consumes events. Record is called under the tracer's emission
// lock, in sequence order; implementations must not call back into the
// tracer. Sinks shared between tracers must synchronize themselves.
type Sink interface {
	Record(Event)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(Event)

// Record calls f.
func (f SinkFunc) Record(e Event) { f(e) }

// Tracer is the event bus: it assigns the global sequence and fans each
// event out to the attached sinks. All methods are safe for concurrent
// use from any goroutine, and all are no-ops on a nil receiver, so a
// component holding an optional tracer never branches.
type Tracer struct {
	mu    sync.Mutex
	seq   uint64
	sinks []Sink
	// active mirrors len(sinks) > 0 without taking the lock, so Emit on
	// a sink-less tracer is one atomic load.
	active atomic.Bool
}

// New creates a tracer fanning out to the given sinks.
func New(sinks ...Sink) *Tracer {
	t := &Tracer{sinks: sinks}
	t.active.Store(len(sinks) > 0)
	return t
}

// Attach adds a sink. Events emitted before Attach are not replayed.
func (t *Tracer) Attach(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.active.Store(true)
	t.mu.Unlock()
}

// Enabled reports whether any sink is attached. Callers may use it to
// skip expensive event construction; Emit itself is always safe.
func (t *Tracer) Enabled() bool { return t != nil && t.active.Load() }

// Emit stamps e with the next sequence number and delivers it to every
// sink. The caller fills all other fields; Emit never blocks on I/O the
// sinks don't perform themselves.
func (t *Tracer) Emit(e Event) {
	if t == nil || !t.active.Load() {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	for _, s := range t.sinks {
		s.Record(e)
	}
	t.mu.Unlock()
}
