package trace

import (
	"fmt"
	"strings"

	"repro/internal/msg"
)

// Stream is a slice of events in sequence order, with the query and
// assertion helpers tests use to state protocol invariants against the
// event record instead of poking component internals.
type Stream []Event

// Pred selects events.
type Pred func(Event) bool

// ByType matches any of the given types.
func ByType(types ...Type) Pred {
	return func(e Event) bool {
		for _, t := range types {
			if e.Type == t {
				return true
			}
		}
		return false
	}
}

// ByNode matches events emitted at node n.
func ByNode(n msg.NodeID) Pred {
	return func(e Event) bool { return e.Node == n }
}

// ByPeer matches events about peer p.
func ByPeer(p msg.NodeID) Pred {
	return func(e Event) bool { return e.Peer == p }
}

// ByNote matches events whose Note is exactly note — e.g. a specific
// drop reason's canonical note on EvTransport events.
func ByNote(note string) Pred {
	return func(e Event) bool { return e.Note == note }
}

// ByNotePrefix matches events whose Note starts with prefix — e.g.
// "drop:" selects every fault-induced transport drop regardless of
// reason.
func ByNotePrefix(prefix string) Pred {
	return func(e Event) bool { return strings.HasPrefix(e.Note, prefix) }
}

// And conjoins predicates.
func And(preds ...Pred) Pred {
	return func(e Event) bool {
		for _, p := range preds {
			if !p(e) {
				return false
			}
		}
		return true
	}
}

// Filter returns the events matching every predicate, preserving order.
func (s Stream) Filter(preds ...Pred) Stream {
	p := And(preds...)
	var out Stream
	for _, e := range s {
		if p(e) {
			out = append(out, e)
		}
	}
	return out
}

// First returns the earliest (lowest-Seq) matching event.
func (s Stream) First(preds ...Pred) (Event, bool) {
	p := And(preds...)
	for _, e := range s {
		if p(e) {
			return e, true
		}
	}
	return Event{}, false
}

// Last returns the latest matching event.
func (s Stream) Last(preds ...Pred) (Event, bool) {
	p := And(preds...)
	for i := len(s) - 1; i >= 0; i-- {
		if p(s[i]) {
			return s[i], true
		}
	}
	return Event{}, false
}

// Count returns how many events match.
func (s Stream) Count(preds ...Pred) int {
	return len(s.Filter(preds...))
}

// Precedes checks the ordering invariant "the first event matching a
// occurs strictly before the first event matching b" (by global
// sequence). It returns a descriptive error when either side is missing
// or the order is violated — the shape Theorem 3.1 assertions take:
//
//	err := events.Precedes(
//	    trace.And(trace.ByNode(client), trace.ByType(trace.EvExpire)),
//	    trace.And(trace.ByNode(server), trace.ByType(trace.EvStealFired)))
func (s Stream) Precedes(a, b Pred) error {
	ea, oka := s.First(a)
	eb, okb := s.First(b)
	switch {
	case !oka && !okb:
		return fmt.Errorf("trace: neither event present in %d-event stream", len(s))
	case !oka:
		return fmt.Errorf("trace: antecedent missing (consequent: %s)", eb)
	case !okb:
		return fmt.Errorf("trace: consequent missing (antecedent: %s)", ea)
	case ea.Seq >= eb.Seq:
		return fmt.Errorf("trace: ordering violated: %s does not precede %s", ea, eb)
	}
	return nil
}

// None checks the absence invariant "no event matches" — the shape the
// paper's zero-cost claim takes ("no server-side lease event during
// steady state"). It returns an error naming the first offender.
func (s Stream) None(preds ...Pred) error {
	if e, ok := s.First(preds...); ok {
		return fmt.Errorf("trace: unexpected event %s (of %d matching)", e, s.Count(preds...))
	}
	return nil
}

// PhaseSequence extracts the phase names node passed through, in order:
// the To field of each of its EvPhase events.
func (s Stream) PhaseSequence(node msg.NodeID) []string {
	var out []string
	for _, e := range s.Filter(ByNode(node), ByType(EvPhase)) {
		out = append(out, e.To)
	}
	return out
}

// HasSubsequence reports whether want appears within got in order
// (not necessarily contiguously).
func HasSubsequence(got, want []string) bool {
	i := 0
	for _, g := range got {
		if i < len(want) && g == want[i] {
			i++
		}
	}
	return i == len(want)
}
