package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/msg"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: EvRenew})
	tr.Attach(NewRing(4))
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
}

func TestSinklessTracerDiscards(t *testing.T) {
	tr := New()
	if tr.Enabled() {
		t.Fatal("sink-less tracer reports enabled")
	}
	tr.Emit(Event{Type: EvRenew})
	r := NewRing(4)
	tr.Attach(r)
	if !tr.Enabled() {
		t.Fatal("tracer with sink reports disabled")
	}
	tr.Emit(Event{Type: EvExpire})
	evs := r.Events()
	if len(evs) != 1 || evs[0].Type != EvExpire {
		t.Fatalf("events = %v", evs)
	}
	// Seq keeps counting even while discarded? No: discarded events get
	// no sequence number — the stream the sinks see is gapless.
	if evs[0].Seq != 1 {
		t.Fatalf("first recorded seq = %d, want 1", evs[0].Seq)
	}
}

func TestSeqTotalOrderUnderConcurrency(t *testing.T) {
	r := NewRing(10000)
	tr := New(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Type: EvRenew, Node: msg.NodeID(node)})
			}
		}(g + 1)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != 4000 {
		t.Fatalf("recorded %d events, want 4000", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d: not gapless/ordered", i, e.Seq)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	tr := New(r)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Type: EvKeepAlive})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d, want 3", len(evs))
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("ring kept seqs %d..%d, want 3..5", evs[0].Seq, evs[2].Seq)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	tr.Emit(Event{Type: EvPhase, Node: 10, Epoch: 2, From: "valid", To: "renewal"})
	tr.Emit(Event{Type: EvStealArmed, Node: 1, Peer: 10})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "phase" || m["from"] != "valid" || m["to"] != "renewal" {
		t.Fatalf("decoded = %v", m)
	}
	if m["epoch"].(float64) != 2 {
		t.Fatalf("epoch = %v", m["epoch"])
	}
}

func TestLogfSink(t *testing.T) {
	var got []string
	tr := New(NewLogf(func(format string, args ...any) {
		got = append(got, format)
	}))
	tr.Emit(Event{Type: EvFence, Node: 1, Peer: 10, On: true})
	if len(got) != 1 {
		t.Fatalf("logf called %d times", len(got))
	}
}

func TestStreamQueriesAndAssertions(t *testing.T) {
	s := Stream{
		{Seq: 1, Node: 10, Type: EvPhase, From: "none", To: "valid"},
		{Seq: 2, Node: 10, Type: EvPhase, From: "valid", To: "renewal"},
		{Seq: 3, Node: 10, Type: EvKeepAlive},
		{Seq: 4, Node: 10, Type: EvPhase, From: "renewal", To: "suspect"},
		{Seq: 5, Node: 10, Type: EvExpire},
		{Seq: 6, Node: 1, Type: EvStealFired, Peer: 10},
	}
	if n := s.Count(ByNode(10)); n != 5 {
		t.Fatalf("Count(node 10) = %d", n)
	}
	if err := s.Precedes(
		And(ByNode(10), ByType(EvExpire)),
		And(ByNode(1), ByType(EvStealFired))); err != nil {
		t.Fatalf("Precedes: %v", err)
	}
	if err := s.Precedes(ByType(EvStealFired), ByType(EvExpire)); err == nil {
		t.Fatal("reversed Precedes passed")
	}
	if err := s.Precedes(ByType(EvRenew), ByType(EvExpire)); err == nil {
		t.Fatal("missing antecedent passed")
	}
	if err := s.None(ByType(EvNACK)); err != nil {
		t.Fatalf("None: %v", err)
	}
	if err := s.None(ByType(EvKeepAlive)); err == nil {
		t.Fatal("None missed a keep-alive")
	}
	phases := s.PhaseSequence(10)
	if !HasSubsequence(phases, []string{"valid", "renewal", "suspect"}) {
		t.Fatalf("phases = %v", phases)
	}
	if HasSubsequence(phases, []string{"suspect", "valid"}) {
		t.Fatal("out-of-order subsequence accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Node: 10, Type: EvPhase, From: "valid", To: "renewal", Epoch: 3}
	if s := e.String(); !strings.Contains(s, "valid→renewal") || !strings.Contains(s, "epoch=3") {
		t.Fatalf("String = %q", s)
	}
}
