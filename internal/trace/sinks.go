package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// Ring is a fixed-capacity in-memory sink that keeps the most recent
// events: the default instrument for tests and for the live server's
// on-signal dump. It is safe for concurrent Record/Events.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing creates a ring keeping up to capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record stores the event, evicting the oldest when full.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() Stream {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append(Stream(nil), r.buf[:r.next]...)
	}
	out := make(Stream, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events were ever recorded (≥ len(Events())).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// JSONL writes each event as one JSON object per line — the live
// deployment's durable trace format (cmd/tankd -trace). It is safe for
// concurrent use; write errors latch and silence the sink rather than
// disturb the protocol.
type JSONL struct {
	mu   sync.Mutex
	enc  *json.Encoder
	dead bool
}

// NewJSONL creates a JSONL sink on w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Record encodes the event as one line.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	if !j.dead {
		if err := j.enc.Encode(e); err != nil {
			j.dead = true
		}
	}
	j.mu.Unlock()
}

// NewLogf adapts a printf-style logger into a sink: the tracer-backed
// structured replacement for the deprecated rpcnet Transport.SetLogf.
// Every event renders through Event.String, so a plain log.Printf gives
// a readable, totally ordered protocol narrative.
func NewLogf(logf func(format string, args ...any)) Sink {
	return SinkFunc(func(e Event) { logf("trace: %s", e) })
}
