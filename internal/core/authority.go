package core

import (
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AuthorityActions is how the passive lease authority drives its owner
// (the metadata server) when a lease times out.
type AuthorityActions interface {
	// StealLocks is called when the timeout τ(1+ε) elapses: the client's
	// lease has provably expired on its own clock, so its locks may be
	// stolen and redistributed. The owner also erects the fence here
	// (§6: fencing backs up the lease against rate-desynchronized
	// "slow" computers).
	StealLocks(client msg.NodeID)
}

// suspectState tracks one client the server has observed a delivery
// failure for. This struct existing at all is the exception: during
// normal operation the Authority holds no per-client state whatsoever.
type suspectState struct {
	timer   sim.Timer
	expired bool // timer fired; locks stolen; waiting for Rejoin
}

// suspectStateBytes approximates the authority's per-suspect memory cost,
// reported by the server-state experiments (T1).
const suspectStateBytes = 48

// Authority is the server half of the protocol (§3). Its key property is
// passivity: it keeps no lease state, performs no lease computation, and
// sends no lease messages while all clients are reachable. The server
// calls:
//
//   - Allow(client) on every incoming request — a map lookup in an empty
//     map during normal operation — to decide ACK vs NACK;
//   - OnDeliveryFailure(client) when a server-initiated message (a
//     Demand) goes unacknowledged through its retries;
//   - OnRejoin(client) when a recovering client re-registers.
type Authority struct {
	cfg      Config
	clock    sim.Clock
	act      AuthorityActions
	env      Env
	suspects map[msg.NodeID]*suspectState

	// Instrumentation: ops counts every lease-specific action the server
	// performs; stateBytes gauges lease memory. Both stay at zero during
	// failure-free runs — that is the paper's headline claim and
	// experiment T1 reads these exact counters.
	ops        *stats.Counter
	stateBytes *stats.Gauge
	timeouts   *stats.Counter
	steals     *stats.Counter
}

// NewAuthority creates a passive authority. env supplies the registry,
// tracer, and the identity stamped on emitted events.
func NewAuthority(cfg Config, clock sim.Clock, act AuthorityActions, env Env) *Authority {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env = env.withDefaults()
	return &Authority{
		cfg:        cfg,
		clock:      clock,
		act:        act,
		env:        env,
		suspects:   make(map[msg.NodeID]*suspectState),
		ops:        env.counter("authority.ops"),
		stateBytes: env.gauge("authority.state_bytes"),
		timeouts:   env.counter("authority.timeouts_started"),
		steals:     env.counter("authority.locks_stolen"),
	}
}

// Allow reports whether the server may ACK (and execute) a request from
// client. It is false from the moment a lease timeout starts until the
// client rejoins: §3 — "we require the server not to ACK messages if it
// has already started a counter to expire client locks", and §3.3 — the
// server NACKs valid requests from suspect clients so they enter recovery
// immediately instead of wasting retries.
func (a *Authority) Allow(client msg.NodeID) bool {
	if len(a.suspects) == 0 {
		return true // the entire protocol cost during normal operation
	}
	_, suspect := a.suspects[client]
	return !suspect
}

// OnDeliveryFailure reports that a message requiring an ACK went
// unacknowledged after retries. The authority starts the τ(1+ε) timer —
// measured on the server's clock — after which the client's own lease,
// which began no later than this instant, must have expired (Thm 3.1).
// Repeated failures for the same client are idempotent.
func (a *Authority) OnDeliveryFailure(client msg.NodeID) {
	if _, ok := a.suspects[client]; ok {
		return
	}
	a.ops.Inc()
	a.timeouts.Inc()
	st := &suspectState{}
	a.suspects[client] = st
	a.stateBytes.Set(int64(len(a.suspects)) * suspectStateBytes)
	a.env.emit(a.clock, trace.Event{Type: trace.EvStealArmed, Peer: client})
	st.timer = a.clock.AfterFunc(a.cfg.StealDelay(), func() {
		a.ops.Inc()
		a.steals.Inc()
		st.expired = true
		st.timer = nil
		a.env.emit(a.clock, trace.Event{Type: trace.EvStealFired, Peer: client, Note: "timeout"})
		a.act.StealLocks(client)
	})
}

// OnRejoin processes a recovering client's re-registration and reports
// whether the rejoin is accepted. A Rejoin declares that the client has
// completed its lease recovery: its cache is discarded and it claims no
// locks. If the steal timer is still running, the declaration makes the
// steal safe immediately — the authority cancels the timer and steals
// now. Rejoin of a client in good standing is also accepted (fresh boot).
func (a *Authority) OnRejoin(client msg.NodeID) bool {
	st, ok := a.suspects[client]
	if !ok {
		return true
	}
	a.ops.Inc()
	if st.timer != nil {
		st.timer.Stop()
		// The client itself told us it holds nothing: steal/cleanup now.
		a.ops.Inc()
		a.steals.Inc()
		a.env.emit(a.clock, trace.Event{Type: trace.EvStealFired, Peer: client, Note: "rejoin"})
		a.act.StealLocks(client)
	}
	delete(a.suspects, client)
	a.stateBytes.Set(int64(len(a.suspects)) * suspectStateBytes)
	return true
}

// Suspect reports whether client is currently suspect or expired.
func (a *Authority) Suspect(client msg.NodeID) bool {
	_, ok := a.suspects[client]
	return ok
}

// Expired reports whether the client's lease timed out and its locks were
// stolen (it must Rejoin).
func (a *Authority) Expired(client msg.NodeID) bool {
	st, ok := a.suspects[client]
	return ok && st.expired
}

// SuspectCount returns the number of clients with live lease state — zero
// whenever the installation is healthy.
func (a *Authority) SuspectCount() int { return len(a.suspects) }

// StateBytes returns the authority's current lease-state memory.
func (a *Authority) StateBytes() int64 { return int64(len(a.suspects)) * suspectStateBytes }
