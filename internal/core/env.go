package core

import (
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Env bundles the cross-cutting facilities a core component is
// instantiated with: the metrics registry, the name prefix its
// instruments live under, the trace bus, and the identity stamped onto
// every event it emits. The zero Env is valid — a private registry and
// no tracing — so tests and baselines construct components with Env{}.
type Env struct {
	// Reg receives the component's counters and gauges (nil = private
	// registry, readable only through the component itself).
	Reg *stats.Registry
	// Prefix namespaces the instruments ("client.n10.", "server.").
	Prefix string
	// Tracer receives lease-lifecycle events (nil = tracing off).
	Tracer *trace.Tracer
	// Node is the identity stamped on emitted events.
	Node msg.NodeID
	// Epoch, when set, supplies the registration epoch stamped on
	// events (the channel's current epoch, on clients).
	Epoch func() msg.Epoch
	// Peer, when set, is the default counterpart stamped on events that
	// do not name one themselves. Sharded clients set it to the lease
	// authority a sub-channel talks to, so per-shard trace queries can
	// attribute client-side events (expiry, phase changes) to the one
	// server whose steal clock they race.
	Peer msg.NodeID
}

// withDefaults fills the registry so components never nil-check it.
func (e Env) withDefaults() Env {
	if e.Reg == nil {
		e.Reg = stats.NewRegistry()
	}
	return e
}

// counter creates the prefixed counter.
func (e Env) counter(name string) *stats.Counter {
	return e.Reg.Counter(e.Prefix + name)
}

// gauge creates the prefixed gauge.
func (e Env) gauge(name string) *stats.Gauge {
	return e.Reg.Gauge(e.Prefix + name)
}

// emit stamps ev with the component's identity and clock reading and
// hands it to the tracer. Safe (and free) when no tracer is attached.
func (e Env) emit(clock sim.Clock, ev trace.Event) {
	if !e.Tracer.Enabled() {
		return
	}
	ev.Node = e.Node
	ev.Time = clock.Now()
	if ev.Epoch == 0 && e.Epoch != nil {
		ev.Epoch = e.Epoch()
	}
	if ev.Peer == 0 {
		ev.Peer = e.Peer
	}
	e.Tracer.Emit(ev)
}
