package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// wire captures messages sent by the channel.
type wire struct {
	sent []msg.Message
}

func (w *wire) send(to msg.NodeID, m msg.Message) { w.sent = append(w.sent, m) }

func newChan(t *testing.T) (*sim.Scheduler, *wire, *Channel, *stats.Registry) {
	t.Helper()
	s := sim.NewScheduler(5)
	w := &wire{}
	reg := stats.NewRegistry()
	c := NewChannel(3, 1, testCfg(), s.NewClock(1, 0), w.send, nil, Env{Reg: reg, Prefix: "c3."})
	return s, w, c, reg
}

func TestCallFillsHeaderAndSends(t *testing.T) {
	_, w, c, _ := newChan(t)
	c.SetEpoch(7)
	req := &msg.Lookup{Path: "/x"}
	id := c.Call(req, nil)
	if req.Client != 3 || req.Req != id || req.Epoch != 7 {
		t.Fatalf("header = %+v", req.ReqHeader)
	}
	if len(w.sent) != 1 || w.sent[0] != req {
		t.Fatal("request not sent")
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d", c.Pending())
	}
}

func TestRetriesUntilReply(t *testing.T) {
	s, w, c, reg := newChan(t)
	id := c.Call(&msg.KeepAlive{}, nil)
	s.RunUntil(sim.Time(350 * time.Millisecond)) // 3 retries at 100ms interval
	if len(w.sent) != 4 {
		t.Fatalf("sent = %d, want 1 original + 3 retries", len(w.sent))
	}
	c.HandleReply(&msg.Reply{Client: 3, Req: id, Status: msg.ACK})
	s.RunUntil(sim.Time(time.Second))
	if len(w.sent) != 4 {
		t.Fatal("retries continued after reply")
	}
	if reg.CounterValue("c3.chan.retries") != 3 || reg.CounterValue("c3.chan.acks") != 1 {
		t.Fatal("retry/ack counters wrong")
	}
}

func TestReplyDispatchAndDuplicateDrop(t *testing.T) {
	_, _, c, _ := newChan(t)
	var got *msg.Reply
	calls := 0
	id := c.Call(&msg.GetAttr{Ino: 9}, func(r *msg.Reply) { got = r; calls++ })
	r := &msg.Reply{Client: 3, Req: id, Status: msg.ACK, Err: msg.OK, Body: msg.AttrRes{Attr: msg.Attr{Ino: 9}}}
	c.HandleReply(r)
	c.HandleReply(r) // duplicate
	c.HandleReply(&msg.Reply{Client: 3, Req: 999, Status: msg.ACK})
	if calls != 1 || got != r {
		t.Fatalf("callback calls = %d", calls)
	}
	if c.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestACKRenewsLeaseFromFirstSend(t *testing.T) {
	s := sim.NewScheduler(5)
	w := &wire{}
	reg := stats.NewRegistry()
	rec := &actionsRec{s: s, autoFlush: true}
	lease := NewLeaseClient(testCfg(), s.NewClock(1, 0), rec, Env{Reg: reg, Prefix: "c3."})
	c := NewChannel(3, 1, testCfg(), s.NewClock(1, 0), w.send, lease, Env{Reg: reg, Prefix: "c3."})

	// Send at t=1s; reply arrives at t=3s after retries. The lease must
	// start from 1s (first send), not from any retry time.
	s.At(sim.Time(time.Second), func() {
		id := c.Call(&msg.KeepAlive{}, nil)
		s.At(sim.Time(3*time.Second), func() {
			c.HandleReply(&msg.Reply{Client: 3, Req: id, Status: msg.ACK})
		})
	})
	s.RunUntil(sim.Time(3 * time.Second))
	if lease.Phase() != Phase1Valid {
		t.Fatalf("phase = %v", lease.Phase())
	}
	if lease.Start() != sim.Time(time.Second) {
		t.Fatalf("lease start = %v, want 1s (tC1 of first attempt)", lease.Start())
	}
}

func TestNACKNotifiesLease(t *testing.T) {
	s := sim.NewScheduler(5)
	w := &wire{}
	reg := stats.NewRegistry()
	rec := &actionsRec{s: s, autoFlush: true}
	lease := NewLeaseClient(testCfg(), s.NewClock(1, 0), rec, Env{Reg: reg, Prefix: "c3."})
	c := NewChannel(3, 1, testCfg(), s.NewClock(1, 0), w.send, lease, Env{Reg: reg, Prefix: "c3."})
	lease.Renewed(0)
	var got *msg.Reply
	id := c.Call(&msg.Lookup{Path: "/x"}, func(r *msg.Reply) { got = r })
	c.HandleReply(&msg.Reply{Client: 3, Req: id, Status: msg.NACK})
	if lease.Phase() != Phase3Suspect {
		t.Fatalf("lease phase = %v after NACK", lease.Phase())
	}
	if got == nil || got.Status != msg.NACK {
		t.Fatal("callback did not see the NACK")
	}
}

func TestCancelAll(t *testing.T) {
	s, w, c, _ := newChan(t)
	var replies []*msg.Reply
	c.Call(&msg.KeepAlive{}, func(r *msg.Reply) { replies = append(replies, r) })
	c.Call(&msg.GetAttr{Ino: 1}, func(r *msg.Reply) { replies = append(replies, r) })
	c.CancelAll()
	if len(replies) != 2 || replies[0] != nil || replies[1] != nil {
		t.Fatalf("cancelled callbacks got %v", replies)
	}
	if c.Pending() != 0 {
		t.Fatal("pending after CancelAll")
	}
	before := len(w.sent)
	s.RunUntil(sim.Time(time.Second))
	if len(w.sent) != before {
		t.Fatal("retries continued after CancelAll")
	}
}

func TestReqIDsMonotonic(t *testing.T) {
	_, _, c, _ := newChan(t)
	a := c.Call(&msg.KeepAlive{}, nil)
	b := c.Call(&msg.KeepAlive{}, nil)
	if b <= a {
		t.Fatalf("req ids not increasing: %d then %d", a, b)
	}
	if c.Server() != 1 {
		t.Fatal("Server() wrong")
	}
}

// TestChannelAtMostOnceUnderLossProperty drives a channel and a reply
// cache through a lossy link: whatever the loss pattern, every request
// executes at most once at the server and completes exactly once at the
// client.
func TestChannelAtMostOnceUnderLossProperty(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%60) / 100.0 // 0..59% loss
		s := sim.NewScheduler(seed)
		rng := s.Rand()
		reg := stats.NewRegistry()
		rc := NewReplyCache(64, reg, "srv.")

		executions := make(map[msg.ReqID]int)
		var deliverToClient func(r *msg.Reply)

		// Server: admit through the reply cache, execute, reply over the
		// lossy link.
		serverRecv := func(req msg.Request) {
			h := req.Hdr()
			disp, cached := rc.Admit(h.Client, h.Req)
			var reply *msg.Reply
			switch disp {
			case Execute:
				executions[h.Req]++
				reply = &msg.Reply{Client: h.Client, Req: h.Req, Status: msg.ACK}
				rc.Complete(h.Client, h.Req, reply)
			case Resend:
				reply = cached
			case Absorb:
				return
			}
			if rng.Float64() >= loss { // reply survives
				r := reply
				s.After(time.Millisecond, func() { deliverToClient(r) })
			}
		}

		cfg := testCfg()
		cfg.RetryInterval = 5 * time.Millisecond
		ch := NewChannel(3, 1, cfg, s.NewClock(1, 0), func(to msg.NodeID, m msg.Message) {
			if rng.Float64() >= loss { // request survives
				req := m.(msg.Request)
				s.After(time.Millisecond, func() { serverRecv(req) })
			}
		}, nil, Env{Reg: reg, Prefix: "c."})
		deliverToClient = ch.HandleReply

		const calls = 25
		completions := make(map[msg.ReqID]int)
		for i := 0; i < calls; i++ {
			i := i
			s.After(time.Duration(i)*10*time.Millisecond, func() {
				var id msg.ReqID
				id = ch.Call(&msg.KeepAlive{}, func(r *msg.Reply) {
					if r == nil || r.Status != msg.ACK {
						t.Errorf("unexpected outcome %v", r)
					}
					completions[id]++
				})
			})
		}
		s.RunUntil(sim.Time(time.Minute))

		for id, n := range executions {
			if n != 1 {
				t.Logf("req %d executed %d times", id, n)
				return false
			}
		}
		if len(completions) != calls {
			t.Logf("completions = %d, want %d", len(completions), calls)
			return false
		}
		for id, n := range completions {
			if n != 1 {
				t.Logf("req %d completed %d times", id, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
