package core

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LeaseActions is how the lease state machine drives its owner (the
// file-system client). All callbacks run on the owner's executor.
type LeaseActions interface {
	// SendKeepAlive sends the NULL renewal message (phase 2). The ACK, if
	// any, flows back through Renewed like every other ACK.
	SendKeepAlive()
	// Quiesce begins phase 3: stop accepting new file-system requests;
	// in-progress operations drain until phase 4.
	Quiesce()
	// Flush begins phase 4: write all dirty data covered by this lease's
	// locks to the SAN. Call done when the flush completes.
	Flush(done func())
	// Expired ends the lease: the cache (data and metadata) is invalid,
	// all locks are ceded, and the owner should initiate Rejoin.
	Expired()
	// PhaseChange reports every transition, for tracing and experiments.
	PhaseChange(from, to Phase)
}

// LeaseClient is the client half of the protocol: one per
// (client, server) pair. It is driven by three inputs — Renewed (an ACK
// arrived for a message first sent at tC1), NACKed (the server refused
// service), and its own clock — and walks the owner through the four
// phases of Fig 4.
type LeaseClient struct {
	cfg   Config
	clock sim.Clock
	act   LeaseActions
	env   Env

	phase Phase
	// start is tC1 of the message that obtained the current lease, on the
	// client's clock. The lease is valid for [start, start+τ).
	start sim.Time
	// nacked records that the current recovery was entered via NACK, so
	// late ACKs cannot revive it even with AllowLateRenewal.
	nacked bool
	// flushed records completion of the phase-4 flush.
	flushed bool

	timer   sim.Timer // next phase boundary
	kaTimer sim.Timer // keep-alive repetition in phase 2

	// Instrumentation.
	renewals   *stats.Counter // opportunistic renewals (any ACK)
	keepalives *stats.Counter // keep-alive messages sent
	nacks      *stats.Counter
	expiries   *stats.Counter
	dirtyAtEnd *stats.Counter // expiries with the flush still incomplete
}

// NewLeaseClient creates the state machine in PhaseNone. It does nothing
// until the first Renewed. env supplies the registry, tracer, and the
// identity stamped on emitted events.
func NewLeaseClient(cfg Config, clock sim.Clock, act LeaseActions, env Env) *LeaseClient {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env = env.withDefaults()
	return &LeaseClient{
		cfg:        cfg,
		clock:      clock,
		act:        act,
		env:        env,
		renewals:   env.counter("lease.renewals"),
		keepalives: env.counter("lease.keepalives"),
		nacks:      env.counter("lease.nacks"),
		expiries:   env.counter("lease.expiries"),
		dirtyAtEnd: env.counter("lease.dirty_at_expiry"),
	}
}

// Phase returns the current phase.
func (l *LeaseClient) Phase() Phase { return l.phase }

// Valid reports whether cached data may be served and new operations
// accepted: the paper's contract allows servicing local processes in
// phases 1 and 2 only.
func (l *LeaseClient) Valid() bool {
	return l.phase == Phase1Valid || l.phase == Phase2Renewal
}

// Start returns tC1 of the current lease (meaningful when Valid).
func (l *LeaseClient) Start() sim.Time { return l.start }

// ExpiresAt returns start+τ on the client's clock.
func (l *LeaseClient) ExpiresAt() sim.Time { return l.start.Add(l.cfg.Tau) }

// Renewed records that a message first sent at tC1 (client clock) was
// ACKed. Per §3.1 the lease becomes [tC1, tC1+τ): the renewal is measured
// from the send, not the ACK receipt, because only the send is ordered
// before the server's reply. Stale ACKs (tC1 not newer than the current
// lease start) are ignored. Renewal while quiescing (phase ≥ 3) is
// ignored unless AllowLateRenewal is set and the recovery was not entered
// via NACK.
func (l *LeaseClient) Renewed(tC1 sim.Time) {
	switch l.phase {
	case Phase3Suspect, Phase4Flush, PhaseExpired:
		if !l.cfg.AllowLateRenewal || l.nacked {
			return
		}
	}
	if l.phase != PhaseNone && !tC1.After(l.start) {
		return // older than what we already hold
	}
	// A renewal can only extend an unexpired lease: if the previous lease
	// already ran out (we are expired), only the owner's explicit rejoin
	// path (Reset + Renewed) starts fresh. PhaseExpired is filtered above
	// unless AllowLateRenewal, in which case tC1 must still be recent
	// enough that the lease [tC1, tC1+τ) has not already expired.
	if l.clock.Now().After(tC1.Add(l.cfg.Tau)) {
		return // the lease this ACK grants is already over
	}
	l.renewals.Inc()
	l.env.emit(l.clock, trace.Event{Type: trace.EvRenew, TC1: tC1})
	l.start = tC1
	l.nacked = false
	l.flushed = false
	l.toPhase(Phase1Valid)
}

// NACKed records a negative acknowledgment (§3.3): the server is timing
// out (or has timed out) this client. The client knows its cache is
// invalid and enters phase 3 directly, skipping further renewal attempts.
func (l *LeaseClient) NACKed() {
	l.nacks.Inc()
	l.env.emit(l.clock, trace.Event{Type: trace.EvNACK})
	if l.phase == PhaseExpired || l.phase == PhaseNone {
		return // nothing to tear down; owner is (re)joining
	}
	l.nacked = true
	if l.phase < Phase3Suspect {
		l.toPhase(Phase3Suspect)
	}
}

// Revive returns a quiescing lease (phase 3/4, typically NACK-entered) to
// phase 1 after a successful lock reassertion with a restarted server
// (§6). tC1 is the local send time of the ACKed Reassert message; the
// revived lease runs [tC1, tC1+τ), exactly like any renewal. Revival is
// refused once the original lease has expired — an expired client holds
// nothing to reassert.
func (l *LeaseClient) Revive(tC1 sim.Time) bool {
	if l.phase != Phase3Suspect && l.phase != Phase4Flush {
		return false
	}
	if l.clock.Now().After(tC1.Add(l.cfg.Tau)) {
		return false
	}
	l.renewals.Inc()
	l.env.emit(l.clock, trace.Event{Type: trace.EvRenew, TC1: tC1, Note: "revive"})
	if tC1.After(l.start) {
		l.start = tC1
	}
	l.nacked = false
	l.flushed = false
	l.toPhase(Phase1Valid)
	return true
}

// Reset returns the machine to PhaseNone (after the owner has completed
// rejoin bookkeeping, or when tearing the client down).
func (l *LeaseClient) Reset() {
	l.stopTimers()
	old := l.phase
	l.phase = PhaseNone
	l.nacked = false
	l.flushed = false
	if old != PhaseNone {
		l.env.emit(l.clock, trace.Event{Type: trace.EvPhase, From: old.String(), To: PhaseNone.String(), Note: "reset"})
		l.act.PhaseChange(old, PhaseNone)
	}
}

func (l *LeaseClient) stopTimers() {
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	if l.kaTimer != nil {
		l.kaTimer.Stop()
		l.kaTimer = nil
	}
}

// toPhase enters p, runs its entry action, and schedules the next
// boundary relative to the current lease start.
func (l *LeaseClient) toPhase(p Phase) {
	l.stopTimers()
	from := l.phase
	l.phase = p
	l.env.emit(l.clock, trace.Event{Type: trace.EvPhase, From: from.String(), To: p.String()})
	l.act.PhaseChange(from, p)

	switch p {
	case Phase1Valid:
		l.scheduleBoundary(Phase2Renewal)
	case Phase2Renewal:
		l.scheduleBoundary(Phase3Suspect)
		l.startKeepAlives()
	case Phase3Suspect:
		l.scheduleBoundary(Phase4Flush)
		l.env.emit(l.clock, trace.Event{Type: trace.EvQuiesce})
		l.act.Quiesce()
	case Phase4Flush:
		l.scheduleBoundary(PhaseExpired)
		l.env.emit(l.clock, trace.Event{Type: trace.EvFlushStart, Note: "lease"})
		l.act.Flush(func() {
			l.flushed = true
			l.env.emit(l.clock, trace.Event{Type: trace.EvFlushDone, Note: "lease"})
		})
	case PhaseExpired:
		l.expiries.Inc()
		note := ""
		if !l.flushed {
			l.dirtyAtEnd.Inc()
			note = "dirty"
		}
		l.env.emit(l.clock, trace.Event{Type: trace.EvExpire, Note: note})
		l.act.Expired()
	}
}

// scheduleBoundary arms the phase timer for next's boundary. If the
// boundary is already in the past (e.g. a very stale renewal), the
// machine advances immediately via a zero-delay timer, preserving the
// invariant that transitions happen from timer context, not reentrantly.
func (l *LeaseClient) scheduleBoundary(next Phase) {
	at := l.start.Add(l.cfg.phaseStart(next))
	delay := at.Sub(l.clock.Now())
	if delay < 0 {
		delay = 0
	}
	l.timer = l.clock.AfterFunc(delay, func() {
		// The lease may have been renewed between arming and firing; the
		// renewal stopped this timer, so if we run, the transition stands.
		l.toPhase(next)
	})
}

// startKeepAlives sends one keep-alive immediately and then repeats at
// even intervals across phase 2.
func (l *LeaseClient) startKeepAlives() {
	interval := l.keepAliveInterval()
	var fire func()
	fire = func() {
		if l.phase != Phase2Renewal {
			return
		}
		l.keepalives.Inc()
		l.env.emit(l.clock, trace.Event{Type: trace.EvKeepAlive})
		l.act.SendKeepAlive()
		l.kaTimer = l.clock.AfterFunc(interval, fire)
	}
	fire()
}

// minKeepAliveInterval floors the keep-alive repetition rate. With a τ
// small enough that the phase-2 window holds fewer than KeepAlives
// clock ticks, the even division truncates to zero and the re-arming
// AfterFunc would retrigger at zero delay — a storm that, on the
// simulator, never lets time advance past the phase-2 entry. Clamping
// trades keep-alive count for liveness: the phase boundary timer still
// ends phase 2 on schedule.
const minKeepAliveInterval = sim.Duration(time.Millisecond)

// keepAliveInterval returns the (clamped) spacing of phase-2
// keep-alives.
func (l *LeaseClient) keepAliveInterval() sim.Duration {
	window := l.cfg.phaseStart(Phase3Suspect) - l.cfg.phaseStart(Phase2Renewal)
	interval := divideEven(window, l.cfg.KeepAlives)
	if interval < minKeepAliveInterval {
		interval = minKeepAliveInterval
	}
	return interval
}

// divideEven divides a duration into n even steps (n ≥ 1).
func divideEven(d sim.Duration, n int) sim.Duration {
	if n < 1 {
		n = 1
	}
	return d / sim.Duration(n)
}
