package core

import (
	"repro/internal/msg"
	"repro/internal/stats"
)

// ReplyCache gives the server at-most-once execution over the datagram
// control network (§3: messages "include version numbers for at most once
// delivery semantics"). A retried request whose original was executed is
// answered from the cache; a retry of a request still executing (e.g. a
// lock acquire waiting on a demand) is dropped, because the eventual
// grant will send the reply.
type ReplyCache struct {
	perClient map[msg.NodeID]*clientReplies
	// keep bounds how many completed replies are remembered per client.
	keep int

	dups *stats.Counter // duplicate requests answered/absorbed
}

type clientReplies struct {
	done     map[msg.ReqID]*msg.Reply
	order    []msg.ReqID // completion order, for eviction
	inFlight map[msg.ReqID]bool
}

// NewReplyCache creates a cache remembering up to keep replies per client.
func NewReplyCache(keep int, reg *stats.Registry, prefix string) *ReplyCache {
	if keep < 1 {
		keep = 1
	}
	if reg == nil {
		reg = stats.NewRegistry()
	}
	return &ReplyCache{
		perClient: make(map[msg.NodeID]*clientReplies),
		keep:      keep,
		dups:      reg.Counter(prefix + "replycache.duplicates"),
	}
}

func (rc *ReplyCache) client(id msg.NodeID) *clientReplies {
	cr := rc.perClient[id]
	if cr == nil {
		cr = &clientReplies{
			done:     make(map[msg.ReqID]*msg.Reply),
			inFlight: make(map[msg.ReqID]bool),
		}
		rc.perClient[id] = cr
	}
	return cr
}

// Disposition is the cache's verdict on an incoming request.
type Disposition uint8

const (
	// Execute: a new request; the server must run it and call Complete.
	Execute Disposition = iota
	// Resend: a duplicate of a completed request; send the cached reply.
	Resend
	// Absorb: a duplicate of a request still executing; do nothing.
	Absorb
)

// Admit classifies a request. For Resend it returns the cached reply.
func (rc *ReplyCache) Admit(client msg.NodeID, req msg.ReqID) (Disposition, *msg.Reply) {
	cr := rc.client(client)
	if r, ok := cr.done[req]; ok {
		rc.dups.Inc()
		return Resend, r
	}
	if cr.inFlight[req] {
		rc.dups.Inc()
		return Absorb, nil
	}
	cr.inFlight[req] = true
	return Execute, nil
}

// Complete records the reply for an executed request and evicts the
// oldest completion beyond the keep bound.
func (rc *ReplyCache) Complete(client msg.NodeID, req msg.ReqID, reply *msg.Reply) {
	cr := rc.client(client)
	delete(cr.inFlight, req)
	if _, ok := cr.done[req]; !ok {
		cr.order = append(cr.order, req)
	}
	cr.done[req] = reply
	for len(cr.order) > rc.keep {
		evict := cr.order[0]
		cr.order = cr.order[1:]
		delete(cr.done, evict)
	}
}

// Forget drops all cached state for a client (on rejoin: the client's
// ReqID space restarts with its new epoch).
func (rc *ReplyCache) Forget(client msg.NodeID) { delete(rc.perClient, client) }

// InFlight reports whether the request is currently executing.
func (rc *ReplyCache) InFlight(client msg.NodeID, req msg.ReqID) bool {
	if cr, ok := rc.perClient[client]; ok {
		return cr.inFlight[req]
	}
	return false
}
