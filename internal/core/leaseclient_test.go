package core

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// actionsRec records every callback from the lease machine with the
// global time it happened.
type actionsRec struct {
	s          *sim.Scheduler
	keepalives []sim.Time
	quiesces   []sim.Time
	flushes    []sim.Time
	expiries   []sim.Time
	changes    []Phase
	flushDone  func()
	// autoFlush completes the flush immediately when set.
	autoFlush bool
}

func (a *actionsRec) SendKeepAlive() { a.keepalives = append(a.keepalives, a.s.Now()) }
func (a *actionsRec) Quiesce()       { a.quiesces = append(a.quiesces, a.s.Now()) }
func (a *actionsRec) Flush(done func()) {
	a.flushes = append(a.flushes, a.s.Now())
	if a.autoFlush {
		done()
	} else {
		a.flushDone = done
	}
}
func (a *actionsRec) Expired()               { a.expiries = append(a.expiries, a.s.Now()) }
func (a *actionsRec) PhaseChange(_, p Phase) { a.changes = append(a.changes, p) }

func testCfg() Config {
	c := DefaultConfig()
	c.Tau = 10 * time.Second
	c.RetryInterval = 100 * time.Millisecond
	return c
}

func newLease(t *testing.T, cfg Config) (*sim.Scheduler, *actionsRec, *LeaseClient, *stats.Registry) {
	t.Helper()
	s := sim.NewScheduler(3)
	rec := &actionsRec{s: s, autoFlush: true}
	reg := stats.NewRegistry()
	l := NewLeaseClient(cfg, s.NewClock(1, 0), rec, Env{Reg: reg, Prefix: "c1."})
	return s, rec, l, reg
}

func TestPhaseWalkWhenIsolated(t *testing.T) {
	cfg := testCfg()
	s, rec, l, reg := newLease(t, cfg)
	if l.Phase() != PhaseNone || l.Valid() {
		t.Fatal("fresh lease machine must be PhaseNone and invalid")
	}
	// Obtain a lease at t=0 (an ACK for a message sent at local time 0),
	// then never renew: the client is isolated.
	l.Renewed(0)
	if l.Phase() != Phase1Valid || !l.Valid() {
		t.Fatalf("phase = %v after renewal", l.Phase())
	}
	s.Run()
	tau := cfg.Tau
	wantQuiesce := sim.Time(float64(tau) * cfg.P2End)
	wantFlush := sim.Time(float64(tau) * cfg.P3End)
	wantExpire := sim.Time(tau)
	if len(rec.quiesces) != 1 || rec.quiesces[0] != wantQuiesce {
		t.Fatalf("quiesce at %v, want %v", rec.quiesces, wantQuiesce)
	}
	if len(rec.flushes) != 1 || rec.flushes[0] != wantFlush {
		t.Fatalf("flush at %v, want %v", rec.flushes, wantFlush)
	}
	if len(rec.expiries) != 1 || rec.expiries[0] != wantExpire {
		t.Fatalf("expiry at %v, want %v", rec.expiries, wantExpire)
	}
	if l.Phase() != PhaseExpired {
		t.Fatalf("final phase = %v", l.Phase())
	}
	// Keep-alives: exactly KeepAlives sends spread over phase 2.
	if len(rec.keepalives) != cfg.KeepAlives {
		t.Fatalf("keepalives = %d, want %d (at %v)", len(rec.keepalives), cfg.KeepAlives, rec.keepalives)
	}
	first := rec.keepalives[0]
	if first != sim.Time(float64(tau)*cfg.P1End) {
		t.Fatalf("first keepalive at %v, want phase-2 entry", first)
	}
	if reg.CounterValue("c1.lease.expiries") != 1 {
		t.Fatal("expiry counter not incremented")
	}
	if reg.CounterValue("c1.lease.dirty_at_expiry") != 0 {
		t.Fatal("flush completed; dirty_at_expiry must be 0")
	}
}

func TestOpportunisticRenewalKeepsPhase1(t *testing.T) {
	cfg := testCfg()
	s, rec, l, reg := newLease(t, cfg)
	clock := s.NewClock(1, 0) // reads same values as the lease clock
	l.Renewed(0)
	// Renew every second (one tenth of τ) for a minute: the client is
	// active, so it must never leave phase 1 and never send a keep-alive.
	for i := 1; i <= 60; i++ {
		i := i
		s.At(sim.Time(i)*sim.Time(time.Second), func() {
			l.Renewed(clock.Now())
		})
	}
	s.RunUntil(sim.Time(60 * time.Second))
	if l.Phase() != Phase1Valid {
		t.Fatalf("phase = %v, want valid", l.Phase())
	}
	if len(rec.keepalives) != 0 {
		t.Fatalf("active client sent %d keep-alives", len(rec.keepalives))
	}
	if got := reg.CounterValue("c1.lease.renewals"); got != 61 {
		t.Fatalf("renewals = %d, want 61", got)
	}
}

func TestRenewalDuringPhase2ReturnsToPhase1(t *testing.T) {
	cfg := testCfg()
	s, rec, l, _ := newLease(t, cfg)
	l.Renewed(0)
	// Let it enter phase 2 (at 5s), then renew at 6s as if a keep-alive
	// sent at 5s was ACKed at 6s: tC1 = 5s.
	s.At(sim.Time(6*time.Second), func() { l.Renewed(sim.Time(5 * time.Second)) })
	s.RunUntil(sim.Time(6 * time.Second))
	if l.Phase() != Phase1Valid {
		t.Fatalf("phase = %v, want back to valid", l.Phase())
	}
	if len(rec.keepalives) == 0 {
		t.Fatal("no keep-alive was sent in phase 2")
	}
	// New lease runs from tC1=5s: next phase-2 entry at 10s, expiry 15s.
	s.Run()
	if len(rec.expiries) != 1 || rec.expiries[0] != sim.Time(15*time.Second) {
		t.Fatalf("expiry at %v, want 15s", rec.expiries)
	}
}

func TestStaleRenewalIgnored(t *testing.T) {
	cfg := testCfg()
	s, _, l, reg := newLease(t, cfg)
	l.Renewed(sim.Time(0))
	s.RunUntil(sim.Time(time.Second))
	l.Renewed(sim.Time(time.Second)) // newer: accepted
	l.Renewed(sim.Time(500 * time.Millisecond))
	l.Renewed(sim.Time(time.Second)) // equal: ignored
	if got := reg.CounterValue("c1.lease.renewals"); got != 2 {
		t.Fatalf("renewals = %d, want 2 (stale ACKs ignored)", got)
	}
	if l.Start() != sim.Time(time.Second) {
		t.Fatalf("lease start = %v", l.Start())
	}
	if l.ExpiresAt() != sim.Time(time.Second).Add(cfg.Tau) {
		t.Fatalf("ExpiresAt = %v", l.ExpiresAt())
	}
}

func TestAncientRenewalCannotResurrect(t *testing.T) {
	cfg := testCfg()
	s, _, l, reg := newLease(t, cfg)
	// An ACK whose tC1 is more than τ in the past grants a lease that has
	// already expired; it must be ignored even from PhaseNone.
	s.RunUntil(sim.Time(20 * time.Second))
	l.Renewed(sim.Time(time.Second))
	if l.Phase() != PhaseNone {
		t.Fatalf("phase = %v, want none", l.Phase())
	}
	if reg.CounterValue("c1.lease.renewals") != 0 {
		t.Fatal("ancient renewal counted")
	}
}

func TestNACKJumpsToQuiesce(t *testing.T) {
	cfg := testCfg()
	s, rec, l, reg := newLease(t, cfg)
	l.Renewed(0)
	s.At(sim.Time(time.Second), func() { l.NACKed() })
	s.RunUntil(sim.Time(time.Second))
	if l.Phase() != Phase3Suspect {
		t.Fatalf("phase after NACK = %v, want suspect", l.Phase())
	}
	if len(rec.quiesces) != 1 || rec.quiesces[0] != sim.Time(time.Second) {
		t.Fatalf("quiesce at %v, want 1s (immediately on NACK)", rec.quiesces)
	}
	// A later ACK for an old message must NOT revive the lease.
	l.Renewed(sim.Time(900 * time.Millisecond))
	if l.Phase() != Phase3Suspect {
		t.Fatal("NACKed client revived by stale ACK")
	}
	s.Run()
	// Phase 4 and expiry still run at the original schedule (8.5s, 10s).
	if len(rec.flushes) != 1 || rec.flushes[0] != sim.Time(8500*time.Millisecond) {
		t.Fatalf("flush at %v, want 8.5s", rec.flushes)
	}
	if len(rec.expiries) != 1 || rec.expiries[0] != sim.Time(10*time.Second) {
		t.Fatalf("expiry at %v, want 10s", rec.expiries)
	}
	if reg.CounterValue("c1.lease.nacks") != 1 {
		t.Fatal("nack counter wrong")
	}
}

func TestNACKInPhase4DoesNotRegress(t *testing.T) {
	cfg := testCfg()
	s, rec, l, _ := newLease(t, cfg)
	l.Renewed(0)
	s.At(sim.Time(9*time.Second), func() { l.NACKed() }) // already in phase 4
	s.Run()
	if len(rec.quiesces) != 1 {
		t.Fatalf("quiesce ran %d times", len(rec.quiesces))
	}
	if len(rec.flushes) != 1 {
		t.Fatalf("flush ran %d times", len(rec.flushes))
	}
}

func TestDirtyAtExpiryCounted(t *testing.T) {
	cfg := testCfg()
	s, rec, l, reg := newLease(t, cfg)
	rec.autoFlush = false // flush never completes (e.g. SAN also failed)
	l.Renewed(0)
	s.Run()
	if reg.CounterValue("c1.lease.dirty_at_expiry") != 1 {
		t.Fatal("incomplete flush at expiry not counted")
	}
}

func TestLateFlushCompletionAfterExpiry(t *testing.T) {
	cfg := testCfg()
	s, rec, l, _ := newLease(t, cfg)
	rec.autoFlush = false
	l.Renewed(0)
	s.Run()
	// Completing the flush after expiry must not panic or regress state.
	rec.flushDone()
	if l.Phase() != PhaseExpired {
		t.Fatalf("phase = %v", l.Phase())
	}
}

func TestResetReturnsToNone(t *testing.T) {
	cfg := testCfg()
	s, rec, l, _ := newLease(t, cfg)
	l.Renewed(0)
	s.RunUntil(sim.Time(time.Second))
	l.Reset()
	if l.Phase() != PhaseNone {
		t.Fatalf("phase = %v after Reset", l.Phase())
	}
	s.Run()
	if len(rec.quiesces) != 0 || len(rec.expiries) != 0 {
		t.Fatal("timers survived Reset")
	}
	// A fresh renewal restarts the machine.
	l.Renewed(l.clock.Now())
	if l.Phase() != Phase1Valid {
		t.Fatal("renewal after Reset did not start a lease")
	}
}

func TestNACKInPhaseNoneIgnored(t *testing.T) {
	_, _, l, reg := newLease(t, testCfg())
	l.NACKed()
	if l.Phase() != PhaseNone {
		t.Fatalf("phase = %v", l.Phase())
	}
	if reg.CounterValue("c1.lease.nacks") != 1 {
		t.Fatal("nack not counted")
	}
}

func TestAllowLateRenewalRevives(t *testing.T) {
	cfg := testCfg()
	cfg.AllowLateRenewal = true
	s, _, l, _ := newLease(t, cfg)
	l.Renewed(0)
	// Natural progression into phase 3 (7s), then a delayed ACK for a
	// message sent at 6.9s arrives at 7.5s: with AllowLateRenewal the
	// lease revives (the recovery was not NACK-entered).
	s.At(sim.Time(7500*time.Millisecond), func() {
		l.Renewed(sim.Time(6900 * time.Millisecond))
	})
	s.RunUntil(sim.Time(7500 * time.Millisecond))
	if l.Phase() != Phase1Valid {
		t.Fatalf("phase = %v, want revived", l.Phase())
	}
}

func TestLateRenewalAfterNACKStillRefused(t *testing.T) {
	cfg := testCfg()
	cfg.AllowLateRenewal = true
	s, _, l, _ := newLease(t, cfg)
	l.Renewed(0)
	s.At(sim.Time(time.Second), func() { l.NACKed() })
	s.At(sim.Time(2*time.Second), func() { l.Renewed(sim.Time(1500 * time.Millisecond)) })
	s.RunUntil(sim.Time(2 * time.Second))
	if l.Phase() != Phase3Suspect {
		t.Fatalf("phase = %v; NACK-entered recovery must not revive", l.Phase())
	}
}

func TestPhaseStringAndValidate(t *testing.T) {
	for p := PhaseNone; p <= PhaseExpired; p++ {
		if p.String() == "" {
			t.Fatal("empty phase name")
		}
	}
	if Phase(99).String() == "" {
		t.Fatal("unknown phase must format")
	}
	bad := []Config{
		{},
		{Tau: time.Second, P1End: 0.5, P2End: 0.4, P3End: 0.9, KeepAlives: 1, RetryInterval: 1},
		{Tau: time.Second, P1End: 0.5, P2End: 0.7, P3End: 1.0, KeepAlives: 1, RetryInterval: 1},
		{Tau: time.Second, P1End: 0.5, P2End: 0.7, P3End: 0.9, KeepAlives: 0, RetryInterval: 1},
		{Tau: time.Second, P1End: 0.5, P2End: 0.7, P3End: 0.9, KeepAlives: 1, RetryInterval: 0},
		{Tau: time.Second, Bound: sim.RateBound{Eps: -1}, P1End: 0.5, P2End: 0.7, P3End: 0.9, KeepAlives: 1, RetryInterval: 1},
		{Tau: time.Second, P1End: 0.5, P2End: 0.7, P3End: 0.9, KeepAlives: 1, RetryInterval: 1, DemandRetries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d validated but is invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestStealDelayStretch(t *testing.T) {
	cfg := testCfg()
	cfg.Bound.Eps = 0.10
	if got, want := cfg.StealDelay(), 11*time.Second; got != want {
		t.Fatalf("StealDelay = %v, want %v", got, want)
	}
}

func TestReviveFromNACKQuiesce(t *testing.T) {
	cfg := testCfg()
	s, rec, l, _ := newLease(t, cfg)
	l.Renewed(0)
	s.At(sim.Time(time.Second), func() { l.NACKed() })
	s.RunUntil(sim.Time(2 * time.Second))
	if l.Phase() != Phase3Suspect {
		t.Fatalf("phase = %v", l.Phase())
	}
	// A reassertion ACKed: the lease revives from the reassert's send
	// time even though the recovery was NACK-entered.
	if !l.Revive(sim.Time(1500 * time.Millisecond)) {
		t.Fatal("revive refused")
	}
	if l.Phase() != Phase1Valid {
		t.Fatalf("phase = %v after revive", l.Phase())
	}
	if l.Start() != sim.Time(1500*time.Millisecond) {
		t.Fatalf("lease start = %v", l.Start())
	}
	// The revived lease runs its full schedule from the new start.
	s.Run()
	if len(rec.expiries) != 1 || rec.expiries[0] != sim.Time(1500*time.Millisecond).Add(cfg.Tau) {
		t.Fatalf("expiry at %v", rec.expiries)
	}
}

func TestReviveRefusedOutsideQuiesce(t *testing.T) {
	cfg := testCfg()
	s, _, l, _ := newLease(t, cfg)
	if l.Revive(0) {
		t.Fatal("revive from PhaseNone accepted")
	}
	l.Renewed(0)
	if l.Revive(sim.Time(time.Millisecond)) {
		t.Fatal("revive from phase 1 accepted")
	}
	s.Run() // expire
	if l.Phase() != PhaseExpired {
		t.Fatalf("phase = %v", l.Phase())
	}
	if l.Revive(l.clock.Now()) {
		t.Fatal("revive after expiry accepted")
	}
}

func TestReviveRefusedWhenLeaseAlreadyOver(t *testing.T) {
	cfg := testCfg()
	s, _, l, _ := newLease(t, cfg)
	l.Renewed(0)
	s.At(sim.Time(8*time.Second), func() { l.NACKed() })
	s.RunUntil(sim.Time(9 * time.Second))
	// A reassert whose send time is more than τ ago grants nothing.
	s.RunUntil(sim.Time(9500 * time.Millisecond))
	if l.Revive(sim.Time(-2 * sim.Time(time.Second))) {
		t.Fatal("stale revive accepted")
	}
}

// TestKeepAliveIntervalTinyTau is the regression test for the keep-alive
// interval underflow: with a τ so small that the phase-2 window holds
// fewer clock ticks than KeepAlives, the even division truncated to
// zero and the re-arming AfterFunc retriggered at zero delay — on the
// simulator an event storm at a frozen instant, on a real clock a hot
// loop. The interval must clamp to a positive floor and the machine
// must still walk to expiry with a bounded keep-alive count.
func TestKeepAliveIntervalTinyTau(t *testing.T) {
	cfg := testCfg()
	cfg.Tau = 10 * time.Nanosecond // phase-2 window: 2ns < KeepAlives (4) ticks
	s, rec, l, _ := newLease(t, cfg)
	if got := l.keepAliveInterval(); got <= 0 {
		t.Fatalf("keep-alive interval = %v; zero-delay retrigger storm", got)
	}
	l.Renewed(0)
	s.Run()
	if l.Phase() != PhaseExpired {
		t.Fatalf("final phase = %v, want expired", l.Phase())
	}
	if len(rec.keepalives) == 0 || len(rec.keepalives) > cfg.KeepAlives {
		t.Fatalf("keepalives = %d, want in [1, %d]", len(rec.keepalives), cfg.KeepAlives)
	}
}

// TestKeepAliveIntervalUnclamped: ordinary configurations are not
// affected by the clamp — the spacing stays the even division of the
// phase-2 window.
func TestKeepAliveIntervalUnclamped(t *testing.T) {
	cfg := testCfg() // τ=10s, window 2s, 4 keep-alives
	_, _, l, _ := newLease(t, cfg)
	if got, want := l.keepAliveInterval(), 500*time.Millisecond; got != want {
		t.Fatalf("keep-alive interval = %v, want %v", got, want)
	}
}
