package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

type stealRec struct {
	s      *sim.Scheduler
	steals []struct {
		client msg.NodeID
		at     sim.Time
	}
}

func (r *stealRec) StealLocks(client msg.NodeID) {
	r.steals = append(r.steals, struct {
		client msg.NodeID
		at     sim.Time
	}{client, r.s.Now()})
}

func newAuthority(t *testing.T, cfg Config, rate float64) (*sim.Scheduler, *stealRec, *Authority, *stats.Registry) {
	t.Helper()
	s := sim.NewScheduler(11)
	rec := &stealRec{s: s}
	reg := stats.NewRegistry()
	a := NewAuthority(cfg, s.NewClock(rate, 0), rec, Env{Reg: reg, Prefix: "srv."})
	return s, rec, a, reg
}

func TestPassivityDuringNormalOperation(t *testing.T) {
	_, _, a, reg := newAuthority(t, testCfg(), 1)
	// The headline claim: thousands of requests, zero lease state, zero
	// lease operations, zero lease memory at the authority.
	for i := 0; i < 10000; i++ {
		if !a.Allow(msg.NodeID(i%50 + 2)) {
			t.Fatal("healthy client refused")
		}
	}
	if reg.CounterValue("srv.authority.ops") != 0 {
		t.Fatal("authority performed lease ops during normal operation")
	}
	if a.StateBytes() != 0 || a.SuspectCount() != 0 {
		t.Fatal("authority held lease state during normal operation")
	}
}

func TestTimeoutStealsAfterStretchedTau(t *testing.T) {
	cfg := testCfg() // τ=10s, ε=0.05
	s, rec, a, reg := newAuthority(t, cfg, 1)
	s.At(sim.Time(2*time.Second), func() { a.OnDeliveryFailure(7) })
	s.Run()
	want := sim.Time(2 * time.Second).Add(cfg.StealDelay()) // 2s + 10.5s
	if len(rec.steals) != 1 || rec.steals[0].at != want || rec.steals[0].client != 7 {
		t.Fatalf("steals = %+v, want client 7 at %v", rec.steals, want)
	}
	if !a.Expired(7) || !a.Suspect(7) {
		t.Fatal("client not marked expired")
	}
	if a.Allow(7) {
		t.Fatal("expired client allowed")
	}
	if reg.CounterValue("srv.authority.locks_stolen") != 1 {
		t.Fatal("steal counter wrong")
	}
}

func TestNoACKWhileTimingOut(t *testing.T) {
	s, _, a, _ := newAuthority(t, testCfg(), 1)
	a.OnDeliveryFailure(7)
	if a.Allow(7) {
		t.Fatal("server must not ACK a client it is timing out (§3)")
	}
	if !a.Allow(8) {
		t.Fatal("other clients unaffected")
	}
	s.Run()
	if a.Allow(7) {
		t.Fatal("server must not ACK an expired client until rejoin")
	}
}

func TestDeliveryFailureIdempotent(t *testing.T) {
	s, rec, a, reg := newAuthority(t, testCfg(), 1)
	a.OnDeliveryFailure(7)
	s.RunFor(time.Second)
	a.OnDeliveryFailure(7) // second demand also failed; must not reset timer
	s.Run()
	if len(rec.steals) != 1 {
		t.Fatalf("steals = %d, want 1", len(rec.steals))
	}
	if reg.CounterValue("srv.authority.timeouts_started") != 1 {
		t.Fatal("timeout started twice")
	}
}

func TestRejoinAfterExpiryClearsState(t *testing.T) {
	s, _, a, _ := newAuthority(t, testCfg(), 1)
	a.OnDeliveryFailure(7)
	s.Run()
	if !a.OnRejoin(7) {
		t.Fatal("rejoin refused")
	}
	if a.Suspect(7) || !a.Allow(7) {
		t.Fatal("state not cleared on rejoin")
	}
	if a.StateBytes() != 0 {
		t.Fatal("lease memory not released")
	}
}

func TestEarlyRejoinCancelsTimerAndStealsNow(t *testing.T) {
	cfg := testCfg()
	s, rec, a, _ := newAuthority(t, cfg, 1)
	a.OnDeliveryFailure(7)
	// The client recovers quickly (its own lease expired on its clock)
	// and rejoins before the server's τ(1+ε) elapses.
	s.At(sim.Time(3*time.Second), func() {
		if !a.OnRejoin(7) {
			t.Error("early rejoin refused")
		}
	})
	s.Run()
	if len(rec.steals) != 1 || rec.steals[0].at != sim.Time(3*time.Second) {
		t.Fatalf("steals = %+v, want immediate steal at rejoin", rec.steals)
	}
	if a.Suspect(7) {
		t.Fatal("suspect state survived rejoin")
	}
}

func TestRejoinOfHealthyClientAccepted(t *testing.T) {
	_, rec, a, _ := newAuthority(t, testCfg(), 1)
	if !a.OnRejoin(42) {
		t.Fatal("fresh-boot rejoin refused")
	}
	if len(rec.steals) != 0 {
		t.Fatal("rejoin of healthy client stole locks")
	}
}

// TestTheorem31Property is the paper's Theorem 3.1 as an executable
// property: for any pair of rate-synchronized clocks (pairwise ratio
// ≤ 1+ε), any lease obtained from a message sent at tC1 expires on the
// client's clock no later than the server's steal, which happens
// τ(1+ε) on the server's clock after a failure observed at tS2 ≥ tC1.
func TestTheorem31Property(t *testing.T) {
	const eps = 0.05
	f := func(seed int64, tauMs uint16, gapMs uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := time.Duration(int64(tauMs)+10) * time.Millisecond
		// Draw pairwise-valid rates: base in [0.8, 1.2], spread within
		// sqrt(1+eps) of base in each direction.
		base := 0.8 + 0.4*rng.Float64()
		spread := 1 + eps
		rc := base * (1 + (rng.Float64()-0.5)*(spread-1)/spread)
		rs := base * (1 + (rng.Float64()-0.5)*(spread-1)/spread)
		if !(sim.RateBound{Eps: eps}).Valid(rc, rs) {
			return true // outside the assumption; skip
		}

		s := sim.NewScheduler(seed)
		clientClock := s.NewClock(rc, 0)
		serverClock := s.NewClock(rs, 0)

		cfg := testCfg()
		cfg.Tau = tau
		cfg.Bound = sim.RateBound{Eps: eps}

		rec := &actionsRec{s: s, autoFlush: true}
		lease := NewLeaseClient(cfg, clientClock, rec, Env{})
		srec := &stealRec{s: s}
		auth := NewAuthority(cfg, serverClock, srec, Env{})

		// tC1: client sends a message now (global time 0) and it is
		// eventually ACKed. The server observes a delivery failure at
		// global gap ≥ 0 later (tS2 is necessarily ≥ the client's send).
		lease.Renewed(clientClock.Now())
		s.After(time.Duration(gapMs)*time.Microsecond, func() {
			auth.OnDeliveryFailure(3)
		})
		s.Run()

		if len(rec.expiries) != 1 || len(srec.steals) != 1 {
			return false
		}
		// THE invariant: client lease expiry precedes (or ties) the steal
		// in global time.
		return !rec.expiries[0].After(srec.steals[0].at)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem31ViolatedOutsideBound shows the assumption is load-bearing:
// with clock rates beyond ε the steal can precede the client's expiry —
// the failure mode §6 addresses with fencing.
func TestTheorem31ViolatedOutsideBound(t *testing.T) {
	const eps = 0.05
	// Client clock much slower than server clock: client's τ takes longer
	// in global time than the server's stretched wait.
	rc, rs := 0.80, 1.20

	s := sim.NewScheduler(1)
	cfg := testCfg()
	cfg.Bound = sim.RateBound{Eps: eps}
	rec := &actionsRec{s: s, autoFlush: true}
	lease := NewLeaseClient(cfg, s.NewClock(rc, 0), rec, Env{})
	srec := &stealRec{s: s}
	auth := NewAuthority(cfg, s.NewClock(rs, 0), srec, Env{})

	lease.Renewed(0)
	auth.OnDeliveryFailure(3)
	s.Run()

	if len(rec.expiries) != 1 || len(srec.steals) != 1 {
		t.Fatal("scenario did not complete")
	}
	if !srec.steals[0].at.Before(rec.expiries[0]) {
		t.Fatal("expected a violation: steal should precede client expiry outside the rate bound")
	}
}
