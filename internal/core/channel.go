package core

import (
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ReplyCallback receives the terminal outcome of a Call. Exactly one of
// these holds:
//   - reply.Status == msg.ACK: the request executed; reply carries the
//     result.
//   - reply.Status == msg.NACK: the server refuses service (the lease
//     machinery has already been notified).
//   - reply == nil: the Call was cancelled by CancelAll.
type ReplyCallback func(reply *msg.Reply)

type pendingCall struct {
	req   msg.Request
	tC1   sim.Time // local time of the FIRST send attempt
	cb    ReplyCallback
	timer sim.Timer
	tries int
}

// Channel is the client's reliable-request layer over the connection-less
// control network. It retries datagrams until a Reply arrives, tags each
// request with a per-client ReqID for at-most-once execution, and feeds
// the lease machine:
//
//   - on ACK, LeaseClient.Renewed(tC1) with the FIRST send time of the
//     request. Using the first attempt is required for safety: the reply
//     proves the server heard *some* attempt, and only the first attempt
//     is guaranteed to precede whichever receipt triggered the reply.
//   - on NACK, LeaseClient.NACKed().
//
// This is where opportunistic renewal (§3.1) lives: every ordinary
// file-system message doubles as a lease renewal, so an active client
// never sends lease-specific traffic.
// When the authority is replicated, SetTargets installs the replica set:
// a NACK carrying msg.ErrNotActive is a redirect, not an answer — the
// channel keeps the call pending, rotates to the next replica, and
// resends, without touching the lease machine either way. Silent servers
// (SIGKILLed actives) are covered too: every few unanswered retries of a
// single call rotate the target as well.
type Channel struct {
	self    msg.NodeID
	server  msg.NodeID   // current target
	targets []msg.NodeID // full replica set; rotation cycles this
	cfg     Config
	clock   sim.Clock
	send    func(to msg.NodeID, m msg.Message)
	lease   *LeaseClient // may be nil (baselines without lease semantics)

	epoch   msg.Epoch
	nextReq msg.ReqID
	pending map[msg.ReqID]*pendingCall

	sent    *stats.Counter // first-attempt sends
	retries *stats.Counter
	acks    *stats.Counter
	nacksC  *stats.Counter
	redirs  *stats.Counter
}

// redirectTries is how many consecutive unanswered retries of one call
// rotate the channel to the next replica. Redirect NACKs rotate
// immediately; this only covers servers that die silently.
const redirectTries = 3

// NewChannel creates a channel from self to server. lease may be nil.
// env supplies the registry the channel's counters live in.
func NewChannel(self, server msg.NodeID, cfg Config, clock sim.Clock,
	send func(to msg.NodeID, m msg.Message), lease *LeaseClient, env Env) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	env = env.withDefaults()
	return &Channel{
		self:    self,
		server:  server,
		targets: []msg.NodeID{server},
		cfg:     cfg,
		clock:   clock,
		send:    send,
		lease:   lease,
		pending: make(map[msg.ReqID]*pendingCall),
		sent:    env.counter("chan.sent"),
		retries: env.counter("chan.retries"),
		acks:    env.counter("chan.acks"),
		nacksC:  env.counter("chan.nacks"),
		redirs:  env.counter("chan.redirects"),
	}
}

// SetTargets installs the replica set the channel may address. The
// current target is kept if it is in the set, otherwise reset to the
// first entry.
func (c *Channel) SetTargets(ts []msg.NodeID) {
	if len(ts) == 0 {
		return
	}
	c.targets = append([]msg.NodeID(nil), ts...)
	for _, id := range c.targets {
		if id == c.server {
			return
		}
	}
	c.server = c.targets[0]
}

// rotate advances to the next replica in the target set.
func (c *Channel) rotate() {
	if len(c.targets) < 2 {
		return
	}
	for i, id := range c.targets {
		if id == c.server {
			c.server = c.targets[(i+1)%len(c.targets)]
			return
		}
	}
	c.server = c.targets[0]
}

// Epoch returns the channel's current registration epoch.
func (c *Channel) Epoch() msg.Epoch { return c.epoch }

// SetEpoch installs the epoch returned by a successful Rejoin.
func (c *Channel) SetEpoch(e msg.Epoch) { c.epoch = e }

// Server returns the peer this channel talks to.
func (c *Channel) Server() msg.NodeID { return c.server }

// Pending returns the number of in-flight requests.
func (c *Channel) Pending() int { return len(c.pending) }

// Call sends req and invokes cb with the eventual reply. The request's
// header is filled in by the channel. Retries continue indefinitely — an
// isolated client keeps trying — until a reply arrives or CancelAll runs;
// the lease machine, not the channel, decides when to give up.
func (c *Channel) Call(req msg.Request, cb ReplyCallback) msg.ReqID {
	c.nextReq++
	id := c.nextReq
	h := req.Hdr()
	h.Client = c.self
	h.Req = id
	h.Epoch = c.epoch
	p := &pendingCall{req: req, tC1: c.clock.Now(), cb: cb}
	c.pending[id] = p
	c.sent.Inc()
	c.send(c.server, req)
	c.armRetry(p, id)
	return id
}

func (c *Channel) armRetry(p *pendingCall, id msg.ReqID) {
	p.timer = c.clock.AfterFunc(c.cfg.RetryInterval, func() {
		if c.pending[id] != p {
			return
		}
		p.tries++
		c.retries.Inc()
		if p.tries%redirectTries == 0 {
			c.rotate() // the target may be dead; try a peer replica
		}
		c.send(c.server, p.req)
		c.armRetry(p, id)
	})
}

// HandleReply dispatches a server Reply to its pending call. Duplicate or
// unknown replies are dropped (the at-most-once IDs make this safe).
func (c *Channel) HandleReply(r *msg.Reply) {
	p, ok := c.pending[r.Req]
	if !ok {
		return
	}
	if r.Status == msg.NACK && r.Err == msg.ErrNotActive {
		// A passive replica redirected us. This is neither a renewal nor a
		// lease NACK — the authority never saw the request — so bypass the
		// lease machine entirely: keep the call pending, rotate, resend.
		c.redirs.Inc()
		c.rotate()
		if p.timer != nil {
			p.timer.Stop()
		}
		c.send(c.server, p.req)
		c.armRetry(p, r.Req)
		return
	}
	delete(c.pending, r.Req)
	if p.timer != nil {
		p.timer.Stop()
	}
	if _, info := r.Body.(msg.ReplicaInfoRes); info {
		// Operator role query: answered by ANY replica, so its ACK proves
		// nothing about the authority hearing from us — lease-neutral.
		if p.cb != nil {
			p.cb(r)
		}
		return
	}
	switch r.Status {
	case msg.ACK:
		c.acks.Inc()
		if c.lease != nil {
			c.lease.Renewed(p.tC1)
		}
	case msg.NACK:
		c.nacksC.Inc()
		if c.lease != nil {
			c.lease.NACKed()
		}
	}
	if p.cb != nil {
		p.cb(r)
	}
}

// CancelAll aborts every pending call (their callbacks receive nil). The
// owner calls this when the lease expires: outstanding operations are
// dead, and recovery starts from a clean channel. Cancellation callbacks
// can issue new calls (recovery begins immediately); those survive —
// only calls pending at entry (and anything cancelled transitively) are
// aborted, via snapshots rather than iteration over a mutating map.
func (c *Channel) CancelAll() {
	victims := make([]msg.ReqID, 0, len(c.pending))
	for id := range c.pending {
		victims = append(victims, id)
	}
	for _, id := range victims {
		p, ok := c.pending[id]
		if !ok {
			continue
		}
		delete(c.pending, id)
		if p.timer != nil {
			p.timer.Stop()
		}
		if p.cb != nil {
			p.cb(nil)
		}
	}
}
