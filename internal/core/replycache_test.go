package core

import (
	"testing"

	"repro/internal/msg"
	"repro/internal/stats"
)

func TestReplyCacheExecuteOnce(t *testing.T) {
	reg := stats.NewRegistry()
	rc := NewReplyCache(8, reg, "srv.")
	d, r := rc.Admit(3, 1)
	if d != Execute || r != nil {
		t.Fatalf("first admit = %v", d)
	}
	if !rc.InFlight(3, 1) {
		t.Fatal("not marked in-flight")
	}
	// Duplicate while executing: absorb.
	d, _ = rc.Admit(3, 1)
	if d != Absorb {
		t.Fatalf("duplicate-in-flight = %v, want Absorb", d)
	}
	reply := &msg.Reply{Client: 3, Req: 1, Status: msg.ACK}
	rc.Complete(3, 1, reply)
	if rc.InFlight(3, 1) {
		t.Fatal("still in-flight after Complete")
	}
	// Duplicate after completion: resend cached reply.
	d, r = rc.Admit(3, 1)
	if d != Resend || r != reply {
		t.Fatalf("duplicate-after-done = %v %v", d, r)
	}
	if reg.CounterValue("srv.replycache.duplicates") != 2 {
		t.Fatal("duplicate counter wrong")
	}
}

func TestReplyCachePerClientIsolation(t *testing.T) {
	rc := NewReplyCache(8, nil, "")
	rc.Admit(3, 1)
	rc.Complete(3, 1, &msg.Reply{Req: 1})
	// Same ReqID from a different client is independent.
	d, _ := rc.Admit(4, 1)
	if d != Execute {
		t.Fatalf("cross-client admit = %v", d)
	}
}

func TestReplyCacheEviction(t *testing.T) {
	rc := NewReplyCache(2, nil, "")
	for id := msg.ReqID(1); id <= 3; id++ {
		rc.Admit(3, id)
		rc.Complete(3, id, &msg.Reply{Req: id})
	}
	// Oldest (1) evicted: re-admitting executes again. This is acceptable
	// because the client only retries its most recent requests.
	if d, _ := rc.Admit(3, 1); d != Execute {
		t.Fatalf("evicted admit = %v, want Execute", d)
	}
	if d, _ := rc.Admit(3, 3); d != Resend {
		t.Fatalf("recent admit = %v, want Resend", d)
	}
}

func TestReplyCacheForget(t *testing.T) {
	rc := NewReplyCache(8, nil, "")
	rc.Admit(3, 1)
	rc.Complete(3, 1, &msg.Reply{Req: 1})
	rc.Forget(3)
	if d, _ := rc.Admit(3, 1); d != Execute {
		t.Fatal("state survived Forget")
	}
	if rc.InFlight(9, 1) {
		t.Fatal("unknown client reported in-flight")
	}
}

func TestReplyCacheMinimumKeep(t *testing.T) {
	rc := NewReplyCache(0, nil, "") // clamps to 1
	rc.Admit(3, 1)
	rc.Complete(3, 1, &msg.Reply{Req: 1})
	if d, _ := rc.Admit(3, 1); d != Resend {
		t.Fatal("keep=1 did not retain the last reply")
	}
}
