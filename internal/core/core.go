// Package core implements the paper's contribution: the Storage Tank
// lease-based safety protocol (Burns, Rees, Long — IPPS 2000).
//
// A lease is a contract between a client and a server: the server promises
// to respect the client's locks — even if the client becomes unreachable —
// for the lease period τ, and the client promises not to operate on cached
// data without a valid lease. There is exactly one lease per
// (client, server) pair, matching the granularity of real failures
// (a crash or partition invalidates everything held with that server),
// not one lease per object as in the V system (§4).
//
// Three pieces live here:
//
//   - LeaseClient: the client's four-phase lease state machine (§3.2).
//   - Authority: the server's passive lease authority (§3), which keeps NO
//     per-client lease state during normal operation and acts only when a
//     delivery error occurs.
//   - Channel: the client's reliable-request layer (datagram retries with
//     at-most-once request IDs) that renews the lease opportunistically
//     from the ordered-events rule of §3.1: an ACKed message renews the
//     lease from the time the message was FIRST sent (tC1), because that
//     send is known to precede the server's ACK (tC1 ≤ tS2) with no clock
//     synchronization at all.
//
// The code is transport- and clock-agnostic: it runs identically on the
// deterministic simulator (internal/sim, internal/simnet) and on real
// clocks over TCP (internal/rpcnet).
package core

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Phase is the client's position within its lease period (§3.2, Fig 4).
type Phase uint8

const (
	// PhaseNone: no lease has ever been obtained (startup, or after the
	// channel was reset).
	PhaseNone Phase = iota
	// Phase1Valid: a recently obtained lease protects all locked objects;
	// normal operation. Active clients spend virtually all time here.
	Phase1Valid
	// Phase2Renewal: no ACK arrived during phase 1; the client actively
	// sends keep-alive NULL messages while still servicing local requests.
	Phase2Renewal
	// Phase3Suspect: renewal failed; the client assumes it is isolated,
	// stops servicing new file-system requests, and drains in-progress
	// operations (quiesce).
	Phase3Suspect
	// Phase4Flush: all dirty data protected by locks under this lease is
	// written directly to the SAN disks. The fence is not yet up — the
	// server steals locks and fences only at τ(1+ε) — so this flush
	// reaches storage.
	Phase4Flush
	// PhaseExpired: the lease is over; cached data and metadata are
	// invalid, locks are ceded, and the client must Rejoin before talking
	// to the server again.
	PhaseExpired
)

var phaseNames = [...]string{
	PhaseNone:     "none",
	Phase1Valid:   "valid",
	Phase2Renewal: "renewal",
	Phase3Suspect: "suspect",
	Phase4Flush:   "flush",
	PhaseExpired:  "expired",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Config holds the protocol parameters shared by both sides.
type Config struct {
	// Tau is the lease period τ, measured on whichever clock owns it.
	Tau time.Duration
	// Bound is the pairwise clock rate-synchronization bound ε. The
	// server waits τ(1+ε) on its clock before stealing locks (Thm 3.1).
	Bound sim.RateBound
	// P1End, P2End, P3End split the lease period into the four phases as
	// fractions of τ: phase 1 is [0, P1End), phase 2 [P1End, P2End),
	// phase 3 [P2End, P3End), phase 4 [P3End, 1). The paper fixes the
	// phases' order and purpose but not their boundaries; these defaults
	// are a documented design choice (DESIGN.md §5).
	P1End, P2End, P3End float64
	// KeepAlives is how many keep-alive attempts are spread across
	// phase 2.
	KeepAlives int
	// RetryInterval is the client's datagram retry interval and the
	// server's demand retry interval.
	RetryInterval time.Duration
	// DemandRetries is how many times the server re-sends an un-acked
	// Demand before declaring a delivery failure and starting the lease
	// timeout for the client.
	DemandRetries int
	// AllowLateRenewal, if true, lets an ACK that arrives while the
	// client is already in phase 3/4 revive the lease. Off by default:
	// once quiescing, the client completes recovery (simpler, and the
	// paper's phase description implies one-way progression after a NACK).
	AllowLateRenewal bool
}

// DefaultConfig returns the parameters used throughout the reproduction:
// τ=30s (Frangipani's choice, which the paper cites as the closest
// system), ε=5%, phases split 50/20/15/15.
func DefaultConfig() Config {
	return Config{
		Tau:           30 * time.Second,
		Bound:         sim.RateBound{Eps: 0.05},
		P1End:         0.50,
		P2End:         0.70,
		P3End:         0.85,
		KeepAlives:    4,
		RetryInterval: 500 * time.Millisecond,
		DemandRetries: 3,
	}
}

// Validate checks the configuration's internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Tau <= 0:
		return fmt.Errorf("core: Tau must be positive, got %v", c.Tau)
	case c.Bound.Eps < 0:
		return fmt.Errorf("core: Eps must be non-negative, got %g", c.Bound.Eps)
	case !(0 < c.P1End && c.P1End < c.P2End && c.P2End < c.P3End && c.P3End < 1):
		return fmt.Errorf("core: phase boundaries must satisfy 0 < P1End < P2End < P3End < 1, got %g/%g/%g",
			c.P1End, c.P2End, c.P3End)
	case c.KeepAlives < 1:
		return fmt.Errorf("core: KeepAlives must be >= 1, got %d", c.KeepAlives)
	case c.RetryInterval <= 0:
		return fmt.Errorf("core: RetryInterval must be positive, got %v", c.RetryInterval)
	case c.DemandRetries < 0:
		return fmt.Errorf("core: DemandRetries must be >= 0, got %d", c.DemandRetries)
	}
	return nil
}

// phaseStart returns the offset from lease start (local clock) at which
// the given phase begins.
func (c Config) phaseStart(p Phase) time.Duration {
	switch p {
	case Phase1Valid:
		return 0
	case Phase2Renewal:
		return time.Duration(float64(c.Tau) * c.P1End)
	case Phase3Suspect:
		return time.Duration(float64(c.Tau) * c.P2End)
	case Phase4Flush:
		return time.Duration(float64(c.Tau) * c.P3End)
	case PhaseExpired:
		return c.Tau
	}
	return 0
}

// StealDelay is the interval the server waits on its own clock after the
// delivery failure before stealing locks: τ(1+ε). Theorem 3.1 guarantees
// the client's lease — measured on the client's rate-synchronized clock,
// starting no later than the server's failure observation — has expired
// by then.
func (c Config) StealDelay() time.Duration { return c.Bound.Stretch(c.Tau) }
