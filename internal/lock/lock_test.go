package lock

import (
	"testing"

	"repro/internal/msg"
)

// demandRec captures issued demands.
type demandRec struct {
	demands []demandCall
}

type demandCall struct {
	holder msg.NodeID
	ino    msg.ObjectID
	to     msg.LockMode
	id     msg.DemandID
}

func (d *demandRec) Demand(holder msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID) {
	d.demands = append(d.demands, demandCall{holder, ino, to, id})
}

func granted(mode *msg.LockMode, fired *bool) GrantFn {
	return func(m msg.LockMode) {
		*mode = m
		*fired = true
	}
}

func TestImmediateGrantShared(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	if !tb.Acquire(1, 10, msg.LockShared, granted(&m, &ok)) {
		t.Fatal("uncontended shared not immediate")
	}
	if !ok || m != msg.LockShared {
		t.Fatalf("grant fired=%v mode=%v", ok, m)
	}
	// Second shared holder also immediate.
	if !tb.Acquire(2, 10, msg.LockShared, granted(&m, &ok)) {
		t.Fatal("second shared not immediate")
	}
	if tb.HoldersOf(10) != 2 || len(d.demands) != 0 {
		t.Fatalf("holders=%d demands=%d", tb.HoldersOf(10), len(d.demands))
	}
}

func TestReacquireCoveringIsIdempotent(t *testing.T) {
	tb := NewTable(&demandRec{})
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	ok = false
	if !tb.Acquire(1, 10, msg.LockShared, granted(&m, &ok)) || !ok {
		t.Fatal("covering re-acquire not immediate")
	}
	if m != msg.LockExclusive {
		t.Fatalf("re-grant mode = %v, want existing exclusive", m)
	}
	if tb.Held(1, 10) != msg.LockExclusive {
		t.Fatal("hold downgraded by weaker re-acquire")
	}
}

func TestConflictQueuesAndDemands(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m1, m2 msg.LockMode
	var ok1, ok2 bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m1, &ok1))
	if tb.Acquire(2, 10, msg.LockShared, granted(&m2, &ok2)) {
		t.Fatal("conflicting acquire granted immediately")
	}
	if ok2 {
		t.Fatal("grant fired while queued")
	}
	if len(d.demands) != 1 {
		t.Fatalf("demands = %v", d.demands)
	}
	dm := d.demands[0]
	if dm.holder != 1 || dm.ino != 10 || dm.to != msg.LockShared {
		t.Fatalf("demand = %+v, want holder 1 -> shared", dm)
	}
	// Holder complies.
	tb.Downgraded(1, 10, msg.LockShared, dm.id)
	if !ok2 || m2 != msg.LockShared {
		t.Fatalf("waiter not granted after downgrade: ok=%v m=%v", ok2, m2)
	}
	if tb.Held(1, 10) != msg.LockShared || tb.Held(2, 10) != msg.LockShared {
		t.Fatal("post-downgrade holds wrong")
	}
}

func TestExclusiveWaiterDemandsFullRelease(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockShared, granted(&m, &ok))
	tb.Acquire(2, 10, msg.LockShared, granted(&m, &ok))
	var mx msg.LockMode
	var okx bool
	tb.Acquire(3, 10, msg.LockExclusive, granted(&mx, &okx))
	if len(d.demands) != 2 {
		t.Fatalf("demands = %+v, want 2", d.demands)
	}
	for _, dm := range d.demands {
		if dm.to != msg.LockNone {
			t.Fatalf("demand target = %v, want none", dm.to)
		}
	}
	tb.Downgraded(1, 10, msg.LockNone, d.demands[0].id)
	if okx {
		t.Fatal("granted before all holders released")
	}
	tb.Downgraded(2, 10, msg.LockNone, d.demands[1].id)
	if !okx || mx != msg.LockExclusive {
		t.Fatal("exclusive not granted after all releases")
	}
}

func TestFIFONoStarvation(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var mA msg.LockMode
	var okA bool
	tb.Acquire(1, 10, msg.LockShared, granted(&mA, &okA))
	// Client 2 queues for exclusive.
	var mX msg.LockMode
	var okX bool
	tb.Acquire(2, 10, msg.LockExclusive, granted(&mX, &okX))
	// Client 3 asks for shared, which is compatible with holder 1 — but it
	// must NOT jump the queued exclusive.
	var mB msg.LockMode
	var okB bool
	if tb.Acquire(3, 10, msg.LockShared, granted(&mB, &okB)) {
		t.Fatal("shared jumped the exclusive queue")
	}
	tb.Release(1, 10, msg.LockNone)
	if !okX || mX != msg.LockExclusive {
		t.Fatal("queued exclusive not granted first")
	}
	if okB {
		t.Fatal("shared granted while exclusive held")
	}
	tb.Release(2, 10, msg.LockNone)
	if !okB || mB != msg.LockShared {
		t.Fatal("shared not granted after exclusive released")
	}
}

func TestUpgradeSharedToExclusive(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockShared, granted(&m, &ok))
	tb.Acquire(2, 10, msg.LockShared, granted(&m, &ok))
	var up msg.LockMode
	var okUp bool
	if tb.Acquire(1, 10, msg.LockExclusive, granted(&up, &okUp)) {
		t.Fatal("upgrade with another shared holder granted immediately")
	}
	// Only client 2 should be demanded (client 1 is the upgrader).
	if len(d.demands) != 1 || d.demands[0].holder != 2 || d.demands[0].to != msg.LockNone {
		t.Fatalf("demands = %+v", d.demands)
	}
	tb.Downgraded(2, 10, msg.LockNone, d.demands[0].id)
	if !okUp || up != msg.LockExclusive {
		t.Fatal("upgrade not granted")
	}
}

func TestCoalesceDuplicateWaiters(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	var w1, w2 msg.LockMode
	var okW1, okW2 bool
	tb.Acquire(2, 10, msg.LockShared, granted(&w1, &okW1))
	tb.Acquire(2, 10, msg.LockExclusive, granted(&w2, &okW2)) // coalesces, escalates
	if tb.WaitersOf(10) != 1 {
		t.Fatalf("waiters = %d, want 1 (coalesced)", tb.WaitersOf(10))
	}
	tb.Release(1, 10, msg.LockNone)
	if okW1 {
		t.Fatal("superseded grant callback fired")
	}
	if !okW2 || w2 != msg.LockExclusive {
		t.Fatal("escalated waiter not granted exclusive")
	}
}

func TestDemandEscalation(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	tb.Acquire(2, 10, msg.LockShared, func(msg.LockMode) {})
	if len(d.demands) != 1 || d.demands[0].to != msg.LockShared {
		t.Fatalf("demands = %+v", d.demands)
	}
	// A third client wants exclusive; holder 1 must now be demanded to
	// LockNone even though a shared demand is outstanding.
	tb.Acquire(3, 10, msg.LockExclusive, func(msg.LockMode) {})
	// Head waiter is still client 2 (shared), so no escalation yet — the
	// escalation happens when 2 is at the head needing only shared. The
	// demand set must still target the head's needs.
	found := false
	for _, dm := range d.demands {
		if dm.holder == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("holder 1 never demanded")
	}
}

func TestReleaseErrors(t *testing.T) {
	tb := NewTable(&demandRec{})
	if errno := tb.Release(1, 10, msg.LockNone); errno != msg.ErrNotHolder {
		t.Fatalf("release of unheld = %v", errno)
	}
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockShared, granted(&m, &ok))
	if errno := tb.Release(2, 10, msg.LockNone); errno != msg.ErrNotHolder {
		t.Fatalf("release by non-holder = %v", errno)
	}
	// Upgrading via Release is ignored.
	if errno := tb.Release(1, 10, msg.LockExclusive); errno != msg.OK {
		t.Fatalf("no-op release = %v", errno)
	}
	if tb.Held(1, 10) != msg.LockShared {
		t.Fatal("release upgraded the lock")
	}
}

func TestStealAll(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	tb.Acquire(1, 11, msg.LockShared, granted(&m, &ok))
	var w msg.LockMode
	var okW bool
	tb.Acquire(2, 10, msg.LockExclusive, granted(&w, &okW))
	stolen := tb.StealAll(1)
	if len(stolen) != 2 {
		t.Fatalf("stolen = %v, want 2 objects", stolen)
	}
	if !okW || w != msg.LockExclusive {
		t.Fatal("waiter not promoted after steal")
	}
	if tb.LocksHeldBy(1) != 0 {
		t.Fatal("stolen client still holds locks")
	}
}

func TestStealRemovesWaiters(t *testing.T) {
	tb := NewTable(&demandRec{})
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	fired := false
	tb.Acquire(2, 10, msg.LockExclusive, func(msg.LockMode) { fired = true })
	tb.StealAll(2) // steal the waiter's client
	tb.Release(1, 10, msg.LockNone)
	if fired {
		t.Fatal("grant fired for stolen waiter")
	}
	if tb.Objects() != 0 {
		t.Fatalf("objects = %d, want 0 after gc", tb.Objects())
	}
}

func TestDowngradedStaleDemandID(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	// Voluntary downgrade with a bogus demand id on an object with state.
	if errno := tb.Downgraded(1, 10, msg.LockShared, 999); errno != msg.OK {
		t.Fatalf("stale downgrade errno = %v", errno)
	}
	if tb.Held(1, 10) != msg.LockShared {
		t.Fatal("voluntary downgrade ignored")
	}
	// Downgraded on unknown object is accepted (idempotent).
	if errno := tb.Downgraded(1, 99, msg.LockNone, 1); errno != msg.OK {
		t.Fatalf("unknown-object downgrade errno = %v", errno)
	}
	// An upgrade via Downgraded is ignored.
	tb.Downgraded(1, 10, msg.LockExclusive, 0)
	if tb.Held(1, 10) != msg.LockShared {
		t.Fatal("Downgraded upgraded the lock")
	}
}

func TestNoDuplicateDemands(t *testing.T) {
	d := &demandRec{}
	tb := NewTable(d)
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, granted(&m, &ok))
	tb.Acquire(2, 10, msg.LockExclusive, func(msg.LockMode) {})
	tb.Acquire(3, 10, msg.LockShared, func(msg.LockMode) {})
	n := 0
	for _, dm := range d.demands {
		if dm.holder == 1 && dm.to == msg.LockNone {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("holder 1 demanded to none %d times, want once: %+v", n, d.demands)
	}
}

func TestAcquireNonePanics(t *testing.T) {
	tb := NewTable(&demandRec{})
	defer func() {
		if recover() == nil {
			t.Fatal("Acquire(LockNone) did not panic")
		}
	}()
	tb.Acquire(1, 10, msg.LockNone, func(msg.LockMode) {})
}

func TestGCCleansIdleObjects(t *testing.T) {
	tb := NewTable(&demandRec{})
	var m msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockShared, granted(&m, &ok))
	tb.Release(1, 10, msg.LockNone)
	if tb.Objects() != 0 {
		t.Fatalf("objects = %d after full release", tb.Objects())
	}
	if tb.Held(1, 10) != msg.LockNone || tb.HoldersOf(10) != 0 || tb.WaitersOf(10) != 0 {
		t.Fatal("queries on gc'd object wrong")
	}
}
