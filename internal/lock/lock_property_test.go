package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/msg"
)

// replayDemander complies with every demand immediately, like a fully
// responsive client population.
type replayDemander struct {
	t *Table
	// queue defers compliance so it happens outside the table's own call
	// stack (mirroring a real async client).
	queue []demandCall
}

func (d *replayDemander) Demand(holder msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID) {
	d.queue = append(d.queue, demandCall{holder, ino, to, id})
}

func (d *replayDemander) drain() {
	for len(d.queue) > 0 {
		c := d.queue[0]
		d.queue = d.queue[1:]
		d.t.Downgraded(c.holder, c.ino, c.to, c.id)
	}
}

// checkInvariant verifies no two holders of any object are incompatible.
func checkInvariant(t *Table) bool {
	for _, o := range t.objects {
		for a, ma := range o.holders {
			for b, mb := range o.holders {
				if a != b && !ma.Compatible(mb) {
					return false
				}
			}
		}
	}
	return true
}

// Property: under any random interleaving of acquires, releases, steals
// and (eventual) demand compliance, the lock table never holds two
// incompatible locks, and every acquire by a compliant population is
// eventually granted.
func TestLockTableInvariantProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		d := &replayDemander{}
		tb := NewTable(d)
		d.t = tb
		pendingGrants := 0
		for _, raw := range opsRaw {
			client := msg.NodeID(raw%4 + 1)
			ino := msg.ObjectID(raw / 4 % 3)
			switch raw % 5 {
			case 0, 1: // acquire shared or exclusive
				mode := msg.LockShared
				if raw%2 == 0 {
					mode = msg.LockExclusive
				}
				pendingGrants++
				tb.Acquire(client, ino, mode, func(msg.LockMode) { pendingGrants-- })
			case 2:
				tb.Release(client, ino, msg.LockNone)
			case 3:
				tb.StealAll(client)
				// Steals drop that client's queued grants silently;
				// account for them.
				pendingGrants = countWaiters(tb)
			case 4:
				d.drain()
			}
			if !checkInvariant(tb) {
				return false
			}
			_ = rng
		}
		// Fully compliant end-state: drain all demands; all waiters must
		// eventually be granted.
		for i := 0; i < 64 && countWaiters(tb) > 0; i++ {
			d.drain()
		}
		return checkInvariant(tb) && countWaiters(tb) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func countWaiters(t *Table) int {
	n := 0
	for _, o := range t.objects {
		n += len(o.waiters)
	}
	return n
}

// Property: OutstandingDemands reports exactly the demands not yet
// satisfied.
func TestOutstandingDemandsProperty(t *testing.T) {
	d := &replayDemander{}
	tb := NewTable(d)
	d.t = tb
	var g msg.LockMode
	var ok bool
	tb.Acquire(1, 10, msg.LockExclusive, func(m msg.LockMode) { g, ok = m, true })
	tb.Acquire(2, 10, msg.LockExclusive, func(msg.LockMode) {})
	if !ok || g != msg.LockExclusive {
		t.Fatal("first grant missing")
	}
	out := tb.OutstandingDemands(1)
	if len(out) != 1 || out[0].Ino != 10 || out[0].To != msg.LockNone {
		t.Fatalf("outstanding = %+v", out)
	}
	d.drain()
	if len(tb.OutstandingDemands(1)) != 0 {
		t.Fatal("demand still outstanding after compliance")
	}
}
