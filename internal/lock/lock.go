// Package lock implements the server's logical lock manager. Storage Tank
// locks are logical — they name file objects, not disk address ranges
// (contrast GFS dlocks, §5) — and are granted, demanded back, and stolen
// by the metadata server, which is the locking authority.
//
// The table is policy-free: when a requested lock conflicts with current
// holders it queues the request and asks its Demander to revoke the
// conflicting holds. What happens when a holder does not answer a demand
// (the lease timeout) is the server's and internal/core's business.
package lock

import (
	"fmt"
	"sort"

	"repro/internal/msg"
)

// Demander is the table's outgoing revocation channel. Demand asks holder
// to downgrade its lock on ino to mode `to`; the same (holder, ino) pair is
// never demanded twice concurrently unless the target mode tightens.
type Demander interface {
	Demand(holder msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID)
}

// GrantFn is invoked when a queued acquire is finally granted.
type GrantFn func(mode msg.LockMode)

type waiter struct {
	client msg.NodeID
	mode   msg.LockMode
	grant  GrantFn
}

type demandState struct {
	id msg.DemandID
	to msg.LockMode
}

type objLock struct {
	holders  map[msg.NodeID]msg.LockMode
	waiters  []waiter
	demanded map[msg.NodeID]demandState
}

func newObjLock() *objLock {
	return &objLock{
		holders:  make(map[msg.NodeID]msg.LockMode),
		demanded: make(map[msg.NodeID]demandState),
	}
}

// Table is the lock manager for one server.
type Table struct {
	objects  map[msg.ObjectID]*objLock
	demander Demander
	nextID   msg.DemandID
	// holds counts (client, object) holder entries across all objects,
	// maintained incrementally so the per-shard locks_held gauge is O(1)
	// to read on every request.
	holds int
}

// setHold adds or replaces client's hold on o, keeping the holds count.
func (t *Table) setHold(o *objLock, client msg.NodeID, mode msg.LockMode) {
	if _, ok := o.holders[client]; !ok {
		t.holds++
	}
	o.holders[client] = mode
}

// delHold removes client's hold on o, keeping the holds count.
func (t *Table) delHold(o *objLock, client msg.NodeID) {
	if _, ok := o.holders[client]; ok {
		t.holds--
	}
	delete(o.holders, client)
}

// NewTable creates an empty lock table that revokes through d.
func NewTable(d Demander) *Table {
	return &Table{objects: make(map[msg.ObjectID]*objLock), demander: d}
}

func (t *Table) obj(ino msg.ObjectID) *objLock {
	o := t.objects[ino]
	if o == nil {
		o = newObjLock()
		t.objects[ino] = o
	}
	return o
}

func (t *Table) gc(ino msg.ObjectID, o *objLock) {
	if len(o.holders) == 0 && len(o.waiters) == 0 && len(o.demanded) == 0 {
		delete(t.objects, ino)
	}
}

// compatible reports whether client may hold mode on o given the other
// holders (the client's own current hold is ignored: upgrades replace it).
func (o *objLock) compatible(client msg.NodeID, mode msg.LockMode) bool {
	for h, m := range o.holders {
		if h == client {
			continue
		}
		if !m.Compatible(mode) {
			return false
		}
	}
	return true
}

// Acquire requests a data lock. If the mode is immediately grantable —
// including when the client already holds a covering mode — grant runs
// before Acquire returns and the result is true. Otherwise the request is
// queued FIFO, demands are issued to conflicting holders, and grant runs
// later. Duplicate queued acquires from the same client for the same
// object are coalesced to the strongest mode.
func (t *Table) Acquire(client msg.NodeID, ino msg.ObjectID, mode msg.LockMode, grant GrantFn) bool {
	if mode == msg.LockNone {
		panic("lock: acquiring LockNone")
	}
	o := t.obj(ino)
	if cur, ok := o.holders[client]; ok && cur.Covers(mode) {
		grant(cur) // idempotent re-acquire (request retry)
		return true
	}
	// Grant immediately only if compatible AND no one is queued ahead
	// (prevents starvation of queued exclusives by a stream of shares).
	if len(o.waiters) == 0 && o.compatible(client, mode) {
		t.setHold(o, client, mode)
		grant(mode)
		return true
	}
	for i := range o.waiters {
		if o.waiters[i].client == client {
			if mode > o.waiters[i].mode {
				o.waiters[i].mode = mode
				o.waiters[i].grant = grant
				t.issueDemands(ino, o)
			}
			return false
		}
	}
	o.waiters = append(o.waiters, waiter{client: client, mode: mode, grant: grant})
	t.issueDemands(ino, o)
	return false
}

// issueDemands asks conflicting holders to downgrade far enough for the
// head waiter (and any compatible followers) to proceed.
func (t *Table) issueDemands(ino msg.ObjectID, o *objLock) {
	if len(o.waiters) == 0 {
		return
	}
	head := o.waiters[0]
	holders := make([]msg.NodeID, 0, len(o.holders))
	for h := range o.holders {
		holders = append(holders, h)
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	for _, holder := range holders {
		held := o.holders[holder]
		if holder == head.client {
			continue
		}
		var to msg.LockMode
		switch {
		case head.mode == msg.LockExclusive:
			to = msg.LockNone
		case held == msg.LockExclusive:
			to = msg.LockShared
		default:
			continue // already compatible
		}
		if d, ok := o.demanded[holder]; ok && d.to <= to {
			continue // equal or stronger demand already outstanding
		}
		t.nextID++
		id := t.nextID
		o.demanded[holder] = demandState{id: id, to: to}
		t.demander.Demand(holder, ino, to, id)
	}
}

// Install restores a reasserted lock directly (server recovery, §6). It
// succeeds only if the mode is compatible with every other current
// holder; queued waiters are not consulted (during the grace period no
// new acquires are admitted).
func (t *Table) Install(client msg.NodeID, ino msg.ObjectID, mode msg.LockMode) bool {
	if mode == msg.LockNone {
		return true
	}
	o := t.obj(ino)
	if !o.compatible(client, mode) {
		t.gc(ino, o)
		return false
	}
	if cur, ok := o.holders[client]; !ok || mode > cur {
		t.setHold(o, client, mode)
	}
	return true
}

// Release downgrades client's hold on ino to `to` (LockNone releases). It
// is a no-op if the client holds nothing stronger.
func (t *Table) Release(client msg.NodeID, ino msg.ObjectID, to msg.LockMode) msg.Errno {
	o, ok := t.objects[ino]
	if !ok {
		return msg.ErrNotHolder
	}
	cur, ok := o.holders[client]
	if !ok {
		return msg.ErrNotHolder
	}
	if to >= cur {
		return msg.OK // not a downgrade; ignore
	}
	t.setMode(ino, o, client, to)
	return msg.OK
}

// Downgraded records completion of a demanded downgrade. Stale demand IDs
// (from demands already satisfied or escalated) are accepted idempotently
// as long as the resulting mode is no stronger than currently held.
func (t *Table) Downgraded(client msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID) msg.Errno {
	o, ok := t.objects[ino]
	if !ok {
		return msg.OK
	}
	if d, ok := o.demanded[client]; ok && d.id == id {
		delete(o.demanded, client)
	}
	if cur, ok := o.holders[client]; ok && to < cur {
		t.setMode(ino, o, client, to)
	}
	return msg.OK
}

func (t *Table) setMode(ino msg.ObjectID, o *objLock, client msg.NodeID, to msg.LockMode) {
	if to == msg.LockNone {
		t.delHold(o, client)
	} else {
		t.setHold(o, client, to)
	}
	if d, ok := o.demanded[client]; ok && to <= d.to {
		delete(o.demanded, client)
	}
	t.promote(ino, o)
	t.gc(ino, o)
}

// promote grants queued waiters, in order, while the head is compatible.
func (t *Table) promote(ino msg.ObjectID, o *objLock) {
	for len(o.waiters) > 0 {
		w := o.waiters[0]
		if cur, ok := o.holders[w.client]; ok && cur.Covers(w.mode) {
			o.waiters = o.waiters[1:]
			w.grant(cur)
			continue
		}
		if !o.compatible(w.client, w.mode) {
			t.issueDemands(ino, o)
			return
		}
		o.waiters = o.waiters[1:]
		t.setHold(o, w.client, w.mode)
		w.grant(w.mode)
	}
}

// StealAll removes every hold, wait, and outstanding demand of client —
// the lock steal performed when the client's lease times out — and
// returns the objects whose locks were stolen. Queued grants for the
// stolen client are dropped without calling their GrantFn (the server has
// already stopped talking to it).
func (t *Table) StealAll(client msg.NodeID) []msg.ObjectID {
	inos := make([]msg.ObjectID, 0, len(t.objects))
	for ino := range t.objects {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	var stolen []msg.ObjectID
	for _, ino := range inos {
		o := t.objects[ino]
		changed := false
		if _, ok := o.holders[client]; ok {
			t.delHold(o, client)
			stolen = append(stolen, ino)
			changed = true
		}
		for i := range o.waiters {
			if o.waiters[i].client == client {
				o.waiters = append(o.waiters[:i], o.waiters[i+1:]...)
				changed = true
				break
			}
		}
		delete(o.demanded, client)
		if changed {
			t.promote(ino, o)
			t.gc(ino, o)
		}
	}
	return stolen
}

// DemandInfo describes one outstanding demand against a holder.
type DemandInfo struct {
	Ino msg.ObjectID
	To  msg.LockMode
	ID  msg.DemandID
}

// OutstandingDemands lists the demands issued to holder that have not yet
// been satisfied, for transports that need to re-send them, in
// deterministic order.
func (t *Table) OutstandingDemands(holder msg.NodeID) []DemandInfo {
	var out []DemandInfo
	for ino, o := range t.objects {
		if d, ok := o.demanded[holder]; ok {
			out = append(out, DemandInfo{Ino: ino, To: d.to, ID: d.id})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ino < out[j].Ino })
	return out
}

// Held returns the mode client currently holds on ino.
func (t *Table) Held(client msg.NodeID, ino msg.ObjectID) msg.LockMode {
	if o, ok := t.objects[ino]; ok {
		return o.holders[client]
	}
	return msg.LockNone
}

// HoldersOf returns the number of holders of ino.
func (t *Table) HoldersOf(ino msg.ObjectID) int {
	if o, ok := t.objects[ino]; ok {
		return len(o.holders)
	}
	return 0
}

// WaitersOf returns the number of queued acquires on ino.
func (t *Table) WaitersOf(ino msg.ObjectID) int {
	if o, ok := t.objects[ino]; ok {
		return len(o.waiters)
	}
	return 0
}

// LocksHeldBy counts objects on which client holds any lock.
func (t *Table) LocksHeldBy(client msg.NodeID) int {
	n := 0
	for _, o := range t.objects {
		if _, ok := o.holders[client]; ok {
			n++
		}
	}
	return n
}

// HeldCount returns the total number of (client, object) holder entries
// in the table — the value behind the server.<id>.locks_held gauge.
func (t *Table) HeldCount() int { return t.holds }

// Objects returns the number of objects with any lock state.
func (t *Table) Objects() int { return len(t.objects) }

func (t *Table) String() string {
	return fmt.Sprintf("lock.Table{objects: %d}", len(t.objects))
}
