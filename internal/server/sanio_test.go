package server_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/msg"
)

// TestFuncIOUnalignedOffsetRejected is the regression test for the
// function-ship alignment bug: funcRead/funcWrite computed the block as
// Offset / BlockSize, so an unaligned offset silently served (or
// overwrote) the containing block's start instead of the requested
// bytes. Such requests must be refused with ErrRange.
func TestFuncIOUnalignedOffsetRejected(t *testing.T) {
	cl := boot(t)
	h, attr := cl.MustOpen(0, "/unaligned", true, true)
	if errno := cl.Write(0, h, 0, bytes.Repeat([]byte{0xAB}, cluster.BlockSize)); errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Sync(0); errno != msg.OK {
		t.Fatal(errno)
	}
	if errno := cl.Close(0, h); errno != msg.OK {
		t.Fatal(errno)
	}

	// Unaligned read: the old code would have ACKed block 0's bytes.
	r := raw(t, cl, &msg.FuncRead{ReqHeader: hdrFor(cl, 11001),
		Ino: attr.Ino, Offset: 100, Length: 64})
	if r == nil || r.Status != msg.ACK || r.Err != msg.ErrRange {
		t.Fatalf("unaligned FuncRead reply = %+v, want ACK/ErrRange", r)
	}

	// Unaligned write: the old code would have clobbered block 1 with
	// bytes destined for offset 4196.
	r = raw(t, cl, &msg.FuncWrite{ReqHeader: hdrFor(cl, 11002),
		Ino: attr.Ino, Offset: cluster.BlockSize + 100, Data: []byte("stray")})
	if r == nil || r.Status != msg.ACK || r.Err != msg.ErrRange {
		t.Fatalf("unaligned FuncWrite reply = %+v, want ACK/ErrRange", r)
	}

	// Aligned requests still work, and the rejected write left no trace.
	r = raw(t, cl, &msg.FuncRead{ReqHeader: hdrFor(cl, 11003),
		Ino: attr.Ino, Offset: 0, Length: 64})
	if r == nil || r.Err != msg.OK {
		t.Fatalf("aligned FuncRead reply = %+v", r)
	}
	data := r.Body.(msg.FuncReadRes).Data
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAB}, 64)) {
		t.Fatalf("aligned FuncRead returned wrong bytes: % x...", data[:8])
	}
	r = raw(t, cl, &msg.FuncWrite{ReqHeader: hdrFor(cl, 11004),
		Ino: attr.Ino, Offset: cluster.BlockSize, Data: []byte("ok")})
	if r == nil || r.Err != msg.OK {
		t.Fatalf("aligned FuncWrite reply = %+v", r)
	}
}
