package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/meta"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Replicated-authority integration (DESIGN.md §15). When Config.Replica
// is set, the server is one member of a replica group: it boots passive,
// runs the PaxosLease negotiation (internal/replica) alongside its
// siblings, and serves clients only while it holds the authority lease.
// The paper's lease economy makes this cheap — a passive replica carries
// no per-client state to keep warm; everything volatile is rebuilt by the
// clients themselves through grace-period reassertion (§6) when the
// replica activates.

// authorityHeld reports whether this server may act as the lease
// authority right now. A non-replicated server always holds it.
func (s *Server) authorityHeld() bool { return s.neg == nil || s.activeFlg }

// ActiveAuthority reports whether this server currently serves as the
// (possibly replicated) lease authority, for tests and the harness.
func (s *Server) ActiveAuthority() bool { return s.authorityHeld() }

// Role reports the server's replica role as a msg.Role* constant; a
// non-replicated server is always active.
func (s *Server) Role() uint8 {
	if s.neg == nil {
		return msg.RoleActive
	}
	return s.neg.Role()
}

// NegBallot reports the negotiator's current ballot (0 when not
// replicated), for operator display.
func (s *Server) NegBallot() uint64 {
	if s.neg == nil {
		return 0
	}
	return s.neg.Ballot()
}

// syncRoleGauges refreshes the operator-visible role and ballot gauges
// (server.<id>.role carries a msg.Role* value).
func (s *Server) syncRoleGauges() {
	s.roleGauge.Set(int64(s.Role()))
	s.ballotGauge.Set(int64(s.NegBallot()))
}

// activate is the negotiator's OnActive callback: this replica won the
// authority lease. It recovers the metadata store (live replicas load the
// durable snapshot; sim replicas share the Store pointer) and decides
// whether the takeover needs a grace period: a nonzero durable epoch
// counter means clients registered under a prior regime, so their locks
// may be live and must get the reassertion window; a zero counter is a
// cold boot with provably no one to protect.
func (s *Server) activate(ballot uint64) {
	s.activeFlg = true
	if s.cfg.MetaPersist != "" {
		st, err := meta.LoadSnapshot(s.cfg.MetaPersist)
		if err != nil {
			panic(fmt.Sprintf("server %v: recovering metadata snapshot: %v", s.id, err))
		}
		if st != nil {
			s.store = st
		}
	}
	if s.cfg.PlaceOwner != nil {
		s.store.SetAutoParents(true)
		for _, e := range s.store.PendingExports() {
			s.resumeHandoff(e)
		}
	}
	note := "cold"
	if s.store.CurrentEpoch() > 0 {
		note = "grace"
		s.inRecovery = true
		s.graceUntil = s.clock.Now().Add(s.cfg.GracePeriod)
		until := s.graceUntil
		s.clock.AfterFunc(s.cfg.GracePeriod, func() {
			if s.stopped || !s.activeFlg || s.graceUntil != until {
				return // crashed, stepped down, or re-activated since
			}
			s.inRecovery = false
			s.emit(trace.Event{Type: trace.EvReplicaTakeover,
				Epoch: msg.Epoch(ballot), Note: "grace-end"})
		})
	}
	s.emit(trace.Event{Type: trace.EvReplicaTakeover,
		Epoch: msg.Epoch(ballot), Note: note})
	s.syncRoleGauges()
}

// deactivate is the negotiator's OnStepdown callback: the authority lease
// lapsed (isolation, supersession). All volatile authority state is
// discarded — whoever activates next rebuilds it from client reassertion,
// and keeping stale lock tables around could only corrupt that.
func (s *Server) deactivate() {
	s.activeFlg = false
	s.resetVolatile()
	s.syncRoleGauges()
}

// resetVolatile clears every piece of state the paper calls volatile
// (§6): locks, registrations, handles, baseline leases, suspect-tracking,
// and in-flight demands. The durable store (metadata, epochs, handoff
// ledgers) is untouched.
func (s *Server) resetVolatile() {
	for id, d := range s.demands {
		if d.timer != nil {
			d.timer.Stop()
		}
		delete(s.demands, id)
	}
	s.locks = lock.NewTable(demanderFunc(s.sendDemand))
	s.syncLocksHeld()
	s.auth = core.NewAuthority(s.cfg.Core, s.clock, authorityActions{s},
		core.Env{Reg: s.reg, Prefix: "server.", Tracer: s.tracer, Node: s.id})
	s.epochs = make(map[msg.NodeID]msg.Epoch)
	s.handles = make(map[msg.NodeID]map[msg.Handle]msg.ObjectID)
	s.objLeases = make(map[objLeaseKey]sim.Time)
	s.mustRejoin = make(map[msg.NodeID]bool)
	s.inRecovery = false
}

// redirect answers a client request this passive replica must not serve:
// a NACK carrying ErrNotActive, which the client channel treats as a
// routing hint (rotate to the next replica) rather than a lease event.
func (s *Server) redirect(client msg.NodeID, id msg.ReqID) {
	s.redirectsSent.Inc()
	s.send(client, &msg.Reply{Client: client, Req: id, Status: msg.NACK, Err: msg.ErrNotActive})
}

// handleReplicaInfo answers the operator role query. Any replica answers,
// active or not — that is the point of the query — and the reply is
// lease-neutral (the client channel special-cases ReplicaInfoRes).
func (s *Server) handleReplicaInfo(client msg.NodeID, id msg.ReqID) {
	active := s.id
	if s.neg != nil {
		active = s.neg.ActiveHint()
	}
	s.send(client, &msg.Reply{Client: client, Req: id, Status: msg.ACK,
		Body: msg.ReplicaInfoRes{Role: s.Role(), Ballot: s.NegBallot(), Active: active}})
}

// persistMeta snapshots the durable store to the configured path. Called
// before every reply leaves an active replicated server: an acknowledged
// metadata operation must survive a SIGKILL of this process.
func (s *Server) persistMeta() {
	if s.cfg.MetaPersist == "" || !s.activeFlg {
		return
	}
	if err := s.store.SaveSnapshot(s.cfg.MetaPersist); err != nil {
		panic(fmt.Sprintf("server %v: persisting metadata snapshot: %v", s.id, err))
	}
}
