package server

import (
	"sort"

	"repro/internal/baselines"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pendingDemand is a server-initiated Demand awaiting its transport-level
// DemandAck. The absence of that ack, after retries, is the "delivery
// error" that activates the recovery policy.
type pendingDemand struct {
	holder msg.NodeID
	ino    msg.ObjectID
	to     msg.LockMode
	id     msg.DemandID
	tries  int
	timer  sim.Timer
}

// sendDemand is the lock table's Demander hook.
func (s *Server) sendDemand(holder msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID) {
	pd := &pendingDemand{holder: holder, ino: ino, to: to, id: id}
	s.demands[id] = pd
	s.transmitDemand(pd)
}

func (s *Server) transmitDemand(pd *pendingDemand) {
	s.demandsSent.Inc()
	note := ""
	if pd.tries > 0 {
		note = "retry"
	}
	s.emit(trace.Event{Type: trace.EvDemand, Peer: pd.holder, Ino: pd.ino,
		To: pd.to.String(), Note: note})
	s.send(pd.holder, &msg.Demand{ID: pd.id, Ino: pd.ino, Mode: pd.to, Server: s.id})
	pd.timer = s.clock.AfterFunc(s.cfg.Core.RetryInterval, func() {
		if s.demands[pd.id] != pd {
			return
		}
		if pd.tries >= s.cfg.Core.DemandRetries {
			delete(s.demands, pd.id)
			s.emit(trace.Event{Type: trace.EvDemandFailed, Peer: pd.holder, Ino: pd.ino})
			s.onDeliveryFailure(pd.holder)
			return
		}
		pd.tries++
		s.transmitDemand(pd)
	})
}

// handleDemandAck stops the retry loop: the client is alive and has
// accepted the demand. The downgrade itself completes later via a
// LockDowngraded request.
func (s *Server) handleDemandAck(m *msg.DemandAck) {
	pd, ok := s.demands[m.ID]
	if !ok || pd.holder != m.Client {
		return
	}
	if pd.timer != nil {
		pd.timer.Stop()
	}
	delete(s.demands, m.ID)
}

// cancelDemandsTo drops outstanding demands aimed at a client whose locks
// were stolen (nothing left to downgrade).
func (s *Server) cancelDemandsTo(client msg.NodeID) {
	for id, pd := range s.demands {
		if pd.holder == client {
			if pd.timer != nil {
				pd.timer.Stop()
			}
			delete(s.demands, id)
		}
	}
}

// onDeliveryFailure reacts to an unacknowledged demand per the recovery
// policy — the heart of the comparison experiments.
func (s *Server) onDeliveryFailure(client msg.NodeID) {
	switch s.cfg.Policy.Recovery {
	case baselines.RecoverLeaseFence:
		// The paper's protocol: hand the problem to the passive lease
		// authority. It NACKs the client from now on and steals (and
		// fences, via StealLocks) after τ(1+ε).
		s.auth.OnDeliveryFailure(client)

	case baselines.RecoverHonorLocks:
		// Never steal. The conflicting request stays queued — possibly
		// forever (T2's unavailability) — and the server keeps re-sending
		// the demand so that progress resumes if the partition heals.
		s.clock.AfterFunc(s.cfg.Core.RetryInterval*4, func() { s.redemandNow(client) })

	case baselines.RecoverStealImmediate:
		// Traditional recovery, unsafe on NAS: steal now, no fence.
		s.mustRejoin[client] = true
		s.emit(trace.Event{Type: trace.EvStealFired, Peer: client, Note: "immediate"})
		s.stealAndFence(client, false)

	case baselines.RecoverFenceOnly:
		// §2.1's strawman: fence at the disks, then steal. The client is
		// not told; it discovers the fence when its I/O fails.
		s.mustRejoin[client] = true
		s.emit(trace.Event{Type: trace.EvStealFired, Peer: client, Note: "fence-only"})
		s.stealAndFence(client, true)

	case baselines.RecoverHeartbeatSteal:
		// Frangipani-style: steal once the heartbeat lease has lapsed on
		// the server's clock.
		s.scheduleHeartbeatSteal(client)

	case baselines.RecoverPerObjectExpire:
		// V-style: every per-object lease the client holds will have
		// lapsed once TTL(1+ε) passes without renewals (renewals can no
		// longer arrive: the client is NACKed after the steal; before
		// it, each renewal pushes expiry, so wait from "now").
		s.schedulePerObjectSteal(client)
	}
}

// redemandNow re-transmits the demands still outstanding against a
// holder (honor-locks). If delivery fails again, onDeliveryFailure
// re-schedules this, so the demand loop runs until the partition heals.
func (s *Server) redemandNow(client msg.NodeID) {
	if s.locks.LocksHeldBy(client) == 0 {
		return
	}
	for _, d := range s.locks.OutstandingDemands(client) {
		if _, inFlight := s.demands[d.ID]; inFlight {
			continue
		}
		pd := &pendingDemand{holder: client, ino: d.Ino, to: d.To, id: d.ID}
		s.demands[d.ID] = pd
		s.transmitDemand(pd)
	}
}

// scheduleHeartbeatSteal arms (idempotently) the Frangipani-style steal.
func (s *Server) scheduleHeartbeatSteal(client msg.NodeID) {
	if s.hbTimers[client] != nil {
		return
	}
	s.leaseOps.Inc()
	var check func()
	check = func() {
		last, ok := s.lastHeard[client]
		s.leaseOps.Inc() // scanning the lease table is server work
		// The steal waits TTL(1+ε) past the last heartbeat: the client's
		// own lease — measured on its rate-synchronized clock from the
		// heartbeat's send time — has then provably lapsed (the same
		// argument as Theorem 3.1, with heartbeats in place of
		// opportunistic renewals).
		if ok && s.clock.Now().Sub(last) < s.cfg.Core.Bound.Stretch(s.cfg.HeartbeatTTL) {
			// Lease still valid; re-check when it could lapse.
			s.hbTimers[client] = s.clock.AfterFunc(s.cfg.HeartbeatTTL/4, check)
			return
		}
		delete(s.hbTimers, client)
		s.mustRejoin[client] = true
		s.emit(trace.Event{Type: trace.EvStealFired, Peer: client, Note: "heartbeat"})
		s.stealAndFence(client, true)
	}
	s.hbTimers[client] = s.clock.AfterFunc(s.cfg.HeartbeatTTL/4, check)
}

// schedulePerObjectSteal arms the V-style steal at TTL(1+ε).
func (s *Server) schedulePerObjectSteal(client msg.NodeID) {
	if s.vTimers[client] != nil {
		return
	}
	s.leaseOps.Inc()
	s.vTimers[client] = s.clock.AfterFunc(s.cfg.Core.Bound.Stretch(s.cfg.PerObjectTTL), func() {
		delete(s.vTimers, client)
		s.mustRejoin[client] = true
		s.emit(trace.Event{Type: trace.EvStealFired, Peer: client, Note: "per-object"})
		s.stealAndFence(client, false) // V predates fencing; client-side expiry is the safety
	})
}

// stealAndFence removes every lock the client holds (redistributing to
// waiters), cancels demands aimed at it, closes its handles, and — when
// fence is true — erects the SAN fence.
func (s *Server) stealAndFence(client msg.NodeID, fence bool) {
	if !s.authorityHeld() {
		// A stale suspect timer from a pre-stepdown authority incarnation:
		// this replica no longer speaks for the lease, so it must neither
		// steal nor fence.
		return
	}
	s.cancelDemandsTo(client)
	s.locks.StealAll(client)
	delete(s.handles, client)
	for k := range s.objLeases {
		if k.client == client {
			delete(s.objLeases, k)
		}
	}
	if fence && !s.cfg.DisableFence {
		s.setFence(client, true)
	}
	s.syncLocksHeld()
}

// setFence instructs every disk to fence/unfence the client.
func (s *Server) setFence(client msg.NodeID, on bool) {
	s.emit(trace.Event{Type: trace.EvFence, Peer: client, On: on})
	if on {
		s.fencedClients[client] = true
	} else {
		delete(s.fencedClients, client)
	}
	fenceDisks := s.cfg.Disks
	if s.cfg.FenceDisks != nil {
		fenceDisks = s.cfg.FenceDisks
	}
	disks := make([]msg.NodeID, 0, len(fenceDisks))
	for d := range fenceDisks {
		disks = append(disks, d)
	}
	sort.Slice(disks, func(i, j int) bool { return disks[i] < disks[j] })
	for _, d := range disks {
		s.fences.Inc()
		s.sanSend(d, func(req msg.ReqID) msg.Message {
			return &msg.FenceSet{Admin: s.id, Req: req, Target: client, On: on}
		}, nil)
	}
}
