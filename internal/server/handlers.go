package server

import (
	"strconv"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/trace"
)

// handleRequest is the control-network request path. Ordering matters:
//
//  1. Lease admission (Allow / mustRejoin / epoch) — a refused request is
//     NACKed without execution and without touching the reply cache.
//  2. At-most-once admission — duplicates are answered from cache or
//     absorbed.
//  3. Execution.
func (s *Server) handleRequest(req msg.Request) {
	h := req.Hdr()
	client, id := h.Client, h.Req

	// The operator role query is answered by every replica, active or
	// not, before any registration or epoch checks (like Rejoin).
	if _, isInfo := req.(*msg.ReplicaInfo); isInfo {
		s.handleReplicaInfo(client, id)
		return
	}
	// A passive replica serves nobody: redirect the client to the
	// authority (replica.go).
	if !s.authorityHeld() {
		s.redirect(client, id)
		return
	}

	if _, isRejoin := req.(*msg.Rejoin); isRejoin {
		s.handleRejoin(client, id)
		return
	}
	if m, isReassert := req.(*msg.Reassert); isReassert {
		s.handleReassert(client, id, m)
		return
	}

	// Lease admission. For the paper's policy this is Authority.Allow —
	// a lookup in an empty map during normal operation. For baseline
	// policies, mustRejoin covers stolen clients.
	if !s.auth.Allow(client) || s.mustRejoin[client] {
		if !s.cfg.NoNACK {
			s.nack(client, id)
		}
		return
	}
	// Stale or missing registration: the client must (re)join first.
	if s.epochs[client] == 0 || s.epochs[client] != h.Epoch {
		s.nack(client, id)
		return
	}

	// Baseline lease bookkeeping on the receive path.
	s.baselineOnMessage(client, req)

	disp, cached := s.rcache.Admit(client, id)
	switch disp {
	case core.Resend:
		s.send(client, cached)
		return
	case core.Absorb:
		return
	}

	s.transactions.Inc()
	s.execute(client, id, req)
}

// execute runs an admitted request and replies (possibly later, for lock
// acquires that must wait on demands).
func (s *Server) execute(client msg.NodeID, id msg.ReqID, req msg.Request) {
	ack := func(errno msg.Errno, body msg.Result) {
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: errno, Body: body})
	}
	switch m := req.(type) {
	case *msg.KeepAlive:
		// The NULL message (§3.1): no state touched; the ACK itself is
		// the entire function.
		ack(msg.OK, nil)

	case *msg.Lookup:
		in, errno := s.store.Lookup(m.Path)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.LookupRes{Attr: in.Attr()})

	case *msg.Create:
		in, errno := s.store.Create(m.Path, m.IsDir)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.CreateRes{Attr: in.Attr()})

	case *msg.Unlink:
		in, errno := s.store.Lookup(m.Path)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		if s.locks.HoldersOf(in.Ino) > 0 || s.store.Migrating(in.Ino) {
			ack(msg.ErrConflict, nil)
			return
		}
		ack(s.store.Unlink(m.Path), nil)

	case *msg.Open:
		in, errno := s.store.Get(m.Ino)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		if s.store.Migrating(m.Ino) {
			ack(msg.ErrConflict, nil)
			return
		}
		s.nextHandle++
		hs := s.handles[client]
		if hs == nil {
			hs = make(map[msg.Handle]msg.ObjectID)
			s.handles[client] = hs
		}
		hs[s.nextHandle] = m.Ino
		ack(msg.OK, msg.OpenRes{Handle: s.nextHandle, Attr: in.Attr()})

	case *msg.Close:
		if hs := s.handles[client]; hs != nil {
			delete(hs, m.Handle)
		}
		ack(msg.OK, nil)

	case *msg.GetAttr:
		in, errno := s.store.Get(m.Ino)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.AttrRes{Attr: in.Attr()})

	case *msg.SetAttr:
		if s.store.Migrating(m.Ino) {
			ack(msg.ErrConflict, nil)
			return
		}
		in, errno := s.store.SetSize(m.Ino, m.NewSize)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.AttrRes{Attr: in.Attr()})

	case *msg.Rename:
		in, e := s.store.Lookup(m.OldPath)
		if e == msg.OK && s.locks.HoldersOf(in.Ino) > 0 {
			// Like Unlink: path changes under an active lock holder are
			// refused (clients cache nothing about paths, but keeping the
			// rule uniform keeps recovery simple).
			ack(msg.ErrConflict, nil)
			return
		}
		if e == msg.OK && s.cfg.PlaceOwner != nil {
			if s.store.Migrating(in.Ino) || s.cfg.PlaceOwner(m.NewPath) != s.id {
				// The destination name belongs to another authority (or a
				// handoff is already pending): run the cross-shard
				// handoff protocol instead of a local move (shard.go).
				s.crossShardRename(client, id, in, m)
				return
			}
		}
		ack(s.store.Rename(m.OldPath, m.NewPath), nil)

	case *msg.Truncate:
		// Truncation invalidates other holders' cached pages; demand the
		// object exclusively first via the normal lock path — the server
		// only checks that the requester is the sole holder.
		if s.locks.HoldersOf(m.Ino) > 1 ||
			(s.locks.HoldersOf(m.Ino) == 1 && s.locks.Held(client, m.Ino) == msg.LockNone) ||
			s.store.Migrating(m.Ino) {
			ack(msg.ErrConflict, nil)
			return
		}
		in, errno := s.store.Truncate(m.Ino, int(m.Blocks))
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.AttrRes{Attr: in.Attr()})

	case *msg.Readdir:
		entries, errno := s.store.Readdir(m.Ino)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.ReaddirRes{Entries: entries})

	case *msg.GetBlocks:
		in, errno := s.store.Get(m.Ino)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.BlocksRes{Attr: in.Attr(), Blocks: append([]msg.BlockRef(nil), in.Blocks...)})

	case *msg.AllocBlocks:
		if s.store.Migrating(m.Ino) {
			ack(msg.ErrConflict, nil)
			return
		}
		in, errno := s.store.AllocBlocks(m.Ino, m.Count)
		if errno != msg.OK {
			ack(errno, nil)
			return
		}
		ack(msg.OK, msg.AllocRes{Attr: in.Attr(), Blocks: append([]msg.BlockRef(nil), in.Blocks...)})

	case *msg.LockAcquire:
		if s.store.Migrating(m.Ino) {
			ack(msg.ErrConflict, nil)
			return
		}
		if s.InGrace() {
			// A fresh grant during recovery could conflict with a lock an
			// unreasserted (but still-leased) client holds. Defer until
			// the grace window closes and every pre-restart lease has
			// provably lapsed or been reasserted.
			remaining := s.graceUntil.Sub(s.clock.Now())
			s.clock.AfterFunc(remaining, func() {
				if s.stopped {
					return
				}
				s.execute(client, id, req)
			})
			return
		}
		s.vLeaseTouch(client, m.Ino)
		s.locks.Acquire(client, m.Ino, m.Mode, func(mode msg.LockMode) {
			// The grant may fire much later; by then the client may have
			// become suspect. Never ACK a suspect (§3): stay silent. The
			// hold stays in the table — the suspect's previous lease may
			// still cover the object, so nothing may be handed onward
			// until the authority's τ(1+ε) steal clears everything the
			// suspect holds. (Releasing here would promote waiters
			// immediately, inside the suspect's lease window.)
			if !s.auth.Allow(client) {
				return
			}
			if s.mustRejoin[client] {
				// Leaseless policies steal synchronously when they mark
				// mustRejoin, which also drops the client's waiters, so
				// this grant cannot race a pending steal: give it back.
				s.locks.Release(client, m.Ino, msg.LockNone)
				return
			}
			s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.OK, Body: msg.LockRes{Mode: mode}})
		})

	case *msg.LockRelease:
		errno := s.locks.Release(client, m.Ino, m.To)
		if m.To == msg.LockNone {
			s.vLeaseDrop(client, m.Ino)
		}
		ack(errno, msg.LockRes{Mode: m.To})

	case *msg.LockDowngraded:
		errno := s.locks.Downgraded(client, m.Ino, m.To, m.Demand)
		if m.To == msg.LockNone {
			s.vLeaseDrop(client, m.Ino)
		}
		ack(errno, msg.LockRes{Mode: m.To})

	case *msg.Heartbeat:
		// Handled in baselineOnMessage; the ACK is all that remains.
		ack(msg.OK, nil)

	case *msg.RenewObjects:
		// Bookkeeping already done in baselineOnMessage.
		ack(msg.OK, nil)

	case *msg.FuncRead:
		s.funcRead(client, id, m)

	case *msg.FuncWrite:
		s.funcWrite(client, id, m)

	default:
		ack(msg.ErrBadHandle, nil)
	}
}

// handleRejoin (re)registers a client: fresh epoch, no locks, no handles,
// empty reply-cache history, fence lifted.
func (s *Server) handleRejoin(client msg.NodeID, id msg.ReqID) {
	s.transactions.Inc()
	s.emit(trace.Event{Type: trace.EvRejoin, Peer: client})
	s.auth.OnRejoin(client)
	delete(s.mustRejoin, client)
	// Always lift the fence: a restarted server has lost its fence
	// bookkeeping, but a rejoining client by definition holds nothing,
	// so unfencing is safe and idempotent.
	s.setFence(client, false)
	// Any residue (locks, waiters, demands) from the previous incarnation
	// goes away; under lease recovery the authority already stole them.
	s.locks.StealAll(client)
	s.cancelDemandsTo(client)
	delete(s.handles, client)
	s.rcache.Forget(client)
	s.baselineForget(client)

	s.epochs[client] = s.store.NextEpoch()
	// Registration counts as contact for the heartbeat baseline: the
	// lease is established by the (ACKed) Rejoin itself. Without this, a
	// client isolated before its first heartbeat would be stolen from
	// immediately.
	if s.cfg.Policy.Lease == baselines.LeaseHeartbeat {
		s.leaseOps.Inc()
		s.lastHeard[client] = s.clock.Now()
		s.leaseBytes.Set(int64(len(s.lastHeard)) * heartbeatEntryBytes)
	}
	// Reply directly: Rejoin is idempotent by construction (each attempt
	// may mint a new epoch; only the one the client adopts matters).
	s.send(client, &msg.Reply{Client: client, Req: id, Status: msg.ACK, Err: msg.OK,
		Body: msg.RejoinRes{Epoch: s.epochs[client]}})
}

// handleReassert rebuilds a client's registration and lock state after a
// server restart (§6). Accepted only during the grace window, and only
// if every claimed lock is compatible with other reasserted claims; a
// refused reassertion NACKs the client into ordinary lease recovery.
func (s *Server) handleReassert(client msg.NodeID, id msg.ReqID, m *msg.Reassert) {
	if !s.InGrace() || s.auth.Suspect(client) {
		s.nack(client, id)
		return
	}
	s.transactions.Inc()
	s.emit(trace.Event{Type: trace.EvReassert, Peer: client,
		Note: "claims=" + strconv.Itoa(len(m.Locks))})
	// All-or-nothing: install claims, rolling back on conflict.
	installed := make([]msg.LockClaim, 0, len(m.Locks))
	for _, claim := range m.Locks {
		if !s.locks.Install(client, claim.Ino, claim.Mode) {
			for _, done := range installed {
				s.locks.Release(client, done.Ino, msg.LockNone)
			}
			s.nack(client, id)
			return
		}
		installed = append(installed, claim)
		s.vLeaseTouch(client, claim.Ino)
	}
	s.rcache.Forget(client)
	s.epochs[client] = s.store.NextEpoch()
	if s.cfg.Policy.Lease == baselines.LeaseHeartbeat {
		s.leaseOps.Inc()
		s.lastHeard[client] = s.clock.Now()
		s.leaseBytes.Set(int64(len(s.lastHeard)) * heartbeatEntryBytes)
	}
	s.send(client, &msg.Reply{Client: client, Req: id, Status: msg.ACK, Err: msg.OK,
		Body: msg.ReassertRes{Epoch: s.epochs[client]}})
}

// baselineOnMessage performs the per-message lease work the comparison
// policies require — precisely the work the paper's protocol avoids.
func (s *Server) baselineOnMessage(client msg.NodeID, req msg.Request) {
	switch s.cfg.Policy.Lease {
	case baselines.LeaseHeartbeat:
		if _, ok := req.(*msg.Heartbeat); ok {
			s.leaseOps.Inc()
			s.lastHeard[client] = s.clock.Now()
			s.leaseBytes.Set(int64(len(s.lastHeard)) * heartbeatEntryBytes)
		}
	case baselines.LeasePerObject:
		if m, ok := req.(*msg.RenewObjects); ok {
			now := s.clock.Now()
			for _, ino := range m.Inos {
				s.leaseOps.Inc()
				s.objLeases[objLeaseKey{client, ino}] = now.Add(s.cfg.PerObjectTTL)
			}
			s.leaseBytes.Set(int64(len(s.objLeases)) * objLeaseEntryBytes)
		}
	}
}

const (
	heartbeatEntryBytes = 16
	objLeaseEntryBytes  = 24
)

// vLeaseTouch registers a per-object lease on first grant (V baseline).
func (s *Server) vLeaseTouch(client msg.NodeID, ino msg.ObjectID) {
	if s.cfg.Policy.Lease != baselines.LeasePerObject {
		return
	}
	s.leaseOps.Inc()
	s.objLeases[objLeaseKey{client, ino}] = s.clock.Now().Add(s.cfg.PerObjectTTL)
	s.leaseBytes.Set(int64(len(s.objLeases)) * objLeaseEntryBytes)
}

// vLeaseDrop removes a per-object lease when the lock is fully released.
func (s *Server) vLeaseDrop(client msg.NodeID, ino msg.ObjectID) {
	if s.cfg.Policy.Lease != baselines.LeasePerObject {
		return
	}
	if _, ok := s.objLeases[objLeaseKey{client, ino}]; ok {
		s.leaseOps.Inc()
		delete(s.objLeases, objLeaseKey{client, ino})
		s.leaseBytes.Set(int64(len(s.objLeases)) * objLeaseEntryBytes)
	}
}

// baselineForget clears baseline lease state on rejoin.
func (s *Server) baselineForget(client msg.NodeID) {
	delete(s.lastHeard, client)
	if t := s.hbTimers[client]; t != nil {
		t.Stop()
		delete(s.hbTimers, client)
	}
	for k := range s.objLeases {
		if k.client == client {
			delete(s.objLeases, k)
		}
	}
	if t := s.vTimers[client]; t != nil {
		t.Stop()
		delete(s.vTimers, client)
	}
	switch s.cfg.Policy.Lease {
	case baselines.LeaseHeartbeat:
		s.leaseBytes.Set(int64(len(s.lastHeard)) * heartbeatEntryBytes)
	case baselines.LeasePerObject:
		s.leaseBytes.Set(int64(len(s.objLeases)) * objLeaseEntryBytes)
	}
}
