package server_test

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cluster"
	"repro/internal/msg"
)

func policyFunctionShip() baselines.Policy { return baselines.FunctionShip() }

// These tests poke the server's request handling directly through a
// simulated installation, covering paths the integration suite exercises
// only incidentally.

func boot(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(cluster.DefaultOptions())
	cl.Start()
	return cl
}

// raw sends a hand-built request from client index 0's address and
// returns the first Reply observed at that client.
func raw(t *testing.T, cl *cluster.Cluster, req msg.Request) *msg.Reply {
	t.Helper()
	var got *msg.Reply
	id := cluster.ClientID(0)
	orig := cl.Clients[0]
	cl.Control.Attach(id, func(env msg.Envelope) {
		if r, ok := env.Payload.(*msg.Reply); ok && got == nil {
			got = r
		}
	})
	defer cl.Control.Attach(id, orig.Deliver)
	cl.Control.Send(id, cluster.ServerID, req)
	cl.RunFor(time.Second)
	return got
}

func hdrFor(cl *cluster.Cluster, reqID msg.ReqID) msg.ReqHeader {
	return msg.ReqHeader{
		Client: cluster.ClientID(0),
		Req:    reqID,
		Epoch:  cl.Clients[0].Epoch(),
	}
}

func TestUnregisteredClientNACKed(t *testing.T) {
	cl := boot(t)
	r := raw(t, cl, &msg.GetAttr{
		ReqHeader: msg.ReqHeader{Client: cluster.ClientID(0), Req: 5001, Epoch: 0},
		Ino:       1,
	})
	if r == nil || r.Status != msg.NACK {
		t.Fatalf("reply = %+v, want NACK for epoch 0", r)
	}
}

func TestLookupErrnoPaths(t *testing.T) {
	cl := boot(t)
	r := raw(t, cl, &msg.Lookup{ReqHeader: hdrFor(cl, 6001), Path: "/missing"})
	if r == nil || r.Status != msg.ACK || r.Err != msg.ErrNoEnt {
		t.Fatalf("reply = %+v, want ACK/ErrNoEnt", r)
	}
	r = raw(t, cl, &msg.Lookup{ReqHeader: hdrFor(cl, 6002), Path: "relative"})
	if r == nil || r.Err != msg.ErrNoEnt {
		t.Fatalf("relative path reply = %+v", r)
	}
}

func TestReplyCacheResendsOnDuplicate(t *testing.T) {
	cl := boot(t)
	req := &msg.Create{ReqHeader: hdrFor(cl, 7001), Path: "/dup-test"}
	r1 := raw(t, cl, req)
	if r1 == nil || r1.Err != msg.OK {
		t.Fatalf("create: %+v", r1)
	}
	// Identical retry: must be answered from the reply cache, NOT
	// executed again (which would yield ErrExist).
	r2 := raw(t, cl, req)
	if r2 == nil || r2.Err != msg.OK {
		t.Fatalf("duplicate create reply = %+v, want cached OK", r2)
	}
	if cl.Reg.CounterValue("server.replycache.duplicates") == 0 {
		t.Fatal("duplicate not counted")
	}
	// A fresh create of the same path does fail.
	r3 := raw(t, cl, &msg.Create{ReqHeader: hdrFor(cl, 7002), Path: "/dup-test"})
	if r3 == nil || r3.Err != msg.ErrExist {
		t.Fatalf("fresh duplicate create = %+v, want ErrExist", r3)
	}
}

func TestUnlinkLockedFileRefused(t *testing.T) {
	cl := boot(t)
	h, _ := cl.MustOpen(1, "/locked", true, true)
	if errno := cl.Write(1, h, 0, make([]byte, 64)); errno != msg.OK {
		t.Fatal(errno)
	}
	r := raw(t, cl, &msg.Unlink{ReqHeader: hdrFor(cl, 8001), Path: "/locked"})
	if r == nil || r.Err != msg.ErrConflict {
		t.Fatalf("unlink of locked file = %+v, want ErrConflict", r)
	}
}

func TestSetAttrAndReaddir(t *testing.T) {
	cl := boot(t)
	_, attr := cl.MustOpen(0, "/sized", true, true)
	r := raw(t, cl, &msg.SetAttr{ReqHeader: hdrFor(cl, 9001), Ino: attr.Ino, NewSize: 12345})
	if r == nil || r.Err != msg.OK || r.Body.(msg.AttrRes).Attr.Size != 12345 {
		t.Fatalf("setattr = %+v", r)
	}
	r = raw(t, cl, &msg.Readdir{ReqHeader: hdrFor(cl, 9002), Ino: 1})
	if r == nil || r.Err != msg.OK {
		t.Fatalf("readdir = %+v", r)
	}
	found := false
	for _, e := range r.Body.(msg.ReaddirRes).Entries {
		if e.Name == "sized" {
			found = true
		}
	}
	if !found {
		t.Fatal("readdir missing created file")
	}
}

func TestAllocExhaustion(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.Disks = 1
	opts.DiskBlocks = 4
	cl := cluster.New(opts)
	cl.Start()
	_, attr := cl.MustOpen(0, "/big", true, true)
	r := raw(t, cl, &msg.AllocBlocks{ReqHeader: hdrFor(cl, 9101), Ino: attr.Ino, Count: 100})
	if r == nil || r.Err != msg.ErrNoSpace {
		t.Fatalf("over-alloc = %+v, want ErrNoSpace", r)
	}
	// Exactly-fitting allocation still works afterwards (rollback).
	r = raw(t, cl, &msg.AllocBlocks{ReqHeader: hdrFor(cl, 9102), Ino: attr.Ino, Count: 4})
	if r == nil || r.Err != msg.OK || len(r.Body.(msg.AllocRes).Blocks) != 4 {
		t.Fatalf("fitting alloc = %+v", r)
	}
}

func TestLockReleaseByNonHolder(t *testing.T) {
	cl := boot(t)
	_, attr := cl.MustOpen(0, "/rel", true, true)
	r := raw(t, cl, &msg.LockRelease{ReqHeader: hdrFor(cl, 9201), Ino: attr.Ino, To: msg.LockNone})
	if r == nil || r.Err != msg.ErrNotHolder {
		t.Fatalf("release by non-holder = %+v, want ErrNotHolder", r)
	}
}

func TestServerCountsTransactions(t *testing.T) {
	cl := boot(t)
	before := cl.Reg.CounterValue("server.transactions")
	cl.MustOpen(0, "/txn", true, true)
	if cl.Reg.CounterValue("server.transactions") <= before {
		t.Fatal("transactions not counted")
	}
}

func TestFuncReadHoleReturnsZeros(t *testing.T) {
	opts := cluster.DefaultOptions()
	opts.Policy = policyFunctionShip()
	cl := cluster.New(opts)
	cl.Start()
	h, _ := cl.MustOpen(0, "/hole", true, true)
	data, errno := cl.Read(0, h, 7) // never written
	if errno != msg.OK {
		t.Fatalf("hole read: %v", errno)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
}

// TestGraceTimerIgnoresStoppedIncarnation is the regression test for the
// stale grace-period timer: a server that crashes DURING its
// post-restart grace window leaves an AfterFunc(GracePeriod, ...)
// pending on the shared clock. That callback used to clear inRecovery
// unconditionally — mutating the retired incarnation after Stop(),
// unlike every other timer path, which checks s.stopped. The retired
// incarnation's recovery flag must stay frozen at its crash-time value,
// while the live incarnation's own window closes normally.
func TestGraceTimerIgnoresStoppedIncarnation(t *testing.T) {
	cl := boot(t)
	cl.CrashServer()
	cl.RunFor(time.Second)

	cl.RestartServer()
	mid := cl.Server // incarnation 2: grace window open
	if !mid.InGrace() || !mid.Recovering() {
		t.Fatal("restarted server must open a grace window")
	}

	// Crash again midway through the grace window, then restart.
	cl.RunFor(500 * time.Millisecond)
	cl.CrashServer() // Stop()s the mid incarnation; its grace timer stays armed
	cl.RestartServer()
	final := cl.Server

	// Run well past both grace windows: the stale timer fires now.
	cl.RunFor(3 * cl.Opts.Core.StealDelay())
	if !mid.Recovering() {
		t.Fatal("stale grace timer mutated the stopped incarnation")
	}
	if final.Recovering() {
		t.Fatal("live incarnation's grace window never closed")
	}
	if final.InGrace() {
		t.Fatal("live incarnation still reports an open grace window")
	}
}
