// Package server implements the Storage Tank metadata server: metadata
// transactions, the locking authority, and — via internal/core — the
// passive lease authority. The server never touches file data on the
// default (direct) data path; with the function-ship policy it also
// performs disk I/O on clients' behalf, reproducing the traditional
// client/server architecture for comparison (F1).
package server

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/meta"
	"repro/internal/msg"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Sender transmits a message on one of the two networks.
type Sender func(to msg.NodeID, m msg.Message)

// Config parameterizes a server.
type Config struct {
	Core   core.Config
	Policy baselines.Policy
	// Disks lists the SAN block devices and their capacities.
	Disks map[msg.NodeID]uint64
	// ReplyCacheKeep bounds the at-most-once reply cache per client.
	ReplyCacheKeep int
	// HeartbeatTTL is the Frangipani-baseline lease term (defaults to
	// Core.Tau).
	HeartbeatTTL time.Duration
	// PerObjectTTL is the V-baseline per-object lease term (defaults to
	// Core.Tau).
	PerObjectTTL time.Duration
	// NoNACK (ablation, F5): instead of negatively acknowledging suspect
	// clients, silently ignore their requests. Correct but wasteful —
	// §3.3's argument for the NACK.
	NoNACK bool
	// DisableFence (ablation, T6): skip the fence when stealing. Exposes
	// the slow-computer hazard §6 retains fencing for.
	DisableFence bool
	// Store, when non-nil, is the metadata store a restarted server
	// recovers (the paper's server-private storage is highly available,
	// §6); volatile state — locks, epochs, leases — is rebuilt by client
	// reassertion during the grace period.
	Store *meta.Store
	// GracePeriod is how long a restarted server accepts Reassert and
	// defers NEW lock acquires. Defaults to τ(1+ε): after that, every
	// pre-restart lease has provably expired, so unreasserted locks are
	// safe to hand out.
	GracePeriod time.Duration
	// PlaceOwner, when set, makes this server one shard of a partitioned
	// namespace: it maps an absolute path to the lease authority that
	// owns it. A Rename whose destination resolves to another authority
	// runs the cross-shard handoff (shard.go) instead of a local move,
	// and Create materializes missing parents (each shard sees only its
	// slice of the tree). Nil = sole authority, behavior unchanged.
	PlaceOwner func(path string) msg.NodeID
	// FenceDisks, when non-nil, is the full set of SAN disks fences are
	// administered on. A shard allocates only from its own Disks, but a
	// client it steals from may hold handed-off blocks on any disk, so
	// shards fence installation-wide. Nil = fence on Disks.
	FenceDisks map[msg.NodeID]uint64
	// ServiceTime, when positive, models the server as a single-threaded
	// request processor: control requests are serviced one at a time,
	// ServiceTime each, FIFO. This is what makes a one-shard metadata
	// authority saturate in the scale benchmark — with zero service time
	// the simulated server has infinite capacity and sharding shows no
	// curve. 0 preserves the immediate-execution behavior everywhere
	// else.
	ServiceTime time.Duration
	// Replica, when non-nil, makes this server one member of a replicated
	// authority group (replica.go): it boots passive and serves clients
	// only while it holds the PaxosLease-negotiated authority lease.
	// Nil = sole authority, behavior unchanged.
	Replica *replica.Config
	// MetaPersist, when set, is the snapshot file an ACTIVE replicated
	// server persists its metadata store to before every reply (live
	// replicas are separate processes, so the paper's highly-available
	// server-private storage is modeled as a durable file), and a newly
	// activated replica recovers from. Empty = in-memory only (the sim
	// models HA by sharing the Store between replicas).
	MetaPersist string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ReplyCacheKeep == 0 {
		c.ReplyCacheKeep = 128
	}
	if c.HeartbeatTTL == 0 {
		c.HeartbeatTTL = c.Core.Tau
	}
	if c.PerObjectTTL == 0 {
		c.PerObjectTTL = c.Core.Tau
	}
	if c.GracePeriod == 0 {
		c.GracePeriod = c.Core.StealDelay()
	}
	return c
}

type objLeaseKey struct {
	client msg.NodeID
	ino    msg.ObjectID
}

// Server is one metadata server node.
type Server struct {
	id    msg.NodeID
	cfg   Config
	clock sim.Clock
	ctrl  Sender
	san   Sender

	store  *meta.Store
	locks  *lock.Table
	auth   *core.Authority
	rcache *core.ReplyCache

	// Replicated-authority state (replica.go). neg is nil for a sole
	// authority; activeFlg tracks whether this replica currently holds
	// the authority lease.
	neg       *replica.Negotiator
	activeFlg bool

	// Registration state (lock/FS state, not lease state): epoch per
	// registered client, open handles.
	epochs     map[msg.NodeID]msg.Epoch
	handles    map[msg.NodeID]map[msg.Handle]msg.ObjectID
	nextHandle msg.Handle

	// Outstanding demands awaiting transport-level DemandAck.
	demands map[msg.DemandID]*pendingDemand

	// mustRejoin marks clients whose locks were stolen under non-lease
	// policies; they are NACKed until they Rejoin (a merged partition's
	// requests are "merely denied", §1.2).
	mustRejoin map[msg.NodeID]bool
	// fencedClients tracks who is fenced at the disks, so rejoin can lift
	// the fence.
	fencedClients map[msg.NodeID]bool

	// Heartbeat baseline state (always resident for that policy).
	lastHeard map[msg.NodeID]sim.Time
	hbTimers  map[msg.NodeID]sim.Timer

	// Per-object (V) baseline state.
	objLeases map[objLeaseKey]sim.Time
	vTimers   map[msg.NodeID]sim.Timer

	// Server-side SAN requests (fencing, function-ship I/O).
	sanPending map[msg.ReqID]*sanCall
	nextSANReq msg.ReqID

	// Outbound cross-shard handoffs awaiting the destination's answer
	// (shard.go), keyed by durable handoff ID.
	handoffs map[uint64]*pendingHandoff

	// busyUntil serializes request execution when ServiceTime is set
	// (the single-threaded-server model; see Config.ServiceTime).
	busyUntil sim.Time

	// graceUntil bounds the post-restart reassertion window (server
	// clock); zero for a fresh (first-boot) server.
	graceUntil sim.Time
	inRecovery bool
	// stopped marks a server instance that has been replaced after a
	// crash: it ignores deliveries and suppresses sends, so stale timers
	// on the shared clock cannot act on the dead incarnation.
	stopped bool

	reg    *stats.Registry
	tracer *trace.Tracer
	// Counters the experiments read.
	transactions *stats.Counter
	msgsIn       *stats.Counter
	msgsOut      *stats.Counter
	bytesIn      *stats.Counter
	bytesOut     *stats.Counter
	dataBytes    *stats.Counter // file data moved through the server
	leaseOps     *stats.Counter // lease-specific server work (baselines)
	leaseBytes   *stats.Gauge   // lease state held (baselines + authority)
	nacksSent    *stats.Counter
	demandsSent  *stats.Counter
	fences       *stats.Counter
	// locksHeld mirrors the lock table's holder-entry count, named
	// server.<id>.locks_held so a sharded installation's SIGUSR1 dump
	// shows each authority's load side by side.
	locksHeld *stats.Gauge
	// roleGauge/ballotGauge expose the replica role (a msg.Role* value)
	// and current negotiation ballot per server, same per-id naming.
	roleGauge     *stats.Gauge
	ballotGauge   *stats.Gauge
	redirectsSent *stats.Counter
}

// New creates a server. reg and tr may be nil; tr receives the server's
// lease-lifecycle events (steal timers, demands, fences, rejoins).
func New(id msg.NodeID, cfg Config, clock sim.Clock, ctrl, san Sender,
	reg *stats.Registry, tr *trace.Tracer) *Server {
	cfg = cfg.withDefaults()
	if err := cfg.Core.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Policy.Validate(); err != nil {
		panic(err)
	}
	if reg == nil {
		reg = stats.NewRegistry()
	}
	prefix := "server."
	s := &Server{
		id:            id,
		cfg:           cfg,
		clock:         clock,
		ctrl:          ctrl,
		san:           san,
		store:         meta.NewStore(meta.NewAllocator(cfg.Disks)),
		rcache:        core.NewReplyCache(cfg.ReplyCacheKeep, reg, prefix),
		epochs:        make(map[msg.NodeID]msg.Epoch),
		handles:       make(map[msg.NodeID]map[msg.Handle]msg.ObjectID),
		demands:       make(map[msg.DemandID]*pendingDemand),
		mustRejoin:    make(map[msg.NodeID]bool),
		fencedClients: make(map[msg.NodeID]bool),
		lastHeard:     make(map[msg.NodeID]sim.Time),
		hbTimers:      make(map[msg.NodeID]sim.Timer),
		objLeases:     make(map[objLeaseKey]sim.Time),
		vTimers:       make(map[msg.NodeID]sim.Timer),
		sanPending:    make(map[msg.ReqID]*sanCall),
		handoffs:      make(map[uint64]*pendingHandoff),

		reg:           reg,
		transactions:  reg.Counter(prefix + "transactions"),
		msgsIn:        reg.Counter(prefix + "msgs_in"),
		msgsOut:       reg.Counter(prefix + "msgs_out"),
		bytesIn:       reg.Counter(prefix + "bytes_in"),
		bytesOut:      reg.Counter(prefix + "bytes_out"),
		dataBytes:     reg.Counter(prefix + "data_bytes"),
		leaseOps:      reg.Counter(prefix + "lease_ops"),
		leaseBytes:    reg.Gauge(prefix + "lease_state_bytes"),
		nacksSent:     reg.Counter(prefix + "nacks_sent"),
		demandsSent:   reg.Counter(prefix + "demands_sent"),
		fences:        reg.Counter(prefix + "fences"),
		locksHeld:     reg.Gauge(fmt.Sprintf("server.%v.locks_held", id)),
		roleGauge:     reg.Gauge(fmt.Sprintf("server.%v.role", id)),
		ballotGauge:   reg.Gauge(fmt.Sprintf("server.%v.ballot", id)),
		redirectsSent: reg.Counter(prefix + "redirects_sent"),
	}
	s.tracer = tr
	s.locks = lock.NewTable(demanderFunc(s.sendDemand))
	s.auth = core.NewAuthority(cfg.Core, clock, authorityActions{s},
		core.Env{Reg: reg, Prefix: prefix, Tracer: tr, Node: id})
	if cfg.Store != nil {
		s.store = cfg.Store
		if cfg.Replica == nil {
			// Restart: recover the durable store, open the grace window.
			// (A replicated server defers this decision to activation —
			// see activate in replica.go.)
			s.inRecovery = true
			s.graceUntil = clock.Now().Add(cfg.GracePeriod)
			clock.AfterFunc(cfg.GracePeriod, func() {
				if s.stopped {
					// This incarnation crashed during its grace window and
					// was replaced; like every other timer path, a stale
					// callback must not act on the dead incarnation.
					return
				}
				s.inRecovery = false
			})
		}
	}
	if cfg.Replica != nil {
		s.neg = replica.New(*cfg.Replica, clock,
			func(to msg.NodeID, m msg.Message) { s.send(to, m) }, tr)
		s.neg.OnActive = s.activate
		s.neg.OnStepdown = s.deactivate
		s.neg.Start()
	} else {
		s.activeFlg = true
	}
	if cfg.PlaceOwner != nil {
		s.store.SetAutoParents(true)
		// Re-drive handoffs interrupted by a crash: the durable export
		// records survive in the store, the destination's import ledger
		// makes retransmission idempotent. The requesting client's reply
		// is gone with the crash; it retries and attaches to the export.
		// A passive replica defers this to activation.
		if s.authorityHeld() {
			for _, e := range s.store.PendingExports() {
				s.resumeHandoff(e)
			}
		}
	}
	s.syncRoleGauges()
	return s
}

// Stop retires this server instance (crash simulation): deliveries are
// ignored and outbound messages suppressed, so timers still pending on
// the shared clock cannot act for the dead incarnation.
func (s *Server) Stop() {
	s.stopped = true
	if s.neg != nil {
		s.neg.Stop()
	}
}

// Stopped reports whether this incarnation has been retired by Stop.
func (s *Server) Stopped() bool { return s.stopped }

// InGrace reports whether the post-restart reassertion window is open.
func (s *Server) InGrace() bool {
	return s.inRecovery && s.clock.Now().Before(s.graceUntil)
}

// Recovering reports whether this incarnation still considers itself in
// post-restart recovery. For a stopped (crashed) incarnation the flag is
// frozen at its crash-time value: the stale grace timer must not mutate
// a retired server.
func (s *Server) Recovering() bool { return s.inRecovery }

type demanderFunc func(holder msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID)

func (f demanderFunc) Demand(holder msg.NodeID, ino msg.ObjectID, to msg.LockMode, id msg.DemandID) {
	f(holder, ino, to, id)
}

type authorityActions struct{ s *Server }

func (a authorityActions) StealLocks(client msg.NodeID) { a.s.stealAndFence(client, true) }

// ID returns the server's node ID.
func (s *Server) ID() msg.NodeID { return s.id }

// Store exposes the metadata store to tests and the cluster harness.
func (s *Server) Store() *meta.Store { return s.store }

// Locks exposes the lock table to tests.
func (s *Server) Locks() *lock.Table { return s.locks }

// Authority exposes the lease authority to tests and experiments.
func (s *Server) Authority() *core.Authority { return s.auth }

// Registered reports whether the client currently holds a valid epoch.
func (s *Server) Registered(c msg.NodeID) bool { return s.epochs[c] != 0 }

// Deliver is the server's control-network handler.
func (s *Server) Deliver(env msg.Envelope) {
	if s.stopped {
		return
	}
	s.msgsIn.Inc()
	s.bytesIn.Add(uint64(env.Payload.Size()))
	switch m := env.Payload.(type) {
	case msg.Request:
		s.withService(func() {
			s.handleRequest(m)
			s.syncLocksHeld()
		})
	case *msg.DemandAck:
		s.handleDemandAck(m)
	case *msg.ShardMigrate:
		s.handleShardMigrate(m)
	case *msg.ShardMigrateRes:
		s.handleShardMigrateRes(m)
	case *msg.ReplicaPrepare, *msg.ReplicaPromise, *msg.ReplicaPropose, *msg.ReplicaAccept:
		if s.neg != nil {
			s.neg.Deliver(env.Payload)
			s.syncRoleGauges()
		}
	default:
		// Unknown control traffic is dropped, like any datagram service.
	}
}

// withService models the single-threaded request processor when
// Config.ServiceTime is set: one request at a time, FIFO, like
// disk.withService models the single actuator. Zero service time keeps
// the historical execute-on-delivery behavior.
func (s *Server) withService(fn func()) {
	if s.cfg.ServiceTime <= 0 {
		fn()
		return
	}
	now := s.clock.Now()
	start := now
	if s.busyUntil.After(start) {
		start = s.busyUntil
	}
	s.busyUntil = start.Add(s.cfg.ServiceTime)
	s.clock.AfterFunc(s.busyUntil.Sub(now), func() {
		if s.stopped {
			return
		}
		fn()
	})
}

// syncLocksHeld refreshes the per-shard locks_held gauge (O(1): the
// table maintains the count incrementally).
func (s *Server) syncLocksHeld() {
	s.locksHeld.Set(int64(s.locks.HeldCount()))
}

// DeliverSAN is the server's SAN handler (fence acks, function-ship I/O
// replies).
func (s *Server) DeliverSAN(env msg.Envelope) {
	if s.stopped {
		return
	}
	switch m := env.Payload.(type) {
	case *msg.FenceRes:
		s.handleSANReply(m.Req, m, msg.OK)
	case *msg.DiskReadRes:
		s.handleSANReply(m.Req, m, m.Err)
	case *msg.DiskWriteRes:
		s.handleSANReply(m.Req, m, m.Err)
	}
}

// send wraps the control-network sender with accounting.
func (s *Server) send(to msg.NodeID, m msg.Message) {
	if s.stopped {
		return
	}
	s.msgsOut.Inc()
	s.bytesOut.Add(uint64(m.Size()))
	s.ctrl(to, m)
}

// reply completes a request through the at-most-once cache. A replicated
// active persists the metadata store first: no acknowledged operation may
// die with this process (persist-before-reply).
func (s *Server) reply(client msg.NodeID, req msg.ReqID, r *msg.Reply) {
	r.Client = client
	r.Req = req
	s.rcache.Complete(client, req, r)
	s.persistMeta()
	s.send(client, r)
}

// nack refuses service without executing or caching: a NACK is not an
// answer, and the client may legitimately retry after rejoining.
func (s *Server) nack(client msg.NodeID, req msg.ReqID) {
	s.nacksSent.Inc()
	s.emit(trace.Event{Type: trace.EvNACKSent, Peer: client})
	s.send(client, &msg.Reply{Client: client, Req: req, Status: msg.NACK})
}

// emit stamps ev with the server's identity and clock reading and hands
// it to the tracer, if any.
func (s *Server) emit(ev trace.Event) {
	if !s.tracer.Enabled() {
		return
	}
	ev.Node = s.id
	ev.Time = s.clock.Now()
	s.tracer.Emit(ev)
}

func (s *Server) String() string {
	return fmt.Sprintf("server %v (%s)", s.id, s.cfg.Policy.Name)
}

// BlockSize re-exports the device block size for convenience.
const BlockSize = disk.BlockSize
