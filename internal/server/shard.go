package server

// The cross-shard handoff protocol (DESIGN.md §14). A Rename whose
// destination path is owned by another lease authority migrates the
// file's metadata there in a two-shard ordered handshake:
//
//  1. The source refuses the rename outright if any client holds a lock
//     on the object (the same rule as a local rename), then writes a
//     durable Export record and marks the inode migrating — from this
//     instant every operation on it is refused with ErrConflict, so no
//     new lock or block can be granted against state that is leaving.
//  2. The source transmits ShardMigrate{Src, HID, Path, Attr, Blocks}
//     and retries on a timer until answered — like sanSend, delivery
//     errors are invisible; only an answer settles the handoff.
//  3. The destination installs the object under a fresh local inode,
//     records the (Src, HID) outcome in its durable import ledger, and
//     replies. Duplicate ShardMigrates — retransmissions, or replays
//     after the destination restarts — are answered from the ledger,
//     never installed twice.
//  4. On an OK answer the source unlinks its copy (blocks stay at their
//     original disk addresses, permanently retired from the source's
//     allocator) and ACKs the waiting client. On an error answer the
//     source aborts the export and the object stays put.
//
// Either shard may crash at any point. The source's Export records and
// the destination's import ledger live in the durable metadata store, so
// a restarted source re-drives its pending handoffs (server.New) and a
// restarted destination answers retransmissions idempotently. Exactly
// one shard owns the file at every instant: until CompleteExport runs at
// the source the object is owned (but frozen) there, and CompleteExport
// runs only after the destination durably owns it — so the overlap is
// dual-frozen, never dual-served, and a lost answer leaves the source
// owner, never nobody.

import (
	"strconv"

	"repro/internal/meta"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pendingHandoff is one outbound handoff awaiting the destination's
// answer. client/req name the requester to ACK on settlement; they are
// zero for a handoff re-driven after a restart (the original reply died
// with the crash — the client's retried Rename re-attaches).
type pendingHandoff struct {
	hid    uint64
	dest   msg.NodeID
	timer  sim.Timer
	client msg.NodeID
	req    msg.ReqID
}

// crossShardRename begins (or re-attaches to) the handoff migrating the
// object at m.OldPath to the authority owning m.NewPath.
func (s *Server) crossShardRename(client msg.NodeID, id msg.ReqID, in *meta.Inode, m *msg.Rename) {
	if in.IsDir {
		// Single-inode migration only: a directory's subtree may span
		// authorities, and migrating it atomically is a different
		// protocol. Callers place directories by subtree instead.
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.ErrIsDir})
		return
	}
	if e := s.store.ExportFor(in.Ino); e != nil {
		// A handoff for this object is already pending. The identical
		// rename (a client retry whose reply-cache entry died with a
		// crash) re-attaches as the requester to answer; any other
		// operation conflicts with the migration.
		if e.OldPath == m.OldPath && e.NewPath == m.NewPath {
			if ph := s.handoffs[e.HID]; ph != nil {
				ph.client, ph.req = client, id
				return
			}
		}
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.ErrConflict})
		return
	}
	dest := s.cfg.PlaceOwner(m.NewPath)
	if dest == msg.None {
		// The placement map routes no authority for the destination name
		// (a subtree placement miss): nothing could ever serve it.
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.ErrNoEnt})
		return
	}
	e := s.store.BeginExport(in.Ino, dest, m.OldPath, m.NewPath)
	s.emit(trace.Event{Type: trace.EvShardHandoff, Peer: dest, Ino: in.Ino,
		Note: "hid=" + strconv.FormatUint(e.HID, 10)})
	ph := &pendingHandoff{hid: e.HID, dest: dest, client: client, req: id}
	s.handoffs[e.HID] = ph
	s.transmitHandoff(ph, e)
}

// resumeHandoff re-drives a durable export found at restart.
func (s *Server) resumeHandoff(e *meta.Export) {
	ph := &pendingHandoff{hid: e.HID, dest: e.Dest}
	s.handoffs[e.HID] = ph
	s.transmitHandoff(ph, e)
}

// transmitHandoff sends the migrate message and arms retransmission.
// Like sanSend it retries until answered: the export is durable and the
// destination's ledger makes duplicates harmless, so persistence — not
// a retry budget — is the correct policy.
func (s *Server) transmitHandoff(ph *pendingHandoff, e *meta.Export) {
	in, errno := s.store.Get(e.Ino)
	if errno != msg.OK {
		// Unreachable while the export pins the inode; settle
		// defensively as an abort rather than retrying forever.
		s.settleHandoff(ph, &msg.ShardMigrateRes{HID: e.HID, Err: errno})
		return
	}
	s.send(e.Dest, &msg.ShardMigrate{Src: s.id, HID: e.HID, Path: e.NewPath,
		Attr: in.Attr(), Blocks: append([]msg.BlockRef(nil), in.Blocks...)})
	ph.timer = s.clock.AfterFunc(s.cfg.Core.RetryInterval, func() {
		if s.stopped || s.handoffs[ph.hid] != ph {
			return
		}
		s.transmitHandoff(ph, e)
	})
}

// handleShardMigrate is the destination half: install once, answer from
// the durable ledger ever after.
func (s *Server) handleShardMigrate(m *msg.ShardMigrate) {
	if errno, done := s.store.ImportResult(m.Src, m.HID); done {
		s.send(m.Src, &msg.ShardMigrateRes{HID: m.HID, Err: errno})
		return
	}
	in, errno := s.store.Install(m.Path, m.Attr, m.Blocks)
	s.store.RecordImport(m.Src, m.HID, errno)
	if errno == msg.OK {
		s.emit(trace.Event{Type: trace.EvShardInstall, Peer: m.Src, Ino: in.Ino,
			Note: "hid=" + strconv.FormatUint(m.HID, 10)})
	}
	s.send(m.Src, &msg.ShardMigrateRes{HID: m.HID, Err: errno})
}

// handleShardMigrateRes settles an outbound handoff.
func (s *Server) handleShardMigrateRes(m *msg.ShardMigrateRes) {
	if ph, ok := s.handoffs[m.HID]; ok {
		s.settleHandoff(ph, m)
	}
}

func (s *Server) settleHandoff(ph *pendingHandoff, m *msg.ShardMigrateRes) {
	if ph.timer != nil {
		ph.timer.Stop()
	}
	delete(s.handoffs, ph.hid)
	e := s.store.Export(ph.hid)
	if e == nil {
		return
	}
	note := "hid=" + strconv.FormatUint(ph.hid, 10)
	if m.Err == msg.OK {
		s.emit(trace.Event{Type: trace.EvShardDone, Peer: ph.dest, Ino: e.Ino, Note: note})
		s.store.CompleteExport(ph.hid)
	} else {
		s.emit(trace.Event{Type: trace.EvShardAbort, Peer: ph.dest, Ino: e.Ino,
			Note: note + " " + m.Err.String()})
		s.store.AbortExport(ph.hid)
	}
	if ph.client != 0 {
		s.reply(ph.client, ph.req, &msg.Reply{Status: msg.ACK, Err: m.Err})
	}
}
