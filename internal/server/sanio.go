package server

import (
	"repro/internal/disk"
	"repro/internal/msg"
	"repro/internal/sim"
)

// sanCall is one server-initiated SAN request (fence administration, or
// function-ship disk I/O). The SAN is a datagram fabric too, so these
// retry until answered.
type sanCall struct {
	disk  msg.NodeID
	build func(req msg.ReqID) msg.Message
	cb    func(reply msg.Message, errno msg.Errno)
	timer sim.Timer
}

// sanSend issues a SAN request. cb may be nil (fire-and-forget fences).
func (s *Server) sanSend(d msg.NodeID, build func(req msg.ReqID) msg.Message,
	cb func(reply msg.Message, errno msg.Errno)) {
	s.nextSANReq++
	id := s.nextSANReq
	call := &sanCall{disk: d, build: build, cb: cb}
	s.sanPending[id] = call
	var transmit func()
	transmit = func() {
		if s.stopped {
			return
		}
		s.san(d, build(id))
		call.timer = s.clock.AfterFunc(s.cfg.Core.RetryInterval, func() {
			if s.sanPending[id] != call {
				return
			}
			transmit()
		})
	}
	transmit()
}

// handleSANReply completes a pending SAN call.
func (s *Server) handleSANReply(req msg.ReqID, reply msg.Message, errno msg.Errno) {
	call, ok := s.sanPending[req]
	if !ok {
		return
	}
	delete(s.sanPending, req)
	if call.timer != nil {
		call.timer.Stop()
	}
	if call.cb != nil {
		call.cb(reply, errno)
	}
}

// funcRead serves file data through the server (function-ship baseline).
// I/O is block-aligned: the experiments issue one-block requests, which
// is all the traditional-architecture comparison needs. An unaligned
// offset is rejected rather than truncated — the old Offset/BlockSize
// arithmetic would silently serve (or overwrite) the wrong bytes.
func (s *Server) funcRead(client msg.NodeID, id msg.ReqID, m *msg.FuncRead) {
	if m.Offset%disk.BlockSize != 0 {
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.ErrRange})
		return
	}
	in, errno := s.store.Get(m.Ino)
	if errno != msg.OK {
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: errno})
		return
	}
	idx := m.Offset / disk.BlockSize
	n := int(m.Length)
	if n > disk.BlockSize {
		n = disk.BlockSize
	}
	if idx >= uint64(len(in.Blocks)) {
		// Hole or beyond allocation: zeros.
		s.dataBytes.Add(uint64(n))
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.OK,
			Body: msg.FuncReadRes{Data: make([]byte, n)}})
		return
	}
	ref := in.Blocks[idx]
	s.sanSend(ref.Disk, func(req msg.ReqID) msg.Message {
		return &msg.DiskRead{Client: s.id, Req: req, Block: ref.Num}
	}, func(reply msg.Message, errno msg.Errno) {
		if errno != msg.OK {
			s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: errno})
			return
		}
		data := reply.(*msg.DiskReadRes).Data
		if len(data) > n {
			data = data[:n]
		}
		// DiskReadRes.Data may alias a pooled receive buffer that is
		// recycled when this handler returns; the reply is sent
		// asynchronously, so it needs its own copy.
		data = append([]byte(nil), data...)
		s.dataBytes.Add(uint64(len(data)))
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.OK,
			Body: msg.FuncReadRes{Data: data}})
	})
}

// funcWrite stores file data through the server, extending the file as
// needed. Unaligned offsets are rejected like funcRead's: block `Offset
// / BlockSize` is the wrong destination for a straddling write, and the
// sub-block remainder would be dropped on the floor.
func (s *Server) funcWrite(client msg.NodeID, id msg.ReqID, m *msg.FuncWrite) {
	if m.Offset%disk.BlockSize != 0 {
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: msg.ErrRange})
		return
	}
	in, errno := s.store.Get(m.Ino)
	if errno != msg.OK {
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: errno})
		return
	}
	idx := m.Offset / disk.BlockSize
	for uint64(len(in.Blocks)) <= idx {
		need := uint32(idx + 1 - uint64(len(in.Blocks)))
		var e msg.Errno
		in, e = s.store.AllocBlocks(m.Ino, need)
		if e != msg.OK {
			s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: e})
			return
		}
	}
	ref := in.Blocks[idx]
	data := m.Data
	if len(data) > disk.BlockSize {
		data = data[:disk.BlockSize]
	}
	s.dataBytes.Add(uint64(len(data)))
	s.sanSend(ref.Disk, func(req msg.ReqID) msg.Message {
		return &msg.DiskWrite{Client: s.id, Req: req, Block: ref.Num, Data: data}
	}, func(reply msg.Message, errno msg.Errno) {
		if errno == msg.OK {
			if end := m.Offset + uint64(len(data)); end > in.Size {
				s.store.SetSize(m.Ino, end)
			}
			// Every server-mediated write is observable through attribute
			// polling (NFS-style clients rely on this).
			s.store.Touch(m.Ino)
		}
		s.reply(client, id, &msg.Reply{Status: msg.ACK, Err: errno})
	})
}
