package meta

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/msg"
)

func TestSnapshotRoundTrip(t *testing.T) {
	alloc := NewAllocator(map[msg.NodeID]uint64{100: 64, 101: 64})
	s := NewStore(alloc)
	s.SetAutoParents(true)
	if _, errno := s.Create("/a/b/f", false); errno != msg.OK {
		t.Fatalf("create: %v", errno)
	}
	in, _ := s.Lookup("/a/b/f")
	if _, errno := s.AllocBlocks(in.Ino, 5); errno != msg.OK {
		t.Fatalf("alloc: %v", errno)
	}
	s.SetSize(in.Ino, 5*4096)
	s.NextEpoch()
	s.NextEpoch()
	s.BeginExport(in.Ino, 2, "/a/b/f", "/x/f")
	s.RecordImport(3, 7, msg.OK)

	restored, err := Restore(s.Snapshot())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !bytes.Equal(restored.Snapshot(), s.Snapshot()) {
		t.Fatal("snapshot not stable across restore")
	}
	if restored.CurrentEpoch() != 2 {
		t.Fatalf("epoch: got %d want 2", restored.CurrentEpoch())
	}
	rin, errno := restored.Lookup("/a/b/f")
	if errno != msg.OK || rin.Size != 5*4096 || len(rin.Blocks) != 5 {
		t.Fatalf("restored inode: %+v errno=%v", rin, errno)
	}
	if !restored.Migrating(rin.Ino) {
		t.Fatal("pending export lost")
	}
	if e, ok := restored.ImportResult(3, 7); !ok || e != msg.OK {
		t.Fatal("import ledger lost")
	}
	if restored.alloc.InUse() != s.alloc.InUse() {
		t.Fatalf("allocator in-use mismatch: %d vs %d", restored.alloc.InUse(), s.alloc.InUse())
	}
	// The restored allocator must keep handing out non-colliding blocks.
	refs, errno := restored.alloc.Alloc(3)
	if errno != msg.OK {
		t.Fatalf("alloc after restore: %v", errno)
	}
	for _, ref := range refs {
		for _, old := range in.Blocks {
			if ref == old {
				t.Fatalf("restored allocator reissued live block %v", ref)
			}
		}
	}
}

func TestSaveLoadSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.snap")
	if s, err := LoadSnapshot(path); err != nil || s != nil {
		t.Fatalf("missing snapshot should be (nil, nil), got (%v, %v)", s, err)
	}
	s := NewStore(NewAllocator(map[msg.NodeID]uint64{100: 16}))
	s.Create("/f", false)
	if err := s.SaveSnapshot(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil || loaded == nil {
		t.Fatalf("load: %v", err)
	}
	if _, errno := loaded.Lookup("/f"); errno != msg.OK {
		t.Fatalf("lookup after load: %v", errno)
	}
}
