// Package meta implements the Storage Tank server's private metadata
// store: the directory tree, inodes, and the allocation maps that place
// file blocks on the shared SAN disks. Per the paper (§1.1), metadata
// lives on server-private storage — the shared disks hold only file data
// blocks — so this package is purely server-side state.
package meta

import (
	"sort"
	"strings"

	"repro/internal/msg"
)

// RootIno is the inode number of the root directory.
const RootIno msg.ObjectID = 1

// Inode is one file-system object.
type Inode struct {
	Ino     msg.ObjectID
	IsDir   bool
	Size    uint64
	Version uint64 // modification counter, stands in for mtime
	Nlink   uint32
	Blocks  []msg.BlockRef
	// children maps names to inode numbers for directories.
	children map[string]msg.ObjectID
}

// Attr renders the inode's wire-visible metadata.
func (in *Inode) Attr() msg.Attr {
	return msg.Attr{
		Ino: in.Ino, IsDir: in.IsDir, Size: in.Size,
		Version: in.Version, Nlink: in.Nlink,
	}
}

// Store is the metadata database. It is not safe for concurrent use; the
// owning server serializes access.
type Store struct {
	inodes  map[msg.ObjectID]*Inode
	nextIno msg.ObjectID
	alloc   *Allocator
	// epochSeq is the durable client-epoch counter: epochs stay monotonic
	// across server restarts (the store lives on the server's private
	// highly-available storage, §6).
	epochSeq msg.Epoch
	// autoParents makes Create materialize missing ancestor directories.
	// Sharded authorities enable it: placement maps a file to a shard by
	// its full path, so a shard may be asked to create /a/b/c without
	// ever having been asked for /a — the directory skeleton is
	// replicated lazily per shard (DESIGN.md §14).
	autoParents bool
	// Cross-shard handoff ledgers (see export.go). Durable: they live in
	// the Store precisely so a crash mid-handoff can be resolved on
	// restart without double-owning or orphaning the file.
	exports   map[uint64]*Export
	exportSeq uint64
	migrating map[msg.ObjectID]uint64
	imports   map[importKey]msg.Errno
}

// NewStore creates a store containing only the root directory, allocating
// file blocks from alloc.
func NewStore(alloc *Allocator) *Store {
	s := &Store{
		inodes:    make(map[msg.ObjectID]*Inode),
		nextIno:   RootIno + 1,
		alloc:     alloc,
		exports:   make(map[uint64]*Export),
		migrating: make(map[msg.ObjectID]uint64),
		imports:   make(map[importKey]msg.Errno),
	}
	s.inodes[RootIno] = &Inode{
		Ino: RootIno, IsDir: true, Nlink: 2,
		children: make(map[string]msg.ObjectID),
	}
	return s
}

// SplitPath normalizes an absolute slash-separated path into components.
// It returns ok=false for relative or empty paths.
func SplitPath(path string) (parts []string, ok bool) {
	if !strings.HasPrefix(path, "/") {
		return nil, false
	}
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
			// skip
		case "..":
			if len(parts) == 0 {
				return nil, false
			}
			parts = parts[:len(parts)-1]
		default:
			parts = append(parts, p)
		}
	}
	return parts, true
}

// Get returns the inode by number.
func (s *Store) Get(ino msg.ObjectID) (*Inode, msg.Errno) {
	in, ok := s.inodes[ino]
	if !ok {
		return nil, msg.ErrNoEnt
	}
	return in, msg.OK
}

// Lookup resolves an absolute path.
func (s *Store) Lookup(path string) (*Inode, msg.Errno) {
	parts, ok := SplitPath(path)
	if !ok {
		return nil, msg.ErrNoEnt
	}
	cur := s.inodes[RootIno]
	for _, name := range parts {
		if !cur.IsDir {
			return nil, msg.ErrNotDir
		}
		next, ok := cur.children[name]
		if !ok {
			return nil, msg.ErrNoEnt
		}
		cur = s.inodes[next]
	}
	return cur, msg.OK
}

// lookupParent resolves all but the last component, returning the parent
// directory and the final name.
func (s *Store) lookupParent(path string) (*Inode, string, msg.Errno) {
	parts, ok := SplitPath(path)
	if !ok || len(parts) == 0 {
		return nil, "", msg.ErrNoEnt
	}
	dirParts, name := parts[:len(parts)-1], parts[len(parts)-1]
	cur := s.inodes[RootIno]
	for _, p := range dirParts {
		if !cur.IsDir {
			return nil, "", msg.ErrNotDir
		}
		next, ok := cur.children[p]
		if !ok {
			return nil, "", msg.ErrNoEnt
		}
		cur = s.inodes[next]
	}
	if !cur.IsDir {
		return nil, "", msg.ErrNotDir
	}
	return cur, name, msg.OK
}

// SetAutoParents toggles lazy materialization of ancestor directories
// on Create (see the autoParents field).
func (s *Store) SetAutoParents(on bool) { s.autoParents = on }

// ensureParents creates any missing ancestor directories of path.
func (s *Store) ensureParents(path string) {
	parts, ok := SplitPath(path)
	if !ok || len(parts) < 2 {
		return
	}
	cur := s.inodes[RootIno]
	for _, name := range parts[:len(parts)-1] {
		if !cur.IsDir {
			return
		}
		if next, ok := cur.children[name]; ok {
			cur = s.inodes[next]
			continue
		}
		in := &Inode{Ino: s.nextIno, IsDir: true, Nlink: 2,
			children: make(map[string]msg.ObjectID)}
		s.nextIno++
		s.inodes[in.Ino] = in
		cur.children[name] = in.Ino
		cur.Nlink++
		cur.Version++
		cur = in
	}
}

// Create makes a new file or directory at path. The parent must exist,
// unless auto-parents is on (then missing ancestors are materialized).
func (s *Store) Create(path string, isDir bool) (*Inode, msg.Errno) {
	if s.autoParents {
		s.ensureParents(path)
	}
	parent, name, errno := s.lookupParent(path)
	if errno != msg.OK {
		return nil, errno
	}
	if _, exists := parent.children[name]; exists {
		return nil, msg.ErrExist
	}
	in := &Inode{Ino: s.nextIno, IsDir: isDir, Nlink: 1}
	s.nextIno++
	if isDir {
		in.Nlink = 2
		in.children = make(map[string]msg.ObjectID)
		parent.Nlink++
	}
	s.inodes[in.Ino] = in
	parent.children[name] = in.Ino
	parent.Version++
	return in, msg.OK
}

// Unlink removes the object at path. Directories must be empty.
func (s *Store) Unlink(path string) msg.Errno {
	parent, name, errno := s.lookupParent(path)
	if errno != msg.OK {
		return errno
	}
	ino, ok := parent.children[name]
	if !ok {
		return msg.ErrNoEnt
	}
	in := s.inodes[ino]
	if in.IsDir {
		if len(in.children) > 0 {
			return msg.ErrExist
		}
		parent.Nlink--
	}
	// Return the object's blocks to the allocator.
	s.alloc.Free(in.Blocks)
	delete(parent.children, name)
	delete(s.inodes, ino)
	parent.Version++
	return msg.OK
}

// Readdir lists a directory in sorted name order.
func (s *Store) Readdir(ino msg.ObjectID) ([]msg.DirEntry, msg.Errno) {
	in, errno := s.Get(ino)
	if errno != msg.OK {
		return nil, errno
	}
	if !in.IsDir {
		return nil, msg.ErrNotDir
	}
	names := make([]string, 0, len(in.children))
	for n := range in.children {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make([]msg.DirEntry, 0, len(names))
	for _, n := range names {
		child := s.inodes[in.children[n]]
		entries = append(entries, msg.DirEntry{Name: n, Ino: child.Ino, IsDir: child.IsDir})
	}
	return entries, msg.OK
}

// SetSize updates a file's size and bumps its version. Shrinking does not
// free blocks (Truncate does).
func (s *Store) SetSize(ino msg.ObjectID, size uint64) (*Inode, msg.Errno) {
	in, errno := s.Get(ino)
	if errno != msg.OK {
		return nil, errno
	}
	if in.IsDir {
		return nil, msg.ErrIsDir
	}
	if in.Size != size {
		in.Size = size
		in.Version++
	}
	return in, msg.OK
}

// Touch bumps an object's version (any data modification observable
// through attribute polling, e.g. a server-mediated write).
func (s *Store) Touch(ino msg.ObjectID) msg.Errno {
	in, errno := s.Get(ino)
	if errno != msg.OK {
		return errno
	}
	in.Version++
	return msg.OK
}

// AllocBlocks extends a file by count blocks and returns the inode.
func (s *Store) AllocBlocks(ino msg.ObjectID, count uint32) (*Inode, msg.Errno) {
	in, errno := s.Get(ino)
	if errno != msg.OK {
		return nil, errno
	}
	if in.IsDir {
		return nil, msg.ErrIsDir
	}
	refs, errno := s.alloc.Alloc(int(count))
	if errno != msg.OK {
		return nil, errno
	}
	in.Blocks = append(in.Blocks, refs...)
	in.Version++
	return in, msg.OK
}

// Truncate shrinks a file to nBlocks blocks, freeing the tail.
func (s *Store) Truncate(ino msg.ObjectID, nBlocks int) (*Inode, msg.Errno) {
	in, errno := s.Get(ino)
	if errno != msg.OK {
		return nil, errno
	}
	if in.IsDir {
		return nil, msg.ErrIsDir
	}
	if nBlocks < len(in.Blocks) {
		s.alloc.Free(in.Blocks[nBlocks:])
		in.Blocks = in.Blocks[:nBlocks]
		in.Version++
	}
	return in, msg.OK
}

// Rename moves the object at oldPath to newPath (which must not exist;
// its parent must). Directories move with their subtrees.
func (s *Store) Rename(oldPath, newPath string) msg.Errno {
	oldParent, oldName, errno := s.lookupParent(oldPath)
	if errno != msg.OK {
		return errno
	}
	ino, ok := oldParent.children[oldName]
	if !ok {
		return msg.ErrNoEnt
	}
	newParent, newName, errno := s.lookupParent(newPath)
	if errno != msg.OK {
		return errno
	}
	if _, exists := newParent.children[newName]; exists {
		return msg.ErrExist
	}
	// Moving a directory under itself would orphan the subtree.
	moved := s.inodes[ino]
	if moved.IsDir {
		for p := newParent; p != nil; {
			if p.Ino == ino {
				return msg.ErrConflict
			}
			parent := s.parentOf(p.Ino)
			if parent == nil || parent.Ino == p.Ino {
				break
			}
			p = parent
		}
	}
	delete(oldParent.children, oldName)
	newParent.children[newName] = ino
	if moved.IsDir && oldParent != newParent {
		oldParent.Nlink--
		newParent.Nlink++
	}
	oldParent.Version++
	newParent.Version++
	return msg.OK
}

// parentOf finds the directory containing ino (nil for the root or a
// detached inode). Linear in directory count; fine at metadata scale.
func (s *Store) parentOf(ino msg.ObjectID) *Inode {
	if ino == RootIno {
		return s.inodes[RootIno]
	}
	for _, in := range s.inodes {
		if !in.IsDir {
			continue
		}
		for _, child := range in.children {
			if child == ino {
				return in
			}
		}
	}
	return nil
}

// Count returns the number of live inodes (including the root).
func (s *Store) Count() int { return len(s.inodes) }

// NextEpoch mints the next client-registration epoch, durably monotonic
// across server restarts.
func (s *Store) NextEpoch() msg.Epoch {
	s.epochSeq++
	return s.epochSeq
}
