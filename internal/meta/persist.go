package meta

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/msg"
)

// Snapshot persistence for live replicated authorities (DESIGN.md §15).
//
// The paper keeps metadata on server-private highly-available storage
// (§1.1); in the simulator HA is modeled by replicas sharing one *Store.
// Live replicas are separate processes, so the active's Store is made
// durable instead: it is serialized to a snapshot file before every reply
// leaves the server, written via temp-file + atomic rename so a SIGKILL
// can never leave a torn snapshot, and the replica that wins the next
// authority lease loads it at activation. The snapshot is the WHOLE
// store — inodes, allocation maps, the epoch counter, and the handoff
// ledgers — because all of it is state the paper assumes survives a
// server crash.

type inodeSnap struct {
	Ino      msg.ObjectID
	IsDir    bool                    `json:",omitempty"`
	Size     uint64                  `json:",omitempty"`
	Version  uint64                  `json:",omitempty"`
	Nlink    uint32                  `json:",omitempty"`
	Blocks   []msg.BlockRef          `json:",omitempty"`
	Children map[string]msg.ObjectID `json:",omitempty"`
}

type diskSnap struct {
	ID       msg.NodeID
	Capacity uint64
	Cursor   uint64
}

type allocSnap struct {
	Disks   []diskSnap
	Next    int
	InUse   []msg.BlockRef          `json:",omitempty"`
	Frees   map[msg.NodeID][]uint64 `json:",omitempty"`
	Foreign []msg.BlockRef          `json:",omitempty"`
}

type importSnap struct {
	Src   msg.NodeID
	HID   uint64
	Errno msg.Errno
}

type storeSnap struct {
	Inodes      []inodeSnap
	NextIno     msg.ObjectID
	EpochSeq    msg.Epoch
	AutoParents bool `json:",omitempty"`
	Alloc       allocSnap
	Exports     []*Export    `json:",omitempty"`
	ExportSeq   uint64       `json:",omitempty"`
	Imports     []importSnap `json:",omitempty"`
}

func sortedRefs(set map[msg.BlockRef]bool) []msg.BlockRef {
	out := make([]msg.BlockRef, 0, len(set))
	for ref := range set {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Disk != out[j].Disk {
			return out[i].Disk < out[j].Disk
		}
		return out[i].Num < out[j].Num
	})
	return out
}

// Snapshot serializes the store deterministically.
func (s *Store) Snapshot() []byte {
	snap := storeSnap{
		NextIno:     s.nextIno,
		EpochSeq:    s.epochSeq,
		AutoParents: s.autoParents,
		ExportSeq:   s.exportSeq,
	}
	for _, ino := range sortedInos(s.inodes) {
		in := s.inodes[ino]
		snap.Inodes = append(snap.Inodes, inodeSnap{
			Ino: in.Ino, IsDir: in.IsDir, Size: in.Size, Version: in.Version,
			Nlink: in.Nlink, Blocks: in.Blocks, Children: in.children,
		})
	}
	a := s.alloc
	snap.Alloc = allocSnap{
		Next:    a.next,
		InUse:   sortedRefs(a.inUse),
		Frees:   a.frees,
		Foreign: sortedRefs(a.foreign),
	}
	for _, d := range a.disks {
		snap.Alloc.Disks = append(snap.Alloc.Disks, diskSnap{d.id, d.capacity, d.cursor})
	}
	for _, e := range s.PendingExports() {
		snap.Exports = append(snap.Exports, e)
	}
	for _, k := range sortedImportKeys(s.imports) {
		snap.Imports = append(snap.Imports, importSnap{k.Src, k.HID, s.imports[k]})
	}
	b, err := json.Marshal(&snap)
	if err != nil {
		panic(fmt.Sprintf("meta: snapshot marshal: %v", err))
	}
	return b
}

func sortedInos(m map[msg.ObjectID]*Inode) []msg.ObjectID {
	out := make([]msg.ObjectID, 0, len(m))
	for ino := range m {
		out = append(out, ino)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedImportKeys(m map[importKey]msg.Errno) []importKey {
	out := make([]importKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].HID < out[j].HID
	})
	return out
}

// Restore rebuilds a store from a Snapshot.
func Restore(data []byte) (*Store, error) {
	var snap storeSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("meta: snapshot decode: %w", err)
	}
	a := &Allocator{
		next:    snap.Alloc.Next,
		inUse:   make(map[msg.BlockRef]bool, len(snap.Alloc.InUse)),
		frees:   snap.Alloc.Frees,
		foreign: make(map[msg.BlockRef]bool, len(snap.Alloc.Foreign)),
	}
	if a.frees == nil {
		a.frees = make(map[msg.NodeID][]uint64)
	}
	for _, d := range snap.Alloc.Disks {
		a.disks = append(a.disks, diskSpace{id: d.ID, capacity: d.Capacity, cursor: d.Cursor})
	}
	for _, ref := range snap.Alloc.InUse {
		a.inUse[ref] = true
	}
	for _, ref := range snap.Alloc.Foreign {
		a.foreign[ref] = true
	}
	s := &Store{
		inodes:      make(map[msg.ObjectID]*Inode, len(snap.Inodes)),
		nextIno:     snap.NextIno,
		alloc:       a,
		epochSeq:    snap.EpochSeq,
		autoParents: snap.AutoParents,
		exports:     make(map[uint64]*Export, len(snap.Exports)),
		exportSeq:   snap.ExportSeq,
		migrating:   make(map[msg.ObjectID]uint64),
		imports:     make(map[importKey]msg.Errno, len(snap.Imports)),
	}
	for i := range snap.Inodes {
		in := &snap.Inodes[i]
		node := &Inode{
			Ino: in.Ino, IsDir: in.IsDir, Size: in.Size, Version: in.Version,
			Nlink: in.Nlink, Blocks: in.Blocks, children: in.Children,
		}
		if node.IsDir && node.children == nil {
			node.children = make(map[string]msg.ObjectID)
		}
		s.inodes[node.Ino] = node
	}
	for _, e := range snap.Exports {
		s.exports[e.HID] = e
		s.migrating[e.Ino] = e.HID
	}
	for _, im := range snap.Imports {
		s.imports[importKey{Src: im.Src, HID: im.HID}] = im.Errno
	}
	return s, nil
}

// SaveSnapshot writes the store to path via temp-file + atomic rename: a
// crash at any instant leaves either the previous snapshot or the new
// one, never a torn file.
func (s *Store) SaveSnapshot(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, s.Snapshot(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot rebuilds a store from a snapshot file. A missing file is
// not an error: it returns (nil, nil), meaning no prior regime persisted
// anything (cold boot).
func LoadSnapshot(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return Restore(data)
}

// CurrentEpoch reads the durable epoch counter without advancing it. A
// nonzero value means clients registered under some prior regime — the
// signal a newly activated replica uses to decide whether grace-period
// recovery is needed.
func (s *Store) CurrentEpoch() msg.Epoch { return s.epochSeq }
