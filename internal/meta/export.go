package meta

import (
	"sort"

	"repro/internal/msg"
)

// Cross-shard handoff state (DESIGN.md §14). A rename whose destination
// lives on another lease authority migrates the file's metadata there:
// the source shard records a durable Export, transmits the object, and
// only unlinks its copy once the destination acknowledges the install.
// Both sides of the exchange live in the Store — the server's private
// highly-available storage — so the protocol survives either shard
// crashing mid-handoff: a restarted source re-drives its pending
// exports, and a restarted destination answers retransmissions from its
// durable import ledger instead of installing twice.

// Export is one in-flight outbound handoff.
type Export struct {
	// HID is the handoff identifier, unique per source shard and durably
	// monotonic: the (source, HID) pair names the handoff end to end.
	HID uint64
	// Dest is the lease authority receiving the object.
	Dest msg.NodeID
	// Ino is the local inode being migrated. While the export is
	// pending the server refuses all operations on it.
	Ino msg.ObjectID
	// OldPath is the object's name here; NewPath its name at Dest.
	OldPath, NewPath string
}

type importKey struct {
	Src msg.NodeID
	HID uint64
}

// BeginExport mints a durable handoff record for ino and marks it
// migrating. The caller transmits the object to dest and later settles
// the record with CompleteExport or AbortExport.
func (s *Store) BeginExport(ino msg.ObjectID, dest msg.NodeID, oldPath, newPath string) *Export {
	s.exportSeq++
	e := &Export{HID: s.exportSeq, Dest: dest, Ino: ino, OldPath: oldPath, NewPath: newPath}
	s.exports[e.HID] = e
	s.migrating[ino] = e.HID
	return e
}

// Export returns the pending export with the given handoff ID, if any.
func (s *Store) Export(hid uint64) *Export { return s.exports[hid] }

// Migrating reports whether ino has a pending outbound handoff.
func (s *Store) Migrating(ino msg.ObjectID) bool {
	_, ok := s.migrating[ino]
	return ok
}

// ExportFor returns the pending export migrating ino, if any.
func (s *Store) ExportFor(ino msg.ObjectID) *Export {
	hid, ok := s.migrating[ino]
	if !ok {
		return nil
	}
	return s.exports[hid]
}

// CompleteExport settles a handoff the destination acknowledged:
// the local name and inode disappear. The file's blocks are NOT freed —
// the destination now owns them at their original disk addresses, so
// they stay accounted in-use here forever, never reissued.
func (s *Store) CompleteExport(hid uint64) {
	e, ok := s.exports[hid]
	if !ok {
		return
	}
	if parent, name, errno := s.lookupParent(e.OldPath); errno == msg.OK {
		if ino, ok := parent.children[name]; ok && ino == e.Ino {
			delete(parent.children, name)
			parent.Version++
		}
	}
	delete(s.inodes, e.Ino)
	delete(s.migrating, e.Ino)
	delete(s.exports, hid)
}

// AbortExport settles a handoff the destination refused: the object
// stays here, unchanged, and stops being marked migrating.
func (s *Store) AbortExport(hid uint64) {
	e, ok := s.exports[hid]
	if !ok {
		return
	}
	delete(s.migrating, e.Ino)
	delete(s.exports, hid)
}

// PendingExports returns the unsettled handoffs in HID order, for a
// restarted server to re-drive.
func (s *Store) PendingExports() []*Export {
	out := make([]*Export, 0, len(s.exports))
	for _, e := range s.exports {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HID < out[j].HID })
	return out
}

// Install materializes an object received from another shard: a fresh
// local inode at path carrying the migrated size, version, and block
// map, with the blocks adopted into the local allocator. Missing parent
// directories are created — each shard holds only the slice of the
// namespace placed on it, so an imported path's ancestors may not exist
// here yet.
func (s *Store) Install(path string, attr msg.Attr, blocks []msg.BlockRef) (*Inode, msg.Errno) {
	s.ensureParents(path)
	parent, name, errno := s.lookupParent(path)
	if errno != msg.OK {
		return nil, errno
	}
	if _, exists := parent.children[name]; exists {
		return nil, msg.ErrExist
	}
	in := &Inode{
		Ino: s.nextIno, IsDir: attr.IsDir, Size: attr.Size,
		Version: attr.Version, Nlink: 1, Blocks: blocks,
	}
	s.nextIno++
	if in.IsDir {
		in.Nlink = 2
		in.children = make(map[string]msg.ObjectID)
		parent.Nlink++
	}
	s.alloc.Adopt(blocks)
	s.inodes[in.Ino] = in
	parent.children[name] = in.Ino
	parent.Version++
	return in, msg.OK
}

// RecordImport writes the durable outcome of an inbound handoff, so a
// retransmitted ShardMigrate — or one replayed after this shard
// restarts — is answered from the ledger instead of installed twice.
func (s *Store) RecordImport(src msg.NodeID, hid uint64, errno msg.Errno) {
	s.imports[importKey{Src: src, HID: hid}] = errno
}

// ImportResult returns the recorded outcome of an inbound handoff.
func (s *Store) ImportResult(src msg.NodeID, hid uint64) (msg.Errno, bool) {
	errno, ok := s.imports[importKey{Src: src, HID: hid}]
	return errno, ok
}
