package meta

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/msg"
)

func newStore() *Store {
	return NewStore(NewAllocator(map[msg.NodeID]uint64{9: 1024}))
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		ok   bool
	}{
		{"/", []string{}, true},
		{"/a", []string{"a"}, true},
		{"/a/b/c", []string{"a", "b", "c"}, true},
		{"//a///b", []string{"a", "b"}, true},
		{"/a/./b", []string{"a", "b"}, true},
		{"/a/../b", []string{"b"}, true},
		{"/..", nil, false},
		{"relative", nil, false},
		{"", nil, false},
	}
	for _, c := range cases {
		got, ok := SplitPath(c.in)
		if ok != c.ok {
			t.Errorf("SplitPath(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestCreateLookup(t *testing.T) {
	s := newStore()
	dir, errno := s.Create("/docs", true)
	if errno != msg.OK || !dir.IsDir {
		t.Fatalf("mkdir: %v", errno)
	}
	f, errno := s.Create("/docs/a.txt", false)
	if errno != msg.OK || f.IsDir {
		t.Fatalf("create: %v", errno)
	}
	got, errno := s.Lookup("/docs/a.txt")
	if errno != msg.OK || got.Ino != f.Ino {
		t.Fatalf("lookup: %v, ino %v vs %v", errno, got, f)
	}
	if _, errno := s.Lookup("/docs/missing"); errno != msg.ErrNoEnt {
		t.Fatalf("missing lookup errno = %v", errno)
	}
	if _, errno := s.Lookup("/docs/a.txt/x"); errno != msg.ErrNotDir {
		t.Fatalf("file-as-dir errno = %v", errno)
	}
	root, errno := s.Lookup("/")
	if errno != msg.OK || root.Ino != RootIno {
		t.Fatalf("root lookup: %v %v", errno, root)
	}
}

func TestCreateErrors(t *testing.T) {
	s := newStore()
	if _, errno := s.Create("/a", false); errno != msg.OK {
		t.Fatal(errno)
	}
	if _, errno := s.Create("/a", false); errno != msg.ErrExist {
		t.Fatalf("duplicate create errno = %v", errno)
	}
	if _, errno := s.Create("/nodir/x", false); errno != msg.ErrNoEnt {
		t.Fatalf("create under missing dir errno = %v", errno)
	}
	if _, errno := s.Create("/a/x", false); errno != msg.ErrNotDir {
		t.Fatalf("create under file errno = %v", errno)
	}
	if _, errno := s.Create("relative", false); errno != msg.ErrNoEnt {
		t.Fatalf("relative create errno = %v", errno)
	}
}

func TestUnlink(t *testing.T) {
	s := newStore()
	s.Create("/d", true)
	s.Create("/d/f", false)
	if errno := s.Unlink("/d"); errno != msg.ErrExist {
		t.Fatalf("unlink non-empty dir errno = %v", errno)
	}
	if errno := s.Unlink("/d/f"); errno != msg.OK {
		t.Fatalf("unlink file errno = %v", errno)
	}
	if errno := s.Unlink("/d"); errno != msg.OK {
		t.Fatalf("unlink empty dir errno = %v", errno)
	}
	if _, errno := s.Lookup("/d"); errno != msg.ErrNoEnt {
		t.Fatal("dir still present after unlink")
	}
	if errno := s.Unlink("/d"); errno != msg.ErrNoEnt {
		t.Fatalf("double unlink errno = %v", errno)
	}
	if s.Count() != 1 {
		t.Fatalf("inode count = %d, want 1 (root)", s.Count())
	}
}

func TestUnlinkFreesBlocks(t *testing.T) {
	alloc := NewAllocator(map[msg.NodeID]uint64{9: 8})
	s := NewStore(alloc)
	f, _ := s.Create("/f", false)
	if _, errno := s.AllocBlocks(f.Ino, 8); errno != msg.OK {
		t.Fatal(errno)
	}
	if _, errno := s.AllocBlocks(f.Ino, 1); errno != msg.ErrNoSpace {
		t.Fatalf("over-alloc errno = %v", errno)
	}
	if errno := s.Unlink("/f"); errno != msg.OK {
		t.Fatal(errno)
	}
	if alloc.InUse() != 0 {
		t.Fatalf("blocks still in use after unlink: %d", alloc.InUse())
	}
	// Space is reusable.
	g, _ := s.Create("/g", false)
	if _, errno := s.AllocBlocks(g.Ino, 8); errno != msg.OK {
		t.Fatalf("realloc errno = %v", errno)
	}
}

func TestReaddirSorted(t *testing.T) {
	s := newStore()
	s.Create("/b", false)
	s.Create("/a", true)
	s.Create("/c", false)
	entries, errno := s.Readdir(RootIno)
	if errno != msg.OK || len(entries) != 3 {
		t.Fatalf("readdir: %v %v", errno, entries)
	}
	if entries[0].Name != "a" || entries[1].Name != "b" || entries[2].Name != "c" {
		t.Fatalf("not sorted: %v", entries)
	}
	if !entries[0].IsDir || entries[1].IsDir {
		t.Fatal("IsDir flags wrong")
	}
	f, _ := s.Lookup("/b")
	if _, errno := s.Readdir(f.Ino); errno != msg.ErrNotDir {
		t.Fatalf("readdir on file errno = %v", errno)
	}
	if _, errno := s.Readdir(999); errno != msg.ErrNoEnt {
		t.Fatalf("readdir missing errno = %v", errno)
	}
}

func TestSetSizeBumpsVersion(t *testing.T) {
	s := newStore()
	f, _ := s.Create("/f", false)
	v0 := f.Version
	in, errno := s.SetSize(f.Ino, 100)
	if errno != msg.OK || in.Size != 100 {
		t.Fatalf("SetSize: %v %v", errno, in)
	}
	if in.Version <= v0 {
		t.Fatal("version not bumped")
	}
	v1 := in.Version
	if in, _ = s.SetSize(f.Ino, 100); in.Version != v1 {
		t.Fatal("no-op SetSize must not bump version")
	}
	if _, errno := s.SetSize(RootIno, 5); errno != msg.ErrIsDir {
		t.Fatalf("SetSize on dir errno = %v", errno)
	}
}

func TestAllocBlocksAndTruncate(t *testing.T) {
	s := newStore()
	f, _ := s.Create("/f", false)
	in, errno := s.AllocBlocks(f.Ino, 5)
	if errno != msg.OK || len(in.Blocks) != 5 {
		t.Fatalf("alloc: %v %v", errno, in.Blocks)
	}
	in, errno = s.Truncate(f.Ino, 2)
	if errno != msg.OK || len(in.Blocks) != 2 {
		t.Fatalf("truncate: %v %v", errno, in.Blocks)
	}
	// Growing truncate is a no-op.
	in, _ = s.Truncate(f.Ino, 10)
	if len(in.Blocks) != 2 {
		t.Fatal("truncate grew the file")
	}
	if _, errno := s.AllocBlocks(RootIno, 1); errno != msg.ErrIsDir {
		t.Fatalf("alloc on dir errno = %v", errno)
	}
}

func TestAllocatorStripes(t *testing.T) {
	a := NewAllocator(map[msg.NodeID]uint64{3: 10, 5: 10})
	refs, errno := a.Alloc(4)
	if errno != msg.OK {
		t.Fatal(errno)
	}
	byDisk := map[msg.NodeID]int{}
	for _, r := range refs {
		byDisk[r.Disk]++
	}
	if byDisk[3] != 2 || byDisk[5] != 2 {
		t.Fatalf("striping uneven: %v", byDisk)
	}
}

func TestAllocatorExhaustionRollsBack(t *testing.T) {
	a := NewAllocator(map[msg.NodeID]uint64{3: 4})
	if _, errno := a.Alloc(3); errno != msg.OK {
		t.Fatal(errno)
	}
	if _, errno := a.Alloc(2); errno != msg.ErrNoSpace {
		t.Fatalf("errno = %v, want ErrNoSpace", errno)
	}
	// The failed Alloc must have returned its partial grab.
	if a.InUse() != 3 {
		t.Fatalf("in-use = %d after failed alloc, want 3", a.InUse())
	}
	if refs, errno := a.Alloc(1); errno != msg.OK || len(refs) != 1 {
		t.Fatal("remaining block not allocatable")
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(map[msg.NodeID]uint64{3: 4})
	refs, _ := a.Alloc(1)
	a.Free(refs)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(refs)
}

func TestAllocatorNoDisks(t *testing.T) {
	a := NewAllocator(nil)
	if _, errno := a.Alloc(1); errno != msg.ErrNoSpace {
		t.Fatalf("errno = %v", errno)
	}
}

// Property: alloc never hands out the same block twice while it is in use.
func TestAllocatorUniqueProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		a := NewAllocator(map[msg.NodeID]uint64{2: 64, 4: 64, 6: 64})
		seen := make(map[msg.BlockRef]bool)
		var held [][]msg.BlockRef
		for _, c := range counts {
			n := int(c%8) + 1
			refs, errno := a.Alloc(n)
			if errno != msg.OK {
				// Exhausted: free everything and continue.
				for _, h := range held {
					for _, r := range h {
						delete(seen, r)
					}
					a.Free(h)
				}
				held = nil
				continue
			}
			for _, r := range refs {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
			held = append(held, refs)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAttrRendering(t *testing.T) {
	s := newStore()
	f, _ := s.Create("/f", false)
	s.SetSize(f.Ino, 4096)
	a := f.Attr()
	if a.Ino != f.Ino || a.Size != 4096 || a.IsDir || a.Nlink != 1 {
		t.Fatalf("attr = %+v", a)
	}
}

func TestRename(t *testing.T) {
	s := newStore()
	s.Create("/dir", true)
	f, _ := s.Create("/dir/f", false)
	if errno := s.Rename("/dir/f", "/f2"); errno != msg.OK {
		t.Fatalf("rename: %v", errno)
	}
	got, errno := s.Lookup("/f2")
	if errno != msg.OK || got.Ino != f.Ino {
		t.Fatal("renamed file wrong")
	}
	if _, errno := s.Lookup("/dir/f"); errno != msg.ErrNoEnt {
		t.Fatal("old path still resolves")
	}
	// Destination exists → refuse.
	s.Create("/f3", false)
	if errno := s.Rename("/f2", "/f3"); errno != msg.ErrExist {
		t.Fatalf("rename onto existing = %v", errno)
	}
	// Missing source → ErrNoEnt.
	if errno := s.Rename("/ghost", "/any"); errno != msg.ErrNoEnt {
		t.Fatalf("rename of missing = %v", errno)
	}
}

func TestRenameDirectoryMovesSubtree(t *testing.T) {
	s := newStore()
	s.Create("/a", true)
	s.Create("/a/b", true)
	s.Create("/a/b/f", false)
	s.Create("/c", true)
	if errno := s.Rename("/a/b", "/c/b2"); errno != msg.OK {
		t.Fatalf("dir rename: %v", errno)
	}
	if _, errno := s.Lookup("/c/b2/f"); errno != msg.OK {
		t.Fatal("subtree lost")
	}
	// Moving a directory under itself is refused.
	if errno := s.Rename("/c", "/c/b2/evil"); errno != msg.ErrConflict {
		t.Fatalf("cycle rename = %v, want ErrConflict", errno)
	}
}

// TestStoreModelProperty replays random create/unlink/rename sequences
// against a simple model (path → isDir) and checks the store agrees on
// existence, kind, and errno class for lookups.
func TestStoreModelProperty(t *testing.T) {
	paths := []string{"/a", "/b", "/d1", "/d1/x", "/d1/y", "/d2", "/d2/z"}
	f := func(ops []uint16) bool {
		s := newStore()
		model := map[string]bool{} // path → isDir
		parentOK := func(p string) bool {
			switch p {
			case "/a", "/b", "/d1", "/d2":
				return true
			default:
				// nested: parent must exist and be a dir
				dir := p[:strings.LastIndex(p, "/")]
				isDir, ok := model[dir]
				return ok && isDir
			}
		}
		for _, op := range ops {
			p := paths[int(op)%len(paths)]
			isDir := op&0x100 != 0
			switch op % 3 {
			case 0: // create
				_, errno := s.Create(p, isDir)
				_, exists := model[p]
				switch {
				case exists && errno != msg.ErrExist:
					return false
				case !exists && parentOK(p) && errno != msg.OK:
					return false
				case !exists && !parentOK(p) && errno == msg.OK:
					// A missing/invalid parent must fail (ErrNoEnt or
					// ErrNotDir, depending on what blocks the walk).
					return false
				}
				if errno == msg.OK {
					model[p] = isDir
				}
			case 1: // unlink
				errno := s.Unlink(p)
				wasDir, exists := model[p]
				hasChild := false
				for q := range model {
					if strings.HasPrefix(q, p+"/") {
						hasChild = true
					}
				}
				switch {
				case !exists && errno == msg.OK:
					// Missing paths fail with some not-found class
					// (ErrNoEnt, or ErrNotDir when a file blocks the walk).
					return false
				case exists && wasDir && hasChild && errno != msg.ErrExist:
					return false
				case exists && (!wasDir || !hasChild) && errno != msg.OK:
					return false
				}
				if errno == msg.OK {
					delete(model, p)
				}
			case 2: // lookup
				_, errno := s.Lookup(p)
				if _, exists := model[p]; exists != (errno == msg.OK) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
