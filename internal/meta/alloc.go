package meta

import "repro/internal/msg"

// Allocator hands out file data blocks across the installation's SAN
// disks, round-robin for coarse striping. It is server-private state: the
// shared disks themselves know nothing about allocation.
type Allocator struct {
	disks []diskSpace
	next  int // round-robin cursor
	inUse map[msg.BlockRef]bool
	frees map[msg.NodeID][]uint64 // returned blocks, reused before fresh ones
	// foreign tracks blocks adopted from another shard's allocator via a
	// cross-shard handoff. They are never candidates for reuse here: the
	// home allocator still counts them in-use, so reissuing one would
	// double-allocate the disk block. Freeing a foreign block just
	// retires the reference.
	foreign map[msg.BlockRef]bool
}

type diskSpace struct {
	id       msg.NodeID
	capacity uint64
	cursor   uint64 // next never-allocated block
}

// NewAllocator creates an allocator over the given disks.
func NewAllocator(disks map[msg.NodeID]uint64) *Allocator {
	a := &Allocator{
		inUse:   make(map[msg.BlockRef]bool),
		frees:   make(map[msg.NodeID][]uint64),
		foreign: make(map[msg.BlockRef]bool),
	}
	// Deterministic order regardless of map iteration.
	for id := msg.NodeID(1); len(a.disks) < len(disks); id++ {
		if cap, ok := disks[id]; ok {
			a.disks = append(a.disks, diskSpace{id: id, capacity: cap})
		}
		if id > 1<<20 {
			panic("meta: disk IDs out of expected range")
		}
	}
	return a
}

// Alloc returns count fresh blocks, striped round-robin across disks.
func (a *Allocator) Alloc(count int) ([]msg.BlockRef, msg.Errno) {
	if len(a.disks) == 0 {
		return nil, msg.ErrNoSpace
	}
	refs := make([]msg.BlockRef, 0, count)
	for len(refs) < count {
		ref, ok := a.allocOne()
		if !ok {
			// Roll back so failed allocations don't leak.
			a.Free(refs)
			return nil, msg.ErrNoSpace
		}
		refs = append(refs, ref)
	}
	return refs, msg.OK
}

func (a *Allocator) allocOne() (msg.BlockRef, bool) {
	for tries := 0; tries < len(a.disks); tries++ {
		d := &a.disks[a.next]
		a.next = (a.next + 1) % len(a.disks)
		if fl := a.frees[d.id]; len(fl) > 0 {
			b := fl[len(fl)-1]
			a.frees[d.id] = fl[:len(fl)-1]
			ref := msg.BlockRef{Disk: d.id, Num: b}
			a.inUse[ref] = true
			return ref, true
		}
		if d.cursor < d.capacity {
			ref := msg.BlockRef{Disk: d.id, Num: d.cursor}
			d.cursor++
			a.inUse[ref] = true
			return ref, true
		}
	}
	return msg.BlockRef{}, false
}

// Free returns blocks to the allocator. Double frees panic: they are
// always a metadata-integrity bug. Foreign (adopted) blocks are retired
// without entering the free list — only their home allocator may reuse
// them.
func (a *Allocator) Free(refs []msg.BlockRef) {
	for _, ref := range refs {
		if a.inUse[ref] {
			delete(a.inUse, ref)
			a.frees[ref.Disk] = append(a.frees[ref.Disk], ref.Num)
			continue
		}
		if a.foreign[ref] {
			delete(a.foreign, ref)
			continue
		}
		panic("meta: double free of block")
	}
}

// Adopt registers blocks that were allocated by another shard's
// allocator and arrived here through a cross-shard handoff. Adopted
// blocks keep their original disk addresses (file data never moves);
// they are tracked only so Free tolerates them.
func (a *Allocator) Adopt(refs []msg.BlockRef) {
	for _, ref := range refs {
		a.foreign[ref] = true
	}
}

// InUse returns the number of allocated blocks.
func (a *Allocator) InUse() int { return len(a.inUse) }

// Capacity returns total blocks across all disks.
func (a *Allocator) Capacity() uint64 {
	var total uint64
	for _, d := range a.disks {
		total += d.capacity
	}
	return total
}
