package cache

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/msg"
	"repro/internal/stats"
)

// Regression: Fill over a dirty page must refuse — the dirty bytes are
// an acknowledged write the SAN has not seen yet. The pre-fix Fill
// replaced the page with clean SAN content while leaving dirtyKeys and
// the dirty_pages gauge claiming a dirty page that no longer existed;
// MarkClean then no-oped (the new page was !Dirty), so TotalDirty never
// drained and phase-4 quiesce could spin forever. This test fails on
// that code: the returned page is clean and holds the stale bytes.
func TestFillOverDirtyRefused(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "r.")
	c.Write(1, 0, []byte("fresh"), 5)
	p := c.Fill(1, 0, []byte("stale"), 4)
	if !p.Dirty || !bytes.Equal(p.Data, []byte("fresh")) {
		t.Fatalf("Fill overwrote dirty content: page = %+v", p)
	}
	if got := c.Object(1).Page(0); !got.Dirty || !bytes.Equal(got.Data, []byte("fresh")) {
		t.Fatalf("resident page lost the acknowledged write: %+v", got)
	}
	if c.TotalDirty() != 1 || reg.Gauge("r.cache.dirty_pages").Value() != 1 {
		t.Fatalf("dirty accounting diverged: TotalDirty=%d gauge=%d",
			c.TotalDirty(), reg.Gauge("r.cache.dirty_pages").Value())
	}
	// The flush path must still drain the page — this is what wedges when
	// the bookkeeping desyncs.
	c.MarkClean(1, 0)
	if c.TotalDirty() != 0 || reg.Gauge("r.cache.dirty_pages").Value() != 0 {
		t.Fatalf("dirty page never drained: TotalDirty=%d gauge=%d — phase-4 quiesce would spin",
			c.TotalDirty(), reg.Gauge("r.cache.dirty_pages").Value())
	}
	if c.Object(1).Page(0).Dirty {
		t.Fatal("page still flagged dirty after MarkClean")
	}
}

// Identical clean content across objects shares one block; a write
// copy-on-writes away from it without disturbing the other holder, and
// dropping one object releases only its own references.
func TestDedupSharesAndIsolates(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "d.")
	content := bytes.Repeat([]byte("x"), 512)
	c.Fill(1, 0, content, 1)
	c.Fill(2, 5, content, 2)
	if got := reg.CounterValue("d.cache.dedup_hits"); got != 1 {
		t.Fatalf("dedup_hits = %d, want 1", got)
	}
	if c.SharedBlocks() != 1 || c.ResidentBytes() != 512 || c.ResidentPages() != 2 {
		t.Fatalf("blocks=%d bytes=%d pages=%d, want 1/512/2",
			c.SharedBlocks(), c.ResidentBytes(), c.ResidentPages())
	}
	// Copy-on-write: mutating (2,5) must not change (1,0)'s bytes.
	other := bytes.Repeat([]byte("y"), 512)
	c.Write(2, 5, other, 3)
	if !bytes.Equal(c.Object(1).Page(0).Data, content) {
		t.Fatal("write through a shared block corrupted the other holder")
	}
	if c.ResidentBytes() != 1024 {
		t.Fatalf("bytes = %d after COW, want 1024", c.ResidentBytes())
	}
	// Per-object invalidation: dropping object 1 must not touch object
	// 2's page (the lease protocol revokes per object).
	c.Drop(1)
	if got := c.Object(2).Page(5); got == nil || !bytes.Equal(got.Data, other) {
		t.Fatal("dropping one object disturbed another holder")
	}
	if c.ResidentBytes() != 512 || c.ResidentPages() != 1 {
		t.Fatalf("bytes=%d pages=%d after drop, want 512/1", c.ResidentBytes(), c.ResidentPages())
	}
}

// MarkClean promotes a flushed page's private buffer into the content
// store, deduplicating against already-resident identical content.
func TestMarkCleanDedupsAgainstResident(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "m.")
	content := bytes.Repeat([]byte("z"), 512)
	c.Fill(1, 0, content, 1)
	c.Write(2, 0, content, 2)
	if c.ResidentBytes() != 1024 {
		t.Fatalf("bytes = %d while dirty, want 1024 (dirty content is private)", c.ResidentBytes())
	}
	c.MarkClean(2, 0)
	if c.SharedBlocks() != 1 || c.ResidentBytes() != 512 {
		t.Fatalf("blocks=%d bytes=%d after promote, want 1/512", c.SharedBlocks(), c.ResidentBytes())
	}
	if reg.CounterValue("m.cache.dedup_hits") != 1 {
		t.Fatal("promotion did not dedup")
	}
	if !bytes.Equal(c.Object(2).Page(0).Data, content) {
		t.Fatal("promoted page lost its content")
	}
}

// Byte-quota eviction: resident bytes are bounded, dedup'd pages are
// nearly free, and dirty pages are pinned past the quota.
func TestByteQuotaEviction(t *testing.T) {
	reg := stats.NewRegistry()
	c := NewWithLimits(reg, "q.", 0, 1024)
	a := bytes.Repeat([]byte("a"), 512)
	b := bytes.Repeat([]byte("b"), 512)
	d := bytes.Repeat([]byte("d"), 512)
	c.Fill(1, 0, a, 1)
	c.Fill(1, 1, b, 2)
	if c.ResidentBytes() != 1024 {
		t.Fatalf("bytes = %d, want 1024", c.ResidentBytes())
	}
	c.Fill(1, 2, d, 3) // 1536 > 1024: evict LRU page (idx 0)
	if c.ResidentBytes() > 1024 {
		t.Fatalf("bytes = %d over quota", c.ResidentBytes())
	}
	if c.Object(1).Page(0) != nil || reg.CounterValue("q.cache.evictions") == 0 {
		t.Fatal("LRU page not evicted for the byte quota")
	}
	// Dedup'd fills add pages but no bytes: no eviction needed.
	for i := uint64(10); i < 20; i++ {
		c.Fill(2, i, b, 4)
	}
	if c.ResidentBytes() > 1024 || c.Object(1).Page(1) == nil {
		t.Fatalf("dedup'd fills cost bytes: %d", c.ResidentBytes())
	}
	if c.ResidentPages() != 12 {
		t.Fatalf("pages = %d, want 12 (dedup does not evict page entries)", c.ResidentPages())
	}
}

// A dirty set larger than the whole budget is retained: acknowledged
// writes are never dropped, whichever budget (pages or bytes) is
// exceeded.
func TestQuotaSmallerThanDirtySet(t *testing.T) {
	c := NewWithLimits(nil, "", 2, 600)
	for i := uint64(0); i < 5; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 512)
		c.Write(1, i, data, i+1)
	}
	if c.TotalDirty() != 5 || c.ResidentPages() != 5 {
		t.Fatalf("dirty=%d resident=%d — an acknowledged write was dropped",
			c.TotalDirty(), c.ResidentPages())
	}
	// Flushing lets eviction trim back within both budgets.
	for i := uint64(0); i < 5; i++ {
		c.MarkClean(1, i)
	}
	if c.ResidentPages() > 2 || c.ResidentBytes() > 600 {
		t.Fatalf("resident=%d bytes=%d after flush, want within 2/600",
			c.ResidentPages(), c.ResidentBytes())
	}
}

// Accounting across the full page lifecycle.
func TestAccountingFillWriteCleanDrop(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "l.")
	gauge := func(name string) int64 { return reg.Gauge("l.cache." + name).Value() }
	content := bytes.Repeat([]byte("c"), 512)
	c.Fill(1, 0, content, 1)
	if c.ResidentPages() != 1 || c.ResidentBytes() != 512 || gauge("resident_bytes") != 512 {
		t.Fatalf("after Fill: pages=%d bytes=%d gauge=%d", c.ResidentPages(), c.ResidentBytes(), gauge("resident_bytes"))
	}
	c.Write(1, 0, bytes.Repeat([]byte("w"), 512), 2)
	if c.ResidentPages() != 1 || c.ResidentBytes() != 512 || gauge("dirty_pages") != 1 {
		t.Fatalf("after Write: pages=%d bytes=%d dirty=%d", c.ResidentPages(), c.ResidentBytes(), gauge("dirty_pages"))
	}
	c.MarkClean(1, 0)
	if gauge("dirty_pages") != 0 || c.ResidentBytes() != 512 || c.SharedBlocks() != 1 {
		t.Fatalf("after MarkClean: dirty=%d bytes=%d blocks=%d", gauge("dirty_pages"), c.ResidentBytes(), c.SharedBlocks())
	}
	c.Drop(1)
	if c.ResidentPages() != 0 || c.ResidentBytes() != 0 || gauge("resident_bytes") != 0 || c.SharedBlocks() != 0 {
		t.Fatalf("after Drop: pages=%d bytes=%d gauge=%d blocks=%d",
			c.ResidentPages(), c.ResidentBytes(), gauge("resident_bytes"), c.SharedBlocks())
	}
}

// Read-ahead attribution: the first hit on a prefetched page counts as
// a prefetch hit; removal (or overwrite) before any hit counts it
// wasted; a page a demand read already installed is left alone.
func TestPrefetchCounters(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "p.")
	hits := func() uint64 { return reg.CounterValue("p.cache.prefetch_hits") }
	wasted := func() uint64 { return reg.CounterValue("p.cache.prefetch_wasted") }

	c.FillPrefetched(1, 0, []byte("a"), 1)
	c.Lookup(1, 0)
	c.Lookup(1, 0) // only the first hit attributes
	if hits() != 1 || wasted() != 0 {
		t.Fatalf("hits=%d wasted=%d, want 1/0", hits(), wasted())
	}
	c.FillPrefetched(1, 1, []byte("b"), 2)
	c.Drop(1) // never served
	if wasted() != 1 {
		t.Fatalf("wasted = %d, want 1", wasted())
	}
	c.FillPrefetched(2, 0, []byte("d"), 3)
	c.Write(2, 0, []byte("e"), 4) // overwritten before serving
	if wasted() != 2 {
		t.Fatalf("wasted = %d, want 2", wasted())
	}
	c.Fill(3, 0, []byte("f"), 5)
	if p := c.FillPrefetched(3, 0, []byte("g"), 6); !bytes.Equal(p.Data, []byte("f")) {
		t.Fatal("prefetch completion displaced a demand-read page")
	}
	c.Lookup(3, 0)
	if hits() != 1 {
		t.Fatalf("hits = %d — demand-read page wrongly attributed to prefetch", hits())
	}
}

// mpage is the model's view of one page.
type mpage struct {
	content string
	dirty   bool
}

// Model-based property test: the cache against a trivial per-object
// page map under arbitrary interleavings of every mutating operation.
// This is the dedup analogue of the flush-equivalence test — MarkClean
// stands in for a flush commit — and pins exactly the bookkeeping the
// lease protocol's phase 4 relies on:
//
//	dirtyKeys ↔ Page.Dirty ↔ dirty_pages gauge never diverge,
//	dirty (acknowledged) content is never dropped or altered,
//	every resident page's bytes match the model (dedup never leaks
//	content between objects),
//	resident bytes equal the recomputed unique-content footprint.
func TestCacheModelProperty(t *testing.T) {
	const (
		inos  = 3
		idxs  = 4
		steps = 400
	)
	contents := make([]string, 4)
	for i := range contents {
		contents[i] = strings.Repeat(string(rune('a'+i)), 512)
	}

	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		bounded := seed%2 == 1
		maxPages, quota := 0, int64(0)
		if bounded {
			maxPages, quota = 5, 4*512
		}
		reg := stats.NewRegistry()
		c := NewWithLimits(reg, "mp.", maxPages, quota)
		model := make(map[msg.ObjectID]map[uint64]mpage)
		ensure := func(ino msg.ObjectID) map[uint64]mpage {
			if model[ino] == nil {
				model[ino] = make(map[uint64]mpage)
			}
			return model[ino]
		}

		var ver uint64
		for step := 0; step < steps; step++ {
			ino := msg.ObjectID(rng.Intn(inos) + 1)
			idx := uint64(rng.Intn(idxs))
			data := contents[rng.Intn(len(contents))]
			ver++
			switch rng.Intn(12) {
			case 0, 1, 2:
				c.Fill(ino, idx, []byte(data), ver)
				if m, ok := ensure(ino)[idx]; !ok || !m.dirty {
					ensure(ino)[idx] = mpage{content: data}
				}
			case 3, 4:
				// FillPrefetched is a no-op iff the page is still resident
				// (a bounded cache may have evicted the model's entry).
				resident := c.Object(ino) != nil && c.Object(ino).Page(idx) != nil
				c.FillPrefetched(ino, idx, []byte(data), ver)
				if !resident {
					ensure(ino)[idx] = mpage{content: data}
				}
			case 5, 6, 7:
				c.Write(ino, idx, []byte(data), ver)
				ensure(ino)[idx] = mpage{content: data, dirty: true}
			case 8:
				c.MarkClean(ino, idx)
				if m, ok := ensure(ino)[idx]; ok && m.dirty {
					ensure(ino)[idx] = mpage{content: m.content}
				}
			case 9:
				c.Drop(ino)
				delete(model, ino)
			case 10:
				c.DropPagesFrom(ino, idx)
				for i2 := range model[ino] {
					if i2 >= idx {
						delete(model[ino], i2)
					}
				}
			case 11:
				if rng.Intn(8) == 0 {
					c.InvalidateAll()
					model = make(map[msg.ObjectID]map[uint64]mpage)
				} else {
					c.Lookup(ino, idx)
				}
			}
			checkModel(t, c, reg, model, bounded, seed, step)
			if t.Failed() {
				return
			}
		}
	}
}

func checkModel(t *testing.T, c *Cache, reg *stats.Registry,
	model map[msg.ObjectID]map[uint64]mpage, bounded bool, seed int64, step int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Fatalf("seed %d step %d: %s", seed, step, fmt.Sprintf(format, args...))
	}

	wantDirty := 0
	residentPages := 0
	cleanContents := make(map[string]bool)
	var wantBytes int64
	for ino := msg.ObjectID(1); ino <= 3; ino++ {
		o := c.Object(ino)
		mobj := model[ino]
		dirtyHere := 0
		for idx := uint64(0); idx < 4; idx++ {
			var p *Page
			if o != nil {
				p = o.Page(idx)
			}
			m, inModel := mobj[idx]
			if p == nil {
				if inModel && m.dirty {
					fail("dirty page (%d,%d) missing — acknowledged write dropped", ino, idx)
				}
				if inModel && !bounded {
					fail("page (%d,%d) missing from unbounded cache", ino, idx)
				}
				continue
			}
			if !inModel {
				fail("cache invented page (%d,%d)", ino, idx)
			}
			if string(p.Data) != m.content {
				fail("page (%d,%d) content diverged from model", ino, idx)
			}
			if p.Dirty != m.dirty {
				fail("page (%d,%d) dirty flag = %v, model %v", ino, idx, p.Dirty, m.dirty)
			}
			residentPages++
			if p.Dirty {
				dirtyHere++
				wantDirty++
				wantBytes += int64(len(p.Data))
				if p.blk != nil {
					fail("dirty page (%d,%d) references a shared block", ino, idx)
				}
			} else {
				if p.blk == nil {
					fail("clean page (%d,%d) has no content block", ino, idx)
				}
				cleanContents[m.content] = true
			}
		}
		if o != nil && o.DirtyCount() != dirtyHere {
			fail("object %d dirtyKeys = %d, pages say %d", ino, o.DirtyCount(), dirtyHere)
		}
	}
	for content := range cleanContents {
		wantBytes += int64(len(content))
	}
	if c.TotalDirty() != wantDirty {
		fail("TotalDirty = %d, want %d", c.TotalDirty(), wantDirty)
	}
	if g := reg.Gauge("mp.cache.dirty_pages").Value(); g != int64(wantDirty) {
		fail("dirty_pages gauge = %d, want %d", g, wantDirty)
	}
	if c.ResidentPages() != residentPages {
		fail("ResidentPages = %d, counted %d", c.ResidentPages(), residentPages)
	}
	if c.ResidentBytes() != wantBytes {
		fail("ResidentBytes = %d, recomputed %d", c.ResidentBytes(), wantBytes)
	}
	if g := reg.Gauge("mp.cache.resident_bytes").Value(); g != wantBytes {
		fail("resident_bytes gauge = %d, want %d", g, wantBytes)
	}
	if c.SharedBlocks() != len(cleanContents) {
		fail("SharedBlocks = %d, unique clean contents %d", c.SharedBlocks(), len(cleanContents))
	}
	if bounded && c.overBudget() && c.lru.Len() > 0 {
		fail("over budget with evictable clean pages on the LRU")
	}
}
