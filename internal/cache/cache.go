// Package cache is the client's write-back cache: data pages, cached
// block maps, and cached attributes, all protected jointly by data locks
// and the client's lease. The cache itself is mechanism; the policy —
// when entries may be served, when they must be flushed or invalidated —
// is driven by the owning client according to the lease phase and lock
// mode.
package cache

import (
	"container/list"
	"sort"

	"repro/internal/bufpool"
	"repro/internal/msg"
	"repro/internal/stats"
)

// Page is one cached block of file data.
//
// Data is a pooled buffer (internal/bufpool) owned by the cache: it is
// recycled when the page is evicted, dropped, or invalidated, so
// anything that keeps page content past the current executor turn must
// copy it (the read paths in internal/client do).
type Page struct {
	Data  []byte
	Dirty bool
	// Ver is the oracle's version stamp for this content (consistency
	// checking only).
	Ver uint64
}

// Object is the cached state for one file.
type Object struct {
	Attr msg.Attr
	// Mode is the data lock under which this object is cached.
	Mode msg.LockMode
	// Blocks is the cached block map (valid while a data lock is held —
	// the map can only change through this client's own AllocBlocks).
	Blocks    []msg.BlockRef
	HaveAttr  bool
	HaveMap   bool
	pages     map[uint64]*Page // index in file → page
	dirtyKeys map[uint64]bool
}

func newObject() *Object {
	return &Object{pages: make(map[uint64]*Page), dirtyKeys: make(map[uint64]bool)}
}

// Page returns the cached page at file-block index idx, or nil.
func (o *Object) Page(idx uint64) *Page { return o.pages[idx] }

// DirtyCount returns the number of dirty pages.
func (o *Object) DirtyCount() int { return len(o.dirtyKeys) }

type pageKey struct {
	ino msg.ObjectID
	idx uint64
}

// Cache is one client's cache across all objects. When a capacity is
// set, clean pages are evicted least-recently-used; dirty pages are
// pinned until flushed (losing them would lose acknowledged writes).
type Cache struct {
	objects map[msg.ObjectID]*Object
	// maxPages bounds resident pages (0 = unbounded).
	maxPages int
	lru      *list.List // front = most recent; values are pageKey
	elems    map[pageKey]*list.Element

	hits, misses *stats.Counter
	dirtyPages   *stats.Gauge
	invals       *stats.Counter
	evictions    *stats.Counter
}

// New creates an empty, unbounded cache.
func New(reg *stats.Registry, prefix string) *Cache {
	return NewWithCapacity(reg, prefix, 0)
}

// NewWithCapacity creates a cache evicting clean pages LRU beyond
// maxPages (0 = unbounded).
func NewWithCapacity(reg *stats.Registry, prefix string, maxPages int) *Cache {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	return &Cache{
		objects:    make(map[msg.ObjectID]*Object),
		maxPages:   maxPages,
		lru:        list.New(),
		elems:      make(map[pageKey]*list.Element),
		hits:       reg.Counter(prefix + "cache.hits"),
		misses:     reg.Counter(prefix + "cache.misses"),
		dirtyPages: reg.Gauge(prefix + "cache.dirty_pages"),
		invals:     reg.Counter(prefix + "cache.invalidations"),
		evictions:  reg.Counter(prefix + "cache.evictions"),
	}
}

// touch marks a page most-recently-used.
func (c *Cache) touch(k pageKey) {
	if e, ok := c.elems[k]; ok {
		c.lru.MoveToFront(e)
		return
	}
	c.elems[k] = c.lru.PushFront(k)
}

// forget removes a page from the LRU bookkeeping.
func (c *Cache) forget(k pageKey) {
	if e, ok := c.elems[k]; ok {
		c.lru.Remove(e)
		delete(c.elems, k)
	}
}

// evictIfNeeded drops least-recently-used CLEAN pages down to capacity.
func (c *Cache) evictIfNeeded() {
	if c.maxPages <= 0 {
		return
	}
	for c.lru.Len() > c.maxPages {
		evicted := false
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			k := e.Value.(pageKey)
			o := c.objects[k.ino]
			if o == nil {
				c.lru.Remove(e)
				delete(c.elems, k)
				evicted = true
				break
			}
			p := o.pages[k.idx]
			if p == nil {
				c.lru.Remove(e)
				delete(c.elems, k)
				evicted = true
				break
			}
			if p.Dirty {
				continue // pinned until flushed
			}
			bufpool.Put(p.Data)
			delete(o.pages, k.idx)
			c.lru.Remove(e)
			delete(c.elems, k)
			c.evictions.Inc()
			evicted = true
			break
		}
		if !evicted {
			return // everything resident is dirty: over budget, but safe
		}
	}
}

// Object returns the cached object, or nil.
func (c *Cache) Object(ino msg.ObjectID) *Object { return c.objects[ino] }

// Ensure returns the object's cache entry, creating it if absent.
func (c *Cache) Ensure(ino msg.ObjectID) *Object {
	o := c.objects[ino]
	if o == nil {
		o = newObject()
		c.objects[ino] = o
	}
	return o
}

// Lookup serves a cached page, counting hit/miss.
func (c *Cache) Lookup(ino msg.ObjectID, idx uint64) *Page {
	if o := c.objects[ino]; o != nil {
		if p := o.pages[idx]; p != nil {
			c.hits.Inc()
			c.touch(pageKey{ino, idx})
			return p
		}
	}
	c.misses.Inc()
	return nil
}

// Fill installs a clean page read from the SAN. data is copied into a
// pooled buffer — it may alias a receive buffer the transport recycles.
func (c *Cache) Fill(ino msg.ObjectID, idx uint64, data []byte, ver uint64) *Page {
	o := c.Ensure(ino)
	buf := bufpool.Get(len(data))
	copy(buf, data)
	p := &Page{Data: buf, Ver: ver}
	if old := o.pages[idx]; old != nil {
		bufpool.Put(old.Data)
	}
	o.pages[idx] = p
	c.touch(pageKey{ino, idx})
	c.evictIfNeeded()
	return p
}

// Write applies a write-back store to a page, marking it dirty with the
// new version stamp. Missing pages are created (whole-block write).
func (c *Cache) Write(ino msg.ObjectID, idx uint64, data []byte, ver uint64) *Page {
	o := c.Ensure(ino)
	p := o.pages[idx]
	if p == nil {
		p = &Page{}
		o.pages[idx] = p
	}
	if cap(p.Data) >= len(data) {
		p.Data = p.Data[:len(data)]
	} else {
		bufpool.Put(p.Data)
		p.Data = bufpool.Get(len(data))
	}
	copy(p.Data, data)
	p.Ver = ver
	if !p.Dirty {
		p.Dirty = true
		o.dirtyKeys[idx] = true
		c.dirtyPages.Add(1)
	}
	c.touch(pageKey{ino, idx})
	c.evictIfNeeded()
	return p
}

// MarkClean records that a page's current content reached the SAN.
func (c *Cache) MarkClean(ino msg.ObjectID, idx uint64) {
	o := c.objects[ino]
	if o == nil {
		return
	}
	if p := o.pages[idx]; p != nil && p.Dirty {
		p.Dirty = false
		delete(o.dirtyKeys, idx)
		c.dirtyPages.Add(-1)
		// Newly clean pages become evictable; trim if over budget.
		c.evictIfNeeded()
	}
}

// DirtyPages lists the dirty page indexes of an object.
func (c *Cache) DirtyPages(ino msg.ObjectID) []uint64 {
	o := c.objects[ino]
	if o == nil {
		return nil
	}
	out := make([]uint64, 0, len(o.dirtyKeys))
	for idx := range o.dirtyKeys {
		out = append(out, idx)
	}
	// Deterministic order: flush I/O issue order is behaviour (the disks
	// queue), and simulations must replay identically from a seed.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyObjects lists objects that have at least one dirty page, in
// deterministic (ascending) order.
func (c *Cache) DirtyObjects() []msg.ObjectID {
	var out []msg.ObjectID
	for ino, o := range c.objects {
		if len(o.dirtyKeys) > 0 {
			out = append(out, ino)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalDirty returns the number of dirty pages across all objects.
func (c *Cache) TotalDirty() int {
	n := 0
	for _, o := range c.objects {
		n += len(o.dirtyKeys)
	}
	return n
}

// DropPagesFrom removes all cached pages with index ≥ from (truncation):
// the underlying blocks are being freed, so neither dirty nor clean
// content may be served again.
func (c *Cache) DropPagesFrom(ino msg.ObjectID, from uint64) {
	o := c.objects[ino]
	if o == nil {
		return
	}
	for idx, p := range o.pages {
		if idx < from {
			continue
		}
		if p.Dirty {
			delete(o.dirtyKeys, idx)
			c.dirtyPages.Add(-1)
		}
		bufpool.Put(p.Data)
		delete(o.pages, idx)
		c.forget(pageKey{ino, idx})
	}
}

// Drop removes an object entirely (lock fully released or invalidated).
// Dirty pages are discarded — the caller is responsible for flushing
// first when the protocol requires it.
func (c *Cache) Drop(ino msg.ObjectID) {
	if o := c.objects[ino]; o != nil {
		c.dirtyPages.Add(-int64(len(o.dirtyKeys)))
		for idx, p := range o.pages {
			bufpool.Put(p.Data)
			c.forget(pageKey{ino, idx})
		}
		delete(c.objects, ino)
		c.invals.Inc()
	}
}

// InvalidateAll empties the cache (lease expiry). Returns the number of
// dirty pages discarded — nonzero means lost updates, which the paper's
// protocol avoids by flushing in phase 4 before this is called.
func (c *Cache) InvalidateAll() (discardedDirty int) {
	for _, o := range c.objects {
		discardedDirty += len(o.dirtyKeys)
		for _, p := range o.pages {
			bufpool.Put(p.Data)
		}
	}
	c.dirtyPages.Add(-int64(discardedDirty))
	c.invals.Add(uint64(len(c.objects)))
	c.objects = make(map[msg.ObjectID]*Object)
	c.lru.Init()
	c.elems = make(map[pageKey]*list.Element)
	return discardedDirty
}

// Len returns the number of cached objects.
func (c *Cache) Len() int { return len(c.objects) }

// ResidentPages returns the number of pages currently cached.
func (c *Cache) ResidentPages() int { return c.lru.Len() }
