// Package cache is the client's write-back cache: data pages, cached
// block maps, and cached attributes, all protected jointly by data locks
// and the client's lease. The cache itself is mechanism; the policy —
// when entries may be served, when they must be flushed or invalidated —
// is driven by the owning client according to the lease phase and lock
// mode.
//
// Clean page content is content-addressed (see blockstore.go): pages
// with identical bytes share one pooled buffer across files and block
// indexes, refcounted per page, so the resident footprint of N readers
// of the same hot data is one copy, not N. Dirty content is always
// private to its object — a write copy-on-writes away from any shared
// block — so dedup never leaks un-flushed bytes between objects, and
// dropping one object (demand compliance, lease expiry) releases only
// its own references.
package cache

import (
	"container/list"
	"sort"

	"repro/internal/bufpool"
	"repro/internal/msg"
	"repro/internal/stats"
)

// Page is one cached block of file data.
//
// Data is owned by the cache and recycled when the page is evicted,
// dropped, or invalidated, so anything that keeps page content past the
// current executor turn must copy it (the read paths in internal/client
// do). A clean page's Data aliases a refcounted content block that other
// pages may share — it must never be written through; all mutation goes
// through Cache.Write, which detaches the page onto a private buffer
// first.
type Page struct {
	Data  []byte
	Dirty bool
	// Ver is the oracle's version stamp for this content (consistency
	// checking only).
	Ver uint64
	// blk is the shared content block a clean page references (nil for
	// dirty pages, whose Data is a private pooled buffer).
	blk *block
	// prefetched marks a page installed by read-ahead and not yet
	// served; the first Lookup hit counts it and clears the flag, and
	// removal with the flag still set counts as wasted read-ahead.
	prefetched bool
}

// Object is the cached state for one file.
type Object struct {
	Attr msg.Attr
	// Mode is the data lock under which this object is cached.
	Mode msg.LockMode
	// Blocks is the cached block map (valid while a data lock is held —
	// the map can only change through this client's own AllocBlocks).
	Blocks    []msg.BlockRef
	HaveAttr  bool
	HaveMap   bool
	pages     map[uint64]*Page // index in file → page
	dirtyKeys map[uint64]bool
}

func newObject() *Object {
	return &Object{pages: make(map[uint64]*Page), dirtyKeys: make(map[uint64]bool)}
}

// Page returns the cached page at file-block index idx, or nil.
func (o *Object) Page(idx uint64) *Page { return o.pages[idx] }

// DirtyCount returns the number of dirty pages.
func (o *Object) DirtyCount() int { return len(o.dirtyKeys) }

type pageKey struct {
	ino msg.ObjectID
	idx uint64
}

// Cache is one client's cache across all objects. When a page or byte
// budget is set, clean pages are evicted least-recently-used; dirty
// pages are pinned until flushed (losing them would lose acknowledged
// writes) and live off the LRU list entirely, so eviction never scans
// past them.
type Cache struct {
	objects map[msg.ObjectID]*Object
	// maxPages bounds resident pages; maxBytes bounds resident content
	// bytes (each 0 = unbounded; both may be set).
	maxPages int
	maxBytes int64
	lru      *list.List // clean pages only; front = most recent; values are pageKey
	elems    map[pageKey]*list.Element
	// blocks is the content store: hash → blocks with that hash (a
	// chain longer than one means an FNV collision, disambiguated by
	// byte compare).
	blocks map[uint64][]*block
	// resident counts pages (clean + dirty); residentBytes counts
	// content bytes, each shared block once plus each private dirty
	// buffer.
	resident      int
	residentBytes int64

	hits, misses   *stats.Counter
	dirtyPages     *stats.Gauge
	invals         *stats.Counter
	evictions      *stats.Counter
	dedupHits      *stats.Counter
	bytesGauge     *stats.Gauge
	prefetchHits   *stats.Counter
	prefetchWasted *stats.Counter
}

// New creates an empty, unbounded cache.
func New(reg *stats.Registry, prefix string) *Cache {
	return NewWithLimits(reg, prefix, 0, 0)
}

// NewWithCapacity creates a cache evicting clean pages LRU beyond
// maxPages (0 = unbounded).
func NewWithCapacity(reg *stats.Registry, prefix string, maxPages int) *Cache {
	return NewWithLimits(reg, prefix, maxPages, 0)
}

// NewWithLimits creates a cache bounded by maxPages resident pages and
// maxBytes resident content bytes (each 0 = unbounded). Bytes are
// counted after dedup — N pages sharing one block cost its size once —
// so the byte quota bounds actual memory, not logical cache size.
func NewWithLimits(reg *stats.Registry, prefix string, maxPages int, maxBytes int64) *Cache {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	return &Cache{
		objects:        make(map[msg.ObjectID]*Object),
		maxPages:       maxPages,
		maxBytes:       maxBytes,
		lru:            list.New(),
		elems:          make(map[pageKey]*list.Element),
		blocks:         make(map[uint64][]*block),
		hits:           reg.Counter(prefix + "cache.hits"),
		misses:         reg.Counter(prefix + "cache.misses"),
		dirtyPages:     reg.Gauge(prefix + "cache.dirty_pages"),
		invals:         reg.Counter(prefix + "cache.invalidations"),
		evictions:      reg.Counter(prefix + "cache.evictions"),
		dedupHits:      reg.Counter(prefix + "cache.dedup_hits"),
		bytesGauge:     reg.Gauge(prefix + "cache.resident_bytes"),
		prefetchHits:   reg.Counter(prefix + "cache.prefetch_hits"),
		prefetchWasted: reg.Counter(prefix + "cache.prefetch_wasted"),
	}
}

// addBytes moves the resident-byte account (and its gauge) by d.
func (c *Cache) addBytes(d int64) {
	c.residentBytes += d
	c.bytesGauge.Add(d)
}

// touch marks a clean page most-recently-used.
func (c *Cache) touch(k pageKey) {
	if e, ok := c.elems[k]; ok {
		c.lru.MoveToFront(e)
		return
	}
	c.elems[k] = c.lru.PushFront(k)
}

// forget removes a page from the LRU bookkeeping.
func (c *Cache) forget(k pageKey) {
	if e, ok := c.elems[k]; ok {
		c.lru.Remove(e)
		delete(c.elems, k)
	}
}

// release frees a page's content and its cache-wide bookkeeping. The
// caller removes the page from its object's map and settles dirty
// accounting; release handles buffer ownership (deref a shared block,
// recycle a private buffer), the LRU entry, the resident count, and
// wasted-read-ahead attribution.
func (c *Cache) release(k pageKey, p *Page) {
	if p.blk != nil {
		c.deref(p.blk)
	} else {
		c.addBytes(-int64(len(p.Data)))
		bufpool.Put(p.Data)
	}
	c.forget(k)
	c.resident--
	if p.prefetched {
		c.prefetchWasted.Inc()
	}
}

func (c *Cache) overBudget() bool {
	return (c.maxPages > 0 && c.resident > c.maxPages) ||
		(c.maxBytes > 0 && c.residentBytes > c.maxBytes)
}

// evictIfNeeded drops least-recently-used clean pages down to budget.
// Dirty pages are not on the LRU list, so each eviction is O(1): the
// back of the list is always evictable, and a cache whose budget is
// consumed entirely by pinned dirty pages simply has an empty list.
func (c *Cache) evictIfNeeded() {
	for c.overBudget() {
		e := c.lru.Back()
		if e == nil {
			return // everything resident is dirty: over budget, but safe
		}
		k := e.Value.(pageKey)
		o := c.objects[k.ino]
		if o == nil {
			c.lru.Remove(e)
			delete(c.elems, k)
			continue
		}
		p := o.pages[k.idx]
		if p == nil {
			c.lru.Remove(e)
			delete(c.elems, k)
			continue
		}
		delete(o.pages, k.idx)
		c.release(k, p)
		c.evictions.Inc()
	}
}

// Object returns the cached object, or nil.
func (c *Cache) Object(ino msg.ObjectID) *Object { return c.objects[ino] }

// Ensure returns the object's cache entry, creating it if absent.
func (c *Cache) Ensure(ino msg.ObjectID) *Object {
	o := c.objects[ino]
	if o == nil {
		o = newObject()
		c.objects[ino] = o
	}
	return o
}

// Lookup serves a cached page, counting hit/miss.
func (c *Cache) Lookup(ino msg.ObjectID, idx uint64) *Page {
	if o := c.objects[ino]; o != nil {
		if p := o.pages[idx]; p != nil {
			c.hits.Inc()
			if p.prefetched {
				p.prefetched = false
				c.prefetchHits.Inc()
			}
			if !p.Dirty {
				c.touch(pageKey{ino, idx})
			}
			return p
		}
	}
	c.misses.Inc()
	return nil
}

// Fill installs a clean page read from the SAN. data is copied (or
// deduplicated against resident content) — it may alias a receive
// buffer the transport recycles.
//
// Fill over a DIRTY page refuses and returns the dirty page unchanged:
// the cached dirty bytes are strictly newer than anything the SAN can
// return (the write was acknowledged into the cache under an exclusive
// lock), so overwriting would lose the update — and the historical
// variant of this path that did overwrite also left dirtyKeys and the
// dirty_pages gauge claiming a dirty page that no longer existed,
// wedging phase-4 quiesce on a TotalDirty that never drained.
func (c *Cache) Fill(ino msg.ObjectID, idx uint64, data []byte, ver uint64) *Page {
	return c.fill(ino, idx, data, ver, false)
}

// FillPrefetched is Fill for read-ahead completions: the page is
// flagged so its first hit (or its eviction without one) attributes the
// prefetch. A page already resident — a demand read won the race — is
// left untouched.
func (c *Cache) FillPrefetched(ino msg.ObjectID, idx uint64, data []byte, ver uint64) *Page {
	if o := c.objects[ino]; o != nil {
		if p := o.pages[idx]; p != nil {
			return p
		}
	}
	return c.fill(ino, idx, data, ver, true)
}

func (c *Cache) fill(ino msg.ObjectID, idx uint64, data []byte, ver uint64, prefetched bool) *Page {
	o := c.Ensure(ino)
	if old := o.pages[idx]; old != nil {
		if old.Dirty {
			return old
		}
		// Replacing clean content: drop the old reference; the LRU entry
		// is reused under the same key.
		c.deref(old.blk)
		c.resident--
	}
	b := c.intern(data)
	p := &Page{Data: b.data, Ver: ver, blk: b, prefetched: prefetched}
	o.pages[idx] = p
	c.resident++
	c.touch(pageKey{ino, idx})
	c.evictIfNeeded()
	return p
}

// Write applies a write-back store to a page, marking it dirty with the
// new version stamp. Missing pages are created (whole-block write). A
// page referencing a shared content block is detached onto a private
// buffer first (copy-on-write): other pages sharing the block keep
// their bytes.
func (c *Cache) Write(ino msg.ObjectID, idx uint64, data []byte, ver uint64) *Page {
	o := c.Ensure(ino)
	k := pageKey{ino, idx}
	p := o.pages[idx]
	if p == nil {
		p = &Page{}
		o.pages[idx] = p
		c.resident++
	} else if p.blk != nil {
		c.deref(p.blk)
		p.blk = nil
		p.Data = nil
	}
	if p.prefetched {
		// Overwritten before ever being served: that read-ahead was wasted.
		p.prefetched = false
		c.prefetchWasted.Inc()
	}
	c.addBytes(int64(len(data) - len(p.Data)))
	if cap(p.Data) >= len(data) {
		p.Data = p.Data[:len(data)]
	} else {
		bufpool.Put(p.Data)
		p.Data = bufpool.Get(len(data)) //tank:adopt(page owns Data; released on invalidate or intern)
	}
	copy(p.Data, data)
	p.Ver = ver
	if !p.Dirty {
		p.Dirty = true
		o.dirtyKeys[idx] = true
		c.dirtyPages.Add(1)
		// Dirty pages are pinned: off the LRU list until flushed.
		c.forget(k)
	}
	c.evictIfNeeded()
	return p
}

// MarkClean records that a page's current content reached the SAN. The
// private buffer is promoted into the content store — future fills or
// flushes of identical bytes dedup against it — and the page rejoins
// the clean LRU as most-recently-used.
func (c *Cache) MarkClean(ino msg.ObjectID, idx uint64) {
	o := c.objects[ino]
	if o == nil {
		return
	}
	p := o.pages[idx]
	if p == nil || !p.Dirty {
		return
	}
	p.Dirty = false
	delete(o.dirtyKeys, idx)
	c.dirtyPages.Add(-1)
	c.addBytes(-int64(len(p.Data)))
	b := c.internOwned(p.Data)
	p.blk = b
	p.Data = b.data
	// Newly clean pages become evictable; trim if over budget.
	c.touch(pageKey{ino, idx})
	c.evictIfNeeded()
}

// DirtyPages lists the dirty page indexes of an object.
func (c *Cache) DirtyPages(ino msg.ObjectID) []uint64 {
	o := c.objects[ino]
	if o == nil {
		return nil
	}
	out := make([]uint64, 0, len(o.dirtyKeys))
	for idx := range o.dirtyKeys {
		out = append(out, idx)
	}
	// Deterministic order: flush I/O issue order is behaviour (the disks
	// queue), and simulations must replay identically from a seed.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirtyObjects lists objects that have at least one dirty page, in
// deterministic (ascending) order.
func (c *Cache) DirtyObjects() []msg.ObjectID {
	var out []msg.ObjectID
	for ino, o := range c.objects {
		if len(o.dirtyKeys) > 0 {
			out = append(out, ino)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalDirty returns the number of dirty pages across all objects.
func (c *Cache) TotalDirty() int {
	n := 0
	for _, o := range c.objects {
		n += len(o.dirtyKeys)
	}
	return n
}

// DropPagesFrom removes all cached pages with index ≥ from (truncation):
// the underlying blocks are being freed, so neither dirty nor clean
// content may be served again.
func (c *Cache) DropPagesFrom(ino msg.ObjectID, from uint64) {
	o := c.objects[ino]
	if o == nil {
		return
	}
	for idx, p := range o.pages {
		if idx < from {
			continue
		}
		if p.Dirty {
			delete(o.dirtyKeys, idx)
			c.dirtyPages.Add(-1)
		}
		delete(o.pages, idx)
		c.release(pageKey{ino, idx}, p)
	}
}

// Drop removes an object entirely (lock fully released or invalidated).
// Dirty pages are discarded — the caller is responsible for flushing
// first when the protocol requires it. Shared content blocks lose only
// this object's references: other objects caching the same bytes keep
// serving them, which is what makes dedup safe under per-object
// revocation.
func (c *Cache) Drop(ino msg.ObjectID) {
	o := c.objects[ino]
	if o == nil {
		return
	}
	c.dirtyPages.Add(-int64(len(o.dirtyKeys)))
	for idx, p := range o.pages {
		c.release(pageKey{ino, idx}, p)
	}
	delete(c.objects, ino)
	c.invals.Inc()
}

// InvalidateAll empties the cache (lease expiry). Returns the number of
// dirty pages discarded — nonzero means lost updates, which the paper's
// protocol avoids by flushing in phase 4 before this is called.
func (c *Cache) InvalidateAll() (discardedDirty int) {
	for _, o := range c.objects {
		discardedDirty += len(o.dirtyKeys)
		for _, p := range o.pages {
			if p.blk == nil {
				// Private dirty buffer; shared blocks are recycled once
				// each from the store below.
				bufpool.Put(p.Data)
			}
			if p.prefetched {
				c.prefetchWasted.Inc()
			}
		}
	}
	for _, chain := range c.blocks {
		for _, b := range chain {
			bufpool.Put(b.data)
		}
	}
	c.dirtyPages.Add(-int64(discardedDirty))
	c.invals.Add(uint64(len(c.objects)))
	c.objects = make(map[msg.ObjectID]*Object)
	c.blocks = make(map[uint64][]*block)
	c.lru.Init()
	c.elems = make(map[pageKey]*list.Element)
	c.resident = 0
	c.addBytes(-c.residentBytes)
	return discardedDirty
}

// Len returns the number of cached objects.
func (c *Cache) Len() int { return len(c.objects) }

// ResidentPages returns the number of pages currently cached (clean and
// dirty).
func (c *Cache) ResidentPages() int { return c.resident }

// ResidentBytes returns the resident content footprint: each shared
// block counted once plus each private dirty buffer. This is the
// quantity the byte quota bounds.
func (c *Cache) ResidentBytes() int64 { return c.residentBytes }
