package cache

import (
	"encoding/binary"
	"testing"

	"repro/internal/msg"
	"repro/internal/stats"
)

// benchmarkEvictChurn fills an endless stream of distinct clean pages
// through a cache whose budget is already consumed by dirtyTail pinned
// dirty pages, so every fill evicts exactly one clean page at steady
// state. The historical evictIfNeeded restarted a back-to-front LRU
// scan per eviction and the dirty run sat at the tail, making each
// eviction O(dirtyTail); keeping dirty pages off the clean-LRU list
// makes it O(1), so ns/op should be flat across these sizes.
func benchmarkEvictChurn(b *testing.B, dirtyTail int) {
	reg := stats.NewRegistry()
	c := NewWithCapacity(reg, "b.", dirtyTail+8)
	data := make([]byte, 512)
	for i := 0; i < dirtyTail; i++ {
		binary.BigEndian.PutUint64(data, uint64(i))
		c.Write(1, uint64(i), data, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct content per fill (no dedup): the steady-state cost is
		// intern + install + one eviction.
		binary.BigEndian.PutUint64(data, uint64(i))
		data[8] = 0xff // never collides with the dirty-tail contents
		c.Fill(2, uint64(i), data, uint64(i))
	}
}

func BenchmarkEvictDirtyTail0(b *testing.B)    { benchmarkEvictChurn(b, 0) }
func BenchmarkEvictDirtyTail1024(b *testing.B) { benchmarkEvictChurn(b, 1024) }
func BenchmarkEvictDirtyTail8192(b *testing.B) { benchmarkEvictChurn(b, 8192) }

// BenchmarkFillDedup measures the dedup'd fill path: every object
// caches the same 16 hot contents, so after the first round each fill
// is a hash + byte-compare + refcount bump sharing a resident block.
// dedup_hit_ratio and bytes_per_page quantify the sharing.
func BenchmarkFillDedup(b *testing.B) {
	reg := stats.NewRegistry()
	c := New(reg, "b.")
	contents := make([][]byte, 16)
	for i := range contents {
		contents[i] = make([]byte, 4096)
		binary.BigEndian.PutUint64(contents[i], uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(msg.ObjectID(i%64+1), uint64(i%16), contents[i%16], uint64(i))
	}
	b.StopTimer()
	fills := uint64(b.N)
	if fills > 0 {
		b.ReportMetric(float64(reg.CounterValue("b.cache.dedup_hits"))/float64(fills), "dedup_hit_ratio")
	}
	if c.ResidentPages() > 0 {
		b.ReportMetric(float64(c.ResidentBytes())/float64(c.ResidentPages()), "bytes_per_page")
	}
}

// BenchmarkLookupHit is the in-cache read fast path: the cost a cached
// read pays before the client copies the block out.
func BenchmarkLookupHit(b *testing.B) {
	c := New(nil, "")
	data := make([]byte, 4096)
	c.Fill(1, 0, data, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(1, 0) == nil {
			b.Fatal("miss")
		}
	}
}
