package cache

import (
	"bytes"

	"repro/internal/bufpool"
)

// The content store deduplicates CLEAN page content: pages whose bytes
// are identical — across files, across block indexes, across fills —
// share one pooled buffer. Dirty content never enters the store: a
// dirty page's bytes are private to its object until they reach the SAN
// (MarkClean), because dedup must never let one object's un-flushed
// write become visible through another object's page.
//
// Ownership rules versus the bufpool borrow contract:
//
//   - A block owns its buffer. The buffer came from bufpool.Get and is
//     returned by bufpool.Put exactly once, when the block's reference
//     count drops to zero. Pages holding the block alias block.data and
//     must never Put it themselves.
//   - A dirty page owns a private pooled buffer (Page.blk == nil); the
//     cache Puts it when the page is dropped, or hands it to the store
//     when MarkClean promotes the content (internOwned — the store
//     either adopts the buffer or Puts it on a dedup hit).
//   - Readers in internal/client copy page content out before the end
//     of the executor turn, exactly as before: sharing changes who may
//     recycle a buffer, not when its content is stable.
type block struct {
	hash uint64
	// data is a pooled buffer sized (by class) for its content; len is
	// the exact content length.
	data []byte
	refs int
}

// fnv64a is FNV-1a, inlined so hashing a page allocates nothing.
// Content addresses never leave the process and need no collision
// resistance against adversaries: equal hashes are confirmed by a byte
// compare before any sharing happens, so a collision costs a missed
// dedup never a wrong read.
func fnv64a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// intern returns a block holding a copy of data, sharing an existing
// block when one with identical content is resident. The caller's data
// may alias a transport receive buffer; it is copied before the turn
// ends.
func (c *Cache) intern(data []byte) *block {
	h := fnv64a(data)
	for _, b := range c.blocks[h] {
		if len(b.data) == len(data) && bytes.Equal(b.data, data) {
			b.refs++
			c.dedupHits.Inc()
			return b
		}
	}
	buf := bufpool.Get(len(data))
	copy(buf, data)
	b := &block{hash: h, data: buf, refs: 1} //tank:adopt(block owns data; released by deref)
	c.blocks[h] = append(c.blocks[h], b)
	c.addBytes(int64(len(buf)))
	return b
}

// internOwned is intern for a buffer the caller already owns (a dirty
// page being promoted by MarkClean): on a dedup hit the buffer is
// recycled, otherwise the store adopts it without copying.
//
//tank:owns buf
func (c *Cache) internOwned(buf []byte) *block {
	h := fnv64a(buf)
	for _, b := range c.blocks[h] {
		if len(b.data) == len(buf) && bytes.Equal(b.data, buf) {
			b.refs++
			c.dedupHits.Inc()
			bufpool.Put(buf)
			return b
		}
	}
	b := &block{hash: h, data: buf, refs: 1} //tank:adopt(block owns data; released by deref)
	c.blocks[h] = append(c.blocks[h], b)
	c.addBytes(int64(len(buf)))
	return b
}

// deref releases one page's reference; the last reference removes the
// block from the store and recycles its buffer.
func (c *Cache) deref(b *block) {
	b.refs--
	if b.refs > 0 {
		return
	}
	chain := c.blocks[b.hash]
	for i, cand := range chain {
		if cand == b {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(c.blocks, b.hash)
	} else {
		c.blocks[b.hash] = chain
	}
	c.addBytes(-int64(len(b.data)))
	bufpool.Put(b.data)
}

// SharedBlocks returns the number of distinct content blocks resident
// (tests and experiments: ResidentPages − SharedBlocks pages are served
// without their own buffer).
func (c *Cache) SharedBlocks() int {
	n := 0
	for _, chain := range c.blocks {
		n += len(chain)
	}
	return n
}
