package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/msg"
	"repro/internal/stats"
)

func TestLookupHitMiss(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "c.")
	if c.Lookup(1, 0) != nil {
		t.Fatal("hit on empty cache")
	}
	c.Fill(1, 0, []byte("data"), 7)
	p := c.Lookup(1, 0)
	if p == nil || !bytes.Equal(p.Data, []byte("data")) || p.Ver != 7 || p.Dirty {
		t.Fatalf("page = %+v", p)
	}
	if reg.CounterValue("c.cache.hits") != 1 || reg.CounterValue("c.cache.misses") != 1 {
		t.Fatal("hit/miss counters wrong")
	}
}

func TestWriteMarksDirty(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "c.")
	c.Write(1, 0, []byte("v1"), 1)
	c.Write(1, 0, []byte("v2"), 2) // second write: still one dirty page
	c.Write(1, 1, []byte("w"), 3)
	if c.TotalDirty() != 2 {
		t.Fatalf("dirty = %d, want 2", c.TotalDirty())
	}
	o := c.Object(1)
	if o.DirtyCount() != 2 {
		t.Fatalf("object dirty = %d", o.DirtyCount())
	}
	p := o.Page(0)
	if !bytes.Equal(p.Data, []byte("v2")) || p.Ver != 2 {
		t.Fatalf("page = %+v", p)
	}
	dirty := c.DirtyPages(1)
	if len(dirty) != 2 {
		t.Fatalf("DirtyPages = %v", dirty)
	}
	if objs := c.DirtyObjects(); len(objs) != 1 || objs[0] != 1 {
		t.Fatalf("DirtyObjects = %v", objs)
	}
}

func TestMarkClean(t *testing.T) {
	c := New(nil, "")
	c.Write(1, 0, []byte("v"), 1)
	c.MarkClean(1, 0)
	if c.TotalDirty() != 0 {
		t.Fatal("page still dirty")
	}
	if p := c.Object(1).Page(0); p.Dirty {
		t.Fatal("page flag still dirty")
	}
	c.MarkClean(1, 0) // idempotent
	c.MarkClean(9, 0) // unknown object: no-op
	if c.TotalDirty() != 0 {
		t.Fatal("idempotence broken")
	}
}

func TestDropDiscardsObject(t *testing.T) {
	reg := stats.NewRegistry()
	c := New(reg, "c.")
	c.Write(1, 0, []byte("v"), 1)
	c.Fill(2, 0, []byte("w"), 2)
	c.Drop(1)
	if c.Object(1) != nil || c.Len() != 1 {
		t.Fatal("drop did not remove object")
	}
	if reg.CounterValue("c.cache.invalidations") != 1 {
		t.Fatal("invalidation not counted")
	}
	c.Drop(99) // unknown: no-op
}

func TestInvalidateAllReportsLostDirty(t *testing.T) {
	c := New(nil, "")
	c.Write(1, 0, []byte("a"), 1)
	c.Write(1, 1, []byte("b"), 2)
	c.Fill(2, 0, []byte("c"), 3)
	if lost := c.InvalidateAll(); lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}
	if c.Len() != 0 || c.TotalDirty() != 0 {
		t.Fatal("cache not empty after InvalidateAll")
	}
	// Flushed first → nothing lost.
	c.Write(3, 0, []byte("d"), 4)
	c.MarkClean(3, 0)
	if lost := c.InvalidateAll(); lost != 0 {
		t.Fatalf("lost = %d, want 0 after flush", lost)
	}
}

func TestObjectMetadataFields(t *testing.T) {
	c := New(nil, "")
	o := c.Ensure(5)
	o.Attr = msg.Attr{Ino: 5, Size: 100}
	o.HaveAttr = true
	o.Mode = msg.LockExclusive
	o.Blocks = []msg.BlockRef{{Disk: 9, Num: 3}}
	o.HaveMap = true
	got := c.Object(5)
	if !got.HaveAttr || got.Attr.Size != 100 || got.Mode != msg.LockExclusive || len(got.Blocks) != 1 {
		t.Fatalf("object = %+v", got)
	}
	// Ensure is idempotent.
	if c.Ensure(5) != got {
		t.Fatal("Ensure created a fresh object")
	}
}

func TestFillCopiesData(t *testing.T) {
	c := New(nil, "")
	buf := []byte("abc")
	c.Fill(1, 0, buf, 1)
	buf[0] = 'Z'
	if c.Object(1).Page(0).Data[0] != 'a' {
		t.Fatal("Fill aliased caller's buffer")
	}
}

// Property: dirty gauge equals the sum of per-object dirty counts under
// any interleaving of writes, cleans, and drops.
func TestDirtyAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		reg := stats.NewRegistry()
		c := New(reg, "p.")
		for _, op := range ops {
			ino := msg.ObjectID(op % 5)
			idx := uint64((op >> 3) % 4)
			switch op % 3 {
			case 0:
				c.Write(ino, idx, []byte{byte(op)}, uint64(op))
			case 1:
				c.MarkClean(ino, idx)
			case 2:
				c.Drop(ino)
			}
		}
		want := 0
		for ino := msg.ObjectID(0); ino < 5; ino++ {
			if o := c.Object(ino); o != nil {
				want += o.DirtyCount()
			}
		}
		return c.TotalDirty() == want &&
			reg.Gauge("p.cache.dirty_pages").Value() == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDropPagesFrom(t *testing.T) {
	c := New(nil, "")
	c.Fill(1, 0, []byte("a"), 1)
	c.Write(1, 1, []byte("b"), 2)
	c.Write(1, 2, []byte("c"), 3)
	c.DropPagesFrom(1, 1)
	o := c.Object(1)
	if o.Page(0) == nil {
		t.Fatal("page below the cut removed")
	}
	if o.Page(1) != nil || o.Page(2) != nil {
		t.Fatal("truncated pages survived")
	}
	if c.TotalDirty() != 0 {
		t.Fatalf("dirty accounting = %d after truncation", c.TotalDirty())
	}
	c.DropPagesFrom(99, 0) // unknown object: no-op
}

func TestLRUEvictionCleanOnly(t *testing.T) {
	reg := stats.NewRegistry()
	c := NewWithCapacity(reg, "e.", 3)
	c.Fill(1, 0, []byte("a"), 1)  // oldest clean
	c.Write(1, 1, []byte("b"), 2) // dirty: pinned
	c.Fill(1, 2, []byte("c"), 3)
	if c.ResidentPages() != 3 {
		t.Fatalf("resident = %d", c.ResidentPages())
	}
	// Touch page 0 so page 2 becomes the LRU clean page.
	c.Lookup(1, 0)
	c.Fill(1, 3, []byte("d"), 4) // over capacity: evict page 2
	if c.Object(1).Page(2) != nil {
		t.Fatal("LRU clean page not evicted")
	}
	if c.Object(1).Page(0) == nil || c.Object(1).Page(1) == nil || c.Object(1).Page(3) == nil {
		t.Fatal("wrong page evicted")
	}
	if reg.CounterValue("e.cache.evictions") != 1 {
		t.Fatal("eviction not counted")
	}
}

func TestLRUNeverEvictsDirty(t *testing.T) {
	c := NewWithCapacity(nil, "", 2)
	c.Write(1, 0, []byte("a"), 1)
	c.Write(1, 1, []byte("b"), 2)
	c.Write(1, 2, []byte("c"), 3) // all dirty: over budget but pinned
	if c.TotalDirty() != 3 {
		t.Fatalf("dirty = %d — an acknowledged write was dropped", c.TotalDirty())
	}
	// Flushing frees them for eviction.
	c.MarkClean(1, 0)
	c.Fill(1, 3, []byte("d"), 4)
	if c.Object(1).Page(0) != nil {
		t.Fatal("flushed page not evicted under pressure")
	}
}

func TestLRUDropMaintainsList(t *testing.T) {
	c := NewWithCapacity(nil, "", 4)
	c.Fill(1, 0, []byte("a"), 1)
	c.Fill(2, 0, []byte("b"), 2)
	c.Drop(1)
	if c.ResidentPages() != 1 {
		t.Fatalf("resident = %d after drop", c.ResidentPages())
	}
	c.InvalidateAll()
	if c.ResidentPages() != 0 {
		t.Fatalf("resident = %d after invalidate", c.ResidentPages())
	}
}
