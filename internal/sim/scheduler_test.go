package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Fatalf("now = %v, want 30ms", s.Now())
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(time.Second), func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	if !e.Stop() {
		t.Fatal("Stop on pending event returned false")
	}
	if e.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Time(time.Second), func() { count++ })
	}
	s.RunUntil(Time(5 * time.Second))
	if count != 5 {
		t.Fatalf("count = %d, want 5 (events at t<=5s)", count)
	}
	if s.Now() != Time(5*time.Second) {
		t.Fatalf("now = %v, want 5s", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d after Run, want 10", count)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, rec)
		}
	}
	s.After(0, rec)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if want := Time(99 * time.Millisecond); s.Now() != want {
		t.Fatalf("now = %v, want %v", s.Now(), want)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	for i := 0; i < 10; i++ {
		s.After(Duration(i)*time.Second, func() {
			n++
			if n == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Fatalf("n = %d, want 3 after Stop", n)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler(42)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(s.Now()))
			if len(trace) < 50 {
				s.After(Duration(s.Rand().Intn(1000))*time.Microsecond, step)
			}
		}
		s.After(0, step)
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNodeClockRates(t *testing.T) {
	s := NewScheduler(1)
	fast := s.NewClock(1.10, 0)
	slow := s.NewClock(0.90, 0)
	s.RunUntil(Time(10 * time.Second))
	if got, want := fast.Now(), Time(11*time.Second); got != want {
		t.Fatalf("fast.Now() = %v, want %v", got, want)
	}
	if got, want := slow.Now(), Time(9*time.Second); got != want {
		t.Fatalf("slow.Now() = %v, want %v", got, want)
	}
}

func TestNodeClockAfterFunc(t *testing.T) {
	s := NewScheduler(1)
	fast := s.NewClock(2.0, 0) // 2x fast: local 10s elapses in global 5s
	var firedAt Time
	fast.AfterFunc(10*time.Second, func() { firedAt = s.Now() })
	s.Run()
	if want := Time(5 * time.Second); firedAt != want {
		t.Fatalf("fired at global %v, want %v", firedAt, want)
	}
}

func TestNodeClockGlobalAtRoundTrip(t *testing.T) {
	s := NewScheduler(1)
	c := s.NewClock(1.3, 7*time.Hour)
	s.RunUntil(Time(3 * time.Second))
	local := c.Now()
	if got := c.GlobalAt(local); got != s.Now() {
		t.Fatalf("GlobalAt(Now()) = %v, want %v", got, s.Now())
	}
}

func TestNodeClockTimerStop(t *testing.T) {
	s := NewScheduler(1)
	c := s.NewClock(1, 0)
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestRateBound(t *testing.T) {
	b := RateBound{Eps: 0.05}
	if !b.Valid(1.0, 1.0) {
		t.Fatal("equal rates must be valid")
	}
	if !b.Valid(1.0, 1.05) || !b.Valid(1.05, 1.0) {
		t.Fatal("rates at the bound must be valid")
	}
	if b.Valid(1.0, 1.06) {
		t.Fatal("rates beyond the bound must be invalid")
	}
	if b.Valid(0, 1) || b.Valid(1, -2) {
		t.Fatal("non-positive rates must be invalid")
	}
	if got, want := b.Stretch(100*time.Second), 105*time.Second; got != want {
		t.Fatalf("Stretch = %v, want %v", got, want)
	}
}

// Property: for any pair of clocks drawn within eps of nominal, an interval
// of local length d on one clock, converted through global time to the
// other clock, measures within (d/(1+eps'), d*(1+eps')) where
// eps' = (1+eps)^2-1 is the pairwise bound for clocks drawn from
// [1/(1+eps), 1+eps].
func TestClockPairwiseBoundProperty(t *testing.T) {
	const eps = 0.05
	pairEps := (1+eps)*(1+eps) - 1
	f := func(seed int64, dMillis uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(seed)
		a := s.NewClockWithin(eps, rng)
		b := s.NewClockWithin(eps, rng)
		d := Duration(int64(dMillis)+1) * time.Millisecond
		onB := b.LocalDur(a.GlobalDur(d))
		lo := Duration(float64(d) / (1 + pairEps))
		hi := Duration(float64(d) * (1 + pairEps))
		// Allow a nanosecond of float slack at each edge.
		return onB >= lo-1 && onB <= hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(time.Second)
	b := a.Add(500 * time.Millisecond)
	if !a.Before(b) || !b.After(a) {
		t.Fatal("Before/After broken")
	}
	if b.Sub(a) != 500*time.Millisecond {
		t.Fatalf("Sub = %v", b.Sub(a))
	}
	if a.String() != "1s" {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: events fire in exactly nondecreasing-time, FIFO-within-time
// order, regardless of the insertion pattern, including cancellations.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(seed int64, spec []uint16) bool {
		s := NewScheduler(seed)
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		seq := 0
		var events []*Event
		for _, raw := range spec {
			at := Time(raw % 1000)
			mySeq := seq
			seq++
			e := s.At(at, func() {
				log = append(log, fired{at: s.Now(), seq: mySeq})
			})
			events = append(events, e)
			if raw&0x8000 != 0 && len(events) > 1 {
				// Cancel a random earlier event.
				events[int(raw)%len(events)].Stop()
			}
		}
		s.Run()
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false // time went backwards
			}
			if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
				return false // same-instant FIFO violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a NodeClock's local measurements are consistent: converting a
// local duration to global and back is identity (within 1ns rounding),
// and Now() is monotone as global time advances.
func TestNodeClockConversionProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint16, dRaw uint32) bool {
		rate := 0.5 + float64(rateRaw%1000)/1000.0 // 0.5..1.5
		s := NewScheduler(seed)
		c := s.NewClock(rate, Duration(seed%1000)*time.Millisecond)
		d := Duration(dRaw%1000000) * time.Microsecond
		back := c.LocalDur(c.GlobalDur(d))
		if diff := back - d; diff < -time.Microsecond || diff > time.Microsecond {
			return false
		}
		before := c.Now()
		s.After(time.Second, func() {})
		s.Run()
		return c.Now() >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
