package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// NodeClock is a simulated hardware clock that advances at a fixed rate
// relative to global simulation time. A rate of 1.02 means the node's
// crystal runs 2% fast. Local timers are converted to global delays by the
// inverse rate, so a fast clock's τ elapses sooner in global time — exactly
// the skew the lease protocol's (1+ε) stretch must absorb.
type NodeClock struct {
	sched *Scheduler
	rate  float64
	// epoch is the global time at which this clock read localEpoch.
	epoch      Time
	localEpoch Time
}

// NewClock creates a clock on s with the given rate (>0) and an initial
// local reading of offset. Absolute offsets are irrelevant to the protocol
// (it never compares times across clocks) but a nonzero offset in tests
// guards against code accidentally mixing clock domains.
func (s *Scheduler) NewClock(rate float64, offset Duration) *NodeClock {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock rate %g", rate))
	}
	return &NodeClock{sched: s, rate: rate, epoch: s.now, localEpoch: Time(offset)}
}

// NewClockWithin creates a clock whose rate is drawn uniformly from
// [1/(1+eps), 1+eps] using rng, with a random offset. All clocks drawn this
// way pairwise satisfy RateBound{Eps: eps'} for eps' = (1+eps)^2 - 1; use
// NewClockPair or draw from the half-interval when the pairwise bound must
// be exactly eps.
func (s *Scheduler) NewClockWithin(eps float64, rng *rand.Rand) *NodeClock {
	lo := 1 / (1 + eps)
	hi := 1 + eps
	rate := lo + rng.Float64()*(hi-lo)
	offset := Duration(rng.Int63n(int64(time.Hour)))
	return s.NewClock(rate, offset)
}

// Rate returns the clock's rate relative to global time.
func (c *NodeClock) Rate() float64 { return c.rate }

// Now returns the clock's current local reading.
func (c *NodeClock) Now() Time {
	elapsed := c.sched.now - c.epoch
	return c.localEpoch + Time(float64(elapsed)*c.rate)
}

// GlobalAt converts a local instant on this clock to global time. It is
// intended for the oracle and tests only; protocol code must never call it.
func (c *NodeClock) GlobalAt(local Time) Time {
	return c.epoch + Time(float64(local-c.localEpoch)/c.rate)
}

// LocalDur converts a global duration to this clock's local measurement.
func (c *NodeClock) LocalDur(global Duration) Duration {
	return Duration(float64(global) * c.rate)
}

// GlobalDur converts a local duration to the global time it spans.
func (c *NodeClock) GlobalDur(local Duration) Duration {
	return Duration(float64(local) / c.rate)
}

// AfterFunc schedules fn after local duration d elapses on this clock.
func (c *NodeClock) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return c.sched.After(c.GlobalDur(d), fn)
}

var _ Clock = (*NodeClock)(nil)

// RealClock is a Clock backed by the wall clock, used by the live TCP
// deployment. Local time is nanoseconds since the clock was created.
type RealClock struct {
	start time.Time
	exec  func(fn func())
}

// NewRealClock returns a wall-clock Clock. If exec is non-nil, timer
// callbacks are funneled through it (a node's serial executor); otherwise
// they run on the timer goroutine.
func NewRealClock(exec func(fn func())) *RealClock {
	return &RealClock{start: time.Now(), exec: exec}
}

// Now returns nanoseconds since the clock was created.
func (c *RealClock) Now() Time { return Time(time.Since(c.start)) }

// SetExec replaces the executor hook timer callbacks are funneled
// through. Call before any timers are armed.
func (c *RealClock) SetExec(exec func(fn func())) { c.exec = exec }

type realTimer struct{ t *time.Timer }

func (t realTimer) Stop() bool { return t.t.Stop() }

// AfterFunc schedules fn after wall-clock duration d.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	run := fn
	if c.exec != nil {
		run = func() { c.exec(fn) }
	}
	return realTimer{time.AfterFunc(d, run)}
}

var _ Clock = (*RealClock)(nil)
