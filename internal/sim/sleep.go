package sim

import "time"

// Sleep blocks the calling goroutine until local duration d elapses on
// clock c — the clock-routed replacement for time.Sleep. It must only be
// called from goroutines that are allowed to block (a transport's send
// goroutine, a test), never from a node executor: on a simulated clock
// the callback arrives on the scheduler goroutine, and parking that
// goroutine in Sleep would deadlock the simulation.
func Sleep(c Clock, d time.Duration) {
	<-After(c, d)
}

// After returns a channel that is closed once local duration d elapses
// on clock c — the clock-routed analogue of time.After for select
// loops. A non-positive d yields an already-closed channel.
func After(c Clock, d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	if d <= 0 {
		close(ch)
		return ch
	}
	c.AfterFunc(d, func() { close(ch) })
	return ch
}
