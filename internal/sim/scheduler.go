package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are ordered by (time, sequence
// number) so that simulations are fully deterministic: two events at the
// same instant fire in the order they were scheduled.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when popped or cancelled
	cancelled bool
}

// Time returns the global instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Stop cancels the event. It reports whether the call prevented the event
// from firing.
func (e *Event) Stop() bool {
	if e == nil || e.cancelled || e.index == -1 {
		return false
	}
	e.cancelled = true
	return true
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. All simulated
// activity — message delivery, timers, workload arrivals — is an Event on
// its queue. It is not safe for concurrent use; the entire simulation runs
// on the caller's goroutine.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	fired   uint64
}

// NewScheduler returns a scheduler at time zero with randomness derived
// from seed. The same seed always produces the same simulation.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current global simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// cancelled events not yet drained).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at global time t. Scheduling in the past panics: it is
// always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn after global duration d. Negative d is clamped to 0.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step executes the next event. It reports false when the queue is empty
// or the scheduler is stopped.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		if e.at < s.now {
			panic("sim: event queue went backwards")
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
// Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t Time) {
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor advances the simulation by global duration d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// RunWhile executes events while cond() holds and events remain.
func (s *Scheduler) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}

// Stop halts Run/RunUntil after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

func (s *Scheduler) peek() (Time, bool) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return e.at, true
	}
	return 0, false
}
