package sim

import (
	"testing"
	"time"
)

// stubClock records AfterFunc arms and fires each callback synchronously.
type stubClock struct {
	armed []time.Duration
}

func (c *stubClock) Now() Time { return 0 }

func (c *stubClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.armed = append(c.armed, d)
	fn()
	return stubTimer{}
}

type stubTimer struct{}

func (stubTimer) Stop() bool { return false }

func TestAfterNonPositiveIsImmediate(t *testing.T) {
	c := &stubClock{}
	select {
	case <-After(c, 0):
	default:
		t.Fatal("After(c, 0) must return an already-closed channel")
	}
	if len(c.armed) != 0 {
		t.Fatalf("non-positive After armed a timer: %v", c.armed)
	}
}

func TestSleepArmsTheClock(t *testing.T) {
	c := &stubClock{}
	Sleep(c, 5*time.Millisecond)
	if len(c.armed) != 1 || c.armed[0] != 5*time.Millisecond {
		t.Fatalf("Sleep armed %v, want exactly one 5ms timer", c.armed)
	}
}

func TestSleepRealClock(t *testing.T) {
	c := NewRealClock(nil)
	start := time.Now()
	Sleep(c, 2*time.Millisecond)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 2ms", elapsed)
	}
}
