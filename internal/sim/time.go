// Package sim provides a deterministic discrete-event simulation kernel:
// a single-threaded event scheduler, per-node clocks with bounded rate skew
// (the paper's rate-synchronization model), seeded randomness, and the
// Clock/Timer abstraction the lease protocol is written against.
//
// Everything in the repository that is time-dependent runs either on a
// sim.Scheduler (tests, benchmarks, experiments — fully deterministic) or on
// real clocks (cmd/tankd, cmd/tankcli) through the same Clock interface.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant in nanoseconds. Depending on context it is either
// global (oracle) simulation time or a node's local clock reading. The
// protocol code only ever compares Times read from the same clock; global
// time is reserved for the scheduler and the consistency oracle.
type Time int64

// Duration re-exports time.Duration for callers that want a single import.
type Duration = time.Duration

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as a duration offset from zero, which reads
// naturally for simulation time ("1.5s", "250ms").
func (t Time) String() string { return time.Duration(t).String() }

// Timer is a cancellable pending callback, the subset of *time.Timer the
// protocol needs.
type Timer interface {
	// Stop cancels the timer. It reports whether the call prevented the
	// callback from firing.
	Stop() bool
}

// Clock is the time source a protocol participant runs against. Sim clocks
// advance at a configurable rate relative to global simulation time; real
// clocks advance at wall-clock rate.
type Clock interface {
	// Now returns the current local time.
	Now() Time
	// AfterFunc arranges for fn to run after local duration d elapses on
	// this clock and returns a Timer that can cancel it. fn runs on the
	// node's executor (the scheduler goroutine in simulation).
	AfterFunc(d time.Duration, fn func()) Timer
}

// RateBound describes the paper's rate-synchronization assumption: an
// interval of length t measured on one clock has length within
// (t/(1+eps), t*(1+eps)) measured on any other clock in the system.
type RateBound struct {
	Eps float64
}

// Valid reports whether two clock rates satisfy the bound.
func (b RateBound) Valid(rateA, rateB float64) bool {
	if rateA <= 0 || rateB <= 0 {
		return false
	}
	ratio := rateA / rateB
	if ratio < 1 {
		ratio = 1 / ratio
	}
	return ratio <= 1+b.Eps
}

// Stretch returns d*(1+eps) rounded to nanoseconds: the interval a server
// must wait on its own clock to guarantee at least d has elapsed on any
// rate-synchronized peer clock (Theorem 3.1's wait).
func (b RateBound) Stretch(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (1 + b.Eps))
}

func (b RateBound) String() string { return fmt.Sprintf("eps=%g", b.Eps) }
