package msg

// AllMessages returns one zero-valued instance of every concrete message
// type that can travel in an Envelope. It is the canonical registry both
// codecs build on: gob registration iterates it, and the binary codec's
// exhaustiveness tests round-trip every entry — adding a message type
// without teaching the binary codec about it fails the msg test suite,
// not a live connection.
func AllMessages() []Message {
	return []Message{
		// Requests.
		&Rejoin{}, &KeepAlive{}, &Lookup{}, &Create{}, &Unlink{}, &Rename{},
		&Truncate{}, &Open{}, &Close{}, &GetAttr{}, &SetAttr{}, &Readdir{},
		&GetBlocks{}, &AllocBlocks{}, &LockAcquire{}, &LockRelease{},
		&LockDowngraded{}, &Reassert{}, &Heartbeat{}, &RenewObjects{},
		&FuncRead{}, &FuncWrite{}, &ReplicaInfo{},
		// Replies.
		&Reply{},
		// Server-initiated.
		&Demand{}, &DemandAck{},
		// Server-to-server shard handoff.
		&ShardMigrate{}, &ShardMigrateRes{},
		// Replica-to-replica authority-lease negotiation.
		&ReplicaPrepare{}, &ReplicaPromise{}, &ReplicaPropose{},
		&ReplicaAccept{},
		// SAN.
		&DiskRead{}, &DiskReadRes{}, &DiskWrite{}, &DiskWriteRes{},
		&DiskWriteV{}, &DiskWriteVRes{}, &DiskReadV{}, &DiskReadVRes{},
		&FenceSet{}, &FenceRes{}, &DLockAcquire{}, &DLockRelease{},
		&DLockRes{},
	}
}

// AllResults returns one zero-valued instance of every concrete Result
// type a Reply body can carry (the registry for the nested result layer
// of both codecs).
func AllResults() []Result {
	return []Result{
		LookupRes{}, CreateRes{}, OpenRes{}, AttrRes{}, ReaddirRes{},
		BlocksRes{}, AllocRes{}, LockRes{}, RejoinRes{}, ReassertRes{},
		FuncReadRes{}, ReplicaInfoRes{},
	}
}
