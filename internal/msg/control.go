package msg

// LockMode is the strength of a data lock on a file object. Data locks
// protect cached data: a shared lock permits read caching, an exclusive
// lock permits write-back caching.
type LockMode uint8

const (
	LockNone LockMode = iota
	LockShared
	LockExclusive
)

func (m LockMode) String() string {
	switch m {
	case LockNone:
		return "none"
	case LockShared:
		return "shared"
	case LockExclusive:
		return "exclusive"
	}
	return "invalid"
}

// Compatible reports whether two data locks may be held concurrently by
// different clients.
func (m LockMode) Compatible(o LockMode) bool {
	return m != LockExclusive && o != LockExclusive || m == LockNone || o == LockNone
}

// Covers reports whether holding m suffices for an operation needing o.
func (m LockMode) Covers(o LockMode) bool { return m >= o }

// Attr is an object's metadata as served over the control network.
// Version is a server-side modification counter standing in for mtime
// (the system never relies on absolute time).
type Attr struct {
	Ino     ObjectID
	IsDir   bool
	Size    uint64
	Version uint64
	Nlink   uint32
}

// BlockRef addresses one block of file data on the SAN.
type BlockRef struct {
	Disk NodeID
	Num  uint64
}

// DirEntry is one name in a directory listing.
type DirEntry struct {
	Name  string
	Ino   ObjectID
	IsDir bool
}

// ReqHeader is common to all client-initiated control requests. Req is the
// at-most-once identifier; Epoch is the client's current registration.
type ReqHeader struct {
	Client NodeID
	Req    ReqID
	Epoch  Epoch
}

// Request is a client-initiated control-network message. The server
// answers every Request with a Reply carrying the same ReqID, either ACK
// (executed; renews the sender's lease) or NACK (client is suspect/stale).
type Request interface {
	Message
	Hdr() *ReqHeader
}

func (h *ReqHeader) Hdr() *ReqHeader { return h }

// --- Requests -------------------------------------------------------------

// Rejoin (re)registers a client with the server. It is the only request a
// suspect or expired client may make; a successful Rejoin returns a fresh
// epoch and implies the client holds no locks and caches nothing.
type Rejoin struct{ ReqHeader }

func (*Rejoin) Kind() Kind { return KindControlReq }
func (*Rejoin) Size() int  { return 24 }

// KeepAlive is the paper's special-purpose NULL message (§3.1): it encodes
// no file-system or lock operation and exists solely to elicit an ACK that
// renews the lease. Sent only in phase 2, or by idle clients that still
// cache data.
type KeepAlive struct{ ReqHeader }

func (*KeepAlive) Kind() Kind { return KindKeepAlive }
func (*KeepAlive) Size() int  { return 24 }

// Lookup resolves a path to an object.
type Lookup struct {
	ReqHeader
	Path string
}

func (*Lookup) Kind() Kind  { return KindControlReq }
func (m *Lookup) Size() int { return 24 + len(m.Path) }

// Create makes a new file or directory at Path.
type Create struct {
	ReqHeader
	Path  string
	IsDir bool
}

func (*Create) Kind() Kind  { return KindControlReq }
func (m *Create) Size() int { return 25 + len(m.Path) }

// Unlink removes the object at Path (directories must be empty).
type Unlink struct {
	ReqHeader
	Path string
}

func (*Unlink) Kind() Kind  { return KindControlReq }
func (m *Unlink) Size() int { return 24 + len(m.Path) }

// Rename moves an object; the destination must not exist.
type Rename struct {
	ReqHeader
	OldPath, NewPath string
}

func (*Rename) Kind() Kind  { return KindControlReq }
func (m *Rename) Size() int { return 24 + len(m.OldPath) + len(m.NewPath) }

// Truncate shrinks a file to Blocks data blocks, freeing the tail at the
// server's allocator.
type Truncate struct {
	ReqHeader
	Ino    ObjectID
	Blocks uint32
}

func (*Truncate) Kind() Kind { return KindControlReq }
func (*Truncate) Size() int  { return 36 }

// Open creates an open instance for an object; Write requests write access.
type Open struct {
	ReqHeader
	Ino   ObjectID
	Write bool
}

func (*Open) Kind() Kind { return KindControlReq }
func (*Open) Size() int  { return 33 }

// Close releases an open instance.
type Close struct {
	ReqHeader
	Ino    ObjectID
	Handle Handle
}

func (*Close) Kind() Kind { return KindControlReq }
func (*Close) Size() int  { return 40 }

// GetAttr fetches current metadata for an object.
type GetAttr struct {
	ReqHeader
	Ino ObjectID
}

func (*GetAttr) Kind() Kind { return KindControlReq }
func (*GetAttr) Size() int  { return 32 }

// SetAttr updates file size (truncate/extend bookkeeping after writes).
type SetAttr struct {
	ReqHeader
	Ino     ObjectID
	NewSize uint64
}

func (*SetAttr) Kind() Kind { return KindControlReq }
func (*SetAttr) Size() int  { return 40 }

// Readdir lists a directory.
type Readdir struct {
	ReqHeader
	Ino ObjectID
}

func (*Readdir) Kind() Kind { return KindControlReq }
func (*Readdir) Size() int  { return 32 }

// GetBlocks fetches an object's block map so the client can perform direct
// SAN I/O.
type GetBlocks struct {
	ReqHeader
	Ino ObjectID
}

func (*GetBlocks) Kind() Kind { return KindControlReq }
func (*GetBlocks) Size() int  { return 32 }

// AllocBlocks extends an object by Count new blocks.
type AllocBlocks struct {
	ReqHeader
	Ino   ObjectID
	Count uint32
}

func (*AllocBlocks) Kind() Kind { return KindControlReq }
func (*AllocBlocks) Size() int  { return 36 }

// LockAcquire asks for a data lock of the given mode. The server replies
// when the lock is granted (demanding it from conflicting holders first if
// necessary); the reliable-request layer keeps retrying meanwhile.
type LockAcquire struct {
	ReqHeader
	Ino  ObjectID
	Mode LockMode
}

func (*LockAcquire) Kind() Kind { return KindControlReq }
func (*LockAcquire) Size() int  { return 33 }

// LockRelease gives a data lock back (or downgrades it to Mode).
type LockRelease struct {
	ReqHeader
	Ino ObjectID
	// To is the mode retained after release; LockNone releases entirely.
	To LockMode
}

func (*LockRelease) Kind() Kind { return KindControlReq }
func (*LockRelease) Size() int  { return 33 }

// LockDowngraded tells the server a demanded downgrade is complete: dirty
// data covered by the lock has been flushed and the cache adjusted.
type LockDowngraded struct {
	ReqHeader
	Ino    ObjectID
	To     LockMode
	Demand DemandID
}

func (*LockDowngraded) Kind() Kind { return KindControlReq }
func (*LockDowngraded) Size() int  { return 41 }

// LockClaim is one lock a client re-asserts after a server restart.
type LockClaim struct {
	Ino  ObjectID
	Mode LockMode
}

// Reassert restores a client's registration and lock state at a freshly
// restarted server (§6: "client-driven lock reassertion"). It is only
// accepted during the server's post-restart grace period, and only if
// the claimed locks are compatible with other reasserted claims. A
// client may reassert only while its own lease is still running — its
// locks are contractually protected for that long, even across a server
// restart.
type Reassert struct {
	ReqHeader
	Locks []LockClaim
}

func (*Reassert) Kind() Kind  { return KindControlReq }
func (m *Reassert) Size() int { return 24 + 9*len(m.Locks) }

// Heartbeat is baseline traffic for the Frangipani-style lease policy: a
// periodic I-am-alive that the server must record per client.
type Heartbeat struct{ ReqHeader }

func (*Heartbeat) Kind() Kind { return KindLeaseAdmin }
func (*Heartbeat) Size() int  { return 24 }

// RenewObjects is baseline traffic for the V-style per-object lease
// policy: the client enumerates every cached object whose lease it renews.
type RenewObjects struct {
	ReqHeader
	Inos []ObjectID
}

func (*RenewObjects) Kind() Kind  { return KindLeaseAdmin }
func (m *RenewObjects) Size() int { return 24 + 8*len(m.Inos) }

// FuncRead is baseline traffic for the function-shipping data path
// (traditional client/server file system): the server performs the disk
// read and returns the data over the control network.
type FuncRead struct {
	ReqHeader
	Ino    ObjectID
	Offset uint64
	Length uint32
}

func (*FuncRead) Kind() Kind { return KindControlReq }
func (*FuncRead) Size() int  { return 44 }

// FuncWrite ships data to the server, which performs the disk write.
type FuncWrite struct {
	ReqHeader
	Ino    ObjectID
	Offset uint64
	Data   []byte
}

func (*FuncWrite) Kind() Kind  { return KindControlReq }
func (m *FuncWrite) Size() int { return 40 + len(m.Data) }

// --- Replies ---------------------------------------------------------------

// Result is the typed payload of a successful Reply.
type Result interface{ resultMarker() }

// Reply answers a Request. Status NACK means the server refuses to serve
// this client (suspect, expired, or stale epoch); Err reports file-system
// outcomes within an ACK.
type Reply struct {
	Client NodeID
	Req    ReqID
	Status Status
	Err    Errno
	Body   Result
}

func (*Reply) Kind() Kind { return KindControlReply }
func (r *Reply) Size() int {
	n := 16
	if b, ok := r.Body.(interface{ resultSize() int }); ok {
		n += b.resultSize()
	}
	return n
}

// LookupRes and friends carry request results.
type LookupRes struct{ Attr Attr }

func (LookupRes) resultMarker()   {}
func (LookupRes) resultSize() int { return 29 }

// CreateRes returns the new object's metadata.
type CreateRes struct{ Attr Attr }

func (CreateRes) resultMarker()   {}
func (CreateRes) resultSize() int { return 29 }

// OpenRes returns the open handle and current metadata.
type OpenRes struct {
	Handle Handle
	Attr   Attr
}

func (OpenRes) resultMarker()   {}
func (OpenRes) resultSize() int { return 37 }

// AttrRes returns metadata.
type AttrRes struct{ Attr Attr }

func (AttrRes) resultMarker()   {}
func (AttrRes) resultSize() int { return 29 }

// ReaddirRes returns directory entries.
type ReaddirRes struct{ Entries []DirEntry }

func (ReaddirRes) resultMarker() {}
func (r ReaddirRes) resultSize() int {
	n := 4
	for _, e := range r.Entries {
		n += 9 + len(e.Name)
	}
	return n
}

// BlocksRes returns an object's block map and current metadata.
type BlocksRes struct {
	Attr   Attr
	Blocks []BlockRef
}

func (BlocksRes) resultMarker()     {}
func (r BlocksRes) resultSize() int { return 29 + 12*len(r.Blocks) }

// AllocRes returns the full block map after extension.
type AllocRes struct {
	Attr   Attr
	Blocks []BlockRef
}

func (AllocRes) resultMarker()     {}
func (r AllocRes) resultSize() int { return 29 + 12*len(r.Blocks) }

// LockRes confirms the mode now held.
type LockRes struct{ Mode LockMode }

func (LockRes) resultMarker()   {}
func (LockRes) resultSize() int { return 1 }

// RejoinRes returns the client's fresh epoch.
type RejoinRes struct{ Epoch Epoch }

func (RejoinRes) resultMarker()   {}
func (RejoinRes) resultSize() int { return 4 }

// ReassertRes returns the fresh epoch after a successful reassertion.
type ReassertRes struct{ Epoch Epoch }

func (ReassertRes) resultMarker()   {}
func (ReassertRes) resultSize() int { return 4 }

// FuncReadRes returns function-shipped data.
type FuncReadRes struct{ Data []byte }

func (FuncReadRes) resultMarker()     {}
func (r FuncReadRes) resultSize() int { return 4 + len(r.Data) }

// --- Server-initiated ------------------------------------------------------

// Demand asks a lock holder to downgrade to Mode (§1.2: the server
// "demands" the lock). It requires an immediate transport-level DemandAck;
// absence of the ack after retries is the delivery failure that moves the
// server's lease authority against the client.
type Demand struct {
	ID   DemandID
	Ino  ObjectID
	Mode LockMode
	// Server identifies the demanding server so the client can ack.
	Server NodeID
}

func (*Demand) Kind() Kind { return KindDemand }
func (*Demand) Size() int  { return 25 }

// DemandAck is the client's immediate acknowledgment of a Demand. It does
// not mean the downgrade is complete — LockDowngraded reports that — only
// that the client is alive and has accepted the demand.
type DemandAck struct {
	Client NodeID
	ID     DemandID
}

func (*DemandAck) Kind() Kind { return KindDemandAck }
func (*DemandAck) Size() int  { return 12 }

// --- Server-to-server (shard handoff) ---------------------------------------

// ShardMigrate hands a file's metadata from one lease authority to
// another for a cross-shard rename: the source shard (Src) asks the
// destination to install the object at Path with the given attributes
// and block map. HID is a durable per-source handoff identifier; the
// destination installs at most once per (Src, HID), so the source may
// retransmit until answered. Blocks keep their original disk addresses —
// file data never moves during a handoff.
type ShardMigrate struct {
	Src    NodeID
	HID    uint64
	Path   string
	Attr   Attr
	Blocks []BlockRef
}

func (*ShardMigrate) Kind() Kind { return KindShard }
func (m *ShardMigrate) Size() int {
	return 49 + len(m.Path) + 12*len(m.Blocks)
}

// ShardMigrateRes answers a ShardMigrate: OK means the object now exists
// at the destination shard (installed by this message or an earlier
// duplicate) and the source may unlink its copy; any other Errno aborts
// the handoff and the source keeps ownership.
type ShardMigrateRes struct {
	HID uint64
	Err Errno
}

func (*ShardMigrateRes) Kind() Kind { return KindShard }
func (*ShardMigrateRes) Size() int  { return 9 }
