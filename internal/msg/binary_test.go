package msg

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"
)

// fill deterministically populates every exported field of v with
// non-zero values, so a round trip that drops or reorders any field
// fails loudly. Interface fields (Reply.Body) are the caller's problem.
func fill(v reflect.Value, ctr *int) {
	next := func() uint64 { *ctr++; return uint64(*ctr) }
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(next()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(next())
	case reflect.String:
		v.SetString("path-" + string(rune('a'+byte(next()%26))))
	case reflect.Slice:
		n := 2
		s := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			fill(s.Index(i), ctr)
		}
		v.Set(s)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).PkgPath != "" {
				continue // unexported
			}
			if v.Type().Field(i).Type.Kind() == reflect.Interface {
				continue // Reply.Body: filled explicitly by the caller
			}
			fill(v.Field(i), ctr)
		}
	case reflect.Ptr:
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		}
		fill(v.Elem(), ctr)
	default:
		panic("fill: unhandled kind " + v.Kind().String())
	}
}

// normalize rewrites zero-length slices to nil throughout, so gob's and
// the binary codec's differing nil/empty conventions compare equal —
// the protocol never distinguishes them.
func normalize(v reflect.Value) {
	switch v.Kind() {
	case reflect.Slice:
		if v.Len() == 0 {
			if v.CanSet() {
				v.Set(reflect.Zero(v.Type()))
			}
			return
		}
		for i := 0; i < v.Len(); i++ {
			normalize(v.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).PkgPath != "" {
				continue
			}
			normalize(v.Field(i))
		}
	case reflect.Interface, reflect.Ptr:
		if !v.IsNil() {
			if v.Kind() == reflect.Interface {
				// Interfaces hold values; copy out, normalize, put back.
				inner := reflect.New(v.Elem().Type()).Elem()
				inner.Set(v.Elem())
				normalize(inner)
				if v.CanSet() {
					v.Set(inner)
				}
				return
			}
			normalize(v.Elem())
		}
	}
}

func normalized(env *Envelope) Envelope {
	cp := *env
	cp.borrow = nil
	normalize(reflect.ValueOf(&cp).Elem())
	return cp
}

// encodeFrame runs the production encode path: size, header+meta encode,
// scatter-gather tail appended exactly as writev would transmit it.
func encodeFrame(t *testing.T, env *Envelope) []byte {
	t.Helper()
	meta, tail, err := BinarySize(env)
	if err != nil {
		t.Fatalf("BinarySize(%T): %v", env.Payload, err)
	}
	body := make([]byte, meta)
	if err := EncodeBinary(body, env); err != nil {
		t.Fatalf("EncodeBinary(%T): %v", env.Payload, err)
	}
	return append(body, tail...)
}

func gobRoundTrip(t *testing.T, env *Envelope) *Envelope {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatalf("gob encode %T: %v", env.Payload, err)
	}
	var out Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", env.Payload, err)
	}
	return &out
}

// filledEnvelopes is the exhaustive corpus: every registered message
// type with every field populated, plus one Reply per result type.
// Adding a message type to the registry automatically adds it here.
func filledEnvelopes() []*Envelope {
	var envs []*Envelope
	ctr := 0
	for _, m := range AllMessages() {
		fill(reflect.ValueOf(m).Elem(), &ctr)
		if r, ok := m.(*Reply); ok {
			r.Body = nil // body-less reply; result-bearing ones below
		}
		envs = append(envs, &Envelope{From: 3, To: 9, Payload: m})
	}
	for _, res := range AllResults() {
		rv := reflect.New(reflect.TypeOf(res)).Elem()
		fill(rv, &ctr)
		r := &Reply{Status: ACK, Err: OK, Body: rv.Interface().(Result)}
		fill(reflect.ValueOf(&r.Client).Elem(), &ctr)
		fill(reflect.ValueOf(&r.Req).Elem(), &ctr)
		envs = append(envs, &Envelope{From: 3, To: 9, Payload: r})
	}
	return envs
}

// TestBinaryRoundTripAllTypes: encode→decode through the binary codec
// preserves every field of every message and result type.
func TestBinaryRoundTripAllTypes(t *testing.T) {
	for _, env := range filledEnvelopes() {
		frame := encodeFrame(t, env)
		got, err := DecodeBinary(frame)
		if err != nil {
			t.Fatalf("DecodeBinary(%T): %v", env.Payload, err)
		}
		want, have := normalized(env), normalized(got)
		if !reflect.DeepEqual(want, have) {
			t.Errorf("%T round trip:\n want %+v\n  got %+v", env.Payload, want.Payload, have.Payload)
		}
	}
}

// TestBinaryGobEquivalence: decoding a binary frame yields the same
// envelope gob yields — the two codecs are semantically interchangeable.
func TestBinaryGobEquivalence(t *testing.T) {
	RegisterGob()
	for _, env := range filledEnvelopes() {
		viaGob := normalized(gobRoundTrip(t, env))
		bin, err := DecodeBinary(encodeFrame(t, env))
		if err != nil {
			t.Fatalf("DecodeBinary(%T): %v", env.Payload, err)
		}
		viaBin := normalized(bin)
		if !reflect.DeepEqual(viaGob, viaBin) {
			t.Errorf("%T diverges:\n gob %+v\n bin %+v", env.Payload, viaGob.Payload, viaBin.Payload)
		}
	}
}

// TestBinaryZeroValues: zero-valued messages (empty paths, nil data,
// zero-length vectors) survive the round trip.
func TestBinaryZeroValues(t *testing.T) {
	for _, m := range AllMessages() {
		env := &Envelope{From: 1, To: 2, Payload: m}
		got, err := DecodeBinary(encodeFrame(t, env))
		if err != nil {
			t.Fatalf("DecodeBinary(zero %T): %v", m, err)
		}
		want, have := normalized(env), normalized(got)
		if !reflect.DeepEqual(want, have) {
			t.Errorf("zero %T round trip:\n want %+v\n  got %+v", m, want.Payload, have.Payload)
		}
	}
}

// TestBinaryAllErrnos: every errno value survives both the scalar Err
// field and the per-block error vector.
func TestBinaryAllErrnos(t *testing.T) {
	for e := 0; e < len(errnoNames); e++ {
		errno := Errno(e)
		env := &Envelope{From: 1, To: 2, Payload: &Reply{Client: 1, Req: 2, Status: ACK, Err: errno}}
		got, err := DecodeBinary(encodeFrame(t, env))
		if err != nil {
			t.Fatalf("errno %v: %v", errno, err)
		}
		if r := got.Payload.(*Reply); r.Err != errno {
			t.Errorf("scalar errno %v decoded as %v", errno, r.Err)
		}
		vec := &Envelope{From: 1, To: 2, Payload: &DiskWriteVRes{
			Req: 7, Err: errno, Errs: []Errno{errno, OK, errno}}}
		got, err = DecodeBinary(encodeFrame(t, vec))
		if err != nil {
			t.Fatalf("errno vector %v: %v", errno, err)
		}
		if r := got.Payload.(*DiskWriteVRes); r.Errs[0] != errno || r.Errs[2] != errno {
			t.Errorf("vector errno %v decoded as %v", errno, r.Errs)
		}
	}
}

// TestBinaryMaxBlockVector: a full-size flush batch — the largest frame
// the protocol produces — round trips intact, data aligned per block.
func TestBinaryMaxBlockVector(t *testing.T) {
	const blocks, blockSize = 64, 4096
	vecs := make([]BlockVec, blocks)
	data := make([]byte, blocks*blockSize)
	for i := range vecs {
		vecs[i] = BlockVec{Block: uint64(i * 7), Ver: uint64(i + 1)}
		for j := 0; j < blockSize; j++ {
			data[i*blockSize+j] = byte(i)
		}
	}
	env := &Envelope{From: 10, To: 20, Payload: &DiskWriteV{
		Client: 10, Req: 5, Blocks: vecs, Data: data}}
	got, err := DecodeBinary(encodeFrame(t, env))
	if err != nil {
		t.Fatal(err)
	}
	out := got.Payload.(*DiskWriteV)
	if len(out.Blocks) != blocks || !bytes.Equal(out.Data, data) {
		t.Fatalf("max batch mangled: %d blocks, %d data bytes", len(out.Blocks), len(out.Data))
	}
	if out.Blocks[63] != (BlockVec{Block: 63 * 7, Ver: 64}) {
		t.Fatalf("last vec mangled: %+v", out.Blocks[63])
	}
}

// TestBinaryDecodeCorruption: every truncation of every valid frame
// fails cleanly (no panic, no giant allocation), and single-byte damage
// never panics.
func TestBinaryDecodeCorruption(t *testing.T) {
	for _, env := range filledEnvelopes() {
		frame := encodeFrame(t, env)
		for cut := 0; cut < len(frame); cut++ {
			if _, err := DecodeBinary(frame[:cut]); err == nil {
				t.Errorf("%T truncated to %d/%d bytes decoded successfully",
					env.Payload, cut, len(frame))
			}
		}
		for i := 0; i < len(frame); i++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0xff
			DecodeBinary(mut) // must not panic; error or alternate decode both fine
		}
	}
}

// TestBinaryDecodeHostileCounts: fabricated frames whose length prefixes
// and element counts lie about the remaining bytes must error, not
// allocate or scan out of bounds.
func TestBinaryDecodeHostileCounts(t *testing.T) {
	hostile := [][]byte{
		{},
		{0, 0, 0, 1, 0, 0, 0, 2},                         // shorter than header
		{0, 0, 0, 1, 0, 0, 0, 2, 0},                      // unknown type 0
		{0, 0, 0, 1, 0, 0, 0, 2, 99},                     // unknown type 99
		{0, 0, 0, 1, 0, 0, 0, 2, btDiskWriteV, 0xff},     // truncated mid-header
		append([]byte{0, 0, 0, 1, 0, 0, 0, 2, btDiskWriteV, 0, 0, 0, 3, 0, 0, 0, 1}, // Client..Req then count lies
			0xff, 0xff, 0xff, 0xff),
	}
	for i, frame := range hostile {
		if _, err := DecodeBinary(frame); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("hostile frame %d: err = %v, want ErrCorruptFrame", i, err)
		}
	}
}

// TestBinaryZeroCopyAliasing: the documented aliasing contract — SAN
// page payloads alias the receive buffer; control-path data is copied.
func TestBinaryZeroCopyAliasing(t *testing.T) {
	aliased := func(frame, data []byte) bool {
		if len(data) == 0 {
			return false
		}
		f0 := &frame[0]
		return uintptr(len(frame)) > 0 && sliceWithin(f0, frame, data)
	}
	page := bytes.Repeat([]byte{0xab}, 4096)
	san := &Envelope{From: 1, To: 2, Payload: &DiskWrite{Client: 1, Req: 2, Block: 3, Data: page, Ver: 4}}
	frame := encodeFrame(t, san)
	got, err := DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !aliased(frame, got.Payload.(*DiskWrite).Data) {
		t.Error("DiskWrite.Data was copied; expected zero-copy alias of the frame")
	}
	ctl := &Envelope{From: 1, To: 2, Payload: &FuncWrite{Ino: 9, Offset: 0, Data: page}}
	frame = encodeFrame(t, ctl)
	got, err = DecodeBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if aliased(frame, got.Payload.(*FuncWrite).Data) {
		t.Error("FuncWrite.Data aliases the frame; control payloads outlive the handler and must be copied")
	}
}

// sliceWithin reports whether inner's backing array lies inside outer's.
func sliceWithin(outerFirst *byte, outer, inner []byte) bool {
	o0 := uintptr(reflectPointer(outer))
	i0 := uintptr(reflectPointer(inner))
	return i0 >= o0 && i0+uintptr(len(inner)) <= o0+uintptr(len(outer)) && outerFirst == &outer[0]
}

func reflectPointer(b []byte) uintptr {
	return reflect.ValueOf(b).Pointer()
}

// TestBorrowLifecycle: the borrow fires exactly once, after every
// Retain has been matched by a Release.
func TestBorrowLifecycle(t *testing.T) {
	freed := 0
	env := &Envelope{}
	env.Borrowed(func() { freed++ })
	env.Retain()
	env.Release()
	if freed != 0 {
		t.Fatal("freed while retained")
	}
	env.Release()
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	// Copies of the envelope share the cell.
	freed = 0
	env2 := &Envelope{}
	env2.Borrowed(func() { freed++ })
	cp := *env2
	cp.Retain()
	env2.Release()
	if freed != 0 {
		t.Fatal("freed while a copy held a retain")
	}
	cp.Release()
	if freed != 1 {
		t.Fatalf("freed = %d, want 1", freed)
	}
	// No borrow: Retain/Release are no-ops.
	var bare Envelope
	bare.Retain()
	bare.Release()
}

// FuzzDecodeBinary: arbitrary bytes must never panic the decoder.
func FuzzDecodeBinary(f *testing.F) {
	for _, env := range filledEnvelopes() {
		meta, tail, err := BinarySize(env)
		if err != nil {
			continue
		}
		body := make([]byte, meta)
		if EncodeBinary(body, env) == nil {
			f.Add(append(body, tail...))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeBinary(data)
		if err == nil {
			// A successful decode must re-encode without error.
			if _, _, err := BinarySize(env); err != nil {
				t.Fatalf("decoded envelope has no size: %v", err)
			}
		}
	})
}
