package msg

import "encoding/gob"

// RegisterGob registers every concrete message and result type with
// encoding/gob so the live TCP transport can encode Envelope payloads and
// Reply bodies through their interface types. The type list is the shared
// registry in AllMessages/AllResults. Safe to call more than once
// (gob.Register is idempotent for identical name/type pairs).
func RegisterGob() {
	for _, m := range AllMessages() {
		gob.Register(m)
	}
	for _, r := range AllResults() {
		gob.Register(r)
	}
}
