package msg

import "encoding/gob"

// RegisterGob registers every concrete message and result type with
// encoding/gob so the live TCP transport can encode Envelope payloads and
// Reply bodies through their interface types. Safe to call more than once
// (gob.Register is idempotent for identical name/type pairs).
func RegisterGob() {
	for _, v := range []any{
		// Requests.
		&Rejoin{}, &KeepAlive{}, &Lookup{}, &Create{}, &Unlink{}, &Open{},
		&Close{}, &GetAttr{}, &SetAttr{}, &Readdir{}, &GetBlocks{},
		&AllocBlocks{}, &LockAcquire{}, &LockRelease{}, &LockDowngraded{},
		&Heartbeat{}, &RenewObjects{}, &FuncRead{}, &FuncWrite{}, &Reassert{},
		&Rename{}, &Truncate{},
		// Replies and results.
		&Reply{}, LookupRes{}, CreateRes{}, OpenRes{}, AttrRes{},
		ReaddirRes{}, BlocksRes{}, AllocRes{}, LockRes{}, RejoinRes{}, ReassertRes{},
		FuncReadRes{},
		// Server-initiated.
		&Demand{}, &DemandAck{},
		// SAN.
		&DiskRead{}, &DiskReadRes{}, &DiskWrite{}, &DiskWriteRes{},
		&DiskWriteV{}, &DiskWriteVRes{}, &DiskReadV{}, &DiskReadVRes{},
		&FenceSet{}, &FenceRes{}, &DLockAcquire{}, &DLockRelease{},
		&DLockRes{},
	} {
		gob.Register(v)
	}
}
