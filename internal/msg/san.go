package msg

import "time"

// SAN messages. Disks are deliberately dumb (§2): they respond to block
// I/O, maintain a fence table, and — for the GFS-baseline only — a small
// table of expiring disk-address-range locks (dlocks). They never initiate
// messages and keep no view of the network.

// DiskRead asks a disk for one block.
type DiskRead struct {
	Client NodeID
	Req    ReqID
	Block  uint64
}

func (*DiskRead) Kind() Kind { return KindSANIO }
func (*DiskRead) Size() int  { return 20 }

// DiskReadRes returns block contents. Ver is the oracle's version stamp
// for the data (consistency checking only; not protocol-visible).
type DiskReadRes struct {
	Req  ReqID
	Err  Errno
	Data []byte
	Ver  uint64
}

func (*DiskReadRes) Kind() Kind  { return KindSANReply }
func (m *DiskReadRes) Size() int { return 17 + len(m.Data) }

// DiskWrite writes one block. Ver is the oracle version stamp assigned
// when the data was produced in the writer's cache.
type DiskWrite struct {
	Client NodeID
	Req    ReqID
	Block  uint64
	Data   []byte
	Ver    uint64
}

func (*DiskWrite) Kind() Kind  { return KindSANIO }
func (m *DiskWrite) Size() int { return 28 + len(m.Data) }

// DiskWriteRes acknowledges a write (or reports ErrFenced/ErrRange).
type DiskWriteRes struct {
	Req ReqID
	Err Errno
}

func (*DiskWriteRes) Kind() Kind { return KindSANReply }
func (*DiskWriteRes) Size() int  { return 9 }

// FenceSet instructs a disk to start (On) or stop (off) rejecting all I/O
// from Target. Only servers send it. Fences persist until explicitly
// cleared — the device enforces the denial indefinitely (§1.2).
type FenceSet struct {
	Admin  NodeID
	Req    ReqID
	Target NodeID
	On     bool
}

func (*FenceSet) Kind() Kind { return KindFence }
func (*FenceSet) Size() int  { return 17 }

// FenceRes acknowledges a FenceSet.
type FenceRes struct {
	Req ReqID
	Err Errno
}

func (*FenceRes) Kind() Kind { return KindFence }
func (*FenceRes) Size() int  { return 9 }

// DLockAcquire asks the disk for a GFS-style expiring lock over the block
// range [Start, Start+Count). Used only by the dlock baseline (§5): the
// disk, not a server, is the locking authority, and the lock times out
// after TTL on the disk's clock.
type DLockAcquire struct {
	Client NodeID
	Req    ReqID
	Start  uint64
	Count  uint32
	TTL    time.Duration
}

func (*DLockAcquire) Kind() Kind { return KindSANIO }
func (*DLockAcquire) Size() int  { return 36 }

// DLockRelease releases a dlock before its TTL expires.
type DLockRelease struct {
	Client NodeID
	Req    ReqID
	Start  uint64
	Count  uint32
}

func (*DLockRelease) Kind() Kind { return KindSANIO }
func (*DLockRelease) Size() int  { return 28 }

// DLockRes answers either dlock operation; Err is ErrDLockHeld when the
// range is locked by another initiator.
type DLockRes struct {
	Req ReqID
	Err Errno
}

func (*DLockRes) Kind() Kind { return KindSANReply }
func (*DLockRes) Size() int  { return 9 }
