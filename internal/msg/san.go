package msg

import "time"

// SAN messages. Disks are deliberately dumb (§2): they respond to block
// I/O, maintain a fence table, and — for the GFS-baseline only — a small
// table of expiring disk-address-range locks (dlocks). They never initiate
// messages and keep no view of the network.

// DiskRead asks a disk for one block.
type DiskRead struct {
	Client NodeID
	Req    ReqID
	Block  uint64
}

func (*DiskRead) Kind() Kind { return KindSANIO }
func (*DiskRead) Size() int  { return 20 }

// DiskReadRes returns block contents. Ver is the oracle's version stamp
// for the data (consistency checking only; not protocol-visible).
type DiskReadRes struct {
	Req  ReqID
	Err  Errno
	Data []byte
	Ver  uint64
}

func (*DiskReadRes) Kind() Kind  { return KindSANReply }
func (m *DiskReadRes) Size() int { return 17 + len(m.Data) }

// DiskWrite writes one block. Ver is the oracle version stamp assigned
// when the data was produced in the writer's cache.
type DiskWrite struct {
	Client NodeID
	Req    ReqID
	Block  uint64
	Data   []byte
	Ver    uint64
}

func (*DiskWrite) Kind() Kind  { return KindSANIO }
func (m *DiskWrite) Size() int { return 28 + len(m.Data) }

// DiskWriteRes acknowledges a write (or reports ErrFenced/ErrRange).
type DiskWriteRes struct {
	Req ReqID
	Err Errno
}

func (*DiskWriteRes) Kind() Kind { return KindSANReply }
func (*DiskWriteRes) Size() int  { return 9 }

// BlockVec names one block inside a vectored SAN write: where it goes and
// the oracle version stamp of the data occupying its slot of the shared
// payload.
type BlockVec struct {
	Block uint64
	Ver   uint64
}

// DiskWriteV writes a batch of blocks in ONE SAN message: Blocks[i] is
// stored from the contiguous payload slot Data[i*BlockSize:(i+1)*BlockSize].
// The disk executes the whole batch under a single service slot and — on
// durable media — a single group-commit fsync, so the acknowledgment
// means every block of the batch is stable (ack-implies-batch-durable).
// Fence and range checks still apply per block; a partial failure
// degrades to per-block result codes in DiskWriteVRes.
type DiskWriteV struct {
	Client NodeID
	Req    ReqID
	Blocks []BlockVec
	// Data is the batch payload: len(Blocks)·BlockSize bytes, each block
	// zero-padded into its fixed-size slot.
	Data []byte
}

func (*DiskWriteV) Kind() Kind  { return KindSANIO }
func (m *DiskWriteV) Size() int { return 20 + 16*len(m.Blocks) + len(m.Data) }

// DiskWriteVRes acknowledges a vectored write. Err is OK only when every
// block committed; otherwise it carries the first failure and Errs holds
// the per-block outcomes (Errs[i] answers Blocks[i]). An OK response
// implies the entire batch is durable.
type DiskWriteVRes struct {
	Req  ReqID
	Err  Errno
	Errs []Errno
}

func (*DiskWriteVRes) Kind() Kind  { return KindSANReply }
func (m *DiskWriteVRes) Size() int { return 9 + len(m.Errs) }

// DiskReadV reads a batch of blocks in one SAN message.
type DiskReadV struct {
	Client NodeID
	Req    ReqID
	Blocks []uint64
}

func (*DiskReadV) Kind() Kind  { return KindSANIO }
func (m *DiskReadV) Size() int { return 20 + 8*len(m.Blocks) }

// DiskReadVRes returns the batch contents: Blocks[i] of the request is
// served at Data[i*BlockSize:(i+1)*BlockSize] with version Vers[i].
// Per-block failures (torn block, out of range) land in Errs[i]; the
// corresponding payload slot is zeros. Unwritten blocks read as zeros
// with Err OK, as in the scalar protocol.
type DiskReadVRes struct {
	Req  ReqID
	Err  Errno
	Errs []Errno
	Vers []uint64
	Data []byte
}

func (*DiskReadVRes) Kind() Kind  { return KindSANReply }
func (m *DiskReadVRes) Size() int { return 9 + len(m.Errs) + 8*len(m.Vers) + len(m.Data) }

// FenceSet instructs a disk to start (On) or stop (off) rejecting all I/O
// from Target. Only servers send it. Fences persist until explicitly
// cleared — the device enforces the denial indefinitely (§1.2).
type FenceSet struct {
	Admin  NodeID
	Req    ReqID
	Target NodeID
	On     bool
}

func (*FenceSet) Kind() Kind { return KindFence }
func (*FenceSet) Size() int  { return 17 }

// FenceRes acknowledges a FenceSet.
type FenceRes struct {
	Req ReqID
	Err Errno
}

func (*FenceRes) Kind() Kind { return KindFence }
func (*FenceRes) Size() int  { return 9 }

// DLockAcquire asks the disk for a GFS-style expiring lock over the block
// range [Start, Start+Count). Used only by the dlock baseline (§5): the
// disk, not a server, is the locking authority, and the lock times out
// after TTL on the disk's clock.
type DLockAcquire struct {
	Client NodeID
	Req    ReqID
	Start  uint64
	Count  uint32
	TTL    time.Duration
}

func (*DLockAcquire) Kind() Kind { return KindSANIO }
func (*DLockAcquire) Size() int  { return 36 }

// DLockRelease releases a dlock before its TTL expires.
type DLockRelease struct {
	Client NodeID
	Req    ReqID
	Start  uint64
	Count  uint32
}

func (*DLockRelease) Kind() Kind { return KindSANIO }
func (*DLockRelease) Size() int  { return 28 }

// DLockRes answers either dlock operation; Err is ErrDLockHeld when the
// range is locked by another initiator.
type DLockRes struct {
	Req ReqID
	Err Errno
}

func (*DLockRes) Kind() Kind { return KindSANReply }
func (*DLockRes) Size() int  { return 9 }
