// Package msg defines the identifiers and wire messages exchanged by
// Storage Tank participants: client↔server control-network traffic and
// client/server↔disk SAN traffic. The same types are passed by pointer on
// the simulated networks and gob-encoded by the live TCP transport.
//
// Delivery semantics follow the paper (§3): the underlying networks are
// connection-less datagram fabrics; requests carry per-client request IDs
// so the reliable-request layer in internal/core can provide retries with
// at-most-once execution, and replies are either acknowledgments (ACK,
// possibly carrying a result) or negative acknowledgments (NACK).
package msg

import "fmt"

// NodeID identifies a participant: a client, a server, or a disk. IDs are
// unique across the whole installation regardless of role.
type NodeID int32

// None is the zero NodeID, never assigned to a node.
const None NodeID = 0

func (n NodeID) String() string { return fmt.Sprintf("n%d", int32(n)) }

// ObjectID names a file-system object (an inode number). Locking in
// Storage Tank is logical — it names objects, not disk address ranges.
type ObjectID uint64

func (o ObjectID) String() string { return fmt.Sprintf("ino%d", uint64(o)) }

// ReqID is a per-client monotonically increasing request identifier, the
// paper's "version numbers for at-most-once delivery semantics".
type ReqID uint64

// Epoch numbers a client's registration with a server. After a lease
// expires and the client's locks are stolen, the client must rejoin and is
// issued a new epoch; messages from older epochs are NACKed.
type Epoch uint32

// DemandID identifies a server-initiated lock demand (revocation request).
type DemandID uint64

// Handle identifies an open file instance at the server.
type Handle uint64

// Status is the transport-level outcome of a request.
type Status uint8

const (
	// ACK: the server executed (or had already executed) the request; a
	// client-initiated ACKed message renews the client's lease from its
	// send time tC1.
	ACK Status = iota + 1
	// NACK: the server refuses service because it considers the client
	// suspect or expired (it has started, or finished, a lease timeout for
	// it) or the request's epoch is stale. A NACK never renews a lease; on
	// receipt the client knows its cache is invalid and enters phase 3
	// directly (§3.3).
	NACK
)

func (s Status) String() string {
	switch s {
	case ACK:
		return "ACK"
	case NACK:
		return "NACK"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Errno is the file-system level result code carried inside an ACK. A NACK
// carries no Errno: it is not an answer to the request at all.
type Errno uint8

const (
	OK Errno = iota
	ErrNoEnt
	ErrExist
	ErrNotDir
	ErrIsDir
	ErrBadHandle
	ErrConflict  // lock conflict that the server will not queue (trylock)
	ErrStale     // stale epoch
	ErrNoSpace   // allocator exhausted
	ErrFenced    // disk refused I/O: initiator is fenced
	ErrRange     // block address out of range
	ErrNotHolder // lock operation by a non-holder
	ErrDLockHeld // GFS-baseline disk lock is held by another initiator
	ErrMedia     // disk media failure: the stable store could not serve/commit
	ErrTorn      // disk media detected a torn write (checksum mismatch)
	ErrNotActive // replica refused service: it does not hold the authority lease
)

var errnoNames = [...]string{
	OK:           "OK",
	ErrNoEnt:     "ErrNoEnt",
	ErrExist:     "ErrExist",
	ErrNotDir:    "ErrNotDir",
	ErrIsDir:     "ErrIsDir",
	ErrBadHandle: "ErrBadHandle",
	ErrConflict:  "ErrConflict",
	ErrStale:     "ErrStale",
	ErrNoSpace:   "ErrNoSpace",
	ErrFenced:    "ErrFenced",
	ErrRange:     "ErrRange",
	ErrNotHolder: "ErrNotHolder",
	ErrDLockHeld: "ErrDLockHeld",
	ErrMedia:     "ErrMedia",
	ErrTorn:      "ErrTorn",
	ErrNotActive: "ErrNotActive",
}

func (e Errno) String() string {
	if int(e) < len(errnoNames) {
		return errnoNames[e]
	}
	return fmt.Sprintf("Errno(%d)", uint8(e))
}

// Error makes Errno usable as an error. OK is still non-nil when wrapped;
// use Errno.Or to convert to a nil error.
func (e Errno) Error() string { return e.String() }

// Or returns nil when the Errno is OK, and the Errno otherwise.
func (e Errno) Or() error {
	if e == OK {
		return nil
	}
	return e
}

// Kind classifies messages for accounting. Every message type reports its
// Kind so the stats layer can attribute traffic to protocol functions —
// in particular, which messages exist solely for lease maintenance.
type Kind uint8

const (
	KindControlReq   Kind = iota + 1 // file-system/lock request, client→server
	KindControlReply                 // ACK/NACK reply, server→client
	KindKeepAlive                    // lease-only NULL message (§3.1)
	KindDemand                       // server-initiated lock demand
	KindDemandAck                    // client's immediate ack of a demand
	KindSANIO                        // data block read/write on the SAN
	KindSANReply                     // disk's reply
	KindFence                        // fence administration on the SAN
	KindLeaseAdmin                   // baseline lease traffic (heartbeats, per-object renewals)
	KindShard                        // server-to-server shard handoff traffic
	KindReplica                      // replica-to-replica authority-lease negotiation
)

var kindNames = [...]string{
	KindControlReq:   "control-req",
	KindControlReply: "control-reply",
	KindKeepAlive:    "keepalive",
	KindDemand:       "demand",
	KindDemandAck:    "demand-ack",
	KindSANIO:        "san-io",
	KindSANReply:     "san-reply",
	KindFence:        "fence",
	KindLeaseAdmin:   "lease-admin",
	KindShard:        "shard",
	KindReplica:      "replica",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is anything that can travel on a network.
type Message interface {
	Kind() Kind
	// Size returns the approximate wire size in bytes, used for byte
	// accounting on the simulated networks (the live transport measures
	// real encoded sizes).
	Size() int
}

// Envelope is a message in flight. The unexported borrow field tracks
// ownership of pooled buffers the payload may alias (see Borrowed); it
// rides along when the envelope is copied by value and is invisible to
// gob.
type Envelope struct {
	From, To NodeID
	Payload  Message

	borrow *borrowCell
}
