package msg

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"
)

// The codec micro-benchmarks: per-message encode/decode cost of the
// binary wire format against gob, on the hottest frame on the SAN — a
// DiskWrite carrying one 4 KiB block. The gob benchmarks reuse a single
// encoder/decoder pair, matching the wire layer's per-connection
// streams (type descriptors are amortized exactly as they are live).

func benchDiskWrite() *Envelope {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	return &Envelope{
		From: 10, To: 1000,
		Payload: &DiskWrite{Client: 10, Req: 77, Block: 42, Data: data, Ver: 3},
	}
}

func BenchmarkBinaryEncodeDiskWrite(b *testing.B) {
	env := benchDiskWrite()
	meta, _, err := BinarySize(env)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, meta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeBinary(body, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecodeDiskWrite(b *testing.B) {
	env := benchDiskWrite()
	meta, tail, err := BinarySize(env)
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, meta, meta+len(tail))
	if err := EncodeBinary(frame, env); err != nil {
		b.Fatal(err)
	}
	frame = append(frame, tail...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobEncodeDiskWrite(b *testing.B) {
	RegisterGob()
	env := benchDiskWrite()
	enc := gob.NewEncoder(io.Discard)
	if err := enc.Encode(env); err != nil {
		b.Fatal(err) // prime the type descriptors outside the loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobDecodeDiskWrite(b *testing.B) {
	RegisterGob()
	env := benchDiskWrite()
	// Pre-encode b.N messages on one stream so the decode loop sees the
	// same amortized type descriptors a live connection would.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(env); err != nil {
			b.Fatal(err)
		}
	}
	dec := gob.NewDecoder(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out Envelope
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}
