package msg

// Replica-to-replica authority-lease negotiation (PaxosLease-style; see
// internal/replica). The lease authority for a shard is elected among M
// diskless replicas: a candidate opens a ballot (ReplicaPrepare), collects
// promises from a majority of acceptors (ReplicaPromise), proposes itself
// as the lease holder (ReplicaPropose), and holds the authority lease once
// a majority accepts (ReplicaAccept). Nothing is written to disk: safety
// comes from acceptors holding accepted state strictly longer — on their
// own rate-bounded clocks — than any holder believes its lease runs.

// ReplicaPrepare opens ballot Ballot at the acceptors: "promise to ignore
// lower ballots, and tell me of any lease you have accepted".
type ReplicaPrepare struct {
	From   NodeID
	Ballot uint64
}

func (*ReplicaPrepare) Kind() Kind { return KindReplica }
func (*ReplicaPrepare) Size() int  { return 13 }

// ReplicaPromise answers a ReplicaPrepare. OK=false rejects the ballot (a
// higher one was promised). An OK promise carries the acceptor's accepted
// state, if any has not yet expired on its local clock: the ballot and
// holder of the lease it last accepted. A candidate that learns of an
// unexpired lease held by another replica must back off.
type ReplicaPromise struct {
	From   NodeID
	Ballot uint64
	OK     bool
	// Accepted is true when AcceptedBallot/AcceptedHolder carry a live
	// accepted lease (the zero holder is not distinguishable otherwise).
	Accepted       bool
	AcceptedBallot uint64
	AcceptedHolder NodeID
}

func (*ReplicaPromise) Kind() Kind { return KindReplica }
func (*ReplicaPromise) Size() int  { return 27 }

// ReplicaPropose asks the acceptors to accept Holder as the authority
// lease holder under Ballot for the group's fixed lease term.
type ReplicaPropose struct {
	From   NodeID
	Ballot uint64
	Holder NodeID
}

func (*ReplicaPropose) Kind() Kind { return KindReplica }
func (*ReplicaPropose) Size() int  { return 17 }

// ReplicaAccept answers a ReplicaPropose. OK=false rejects (a higher
// ballot was promised after the prepare round).
type ReplicaAccept struct {
	From   NodeID
	Ballot uint64
	OK     bool
}

func (*ReplicaAccept) Kind() Kind { return KindReplica }
func (*ReplicaAccept) Size() int  { return 14 }

// ReplicaInfo asks a server for its replica role and current ballot — an
// operator query (tankcli's `role` command, the SIGUSR1 dump). It is
// answered before registration/epoch checks, like Rejoin, because an
// operator must be able to ask a passive replica who is active.
type ReplicaInfo struct{ ReqHeader }

func (*ReplicaInfo) Kind() Kind { return KindReplica }
func (*ReplicaInfo) Size() int  { return 24 }

// Replica roles as reported by ReplicaInfoRes and the server.<id>.role
// gauge.
const (
	RolePassive   uint8 = 0
	RoleCandidate uint8 = 1
	RoleActive    uint8 = 2
)

// RoleName renders a replica role constant.
func RoleName(r uint8) string {
	switch r {
	case RolePassive:
		return "passive"
	case RoleCandidate:
		return "candidate"
	case RoleActive:
		return "active"
	}
	return "invalid"
}

// ReplicaInfoRes reports a server's view of the replica group: its own
// role, the last ballot it opened or accepted, and the replica it believes
// currently holds the authority lease (None when unknown or standalone).
type ReplicaInfoRes struct {
	Role   uint8
	Ballot uint64
	Active NodeID
}

func (ReplicaInfoRes) resultMarker()   {}
func (ReplicaInfoRes) resultSize() int { return 13 }
