package msg

import "sync/atomic"

// borrowCell is the reference count behind a borrowed envelope. It lives
// in an unexported pointer field of Envelope so that envelope values can
// be copied freely (every copy shares the cell) and so that gob — which
// ignores unexported fields — never tries to encode it.
type borrowCell struct {
	refs atomic.Int32
	free func()
}

// Borrowed marks the envelope's payload as aliasing a borrowed buffer
// (typically a pooled receive frame). free runs exactly once, when the
// initial reference and every Retain have been matched by Release. The
// transport attaches this on receive and releases after the handler
// returns; a handler that keeps payload data past its own return must
// Retain first (or copy the data).
//
//tank:owns free
func (e *Envelope) Borrowed(free func()) {
	c := &borrowCell{free: free}
	c.refs.Store(1)
	e.borrow = c
}

// Retain takes an additional reference on the envelope's borrowed
// buffer, keeping it alive past the handler's return. No-op for
// envelopes that borrow nothing (the simulated fabric, gob receive).
func (e *Envelope) Retain() {
	if e.borrow != nil {
		e.borrow.refs.Add(1)
	}
}

// Release drops one reference; the last release frees the borrow. The
// payload (and anything aliasing it) must not be touched afterwards.
// No-op for envelopes that borrow nothing.
func (e *Envelope) Release() {
	if e.borrow != nil && e.borrow.refs.Add(-1) == 0 {
		e.borrow.free()
	}
}
