package msg

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestLockModeCompatible(t *testing.T) {
	cases := []struct {
		a, b LockMode
		want bool
	}{
		{LockNone, LockNone, true},
		{LockNone, LockShared, true},
		{LockNone, LockExclusive, true},
		{LockShared, LockShared, true},
		{LockShared, LockExclusive, false},
		{LockExclusive, LockExclusive, false},
	}
	for _, c := range cases {
		if got := c.a.Compatible(c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Compatible(c.a); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLockModeCompatibleSymmetryProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		ma, mb := LockMode(a%3), LockMode(b%3)
		return ma.Compatible(mb) == mb.Compatible(ma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockModeCovers(t *testing.T) {
	if !LockExclusive.Covers(LockShared) || !LockExclusive.Covers(LockNone) {
		t.Fatal("exclusive must cover weaker modes")
	}
	if LockShared.Covers(LockExclusive) {
		t.Fatal("shared must not cover exclusive")
	}
	if !LockShared.Covers(LockShared) {
		t.Fatal("a mode covers itself")
	}
}

func TestErrnoStringsAndOr(t *testing.T) {
	if OK.Or() != nil {
		t.Fatal("OK.Or() must be nil")
	}
	if ErrNoEnt.Or() == nil {
		t.Fatal("ErrNoEnt.Or() must be non-nil")
	}
	if ErrNoEnt.Error() != "ErrNoEnt" {
		t.Fatalf("Error() = %q", ErrNoEnt.Error())
	}
	if Errno(200).String() == "" {
		t.Fatal("unknown errno must still format")
	}
}

func TestStatusAndKindStrings(t *testing.T) {
	if ACK.String() != "ACK" || NACK.String() != "NACK" {
		t.Fatal("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status must format")
	}
	if KindKeepAlive.String() != "keepalive" {
		t.Fatalf("Kind string = %q", KindKeepAlive.String())
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind must format")
	}
}

func TestGobRoundTripEnvelope(t *testing.T) {
	RegisterGob()
	RegisterGob() // idempotent
	reqs := []Message{
		&Lookup{ReqHeader: ReqHeader{Client: 3, Req: 7, Epoch: 1}, Path: "/a/b"},
		&KeepAlive{ReqHeader: ReqHeader{Client: 3, Req: 8, Epoch: 1}},
		&LockAcquire{ReqHeader: ReqHeader{Client: 3, Req: 9, Epoch: 1}, Ino: 42, Mode: LockExclusive},
		&Reply{Client: 3, Req: 9, Status: ACK, Err: OK, Body: LockRes{Mode: LockExclusive}},
		&Reply{Client: 3, Req: 10, Status: NACK},
		&Demand{ID: 5, Ino: 42, Mode: LockShared, Server: 1},
		&DiskWrite{Client: 3, Req: 11, Block: 100, Data: []byte("hello"), Ver: 9},
		&DiskWriteV{Client: 3, Req: 13, Blocks: []BlockVec{{Block: 4, Ver: 1}},
			Data: make([]byte, 4096)},
		&DiskWriteVRes{Req: 13, Errs: []Errno{OK}},
		&DiskReadV{Client: 3, Req: 14, Blocks: []uint64{4, 5}},
		&DiskReadVRes{Req: 14, Errs: []Errno{OK, OK}, Vers: []uint64{1, 2},
			Data: make([]byte, 8192)},
		&Reply{Client: 3, Req: 12, Status: ACK, Body: BlocksRes{
			Attr:   Attr{Ino: 42, Size: 8192, Version: 3, Nlink: 1},
			Blocks: []BlockRef{{Disk: 9, Num: 0}, {Disk: 9, Num: 1}},
		}},
	}
	for _, m := range reqs {
		var buf bytes.Buffer
		env := Envelope{From: 3, To: 1, Payload: m}
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		var out Envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if out.From != 3 || out.To != 1 {
			t.Fatalf("envelope header lost: %+v", out)
		}
		if out.Payload.Kind() != m.Kind() {
			t.Fatalf("kind changed: %v -> %v", m.Kind(), out.Payload.Kind())
		}
	}
}

func TestGobReplyBodyTypes(t *testing.T) {
	RegisterGob()
	r := &Reply{Client: 1, Req: 2, Status: ACK, Body: ReaddirRes{
		Entries: []DirEntry{{Name: "x", Ino: 5, IsDir: true}},
	}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Envelope{From: 1, To: 2, Payload: r}); err != nil {
		t.Fatal(err)
	}
	var out Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := out.Payload.(*Reply).Body.(ReaddirRes)
	if len(got.Entries) != 1 || got.Entries[0].Name != "x" || got.Entries[0].Ino != 5 {
		t.Fatalf("body mismatch: %+v", got)
	}
}

func TestSizesPositive(t *testing.T) {
	msgs := []Message{
		&Rejoin{}, &KeepAlive{}, &Lookup{Path: "p"}, &Create{Path: "p"},
		&Unlink{Path: "p"}, &Open{}, &Close{}, &GetAttr{}, &SetAttr{},
		&Readdir{}, &GetBlocks{}, &AllocBlocks{}, &LockAcquire{},
		&LockRelease{}, &LockDowngraded{}, &Heartbeat{},
		&RenewObjects{Inos: []ObjectID{1, 2}}, &FuncRead{},
		&FuncWrite{Data: make([]byte, 10)},
		&Reply{Body: FuncReadRes{Data: make([]byte, 10)}},
		&Demand{}, &DemandAck{},
		&DiskRead{}, &DiskReadRes{Data: make([]byte, 4)}, &DiskWrite{},
		&DiskWriteRes{}, &DiskWriteV{Blocks: []BlockVec{{}}}, &DiskWriteVRes{},
		&DiskReadV{}, &DiskReadVRes{}, &FenceSet{}, &FenceRes{}, &DLockAcquire{},
		&DLockRelease{}, &DLockRes{},
	}
	for _, m := range msgs {
		if m.Size() <= 0 {
			t.Errorf("%T.Size() = %d, want > 0", m, m.Size())
		}
		if m.Kind().String() == "" {
			t.Errorf("%T has empty kind string", m)
		}
	}
}

func TestRenewObjectsSizeScales(t *testing.T) {
	small := (&RenewObjects{Inos: make([]ObjectID, 1)}).Size()
	big := (&RenewObjects{Inos: make([]ObjectID, 100)}).Size()
	if big <= small {
		t.Fatal("per-object renewal size must scale with object count")
	}
}
