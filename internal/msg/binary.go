package msg

// The hand-rolled binary wire layout (DESIGN.md §12). Every frame body is
//
//	from int32 | to int32 | type uint8 | payload
//
// with all integers big-endian and every payload a fixed-layout field
// sequence: fixed-width scalars in declaration order, strings and byte
// slices length-prefixed with uint32, struct vectors count-prefixed with
// uint32. The one irregularity is deliberate: the bulk Data field of the
// four page-carrying types (DiskWrite, DiskWriteV, DiskReadRes,
// DiskReadVRes) and of the two function-ship types (FuncWrite,
// FuncReadRes) is encoded LAST, so the sender can transmit it as a
// scatter-gather tail directly from the caller's page buffer — its length
// prefix sits in the metadata section, the bytes themselves never get
// copied into the frame.
//
// On decode the four SAN page types alias the receive buffer (zero-copy;
// the transport's borrow/release protocol governs the buffer's lifetime),
// while FuncWrite.Data and FuncReadRes.Data are copied out — their
// consumers hand the data to retry loops and user callbacks that outlive
// the handler, so an alias would dangle.
//
// BinarySize, EncodeBinary, and DecodeBinary must agree exactly; the msg
// test suite round-trips every type in AllMessages/AllResults through
// them and cross-checks against gob, so a type added to the registry
// without a layout here fails tests, not connections.

import (
	"encoding/binary"
	"errors"
	"time"
)

// Binary wire type identifiers. The list is append-only: reusing or
// renumbering an identifier breaks mixed-version interoperability.
const (
	btInvalid uint8 = iota
	btRejoin
	btKeepAlive
	btLookup
	btCreate
	btUnlink
	btRename
	btTruncate
	btOpen
	btClose
	btGetAttr
	btSetAttr
	btReaddir
	btGetBlocks
	btAllocBlocks
	btLockAcquire
	btLockRelease
	btLockDowngraded
	btReassert
	btHeartbeat
	btRenewObjects
	btFuncRead
	btFuncWrite
	btReply
	btDemand
	btDemandAck
	btDiskRead
	btDiskReadRes
	btDiskWrite
	btDiskWriteRes
	btDiskWriteV
	btDiskWriteVRes
	btDiskReadV
	btDiskReadVRes
	btFenceSet
	btFenceRes
	btDLockAcquire
	btDLockRelease
	btDLockRes
	btShardMigrate
	btShardMigrateRes
	btReplicaPrepare
	btReplicaPromise
	btReplicaPropose
	btReplicaAccept
	btReplicaInfo
)

// Nested result identifiers for Reply bodies. brNil means Body == nil.
const (
	brNil uint8 = iota
	brLookupRes
	brCreateRes
	brOpenRes
	brAttrRes
	brReaddirRes
	brBlocksRes
	brAllocRes
	brLockRes
	brRejoinRes
	brReassertRes
	brFuncReadRes
	brReplicaInfoRes
)

var (
	// ErrNoBinaryLayout reports a payload (or Reply body) type the binary
	// codec has no layout for. Seeing it means a type was added to the
	// registry without extending this file.
	ErrNoBinaryLayout = errors.New("msg: no binary layout for payload type")
	// ErrCorruptFrame reports a frame body that does not parse: truncated
	// fields, counts larger than the remaining bytes, trailing garbage, or
	// an unknown type identifier.
	ErrCorruptFrame = errors.New("msg: corrupt frame")
)

const (
	binHeaderLen = 9  // from i32 | to i32 | type u8
	binReqHdrLen = 16 // client i32 | req u64 | epoch u32
	binAttrLen   = 29 // ino u64 | isdir u8 | size u64 | version u64 | nlink u32
)

// BinarySize returns the metadata length of env's frame body and the
// zero-copy data tail. The full body is the metadata section followed
// immediately by the tail; EncodeBinary writes exactly meta bytes and the
// caller transmits (or appends) the tail itself.
//
//tank:hotpath
func BinarySize(env *Envelope) (meta int, tail []byte, err error) {
	switch m := env.Payload.(type) {
	case *Rejoin, *KeepAlive, *Heartbeat:
		meta = binReqHdrLen
	case *Lookup:
		meta = binReqHdrLen + 4 + len(m.Path)
	case *Create:
		meta = binReqHdrLen + 4 + len(m.Path) + 1
	case *Unlink:
		meta = binReqHdrLen + 4 + len(m.Path)
	case *Rename:
		meta = binReqHdrLen + 8 + len(m.OldPath) + len(m.NewPath)
	case *Truncate:
		meta = binReqHdrLen + 12
	case *Open:
		meta = binReqHdrLen + 9
	case *Close:
		meta = binReqHdrLen + 16
	case *GetAttr:
		meta = binReqHdrLen + 8
	case *SetAttr:
		meta = binReqHdrLen + 16
	case *Readdir:
		meta = binReqHdrLen + 8
	case *GetBlocks:
		meta = binReqHdrLen + 8
	case *AllocBlocks:
		meta = binReqHdrLen + 12
	case *LockAcquire:
		meta = binReqHdrLen + 9
	case *LockRelease:
		meta = binReqHdrLen + 9
	case *LockDowngraded:
		meta = binReqHdrLen + 17
	case *Reassert:
		meta = binReqHdrLen + 4 + 9*len(m.Locks)
	case *RenewObjects:
		meta = binReqHdrLen + 4 + 8*len(m.Inos)
	case *FuncRead:
		meta = binReqHdrLen + 20
	case *FuncWrite:
		meta = binReqHdrLen + 20
		tail = m.Data
	case *Reply:
		rm, rt, rerr := binaryResultSize(m.Body)
		if rerr != nil {
			return 0, nil, rerr
		}
		meta = 14 + rm
		tail = rt
	case *Demand:
		meta = 21
	case *DemandAck:
		meta = 12
	case *DiskRead:
		meta = 20
	case *DiskReadRes:
		meta = 21
		tail = m.Data
	case *DiskWrite:
		meta = 32
		tail = m.Data
	case *DiskWriteRes:
		meta = 9
	case *DiskWriteV:
		meta = 20 + 16*len(m.Blocks)
		tail = m.Data
	case *DiskWriteVRes:
		meta = 13 + len(m.Errs)
	case *DiskReadV:
		meta = 16 + 8*len(m.Blocks)
	case *DiskReadVRes:
		meta = 21 + len(m.Errs) + 8*len(m.Vers)
		tail = m.Data
	case *FenceSet:
		meta = 17
	case *FenceRes:
		meta = 9
	case *DLockAcquire:
		meta = 32
	case *DLockRelease:
		meta = 24
	case *DLockRes:
		meta = 9
	case *ShardMigrate:
		meta = 49 + len(m.Path) + 12*len(m.Blocks)
	case *ShardMigrateRes:
		meta = 9
	case *ReplicaPrepare:
		meta = 12
	case *ReplicaPromise:
		meta = 26
	case *ReplicaPropose:
		meta = 16
	case *ReplicaAccept:
		meta = 13
	case *ReplicaInfo:
		meta = binReqHdrLen
	default:
		return 0, nil, ErrNoBinaryLayout
	}
	return binHeaderLen + meta, tail, nil
}

// binaryResultSize sizes a Reply body: result-type byte + fields.
//
//tank:hotpath
func binaryResultSize(res Result) (meta int, tail []byte, err error) {
	switch r := res.(type) {
	case nil:
		return 1, nil, nil
	case LookupRes, CreateRes, AttrRes:
		return 1 + binAttrLen, nil, nil
	case OpenRes:
		return 1 + 8 + binAttrLen, nil, nil
	case ReaddirRes:
		n := 1 + 4
		for i := range r.Entries {
			n += 4 + len(r.Entries[i].Name) + 9
		}
		return n, nil, nil
	case BlocksRes:
		return 1 + binAttrLen + 4 + 12*len(r.Blocks), nil, nil
	case AllocRes:
		return 1 + binAttrLen + 4 + 12*len(r.Blocks), nil, nil
	case LockRes:
		return 2, nil, nil
	case RejoinRes, ReassertRes:
		return 5, nil, nil
	case FuncReadRes:
		return 1 + 4, r.Data, nil
	case ReplicaInfoRes:
		return 1 + 13, nil, nil
	default:
		return 0, nil, ErrNoBinaryLayout
	}
}

// wr is the offset-tracking frame writer. Its methods assume the caller
// sized the destination with BinarySize; an undersized buffer panics,
// which the round-trip tests would catch as a layout/size disagreement.
type wr struct {
	b   []byte
	off int
}

//tank:hotpath
func (w *wr) u8(v uint8) { w.b[w.off] = v; w.off++ }

//tank:hotpath
func (w *wr) b1(v bool) {
	var x uint8
	if v {
		x = 1
	}
	w.u8(x)
}

//tank:hotpath
func (w *wr) u32(v uint32) {
	binary.BigEndian.PutUint32(w.b[w.off:], v)
	w.off += 4
}

//tank:hotpath
func (w *wr) u64(v uint64) {
	binary.BigEndian.PutUint64(w.b[w.off:], v)
	w.off += 8
}

//tank:hotpath
func (w *wr) i32(v int32) { w.u32(uint32(v)) }

//tank:hotpath
func (w *wr) i64(v int64) { w.u64(uint64(v)) }

//tank:hotpath
func (w *wr) str(s string) {
	w.u32(uint32(len(s)))
	copy(w.b[w.off:], s)
	w.off += len(s)
}

//tank:hotpath
func (w *wr) hdr(h *ReqHeader) {
	w.i32(int32(h.Client))
	w.u64(uint64(h.Req))
	w.u32(uint32(h.Epoch))
}

//tank:hotpath
func (w *wr) attr(a *Attr) {
	w.u64(uint64(a.Ino))
	w.b1(a.IsDir)
	w.u64(a.Size)
	w.u64(a.Version)
	w.u32(a.Nlink)
}

// EncodeBinary writes env's metadata section — everything except the
// zero-copy tail reported by BinarySize — into dst, which must be exactly
// meta bytes long. Steady-state encoding performs no allocation: page
// data stays in the caller's buffers and travels as the frame tail.
//
//tank:hotpath
func EncodeBinary(dst []byte, env *Envelope) error {
	w := wr{b: dst}
	w.i32(int32(env.From))
	w.i32(int32(env.To))
	switch m := env.Payload.(type) {
	case *Rejoin:
		w.u8(btRejoin)
		w.hdr(&m.ReqHeader)
	case *KeepAlive:
		w.u8(btKeepAlive)
		w.hdr(&m.ReqHeader)
	case *Heartbeat:
		w.u8(btHeartbeat)
		w.hdr(&m.ReqHeader)
	case *Lookup:
		w.u8(btLookup)
		w.hdr(&m.ReqHeader)
		w.str(m.Path)
	case *Create:
		w.u8(btCreate)
		w.hdr(&m.ReqHeader)
		w.str(m.Path)
		w.b1(m.IsDir)
	case *Unlink:
		w.u8(btUnlink)
		w.hdr(&m.ReqHeader)
		w.str(m.Path)
	case *Rename:
		w.u8(btRename)
		w.hdr(&m.ReqHeader)
		w.str(m.OldPath)
		w.str(m.NewPath)
	case *Truncate:
		w.u8(btTruncate)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u32(m.Blocks)
	case *Open:
		w.u8(btOpen)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.b1(m.Write)
	case *Close:
		w.u8(btClose)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u64(uint64(m.Handle))
	case *GetAttr:
		w.u8(btGetAttr)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
	case *SetAttr:
		w.u8(btSetAttr)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u64(m.NewSize)
	case *Readdir:
		w.u8(btReaddir)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
	case *GetBlocks:
		w.u8(btGetBlocks)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
	case *AllocBlocks:
		w.u8(btAllocBlocks)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u32(m.Count)
	case *LockAcquire:
		w.u8(btLockAcquire)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u8(uint8(m.Mode))
	case *LockRelease:
		w.u8(btLockRelease)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u8(uint8(m.To))
	case *LockDowngraded:
		w.u8(btLockDowngraded)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u8(uint8(m.To))
		w.u64(uint64(m.Demand))
	case *Reassert:
		w.u8(btReassert)
		w.hdr(&m.ReqHeader)
		w.u32(uint32(len(m.Locks)))
		for i := range m.Locks {
			w.u64(uint64(m.Locks[i].Ino))
			w.u8(uint8(m.Locks[i].Mode))
		}
	case *RenewObjects:
		w.u8(btRenewObjects)
		w.hdr(&m.ReqHeader)
		w.u32(uint32(len(m.Inos)))
		for _, ino := range m.Inos {
			w.u64(uint64(ino))
		}
	case *FuncRead:
		w.u8(btFuncRead)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u64(m.Offset)
		w.u32(m.Length)
	case *FuncWrite:
		w.u8(btFuncWrite)
		w.hdr(&m.ReqHeader)
		w.u64(uint64(m.Ino))
		w.u64(m.Offset)
		w.u32(uint32(len(m.Data))) // tail
	case *Reply:
		w.u8(btReply)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Status))
		w.u8(uint8(m.Err))
		if err := encodeResult(&w, m.Body); err != nil {
			return err
		}
	case *Demand:
		w.u8(btDemand)
		w.u64(uint64(m.ID))
		w.u64(uint64(m.Ino))
		w.u8(uint8(m.Mode))
		w.i32(int32(m.Server))
	case *DemandAck:
		w.u8(btDemandAck)
		w.i32(int32(m.Client))
		w.u64(uint64(m.ID))
	case *DiskRead:
		w.u8(btDiskRead)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u64(m.Block)
	case *DiskReadRes:
		w.u8(btDiskReadRes)
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Err))
		w.u64(m.Ver)
		w.u32(uint32(len(m.Data))) // tail
	case *DiskWrite:
		w.u8(btDiskWrite)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u64(m.Block)
		w.u64(m.Ver)
		w.u32(uint32(len(m.Data))) // tail
	case *DiskWriteRes:
		w.u8(btDiskWriteRes)
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Err))
	case *DiskWriteV:
		w.u8(btDiskWriteV)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u32(uint32(len(m.Blocks)))
		for i := range m.Blocks {
			w.u64(m.Blocks[i].Block)
			w.u64(m.Blocks[i].Ver)
		}
		w.u32(uint32(len(m.Data))) // tail
	case *DiskWriteVRes:
		w.u8(btDiskWriteVRes)
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Err))
		w.u32(uint32(len(m.Errs)))
		for _, e := range m.Errs {
			w.u8(uint8(e))
		}
	case *DiskReadV:
		w.u8(btDiskReadV)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u32(uint32(len(m.Blocks)))
		for _, b := range m.Blocks {
			w.u64(b)
		}
	case *DiskReadVRes:
		w.u8(btDiskReadVRes)
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Err))
		w.u32(uint32(len(m.Errs)))
		for _, e := range m.Errs {
			w.u8(uint8(e))
		}
		w.u32(uint32(len(m.Vers)))
		for _, v := range m.Vers {
			w.u64(v)
		}
		w.u32(uint32(len(m.Data))) // tail
	case *FenceSet:
		w.u8(btFenceSet)
		w.i32(int32(m.Admin))
		w.u64(uint64(m.Req))
		w.i32(int32(m.Target))
		w.b1(m.On)
	case *FenceRes:
		w.u8(btFenceRes)
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Err))
	case *DLockAcquire:
		w.u8(btDLockAcquire)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u64(m.Start)
		w.u32(m.Count)
		w.i64(int64(m.TTL))
	case *DLockRelease:
		w.u8(btDLockRelease)
		w.i32(int32(m.Client))
		w.u64(uint64(m.Req))
		w.u64(m.Start)
		w.u32(m.Count)
	case *DLockRes:
		w.u8(btDLockRes)
		w.u64(uint64(m.Req))
		w.u8(uint8(m.Err))
	case *ShardMigrate:
		w.u8(btShardMigrate)
		w.i32(int32(m.Src))
		w.u64(m.HID)
		w.str(m.Path)
		w.attr(&m.Attr)
		w.u32(uint32(len(m.Blocks)))
		for i := range m.Blocks {
			w.i32(int32(m.Blocks[i].Disk))
			w.u64(m.Blocks[i].Num)
		}
	case *ShardMigrateRes:
		w.u8(btShardMigrateRes)
		w.u64(m.HID)
		w.u8(uint8(m.Err))
	case *ReplicaPrepare:
		w.u8(btReplicaPrepare)
		w.i32(int32(m.From))
		w.u64(m.Ballot)
	case *ReplicaPromise:
		w.u8(btReplicaPromise)
		w.i32(int32(m.From))
		w.u64(m.Ballot)
		w.b1(m.OK)
		w.b1(m.Accepted)
		w.u64(m.AcceptedBallot)
		w.i32(int32(m.AcceptedHolder))
	case *ReplicaPropose:
		w.u8(btReplicaPropose)
		w.i32(int32(m.From))
		w.u64(m.Ballot)
		w.i32(int32(m.Holder))
	case *ReplicaAccept:
		w.u8(btReplicaAccept)
		w.i32(int32(m.From))
		w.u64(m.Ballot)
		w.b1(m.OK)
	case *ReplicaInfo:
		w.u8(btReplicaInfo)
		w.hdr(&m.ReqHeader)
	default:
		return ErrNoBinaryLayout
	}
	if w.off != len(dst) {
		return ErrNoBinaryLayout
	}
	return nil
}

// encodeResult writes a Reply body: result-type byte + fields. The
// FuncReadRes data rides as the frame tail, like the SAN page payloads.
//
//tank:hotpath
func encodeResult(w *wr, res Result) error {
	switch r := res.(type) {
	case nil:
		w.u8(brNil)
	case LookupRes:
		w.u8(brLookupRes)
		w.attr(&r.Attr)
	case CreateRes:
		w.u8(brCreateRes)
		w.attr(&r.Attr)
	case OpenRes:
		w.u8(brOpenRes)
		w.u64(uint64(r.Handle))
		w.attr(&r.Attr)
	case AttrRes:
		w.u8(brAttrRes)
		w.attr(&r.Attr)
	case ReaddirRes:
		w.u8(brReaddirRes)
		w.u32(uint32(len(r.Entries)))
		for i := range r.Entries {
			e := &r.Entries[i]
			w.str(e.Name)
			w.u64(uint64(e.Ino))
			w.b1(e.IsDir)
		}
	case BlocksRes:
		w.u8(brBlocksRes)
		w.attr(&r.Attr)
		w.u32(uint32(len(r.Blocks)))
		for i := range r.Blocks {
			w.i32(int32(r.Blocks[i].Disk))
			w.u64(r.Blocks[i].Num)
		}
	case AllocRes:
		w.u8(brAllocRes)
		w.attr(&r.Attr)
		w.u32(uint32(len(r.Blocks)))
		for i := range r.Blocks {
			w.i32(int32(r.Blocks[i].Disk))
			w.u64(r.Blocks[i].Num)
		}
	case LockRes:
		w.u8(brLockRes)
		w.u8(uint8(r.Mode))
	case RejoinRes:
		w.u8(brRejoinRes)
		w.u32(uint32(r.Epoch))
	case ReassertRes:
		w.u8(brReassertRes)
		w.u32(uint32(r.Epoch))
	case FuncReadRes:
		w.u8(brFuncReadRes)
		w.u32(uint32(len(r.Data))) // tail
	case ReplicaInfoRes:
		w.u8(brReplicaInfoRes)
		w.u8(r.Role)
		w.u64(r.Ballot)
		w.i32(int32(r.Active))
	default:
		return ErrNoBinaryLayout
	}
	return nil
}

// rd is the bounds-checked frame reader. Any out-of-range read sets bad
// and yields zero values; the decoder checks bad once at the end, so a
// corrupt frame can never panic, only fail.
type rd struct {
	b   []byte
	off int
	bad bool
}

//tank:hotpath
func (r *rd) remaining() int { return len(r.b) - r.off }

//tank:hotpath
func (r *rd) u8() uint8 {
	if r.remaining() < 1 {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

//tank:hotpath
func (r *rd) b1() bool { return r.u8() != 0 }

//tank:hotpath
func (r *rd) u32() uint32 {
	if r.remaining() < 4 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

//tank:hotpath
func (r *rd) u64() uint64 {
	if r.remaining() < 8 {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

//tank:hotpath
func (r *rd) i32() int32 { return int32(r.u32()) }

//tank:hotpath
func (r *rd) i64() int64 { return int64(r.u64()) }

// count reads a u32 element count and validates it against the bytes
// actually remaining (elem = minimum encoded size per element), so a
// corrupt count can never drive an oversized allocation.
//
//tank:hotpath
func (r *rd) count(elem int) int {
	n := int(r.u32())
	if n < 0 || n*elem > r.remaining() {
		r.bad = true
		return 0
	}
	return n
}

// take aliases the next n bytes of the frame without copying.
//
//tank:hotpath
func (r *rd) take(n int) []byte {
	if n < 0 || r.remaining() < n {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// bytesZC reads a length-prefixed byte field, ALIASING the frame buffer:
// the result is only valid while the envelope's borrow is held. Empty
// fields decode as nil, matching gob.
func (r *rd) bytesZC() []byte {
	n := int(r.u32())
	if n == 0 {
		if r.bad {
			return nil
		}
		return nil
	}
	return r.take(n)
}

// bytesCopy reads a length-prefixed byte field into fresh memory, for
// fields whose consumers outlive the receive handler.
func (r *rd) bytesCopy() []byte {
	b := r.bytesZC()
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *rd) str() string {
	n := int(r.u32())
	if n == 0 {
		return ""
	}
	return string(r.take(n))
}

func (r *rd) hdr() ReqHeader {
	return ReqHeader{Client: NodeID(r.i32()), Req: ReqID(r.u64()), Epoch: Epoch(r.u32())}
}

func (r *rd) attr() Attr {
	return Attr{
		Ino:     ObjectID(r.u64()),
		IsDir:   r.b1(),
		Size:    r.u64(),
		Version: r.u64(),
		Nlink:   r.u32(),
	}
}

// DecodeBinary parses one frame body produced by BinarySize+EncodeBinary
// (metadata section immediately followed by the tail). The Data fields of
// DiskWrite, DiskWriteV, DiskReadRes, and DiskReadVRes alias body — the
// caller owns body's lifetime and signals it via Envelope.Borrowed —
// while FuncWrite.Data and FuncReadRes.Data are copied out. A frame that
// does not parse returns ErrCorruptFrame; corrupt input never panics.
func DecodeBinary(body []byte) (*Envelope, error) {
	r := rd{b: body}
	from := NodeID(r.i32())
	to := NodeID(r.i32())
	t := r.u8()
	if r.bad {
		return nil, ErrCorruptFrame
	}
	var p Message
	switch t {
	case btRejoin:
		p = &Rejoin{ReqHeader: r.hdr()}
	case btKeepAlive:
		p = &KeepAlive{ReqHeader: r.hdr()}
	case btHeartbeat:
		p = &Heartbeat{ReqHeader: r.hdr()}
	case btLookup:
		p = &Lookup{ReqHeader: r.hdr(), Path: r.str()}
	case btCreate:
		p = &Create{ReqHeader: r.hdr(), Path: r.str(), IsDir: r.b1()}
	case btUnlink:
		p = &Unlink{ReqHeader: r.hdr(), Path: r.str()}
	case btRename:
		p = &Rename{ReqHeader: r.hdr(), OldPath: r.str(), NewPath: r.str()}
	case btTruncate:
		p = &Truncate{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), Blocks: r.u32()}
	case btOpen:
		p = &Open{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), Write: r.b1()}
	case btClose:
		p = &Close{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), Handle: Handle(r.u64())}
	case btGetAttr:
		p = &GetAttr{ReqHeader: r.hdr(), Ino: ObjectID(r.u64())}
	case btSetAttr:
		p = &SetAttr{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), NewSize: r.u64()}
	case btReaddir:
		p = &Readdir{ReqHeader: r.hdr(), Ino: ObjectID(r.u64())}
	case btGetBlocks:
		p = &GetBlocks{ReqHeader: r.hdr(), Ino: ObjectID(r.u64())}
	case btAllocBlocks:
		p = &AllocBlocks{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), Count: r.u32()}
	case btLockAcquire:
		p = &LockAcquire{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), Mode: LockMode(r.u8())}
	case btLockRelease:
		p = &LockRelease{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()), To: LockMode(r.u8())}
	case btLockDowngraded:
		p = &LockDowngraded{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()),
			To: LockMode(r.u8()), Demand: DemandID(r.u64())}
	case btReassert:
		m := &Reassert{ReqHeader: r.hdr()}
		if n := r.count(9); n > 0 {
			m.Locks = make([]LockClaim, n)
			for i := range m.Locks {
				m.Locks[i] = LockClaim{Ino: ObjectID(r.u64()), Mode: LockMode(r.u8())}
			}
		}
		p = m
	case btRenewObjects:
		m := &RenewObjects{ReqHeader: r.hdr()}
		if n := r.count(8); n > 0 {
			m.Inos = make([]ObjectID, n)
			for i := range m.Inos {
				m.Inos[i] = ObjectID(r.u64())
			}
		}
		p = m
	case btFuncRead:
		p = &FuncRead{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()),
			Offset: r.u64(), Length: r.u32()}
	case btFuncWrite:
		p = &FuncWrite{ReqHeader: r.hdr(), Ino: ObjectID(r.u64()),
			Offset: r.u64(), Data: r.bytesCopy()}
	case btReply:
		m := &Reply{Client: NodeID(r.i32()), Req: ReqID(r.u64()),
			Status: Status(r.u8()), Err: Errno(r.u8())}
		body, err := decodeResult(&r)
		if err != nil {
			return nil, err
		}
		m.Body = body
		p = m
	case btDemand:
		p = &Demand{ID: DemandID(r.u64()), Ino: ObjectID(r.u64()),
			Mode: LockMode(r.u8()), Server: NodeID(r.i32())}
	case btDemandAck:
		p = &DemandAck{Client: NodeID(r.i32()), ID: DemandID(r.u64())}
	case btDiskRead:
		p = &DiskRead{Client: NodeID(r.i32()), Req: ReqID(r.u64()), Block: r.u64()}
	case btDiskReadRes:
		p = &DiskReadRes{Req: ReqID(r.u64()), Err: Errno(r.u8()),
			Ver: r.u64(), Data: r.bytesZC()}
	case btDiskWrite:
		p = &DiskWrite{Client: NodeID(r.i32()), Req: ReqID(r.u64()),
			Block: r.u64(), Ver: r.u64(), Data: r.bytesZC()}
	case btDiskWriteRes:
		p = &DiskWriteRes{Req: ReqID(r.u64()), Err: Errno(r.u8())}
	case btDiskWriteV:
		m := &DiskWriteV{Client: NodeID(r.i32()), Req: ReqID(r.u64())}
		if n := r.count(16); n > 0 {
			m.Blocks = make([]BlockVec, n)
			for i := range m.Blocks {
				m.Blocks[i] = BlockVec{Block: r.u64(), Ver: r.u64()}
			}
		}
		m.Data = r.bytesZC()
		p = m
	case btDiskWriteVRes:
		m := &DiskWriteVRes{Req: ReqID(r.u64()), Err: Errno(r.u8())}
		if n := r.count(1); n > 0 {
			m.Errs = make([]Errno, n)
			for i := range m.Errs {
				m.Errs[i] = Errno(r.u8())
			}
		}
		p = m
	case btDiskReadV:
		m := &DiskReadV{Client: NodeID(r.i32()), Req: ReqID(r.u64())}
		if n := r.count(8); n > 0 {
			m.Blocks = make([]uint64, n)
			for i := range m.Blocks {
				m.Blocks[i] = r.u64()
			}
		}
		p = m
	case btDiskReadVRes:
		m := &DiskReadVRes{Req: ReqID(r.u64()), Err: Errno(r.u8())}
		if n := r.count(1); n > 0 {
			m.Errs = make([]Errno, n)
			for i := range m.Errs {
				m.Errs[i] = Errno(r.u8())
			}
		}
		if n := r.count(8); n > 0 {
			m.Vers = make([]uint64, n)
			for i := range m.Vers {
				m.Vers[i] = r.u64()
			}
		}
		m.Data = r.bytesZC()
		p = m
	case btFenceSet:
		p = &FenceSet{Admin: NodeID(r.i32()), Req: ReqID(r.u64()),
			Target: NodeID(r.i32()), On: r.b1()}
	case btFenceRes:
		p = &FenceRes{Req: ReqID(r.u64()), Err: Errno(r.u8())}
	case btDLockAcquire:
		p = &DLockAcquire{Client: NodeID(r.i32()), Req: ReqID(r.u64()),
			Start: r.u64(), Count: r.u32(), TTL: time.Duration(r.i64())}
	case btDLockRelease:
		p = &DLockRelease{Client: NodeID(r.i32()), Req: ReqID(r.u64()),
			Start: r.u64(), Count: r.u32()}
	case btDLockRes:
		p = &DLockRes{Req: ReqID(r.u64()), Err: Errno(r.u8())}
	case btShardMigrate:
		m := &ShardMigrate{Src: NodeID(r.i32()), HID: r.u64(),
			Path: r.str(), Attr: r.attr()}
		if n := r.count(12); n > 0 {
			m.Blocks = make([]BlockRef, n)
			for i := range m.Blocks {
				m.Blocks[i] = BlockRef{Disk: NodeID(r.i32()), Num: r.u64()}
			}
		}
		p = m
	case btShardMigrateRes:
		p = &ShardMigrateRes{HID: r.u64(), Err: Errno(r.u8())}
	case btReplicaPrepare:
		p = &ReplicaPrepare{From: NodeID(r.i32()), Ballot: r.u64()}
	case btReplicaPromise:
		p = &ReplicaPromise{From: NodeID(r.i32()), Ballot: r.u64(),
			OK: r.b1(), Accepted: r.b1(),
			AcceptedBallot: r.u64(), AcceptedHolder: NodeID(r.i32())}
	case btReplicaPropose:
		p = &ReplicaPropose{From: NodeID(r.i32()), Ballot: r.u64(),
			Holder: NodeID(r.i32())}
	case btReplicaAccept:
		p = &ReplicaAccept{From: NodeID(r.i32()), Ballot: r.u64(), OK: r.b1()}
	case btReplicaInfo:
		p = &ReplicaInfo{ReqHeader: r.hdr()}
	default:
		return nil, ErrCorruptFrame
	}
	if r.bad || r.off != len(r.b) {
		return nil, ErrCorruptFrame
	}
	return &Envelope{From: from, To: to, Payload: p}, nil
}

// decodeResult parses a Reply body. FuncReadRes data is copied (its
// consumer hands it to user callbacks that outlive the handler).
func decodeResult(r *rd) (Result, error) {
	switch t := r.u8(); t {
	case brNil:
		return nil, nil
	case brLookupRes:
		return LookupRes{Attr: r.attr()}, nil
	case brCreateRes:
		return CreateRes{Attr: r.attr()}, nil
	case brOpenRes:
		return OpenRes{Handle: Handle(r.u64()), Attr: r.attr()}, nil
	case brAttrRes:
		return AttrRes{Attr: r.attr()}, nil
	case brReaddirRes:
		var res ReaddirRes
		if n := r.count(9); n > 0 {
			res.Entries = make([]DirEntry, n)
			for i := range res.Entries {
				res.Entries[i] = DirEntry{Name: r.str(), Ino: ObjectID(r.u64()), IsDir: r.b1()}
			}
		}
		return res, nil
	case brBlocksRes:
		res := BlocksRes{Attr: r.attr()}
		if n := r.count(12); n > 0 {
			res.Blocks = make([]BlockRef, n)
			for i := range res.Blocks {
				res.Blocks[i] = BlockRef{Disk: NodeID(r.i32()), Num: r.u64()}
			}
		}
		return res, nil
	case brAllocRes:
		res := AllocRes{Attr: r.attr()}
		if n := r.count(12); n > 0 {
			res.Blocks = make([]BlockRef, n)
			for i := range res.Blocks {
				res.Blocks[i] = BlockRef{Disk: NodeID(r.i32()), Num: r.u64()}
			}
		}
		return res, nil
	case brLockRes:
		return LockRes{Mode: LockMode(r.u8())}, nil
	case brRejoinRes:
		return RejoinRes{Epoch: Epoch(r.u32())}, nil
	case brReassertRes:
		return ReassertRes{Epoch: Epoch(r.u32())}, nil
	case brFuncReadRes:
		return FuncReadRes{Data: r.bytesCopy()}, nil
	case brReplicaInfoRes:
		return ReplicaInfoRes{Role: r.u8(), Ballot: r.u64(),
			Active: NodeID(r.i32())}, nil
	default:
		return nil, ErrCorruptFrame
	}
}
