package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/msg"
)

// MaxFrame bounds a frame body. The largest legitimate frame is a
// full-batch DiskWriteV/DiskReadVRes (flush batch × 4 KiB pages plus
// metadata), far below this; anything bigger is treated as a corrupt
// length prefix rather than a reason to allocate gigabytes.
const MaxFrame = 1 << 24

// binaryCodec is the zero-copy implementation: length-prefixed frames in
// the fixed layout of msg.EncodeBinary/DecodeBinary (DESIGN.md §12).
//
// Send stages the length prefix and metadata in a pooled buffer and
// transmits bulk page data as a scatter-gather tail straight from the
// caller's buffer (net.Buffers → writev), so steady-state sends copy no
// page bytes and allocate nothing. Recv reads each frame into a pooled
// buffer that the decoded envelope's page payloads alias; the envelope
// carries a borrow whose release returns the buffer to the pool.
type binaryCodec struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	// iov is the scatter-gather scratch used under wmu. net.Buffers
	// consumes the slice it writes, so Send rebuilds it in place from
	// this backing array on every call — no per-send allocation.
	iov [2][]byte
}

func newBinaryCodec(conn net.Conn) *binaryCodec {
	return &binaryCodec{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}
}

// Send frames one envelope. Safe for concurrent use.
//
//tank:hotpath
func (c *binaryCodec) Send(env *msg.Envelope) error {
	meta, tail, err := msg.BinarySize(env)
	if err != nil {
		return err
	}
	buf := bufpool.Get(4 + meta)
	binary.BigEndian.PutUint32(buf, uint32(meta+len(tail)))
	if err := msg.EncodeBinary(buf[4:], env); err != nil {
		bufpool.Put(buf)
		return err
	}
	c.wmu.Lock()
	if len(tail) == 0 {
		_, err = c.conn.Write(buf)
	} else {
		//tank:alias(writev staging; cleared below, Put stays with buf)
		c.iov[0], c.iov[1] = buf, tail
		bufs := net.Buffers(c.iov[:2])
		_, err = bufs.WriteTo(c.conn)
		c.iov[0], c.iov[1] = nil, nil
	}
	c.wmu.Unlock()
	bufpool.Put(buf)
	return err
}

// Recv reads the next frame. Not safe for concurrent use (one reader
// goroutine per connection). The returned envelope may alias a pooled
// buffer; it carries a borrow that the consumer must Release.
func (c *binaryCodec) Recv() (*msg.Envelope, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(c.br, lenb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < 9 || n > MaxFrame {
		return nil, fmt.Errorf("%w: impossible length prefix %d", ErrBadFrame, n)
	}
	body := bufpool.Get(int(n))
	if _, err := io.ReadFull(c.br, body); err != nil {
		bufpool.Put(body)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
	}
	env, err := msg.DecodeBinary(body)
	if err != nil {
		bufpool.Put(body)
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	env.Borrowed(func() { bufpool.Put(body) })
	return env, nil
}

func (c *binaryCodec) Close() error { return c.conn.Close() }

func (c *binaryCodec) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// SendHello writes the identification frame: the dialer's node ID as a
// raw big-endian int32 (the binary codec needs no self-describing frame
// for a fixed 4-byte field).
func (c *binaryCodec) SendHello(from msg.NodeID) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(int32(from)))
	c.wmu.Lock()
	_, err := c.conn.Write(b[:])
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("wire: hello: %w", err)
	}
	return nil
}

func (c *binaryCodec) RecvHello() (msg.NodeID, error) {
	var b [4]byte
	if _, err := io.ReadFull(c.br, b[:]); err != nil {
		return 0, fmt.Errorf("wire: hello: %w", err)
	}
	from := msg.NodeID(int32(binary.BigEndian.Uint32(b[:])))
	if from == msg.None {
		return 0, fmt.Errorf("%w: hello with zero node id", ErrBadFrame)
	}
	return from, nil
}
