package wire

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"testing"

	"repro/internal/msg"
)

func pipe(t *testing.T) (a, b net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	dialer, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dialer.Close(); r.c.Close() })
	return dialer, r.c
}

// codecPair negotiates a connection with Dial/Accept and returns both
// ends, exactly as the transport does it.
func codecPair(t *testing.T, id ID) (dialed, accepted Codec) {
	t.Helper()
	a, b := pipe(t)
	type res struct {
		c   Codec
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Accept(b)
		ch <- res{c, err}
	}()
	ca, err := Dial(a, id)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return ca, r.c
}

// bothCodecs runs a subtest against each codec implementation.
func bothCodecs(t *testing.T, fn func(t *testing.T, id ID)) {
	for _, id := range []ID{Gob, Binary} {
		t.Run(id.String(), func(t *testing.T) { fn(t, id) })
	}
}

func TestHelloHandshake(t *testing.T) {
	bothCodecs(t, func(t *testing.T, id ID) {
		ca, cb := codecPair(t, id)
		go ca.SendHello(42)
		from, err := cb.RecvHello()
		if err != nil || from != 42 {
			t.Fatalf("hello = %v %v", from, err)
		}
	})
}

func TestHelloRejectsZeroNode(t *testing.T) {
	bothCodecs(t, func(t *testing.T, id ID) {
		ca, cb := codecPair(t, id)
		go ca.SendHello(msg.None)
		if _, err := cb.RecvHello(); err == nil {
			t.Fatal("zero node id accepted")
		}
	})
}

func TestEnvelopeStream(t *testing.T) {
	bothCodecs(t, func(t *testing.T, id ID) {
		ca, cb := codecPair(t, id)
		go func() {
			for i := 0; i < 10; i++ {
				ca.Send(&msg.Envelope{From: 1, To: 2, Payload: &msg.GetAttr{
					ReqHeader: msg.ReqHeader{Client: 1, Req: msg.ReqID(i)},
					Ino:       msg.ObjectID(i),
				}})
			}
		}()
		for i := 0; i < 10; i++ {
			env, err := cb.Recv()
			if err != nil {
				t.Fatal(err)
			}
			ga := env.Payload.(*msg.GetAttr)
			if ga.Req != msg.ReqID(i) || ga.Ino != msg.ObjectID(i) {
				t.Fatalf("frame %d out of order: %+v", i, ga)
			}
			env.Release()
		}
	})
}

func TestRecvAfterCloseErrors(t *testing.T) {
	bothCodecs(t, func(t *testing.T, id ID) {
		ca, cb := codecPair(t, id)
		ca.Close()
		if _, err := cb.Recv(); err == nil {
			t.Fatal("recv on closed peer succeeded")
		}
		if cb.RemoteAddr() == nil {
			t.Fatal("remote addr missing")
		}
	})
}

// TestMixedCodecInterop verifies the acceptor adopts the dialer's codec:
// a gob dialer and a binary dialer can both talk to the same kind of
// acceptor, replies riding the same connection.
func TestMixedCodecInterop(t *testing.T) {
	bothCodecs(t, func(t *testing.T, id ID) {
		ca, cb := codecPair(t, id)
		want := &msg.DiskWrite{Client: 7, Req: 9, Block: 3,
			Data: []byte("page-data"), Ver: 11}
		go ca.Send(&msg.Envelope{From: 7, To: 8, Payload: want})
		env, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got := env.Payload.(*msg.DiskWrite)
		if got.Block != 3 || got.Ver != 11 || string(got.Data) != "page-data" {
			t.Fatalf("round trip mangled payload: %+v", got)
		}
		// The reply path uses the SAME negotiated connection.
		go cb.Send(&msg.Envelope{From: 8, To: 7,
			Payload: &msg.DiskWriteRes{Req: 9, Err: msg.OK}})
		back, err := ca.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if back.Payload.(*msg.DiskWriteRes).Req != 9 {
			t.Fatalf("reply mangled: %+v", back.Payload)
		}
		env.Release()
		back.Release()
	})
}

// TestAcceptRejectsBadPreamble: corrupt negotiation bytes produce
// ErrBadFrame, not a hang or a panic.
func TestAcceptRejectsBadPreamble(t *testing.T) {
	cases := []struct {
		name string
		pre  byte
	}{
		{"version-zero", 0x00},
		{"future-version", 0xf1},
		{"unknown-codec", wireVersion<<4 | 0x0e},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := pipe(t)
			type res struct {
				c   Codec
				err error
			}
			ch := make(chan res, 1)
			go func() {
				c, err := Accept(b)
				ch <- res{c, err}
			}()
			if _, err := a.Write([]byte{tc.pre}); err != nil {
				t.Fatal(err)
			}
			r := <-ch
			if !errors.Is(r.err, ErrBadFrame) {
				t.Fatalf("err = %v, want ErrBadFrame", r.err)
			}
		})
	}
}

// rawBinaryPeer dials a binary-codec connection but keeps the raw conn,
// so tests can write corrupt frames by hand.
func rawBinaryPeer(t *testing.T) (raw net.Conn, peer Codec) {
	t.Helper()
	a, b := pipe(t)
	type res struct {
		c   Codec
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Accept(b)
		ch <- res{c, err}
	}()
	if _, err := a.Write([]byte{wireVersion<<4 | uint8(Binary)}); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return a, r.c
}

// TestBinaryFramingCorruption drives the binary codec's Recv with every
// flavor of damaged frame. Each must produce an error wrapping
// ErrBadFrame (or a plain EOF for a clean close) — never a panic, never
// a giant allocation, never a hang.
func TestBinaryFramingCorruption(t *testing.T) {
	writeLen := func(n uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], n)
		return b[:]
	}
	t.Run("oversized-length-prefix", func(t *testing.T) {
		raw, peer := rawBinaryPeer(t)
		raw.Write(writeLen(MaxFrame + 1))
		if _, err := peer.Recv(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("undersized-length-prefix", func(t *testing.T) {
		raw, peer := rawBinaryPeer(t)
		raw.Write(writeLen(4)) // header alone needs 9 bytes
		if _, err := peer.Recv(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("truncated-body", func(t *testing.T) {
		raw, peer := rawBinaryPeer(t)
		raw.Write(writeLen(100))
		raw.Write(make([]byte, 40)) // 60 bytes short
		raw.Close()
		if _, err := peer.Recv(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("garbage-body", func(t *testing.T) {
		raw, peer := rawBinaryPeer(t)
		body := make([]byte, 32)
		for i := range body {
			body[i] = 0xff
		}
		raw.Write(writeLen(32))
		raw.Write(body)
		if _, err := peer.Recv(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("clean-close-is-eof", func(t *testing.T) {
		raw, peer := rawBinaryPeer(t)
		raw.Close()
		if _, err := peer.Recv(); !errors.Is(err, io.EOF) {
			t.Fatalf("err = %v, want io.EOF (clean close is not frame damage)", err)
		}
	})
}

// TestGobGarbageIsBadFrame: non-gob bytes on a gob connection surface as
// ErrBadFrame, distinct from EOF.
func TestGobGarbageIsBadFrame(t *testing.T) {
	a, b := pipe(t)
	type res struct {
		c   Codec
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Accept(b)
		ch <- res{c, err}
	}()
	a.Write([]byte{wireVersion << 4}) // gob preamble
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	// A well-formed gob stream of the wrong type: decodes cleanly at the
	// framing layer, fails as an Envelope. (Raw garbage usually dies as a
	// truncated length prefix, i.e. an unexpected EOF, which Recv
	// deliberately passes through as a peer-went-away signal.)
	if err := gob.NewEncoder(a).Encode(struct{ N int }{42}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.c.Recv(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestParseID(t *testing.T) {
	for name, want := range map[string]ID{"gob": Gob, "binary": Binary} {
		got, err := ParseID(name)
		if err != nil || got != want {
			t.Fatalf("ParseID(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseID("json"); err == nil {
		t.Fatal("unknown codec name accepted")
	}
}
