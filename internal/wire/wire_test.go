package wire

import (
	"net"
	"testing"

	"repro/internal/msg"
)

func pipe(t *testing.T) (a, b net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	dialer, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dialer.Close(); r.c.Close() })
	return dialer, r.c
}

func TestHelloHandshake(t *testing.T) {
	a, b := pipe(t)
	ca, cb := NewCodec(a), NewCodec(b)
	go ca.SendHello(42)
	from, err := cb.RecvHello()
	if err != nil || from != 42 {
		t.Fatalf("hello = %v %v", from, err)
	}
}

func TestHelloRejectsZeroNode(t *testing.T) {
	a, b := pipe(t)
	ca, cb := NewCodec(a), NewCodec(b)
	go ca.SendHello(msg.None)
	if _, err := cb.RecvHello(); err == nil {
		t.Fatal("zero node id accepted")
	}
}

func TestEnvelopeStream(t *testing.T) {
	a, b := pipe(t)
	ca, cb := NewCodec(a), NewCodec(b)
	go func() {
		for i := 0; i < 10; i++ {
			ca.Send(&msg.Envelope{From: 1, To: 2, Payload: &msg.GetAttr{
				ReqHeader: msg.ReqHeader{Client: 1, Req: msg.ReqID(i)},
				Ino:       msg.ObjectID(i),
			}})
		}
	}()
	for i := 0; i < 10; i++ {
		env, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		ga := env.Payload.(*msg.GetAttr)
		if ga.Req != msg.ReqID(i) || ga.Ino != msg.ObjectID(i) {
			t.Fatalf("frame %d out of order: %+v", i, ga)
		}
	}
}

func TestRecvAfterCloseErrors(t *testing.T) {
	a, b := pipe(t)
	ca, cb := NewCodec(a), NewCodec(b)
	ca.Close()
	if _, err := cb.Recv(); err == nil {
		t.Fatal("recv on closed peer succeeded")
	}
	if cb.RemoteAddr() == nil {
		t.Fatal("remote addr missing")
	}
}
