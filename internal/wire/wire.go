// Package wire is the live deployment's message encoding. A Codec frames
// msg.Envelope traffic over one TCP connection; two implementations
// exist — the hand-rolled fixed-layout binary codec (the default, see
// DESIGN.md §12) and the original gob stream (the fallback) — selected
// per connection by a one-byte version/codec preamble the dialer writes
// before anything else. The acceptor adopts the dialer's choice, so
// nodes configured with different codecs interoperate: each connection
// speaks whatever its dialer asked for, replies included.
//
// The transport above this (internal/rpcnet) preserves the protocol's
// datagram assumptions: sends are best-effort, a broken connection just
// drops traffic until redialed, and the reliable-request layer in
// internal/core supplies retries and at-most-once execution — exactly as
// it does on the simulated fabric.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/msg"
)

func init() { msg.RegisterGob() }

// ErrBadFrame reports traffic that violates the framing or codec layer:
// an unparseable frame, an impossible length prefix, or an unknown
// negotiation preamble. It is distinct from io.EOF — a peer that went
// away — so the transport can report protocol damage as what it is
// instead of a peer restart. Both end with the connection dropped.
var ErrBadFrame = errors.New("wire: bad frame")

// Codec frames envelopes over one connection. Send is safe for
// concurrent use; Recv is not (one reader goroutine per connection).
// A Recv'd envelope whose payload aliases a pooled receive buffer
// carries a borrow (msg.Envelope.Borrowed); the consumer releases it.
type Codec interface {
	Send(env *msg.Envelope) error
	Recv() (*msg.Envelope, error)
	// SendHello/RecvHello exchange the identification frame that opens
	// every dialed connection: the dialer's node ID, so the acceptor can
	// route return traffic over the same connection.
	SendHello(from msg.NodeID) error
	RecvHello() (msg.NodeID, error)
	Close() error
	RemoteAddr() net.Addr
}

// ID selects a codec implementation. The values appear on the wire (low
// nibble of the negotiation preamble) and must never be renumbered.
type ID uint8

const (
	// Gob is the original encoding/gob stream codec.
	Gob ID = 0
	// Binary is the fixed-layout zero-copy codec (the default).
	Binary ID = 1
)

func (c ID) String() string {
	switch c {
	case Gob:
		return "gob"
	case Binary:
		return "binary"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// ParseID resolves a codec name ("gob", "binary") as used by the tankd
// -codec flag and the WithWireCodec facade option.
func ParseID(name string) (ID, error) {
	switch name {
	case "gob":
		return Gob, nil
	case "binary":
		return Binary, nil
	}
	return 0, fmt.Errorf("wire: unknown codec %q (want gob or binary)", name)
}

// wireVersion is the protocol revision carried in the preamble's high
// nibble. Revision 1 introduced the preamble itself.
const wireVersion = 1

// Dial wraps the dialer side of an established connection: it writes the
// one-byte negotiation preamble (version in the high nibble, codec in
// the low) and returns the chosen codec. Nothing else may be written to
// conn first.
func Dial(conn net.Conn, codec ID) (Codec, error) {
	pre := [1]byte{wireVersion<<4 | uint8(codec)&0x0f}
	if _, err := conn.Write(pre[:]); err != nil {
		return nil, fmt.Errorf("wire: preamble: %w", err)
	}
	return newCodec(conn, codec)
}

// Accept wraps the acceptor side: it reads the dialer's preamble and
// adopts the announced codec, so mixed-codec installations interoperate
// connection by connection.
func Accept(conn net.Conn) (Codec, error) {
	var pre [1]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		return nil, fmt.Errorf("wire: preamble: %w", err)
	}
	if v := pre[0] >> 4; v != wireVersion {
		return nil, fmt.Errorf("%w: preamble version %d (want %d)", ErrBadFrame, v, wireVersion)
	}
	return newCodec(conn, ID(pre[0]&0x0f))
}

func newCodec(conn net.Conn, codec ID) (Codec, error) {
	switch codec {
	case Gob:
		return newGobCodec(conn), nil
	case Binary:
		return newBinaryCodec(conn), nil
	}
	return nil, fmt.Errorf("%w: preamble announces unknown codec %d", ErrBadFrame, uint8(codec))
}

// gobCodec is the fallback implementation: gob streams of msg.Envelope.
// Gob transmits type information once per stream, so long-lived
// node-to-node connections stay cheap; every payload is freshly
// allocated on receive, so gob envelopes never carry a borrow.
type gobCodec struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

func newGobCodec(conn net.Conn) *gobCodec {
	return &gobCodec{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (c *gobCodec) Send(env *msg.Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

func (c *gobCodec) Recv() (*msg.Envelope, error) {
	var env msg.Envelope
	if err := c.dec.Decode(&env); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: gob: %v", ErrBadFrame, err)
	}
	return &env, nil
}

func (c *gobCodec) Close() error { return c.conn.Close() }

func (c *gobCodec) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Hello is the identification frame the gob codec sends after the
// preamble (the binary codec uses a raw 4-byte node ID instead).
type Hello struct {
	From msg.NodeID
}

func (c *gobCodec) SendHello(from msg.NodeID) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(&Hello{From: from})
}

func (c *gobCodec) RecvHello() (msg.NodeID, error) {
	var h Hello
	if err := c.dec.Decode(&h); err != nil {
		return 0, fmt.Errorf("wire: hello: %w", err)
	}
	if h.From == msg.None {
		return 0, fmt.Errorf("%w: hello with zero node id", ErrBadFrame)
	}
	return h.From, nil
}
