// Package wire is the live deployment's message encoding: gob streams of
// msg.Envelope over TCP connections. One Codec wraps one connection; gob
// transmits type information once per stream, so long-lived node-to-node
// connections are cheap.
//
// The transport above this (internal/rpcnet) preserves the protocol's
// datagram assumptions: sends are best-effort, a broken connection just
// drops traffic until redialed, and the reliable-request layer in
// internal/core supplies retries and at-most-once execution — exactly as
// it does on the simulated fabric.
package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/msg"
)

func init() { msg.RegisterGob() }

// Codec frames envelopes over one connection.
type Codec struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	wmu  sync.Mutex
}

// NewCodec wraps an established connection.
func NewCodec(conn net.Conn) *Codec {
	return &Codec{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Send encodes one envelope. Safe for concurrent use.
func (c *Codec) Send(env *msg.Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// Recv decodes the next envelope. Not safe for concurrent use (one reader
// goroutine per connection).
func (c *Codec) Recv() (*msg.Envelope, error) {
	var env msg.Envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return &env, nil
}

// Close closes the underlying connection.
func (c *Codec) Close() error { return c.conn.Close() }

// RemoteAddr reports the peer address.
func (c *Codec) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Hello is the first frame on every dialed connection: it announces the
// dialer's node ID so the acceptor can route return traffic over the same
// connection.
type Hello struct {
	From msg.NodeID
}

// SendHello writes the identification frame.
func (c *Codec) SendHello(from msg.NodeID) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(&Hello{From: from})
}

// RecvHello reads the identification frame.
func (c *Codec) RecvHello() (msg.NodeID, error) {
	var h Hello
	if err := c.dec.Decode(&h); err != nil {
		return 0, fmt.Errorf("wire: hello: %w", err)
	}
	if h.From == msg.None {
		return 0, fmt.Errorf("wire: hello with zero node id")
	}
	return h.From, nil
}
