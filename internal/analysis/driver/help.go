package driver

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// helpMain implements `tanklint help [pass]`.
//
// With no argument it lists the suite. With a pass name it prints that
// analyzer's full doc followed by every //lint:allow directive for the
// pass currently in the shipped tree — the complete exemption surface,
// with file:line and the mandatory reason — so reviewers can audit what
// the pass is NOT checking without grepping.
func helpMain(analyzers []*analysis.Analyzer, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stdout, "tanklint passes:")
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "`tanklint help <pass>` prints the full doc and the tree's //lint:allow exemptions for that pass.")
		return 0
	}
	name := args[0]
	var a *analysis.Analyzer
	for _, cand := range analyzers {
		if cand.Name == name {
			a = cand
			break
		}
	}
	if a == nil {
		names := make([]string, len(analyzers))
		for i, cand := range analyzers {
			names[i] = cand.Name
		}
		fmt.Fprintf(stderr, "tanklint: unknown pass %q; known passes: %s\n", name, strings.Join(names, ", "))
		return 1
	}
	fmt.Fprintf(stdout, "%s: %s\n", a.Name, strings.TrimSpace(a.Doc))
	root := moduleRoot(".")
	dirs, err := TreeAllows(root, a.Name)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout)
	if len(dirs) == 0 {
		fmt.Fprintf(stdout, "No //lint:allow %s exemptions in the tree.\n", a.Name)
		return 0
	}
	fmt.Fprintf(stdout, "//lint:allow %s exemptions in the tree:\n", a.Name)
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			rel = d.File
		}
		fmt.Fprintf(stdout, "  %s:%d: %s\n", rel, d.FromLine, d.Reason)
	}
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// moduleRoot walks up from dir to the directory holding go.mod, so
// `tanklint help` audits the whole module no matter where it is run
// from. Falls back to dir when no module is found.
func moduleRoot(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return abs
		}
		d = parent
	}
}

// TreeAllows parses every .go file under root — skipping testdata
// fixtures (those allows exist to be suppressed, they are not
// exemptions of the shipped tree), .git, and bin — and returns the
// //lint:allow directives naming analyzer. An empty analyzer matches
// every pass. Results are ordered by file then line; this is the data
// the per-pass budget meta-test pins.
func TreeAllows(root, analyzer string) ([]analysis.Directive, error) {
	fset := token.NewFileSet()
	var out []analysis.Directive
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "bin":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", path, err)
		}
		dirs, _ := analysis.PackageDirectives(fset, []*ast.File{f})
		for _, dir := range dirs {
			if analyzer == "" || dir.Analyzer == analyzer {
				out = append(out, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].FromLine < out[j].FromLine
	})
	return out, nil
}
