package driver

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Version is the tool identity `go vet` hashes into its build cache key
// (via -V=full). Bump it whenever an analyzer's behavior changes, or
// cached clean verdicts will mask new findings.
//
// 1.1.0: added the bufown flow-sensitive ownership pass.
const Version = "tanklint-1.1.0"

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg for each
// package when invoked as `go vet -vettool=tanklint`.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// Main is the shared entry point of cmd/tanklint. It speaks four
// protocols:
//
//	tanklint -V=full            → identity line for the go vet build cache
//	tanklint -flags             → JSON flag descriptions (none)
//	tanklint <file>.cfg         → one unit-checked package (go vet -vettool)
//	tanklint help [pass]        → pass docs and the tree's //lint:allow sites
//	tanklint [-json] [patterns] → standalone: load, analyze, print, exit 2
//
// It returns the process exit code.
func Main(analyzers []*analysis.Analyzer, args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// Field layout is checked by cmd/go: "<name> version <ver>".
			fmt.Fprintf(stdout, "%s version %s\n", progName(), Version)
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return unitCheck(args[0], analyzers, stderr)
		}
	}
	if len(args) > 0 && args[0] == "help" {
		return helpMain(analyzers, args[1:], stdout, stderr)
	}
	jsonOut := false
	patterns := args
	if len(patterns) > 0 && patterns[0] == "-json" {
		jsonOut = true
		patterns = patterns[1:]
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := Load(".", patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	diags, err := Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if jsonOut {
		if err := WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// jsonDiag is the -json rendering of one finding. Machine consumers
// (CI annotation scripts, editors) key on this shape; the line format
// the GitHub problem matcher scrapes is the plain-text one.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders findings as a JSON array — always an array, never
// null, so `jq length` works on a clean run.
func WriteJSON(w io.Writer, diags []Diag) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

func progName() string { return filepath.Base(os.Args[0]) }

// unitCheck analyzes the single package a vet.cfg describes.
func unitCheck(cfgFile string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "%s: parsing vet config: %v\n", progName(), err)
		return 1
	}
	// The vetx fact file must exist for cmd/go's cache bookkeeping even
	// though tanklint's passes exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("tanklint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: nothing to compute, nothing to report.
		return 0
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go reports compile errors itself; duplicate noise helps
			// nobody (see golang.org/issue/18395).
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}
	diags, err := RunPackage(fset, pkg, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
