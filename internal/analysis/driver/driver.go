// Package driver runs tanklint's analyzers, two ways:
//
//   - Standalone: Load resolves package patterns with `go list -json
//     -deps -export`, type-checks each target package from source
//     against the compiler's export data, and Run executes every
//     analyzer. This is what `tanklint ./...` does.
//   - Unit-checked: unitchecker.go speaks the vet.cfg protocol, so the
//     same binary plugs into `go vet -vettool=$(which tanklint)` and the
//     build cache does the scheduling.
//
// Both modes apply //lint:allow suppression (see internal/analysis) and
// report malformed directives under the pseudo-analyzer "directive".
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Diag is one rendered finding.
type Diag struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns in dir and returns the matched (non-dependency)
// packages, parsed and type-checked. Dependencies — standard library and
// module-internal alike — are consumed from compiler export data, which
// `go list -export` builds as needed, so loading N packages costs N
// source type-checks, not N².
func Load(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, p := range targets {
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, nil
}

// check parses and type-checks one package from its source files.
func check(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates the full set of type-checker fact maps the passes
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Run executes every analyzer over every package, applies //lint:allow
// suppression, and returns the surviving findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diag, error) {
	var out []Diag
	for _, pkg := range pkgs {
		diags, err := RunPackage(fset, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// RunPackage executes the analyzers over one package.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*analysis.Analyzer) ([]Diag, error) {
	dirs, malformed := analysis.PackageDirectives(fset, pkg.Files)
	var out []Diag
	for _, d := range malformed {
		out = append(out, Diag{Position: fset.Position(d.Pos), Analyzer: "directive", Message: d.Message})
	}
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		for _, d := range analysis.Suppress(fset, a.Name, diags, dirs) {
			out = append(out, Diag{Position: fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message})
		}
	}
	return out, nil
}
