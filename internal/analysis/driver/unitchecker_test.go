package driver

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestWriteJSON pins the machine-readable finding shape: the field
// names are an interface for CI scripting and must not drift.
func TestWriteJSON(t *testing.T) {
	diags := []Diag{
		{
			Position: token.Position{Filename: "internal/wire/binary.go", Line: 54, Column: 2},
			Analyzer: "bufown",
			Message:  "pooled buffer is not released on every path",
		},
	}
	var b strings.Builder
	if err := WriteJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, b.String())
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1", len(got))
	}
	d := got[0]
	if d.File != "internal/wire/binary.go" || d.Line != 54 || d.Column != 2 ||
		d.Analyzer != "bufown" || d.Message != "pooled buffer is not released on every path" {
		t.Errorf("round-trip mismatch: %+v", d)
	}
}

// TestWriteJSONEmpty: a clean run renders an empty array, never null —
// `jq length` and range-over-findings scripts must not special-case it.
func TestWriteJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(b.String()); s != "[]" {
		t.Errorf("empty diag list renders %q, want []", s)
	}
}
