// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer is a named check, a
// Pass hands it one type-checked package, and Report delivers findings.
//
// The repository vendors no third-party code, so tanklint (cmd/tanklint)
// cannot build on x/tools. This package keeps the same shape —
// Analyzer{Name, Doc, Run}, Pass with Fset/Files/Pkg/TypesInfo — so the
// four protocol passes (clockhygiene, locksafety, ackdurable,
// traceexhaustive) would port to the real framework by changing one
// import. Drivers live in internal/analysis/driver; the golden-test
// harness in internal/analysis/analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the check in diagnostics and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: what invariant the pass
	// protects and why (shown by `tanklint help`).
	Doc string
	// Run executes the check over one package. Findings go through
	// pass.Report; an error aborts the whole lint run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgBase returns the last element of an import path: the name the
// passes key their applicability on ("repro/internal/disk" → "disk"),
// which also makes testdata packages ("fixtures/disk") eligible.
func PkgBase(pkgPath string) string { return path.Base(pkgPath) }

// IsTestFile reports whether the file is a _test.go file. The passes
// skip test files: tests legitimately use wall-clock deadlines and
// discard errors, and the invariants guard shipped protocol code.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// FileBase returns the basename of the file containing pos.
func (p *Pass) FileBase(pos token.Pos) string {
	return path.Base(p.Fset.Position(pos).Filename)
}

// Callee resolves the called function or method object of a call
// expression, or nil. It sees through parentheses but not through
// function values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// RecvNamed returns the named type of a method's receiver (pointers
// dereferenced), or nil for functions and methods on unnamed types.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return NamedOf(sig.Recv().Type())
}

// NamedOf unwraps pointers and returns the *types.Named beneath, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// ReturnsError reports whether a call's result includes an error
// (either the sole result or any element of a tuple).
func ReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type) || isErrorSlice(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrorSlice reports []error results (blockstore's WriteV contract).
func isErrorSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isErrorType(s.Elem())
}
