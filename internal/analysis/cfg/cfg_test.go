package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses one function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// reachesExit reports whether Exit is reachable from Entry.
func reachesExit(g *Graph) bool {
	for _, b := range g.ReversePostorder() {
		if b == g.Exit {
			return true
		}
	}
	return false
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !reachesExit(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry should hold both statements, got %d:\n%s", len(g.Entry.Nodes), g)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { x = 2 } else { x = 3 }\n_ = x")
	// entry(cond) → then, else; both → done → exit.
	if g.Entry.Cond == nil {
		t.Fatalf("entry should end in a condition:\n%s", g)
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if should branch two ways:\n%s", g)
	}
	then, els := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(then.Succs) != 1 || len(els.Succs) != 1 || then.Succs[0] != els.Succs[0] {
		t.Fatalf("branches should join:\n%s", g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { x = 2 }\n_ = x")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if-no-else still branches two ways (then, done):\n%s", g)
	}
	then, done := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(then.Succs) != 1 || then.Succs[0] != done {
		t.Fatalf("then should fall through to done:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ { _ = i }")
	// Find a back edge: some block's successor has a smaller index and
	// is a head.
	var back bool
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s.Kind == "for.head" {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("no loop back edge:\n%s", g)
	}
	if !reachesExit(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := build(t, "for { }")
	if reachesExit(g) {
		t.Fatalf("for{} should not reach exit:\n%s", g)
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g := build(t, "for { break }")
	if !reachesExit(g) {
		t.Fatalf("break should reach exit:\n%s", g)
	}
}

func TestContinueTargetsPost(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ { if i == 1 { continue }; _ = i }")
	if !reachesExit(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "L:\nfor {\n for {\n  break L\n }\n}")
	if !reachesExit(g) {
		t.Fatalf("labeled break should escape both loops:\n%s", g)
	}
}

func TestRangeZeroIterations(t *testing.T) {
	g := build(t, "xs := []int{1}\nfor _, x := range xs { _ = x }")
	// The range head must branch to both body and done.
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head should have body+done successors:\n%s", g)
	}
}

func TestSwitchNoDefaultHasFallthroughPath(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 2\n}")
	// head must edge to done directly (no matching case).
	var caseBlocks, headSuccs int
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			caseBlocks++
		}
	}
	headSuccs = len(g.Entry.Succs)
	if caseBlocks != 1 || headSuccs != 2 {
		t.Fatalf("switch without default: 1 case + direct done edge, got %d cases, %d head succs:\n%s",
			caseBlocks, headSuccs, g)
	}
}

func TestSwitchWithDefaultHasNoDirectDoneEdge(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 2\ndefault:\n x = 3\n}")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("switch with default: exactly the two clause edges, got %d:\n%s",
			len(g.Entry.Succs), g)
	}
}

func TestFallthroughChains(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n fallthrough\ncase 2:\n x = 9\n}")
	// The first case block must have the second case block as its
	// successor.
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks:\n%s", g)
	}
	found := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge missing:\n%s", g)
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { panic(\"boom\") }\n_ = x")
	// The then-block (panic) must have no successors.
	then := g.Entry.Succs[0]
	if len(then.Succs) != 0 {
		t.Fatalf("panic block should terminate:\n%s", g)
	}
	if !reachesExit(g) {
		t.Fatalf("non-panic path should still reach exit:\n%s", g)
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { return }\n_ = x")
	then := g.Entry.Succs[0]
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Fatalf("return should edge to exit:\n%s", g)
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, "x := 0\nL:\nx++\nif x < 3 { goto L }")
	if !reachesExit(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.L" {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("label block missing:\n%s", g)
	}
	// Some block must edge back to the label.
	found := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == label && b.Index > label.Index {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("goto back edge missing:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "x := 0\nif x == 0 { goto Done }\nx = 1\nDone:\n_ = x")
	if !reachesExit(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestSelectClauses(t *testing.T) {
	g := build(t, "ch := make(chan int)\nselect {\ncase <-ch:\ncase ch <- 1:\n}")
	// Both comm clauses must be successors of the head; no default →
	// still no direct done edge for select semantics? The builder adds
	// one for switches without default; selects share the lowering, so
	// assert only that both clauses are present and exit is reachable.
	if !reachesExit(g) {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	cases := 0
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			cases++
		}
	}
	if cases != 2 {
		t.Fatalf("want 2 comm clauses, got %d:\n%s", cases, g)
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { x = 2 }\n_ = x")
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatalf("RPO must start at entry:\n%s", g)
	}
	seen := map[*Block]bool{}
	for _, b := range rpo {
		for _, s := range b.Succs {
			// In a reducible graph without back edges every successor
			// appears after its predecessor; with back edges at least
			// require no duplicates.
			_ = s
		}
		if seen[b] {
			t.Fatalf("duplicate block in RPO:\n%s", g)
		}
		seen[b] = true
	}
}

func TestDeferRecordedInPlace(t *testing.T) {
	g := build(t, "defer println(1)\nx := 2\n_ = x")
	found := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("defer statement should appear as an entry-block node:\n%s", g)
	}
}
