// Package cfg builds a control-flow graph over one function body: basic
// blocks of statement-level AST nodes connected by branch, loop, switch,
// select, label, and panic edges. It is the substrate of tanklint's
// flow-sensitive passes (bufown today; locksafety's lock-order check can
// migrate onto it), built — like the rest of internal/analysis — on the
// standard library alone.
//
// Granularity is the statement: each block holds simple statements in
// execution order, and compound statements (if/for/switch/...) are
// decomposed into blocks and edges. Conditions are recorded on the block
// that evaluates them (Block.Cond), with the convention that for a
// two-way branch Succs[0] is the true edge and Succs[1] the false edge,
// so dataflow clients can refine facts per edge (e.g. the `err != nil`
// guard over a just-received value).
//
// Defer is modeled in place, not at exit: a *ast.DeferStmt appears as an
// ordinary node in the block that registers it, and clients that care
// about at-exit effects (bufown's defer-Put) handle the registration
// point themselves. This keeps conditional defers exact — a defer inside
// a branch only affects paths through that branch — at the cost of not
// modeling defer ORDER, which no current pass needs.
//
// panic(), and only panic(), terminates a path: the block ends with no
// successors, so facts held at a panic never reach the exit checks.
// Calls that never return dynamically (log.Fatal, os.Exit) are treated
// as ordinary calls; protocol packages do not use them.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks (dense, stable).
	Index int
	// Kind is a human-readable tag for debugging and tests ("entry",
	// "if.then", "for.body", ...).
	Kind string
	// Nodes are the statements (and branch-condition expressions) the
	// block executes, in order. Compound statements never appear here;
	// their pieces are distributed over the blocks they created.
	Nodes []ast.Node
	// Succs are the possible successors. For a block ending in a
	// two-way condition (Cond != nil), Succs[0] is taken when Cond is
	// true and Succs[1] when it is false.
	Succs []*Block
	// Cond is the branch condition evaluated at the end of this block,
	// or nil for unconditional control transfer.
	Cond ast.Expr
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// Graph is the CFG of one function body.
type Graph struct {
	Entry *Block
	// Exit is the single synthetic return target. Every path that
	// leaves the function normally (explicit return, falling off the
	// end) reaches it; panics do not.
	Exit   *Block
	Blocks []*Block
}

// String renders the graph compactly for tests: one line per block.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the canonical iteration order for a forward dataflow
// fixpoint (predecessors tend to be visited before successors).
func (g *Graph) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
		post = append(post, b)
	}
	visit(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// builder carries the construction state for one function body.
type builder struct {
	g *Graph
	// current is the block new statements append to; nil after a
	// terminator (return/branch/panic) until the next label or join.
	current *Block
	// breaks / continues are the innermost targets, shadowed per loop
	// or switch; labeled variants live in labeledBreaks/labeledConts.
	breakTarget, continueTarget *Block
	labeledBreaks, labeledConts map[string]*Block
	// labels maps label name → its block, for goto. Gotos seen before
	// their label are patched at the end.
	labels       map[string]*Block
	pendingGotos map[string][]*Block
	// labelPending carries a label name from a LabeledStmt to the loop
	// or switch it labels (Go attaches break/continue labels to the
	// immediately following statement).
	labelPending string
}

// New builds the CFG of one function body (a *ast.FuncDecl's or
// *ast.FuncLit's Body).
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{
		g:             g,
		labeledBreaks: make(map[string]*Block),
		labeledConts:  make(map[string]*Block),
		labels:        make(map[string]*Block),
		pendingGotos:  make(map[string][]*Block),
	}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.current = g.Entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.jump(g.Exit)
	// Resolve forward gotos.
	for name, sources := range b.pendingGotos {
		target := b.labels[name]
		if target == nil {
			// Malformed input (undefined label) — the type checker
			// rejects it before any pass runs; keep the graph sane.
			target = g.Exit
		}
		for _, src := range sources {
			src.Succs = append(src.Succs, target)
		}
	}
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump ends the current block with an unconditional edge to target.
func (b *builder) jump(target *Block) {
	if b.current == nil {
		return // dead code after a terminator
	}
	b.current.Succs = append(b.current.Succs, target)
	b.current = nil
}

// branch ends the current block with cond: true → t, false → f.
func (b *builder) branch(cond ast.Expr, t, f *Block) {
	if b.current == nil {
		return
	}
	b.current.Cond = cond
	if cond != nil {
		b.current.Nodes = append(b.current.Nodes, cond)
	}
	b.current.Succs = append(b.current.Succs, t, f)
	b.current = nil
}

// startBlock makes target the current block (a join point or loop head).
func (b *builder) startBlock(target *Block) {
	b.current = target
}

func (b *builder) add(n ast.Node) {
	if b.current == nil {
		return // unreachable statement
	}
	b.current.Nodes = append(b.current.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanic reports whether the statement is a call to the builtin panic.
func isPanic(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.branch(s.Cond, then, els)
			b.startBlock(then)
			b.stmt(s.Body)
			b.jump(done)
			b.startBlock(els)
			b.stmt(s.Else)
			b.jump(done)
		} else {
			b.branch(s.Cond, then, done)
			b.startBlock(then)
			b.stmt(s.Body)
			b.jump(done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.branch(s.Cond, body, done)
		} else {
			b.jump(body)
		}
		b.startBlock(body)
		b.withLoop(done, post, s, func() { b.stmt(s.Body) })
		b.jump(post)
		if s.Post != nil {
			b.startBlock(post)
			b.add(s.Post)
			b.jump(head)
		}
		b.startBlock(done)

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		// The range expression is evaluated once, before the loop; the
		// per-iteration key/value assignment happens at the head.
		b.add(s)
		b.jump(head)
		b.startBlock(head)
		// Zero or more iterations: head branches to body and done.
		b.current.Succs = append(b.current.Succs, body, done)
		b.current = nil
		b.startBlock(body)
		b.withLoop(done, head, s, func() { b.stmt(s.Body) })
		b.jump(head)
		b.startBlock(done)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body)

	case *ast.SelectStmt:
		b.switchBody(s.Body)

	case *ast.LabeledStmt:
		name := s.Label.Name
		target := b.newBlock("label." + name)
		b.labels[name] = target
		// Pre-create loop/switch break-continue targets for the label:
		// the labeled statement handler registers them when it runs.
		b.jump(target)
		b.startBlock(target)
		b.labelPending = name
		b.stmt(s.Stmt)
		b.labelPending = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			t := b.breakTarget
			if s.Label != nil {
				t = b.labeledBreaks[s.Label.Name]
			}
			if t != nil {
				b.jump(t)
			} else {
				b.current = nil
			}
		case token.CONTINUE:
			t := b.continueTarget
			if s.Label != nil {
				t = b.labeledConts[s.Label.Name]
			}
			if t != nil {
				b.jump(t)
			} else {
				b.current = nil
			}
		case token.GOTO:
			if t, ok := b.labels[s.Label.Name]; ok {
				b.jump(t)
			} else if b.current != nil {
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.current)
				b.current = nil
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchBody (the next clause is
			// already this block's successor); nothing to record.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	default:
		if isPanic(s) {
			b.add(s)
			b.current = nil // the path ends here
			return
		}
		// Simple statements: assignments, declarations, expression
		// statements, defer, go, send, inc/dec, empty.
		b.add(s)
	}
}

// withLoop runs fn with break/continue targets installed, registering
// them under the pending label too.
func (b *builder) withLoop(brk, cont *Block, _ ast.Stmt, fn func()) {
	prevB, prevC := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = brk, cont
	if b.labelPending != "" {
		name := b.labelPending
		b.labelPending = ""
		b.labeledBreaks[name] = brk
		b.labeledConts[name] = cont
		defer func() { delete(b.labeledBreaks, name); delete(b.labeledConts, name) }()
	}
	fn()
	b.breakTarget, b.continueTarget = prevB, prevC
}

// switchBody lowers a switch/type-switch/select body: one block per
// clause, every clause entered from the head, implicit break to done,
// fallthrough to the next clause's block.
func (b *builder) switchBody(body *ast.BlockStmt) {
	done := b.newBlock("switch.done")
	head := b.current
	if head == nil {
		head = b.newBlock("switch.dead")
		b.current = head
	}

	prevBreak := b.breakTarget
	b.breakTarget = done
	if b.labelPending != "" {
		name := b.labelPending
		b.labelPending = ""
		b.labeledBreaks[name] = done
		defer delete(b.labeledBreaks, name)
	}

	var clauses []*Block
	hasDefault := false
	for range body.List {
		clauses = append(clauses, b.newBlock("case"))
	}
	for i, cl := range body.List {
		// Every clause is a possible successor of the head.
		head.Succs = append(head.Succs, clauses[i])
		b.startBlock(clauses[i])
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.add(e)
			}
			b.lowerClauseBody(cl.Body, clauses, i, done)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.add(cl.Comm)
			}
			b.lowerClauseBody(cl.Body, clauses, i, done)
		}
	}
	// A switch with no default (no matching case) falls through to
	// done. With a default — or for a select, which blocks until a
	// case fires — every execution goes through some clause, and an
	// extra head→done edge would manufacture a "no clause ran" path
	// that cannot happen (a false leak report in bufown).
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.breakTarget = prevBreak
	b.startBlock(done)
}

// lowerClauseBody lowers one clause body, wiring fallthrough to the next
// clause and the implicit break to done.
func (b *builder) lowerClauseBody(body []ast.Stmt, clauses []*Block, i int, done *Block) {
	fellThrough := false
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if i+1 < len(clauses) {
				b.jump(clauses[i+1])
				fellThrough = true
			}
			break
		}
		b.stmt(s)
	}
	if !fellThrough {
		b.jump(done)
	}
}
