package clockhygiene_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clockhygiene"
)

func TestClockHygiene(t *testing.T) {
	analysistest.Run(t, clockhygiene.Analyzer, "client", "server", "sim", "util")
}
