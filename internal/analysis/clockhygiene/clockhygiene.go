// Package clockhygiene forbids direct wall-clock access in protocol
// packages.
//
// Paper property (§3): the lease bound τ(1+ε) is proved against
// rate-synchronized clocks — every timer and every timestamp the
// protocol compares must come from the node's own injected sim.Clock,
// whose rate the simulator controls and the theorem's ε budgets. A
// single stray time.Now() or time.Sleep() silently re-introduces a
// perfectly-synchronized global clock: simulations stop being
// deterministic, skew experiments measure the wrong thing, and the
// safety argument no longer describes the implementation.
//
// The pass flags any reference to time.Now, time.Sleep, time.After,
// time.AfterFunc, time.NewTimer, time.NewTicker, time.Tick, time.Since,
// or time.Until inside the protocol packages (core, client, server,
// disk, lock, cluster, shard, rpcnet, blockstore, and sim outside
// clock.go — clock.go IS the wall-clock shim the rest of the tree
// injects). Types and constants (time.Duration, time.Second) are fine:
// only the ambient clock is banned, not the unit system. Exemptions
// need a visible //lint:allow clockhygiene(reason) directive.
package clockhygiene

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the clockhygiene pass.
var Analyzer = &analysis.Analyzer{
	Name: "clockhygiene",
	Doc: "forbid ambient wall-clock access (time.Now, time.Sleep, timers) in protocol packages; " +
		"all protocol time must flow through the injected sim.Clock",
	Run: run,
}

// protocolPkgs names the packages (by import-path base) whose time must
// flow through the injected clock.
var protocolPkgs = map[string]bool{
	"core":        true,
	"client":      true,
	"server":      true,
	"disk":        true,
	"lock":        true,
	"cluster":     true,
	"shard": true,
	"sim":         true,
	"rpcnet":      true,
	"blockstore":  true,
}

// banned are the package-time functions that read or schedule against
// the ambient wall clock.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

func run(pass *analysis.Pass) error {
	if !protocolPkgs[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	inSim := analysis.PkgBase(pass.Pkg.Path()) == "sim"
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		if inSim && pass.FileBase(file.Pos()) == "clock.go" {
			// sim/clock.go is the one sanctioned wall-clock adapter: it
			// DEFINES RealClock, the injected clock of the live transport.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s bypasses the injected clock: protocol time must come from the node's sim.Clock (rate-synchronized clocks, DESIGN §3); use the clock's Now/AfterFunc or sim.Sleep, or annotate //lint:allow clockhygiene(reason)",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
