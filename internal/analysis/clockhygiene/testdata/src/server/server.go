// Package server is the clockhygiene fixture for directive hygiene:
// an exemption is itself checked, so a directive without a reason (or
// with broken syntax) is a finding, and it suppresses nothing.
package server

import "time"

func emptyReason() {
	/* want `directive needs a reason` */ //lint:allow clockhygiene()
	_ = time.Now()                        // want `time.Now bypasses the injected clock`
}

func brokenSyntax() {
	//lint:allow clockhygiene missing-parens // want `malformed lint:allow directive`
	_ = time.Now() // want `time.Now bypasses the injected clock`
}
