// Package util is a clockhygiene negative fixture: it is not a protocol
// package, so ambient wall-clock use is none of the pass's business.
package util

import "time"

func Stamp() time.Time { return time.Now() }

func Nap() { time.Sleep(time.Millisecond) }
