// Package client is a clockhygiene fixture: its import-path base makes
// it a protocol package, so every ambient wall-clock access below is a
// violation unless a directive covers it.
package client

import "time"

// Tick exercises the unit-system carve-out: time.Duration and the
// duration constants are types and values, not clock reads.
const Tick = 50 * time.Millisecond

func violations() time.Time {
	deadline := time.Now()    // want `time.Now bypasses the injected clock`
	time.Sleep(Tick)          // want `time.Sleep bypasses the injected clock`
	<-time.After(Tick)        // want `time.After bypasses the injected clock`
	_ = time.Since(deadline)  // want `time.Since bypasses the injected clock`
	tm := time.NewTimer(Tick) // want `time.NewTimer bypasses the injected clock`
	tm.Stop()
	return deadline
}

func allowedLine() {
	start := time.Now() //lint:allow clockhygiene(measures the harness itself, not protocol time)
	_ = start
}

// allowedFunc stamps wall time for an operator-facing report; the
// function-doc directive covers its whole body.
//
//lint:allow clockhygiene(report timestamps are operator-facing wall time by design)
func allowedFunc() time.Time {
	first := time.Now()
	second := time.Now()
	_ = second
	return first
}

func wrongAnalyzerDirective() {
	//lint:allow locksafety(covers a different pass, so clockhygiene still fires)
	_ = time.Now() // want `time.Now bypasses the injected clock`
}
