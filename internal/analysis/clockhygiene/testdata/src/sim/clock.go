// Package sim is the clockhygiene fixture for the one sanctioned file:
// sim/clock.go defines the wall-clock adapter the rest of the tree
// injects, so its direct time calls are exempt by construction.
package sim

import "time"

func wallNow() time.Time { return time.Now() }
