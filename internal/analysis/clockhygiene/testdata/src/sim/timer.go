package sim

import "time"

// elapsed lives outside clock.go, so the sim carve-out does not apply.
func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since bypasses the injected clock`
}
