// Package locksafety flags blocking operations performed while a
// sync.Mutex or sync.RWMutex is held, plus intraprocedurally-detectable
// double-locks and cross-function lock-order inversions.
//
// Paper property: the protocol's liveness timers (keep-alive every
// τ(1-δ), steal after τ(1+ε)) only mean what the proof says if the
// goroutines that service them are never parked behind a mutex whose
// holder is blocked on the network or the media. The node executors are
// deliberately lock-free for protocol state; the mutexes that remain
// (transport connection tables, the stats registry, executor queues)
// are leaf locks that must only guard memory. Holding one across a
// channel operation, a dial, a gob encode, or a media fsync turns a
// slow peer into a stalled node — exactly the failure mode the lease
// machinery exists to bound.
//
// Scope: client, server, rpcnet, stats (by package-path base). The
// analysis is lexical and intraprocedural: a held-set is threaded down
// each function body, branches fork a copy, `go` statements and
// function literals start empty (they run on other goroutines or at
// other times). That cannot prove absence of deadlock — it machine-
// checks the discipline the code review would otherwise re-litigate.
//
// Rules:
//
//	L1  blocking op (chan send/recv outside select-with-default, net
//	    dial/listen, wire.Codec Send/Recv, blockstore.Media I/O,
//	    (*os.File).Sync, WaitGroup.Wait, time.Sleep/sim.Sleep) while a
//	    mutex is held
//	L2  Lock/RLock of a mutex already held on the same expression
//	L3  lock-order inversion: some function takes A then B while
//	    another takes B then A (keys are Type.field, per package)
package locksafety

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the locksafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafety",
	Doc: "flag blocking operations, double-locks, and lock-order inversions " +
		"while a sync mutex is held in client/server/rpcnet/stats",
	Run: run,
}

var scopePkgs = map[string]bool{
	"client": true,
	"server": true,
	"rpcnet": true,
	"stats":  true,
}

// blockingFuncs are package-level functions that can block the caller.
var blockingFuncs = map[[2]string]bool{
	{"time", "Sleep"}:      true,
	{"sim", "Sleep"}:       true,
	{"net", "Dial"}:        true,
	{"net", "DialTimeout"}: true,
	{"net", "Listen"}:      true,
}

// blockingMethods are methods (by receiver type) that can block: network
// round-trips, gob encode/decode on a socket, media I/O and fsync.
var blockingMethods = map[[3]string]bool{
	{"wire", "Codec", "Send"}:           true,
	{"wire", "Codec", "Recv"}:           true,
	{"wire", "Codec", "SendHello"}:      true,
	{"wire", "Codec", "RecvHello"}:      true,
	{"net", "Conn", "Read"}:             true,
	{"net", "Conn", "Write"}:            true,
	{"blockstore", "Media", "Read"}:     true,
	{"blockstore", "Media", "Write"}:    true,
	{"blockstore", "Media", "WriteV"}:   true,
	{"blockstore", "Media", "SetFence"}: true,
	{"blockstore", "File", "Write"}:     true,
	{"blockstore", "File", "WriteV"}:    true,
	{"os", "File", "Sync"}:              true,
	{"sync", "WaitGroup", "Wait"}:       true,
}

// lockInfo describes one held mutex.
type lockInfo struct {
	kind    string // "Lock" or "RLock"
	typeKey string // Type.field key for ordering
	pos     token.Pos
}

type held map[string]*lockInfo // instance key ("t.mu") → info

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// edge is one observed acquisition order between two type-keyed locks.
type edge struct{ first, second string }

type scanner struct {
	pass  *analysis.Pass
	edges map[edge]token.Pos
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	s := &scanner{pass: pass, edges: make(map[edge]token.Pos)}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.scanStmts(fd.Body.List, make(held))
		}
	}
	// L3: report each inverted pair once, deterministically.
	var pairs []edge
	for e := range s.edges {
		if e.first < e.second {
			if _, ok := s.edges[edge{e.second, e.first}]; ok {
				pairs = append(pairs, e)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].first < pairs[j].first })
	for _, e := range pairs {
		pass.Reportf(s.edges[edge{e.second, e.first}],
			"lock-order inversion: %s is taken while holding %s here, but elsewhere %s is taken while holding %s — pick one order",
			e.first, e.second, e.second, e.first)
	}
	return nil
}

// scanStmts threads the held-set through a statement list in order.
func (s *scanner) scanStmts(stmts []ast.Stmt, h held) {
	for _, st := range stmts {
		s.scanStmt(st, h)
	}
}

func (s *scanner) scanStmt(st ast.Stmt, h held) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.scanExpr(st.X, h, false)
	case *ast.SendStmt:
		s.scanExpr(st.Chan, h, false)
		s.scanExpr(st.Value, h, false)
		s.blockingOp(st.Arrow, "channel send", h)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.scanExpr(e, h, false)
		}
		for _, e := range st.Lhs {
			s.scanExpr(e, h, false)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.scanExpr(e, h, false)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() pins the lock to function exit: keep it
		// held (everything after is genuinely under the lock) but make a
		// later explicit Unlock unnecessary. Other deferred calls run
		// after the locks here are gone; don't scan their bodies.
		if kind, key, _ := s.lockCall(st.Call); kind == "Unlock" || kind == "RUnlock" {
			_ = key // the lock stays held until return by definition
		}
	case *ast.GoStmt:
		// A new goroutine holds nothing.
		for _, arg := range st.Call.Args {
			s.scanExpr(arg, h, false)
		}
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.scanStmts(fl.Body.List, make(held))
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.scanExpr(e, h, false)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, h)
		}
		s.scanExpr(st.Cond, h, false)
		s.scanStmts(st.Body.List, h.clone())
		if st.Else != nil {
			s.scanStmt(st.Else, h.clone())
		}
	case *ast.BlockStmt:
		s.scanStmts(st.List, h)
	case *ast.ForStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, h)
		}
		if st.Cond != nil {
			s.scanExpr(st.Cond, h, false)
		}
		s.scanStmts(st.Body.List, h.clone())
	case *ast.RangeStmt:
		s.scanExpr(st.X, h, false)
		s.scanStmts(st.Body.List, h.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.scanStmt(st.Init, h)
		}
		if st.Tag != nil {
			s.scanExpr(st.Tag, h, false)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, h.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, h.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil && !hasDefault {
				// Without a default the select parks until a case fires.
				s.blockingOp(cc.Comm.Pos(), "select without default", h)
			}
			s.scanStmts(cc.Body, h.clone())
		}
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt, h)
	}
}

// scanExpr walks an expression: lock/unlock calls mutate h, receives and
// blocking calls are checked against it. inSelect suppresses receive
// reports (the select statement handles them).
func (s *scanner) scanExpr(e ast.Expr, h held, inSelect bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		s.call(e, h)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW && !inSelect {
			s.blockingOp(e.OpPos, "channel receive", h)
		}
		s.scanExpr(e.X, h, inSelect)
	case *ast.BinaryExpr:
		s.scanExpr(e.X, h, inSelect)
		s.scanExpr(e.Y, h, inSelect)
	case *ast.ParenExpr:
		s.scanExpr(e.X, h, inSelect)
	case *ast.SelectorExpr:
		s.scanExpr(e.X, h, inSelect)
	case *ast.IndexExpr:
		s.scanExpr(e.X, h, inSelect)
		s.scanExpr(e.Index, h, inSelect)
	case *ast.FuncLit:
		// Runs at some other time, with locks we cannot see. Scan with an
		// empty held-set so its own locking is still checked.
		s.scanStmts(e.Body.List, make(held))
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.scanExpr(el, h, inSelect)
		}
	case *ast.KeyValueExpr:
		s.scanExpr(e.Value, h, inSelect)
	case *ast.StarExpr:
		s.scanExpr(e.X, h, inSelect)
	case *ast.TypeAssertExpr:
		s.scanExpr(e.X, h, inSelect)
	}
}

// call handles one call expression: mutex transitions, blocking checks,
// and recursion into arguments.
func (s *scanner) call(call *ast.CallExpr, h held) {
	for _, arg := range call.Args {
		s.scanExpr(arg, h, false)
	}
	if kind, key, typeKey := s.lockCall(call); kind != "" {
		switch kind {
		case "Lock", "RLock":
			if prev, ok := h[key]; ok && !(kind == "RLock" && prev.kind == "RLock") {
				s.pass.Reportf(call.Pos(),
					"%s of %s which is already held (acquired at %s): guaranteed self-deadlock",
					kind, key, s.pass.Fset.Position(prev.pos))
			}
			for _, prev := range h {
				if prev.typeKey != typeKey {
					if _, ok := s.edges[edge{prev.typeKey, typeKey}]; !ok {
						s.edges[edge{prev.typeKey, typeKey}] = call.Pos()
					}
				}
			}
			h[key] = &lockInfo{kind: kind, typeKey: typeKey, pos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(h, key)
		}
		return
	}
	s.checkBlockingCall(call, h)
}

// lockCall classifies a call as a sync.Mutex/RWMutex transition. It
// returns the method kind, the instance key (source rendering of the
// receiver, e.g. "t.mu"), and the type key (e.g. "Transport.mu").
func (s *scanner) lockCall(call *ast.CallExpr) (kind, key, typeKey string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", ""
	}
	fn, _ := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", "", ""
	}
	recv := analysis.RecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", "", ""
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", ""
	}
	return sel.Sel.Name, types.ExprString(sel.X), s.typeKey(sel.X)
}

// typeKey renders a mutex expression as Type.field so the same lock is
// named identically across functions ("t.mu" and "tr.mu" both become
// "Transport.mu").
func (s *scanner) typeKey(x ast.Expr) string {
	if sel, ok := ast.Unparen(x).(*ast.SelectorExpr); ok {
		if tv, ok := s.pass.TypesInfo.Types[sel.X]; ok {
			if named := analysis.NamedOf(tv.Type); named != nil {
				return named.Obj().Name() + "." + sel.Sel.Name
			}
		}
	}
	return types.ExprString(x)
}

// checkBlockingCall reports curated blocking callees while locked.
func (s *scanner) checkBlockingCall(call *ast.CallExpr, h held) {
	fn := analysis.Callee(s.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkgBase := analysis.PkgBase(fn.Pkg().Path())
	if recv := analysis.RecvNamed(fn); recv != nil {
		recvPkg := pkgBase
		if recv.Obj().Pkg() != nil {
			recvPkg = analysis.PkgBase(recv.Obj().Pkg().Path())
		}
		if blockingMethods[[3]string{recvPkg, recv.Obj().Name(), fn.Name()}] {
			s.blockingOp(call.Pos(), fmt.Sprintf("call to (%s.%s).%s", recvPkg, recv.Obj().Name(), fn.Name()), h)
		}
		return
	}
	if blockingFuncs[[2]string{pkgBase, fn.Name()}] {
		s.blockingOp(call.Pos(), fmt.Sprintf("call to %s.%s", pkgBase, fn.Name()), h)
	}
}

// blockingOp reports op if any mutex is currently held.
func (s *scanner) blockingOp(pos token.Pos, op string, h held) {
	if len(h) == 0 {
		return
	}
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	info := h[keys[0]]
	s.pass.Reportf(pos,
		"%s while %s is held (acquired at %s): a blocked peer stalls every goroutine contending for this mutex; release it first or hand off to a goroutine",
		op, keys[0], s.pass.Fset.Position(info.pos))
}
