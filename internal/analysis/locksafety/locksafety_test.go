package locksafety_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/locksafety"
)

func TestLockSafety(t *testing.T) {
	analysistest.Run(t, locksafety.Analyzer, "rpcnet", "stats", "worker")
}
