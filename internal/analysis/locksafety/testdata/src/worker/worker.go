// Package worker is a locksafety negative fixture: out of scope, so
// even a blocking send under a held mutex is not this pass's business.
package worker

import "sync"

type Queue struct {
	mu sync.Mutex
	ch chan int
}

func (q *Queue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v
}
