// Package stats is a locksafety fixture for the sanctioned patterns: a
// registry whose mutex only ever guards memory.
package stats

import "sync"

type Registry struct {
	mu       sync.RWMutex
	counters map[string]uint64
	dirty    chan string
}

func (r *Registry) Inc(name string) {
	r.mu.Lock()
	r.counters[name]++
	r.mu.Unlock()
	select {
	case r.dirty <- name:
	default:
	}
}

func (r *Registry) Get(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name]
}
