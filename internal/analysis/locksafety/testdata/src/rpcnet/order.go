package rpcnet

import "sync"

// registry and pool exist to witness a lock-order inversion: abOrder
// establishes registry-then-pool, baOrder the reverse. The report names
// the alphabetically-first lock and lands on the acquisition that took
// it second.
type registry struct{ mu sync.Mutex }

type pool struct{ mu sync.Mutex }

func abOrder(r *registry, p *pool) {
	r.mu.Lock()
	p.mu.Lock() // want `lock-order inversion: pool.mu is taken while holding registry.mu`
	p.mu.Unlock()
	r.mu.Unlock()
}

func baOrder(r *registry, p *pool) {
	p.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	p.mu.Unlock()
}
