// Package rpcnet is a locksafety fixture: an in-scope package whose
// mutexes are leaf locks, so blocking while holding one is a finding.
package rpcnet

import (
	"sync"
	"time"
)

type Transport struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	conns map[int]int
	ch    chan int
}

func (t *Transport) sendUnderLock() {
	t.mu.Lock()
	t.ch <- 1 // want `channel send while t.mu is held`
	t.mu.Unlock()
}

func (t *Transport) recvUnderDeferredLock() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.ch // want `channel receive while t.mu is held`
}

func (t *Transport) sleepUnderRLock() {
	t.rw.RLock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep while t.rw is held`
	t.rw.RUnlock()
}

func (t *Transport) selectNoDefault() {
	t.mu.Lock()
	select {
	case v := <-t.ch: // want `select without default while t.mu is held`
		_ = v
	case t.ch <- 0: // want `select without default while t.mu is held`
	}
	t.mu.Unlock()
}

func (t *Transport) selectWithDefault() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-t.ch:
		return v
	default:
		return 0
	}
}

func (t *Transport) releasedFirst() {
	t.mu.Lock()
	n := len(t.conns)
	t.mu.Unlock()
	t.ch <- n
}

func (t *Transport) handoff() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.ch <- 1
	}()
}

func (t *Transport) doubleLock() {
	t.mu.Lock()
	t.mu.Lock() // want `Lock of t.mu which is already held`
	t.mu.Unlock()
}

func (t *Transport) doubleRLock() {
	t.rw.RLock()
	t.rw.RLock()
	t.rw.RUnlock()
	t.rw.RUnlock()
}

func (t *Transport) upgradeAttempt() {
	t.rw.RLock()
	t.rw.Lock() // want `Lock of t.rw which is already held`
	t.rw.Unlock()
	t.rw.RUnlock()
}

func (t *Transport) waitUnderLock(wg *sync.WaitGroup) {
	t.mu.Lock()
	defer t.mu.Unlock()
	wg.Wait() // want `call to \(sync.WaitGroup\).Wait while t.mu is held`
}
