// Package msg is the bufown-fixture stub of the envelope borrow: the
// checker matches Envelope.Retain/Release/Borrowed by receiver type
// name and package basename.
package msg

type NodeID uint64

type Envelope struct {
	From, To NodeID
	Payload  any
	refs     int
	free     func()
}

func (e *Envelope) Borrowed(free func()) { e.refs, e.free = 1, free }

func (e *Envelope) Retain() { e.refs++ }

func (e *Envelope) Release() {
	e.refs--
	if e.refs == 0 && e.free != nil {
		e.free()
	}
}
