// Package bufpool is the bufown-fixture stub of the real pool: the
// checker matches Get and Put by package basename and function name, so
// the bodies can be trivial.
package bufpool

func Get(n int) []byte { return make([]byte, n) }

func Put(b []byte) { _ = b }
