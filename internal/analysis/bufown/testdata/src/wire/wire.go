// Package wire is the bufown fixture for the pooled-buffer rules:
// leaks (including branch-dependent ones), double Put, use after Put,
// defer Put, loop re-Get, sanctioned and unsanctioned escapes, and the
// err-guard over owned sources.
package wire

import (
	"errors"

	"repro/internal/analysis/bufown/testdata/src/bufpool"
)

func okStraightLine(n int) {
	buf := bufpool.Get(n)
	copy(buf, buf)
	bufpool.Put(buf)
}

func leakNoPut(n int) {
	buf := bufpool.Get(n) // want `pooled buffer is not released on every path`
	_ = buf
}

func leakBranchDependent(n int, cond bool) {
	buf := bufpool.Get(n) // want `pooled buffer is not released on every path`
	if cond {
		bufpool.Put(buf)
	}
}

func okBothBranchesPut(n int, cond bool) {
	buf := bufpool.Get(n)
	if cond {
		bufpool.Put(buf)
	} else {
		bufpool.Put(buf)
	}
}

func okSwitchWithDefault(n, k int) {
	// Exactness check: a switch with a default has no "no clause ran"
	// path, so putting in every clause is a complete release.
	buf := bufpool.Get(n)
	switch k {
	case 0:
		bufpool.Put(buf)
	default:
		bufpool.Put(buf)
	}
}

func leakSwitchWithoutDefault(n, k int) {
	buf := bufpool.Get(n) // want `pooled buffer is not released on every path`
	switch k {
	case 0:
		bufpool.Put(buf)
	}
}

func doublePut(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	bufpool.Put(buf) // want `buffer may be returned to the pool twice`
}

func doublePutOnOnePath(n int, cond bool) {
	buf := bufpool.Get(n)
	if cond {
		bufpool.Put(buf)
	}
	bufpool.Put(buf) // want `buffer may be returned to the pool twice`
}

func useAfterPut(n int) {
	buf := bufpool.Get(n)
	bufpool.Put(buf)
	copy(buf, buf) // want `use of pooled buffer after it was returned to the pool`
}

func okDeferPut(n int) int {
	buf := bufpool.Get(n)
	defer bufpool.Put(buf)
	return len(buf)
}

func deferThenExplicitPut(n int) {
	buf := bufpool.Get(n)
	defer bufpool.Put(buf)
	bufpool.Put(buf) // want `buffer may be returned to the pool twice`
}

func okDeferClosurePut(n int) {
	buf := bufpool.Get(n)
	defer func() { bufpool.Put(buf) }()
	copy(buf, buf)
}

func loopReGet(n int) {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = bufpool.Get(n) // want `buffer from a previous loop iteration may still be owned at this Get`
	}
	_ = buf
}

func okLoopPutEachIteration(n int) {
	for i := 0; i < n; i++ {
		buf := bufpool.Get(n)
		bufpool.Put(buf)
	}
}

type frame struct {
	data []byte
}

func escapeUnsanctionedField(f *frame, n int) {
	buf := bufpool.Get(n)
	f.data = buf // want `owned buffer escapes into a field or element without //tank:adopt or //tank:alias`
}

func okAdoptedField(f *frame, n int) {
	buf := bufpool.Get(n)
	f.data = buf //tank:adopt(frame owns its data until reset)
}

func okAliasedStaging(f *frame, n int) {
	buf := bufpool.Get(n)
	//tank:alias(staged for the write below; ownership stays here)
	f.data = buf
	bufpool.Put(buf)
}

var sink func()

func escapeClosure(n int) {
	buf := bufpool.Get(n)
	sink = func() { // want `owned buffer escapes into a closure without //tank:adopt or //tank:alias`
		copy(buf, buf)
	}
}

func okClosureCarriesPut(n int, schedule func(func())) {
	buf := bufpool.Get(n)
	schedule(func() { bufpool.Put(buf) })
}

func consume(b []byte) { _ = b }

func escapeGoroutine(n int) {
	buf := bufpool.Get(n)
	go consume(buf) // want `owned buffer escapes into a goroutine`
}

var bufCh = make(chan []byte, 1)

func escapeChannelSend(n int) {
	buf := bufpool.Get(n)
	bufCh <- buf // want `owned buffer escapes into a channel send`
}

func fill(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, errors.New("empty")
	}
	return len(p), nil
}

// getChecked fills a fresh buffer, releasing it on the error path.
//
//tank:owns result
func getChecked(n int) ([]byte, error) {
	buf := bufpool.Get(n)
	if _, err := fill(buf); err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	return buf, nil
}

func okGuardedCaller(n int) {
	buf, err := getChecked(n)
	if err != nil {
		return
	}
	bufpool.Put(buf)
}

func leakGuardedCaller(n int) {
	buf, err := getChecked(n) // want `pooled buffer is not released on every path`
	if err != nil {
		return
	}
	_ = buf
}

func returnWithoutOwnsResult(n int) []byte {
	buf := bufpool.Get(n)
	return buf // want `owned buffer returned without a //tank:owns result annotation`
}

func allowListedLeak(n int) {
	buf := bufpool.Get(n) //lint:allow bufown(deliberate leak exercising suppression)
	_ = buf
}
