// Package client is the bufown fixture for //tank:owns ownership
// transfer: annotated sinks consume owned buffers, the callee side of
// the promise is enforced, and a closure handed to the same call that
// transfers the buffer is not a separate escape.
package client

import (
	"repro/internal/analysis/bufown/testdata/src/bufpool"
)

type pending struct {
	buf []byte
}

type C struct {
	q []*pending
}

// enqueueOwned parks the buffer on the retry queue until completion.
//
//tank:owns buf
func (c *C) enqueueOwned(d uint64, buf []byte) {
	p := &pending{buf: buf} //tank:adopt(released when the pending op completes)
	_ = d
	c.q = append(c.q, p)
}

// dropsOwned promises to consume buf but forgets the cond=false path.
//
//tank:owns buf
func (c *C) dropsOwned(buf []byte, cond bool) { // want `pooled buffer is not released on every path`
	if cond {
		bufpool.Put(buf)
	}
}

func (c *C) okTransferToSink(d uint64, data []byte) {
	buf := bufpool.Get(len(data))
	copy(buf, data)
	c.enqueueOwned(d, buf)
}

// callBuf owns buf and runs build once the buffer is staged — the
// sanCallBuf shape from the real client.
//
//tank:owns buf
func (c *C) callBuf(build func(), buf []byte) {
	p := &pending{buf: buf} //tank:adopt(released when the pending op completes)
	c.q = append(c.q, p)
	build()
}

func (c *C) okSameCallClosureAndTransfer(data []byte) {
	buf := bufpool.Get(len(data))
	copy(buf, data)
	// The closure captures buf, but the same call takes ownership of
	// it via the annotated parameter: not an escape.
	c.callBuf(func() { copy(buf, buf) }, buf)
}

// badDoc names a parameter that does not exist.
//
//tank:owns nosuch // want `//tank:owns names unknown parameter "nosuch"`
func badDoc() {}
