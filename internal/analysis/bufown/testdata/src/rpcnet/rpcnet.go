// Package rpcnet is the bufown fixture for the envelope refcount
// rules: owned borrows from Recv, Retain/Release balance per path,
// closure-credited releases, and underflow.
package rpcnet

import (
	"errors"

	"repro/internal/analysis/bufown/testdata/src/msg"
)

type codec struct{ closed bool }

func (c *codec) Recv() (*msg.Envelope, error) {
	if c.closed {
		return nil, errors.New("closed")
	}
	return &msg.Envelope{}, nil
}

type transport struct {
	c       *codec
	handler func(msg.Envelope)
	submit  func(func())
}

func (t *transport) okReadLoop() {
	for {
		env, err := t.c.Recv()
		if err != nil {
			return
		}
		e := *env
		t.submit(func() {
			t.handler(e)
			e.Release()
		})
	}
}

func (t *transport) okDropPath(bad bool) {
	env, err := t.c.Recv()
	if err != nil {
		return
	}
	if bad {
		env.Release()
		return
	}
	e := *env
	t.submit(func() { t.handler(e); e.Release() })
}

func (t *transport) leakRecvNoRelease() {
	env, err := t.c.Recv() // want `Envelope retain/borrow is not balanced by a Release on every path`
	if err != nil {
		return
	}
	t.handler(*env)
}

func (t *transport) leakRetain(e *msg.Envelope) { // want `Envelope retain/borrow is not balanced by a Release on every path`
	e.Retain()
	t.handler(*e)
}

func (t *transport) okRetainDeferRelease(e *msg.Envelope) {
	e.Retain()
	defer e.Release()
	t.handler(*e)
}

func (t *transport) underflowRelease(e *msg.Envelope) {
	e.Release() // want `Envelope.Release without a matching Retain or borrow`
}

func (t *transport) okDeliverStyle(env msg.Envelope, heavy bool) {
	// The disk.Deliver shape: Retain for a deferred-queue closure that
	// releases after the service call.
	if heavy {
		env.Retain()
		t.submit(func() { env.Release() })
	}
	t.handler(env)
}

func (t *transport) leakRetainOnBranch(env msg.Envelope, heavy bool) { // want `Envelope retain/borrow is not balanced by a Release on every path`
	if heavy {
		env.Retain()
	}
	t.handler(env)
}
