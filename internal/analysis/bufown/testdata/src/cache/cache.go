// Package cache is the bufown fixture for adopt/alias at field stores
// and composite literals — the intern path of the real block cache.
package cache

import (
	"repro/internal/analysis/bufown/testdata/src/bufpool"
)

type page struct {
	Data []byte
}

type store struct {
	pages map[string]*page
}

func (s *store) okReplace(key string, data []byte) {
	p := s.pages[key]
	// Field-held buffers are untracked by design: the Put below is
	// invisible to the checker, and the fresh Get is adopted by the
	// page.
	bufpool.Put(p.Data)
	p.Data = bufpool.Get(len(data)) //tank:adopt(page owns Data; released by invalidate)
	copy(p.Data, data)
}

func (s *store) internLeak(key string, n int) {
	buf := bufpool.Get(n)
	s.pages[key] = &page{Data: buf} // want `owned buffer escapes into a composite literal`
}

func (s *store) okInternAdopted(key string, n int) {
	buf := bufpool.Get(n)
	//tank:adopt(page owns Data; released by invalidate)
	s.pages[key] = &page{Data: buf}
}
