package bufown

import (
	"go/token"
	"go/types"

	"repro/internal/analysis/dataflow"
)

// A cell is one tracked abstract object — a pooled buffer obtained from
// one bufpool.Get site (or owned parameter), or one envelope borrow.
// Cells are keyed by the source position that created them, so a Get
// inside a loop maps every iteration onto the same cell and the re-Get
// check can see the previous iteration's leftover state arrive on the
// back edge.
type cellID token.Pos

type cellKind uint8

const (
	kindBuffer cellKind = iota
	kindEnvelope
)

// Buffer ownership bits. A cell's bits form a SET of states the buffer
// may be in — joins union them, so {owned|released} means "put on one
// path, still owned on another" (the shape of a branch-dependent leak).
const (
	bOwned    uint16 = 1 << iota // caller holds it; must reach Put or a transfer
	bReleased                    // returned to the pool (Put); any use is a bug
	bEscaped                     // ownership transferred (annotated sink/adopt/return)
	bDeferPut                    // a deferred Put will release it at return
)

// Envelope delta bits: bit i (0..3) set means "net Retain-minus-Release
// on some path is i". Underflow marks a Release that had nothing to
// match — it is reported at the Release site, so the bit only keeps the
// state from oscillating afterwards.
const (
	eUnderflow uint16 = 1 << 8
	eOverflow  uint16 = 1 << 9
	eDeltaMask uint16 = 0x0F
)

// shiftDelta moves every delta bit by d (+1 Retain, -1 Release),
// saturating into the underflow/overflow flags.
func shiftDelta(bits uint16, d int) uint16 {
	deltas := bits & eDeltaMask
	flags := bits &^ eDeltaMask
	var out uint16
	for i := 0; i < 4; i++ {
		if deltas&(1<<i) == 0 {
			continue
		}
		n := i + d
		switch {
		case n < 0:
			flags |= eUnderflow
		case n > 3:
			flags |= eOverflow
		default:
			out |= 1 << n
		}
	}
	return out | flags
}

type cell struct {
	kind cellKind
	bits uint16
	// guard conditions ownership on an error variable being nil: the
	// cell came from a (value, error) source, and on the error≠nil
	// edge the value was never owned. Cleared once the branch decides.
	guard *types.Var
}

func (c *cell) clone() *cell { d := *c; return &d }

// state is the dataflow fact: live cells plus the binding of local
// variables to the cells they may name (usually exactly one; joins can
// widen a binding to several).
type state struct {
	cells map[cellID]*cell
	bind  map[*types.Var][]cellID
}

func newState() *state {
	return &state{cells: map[cellID]*cell{}, bind: map[*types.Var][]cellID{}}
}

func (s *state) Clone() dataflow.State {
	c := &state{
		cells: make(map[cellID]*cell, len(s.cells)),
		bind:  make(map[*types.Var][]cellID, len(s.bind)),
	}
	for id, cl := range s.cells {
		c.cells[id] = cl.clone()
	}
	for v, ids := range s.bind {
		c.bind[v] = append([]cellID(nil), ids...)
	}
	return c
}

func (s *state) JoinInto(other dataflow.State) bool {
	o := other.(*state)
	changed := false
	for id, oc := range o.cells {
		sc, ok := s.cells[id]
		if !ok {
			s.cells[id] = oc.clone()
			changed = true
			continue
		}
		if merged := sc.bits | oc.bits; merged != sc.bits {
			sc.bits = merged
			changed = true
		}
		if sc.guard != oc.guard {
			// Conflicting guards: drop the refinement (conservative —
			// the cell stays owned on both edges).
			if sc.guard != nil {
				sc.guard = nil
				changed = true
			}
		}
	}
	for v, oids := range o.bind {
		sids := s.bind[v]
		for _, id := range oids {
			found := false
			for _, have := range sids {
				if have == id {
					found = true
					break
				}
			}
			if !found {
				sids = append(sids, id)
				changed = true
			}
		}
		s.bind[v] = sids
	}
	return changed
}

// get returns the cell, creating it with the given kind and bits when
// absent.
func (s *state) get(id cellID, kind cellKind, initBits uint16) *cell {
	if c, ok := s.cells[id]; ok {
		return c
	}
	c := &cell{kind: kind, bits: initBits}
	s.cells[id] = c
	return c
}

// kill removes a cell and every binding to it (the err != nil edge of a
// guarded source: the value never existed on this path).
func (s *state) kill(id cellID) {
	delete(s.cells, id)
	for v, ids := range s.bind {
		out := ids[:0]
		for _, have := range ids {
			if have != id {
				out = append(out, have)
			}
		}
		if len(out) == 0 {
			delete(s.bind, v)
		} else {
			s.bind[v] = out
		}
	}
}

// rebind points v at exactly the given cells.
func (s *state) rebind(v *types.Var, ids []cellID) {
	if len(ids) == 0 {
		delete(s.bind, v)
		return
	}
	s.bind[v] = append([]cellID(nil), ids...)
}
