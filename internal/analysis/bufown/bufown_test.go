package bufown_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, bufown.Analyzer,
		"bufpool", "msg", "wire", "rpcnet", "client", "cache")
}
