// Package bufown is the flow-sensitive ownership checker for the
// pooled-buffer borrow contract: every buffer obtained from bufpool.Get
// must reach exactly one bufpool.Put or one sanctioned ownership
// transfer on every control-flow path, must never be used after it was
// returned to the pool, and msg.Envelope Retain/Release pairs must
// balance per handler path.
//
// The pass runs a forward abstract interpretation (internal/analysis/
// dataflow) over each function's CFG (internal/analysis/cfg). The
// abstract state tracks one cell per allocation site — a bitset over
// {owned, released, escaped, defer-put} for buffers, a clamped
// refcount delta for envelopes — and a binding from local variables to
// the cells they may name. Joins union the bitsets, so a Put on only
// one branch arm surfaces as {owned|released} at the join: the shape of
// a branch-dependent leak.
//
// Ownership transfers the checker cannot see from code alone are
// declared with //tank: annotations (see annot.go). What the checker
// deliberately does NOT model: buffers stored in struct fields (their
// lifetime is the enclosing object's — stores must be //tank:adopt
// annotated and the field's release audited by hand), and cross-
// goroutine happens-before (a closure that puts a captured buffer is
// trusted to run exactly once).
package bufown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc: "enforce the pooled-buffer ownership contract: every bufpool.Get " +
		"reaches exactly one Put or sanctioned //tank:owns transfer on every " +
		"path, no use after Put, and Envelope Retain/Release balance per path",
	Run: run,
}

// checkedPkgs are the package basenames that participate in the
// pooled-buffer contract.
var checkedPkgs = map[string]bool{
	"bufpool": true,
	"msg":     true,
	"wire":    true,
	"rpcnet":  true,
	"client":  true,
	"cache":   true,
	"disk":    true,
}

func run(pass *analysis.Pass) error {
	if !checkedPkgs[analysis.PkgBase(pass.Pkg.Path())] {
		return nil
	}
	ctx := newCtx(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if err := ctx.checkBody(fd, fd.Body, fn); err != nil {
				return err
			}
			// Function literals are analyzed standalone as well: their
			// bodies are opaque to the enclosing function's CFG, and a
			// Get/Put bug inside a closure is as real as one outside.
			// Free variables are untracked there (the enclosing
			// analysis covers them via the capture scan).
			var inner []*ast.FuncLit
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					inner = append(inner, lit)
				}
				return true
			})
			for _, lit := range inner {
				if err := ctx.checkBody(lit, lit.Body, nil); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkBody analyzes one function (or function literal) body. scope is
// the enclosing declaration or literal: variables declared outside it
// (a closure's free variables) belong to the enclosing function's
// analysis and are never materialized here.
func (c *ctx) checkBody(scope ast.Node, body *ast.BlockStmt, fn *types.Func) error {
	fc := &fclient{
		ctx:      c,
		scopeLo:  scope.Pos(),
		scopeHi:  scope.End(),
		reported: map[reportKey]bool{},
		regetAt:  map[cellID]bool{},
	}
	st := newState()
	if fn != nil {
		if spec := c.docOwns[fn]; spec != nil {
			fc.ownsResult = spec.result
			// An owned parameter is a buffer this function promised
			// (via //tank:owns) to consume: seed it owned so the exit
			// check enforces the promise on the callee side too.
			sig := fn.Type().(*types.Signature)
			for _, i := range spec.params {
				if i >= sig.Params().Len() {
					continue
				}
				v := sig.Params().At(i)
				if !isBufferType(v.Type()) {
					continue
				}
				id := cellID(v.Pos())
				st.cells[id] = &cell{kind: kindBuffer, bits: bOwned}
				st.bind[v] = []cellID{id}
			}
		}
	}
	g := cfg.New(body)
	res, err := dataflow.Forward(g, st, fc)
	if err != nil {
		return fmt.Errorf("bufown: %v", err)
	}
	dataflow.Report(g, res, fc)
	fc.checkExit(res.In[g.Exit.Index])
	return nil
}

// fclient implements dataflow.Client for one function body.
type fclient struct {
	ctx        *ctx
	ownsResult bool
	// scopeLo..scopeHi is the analyzed declaration's extent: only
	// variables declared inside it may have cells materialized.
	scopeLo, scopeHi token.Pos
	// reported dedupes diagnostics within the reporting pass (one site
	// can be reached by several handler paths in Transfer).
	reported map[reportKey]bool
	// regetAt marks Get sites already reported for the loop re-Get
	// rule, so the exit leak check does not double-report them.
	regetAt map[cellID]bool
}

type reportKey struct {
	pos  token.Pos
	rule string
}

func (fc *fclient) reportOnce(report bool, pos token.Pos, rule, msg string) {
	if !report {
		return
	}
	k := reportKey{pos, rule}
	if fc.reported[k] {
		return
	}
	fc.reported[k] = true
	fc.ctx.pass.Reportf(pos, "%s", msg)
}

func (fc *fclient) Transfer(n ast.Node, s dataflow.State, report bool) {
	st := s.(*state)
	switch n := n.(type) {
	case *ast.AssignStmt:
		fc.assign(n, st, report)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			idents := make([]ast.Expr, len(vs.Names))
			for i, nm := range vs.Names {
				idents[i] = nm
			}
			fc.assignTo(idents, vs.Values, st, report)
		}
	case *ast.ExprStmt:
		fc.visit(n.X, st, report)
	case *ast.SendStmt:
		fc.visit(n.Chan, st, report)
		ids := fc.visit(n.Value, st, report)
		fc.escape(n.Value.Pos(), ids, st, report, "a channel send")
	case *ast.IncDecStmt:
		fc.visit(n.X, st, report)
	case *ast.DeferStmt:
		fc.deferStmt(n, st, report)
	case *ast.GoStmt:
		fc.goStmt(n, st, report)
	case *ast.ReturnStmt:
		fc.returnStmt(n, st, report)
	case *ast.RangeStmt:
		// Only the range expression: the body's statements live in
		// their own CFG blocks.
		fc.visit(n.X, st, report)
	case ast.Expr:
		// Branch conditions, switch tags, case expressions.
		fc.visit(n, st, report)
	}
}

// visit processes an expression — use checks, call effects, closure
// captures — and returns the tracked cells the expression's value may
// name.
func (fc *fclient) visit(e ast.Expr, st *state, report bool) []cellID {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		v, _ := fc.ctx.info.Uses[e].(*types.Var)
		if v == nil {
			return nil
		}
		ids := st.bind[v]
		for _, id := range ids {
			if cl := st.cells[id]; cl != nil && cl.kind == kindBuffer && cl.bits&bReleased != 0 {
				fc.reportOnce(report, e.Pos(), "useafterput",
					"use of pooled buffer after it was returned to the pool")
			}
		}
		return ids
	case *ast.ParenExpr:
		return fc.visit(e.X, st, report)
	case *ast.StarExpr:
		return fc.visit(e.X, st, report)
	case *ast.TypeAssertExpr:
		return fc.visit(e.X, st, report)
	case *ast.SliceExpr:
		// A subslice aliases the same backing array: same cells.
		ids := fc.visit(e.X, st, report)
		fc.visit(e.Low, st, report)
		fc.visit(e.High, st, report)
		fc.visit(e.Max, st, report)
		return ids
	case *ast.UnaryExpr:
		ids := fc.visit(e.X, st, report)
		if e.Op == token.AND {
			return ids
		}
		return nil
	case *ast.BinaryExpr:
		fc.visit(e.X, st, report)
		fc.visit(e.Y, st, report)
		return nil
	case *ast.CallExpr:
		return fc.call(e, st, report)
	case *ast.FuncLit:
		fc.capture(e, st, report, captureOpts{})
		return nil
	case *ast.SelectorExpr:
		fc.visit(e.X, st, report)
		return nil // field reads are untracked
	case *ast.IndexExpr:
		fc.visit(e.X, st, report)
		fc.visit(e.Index, st, report)
		return nil
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			ids := fc.visit(val, st, report)
			// A buffer stored into a composite literal outlives this
			// expression's view of it: ownership must be settled.
			fc.escape(val.Pos(), ids, st, report, "a composite literal")
		}
		return nil
	default:
		return nil
	}
}

// escape settles the fate of owned buffers flowing into a place the
// checker cannot follow. A //tank:adopt annotation sanctions the
// transfer, //tank:alias declares the variable keeps ownership;
// anything else is reported. Either way the cell leaves the owned
// state, so one bug yields one report.
func (fc *fclient) escape(pos token.Pos, ids []cellID, st *state, report bool, what string) {
	for _, id := range ids {
		cl := st.cells[id]
		if cl == nil || cl.kind != kindBuffer || cl.bits&bOwned == 0 {
			continue
		}
		if a, ok := fc.ctx.sanction(pos); ok {
			if a.kind == "alias" {
				continue // ownership (and the Put obligation) stays put
			}
			cl.bits = (cl.bits &^ bOwned) | bEscaped
			continue
		}
		fc.reportOnce(report, pos, "escape",
			"owned buffer escapes into "+what+" without //tank:adopt or //tank:alias")
		cl.bits = (cl.bits &^ bOwned) | bEscaped
	}
}

func (fc *fclient) assign(n *ast.AssignStmt, st *state, report bool) {
	// Tuple-from-call: v, err := f(). The tracked cells attach to the
	// value variable, and the error variable becomes their guard: the
	// err != nil edge never owned the value.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			ids := fc.call(call, st, report)
			var errVar *types.Var
			for _, lhs := range n.Lhs {
				if v := fc.lhsVar(lhs); v != nil && isErrorType(v.Type()) {
					errVar = v
				}
			}
			if errVar != nil {
				for _, id := range ids {
					if cl := st.cells[id]; cl != nil {
						cl.guard = errVar
					}
				}
			}
			for _, lhs := range n.Lhs {
				v := fc.lhsVar(lhs)
				if v == nil || v == errVar {
					continue
				}
				if isBufferType(v.Type()) || isEnvelopeType(v.Type()) {
					st.rebind(v, ids)
				} else {
					st.rebind(v, nil)
				}
			}
			return
		}
	}
	fc.assignTo(n.Lhs, n.Rhs, st, report)
}

// assignTo handles parallel assignment/definition (and var declarations
// with values): RHS evaluated left to right, then each LHS bound.
func (fc *fclient) assignTo(lhss, rhss []ast.Expr, st *state, report bool) {
	cells := make([][]cellID, len(rhss))
	for i, r := range rhss {
		cells[i] = fc.visit(r, st, report)
	}
	for i, lhs := range lhss {
		var ids []cellID
		if i < len(cells) {
			ids = cells[i]
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			v := fc.lhsVar(id)
			if v == nil {
				continue
			}
			if isBufferType(v.Type()) || isEnvelopeType(v.Type()) {
				st.rebind(v, ids)
			} else {
				st.rebind(v, nil)
			}
			continue
		}
		// Compound lvalue (field, element, deref): uses inside it are
		// checked, and an owned buffer stored through it escapes.
		fc.visit(lhs, st, report)
		fc.escape(lhs.Pos(), ids, st, report, "a field or element")
	}
}

func (fc *fclient) lhsVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := fc.ctx.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := fc.ctx.info.Uses[id].(*types.Var)
	return v
}

// call applies one call's ownership effects and returns the cells its
// result may name.
func (fc *fclient) call(call *ast.CallExpr, st *state, report bool) []cellID {
	fn := analysis.Callee(fc.ctx.info, call)
	sum := fc.ctx.summary(fn)

	// Builtins: fn is nil; append's result aliases its first argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fc.ctx.info.Uses[id].(*types.Builtin); isBuiltin {
			var first []cellID
			for i, a := range call.Args {
				ids := fc.visit(a, st, report)
				if i == 0 {
					first = ids
				}
			}
			if id.Name == "append" {
				return first
			}
			return nil
		}
	}

	// Receiver / callee expression.
	var recvCells []cellID
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvExpr = sel.X
		recvCells = fc.visit(sel.X, st, report)
	} else {
		fc.visit(call.Fun, st, report)
	}

	// Pass 1: ownership transfers and pool releases, before any
	// closure-capture scan — a buffer handed to an owned parameter in
	// the same call must not also be flagged as a closure escape.
	handled := make([]bool, len(call.Args))
	for _, i := range sum.owns {
		if i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			// An owned closure parameter (Envelope.Borrowed's free
			// func) adopts every owned buffer it captures.
			fc.capture(lit, st, report, captureOpts{owned: true})
		} else {
			for _, id := range fc.visit(arg, st, report) {
				if cl := st.cells[id]; cl != nil && cl.kind == kindBuffer {
					cl.bits = (cl.bits &^ bOwned) | bEscaped
				}
			}
		}
		handled[i] = true
	}
	for _, i := range sum.release {
		if i >= len(call.Args) {
			continue
		}
		for _, id := range fc.lookup(call.Args[i], st) {
			cl := st.cells[id]
			if cl == nil || cl.kind != kindBuffer {
				continue
			}
			if cl.bits&(bReleased|bDeferPut) != 0 {
				fc.reportOnce(report, call.Pos(), "doubleput",
					"buffer may be returned to the pool twice")
			}
			cl.bits = bReleased
			cl.guard = nil
		}
		handled[i] = true
	}

	// Pass 2: remaining arguments are borrows (checked for released
	// uses, closures scanned for captures).
	for i, arg := range call.Args {
		if handled[i] {
			continue
		}
		fc.visit(arg, st, report)
	}

	// Envelope refcount effects on the receiver.
	if sum.retain || sum.releaseRef || sum.borrowed {
		if len(recvCells) == 0 && recvExpr != nil {
			// First touch of an untracked envelope (e.g. a parameter):
			// materialize a balanced cell so the delta is tracked from
			// here on.
			if v := baseVar(fc.ctx.info, recvExpr); v != nil && isEnvelopeType(v.Type()) &&
				v.Pos() >= fc.scopeLo && v.Pos() <= fc.scopeHi {
				id := cellID(v.Pos())
				st.get(id, kindEnvelope, 1<<0)
				st.rebind(v, []cellID{id})
				recvCells = []cellID{id}
			}
		}
		for _, id := range recvCells {
			cl := st.cells[id]
			if cl == nil || cl.kind != kindEnvelope {
				continue
			}
			switch {
			case sum.borrowed:
				cl.bits = 1 << 1 // fresh borrow: refs=1, caller must settle it
			case sum.retain:
				cl.bits = shiftDelta(cl.bits, +1)
			case sum.releaseRef:
				pre := cl.bits
				cl.bits = shiftDelta(cl.bits, -1)
				if cl.bits&eUnderflow != 0 && pre&eUnderflow == 0 {
					fc.reportOnce(report, call.Pos(), "underflow",
						"Envelope.Release without a matching Retain or borrow")
				}
			}
		}
	}

	// Sources: the result is a fresh owned cell keyed by the call site.
	switch {
	case sum.bufSource || (sum.ownsResult && resultHasBuffer(fn)):
		id := cellID(call.Pos())
		if cl, ok := st.cells[id]; ok && cl.kind == kindBuffer &&
			cl.bits&bOwned != 0 && cl.bits&bDeferPut == 0 {
			fc.reportOnce(report, call.Pos(), "reget",
				"buffer from a previous loop iteration may still be owned at this Get")
			if report {
				fc.regetAt[id] = true
			}
		}
		st.cells[id] = &cell{kind: kindBuffer, bits: bOwned}
		return []cellID{id}
	case sum.envSource:
		id := cellID(call.Pos())
		st.cells[id] = &cell{kind: kindEnvelope, bits: 1 << 1}
		return []cellID{id}
	}
	return nil
}

func resultHasBuffer(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isBufferType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// lookup resolves an expression to cells purely syntactically, with no
// use checks or call effects — for release arguments, where the generic
// released-use check would double-report alongside the double-put rule.
func (fc *fclient) lookup(e ast.Expr, st *state) []cellID {
	if v := baseVar(fc.ctx.info, e); v != nil {
		return st.bind[v]
	}
	return nil
}

// baseVar unwraps parens, slices, derefs, and index expressions down to
// the root identifier's variable, or nil.
func baseVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

func (fc *fclient) deferStmt(n *ast.DeferStmt, st *state, report bool) {
	call := n.Call
	fn := analysis.Callee(fc.ctx.info, call)
	sum := fc.ctx.summary(fn)
	if len(sum.release) > 0 {
		// defer bufpool.Put(buf): the release is pending on every path
		// from here to return — the cell satisfies the exit check but a
		// further explicit Put is a double release.
		for _, i := range sum.release {
			if i >= len(call.Args) {
				continue
			}
			for _, id := range fc.lookup(call.Args[i], st) {
				cl := st.cells[id]
				if cl == nil || cl.kind != kindBuffer {
					continue
				}
				if cl.bits&(bReleased|bDeferPut) != 0 {
					fc.reportOnce(report, call.Pos(), "doubleput",
						"buffer may be returned to the pool twice")
				}
				cl.bits |= bDeferPut
			}
		}
		return
	}
	if sum.releaseRef {
		// defer env.Release(): credited at registration — it runs on
		// every path from here, like the deferred Put.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			for _, id := range fc.lookup(sel.X, st) {
				cl := st.cells[id]
				if cl == nil || cl.kind != kindEnvelope {
					continue
				}
				pre := cl.bits
				cl.bits = shiftDelta(cl.bits, -1)
				if cl.bits&eUnderflow != 0 && pre&eUnderflow == 0 {
					fc.reportOnce(report, call.Pos(), "underflow",
						"Envelope.Release without a matching Retain or borrow")
				}
			}
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fc.capture(lit, st, report, captureOpts{deferred: true})
		return
	}
	fc.call(call, st, report)
}

func (fc *fclient) goStmt(n *ast.GoStmt, st *state, report bool) {
	call := n.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fc.capture(lit, st, report, captureOpts{})
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		fc.visit(sel.X, st, report)
	}
	// An owned buffer crossing a goroutine boundary leaves this
	// function's control flow for good.
	for _, a := range call.Args {
		ids := fc.visit(a, st, report)
		fc.escape(a.Pos(), ids, st, report, "a goroutine")
	}
}

func (fc *fclient) returnStmt(n *ast.ReturnStmt, st *state, report bool) {
	for _, r := range n.Results {
		for _, id := range fc.visit(r, st, report) {
			cl := st.cells[id]
			if cl == nil {
				continue
			}
			switch cl.kind {
			case kindBuffer:
				if cl.bits&bOwned == 0 {
					continue
				}
				if !fc.ownsResult {
					fc.reportOnce(report, r.Pos(), "escape",
						"owned buffer returned without a //tank:owns result annotation")
				}
				cl.bits = (cl.bits &^ bOwned) | bEscaped
			case kindEnvelope:
				// Ownership of the borrow moves to the caller.
				st.kill(id)
			}
		}
	}
}

type captureOpts struct {
	// owned: the closure sits in a //tank:owns parameter position —
	// captured owned buffers transfer into it silently.
	owned bool
	// deferred: the closure runs at function exit — a Put inside it
	// counts as a deferred Put.
	deferred bool
}

// capture scans a function literal for tracked free variables and
// settles their cells: envelope refcount deltas inside the closure are
// credited at the creation site, and captured owned buffers must be
// transferred, put, or annotated.
func (fc *fclient) capture(lit *ast.FuncLit, st *state, report bool, opts captureOpts) {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := fc.ctx.info.Uses[id].(*types.Var)
		if v == nil || seen[v] {
			return true
		}
		ids := st.bind[v]
		if len(ids) == 0 {
			return true
		}
		seen[v] = true
		for _, cid := range ids {
			cl := st.cells[cid]
			if cl == nil {
				continue
			}
			switch cl.kind {
			case kindEnvelope:
				// Net Retain-minus-Release performed by the closure,
				// credited here: the closure runs exactly once (Submit
				// queues, withService defers) — a documented limit.
				net := fc.closureNetDelta(lit.Body, v)
				if net == 0 {
					continue
				}
				pre := cl.bits
				cl.bits = shiftDelta(cl.bits, net)
				if cl.bits&eUnderflow != 0 && pre&eUnderflow == 0 {
					fc.reportOnce(report, lit.Pos(), "underflow",
						"closure releases Envelope more times than were retained")
				}
			case kindBuffer:
				if cl.bits&bOwned == 0 {
					continue
				}
				switch {
				case opts.owned:
					cl.bits = (cl.bits &^ bOwned) | bEscaped
				case fc.closurePuts(lit.Body, v):
					if opts.deferred {
						cl.bits |= bDeferPut
					} else {
						// The closure carries the Put: ownership moves
						// into it (wire.Recv's free-closure shape).
						cl.bits = (cl.bits &^ bOwned) | bEscaped
					}
				default:
					fc.escape(lit.Pos(), []cellID{cid}, st, report, "a closure")
				}
			}
		}
		return true
	})
}

// closureNetDelta counts Retain minus Release calls on v inside body.
func (fc *fclient) closureNetDelta(body *ast.BlockStmt, v *types.Var) int {
	net := 0
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || baseVar(fc.ctx.info, sel.X) != v {
			return true
		}
		sum := fc.ctx.summary(analysis.Callee(fc.ctx.info, call))
		if sum.retain {
			net++
		}
		if sum.releaseRef {
			net--
		}
		return true
	})
	return net
}

// closurePuts reports whether body contains a pool release of v.
func (fc *fclient) closurePuts(body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sum := fc.ctx.summary(analysis.Callee(fc.ctx.info, call))
		for _, i := range sum.release {
			if i < len(call.Args) && baseVar(fc.ctx.info, call.Args[i]) == v {
				found = true
			}
		}
		return true
	})
	return found
}

// FlowEdge refines cells guarded by an error variable across
// `err != nil` / `err == nil` branches: on the error edge the guarded
// value was never owned (the source failed), so its cell is dropped; on
// the nil edge the guard is discharged.
func (fc *fclient) FlowEdge(from *cfg.Block, si int, to *cfg.Block, s dataflow.State) dataflow.State {
	st := s.(*state)
	v, op := errNilCond(fc.ctx.info, from.Cond)
	if v == nil {
		return st
	}
	errNonNil := (op == token.NEQ && si == 0) || (op == token.EQL && si == 1)
	for id, cl := range st.cells {
		if cl.guard != v {
			continue
		}
		if errNonNil {
			st.kill(id)
		} else {
			cl.guard = nil
		}
	}
	return st
}

// errNilCond matches `e != nil` / `e == nil` where e is an error
// variable, returning the variable and the operator.
func errNilCond(info *types.Info, cond ast.Expr) (*types.Var, token.Token) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	test := func(ve, ne ast.Expr) *types.Var {
		id, ok := ast.Unparen(ve).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || !isErrorType(v.Type()) {
			return nil
		}
		if tv, ok := info.Types[ne]; !ok || !tv.IsNil() {
			return nil
		}
		return v
	}
	if v := test(be.X, be.Y); v != nil {
		return v, be.Op
	}
	if v := test(be.Y, be.X); v != nil {
		return v, be.Op
	}
	return nil, token.ILLEGAL
}

// checkExit reports per-site obligations against the converged exit
// state: buffers still owned on some normal-return path leak; envelope
// deltas other than zero are unbalanced.
func (fc *fclient) checkExit(in dataflow.State) {
	if in == nil {
		return // no normal return (infinite loop or all paths panic)
	}
	st := in.(*state)
	for id, cl := range st.cells {
		switch cl.kind {
		case kindBuffer:
			if cl.bits&bOwned != 0 && cl.bits&bDeferPut == 0 && !fc.regetAt[id] {
				fc.ctx.pass.Reportf(token.Pos(id),
					"pooled buffer is not released on every path (missing bufpool.Put, defer Put, or a sanctioned //tank:owns transfer)")
			}
		case kindEnvelope:
			if cl.bits&eDeltaMask&^(1<<0) != 0 {
				fc.ctx.pass.Reportf(token.Pos(id),
					"Envelope retain/borrow is not balanced by a Release on every path")
			}
		}
	}
}
