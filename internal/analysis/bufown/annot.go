package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// The //tank: annotation vocabulary of the ownership checker.
//
//	//tank:owns <param>      (func doc) the callee takes ownership of the
//	                         named pooled-buffer parameter; for closure
//	                         parameters, of every owned buffer the closure
//	                         captures.
//	//tank:owns result       (func doc) the caller receives ownership of
//	                         the returned buffer.
//	//tank:adopt(reason)     (line) the owned buffer on this line is
//	                         deliberately handed to a place the checker
//	                         cannot follow (a field, a long-lived struct);
//	                         ownership ends here.
//	//tank:alias(reason)     (line) the value stored on this line is a
//	                         short-lived alias; the variable keeps
//	                         ownership and the usual Put obligation.
//
// Line annotations cover their own line and the next, mirroring
// //lint:allow placement.
var (
	tankLineRE = regexp.MustCompile(`^//\s*tank:(adopt|alias)\(([^)]*)\)\s*$`)
	tankOwnsRE = regexp.MustCompile(`^//\s*tank:owns\s+([A-Za-z_][A-Za-z0-9_]*)\s*(//.*)?$`)
)

type lineAnnot struct {
	kind   string // "adopt" or "alias"
	reason string
}

// ownsSpec is the parsed //tank:owns content of one function's doc.
type ownsSpec struct {
	params []int // flat parameter indexes whose ownership transfers in
	result bool  // the caller owns the returned buffer
}

// ctx is the per-package analysis context: the pass, parsed annotations,
// and the doc-derived ownership specs of this package's functions.
type ctx struct {
	pass    *analysis.Pass
	info    *types.Info
	docOwns map[*types.Func]*ownsSpec
	// annots is filename → line → annotation for //tank:adopt / alias.
	annots map[string]map[int]lineAnnot
}

func newCtx(pass *analysis.Pass) *ctx {
	c := &ctx{
		pass:    pass,
		info:    pass.TypesInfo,
		docOwns: map[*types.Func]*ownsSpec{},
		annots:  map[string]map[int]lineAnnot{},
	}
	for _, f := range pass.Files {
		c.collectLineAnnots(f)
		c.collectDocOwns(f, !pass.IsTestFile(f))
	}
	return c
}

func (c *ctx) collectLineAnnots(f *ast.File) {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			m := tankLineRE.FindStringSubmatch(cm.Text)
			if m == nil {
				continue
			}
			pos := c.pass.Fset.Position(cm.Pos())
			byLine := c.annots[pos.Filename]
			if byLine == nil {
				byLine = map[int]lineAnnot{}
				c.annots[pos.Filename] = byLine
			}
			byLine[pos.Line] = lineAnnot{kind: m[1], reason: strings.TrimSpace(m[2])}
		}
	}
}

// sanction returns the line annotation covering pos, if any: an
// annotation sanctions its own line (trailing comment) and the line
// below it (own-line comment above the statement).
func (c *ctx) sanction(pos token.Pos) (lineAnnot, bool) {
	p := c.pass.Fset.Position(pos)
	byLine := c.annots[p.Filename]
	if byLine == nil {
		return lineAnnot{}, false
	}
	if a, ok := byLine[p.Line]; ok {
		return a, true
	}
	if a, ok := byLine[p.Line-1]; ok {
		return a, true
	}
	return lineAnnot{}, false
}

func (c *ctx) collectDocOwns(f *ast.File, reportMalformed bool) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		fn, _ := c.info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		for _, cm := range fd.Doc.List {
			m := tankOwnsRE.FindStringSubmatch(cm.Text)
			if m == nil {
				continue
			}
			spec := c.docOwns[fn]
			if spec == nil {
				spec = &ownsSpec{}
				c.docOwns[fn] = spec
			}
			if m[1] == "result" {
				spec.result = true
				continue
			}
			idx, ok := paramIndex(fd, m[1])
			if !ok {
				if reportMalformed {
					c.pass.Reportf(cm.Pos(), "//tank:owns names unknown parameter %q", m[1])
				}
				continue
			}
			spec.params = append(spec.params, idx)
		}
	}
}

// paramIndex resolves a parameter name to its flat index in the
// signature.
func paramIndex(fd *ast.FuncDecl, name string) (int, bool) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range field.Names {
			if nm.Name == name {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// summary is what the checker knows about one callee's ownership
// behavior — from the built-in table for the pool and envelope
// primitives (export data carries no comments, so cross-package
// knowledge must be built in) and from //tank:owns docs for functions
// in the analyzed package.
type summary struct {
	bufSource  bool  // returns a buffer the caller owns (bufpool.Get)
	envSource  bool  // returns an owned *msg.Envelope borrow (Recv)
	release    []int // parameter indexes returned to the pool (bufpool.Put)
	owns       []int // parameter indexes whose ownership transfers in
	ownsResult bool
	retain     bool // Envelope.Retain
	releaseRef bool // Envelope.Release
	borrowed   bool // Envelope.Borrowed: fresh refs=1 borrow, owns the free closure
}

func (c *ctx) summary(fn *types.Func) summary {
	var s summary
	if fn == nil {
		return s
	}
	pkgBase := ""
	if fn.Pkg() != nil {
		pkgBase = analysis.PkgBase(fn.Pkg().Path())
	}
	switch {
	case pkgBase == "bufpool" && fn.Name() == "Get":
		s.bufSource = true
	case pkgBase == "bufpool" && fn.Name() == "Put":
		s.release = []int{0}
	}
	if recv := analysis.RecvNamed(fn); recv != nil &&
		recv.Obj().Name() == "Envelope" && pkgBase == "msg" {
		switch fn.Name() {
		case "Retain":
			s.retain = true
		case "Release":
			s.releaseRef = true
		case "Borrowed":
			s.borrowed = true
			s.owns = append(s.owns, 0)
		}
	}
	// Any method named Recv returning (*msg.Envelope, error) hands the
	// caller an owned borrow — this matches wire.Codec and the rpcnet
	// codec interface without naming either package.
	if fn.Name() == "Recv" && !s.envSource {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 2 {
			if isEnvelopeType(sig.Results().At(0).Type()) && isErrorType(sig.Results().At(1).Type()) {
				s.envSource = true
			}
		}
	}
	if spec := c.docOwns[fn]; spec != nil {
		s.owns = append(s.owns, spec.params...)
		s.ownsResult = spec.result
	}
	return s
}

func isBufferType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isEnvelopeType(t types.Type) bool {
	n := analysis.NamedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Envelope" && analysis.PkgBase(n.Obj().Pkg().Path()) == "msg"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
