// Package hotpath is a hotpathalloc fixture: functions marked
// //tank:hotpath may not contain allocating constructs; unmarked
// functions may do whatever they like.
package hotpath

import "fmt"

// encode is marked hot: every allocating construct below is a finding.
//
//tank:hotpath
func encode(dst []byte, xs []int, s string) int {
	buf := make([]byte, 16) // want `make allocates`
	p := new(int)           // want `new allocates`
	dst = append(dst, 1)    // want `append may grow`
	v := []int{1, 2}        // want `slice literal allocates`
	m := map[int]int{1: 2}  // want `map literal allocates`
	q := &point{1, 2}       // want `&T\{\} heap-allocates`
	f := func() {}          // want `closure allocates`
	fmt.Println(xs)         // want `fmt.Println boxes its operands`
	b := []byte(s)          // want `\[\]byte\(string\) conversion copies`
	t := string(dst)        // want `string\(bytes\) conversion copies`
	f()
	_, _, _, _, _, _, _ = buf, p, v, m, q, b, t
	return len(dst)
}

type point struct{ x, y int }

// decode is marked hot but clean: offset arithmetic, copies into
// caller-provided buffers, value-typed struct literals, and calls to
// helpers are all fine.
//
//tank:hotpath
func decode(b []byte) (point, int) {
	var pt point
	pt = point{x: int(b[0]), y: int(b[1])} // value literal: stack, no finding
	n := copy(b[2:], b[:2])
	return pt, n + helper(b)
}

// helper is unmarked: the marker is per-function, not transitive, so
// its allocations are its own business.
func helper(b []byte) int {
	tmp := make([]byte, len(b))
	return copy(tmp, b)
}

// exempted shows the directive escape hatch.
//
//tank:hotpath
func exempted() []byte {
	return make([]byte, 8) //lint:allow hotpathalloc(cold error path, runs once per connection)
}
