package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "hotpath")
}
