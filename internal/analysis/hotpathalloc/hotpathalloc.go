// Package hotpathalloc keeps the marked steady-state send/receive path
// allocation-free.
//
// The zero-copy wire codec (DESIGN §12) earns its numbers by never
// touching the garbage collector on a per-message basis: frame and page
// buffers come from internal/bufpool, metadata is encoded into
// pre-sized buffers by offset, and errors are sentinel values. That
// discipline is invisible to the compiler — one innocent `append` or
// `fmt.Errorf` in a codec primitive silently reintroduces a per-message
// allocation and the regression only shows up as a benchmark delta
// weeks later.
//
// The pass applies to functions whose doc comment carries the
// //tank:hotpath directive. Inside such a function it flags the
// allocating constructs:
//
//	make(...), new(...)            direct allocation
//	append(...)                    growth allocates; pre-size instead
//	[]T{...}, map[K]V{...}, &T{}   composite literals that escape
//	func(){...}                    closures (the func value allocates)
//	fmt.*                          formatting boxes every operand
//	string(b), []byte(s)           conversions copy
//
// Calls into the buffer pool (bufpool.Get/Put) are ordinary calls and
// are never flagged — the pool IS the sanctioned allocator. Calling an
// unmarked helper is likewise not flagged: the marker is a per-function
// promise, not a transitive one. Value-typed struct literals stay legal
// (they live on the stack). Exemptions use a visible
// //lint:allow hotpathalloc(reason) directive.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocating constructs (make, append, composite literals, closures, fmt, " +
		"string conversions) in //tank:hotpath-marked functions; hot-path buffers come from internal/bufpool",
	Run: run,
}

// isHotpath reports whether the function's doc group carries the
// //tank:hotpath directive.
func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "tank:hotpath" {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

const remedy = "in a //tank:hotpath function; take buffers from internal/bufpool, pre-size outside " +
	"the hot path, or annotate //lint:allow hotpathalloc(reason)"

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure allocates %s", remedy)
			return false // its body is a different function
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal allocates %s", remedy)
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocates %s", remedy)
			}
			return true
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&T{} heap-allocates %s", remedy)
				}
			}
			return true
		case *ast.CallExpr:
			checkCall(pass, e)
			return true
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins: make, new, append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates %s", remedy)
			case "new":
				pass.Reportf(call.Pos(), "new allocates %s", remedy)
			case "append":
				pass.Reportf(call.Pos(), "append may grow (allocate) %s", remedy)
			}
			return
		}
	}
	// fmt.* calls: every operand is boxed into an interface.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s boxes its operands and allocates %s", sel.Sel.Name, remedy)
			return
		}
	}
	// Conversions between string and byte/rune slices copy.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	atv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	to, from := tv.Type, atv.Type
	switch {
	case isString(to) && isByteOrRuneSlice(from):
		pass.Reportf(call.Pos(), "string(bytes) conversion copies %s", remedy)
	case isByteOrRuneSlice(to) && isString(from):
		pass.Reportf(call.Pos(), "[]byte(string) conversion copies %s", remedy)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
