package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/cfg"
)

// The test client runs classic reaching-definedness over a single
// variable "x": the state records whether x has definitely been
// assigned, maybe, or not at all — a three-point lattice exercising
// joins, loops, and edge refinement.

type defState struct {
	// 1 = assigned, 2 = unassigned; 3 = maybe (join of both).
	bits uint8
}

func (s *defState) Clone() State { c := *s; return &c }
func (s *defState) JoinInto(other State) bool {
	o := other.(*defState)
	merged := s.bits | o.bits
	changed := merged != s.bits
	s.bits = merged
	return changed
}

type defClient struct {
	// refuted counts FlowEdge calls that saw a condition, proving the
	// hook fires with the branch indexes.
	trueEdges, falseEdges int
}

func (c *defClient) Transfer(n ast.Node, s State, report bool) {
	st := s.(*defState)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "x" {
				st.bits = 1
			}
		}
	}
}

func (c *defClient) FlowEdge(from *cfg.Block, si int, to *cfg.Block, s State) State {
	if from.Cond != nil {
		if si == 0 {
			c.trueEdges++
		} else {
			c.falseEdges++
		}
	}
	return s
}

func buildGraph(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

func exitBits(t *testing.T, body string) uint8 {
	t.Helper()
	g := buildGraph(t, body)
	res, err := Forward(g, &defState{bits: 2}, &defClient{})
	if err != nil {
		t.Fatal(err)
	}
	in := res.In[g.Exit.Index]
	if in == nil {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	return in.(*defState).bits
}

func TestStraightLineAssign(t *testing.T) {
	if bits := exitBits(t, "var x int\nx = 1\n_ = x"); bits != 1 {
		t.Fatalf("x should be definitely assigned, bits=%b", bits)
	}
}

func TestBranchDependentAssignJoins(t *testing.T) {
	// x assigned only in the then-branch: exit must see the join
	// (assigned | unassigned).
	bits := exitBits(t, "var x int\nvar y int\nif y > 0 { x = 1 }\n_ = x")
	if bits != 3 {
		t.Fatalf("branch-dependent assignment should join to maybe (3), bits=%b", bits)
	}
}

func TestBothBranchesAssign(t *testing.T) {
	bits := exitBits(t, "var x, y int\nif y > 0 { x = 1 } else { x = 2 }\n_ = x")
	if bits != 1 {
		t.Fatalf("x assigned on both branches should stay definite, bits=%b", bits)
	}
}

func TestLoopReachesFixpoint(t *testing.T) {
	// Assignment inside a loop body that may run zero times.
	bits := exitBits(t, "var x int\nfor i := 0; i < 3; i++ { x = 1 }\n_ = x")
	if bits != 3 {
		t.Fatalf("loop-conditional assignment should be maybe, bits=%b", bits)
	}
}

func TestInfiniteLoopNoExitState(t *testing.T) {
	g := buildGraph(t, "var x int\nfor { x = 1; _ = x }")
	res, err := Forward(g, &defState{bits: 2}, &defClient{})
	if err != nil {
		t.Fatal(err)
	}
	if res.In[g.Exit.Index] != nil {
		t.Fatal("for{} must leave exit state nil")
	}
}

func TestFlowEdgeSeesBranchIndexes(t *testing.T) {
	g := buildGraph(t, "var x, y int\nif y > 0 { x = 1 }\n_ = x")
	cl := &defClient{}
	if _, err := Forward(g, &defState{bits: 2}, cl); err != nil {
		t.Fatal(err)
	}
	if cl.trueEdges == 0 || cl.falseEdges == 0 {
		t.Fatalf("FlowEdge should see both edges of the condition: true=%d false=%d",
			cl.trueEdges, cl.falseEdges)
	}
}

func TestReportVisitsReachableBlocksOnce(t *testing.T) {
	g := buildGraph(t, "var x, y int\nif y > 0 { x = 1 } else { x = 2 }\n_ = x")
	res, err := Forward(g, &defState{bits: 2}, &defClient{})
	if err != nil {
		t.Fatal(err)
	}
	var visited []string
	rc := &recordingClient{visit: &visited}
	Report(g, res, rc)
	// Every reachable node visited exactly once.
	seen := map[string]int{}
	for _, v := range visited {
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("node %s visited %d times in report pass", v, n)
		}
	}
}

type recordingClient struct{ visit *[]string }

func (r *recordingClient) Transfer(n ast.Node, s State, report bool) {
	if !report {
		return
	}
	*r.visit = append(*r.visit, nodeKey(n))
}
func (r *recordingClient) FlowEdge(from *cfg.Block, si int, to *cfg.Block, s State) State {
	return s
}

func nodeKey(n ast.Node) string {
	var sb strings.Builder
	ast.Fprint(&sb, nil, n, nil)
	return sb.String()[:min(40, sb.Len())] + ":" + posKey(n)
}
func posKey(n ast.Node) string { return string(rune(int(n.Pos()))) }
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
