// Package dataflow is a forward abstract-interpretation engine over the
// CFGs of internal/analysis/cfg: a client supplies an abstract state, a
// per-node transfer function, and (optionally) a per-edge refinement,
// and Forward computes the fixpoint of block input states by worklist
// iteration in reverse postorder.
//
// The engine is deliberately small and generic — it knows nothing about
// buffers or locks. A client guarantees termination by making its state
// a finite join-semilattice: Join must be monotone (the result covers
// both inputs) and the state space finite (bufown uses bitsets over a
// four-point ownership domain and clamped refcount deltas). A safety cap
// on iterations turns a non-converging client into a loud error instead
// of a hung lint run.
package dataflow

import (
	"fmt"
	"go/ast"

	"repro/internal/analysis/cfg"
)

// State is one abstract program state. Implementations are mutable;
// the engine clones before mutating, so clients can use plain maps.
type State interface {
	// Clone returns an independent deep copy.
	Clone() State
	// JoinInto merges other into the receiver, returning whether the
	// receiver changed. Must be monotone: the result covers both.
	JoinInto(other State) (changed bool)
}

// Client supplies the problem-specific semantics.
type Client interface {
	// Transfer applies one CFG node's effect to s, mutating it.
	// The report flag distinguishes the fixpoint phase (false: facts
	// only) from the final reporting pass (true: diagnostics allowed);
	// clients that report during fixpoint would emit duplicates.
	Transfer(n ast.Node, s State, report bool)
	// FlowEdge refines the state flowing from one block to a specific
	// successor — the hook for condition-derived facts (from.Cond is
	// the branch condition; succIndex 0 is its true edge, 1 its false
	// edge). The engine passes a private clone; return it (mutated or
	// not).
	FlowEdge(from *cfg.Block, succIndex int, to *cfg.Block, s State) State
}

// maxPasses bounds fixpoint iteration: state lattices here are tiny, so
// honest clients converge in a handful of passes; hitting the cap means
// a non-monotone Join and deserves a loud failure.
const maxPasses = 1000

// Result carries the converged block input states.
type Result struct {
	// In[b.Index] is the join of all incoming edge states of block b
	// (nil for unreachable blocks).
	In []State
}

// Forward runs the fixpoint and returns per-block input states.
func Forward(g *cfg.Graph, entry State, c Client) (*Result, error) {
	res := &Result{In: make([]State, len(g.Blocks))}
	res.In[g.Entry.Index] = entry.Clone()

	rpo := g.ReversePostorder()
	order := make(map[*cfg.Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}

	// worklist keyed by RPO position for deterministic iteration.
	inList := make([]bool, len(rpo))
	list := []int{0}
	inList[0] = true

	passes := 0
	for len(list) > 0 {
		if passes++; passes > maxPasses*len(rpo) {
			return nil, fmt.Errorf("dataflow: no fixpoint after %d visits (non-monotone join?)", passes)
		}
		// Pop the lowest RPO index for near-topological processing.
		best := 0
		for i := 1; i < len(list); i++ {
			if list[i] < list[best] {
				best = i
			}
		}
		idx := list[best]
		list[best] = list[len(list)-1]
		list = list[:len(list)-1]
		inList[idx] = false

		b := rpo[idx]
		in := res.In[b.Index]
		if in == nil {
			continue
		}
		out := in.Clone()
		for _, n := range b.Nodes {
			c.Transfer(n, out, false)
		}
		for si, succ := range b.Succs {
			edge := c.FlowEdge(b, si, succ, out.Clone())
			target := res.In[succ.Index]
			changed := false
			if target == nil {
				res.In[succ.Index] = edge.Clone()
				changed = true
			} else {
				changed = target.JoinInto(edge)
			}
			if changed {
				if pos, ok := order[succ]; ok && !inList[pos] {
					list = append(list, pos)
					inList[pos] = true
				}
			}
		}
	}
	return res, nil
}

// Report runs one final pass over every reachable block with reporting
// enabled, feeding each block its converged input state. Diagnostics
// the client emits in this pass are therefore grounded in fixpoint
// facts and appear exactly once per site.
func Report(g *cfg.Graph, res *Result, c Client) {
	for _, b := range g.ReversePostorder() {
		in := res.In[b.Index]
		if in == nil {
			continue
		}
		s := in.Clone()
		for _, n := range b.Nodes {
			c.Transfer(n, s, true)
		}
	}
}
