package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirectives(t *testing.T, src string) ([]Directive, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return PackageDirectives(fset, []*ast.File{f})
}

// TestDirectiveInMultilineCommentGroup: a directive line buried in a
// multi-line // group is parsed, and when the group is a function's
// doc comment the directive covers the function's whole line range —
// not just the directive's own line.
func TestDirectiveInMultilineCommentGroup(t *testing.T) {
	dirs, malformed := parseDirectives(t, `package p

// f does a thing that legitimately needs the wall clock.
//
// The exemption below is part of a longer doc comment.
//
//lint:allow clockhygiene(measures real device latency)
func f() {
	_ = 1
	_ = 2
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %+v", malformed)
	}
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(dirs), dirs)
	}
	d := dirs[0]
	if d.Analyzer != "clockhygiene" || d.Reason != "measures real device latency" {
		t.Errorf("parsed %q(%q)", d.Analyzer, d.Reason)
	}
	// func f spans lines 8–11; a doc-comment directive covers all of it.
	if d.FromLine != 8 || d.ToLine != 11 {
		t.Errorf("doc directive covers lines %d–%d, want 8–11", d.FromLine, d.ToLine)
	}
}

// TestBlockCommentNotADirective: /* */ comments are never directives
// (the vocabulary is line comments only, so every directive is exactly
// one grep-able line) and are not reported as malformed either.
func TestBlockCommentNotADirective(t *testing.T) {
	dirs, malformed := parseDirectives(t, `package p

/* lint:allow clockhygiene(hidden in a block comment) */
var x = 1

/*
lint:allow locksafety(spread over a block)
*/
var y = 2
`)
	if len(dirs) != 0 {
		t.Errorf("block comments parsed as directives: %+v", dirs)
	}
	if len(malformed) != 0 {
		t.Errorf("block comments flagged malformed: %+v", malformed)
	}
}

// TestUnknownPassFlagged: a syntactically valid allow naming a pass
// that does not exist suppresses nothing; UnknownPasses turns it into
// a diagnostic (the budget meta-test applies this with the real suite).
func TestUnknownPassFlagged(t *testing.T) {
	dirs, malformed := parseDirectives(t, `package p

var x = 1 //lint:allow clockhygine(typo in the pass name)
var y = 2 //lint:allow clockhygiene(spelled right)
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %+v", malformed)
	}
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	known := map[string]bool{"clockhygiene": true}
	diags := UnknownPasses(dirs, known)
	if len(diags) != 1 {
		t.Fatalf("got %d unknown-pass diagnostics, want 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `"clockhygine"`) {
		t.Errorf("diagnostic should name the bogus pass: %s", diags[0].Message)
	}
}

// TestDuplicateAllowsOnOneLine: // comments run to end of line, so two
// directives cannot share a line — the combined text fails the strict
// one-directive grammar and is reported malformed rather than silently
// honoring the first and dropping the second.
func TestDuplicateAllowsOnOneLine(t *testing.T) {
	dirs, malformed := parseDirectives(t, `package p

var x = 1 //lint:allow clockhygiene(first) //lint:allow locksafety(second)
`)
	if len(dirs) != 0 {
		t.Errorf("doubled-up line parsed as directives: %+v", dirs)
	}
	if len(malformed) != 1 {
		t.Fatalf("got %d malformed diagnostics, want 1: %+v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "malformed lint:allow") {
		t.Errorf("unexpected message: %s", malformed[0].Message)
	}
}

// TestEmptyReasonMalformed: the reason is mandatory — an exemption
// without a justification is itself a finding.
func TestEmptyReasonMalformed(t *testing.T) {
	dirs, malformed := parseDirectives(t, `package p

var x = 1 //lint:allow clockhygiene()
var y = 2 //lint:allow clockhygiene(   )
`)
	if len(dirs) != 0 {
		t.Errorf("reason-less directives parsed: %+v", dirs)
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %+v", len(malformed), malformed)
	}
	for _, m := range malformed {
		if !strings.Contains(m.Message, "needs a reason") {
			t.Errorf("unexpected message: %s", m.Message)
		}
	}
}

// TestLineDirectiveCoversNextLine: a non-doc directive covers its own
// line and the next, so it can sit above the statement it excuses.
func TestLineDirectiveCoversNextLine(t *testing.T) {
	dirs, _ := parseDirectives(t, `package p

func f() {
	//lint:allow locksafety(lock order proven by the shard map)
	_ = 1
}
`)
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	if d := dirs[0]; d.FromLine != 4 || d.ToLine != 5 {
		t.Errorf("line directive covers %d–%d, want 4–5", d.FromLine, d.ToLine)
	}
}
