// Package analysistest runs one analyzer over golden fixture packages
// and compares its findings against expectations written in the
// fixtures themselves, as trailing comments:
//
//	deadline := time.Now() // want `time.Now bypasses the injected clock`
//
// Each `// want` comment carries one or more Go-quoted regular
// expressions; every diagnostic the analyzer (or the //lint:allow
// directive parser) reports on that line must match one of them, and
// every expectation must be matched by at least one diagnostic. A
// block-comment form (`/* want "re" */`) exists for the rare line whose
// trailing line comment is itself under test.
//
// Fixtures live under the analyzer package's testdata/src/<name>/ and
// are ordinary compilable Go packages inside this module: the go tool
// ignores testdata for `./...` patterns, so their deliberate violations
// never leak into the real build, but explicit paths still resolve, so
// the same go/list-based loader the production driver uses loads them
// with full type information.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// want is one parsed expectation.
type want struct {
	file    string
	line    int
	raw     string
	re      *regexp.Regexp
	matched bool
}

// Run loads each testdata/src/<fixture> package relative to the test's
// working directory, runs the analyzer with directive suppression
// applied (exactly as the driver does), and diffs the findings against
// the fixtures' `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, fx := range fixtures {
		patterns[i] = "./testdata/src/" + fx
	}
	pkgs, fset, err := driver.Load(".", patterns)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtures, err)
	}
	diags, err := driver.Run(fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					args, ok := wantArgs(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, re := range parseWantRegexps(t, pos.Filename, pos.Line, args) {
						wants = append(wants, &want{
							file: pos.Filename,
							line: pos.Line,
							raw:  re.String(),
							re:   re,
						})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Position, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// wantArgs extracts the argument text of a want expectation from one
// raw comment, or reports that the comment carries none. Line comments
// may embed the marker after other text (`//lint:allow ... // want "re"`
// is a single comment token); block comments must lead with it.
func wantArgs(text string) (string, bool) {
	if strings.HasPrefix(text, "/*") {
		body := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
		if rest, ok := strings.CutPrefix(body, "want "); ok {
			return rest, true
		}
		return "", false
	}
	idx := strings.LastIndex(text, "// want ")
	if idx < 0 {
		return "", false
	}
	return text[idx+len("// want "):], true
}

// parseWantRegexps parses a sequence of Go-quoted string literals, each
// a regular expression.
func parseWantRegexps(t *testing.T, file string, line int, args string) []*regexp.Regexp {
	t.Helper()
	var res []*regexp.Regexp
	rest := strings.TrimSpace(args)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Errorf("%s:%d: malformed want expectation %q: each argument must be a quoted Go string", file, line, rest)
			break
		}
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Errorf("%s:%d: unquoting %s: %v", file, line, q, err)
			break
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Errorf("%s:%d: want pattern %q: %v", file, line, s, err)
			break
		}
		res = append(res, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return res
}
