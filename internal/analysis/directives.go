package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// A //lint:allow directive exempts one site from one analyzer, visibly:
//
//	start := time.Now() //lint:allow clockhygiene(fsync latency stamp)
//
// or, for a whole function, in its doc comment:
//
//	// sync fsyncs one file, instrumented.
//	//
//	//lint:allow clockhygiene(measures real fsync latency)
//	func (f *File) sync(file *os.File) error { ... }
//
// The reason is mandatory — an exemption without a justification is
// itself a finding — and every directive is grep-able, so the complete
// exemption surface of the tree is visible in one search.

// Directive is one parsed //lint:allow comment.
type Directive struct {
	// Analyzer is the pass being suppressed.
	Analyzer string
	// Reason is the mandatory justification.
	Reason string
	// File and the inclusive line range the directive covers.
	File             string
	FromLine, ToLine int
	// Pos is the directive's own position.
	Pos token.Pos
}

var directiveRE = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_-]+)\(([^)]*)\)\s*$`)

// PackageDirectives scans a package's comments for //lint:allow
// directives. A directive in a function's doc comment covers the whole
// function; anywhere else it covers its own line and the next (so it can
// sit above the statement it excuses). Malformed directives — an empty
// reason — are returned as diagnostics for the driver to report.
func PackageDirectives(fset *token.FileSet, files []*ast.File) (dirs []Directive, malformed []Diagnostic) {
	for _, f := range files {
		// Map doc-comment groups to their function's line range.
		funcDocs := make(map[*ast.CommentGroup][2]int)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			funcDocs[fd.Doc] = [2]int{
				fset.Position(fd.Pos()).Line,
				fset.Position(fd.End()).Line,
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "lint:allow") {
						malformed = append(malformed, Diagnostic{
							Pos:     c.Pos(),
							Message: "malformed lint:allow directive: want //lint:allow analyzer(reason)",
						})
					}
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					malformed = append(malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "lint:allow " + name + " directive needs a reason: //lint:allow " + name + "(why this site is exempt)",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				d := Directive{
					Analyzer: name,
					Reason:   reason,
					File:     pos.Filename,
					FromLine: pos.Line,
					ToLine:   pos.Line + 1,
					Pos:      c.Pos(),
				}
				if rng, ok := funcDocs[cg]; ok {
					d.FromLine, d.ToLine = rng[0], rng[1]
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, malformed
}

// UnknownPasses returns one diagnostic per directive whose Analyzer is
// not in known. Such a directive suppresses nothing — it is a typo or a
// leftover from a renamed pass — so letting it sit silently would give
// a false sense of exemption. The driver cannot flag these during a run
// (analysistest executes single analyzers over fixtures that carry
// allows for other passes), so the budget meta-test in cmd/tanklint
// applies this check with the full suite's name set.
func UnknownPasses(dirs []Directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		if !known[d.Analyzer] {
			out = append(out, Diagnostic{
				Pos:     d.Pos,
				Message: fmt.Sprintf("lint:allow names unknown pass %q", d.Analyzer),
			})
		}
	}
	return out
}

// Suppress filters out diagnostics covered by a matching directive.
func Suppress(fset *token.FileSet, analyzer string, diags []Diagnostic, dirs []Directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		covered := false
		for _, dir := range dirs {
			if dir.Analyzer == analyzer && dir.File == pos.Filename &&
				dir.FromLine <= pos.Line && pos.Line <= dir.ToLine {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}
