// Package disk is the ackdurable fixture for rule A2: a function that
// transmits a DiskWriteRes/DiskWriteVRes/FenceRes must contain a durable
// media call whose error it actually consumed.
package disk

import (
	"repro/internal/analysis/ackdurable/testdata/src/blockstore"
	"repro/internal/analysis/ackdurable/testdata/src/msg"
)

type Disk struct {
	media blockstore.Media
	out   func(to msg.NodeID, m any)
}

func (d *Disk) send(to msg.NodeID, m any) { d.out(to, m) }

func (d *Disk) ackAfterCheckedWrite(client msg.NodeID, block uint64, data []byte, ver uint64) {
	if err := d.media.Write(block, data, ver); err != nil {
		return
	}
	d.send(client, &msg.DiskWriteRes{Block: block, OK: true})
}

func (d *Disk) ackWithoutMedia(client msg.NodeID, block uint64) {
	d.send(client, &msg.DiskWriteRes{Block: block, OK: true}) // want `reply sent without any durable media call`
}

func (d *Disk) ackDiscardedFence(client msg.NodeID, target msg.NodeID) {
	_ = d.media.SetFence(target, true)
	d.send(client, &msg.FenceRes{Target: target}) // want `discards its error`
}

func (d *Disk) ackBatch(client msg.NodeID, batch []blockstore.BlockWrite) {
	res := &msg.DiskWriteVRes{OK: make([]bool, len(batch))}
	for i, err := range d.media.WriteV(batch) {
		res.OK[i] = err == nil
	}
	d.send(client, res)
}

// statusOnly sends a non-ack message; no durability point is required.
func (d *Disk) statusOnly(client msg.NodeID) {
	d.send(client, "status")
}
