// Package msg mirrors the reply types the ackdurable pass keys on: the
// pass matches them by package base and type name, so this fixture
// triggers the same rules as the real protocol package.
package msg

type NodeID int32

type DiskWriteRes struct {
	Block uint64
	OK    bool
}

type DiskWriteVRes struct {
	OK []bool
}

type FenceRes struct {
	Target NodeID
}
