// Package blockstore mirrors the media surface the ackdurable pass keys
// on. Being in scope itself, it also exercises rules A1 (discarded
// errors) and A3 (fsync outside the sanctioned helper).
package blockstore

import (
	"os"

	"repro/internal/analysis/ackdurable/testdata/src/msg"
)

type BlockWrite struct {
	Block uint64
	Data  []byte
	Ver   uint64
}

type Media interface {
	Write(block uint64, data []byte, ver uint64) error
	WriteV(batch []BlockWrite) []error
	SetFence(target msg.NodeID, on bool) error
	Close() error
}

type File struct {
	f      *os.File
	noSync bool
}

// sync is the sanctioned fsync helper; A3 exempts the method by name.
func (f *File) sync(file *os.File) error {
	if f.noSync {
		return nil
	}
	return file.Sync()
}

func (f *File) commit() error {
	return f.sync(f.f)
}

func rogueSync(file *os.File) error {
	return file.Sync() // want `direct \(\*os.File\).Sync bypasses the sanctioned`
}

func closeQuietly(f *os.File) {
	f.Close() // want `error result of f.Close is silently discarded`
}

func deferCloseQuietly(f *os.File) error {
	defer f.Close() // want `error result of f.Close is silently discarded`
	return nil
}

func closeExplicitly(f *os.File) {
	// Deliberate, reasoned discard: the explicit form is the allowed one.
	_ = f.Close()
}

func closeChecked(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
