// Package ackdurable machine-checks the ack-implies-durable contract in
// the disk and blockstore packages.
//
// Paper property (§4, flush-before-expiry): a client counts a dirty
// page as safe the moment the disk's DiskWriteRes arrives, and the
// server lifts a fence the moment FenceRes arrives. Theorem 3.1's
// "acknowledged writes survive" therefore terminates at two code
// facts: (1) the reply is only sent after the corresponding
// Media.Write/WriteV/SetFence returned, with its error inspected, and
// (2) every fsync in the file-backed media flows through the one
// sanctioned, instrumented, -no-fsync-gated helper, (*File).sync.
// Either fact is a one-line diff to destroy silently; this pass makes
// such a diff a build failure.
//
// Rules (disk and blockstore packages, non-test files):
//
//	A1  a call whose result includes an error (or []error, the WriteV
//	    contract) used as a bare statement discards that error; handle
//	    it, or assign to _ with a reasoned comment (the explicit form
//	    is allowed, the silent form is not) — this is the errcheck
//	    sweep for Close/Sync/Remove and every media call
//	A2  a function in package disk that sends a DiskWriteRes,
//	    DiskWriteVRes, or FenceRes reply must contain a durable media
//	    call (Write/WriteV/SetFence) whose error is consumed; an ACK
//	    with no durability point, or one whose media error goes to _,
//	    is flagged at the send site
//	A3  in package blockstore, (*os.File).Sync may only be called
//	    inside the sanctioned helper (*File).sync — anywhere else
//	    bypasses the fsync instrumentation and the NoSync gate
package ackdurable

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ackdurable pass.
var Analyzer = &analysis.Analyzer{
	Name: "ackdurable",
	Doc: "enforce ack-implies-durable in disk/blockstore: no discarded media/fsync errors, " +
		"no write/fence acknowledgment without a checked durable media call, " +
		"no fsync outside the sanctioned (*File).sync helper",
	Run: run,
}

// ackReplies are the message types whose transmission IS the protocol's
// durability promise.
var ackReplies = map[string]bool{
	"DiskWriteRes":  true,
	"DiskWriteVRes": true,
	"FenceRes":      true,
}

// durableMethods are the Media operations that establish durability.
var durableMethods = map[string]bool{
	"Write":    true,
	"WriteV":   true,
	"SetFence": true,
}

func run(pass *analysis.Pass) error {
	base := analysis.PkgBase(pass.Pkg.Path())
	if base != "disk" && base != "blockstore" {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		checkDiscardedErrors(pass, file)
		if base == "disk" {
			checkAckFunctions(pass, file)
		}
		if base == "blockstore" {
			checkSanctionedSync(pass, file)
		}
	}
	return nil
}

// checkDiscardedErrors implements A1: error results may not be dropped
// by using the call as a statement (plain or deferred).
func checkDiscardedErrors(pass *analysis.Pass, file *ast.File) {
	report := func(call *ast.CallExpr) {
		if !analysis.ReturnsError(pass.TypesInfo, call) {
			return
		}
		name := types.ExprString(call.Fun)
		pass.Reportf(call.Pos(),
			"error result of %s is silently discarded: on the ack-implies-durable path every media, fsync, and close error must be handled or explicitly assigned to _ with a reason",
			name)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				report(call)
				// The arguments may still contain interesting calls, but a
				// nested call's error flows into the outer call: only the
				// outermost statement-position call discards.
				return false
			}
		case *ast.DeferStmt:
			report(n.Call)
			return false
		case *ast.GoStmt:
			report(n.Call)
			return false
		}
		return true
	})
}

// checkAckFunctions implements A2 over each top-level function in the
// disk package.
func checkAckFunctions(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var ackSends []*ast.CallExpr       // send(...) calls carrying an ack reply
		var durableChecked bool            // a media durability call with consumed error
		var durableDiscarded *ast.CallExpr // a media durability call assigned to _
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sendsAckReply(pass, n) {
					ackSends = append(ackSends, n)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isDurableMediaCall(pass, call) {
						continue
					}
					// With a single call on the RHS the error lands in the
					// positionally-matching LHS (or the whole tuple in one
					// value); blank means discarded.
					if allBlank(n.Lhs) {
						durableDiscarded = call
					} else {
						durableChecked = true
					}
					_ = i
				}
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && isDurableMediaCall(pass, call) {
					// Statement position: error dropped. A1 already flags the
					// discard; remember it so A2 points at the ack too.
					durableDiscarded = call
				}
			case *ast.RangeStmt:
				// `for i, err := range media.WriteV(batch)` consumes the
				// error vector.
				if call, ok := n.X.(*ast.CallExpr); ok && isDurableMediaCall(pass, call) {
					if n.Value != nil && !isBlank(n.Value) {
						durableChecked = true
					} else {
						durableDiscarded = call
					}
				}
			case *ast.IfStmt:
				// `if err := media.Write(...); err != nil` — the init
				// assignment is covered by the AssignStmt case above.
			}
			return true
		})
		for _, send := range ackSends {
			switch {
			case durableChecked:
			case durableDiscarded != nil:
				pass.Reportf(send.Pos(),
					"write/fence reply sent but the media call at %s discards its error: the acknowledgment must depend on Media success (ack-implies-durable)",
					pass.Fset.Position(durableDiscarded.Pos()))
			default:
				pass.Reportf(send.Pos(),
					"write/fence reply sent without any durable media call (Media.Write/WriteV/SetFence) in this function: an acknowledgment that nothing made stable violates ack-implies-durable")
			}
		}
	}
}

// sendsAckReply reports whether a call passes a *msg.DiskWriteRes,
// *msg.DiskWriteVRes, or *msg.FenceRes as an argument — the shape of
// every d.send(client, res) acknowledgment.
func sendsAckReply(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok {
			continue
		}
		named := analysis.NamedOf(tv.Type)
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		if analysis.PkgBase(named.Obj().Pkg().Path()) == "msg" && ackReplies[named.Obj().Name()] {
			return true
		}
	}
	return false
}

// isDurableMediaCall reports whether call invokes Write/WriteV/SetFence
// on a blockstore media value (the Media interface or a concrete store).
func isDurableMediaCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || !durableMethods[fn.Name()] {
		return false
	}
	recv := analysis.RecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil {
		return false
	}
	return analysis.PkgBase(recv.Obj().Pkg().Path()) == "blockstore"
}

// checkSanctionedSync implements A3: (*os.File).Sync only inside the
// helper method named "sync".
func checkSanctionedSync(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Recv != nil && fd.Name.Name == "sync" {
			continue // the sanctioned helper itself
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Sync" {
				return true
			}
			recv := analysis.RecvNamed(fn)
			if recv == nil || recv.Obj().Pkg() == nil {
				return true
			}
			if recv.Obj().Pkg().Path() == "os" && recv.Obj().Name() == "File" {
				pass.Reportf(call.Pos(),
					"direct (*os.File).Sync bypasses the sanctioned (*File).sync helper: fsyncs must be instrumented and respect the NoSync gate in one place")
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	saw := false
	for _, e := range exprs {
		if !isBlank(e) {
			return false
		}
		saw = true
	}
	return saw
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
