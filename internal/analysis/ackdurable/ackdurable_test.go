package ackdurable_test

import (
	"testing"

	"repro/internal/analysis/ackdurable"
	"repro/internal/analysis/analysistest"
)

func TestAckDurable(t *testing.T) {
	analysistest.Run(t, ackdurable.Analyzer, "msg", "blockstore", "disk")
}
