// Package server is the traceexhaustive fixture for rule T2: the
// configured protocol-error function (Server).nack must emit a trace
// event lexically before every reply send and every error return.
package server

import "errors"

var errEmpty = errors.New("empty reason")

type Event struct{ Note string }

type Server struct {
	sink func(Event)
	out  func(to int, m any)
}

func (s *Server) emit(e Event)       { s.sink(e) }
func (s *Server) send(to int, m any) { s.out(to, m) }

func (s *Server) nack(to int, why string) error {
	if why == "" {
		return errEmpty // want `error return in server.Server.nack without a preceding trace emit`
	}
	s.send(to, why) // want `reply send in server.Server.nack without a preceding trace emit`
	s.emit(Event{Note: why})
	s.send(to, why)
	return nil
}

// ack is not a configured error path; it owes no emit.
func (s *Server) ack(to int) {
	s.send(to, "ok")
}
