// Package trace is the traceexhaustive fixture for rule T1: every
// constant of a stringed enum must appear in a mapping — a switch case
// or a keyed name-table literal.
package trace

// Kind is mapped by switch; KindDrop was added without a case.
type Kind uint8

const (
	KindStart Kind = iota
	KindStop
	KindDrop // want `enum constant trace.KindDrop is not covered`
)

func (k Kind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindStop:
		return "stop"
	}
	return "unknown"
}

// Code is mapped by the keyed name-table idiom; fully covered.
type Code uint8

const (
	CodeOK Code = iota
	CodeErr
)

var codeNames = [...]string{
	CodeOK:  "ok",
	CodeErr: "err",
}

func (c Code) String() string {
	if int(c) < len(codeNames) {
		return codeNames[c]
	}
	return "?"
}

// phase has no String method, so it is not a trace vocabulary and its
// constants owe no mapping.
type phase uint8

const (
	phaseIdle phase = iota
	phaseBusy
)

// Sentinel has a String method but only one constant: a lone sentinel
// is not an enum.
type Sentinel uint8

const SentinelZero Sentinel = 0

func (s Sentinel) String() string { return "zero" }

// use keeps the unexported phase constants referenced.
func use() phase { return phaseIdle + phaseBusy }
