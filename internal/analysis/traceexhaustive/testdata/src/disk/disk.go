// Package disk is the traceexhaustive negative fixture for rule T2:
// mediaFailed traces before it answers, as the contract demands.
package disk

type Disk struct {
	trace func(string)
	out   func(to int, m any)
}

func (d *Disk) emit(note string)   { d.trace(note) }
func (d *Disk) send(to int, m any) { d.out(to, m) }

func (d *Disk) mediaFailed(to int, err error) error {
	d.emit(err.Error())
	d.send(to, err)
	return err
}
