// Package traceexhaustive keeps the trace vocabulary total and the
// protocol's error paths observable.
//
// The trace bus is the evidence channel for every safety claim the
// repository makes (DESIGN §7): Theorem 3.1 is asserted from the event
// stream, the chaos and crash harnesses grep it, and EXPERIMENTS.md
// tabulates it. Two regressions silently rot that evidence:
//
//  1. A new enum constant (a trace.Type, a simnet.DropReason, a
//     msg.Errno) that never made it into the String()/name-table
//     mapping — JSONL streams then carry "Type(23)", and the
//     round-trip through UnmarshalJSON breaks for exactly the newest,
//     most interesting events.
//  2. A protocol-error path that stopped emitting its trace event —
//     the NACK still flows, the steal still fires, but the stream no
//     longer shows it, and every trace assertion downstream quietly
//     proves less than it did.
//
// Rules:
//
//	T1  in the trace, simnet, and msg packages: every package-level
//	    constant of an integer enum type that has a String() method
//	    must be referenced by a mapping — a switch case in one of the
//	    type's methods, or a keyed composite literal (the name-table
//	    idiom) — somewhere in the package
//	T2  configured protocol-error functions ((Server).nack,
//	    (Disk).mediaFailed) must emit a trace event lexically before
//	    every reply send and every non-empty return: the event is part
//	    of the error path's contract, not decoration
package traceexhaustive

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the traceexhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "traceexhaustive",
	Doc: "every trace/drop/errno enum constant must appear in its String()/name-table mapping, " +
		"and configured protocol-error functions must emit a trace event before acking or returning the error",
	Run: run,
}

// enumPkgs are the packages (by base) whose stringed enums must stay
// exhaustive.
var enumPkgs = map[string]bool{
	"trace":  true,
	"simnet": true,
	"msg":    true,
}

// emitFuncs maps "pkgBase.Recv.Method" to the protocol-error functions
// that must trace before they answer. The emit callee set is any method
// named emit, trace, or Emit.
var emitFuncs = map[string]bool{
	"server.Server.nack":    true,
	"disk.Disk.mediaFailed": true,
}

func run(pass *analysis.Pass) error {
	base := analysis.PkgBase(pass.Pkg.Path())
	if enumPkgs[base] {
		checkEnums(pass)
	}
	checkEmitBeforeError(pass, base)
	return nil
}

// --- T1: enum mapping exhaustiveness ---------------------------------------

func checkEnums(pass *analysis.Pass) {
	// Collect candidate enum types: package-level named integer types
	// with a String() method declared in this package.
	enums := make(map[*types.TypeName][]*types.Const)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		hasString := false
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "String" {
				hasString = true
			}
		}
		if hasString {
			enums[tn] = nil
		}
	}
	if len(enums) == 0 {
		return
	}
	// Attach each package-level constant to its enum type.
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := enums[named.Obj()]; ok {
			enums[named.Obj()] = append(enums[named.Obj()], c)
		}
	}
	// Scan every non-test file for mapping references: case clauses and
	// composite-literal keys resolve to constant uses.
	covered := make(map[*types.Const]bool)
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					markConst(pass, e, covered)
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						markConst(pass, kv.Key, covered)
					}
				}
			}
			return true
		})
	}
	// An enum with at least two constants and no covered member has no
	// mapping at all — that is a different (worse) finding than one
	// missing entry, but the report reads the same per constant.
	var missing []*types.Const
	for _, consts := range enums {
		if len(consts) < 2 {
			continue // a lone sentinel (msg.None) is not an enum
		}
		for _, c := range consts {
			if !covered[c] {
				missing = append(missing, c)
			}
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Pos() < missing[j].Pos() })
	for _, c := range missing {
		pass.Reportf(c.Pos(),
			"enum constant %s.%s is not covered by any String()/name-table mapping: JSONL streams would render it as a raw number and UnmarshalJSON could not round-trip it",
			analysis.PkgBase(pass.Pkg.Path()), c.Name())
	}
}

// markConst records e if it resolves to a package-level constant.
func markConst(pass *analysis.Pass, e ast.Expr, covered map[*types.Const]bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return
	}
	if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
		covered[c] = true
	}
}

// --- T2: emit-before-error in configured functions -------------------------

func checkEmitBeforeError(pass *analysis.Pass, base string) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvNamed := analysis.NamedOf(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type)
			if recvNamed == nil {
				continue
			}
			key := base + "." + recvNamed.Obj().Name() + "." + fd.Name.Name
			if !emitFuncs[key] {
				continue
			}
			checkFuncEmits(pass, fd, key)
		}
	}
}

// checkFuncEmits verifies that a trace emit lexically precedes every
// send and every value-carrying return in fd.
func checkFuncEmits(pass *analysis.Pass, fd *ast.FuncDecl, key string) {
	var emits []token.Pos
	type errExit struct {
		pos  token.Pos
		what string
	}
	var exits []errExit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.Callee(pass.TypesInfo, n); fn != nil {
				switch fn.Name() {
				case "emit", "trace", "Emit":
					emits = append(emits, n.Pos())
				case "send", "Send":
					exits = append(exits, errExit{n.Pos(), "reply send"})
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				exits = append(exits, errExit{n.Pos(), "error return"})
			}
		}
		return true
	})
	for _, exit := range exits {
		preceded := false
		for _, e := range emits {
			if e < exit.pos {
				preceded = true
				break
			}
		}
		if !preceded {
			pass.Reportf(exit.pos,
				"%s in %s without a preceding trace emit: protocol-error paths must be visible on the trace bus (the stream is the safety evidence, DESIGN §7)",
				exit.what, key)
		}
	}
}
