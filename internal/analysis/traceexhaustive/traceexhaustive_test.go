package traceexhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/traceexhaustive"
)

func TestTraceExhaustive(t *testing.T) {
	analysistest.Run(t, traceexhaustive.Analyzer, "trace", "server", "disk")
}
