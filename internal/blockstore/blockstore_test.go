package blockstore

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/stats"
)

func openTemp(t *testing.T, dir string, blocks uint64) *File {
	t.Helper()
	f, err := Open(dir, Options{Blocks: blocks})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestMemMatchesFileSemantics(t *testing.T) {
	media := []struct {
		name string
		m    Media
	}{
		{"mem", NewMem()},
		{"file", openTemp(t, t.TempDir(), 64)},
	}
	for _, tc := range media {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			if _, _, ok, err := m.Read(3); ok || err != nil {
				t.Fatalf("unwritten block: ok=%v err=%v", ok, err)
			}
			if err := m.Write(3, []byte("short"), 7); err != nil {
				t.Fatal(err)
			}
			data, ver, ok, err := m.Read(3)
			if err != nil || !ok || ver != 7 {
				t.Fatalf("read: ok=%v ver=%d err=%v", ok, ver, err)
			}
			if len(data) != BlockSize || !bytes.HasPrefix(data, []byte("short")) {
				t.Fatalf("data not zero-padded copy: len=%d", len(data))
			}
			if !bytes.Equal(data[5:], make([]byte, BlockSize-5)) {
				t.Fatal("tail not zeroed")
			}
			if m.Fenced(9) {
				t.Fatal("fenced before SetFence")
			}
			if err := m.SetFence(9, true); err != nil {
				t.Fatal(err)
			}
			if !m.Fenced(9) {
				t.Fatal("not fenced after SetFence")
			}
			if err := m.SetFence(9, false); err != nil {
				t.Fatal(err)
			}
			if m.Fenced(9) {
				t.Fatal("fenced after clear")
			}
		})
	}
}

func TestFilePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	f := openTemp(t, dir, 32)
	payload := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := f.Write(5, payload, 42); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFence(77, true); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFence(78, true); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFence(78, false); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g := openTemp(t, dir, 32)
	data, ver, ok, err := g.Read(5)
	if err != nil || !ok || ver != 42 || !bytes.Equal(data, payload) {
		t.Fatalf("reopen read: ok=%v ver=%d err=%v", ok, ver, err)
	}
	if !g.Fenced(77) || g.Fenced(78) {
		t.Fatalf("fence table lost: 77=%v 78=%v", g.Fenced(77), g.Fenced(78))
	}
	rep := g.Recovery()
	if !rep.Recovered || rep.Verified != 1 || len(rep.Torn) != 0 {
		t.Fatalf("recovery report: %v", rep)
	}
	if len(rep.Fenced) != 1 || rep.Fenced[0] != 77 {
		t.Fatalf("recovered fences: %v", rep.Fenced)
	}
	// The replay processed the compacted journal from the prior open (0
	// records, fresh store) plus this run's 3 appends — after compaction
	// a third open sees exactly one record.
	g.Close()
	h := openTemp(t, dir, 32)
	if rec := h.Recovery().JournalRecords; rec != 1 {
		t.Fatalf("journal not compacted: %d records", rec)
	}
}

func TestFileDetectsTornBlock(t *testing.T) {
	dir := t.TempDir()
	f := openTemp(t, dir, 32)
	good := bytes.Repeat([]byte{0x11}, BlockSize)
	for _, b := range []uint64{2, 3} {
		if err := f.Write(b, good, 9); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Tear block 2 the way a crash mid-pwrite would: partial foreign
	// bytes inside the block, trailer left describing the old contents.
	raw, err := os.OpenFile(DataPath(dir), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteAt(bytes.Repeat([]byte{0xEE}, 700), DataOffset(2)+100); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	g := openTemp(t, dir, 32)
	rep := g.Recovery()
	if len(rep.Torn) != 1 || rep.Torn[0] != 2 || rep.Verified != 1 {
		t.Fatalf("recovery report: %v", rep)
	}
	if _, _, _, err := g.Read(2); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn read err = %v, want ErrTorn", err)
	}
	// The intact neighbour still serves.
	if data, _, ok, err := g.Read(3); err != nil || !ok || !bytes.Equal(data, good) {
		t.Fatalf("intact block: ok=%v err=%v", ok, err)
	}
	// Rewriting the torn block repairs it.
	if err := g.Write(2, good, 10); err != nil {
		t.Fatal(err)
	}
	if _, ver, ok, err := g.Read(2); err != nil || !ok || ver != 10 {
		t.Fatalf("post-repair read: ok=%v ver=%d err=%v", ok, ver, err)
	}
}

func TestFileTornJournalTailIgnored(t *testing.T) {
	dir := t.TempDir()
	f := openTemp(t, dir, 8)
	if err := f.SetFence(5, true); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Append a torn (half-written, garbage-CRC) record.
	raw, err := os.OpenFile(dir+"/"+fenceFileName, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	g := openTemp(t, dir, 8)
	if !g.Fenced(5) {
		t.Fatal("acknowledged fence lost to torn tail")
	}
	if rec := g.Recovery().JournalRecords; rec != 1 {
		t.Fatalf("replayed %d records, want 1 (torn tail skipped)", rec)
	}
}

func TestFileCapacityMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	openTemp(t, dir, 16).Close()
	if _, err := Open(dir, Options{Blocks: 32}); err == nil {
		t.Fatal("capacity mismatch not rejected")
	}
	// Blocks=0 accepts whatever the superblock records.
	g, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Capacity() != 16 {
		t.Fatalf("capacity = %d", g.Capacity())
	}
}

func TestFileOutOfRange(t *testing.T) {
	f := openTemp(t, t.TempDir(), 4)
	if err := f.Write(4, nil, 1); err == nil {
		t.Fatal("write beyond capacity accepted")
	}
	if _, _, _, err := f.Read(4); err == nil {
		t.Fatal("read beyond capacity accepted")
	}
	if err := f.Write(0, make([]byte, BlockSize+1), 1); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestFileInstruments(t *testing.T) {
	reg := stats.NewRegistry()
	dir := t.TempDir()
	f, err := Open(dir, Options{Blocks: 8, Registry: reg, StatsPrefix: "disk.n9.media."})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Write(0, []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFence(3, true); err != nil {
		t.Fatal(err)
	}
	// superblock(1) + write(2) + fence(1) fsyncs.
	if got := reg.CounterValue("disk.n9.media.fsyncs"); got != 4 {
		t.Fatalf("fsyncs = %d, want 4", got)
	}
	if got := reg.CounterValue("disk.n9.media.journal_records"); got != 1 {
		t.Fatalf("journal_records = %d, want 1", got)
	}
	if reg.Histogram("disk.n9.media.fsync_wait").Count() != 4 {
		t.Fatal("fsync_wait histogram empty")
	}
}

func BenchmarkFileWrite(b *testing.B) {
	dir := b.TempDir()
	f, err := Open(dir, Options{Blocks: 1 << 12, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := bytes.Repeat([]byte{0x5A}, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Write(uint64(i)&((1<<12)-1), buf, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileWriteSync(b *testing.B) {
	dir := b.TempDir()
	f, err := Open(dir, Options{Blocks: 1 << 12})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := bytes.Repeat([]byte{0x5A}, BlockSize)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Write(uint64(i)&((1<<12)-1), buf, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
