package blockstore

import "repro/internal/msg"

// Mem is the in-memory media the simulator (and any test that does not
// care about durability) runs on. Its semantics are exactly the maps the
// disk used to hold inline: unwritten blocks read as absent, writes are
// zero-padded copies, and nothing survives the process. Determinism of
// the simulation is untouched — Mem performs no I/O and allocates the
// same way the old code did.
type Mem struct {
	data   map[uint64][]byte
	vers   map[uint64]uint64
	fenced map[msg.NodeID]bool
}

// NewMem returns an empty in-memory media.
func NewMem() *Mem {
	return &Mem{
		data:   make(map[uint64][]byte),
		vers:   make(map[uint64]uint64),
		fenced: make(map[msg.NodeID]bool),
	}
}

// Read returns the stored block, or ok=false if never written. The
// returned slice is the store's own buffer and is read-only by the Media
// contract; Write always installs a fresh buffer, so a previously
// returned slice is never mutated in place.
func (m *Mem) Read(block uint64) (data []byte, ver uint64, ok bool, err error) {
	b, ok := m.data[block]
	if !ok {
		return nil, 0, false, nil
	}
	return b, m.vers[block], true, nil
}

// Write stores a zero-padded copy of the block.
func (m *Mem) Write(block uint64, data []byte, ver uint64) error {
	buf := make([]byte, BlockSize)
	copy(buf, data)
	m.data[block] = buf
	m.vers[block] = ver
	return nil
}

// WriteV stores each block of the batch in order. Memory has no
// stabilization step to amortize, so the batch is exactly a loop over
// Write — which is what keeps simulated output byte-identical whether a
// flush arrives as one vectored message or as per-page writes.
func (m *Mem) WriteV(batch []BlockWrite) []error {
	errs := make([]error, len(batch))
	for i, w := range batch {
		errs[i] = m.Write(w.Block, w.Data, w.Ver)
	}
	return errs
}

// SetFence updates the fence table.
func (m *Mem) SetFence(target msg.NodeID, on bool) error {
	if on {
		m.fenced[target] = true
	} else {
		delete(m.fenced, target)
	}
	return nil
}

// Fenced reports whether target is fenced.
func (m *Mem) Fenced(target msg.NodeID) bool { return m.fenced[target] }

// Recovery returns a zero report: memory has nothing to recover.
func (m *Mem) Recovery() RecoveryReport { return RecoveryReport{} }

// Close is a no-op.
func (m *Mem) Close() error { return nil }

var _ Media = (*Mem)(nil)
