package blockstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/msg"
	"repro/internal/stats"
)

// On-media layout. Three files in one directory:
//
//	data.blk   block b's 4 KiB of data at offset b·BlockSize (append-free:
//	           every write is a pwrite at its final address)
//	meta.blk   a 4 KiB superblock, then one 24-byte trailer per block at
//	           superSize + b·trailerSize
//	fence.wal  the write-ahead fence journal: 12-byte records appended
//	           and fsynced before a FenceSet is acknowledged
//
// Trailer record: ver u64 | dataCRC u32 | flags u32 | recCRC u32 | pad.
// dataCRC is CRC32C over the full zero-padded block; recCRC covers the
// first 16 bytes, so a trailer torn mid-sector is itself detectable.
//
// Journal record: target u32 | on u32 | recCRC u32 (over the first 8).
// Replay stops at the first record whose CRC fails — a torn journal tail
// loses only unacknowledged fence operations.
const (
	dataFileName  = "data.blk"
	metaFileName  = "meta.blk"
	fenceFileName = "fence.wal"

	superSize   = 4096
	trailerSize = 24
	fenceRecLen = 12

	flagWritten = 1 << 0
)

var (
	superMagic = [8]byte{'T', 'A', 'N', 'K', 'B', 'L', 'K', '1'}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// DataPath returns the path of the store's data file — exported so crash
// harnesses can tear blocks the way a mid-write power cut would.
func DataPath(dir string) string { return filepath.Join(dir, dataFileName) }

// DataOffset returns block's byte offset within the data file.
func DataOffset(block uint64) int64 { return int64(block) * BlockSize }

// Options configures a file-backed store.
type Options struct {
	// Blocks is the device capacity. Required when creating; when opening
	// an existing store it must match the superblock (0 accepts whatever
	// the superblock records).
	Blocks uint64
	// NoSync skips the per-operation fsync. Acknowledged durability then
	// relies on the OS page cache (which survives a killed process but
	// not a machine crash); tests use it to keep bursts fast.
	NoSync bool
	// Registry, when non-nil, receives the store's instruments under
	// StatsPrefix: fsyncs, fsync latency, journal records, and the
	// recovery verified/torn counts.
	Registry    *stats.Registry
	StatsPrefix string
}

type blockState struct {
	ver  uint64
	crc  uint32
	torn bool
}

// File is the durable media serving live disk nodes. Not concurrency-safe
// by design: the owning disk serializes access (single actuator).
type File struct {
	dir      string
	capacity uint64
	noSync   bool

	data  *os.File
	meta  *os.File
	fence *os.File

	index    map[uint64]blockState
	fenced   map[msg.NodeID]bool
	walSize  int64
	recovery RecoveryReport

	fsyncs      *stats.Counter
	journalRec  *stats.Counter
	fsyncWait   *stats.Histogram
	fsyncsSaved *stats.Counter
}

// Open creates or recovers a file-backed store in dir. On an existing
// store it replays the fence journal, verifies the checksum of every
// written block, and records the outcome in Recovery().
func Open(dir string, opts Options) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	f := &File{
		dir:    dir,
		noSync: opts.NoSync,
		index:  make(map[uint64]blockState),
		fenced: make(map[msg.NodeID]bool),
	}
	if opts.Registry != nil {
		f.fsyncs = opts.Registry.Counter(opts.StatsPrefix + "fsyncs")
		f.journalRec = opts.Registry.Counter(opts.StatsPrefix + "journal_records")
		f.fsyncWait = opts.Registry.Histogram(opts.StatsPrefix + "fsync_wait")
		f.fsyncsSaved = opts.Registry.Counter(opts.StatsPrefix + "fsyncs_saved")
	}
	var err error
	if f.meta, err = os.OpenFile(filepath.Join(dir, metaFileName), os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	// On every open-failure path below, the close error is discarded
	// deliberately: nothing was written yet, the handles are read-only as
	// far as durability is concerned, and the open error is the one the
	// caller must see.
	if f.data, err = os.OpenFile(filepath.Join(dir, dataFileName), os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		_ = f.meta.Close()
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	if f.fence, err = os.OpenFile(filepath.Join(dir, fenceFileName), os.O_RDWR|os.O_CREATE, 0o644); err != nil {
		_ = f.meta.Close()
		_ = f.data.Close()
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	st, err := f.meta.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	if st.Size() == 0 {
		if opts.Blocks == 0 {
			_ = f.Close()
			return nil, fmt.Errorf("blockstore: creating %s: Options.Blocks must be set", dir)
		}
		f.capacity = opts.Blocks
		if err := f.writeSuper(); err != nil {
			_ = f.Close()
			return nil, err
		}
		return f, nil
	}
	if err := f.readSuper(opts.Blocks); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.recoverBlocks(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.recoverFences(); err != nil {
		_ = f.Close()
		return nil, err
	}
	f.recovery.Recovered = true
	sortReport(&f.recovery)
	return f, nil
}

func (f *File) writeSuper() error {
	buf := make([]byte, superSize)
	copy(buf, superMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], BlockSize)
	binary.LittleEndian.PutUint32(buf[12:], trailerSize)
	binary.LittleEndian.PutUint64(buf[16:], f.capacity)
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[:24], castagnoli))
	if _, err := f.meta.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("blockstore: superblock: %w", err)
	}
	return f.sync(f.meta)
}

func (f *File) readSuper(wantBlocks uint64) error {
	buf := make([]byte, superSize)
	if _, err := io.ReadFull(io.NewSectionReader(f.meta, 0, superSize), buf); err != nil {
		return fmt.Errorf("blockstore: superblock read: %w", err)
	}
	if [8]byte(buf[:8]) != superMagic {
		return fmt.Errorf("blockstore: %s: bad magic", f.dir)
	}
	if crc := binary.LittleEndian.Uint32(buf[24:]); crc != crc32.Checksum(buf[:24], castagnoli) {
		return fmt.Errorf("blockstore: %s: superblock checksum mismatch", f.dir)
	}
	if bs := binary.LittleEndian.Uint32(buf[8:]); bs != BlockSize {
		return fmt.Errorf("blockstore: %s: block size %d, built for %d", f.dir, bs, BlockSize)
	}
	f.capacity = binary.LittleEndian.Uint64(buf[16:])
	if wantBlocks != 0 && wantBlocks != f.capacity {
		return fmt.Errorf("blockstore: %s: capacity %d blocks, asked for %d", f.dir, f.capacity, wantBlocks)
	}
	return nil
}

// recoverBlocks scans every trailer and re-checksums each written block:
// the open-time verification pass. A trailer whose own CRC fails, or a
// block whose data no longer matches its trailer's CRC, is torn.
func (f *File) recoverBlocks() error {
	st, err := f.meta.Stat()
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	nTrailers := (st.Size() - superSize) / trailerSize
	rec := make([]byte, trailerSize)
	blockBuf := make([]byte, BlockSize)
	for i := int64(0); i < nTrailers; i++ {
		if _, err := io.ReadFull(io.NewSectionReader(f.meta, superSize+i*trailerSize, trailerSize), rec); err != nil {
			return fmt.Errorf("blockstore: trailer %d: %w", i, err)
		}
		ver := binary.LittleEndian.Uint64(rec[0:])
		dataCRC := binary.LittleEndian.Uint32(rec[8:])
		flags := binary.LittleEndian.Uint32(rec[12:])
		recCRC := binary.LittleEndian.Uint32(rec[16:])
		if flags&flagWritten == 0 && recCRC == 0 && ver == 0 && dataCRC == 0 {
			continue // never-written hole
		}
		block := uint64(i)
		if recCRC != crc32.Checksum(rec[:16], castagnoli) {
			f.markTorn(block)
			continue
		}
		if flags&flagWritten == 0 {
			continue
		}
		n, err := f.data.ReadAt(blockBuf, DataOffset(block))
		if err != nil && (err != io.EOF || n != BlockSize) {
			f.markTorn(block)
			continue
		}
		if crc32.Checksum(blockBuf, castagnoli) != dataCRC {
			f.markTorn(block)
			continue
		}
		f.index[block] = blockState{ver: ver, crc: dataCRC}
		f.recovery.Verified++
	}
	return nil
}

func (f *File) markTorn(block uint64) {
	f.index[block] = blockState{torn: true}
	f.recovery.Torn = append(f.recovery.Torn, block)
}

// recoverFences replays the journal, then compacts it so the file stays
// proportional to the live fence table rather than to history.
func (f *File) recoverFences() error {
	st, err := f.fence.Stat()
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	rec := make([]byte, fenceRecLen)
	var off int64
	for off+fenceRecLen <= st.Size() {
		if _, err := io.ReadFull(io.NewSectionReader(f.fence, off, fenceRecLen), rec); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(rec[8:]) != crc32.Checksum(rec[:8], castagnoli) {
			break // torn tail: an unacknowledged append
		}
		target := msg.NodeID(int32(binary.LittleEndian.Uint32(rec[0:])))
		if binary.LittleEndian.Uint32(rec[4:]) != 0 {
			f.fenced[target] = true
		} else {
			delete(f.fenced, target)
		}
		f.recovery.JournalRecords++
		off += fenceRecLen
	}
	for id := range f.fenced {
		f.recovery.Fenced = append(f.recovery.Fenced, id)
	}
	return f.compactJournal()
}

// compactJournal rewrites the journal as one set-record per live fence,
// atomically (write temp, fsync, rename, reopen).
func (f *File) compactJournal() error {
	tmp := filepath.Join(f.dir, fenceFileName+".tmp")
	w, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("blockstore: compact: %w", err)
	}
	var buf []byte
	for id := range f.fenced {
		buf = append(buf, fenceRecord(id, true)...)
	}
	if _, err := w.Write(buf); err != nil {
		// The write/fsync failure is the error that matters; the temp file
		// is abandoned either way.
		_ = w.Close()
		return fmt.Errorf("blockstore: compact: %w", err)
	}
	if err := f.sync(w); err != nil {
		_ = w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("blockstore: compact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, fenceFileName)); err != nil {
		return fmt.Errorf("blockstore: compact: %w", err)
	}
	old := f.fence
	if f.fence, err = os.OpenFile(filepath.Join(f.dir, fenceFileName), os.O_RDWR, 0o644); err != nil {
		f.fence = old
		return fmt.Errorf("blockstore: compact: %w", err)
	}
	// The superseded journal handle holds nothing durable — the compacted
	// file has already been fsynced and renamed into place.
	_ = old.Close()
	f.walSize = int64(len(buf))
	return nil
}

func fenceRecord(target msg.NodeID, on bool) []byte {
	rec := make([]byte, fenceRecLen)
	binary.LittleEndian.PutUint32(rec[0:], uint32(int32(target)))
	if on {
		binary.LittleEndian.PutUint32(rec[4:], 1)
	}
	binary.LittleEndian.PutUint32(rec[8:], crc32.Checksum(rec[:8], castagnoli))
	return rec
}

// sync fsyncs one file, instrumented. This is the single sanctioned
// fsync site (the ackdurable pass enforces it): the NoSync gate and the
// latency instrumentation live here and nowhere else. The wall-clock
// reads are measurement of the real device, not protocol time.
//
//lint:allow clockhygiene(fsync latency is a measurement of the physical device, not protocol time)
func (f *File) sync(file *os.File) error {
	if f.noSync {
		return nil
	}
	start := time.Now()
	err := file.Sync()
	if f.fsyncs != nil {
		f.fsyncs.Inc()
		f.fsyncWait.Observe(time.Since(start))
	}
	if err != nil {
		return fmt.Errorf("blockstore: fsync: %w", err)
	}
	return nil
}

// Read serves one block, re-verifying its checksum against the trailer so
// corruption is detected at the moment it would otherwise be served.
func (f *File) Read(block uint64) (data []byte, ver uint64, ok bool, err error) {
	if block >= f.capacity {
		return nil, 0, false, fmt.Errorf("blockstore: block %d beyond capacity %d", block, f.capacity)
	}
	st, ok := f.index[block]
	if !ok {
		return nil, 0, false, nil
	}
	if st.torn {
		return nil, 0, true, fmt.Errorf("block %d: %w", block, ErrTorn)
	}
	buf := make([]byte, BlockSize)
	if _, err := f.data.ReadAt(buf, DataOffset(block)); err != nil {
		return nil, 0, true, fmt.Errorf("blockstore: read block %d: %w", block, err)
	}
	if crc32.Checksum(buf, castagnoli) != st.crc {
		// Detected at serve time rather than open (e.g. media decayed
		// under a running node): fail-stop this block, but leave the
		// open-time recovery report describing only what Open found.
		f.index[block] = blockState{torn: true}
		return nil, 0, true, fmt.Errorf("block %d: %w", block, ErrTorn)
	}
	return buf, st.ver, true, nil
}

// stage pwrites one block's data and trailer WITHOUT stabilizing them.
// The caller must fsync data and meta (commit) before updating the index
// or acknowledging anything.
func (f *File) stage(block uint64, data []byte, ver uint64) (crc uint32, err error) {
	if block >= f.capacity {
		return 0, fmt.Errorf("blockstore: block %d beyond capacity %d", block, f.capacity)
	}
	if len(data) > BlockSize {
		return 0, fmt.Errorf("blockstore: write of %d bytes exceeds block size", len(data))
	}
	buf := make([]byte, BlockSize)
	copy(buf, data)
	crc = crc32.Checksum(buf, castagnoli)
	if _, err := f.data.WriteAt(buf, DataOffset(block)); err != nil {
		return 0, fmt.Errorf("blockstore: write block %d: %w", block, err)
	}
	rec := make([]byte, trailerSize)
	binary.LittleEndian.PutUint64(rec[0:], ver)
	binary.LittleEndian.PutUint32(rec[8:], crc)
	binary.LittleEndian.PutUint32(rec[12:], flagWritten)
	binary.LittleEndian.PutUint32(rec[16:], crc32.Checksum(rec[:16], castagnoli))
	if _, err := f.meta.WriteAt(rec, superSize+int64(block)*trailerSize); err != nil {
		return 0, fmt.Errorf("blockstore: trailer %d: %w", block, err)
	}
	return crc, nil
}

// commit stabilizes everything staged so far: one data fsync, one meta
// fsync — the group-commit point shared by a whole batch.
func (f *File) commit() error {
	if err := f.sync(f.data); err != nil {
		return err
	}
	return f.sync(f.meta)
}

// Write stores one block durably: data first, trailer second, fsync both
// before returning, so the caller's acknowledgment implies durability and
// a crash between the two pwrites is detectable (trailer CRC mismatch).
func (f *File) Write(block uint64, data []byte, ver uint64) error {
	crc, err := f.stage(block, data, ver)
	if err != nil {
		return err
	}
	if err := f.commit(); err != nil {
		return err
	}
	f.index[block] = blockState{ver: ver, crc: crc}
	return nil
}

// WriteV stores a batch of blocks under ONE group commit: every entry is
// staged (data pwrite + trailer pwrite), then a single data fsync and a
// single meta fsync stabilize the whole batch — 2 fsyncs instead of 2·n.
// Per-entry staging failures are reported individually and do not stop
// the rest of the batch; a commit failure fails every staged entry, since
// none of them can be claimed durable. The index is only updated after
// the commit, so a crash mid-batch leaves either torn blocks (detected at
// recovery) or old contents — never a half-acknowledged batch.
func (f *File) WriteV(batch []BlockWrite) []error {
	errs := make([]error, len(batch))
	type staged struct {
		i   int
		crc uint32
	}
	stagedOK := make([]staged, 0, len(batch))
	for i, w := range batch {
		crc, err := f.stage(w.Block, w.Data, w.Ver)
		if err != nil {
			errs[i] = err
			continue
		}
		stagedOK = append(stagedOK, staged{i: i, crc: crc})
	}
	if len(stagedOK) == 0 {
		return errs
	}
	if err := f.commit(); err != nil {
		for _, s := range stagedOK {
			errs[s.i] = err
		}
		return errs
	}
	if f.fsyncsSaved != nil && !f.noSync && len(stagedOK) > 1 {
		// A per-block loop would have paid 2 fsyncs per entry; the group
		// commit paid 2 total.
		f.fsyncsSaved.Add(uint64(2*len(stagedOK) - 2))
	}
	for _, s := range stagedOK {
		w := batch[s.i]
		f.index[w.Block] = blockState{ver: w.Ver, crc: s.crc}
	}
	return errs
}

// SetFence appends one journal record and fsyncs it before returning:
// the FenceRes the disk then sends is backed by stable storage.
func (f *File) SetFence(target msg.NodeID, on bool) error {
	rec := fenceRecord(target, on)
	if _, err := f.fence.WriteAt(rec, f.walSize); err != nil {
		return fmt.Errorf("blockstore: fence journal: %w", err)
	}
	if err := f.sync(f.fence); err != nil {
		return err
	}
	f.walSize += fenceRecLen
	if f.journalRec != nil {
		f.journalRec.Inc()
	}
	if on {
		f.fenced[target] = true
	} else {
		delete(f.fenced, target)
	}
	return nil
}

// Fenced reports whether target is fenced.
func (f *File) Fenced(target msg.NodeID) bool { return f.fenced[target] }

// Recovery reports the open-time recovery pass.
func (f *File) Recovery() RecoveryReport { return f.recovery }

// Capacity returns the store's size in blocks (from the superblock).
func (f *File) Capacity() uint64 { return f.capacity }

// Close closes the backing files.
func (f *File) Close() error {
	var first error
	for _, file := range []*os.File{f.data, f.meta, f.fence} {
		if file == nil {
			continue
		}
		if err := file.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ Media = (*File)(nil)
