// Package blockstore is the media layer of a SAN block device: the thing
// underneath internal/disk that actually keeps block contents, version
// stamps, and the fence table.
//
// The paper's safety argument (§2.1, §4) terminates at stable storage: a
// phase-4 expected-failure flush is only safe if the blocks it writes
// survive, and fencing is only a backstop if the fence table survives the
// disk controller. This package supplies both halves of that contract:
//
//   - Mem is the simulator's media: plain maps, no I/O, deterministic to
//     the byte. It is the default a disk.Disk is built with, so every
//     existing simulation runs unchanged.
//   - File is the live deployment's media: one append-free data file
//     addressed by block number (pread/pwrite at block·BlockSize), a
//     per-block trailer holding the version stamp and a CRC32C of the
//     block for torn-write detection, and a write-ahead fence journal
//     that is fsynced before a FenceSet is acknowledged. Open replays
//     the journal and verifies every written block's checksum, so a
//     disk-node restart recovers exactly the state it acknowledged.
//
// Write ordering in File is data-then-trailer: a crash between the two
// leaves a trailer whose CRC does not match the block, which recovery
// reports as torn and Read refuses to serve (ErrTorn) — a torn write is
// detected, never silently served as a mix of old and new bytes. Because
// a write is only acknowledged (the disk's DiskWriteRes) after both
// pwrites and the configured sync complete, an acknowledged write can
// never be torn by a crash.
package blockstore

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/msg"
)

// BlockSize is the data block size, identical to disk.BlockSize (the
// constant lives here so the media layer does not import its consumer).
const BlockSize = 4096

// ErrTorn marks a block whose trailer checksum does not match its data:
// a write was interrupted between the data and trailer updates. Reads of
// a torn block fail with an error wrapping ErrTorn until the block is
// rewritten.
var ErrTorn = errors.New("blockstore: torn block")

// Media is the storage a disk.Disk serves from. Implementations are not
// required to be concurrency-safe: the disk funnels all access through
// its single-actuator executor, exactly as the device model demands.
type Media interface {
	// Read returns a block's stable contents and version stamp. The
	// returned slice may be the store's internal buffer and is read-only:
	// the caller must not mutate it, and it stays valid until the block
	// is rewritten. ok is false for a never-written block (the device
	// serves zeros). A torn block returns an error wrapping ErrTorn;
	// other errors are media failures.
	Read(block uint64) (data []byte, ver uint64, ok bool, err error)
	// Write durably stores one block (at most BlockSize bytes; short
	// writes are zero-padded) with its version stamp. The caller must
	// not acknowledge the write until Write returns nil.
	Write(block uint64, data []byte, ver uint64) error
	// WriteV durably stores a batch of blocks and returns one result per
	// entry (nil = committed). The durability contract is the batch
	// analogue of Write's: when WriteV returns, every entry whose result
	// is nil is stable — the file-backed media writes all data and
	// trailers first and then issues a SINGLE group-commit fsync, so a
	// batch costs one stabilization instead of one per block. Entries
	// that fail individually (bad length, media error) do not prevent
	// the rest of the batch from committing.
	WriteV(batch []BlockWrite) []error
	// SetFence durably updates the fence table. The caller must not
	// acknowledge the fence operation until SetFence returns nil.
	SetFence(target msg.NodeID, on bool) error
	// Fenced reports whether target is fenced.
	Fenced(target msg.NodeID) bool
	// Recovery reports what the open-time recovery pass found. For
	// freshly-created media the report is zero.
	Recovery() RecoveryReport
	// Close releases the media. The store must already be durable at
	// every acknowledged operation; Close adds nothing to durability.
	Close() error
}

// BlockWrite is one element of a vectored write: Write's arguments as a
// value.
type BlockWrite struct {
	Block uint64
	Data  []byte
	Ver   uint64
}

// RecoveryReport describes an open-time recovery pass over existing
// on-media state.
type RecoveryReport struct {
	// Recovered is true when the media was opened from existing files
	// (false for a fresh create or an in-memory store).
	Recovered bool
	// JournalRecords is the number of fence-journal records replayed.
	JournalRecords int
	// Fenced is the fence table after replay, sorted by node ID.
	Fenced []msg.NodeID
	// Verified counts written blocks whose checksum matched.
	Verified uint64
	// Torn lists blocks whose trailer and data disagree, sorted.
	Torn []uint64
}

// String renders the report for logs ("recovered journal=3 fenced=1
// verified=40 torn=[7]").
func (r RecoveryReport) String() string {
	return fmt.Sprintf("recovered=%v journal=%d fenced=%d verified=%d torn=%v",
		r.Recovered, r.JournalRecords, len(r.Fenced), r.Verified, r.Torn)
}

func sortReport(r *RecoveryReport) {
	sort.Slice(r.Fenced, func(i, j int) bool { return r.Fenced[i] < r.Fenced[j] })
	sort.Slice(r.Torn, func(i, j int) bool { return r.Torn[i] < r.Torn[j] })
}
