package blockstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/stats"
)

func vecPayload(tag byte, n int) []BlockWrite {
	batch := make([]BlockWrite, n)
	for i := range batch {
		batch[i] = BlockWrite{
			Block: uint64(i),
			Data:  bytes.Repeat([]byte{tag + byte(i)}, BlockSize),
			Ver:   uint64(100 + i),
		}
	}
	return batch
}

func TestWriteVMatchesWriteLoop(t *testing.T) {
	media := []struct {
		name string
		m    Media
	}{
		{"mem", NewMem()},
		{"file", openTemp(t, t.TempDir(), 64)},
	}
	for _, tc := range media {
		t.Run(tc.name, func(t *testing.T) {
			batch := vecPayload(0x20, 8)
			for _, err := range tc.m.WriteV(batch) {
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, w := range batch {
				data, ver, ok, err := tc.m.Read(w.Block)
				if err != nil || !ok || ver != w.Ver || !bytes.Equal(data, w.Data) {
					t.Fatalf("block %d: ok=%v ver=%d err=%v", w.Block, ok, ver, err)
				}
			}
		})
	}
}

// TestFileWriteVGroupCommit is the durability-amortization contract: a
// batch of n blocks costs exactly 2 fsyncs (data + meta) where a loop of
// scalar Writes costs 2·n, and the saving is accounted.
func TestFileWriteVGroupCommit(t *testing.T) {
	reg := stats.NewRegistry()
	dir := t.TempDir()
	f, err := Open(dir, Options{Blocks: 64, Registry: reg, StatsPrefix: "m."})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base := reg.CounterValue("m.fsyncs") // superblock fsync from create
	const n = 8
	for _, err := range f.WriteV(vecPayload(0x30, n)) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.CounterValue("m.fsyncs") - base; got != 2 {
		t.Fatalf("batch of %d cost %d fsyncs, want 2 (group commit)", n, got)
	}
	if got := reg.CounterValue("m.fsyncs_saved"); got != 2*n-2 {
		t.Fatalf("fsyncs_saved = %d, want %d", got, 2*n-2)
	}
}

// TestFileWriteVPersists: a batch acknowledged by WriteV survives close
// and reopen with every block's contents and version intact
// (ack-implies-batch-durable).
func TestFileWriteVPersists(t *testing.T) {
	dir := t.TempDir()
	f := openTemp(t, dir, 64)
	batch := vecPayload(0x40, 6)
	for _, err := range f.WriteV(batch) {
		if err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	g := openTemp(t, dir, 64)
	rep := g.Recovery()
	if rep.Verified != uint64(len(batch)) || len(rep.Torn) != 0 {
		t.Fatalf("recovery report: %v", rep)
	}
	for _, w := range batch {
		data, ver, ok, err := g.Read(w.Block)
		if err != nil || !ok || ver != w.Ver || !bytes.Equal(data, w.Data) {
			t.Fatalf("block %d after reopen: ok=%v ver=%d err=%v", w.Block, ok, ver, err)
		}
	}
}

// TestFileWriteVPartialFailure: invalid entries fail individually without
// stopping the rest of the batch from committing.
func TestFileWriteVPartialFailure(t *testing.T) {
	f := openTemp(t, t.TempDir(), 8)
	batch := []BlockWrite{
		{Block: 0, Data: []byte("good"), Ver: 1},
		{Block: 99, Data: []byte("beyond"), Ver: 2},              // out of range
		{Block: 1, Data: make([]byte, BlockSize+1), Ver: 3},      // oversized
		{Block: 2, Data: bytes.Repeat([]byte{7}, BlockSize), Ver: 4},
	}
	errs := f.WriteV(batch)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid entries failed: %v %v", errs[0], errs[3])
	}
	if errs[1] == nil || errs[2] == nil {
		t.Fatalf("invalid entries accepted: %v %v", errs[1], errs[2])
	}
	if _, ver, ok, err := f.Read(0); err != nil || !ok || ver != 1 {
		t.Fatalf("block 0: ok=%v ver=%d err=%v", ok, ver, err)
	}
	if _, ver, ok, err := f.Read(2); err != nil || !ok || ver != 4 {
		t.Fatalf("block 2: ok=%v ver=%d err=%v", ok, ver, err)
	}
	if _, _, ok, _ := f.Read(1); ok {
		t.Fatal("oversized entry reached the media")
	}
}

func TestWriteVEmptyBatch(t *testing.T) {
	for _, m := range []Media{NewMem(), openTemp(t, t.TempDir(), 8)} {
		if errs := m.WriteV(nil); len(errs) != 0 {
			t.Fatalf("%T: empty batch returned %d errors", m, len(errs))
		}
	}
}

func BenchmarkFileWriteVSync(b *testing.B) {
	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			f, err := Open(b.TempDir(), Options{Blocks: 1 << 12})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			batch := vecPayload(0x50, n)
			b.SetBytes(int64(n * BlockSize))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, err := range f.WriteV(batch) {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
