//go:build tankdebug

package bufpool

import (
	"strings"
	"testing"
)

// TestPutPoisons: after Put, the full capacity of the buffer reads as
// the poison pattern, so any use-after-Put consumes 0xDB instead of
// plausibly-valid stale bytes.
func TestPutPoisons(t *testing.T) {
	b := Get(1000)
	for i := range b {
		b[i] = 0xAA
	}
	alias := b[:cap(b)] // deliberate contract violation, kept to observe the poison
	Put(b)
	for i, v := range alias {
		if v != poisonByte {
			t.Fatalf("byte %d after Put = %#x, want poison %#x", i, v, poisonByte)
		}
	}
}

// TestDoublePutPanics: a second Put of the same backing array with no
// intervening Get panics, and the panic message carries the first
// Put's stack (this test function must appear in it).
func TestDoublePutPanics(t *testing.T) {
	b := Get(2048)
	Put(b)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Put did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "double Put") || !strings.Contains(msg, "first Put at:") {
			t.Fatalf("panic message missing diagnosis:\n%s", msg)
		}
		if !strings.Contains(msg, "TestDoublePutPanics") {
			t.Fatalf("panic message missing first-Put stack:\n%s", msg)
		}
	}()
	Put(b)
}

// TestGetClearsDoublePutRecord: a buffer recycled through Get may be
// Put again — the pending-Put record is cleared on the way out of the
// pool, whichever buffer Get returns.
func TestGetClearsDoublePutRecord(t *testing.T) {
	b := Get(512)
	Put(b)
	b2 := Get(512)
	Put(b2) // must not panic, even when b2 reuses b's backing array
}

// TestNonClassSizePutUntracked: buffers Put drops to the GC (capacity
// not a class size) are never recycled, so double-putting them is not
// tracked and must not panic.
func TestNonClassSizePutUntracked(t *testing.T) {
	b := make([]byte, 600) // cap 600: not a power of two
	Put(b)
	Put(b)
}
