//go:build !tankdebug

package bufpool

// Release builds: the debug hooks compile to empty, inlinable bodies —
// Get/Put pay nothing for the instrumentation that exists under the
// tankdebug tag (see debug_tank.go).

// tankdebugEnabled gates tests that assert allocation-freedom: the
// debug hooks allocate (stack capture, poison bookkeeping) by design.
const tankdebugEnabled = false

func debugGet(b []byte) {}

func debugPut(b []byte) {}
