//go:build tankdebug

package bufpool

import (
	"fmt"
	"runtime"
	"sync"
)

// tankdebug is the dynamic complement of the static bufown pass: where
// bufown proves the one-Put-per-buffer contract on paths it can see,
// this instrumentation catches what it cannot — cross-goroutine
// lifetimes, data-dependent aliasing — at runtime, loudly:
//
//   - Put poisons the full capacity with 0xDB before parking the
//     buffer, so a use-after-Put reads garbage instead of plausibly
//     stale bytes (the race detector then has a data pattern to blame,
//     and checksums fail deterministically instead of sometimes).
//   - A second Put of the same backing array before an intervening Get
//     panics, printing the stack of the first Put — the half of the
//     bug report a crash at the *second* site never contains.
//
// `make verify` runs the race suite once under this tag; the build is
// never shipped (the poison pass is O(cap) per Put).

// tankdebugEnabled gates tests that assert allocation-freedom: the
// debug hooks allocate (stack capture, poison bookkeeping) by design.
const tankdebugEnabled = true

// poisonByte fills released buffers. 0xDB ("dead buffer") is unlikely
// to be a valid length prefix, opcode, or page checksum, so poisoned
// bytes fail fast wherever they leak.
const poisonByte = 0xDB

var (
	debugMu sync.Mutex
	// firstPut maps a pooled buffer's backing array (keyed by the
	// address of byte 0 at full capacity) to the stack of the Put that
	// parked it. The *byte key keeps the array reachable, which is
	// exactly what a debugging build wants: no recycled-by-GC aliasing
	// of the evidence.
	firstPut = make(map[*byte]string)
)

func backingKey(b []byte) *byte {
	full := b[:cap(b)]
	return &full[0]
}

// debugGet runs inside Get for buffers handed out from the pool: the
// buffer is live again, so the pending-Put record is cleared.
func debugGet(b []byte) {
	if cap(b) == 0 {
		return
	}
	key := backingKey(b)
	debugMu.Lock()
	delete(firstPut, key)
	debugMu.Unlock()
}

// debugPut runs at the top of Put, before the buffer is parked. Only
// class-size buffers are tracked — anything else is dropped to the GC
// by Put and never recycled, so double-putting it cannot corrupt a
// later borrower.
func debugPut(b []byte) {
	c := cap(b)
	if c < MinClass || c > MaxClass || c&(c-1) != 0 {
		return
	}
	key := backingKey(b)
	stack := make([]byte, 16<<10)
	stack = stack[:runtime.Stack(stack, false)]
	debugMu.Lock()
	prior, doubled := firstPut[key]
	if !doubled {
		firstPut[key] = string(stack)
	}
	debugMu.Unlock()
	if doubled {
		panic(fmt.Sprintf("bufpool: double Put of %d-byte buffer with no intervening Get; first Put at:\n%s", c, prior))
	}
	full := b[:c]
	for i := range full {
		full[i] = poisonByte
	}
}
