package bufpool

import "testing"

func TestGetLengthAndClass(t *testing.T) {
	for _, n := range []int{0, 1, MinClass - 1, MinClass, MinClass + 1, 4096, MaxClass} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len %d", n, len(b))
		}
		if c := cap(b); c < MinClass || c&(c-1) != 0 {
			t.Fatalf("Get(%d): cap %d is not a pool class", n, c)
		}
		Put(b)
	}
}

func TestOversizedFallsThrough(t *testing.T) {
	b := Get(MaxClass + 1)
	if len(b) != MaxClass+1 {
		t.Fatalf("len %d", len(b))
	}
	Put(b) // dropped: not a class size — must not panic or poison a pool
}

func TestPutForeignBufferDropped(t *testing.T) {
	// A buffer not carved to a class capacity (e.g. sliced from a larger
	// one) must be rejected, or a later Get would return a short class.
	raw := make([]byte, MinClass*3)
	Put(raw[:MinClass*3]) // cap 1536: not a power of two
	b := Get(MinClass * 2)
	if c := cap(b); c&(c-1) != 0 {
		t.Fatalf("pool served non-class cap %d", c)
	}
}

func TestRecycles(t *testing.T) {
	b := Get(4096)
	b[0] = 0xaa
	Put(b)
	// Contents are undefined but the buffer should (usually) come back;
	// assert only that a recycled buffer has the requested length.
	b2 := Get(4096)
	if len(b2) != 4096 {
		t.Fatalf("len %d", len(b2))
	}
}

// TestSteadyStateAllocFree is the property the pool exists for: once
// warm, a Get/Put cycle performs zero heap allocations — including the
// *[]byte box Put parks the slice header in, which is itself recycled.
func TestSteadyStateAllocFree(t *testing.T) {
	if tankdebugEnabled {
		t.Skip("tankdebug hooks allocate (first-Put stacks) by design")
	}
	// Warm the class and the box pool.
	for i := 0; i < 8; i++ {
		Put(Get(4096))
	}
	avg := testing.AllocsPerRun(100, func() {
		b := Get(4096)
		Put(b)
	})
	// sync.Pool may occasionally miss across GC cycles; anything near
	// one alloc per cycle means the box recycling is broken.
	if avg > 0.5 {
		t.Fatalf("steady-state Get/Put allocates %.2f times per cycle", avg)
	}
}
