// Package bufpool is the installation's shared byte-buffer pool: a
// size-classed sync.Pool serving the page and frame buffers of the hot
// data path — client flush payloads, wire frames, and scatter-gather
// batches — so steady-state sends and receives recycle memory instead
// of allocating it.
//
// The borrow/release contract (DESIGN §12.4):
//
//   - Get(n) hands out a buffer of length n the caller owns exclusively.
//   - Put(b) returns ownership to the pool. After Put the caller must
//     not read or write the buffer: it will be handed, unzeroed, to the
//     next Get of the same class.
//   - Put is OPTIONAL. A buffer whose lifetime became unclear — a
//     retried send, a cancelled call, an aliased payload — is simply
//     dropped and the garbage collector reclaims it. Correctness never
//     depends on a Put; only steady-state allocation rates do. When in
//     doubt, leak to the GC.
//
// Buffers are rounded up to power-of-two classes between MinClass and
// MaxClass; requests outside that range fall through to plain make and
// are never pooled.
package bufpool

import "sync"

const (
	// MinClass is the smallest pooled buffer size. Below this, pooling
	// costs more than the allocation it saves.
	MinClass = 1 << 9 // 512 B
	// MaxClass is the largest pooled buffer size: a full flush batch
	// (32 pages × 4 KiB) plus framing, rounded up.
	MaxClass = 1 << 18 // 256 KiB
)

// pools[i] serves buffers of capacity MinClass<<i. The pool stores
// *[]byte — a pointer-shaped value, so the interface conversion on
// Put/Get is allocation-free.
var pools [10]sync.Pool // 512 B .. 256 KiB

// boxes recycles the *[]byte headers themselves: Put needs a heap box
// to park its slice header in, and taking &b fresh each call would cost
// one allocation per Put — exactly the per-message overhead the pool
// exists to remove. Get returns each emptied box here.
var boxes sync.Pool

func classIndex(n int) int {
	idx, c := 0, MinClass
	for c < n {
		c <<= 1
		idx++
	}
	return idx
}

// Get returns a buffer of length n. Contents are undefined (the buffer
// is recycled unzeroed); the caller owns it until Put.
//
//tank:owns result
func Get(n int) []byte {
	if n > MaxClass {
		return make([]byte, n)
	}
	size := n
	if size < MinClass {
		size = MinClass
	}
	idx := classIndex(size)
	if p, _ := pools[idx].Get().(*[]byte); p != nil {
		b := (*p)[:n]
		*p = nil
		boxes.Put(p)
		debugGet(b)
		return b
	}
	return make([]byte, n, MinClass<<idx)
}

// Put returns a buffer obtained from Get to its size class. Buffers
// whose capacity is not an exact class size (grown, sliced from
// elsewhere, or larger than MaxClass) are dropped for the GC.
func Put(b []byte) {
	debugPut(b)
	c := cap(b)
	if c < MinClass || c > MaxClass || c&(c-1) != 0 {
		return
	}
	p, _ := boxes.Get().(*[]byte)
	if p == nil {
		p = new([]byte)
	}
	*p = b[:c]
	pools[classIndex(c)].Put(p)
}
