// Package simnet simulates the two datagram networks of a Storage Tank
// installation: the general-purpose control network (clients ↔ servers)
// and the storage-area network (clients/servers ↔ disks). A Network
// delivers messages through the discrete-event scheduler with configurable
// latency and loss, and supports the failure vocabulary of the paper:
// directed (asymmetric) link blocks, symmetric partitions, node isolation,
// and node crashes.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Handler receives delivered messages. Handlers run on the scheduler
// goroutine; they may send messages and schedule events but must not block.
type Handler func(env msg.Envelope)

// Config sets a network's delivery characteristics.
type Config struct {
	// Name labels the network in traces ("control", "san").
	Name string
	// DelayMin/DelayMax bound the uniformly distributed one-way latency.
	DelayMin, DelayMax time.Duration
	// LossProb is the probability an individual datagram is silently
	// dropped (in addition to partition/crash drops).
	LossProb float64
}

// DefaultControlConfig models a commodity IP control network.
func DefaultControlConfig() Config {
	return Config{Name: "control", DelayMin: 200 * time.Microsecond, DelayMax: 800 * time.Microsecond}
}

// DefaultSANConfig models a low-latency storage fabric.
func DefaultSANConfig() Config {
	return Config{Name: "san", DelayMin: 50 * time.Microsecond, DelayMax: 150 * time.Microsecond}
}

// Event records one message outcome for observers.
type Event struct {
	At        sim.Time
	Env       msg.Envelope
	Delivered bool
	Reason    DropReason
}

// DropReason explains why a message was not delivered.
type DropReason uint8

const (
	Delivered DropReason = iota
	DropLoss
	DropBlocked
	DropCrashed
	DropNoSuchNode
)

func (r DropReason) String() string {
	switch r {
	case Delivered:
		return "delivered"
	case DropLoss:
		return "loss"
	case DropBlocked:
		return "blocked"
	case DropCrashed:
		return "crashed"
	case DropNoSuchNode:
		return "no-such-node"
	}
	return fmt.Sprintf("DropReason(%d)", uint8(r))
}

// Note renders the reason as the canonical trace.EvTransport note
// ("drop:blocked", "drop:loss", ...). Both this simulated fabric and the
// live fault injector (internal/faultnet via internal/rpcnet) stamp
// dropped messages with this note, so a fault plan executed on either
// produces the same drop taxonomy in traces.
func (r DropReason) Note() string { return "drop:" + r.String() }

type edge struct{ from, to msg.NodeID }

// Network is one simulated datagram fabric.
type Network struct {
	cfg     Config
	sched   *sim.Scheduler
	nodes   map[msg.NodeID]Handler
	blocked map[edge]bool
	crashed map[msg.NodeID]bool
	// Observer, if set, sees every send attempt and its outcome. The
	// cluster uses it for message/byte accounting.
	Observer func(Event)
	// tracer, if set, receives an EvTransport event for every dropped
	// message (Note = DropReason.Note()), matching the live transport's
	// fault injector so sim and live traces are comparable.
	tracer *trace.Tracer

	sent, delivered, dropped uint64
}

// New creates a network on the given scheduler.
func New(s *sim.Scheduler, cfg Config) *Network {
	if cfg.DelayMax < cfg.DelayMin {
		panic("simnet: DelayMax < DelayMin")
	}
	return &Network{
		cfg:     cfg,
		sched:   s,
		nodes:   make(map[msg.NodeID]Handler),
		blocked: make(map[edge]bool),
		crashed: make(map[msg.NodeID]bool),
	}
}

// Name returns the configured network name.
func (n *Network) Name() string { return n.cfg.Name }

// SetTracer attaches a trace bus: every dropped message is emitted as an
// EvTransport event stamped with the sender, the intended receiver, and
// the drop reason's canonical note.
func (n *Network) SetTracer(tr *trace.Tracer) { n.tracer = tr }

// SetLossProb changes the network's random-loss probability at runtime —
// the same knob as faultnet.Faults.SetLossProb, so one fault plan runs
// against both fabrics.
func (n *Network) SetLossProb(p float64) { n.cfg.LossProb = p }

// traceDrop reports a dropped message to the trace bus, if any.
func (n *Network) traceDrop(env msg.Envelope, r DropReason) {
	if !n.tracer.Enabled() {
		return
	}
	n.tracer.Emit(trace.Event{
		Type: trace.EvTransport,
		Node: env.From,
		Time: n.sched.Now(),
		Peer: env.To,
		Note: r.Note(),
	})
}

// Attach registers a node's receive handler. Re-attaching replaces the
// handler (used when a crashed node restarts with fresh state).
func (n *Network) Attach(id msg.NodeID, h Handler) {
	if id == msg.None {
		panic("simnet: attaching NodeID 0")
	}
	n.nodes[id] = h
}

// Detach removes a node entirely.
func (n *Network) Detach(id msg.NodeID) { delete(n.nodes, id) }

// Send transmits a datagram. Delivery (or silent drop) is decided per the
// current partition/crash/loss state at send time, matching a real
// datagram fabric where in-flight packets of a just-partitioned link are
// lost. Send never blocks and gives no feedback to the sender.
func (n *Network) Send(from, to msg.NodeID, payload msg.Message) {
	n.sent++
	env := msg.Envelope{From: from, To: to, Payload: payload}
	drop := func(r DropReason) {
		n.dropped++
		n.traceDrop(env, r)
		if n.Observer != nil {
			n.Observer(Event{At: n.sched.Now(), Env: env, Reason: r})
		}
	}
	switch {
	case n.crashed[from] || n.crashed[to]:
		drop(DropCrashed)
		return
	case n.blocked[edge{from, to}]:
		drop(DropBlocked)
		return
	case n.nodes[to] == nil:
		drop(DropNoSuchNode)
		return
	case n.cfg.LossProb > 0 && n.sched.Rand().Float64() < n.cfg.LossProb:
		drop(DropLoss)
		return
	}
	n.sched.After(n.delay(), func() {
		// Re-check crash at delivery time: a node that died while the
		// datagram was in flight does not receive it.
		if n.crashed[to] || n.nodes[to] == nil {
			n.dropped++
			n.traceDrop(env, DropCrashed)
			if n.Observer != nil {
				n.Observer(Event{At: n.sched.Now(), Env: env, Reason: DropCrashed})
			}
			return
		}
		n.delivered++
		if n.Observer != nil {
			n.Observer(Event{At: n.sched.Now(), Env: env, Delivered: true})
		}
		n.nodes[to](env)
	})
}

func (n *Network) delay() time.Duration {
	span := n.cfg.DelayMax - n.cfg.DelayMin
	if span <= 0 {
		return n.cfg.DelayMin
	}
	return n.cfg.DelayMin + time.Duration(n.sched.Rand().Int63n(int64(span)))
}

// Counts returns (sent, delivered, dropped) totals.
func (n *Network) Counts() (sent, delivered, dropped uint64) {
	return n.sent, n.delivered, n.dropped
}
