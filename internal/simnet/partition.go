package simnet

import "repro/internal/msg"

// Failure controls. All take effect immediately for subsequently sent
// datagrams; messages already in flight still arrive (except to crashed
// nodes). This matches the paper's connection-less network model, where a
// partition simply makes datagrams stop arriving.

// BlockDir blocks the directed link from → to, producing an asymmetric
// partition: `from` can still hear `to` if the reverse direction is open.
// §2 shows that even symmetric partitions of one network are asymmetric
// when views are taken across both networks; this primitive also lets
// tests create asymmetry within a single network.
func (n *Network) BlockDir(from, to msg.NodeID) { n.blocked[edge{from, to}] = true }

// UnblockDir re-opens the directed link.
func (n *Network) UnblockDir(from, to msg.NodeID) { delete(n.blocked, edge{from, to}) }

// Block severs both directions between a and b.
func (n *Network) Block(a, b msg.NodeID) {
	n.BlockDir(a, b)
	n.BlockDir(b, a)
}

// Unblock restores both directions between a and b.
func (n *Network) Unblock(a, b msg.NodeID) {
	n.UnblockDir(a, b)
	n.UnblockDir(b, a)
}

// Partition splits the attached nodes into the given side and everyone
// else: all links crossing the boundary are blocked in both directions.
func (n *Network) Partition(side ...msg.NodeID) {
	in := make(map[msg.NodeID]bool, len(side))
	for _, id := range side {
		in[id] = true
	}
	for a := range n.nodes {
		for b := range n.nodes {
			if a != b && in[a] != in[b] {
				n.BlockDir(a, b)
			}
		}
	}
}

// Isolate blocks every link touching id, in both directions. The isolated
// node keeps running — the paper's "isolated, not failed" computer.
func (n *Network) Isolate(id msg.NodeID) {
	for other := range n.nodes {
		if other != id {
			n.Block(id, other)
		}
	}
}

// Heal removes every block.
func (n *Network) Heal() { n.blocked = make(map[edge]bool) }

// Blocked reports whether the directed link from → to is blocked.
func (n *Network) Blocked(from, to msg.NodeID) bool { return n.blocked[edge{from, to}] }

// Crash marks a node failed: it loses all traffic in both directions,
// including datagrams already in flight toward it. Unlike isolation, a
// crashed node's volatile state is gone; the owner is expected to Attach a
// fresh handler on restart.
func (n *Network) Crash(id msg.NodeID) { n.crashed[id] = true }

// Restart clears the crash flag. The caller re-attaches state as needed.
func (n *Network) Restart(id msg.NodeID) { delete(n.crashed, id) }

// Crashed reports whether the node is currently crashed.
func (n *Network) Crashed(id msg.NodeID) bool { return n.crashed[id] }

// Reachable reports whether a datagram from → to would currently be
// forwarded (ignoring random loss).
func (n *Network) Reachable(from, to msg.NodeID) bool {
	return !n.crashed[from] && !n.crashed[to] && !n.blocked[edge{from, to}] && n.nodes[to] != nil
}

// View returns the set of nodes `of` can currently send to, the paper's
// V(A). With two networks, compare Views across fabrics to exhibit the
// asymmetric joint partitions of §2.
func (n *Network) View(of msg.NodeID) []msg.NodeID {
	var v []msg.NodeID
	for other := range n.nodes {
		if other != of && n.Reachable(of, other) {
			v = append(v, other)
		}
	}
	return v
}
