package simnet

import (
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/sim"
)

type ping struct{}

func (ping) Kind() msg.Kind { return msg.KindControlReq }
func (ping) Size() int      { return 8 }

func newNet(t *testing.T, cfg Config) (*sim.Scheduler, *Network) {
	t.Helper()
	s := sim.NewScheduler(7)
	return s, New(s, cfg)
}

func TestDeliveryWithinDelayBounds(t *testing.T) {
	s, n := newNet(t, Config{Name: "t", DelayMin: time.Millisecond, DelayMax: 2 * time.Millisecond})
	var at sim.Time
	n.Attach(2, func(env msg.Envelope) { at = s.Now() })
	n.Attach(1, func(msg.Envelope) {})
	n.Send(1, 2, ping{})
	s.Run()
	if at < sim.Time(time.Millisecond) || at > sim.Time(2*time.Millisecond) {
		t.Fatalf("delivered at %v, want within [1ms,2ms]", at)
	}
	sent, delivered, dropped := n.Counts()
	if sent != 1 || delivered != 1 || dropped != 0 {
		t.Fatalf("counts = %d/%d/%d", sent, delivered, dropped)
	}
}

func TestFixedDelay(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: time.Millisecond, DelayMax: time.Millisecond})
	var at sim.Time
	n.Attach(2, func(msg.Envelope) { at = s.Now() })
	n.Send(1, 2, ping{})
	s.Run()
	if at != sim.Time(time.Millisecond) {
		t.Fatalf("delivered at %v, want exactly 1ms", at)
	}
}

func TestLoss(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1, LossProb: 0.5})
	got := 0
	n.Attach(2, func(msg.Envelope) { got++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(1, 2, ping{})
	}
	s.Run()
	if got < total/3 || got > 2*total/3 {
		t.Fatalf("got %d of %d with 50%% loss", got, total)
	}
	_, _, dropped := n.Counts()
	if int(dropped)+got != total {
		t.Fatalf("dropped %d + delivered %d != sent %d", dropped, got, total)
	}
}

func TestAsymmetricBlock(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1})
	var got1, got2 int
	n.Attach(1, func(msg.Envelope) { got1++ })
	n.Attach(2, func(msg.Envelope) { got2++ })
	n.BlockDir(1, 2)
	n.Send(1, 2, ping{}) // blocked
	n.Send(2, 1, ping{}) // open
	s.Run()
	if got2 != 0 {
		t.Fatal("blocked direction delivered")
	}
	if got1 != 1 {
		t.Fatal("open direction dropped")
	}
	if !n.Blocked(1, 2) || n.Blocked(2, 1) {
		t.Fatal("Blocked() state wrong")
	}
	n.UnblockDir(1, 2)
	n.Send(1, 2, ping{})
	s.Run()
	if got2 != 1 {
		t.Fatal("unblocked direction still dropping")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1})
	counts := map[msg.NodeID]int{}
	for id := msg.NodeID(1); id <= 4; id++ {
		id := id
		n.Attach(id, func(msg.Envelope) { counts[id]++ })
	}
	n.Partition(1, 2) // {1,2} vs {3,4}
	pairs := [][2]msg.NodeID{{1, 2}, {2, 1}, {1, 3}, {3, 1}, {3, 4}, {2, 4}}
	for _, p := range pairs {
		n.Send(p[0], p[1], ping{})
	}
	s.Run()
	if counts[2] != 1 || counts[1] != 1 || counts[4] != 1 {
		t.Fatalf("intra-side traffic lost: %v", counts)
	}
	if counts[3] != 0 {
		t.Fatalf("cross-partition traffic delivered: %v", counts)
	}
	n.Heal()
	n.Send(1, 3, ping{})
	s.Run()
	if counts[3] != 1 {
		t.Fatal("heal did not restore link")
	}
}

func TestIsolate(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1})
	counts := map[msg.NodeID]int{}
	for id := msg.NodeID(1); id <= 3; id++ {
		id := id
		n.Attach(id, func(msg.Envelope) { counts[id]++ })
	}
	n.Isolate(1)
	n.Send(1, 2, ping{})
	n.Send(2, 1, ping{})
	n.Send(2, 3, ping{})
	s.Run()
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("isolated node exchanged traffic: %v", counts)
	}
	if counts[3] != 1 {
		t.Fatal("unrelated link affected by Isolate")
	}
}

func TestViewAsymmetry(t *testing.T) {
	// Reproduce §2's observation: control-net partition between C1 (id 1)
	// and C2 (id 2); the disk (id 9) is on a separate SAN that did not
	// partition, so views across the two networks differ.
	s := sim.NewScheduler(1)
	control := New(s, Config{Name: "control", DelayMin: 1, DelayMax: 1})
	san := New(s, Config{Name: "san", DelayMin: 1, DelayMax: 1})
	for _, id := range []msg.NodeID{1, 2, 3} { // clients + server on control
		control.Attach(id, func(msg.Envelope) {})
	}
	for _, id := range []msg.NodeID{1, 2, 9} { // clients + disk on SAN
		san.Attach(id, func(msg.Envelope) {})
	}
	control.Isolate(1)
	if len(control.View(1)) != 0 {
		t.Fatal("C1 should see nobody on control net")
	}
	if got := san.View(1); len(got) != 2 {
		t.Fatalf("C1 should still see 2 nodes on SAN, got %v", got)
	}
	// D ∈ V(C1) and C1 ∈ V(D), yet V(C1) ≠ V(D) across networks: C2 is
	// reachable from D but not from C1 on the control net. The joint view
	// is asymmetric even though each single-network partition is symmetric.
	if !san.Reachable(9, 2) || control.Reachable(1, 2) {
		t.Fatal("asymmetric joint partition not established")
	}
}

func TestCrashDropsInFlight(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: time.Millisecond, DelayMax: time.Millisecond})
	got := 0
	n.Attach(2, func(msg.Envelope) { got++ })
	n.Send(1, 2, ping{})
	s.After(500*time.Microsecond, func() { n.Crash(2) })
	s.Run()
	if got != 0 {
		t.Fatal("message delivered to node that crashed while it was in flight")
	}
	if !n.Crashed(2) {
		t.Fatal("Crashed() false")
	}
	n.Restart(2)
	n.Send(1, 2, ping{})
	s.Run()
	if got != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestSendToUnknownNodeDrops(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1})
	var events []Event
	n.Observer = func(e Event) { events = append(events, e) }
	n.Send(1, 99, ping{})
	s.Run()
	if len(events) != 1 || events[0].Delivered || events[0].Reason != DropNoSuchNode {
		t.Fatalf("events = %+v", events)
	}
}

func TestObserverSeesDeliveries(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1})
	n.Attach(2, func(msg.Envelope) {})
	var ev []Event
	n.Observer = func(e Event) { ev = append(ev, e) }
	n.Send(1, 2, ping{})
	s.Run()
	if len(ev) != 1 || !ev[0].Delivered || ev[0].Reason != Delivered {
		t.Fatalf("observer events = %+v", ev)
	}
	if ev[0].Env.From != 1 || ev[0].Env.To != 2 {
		t.Fatalf("envelope = %+v", ev[0].Env)
	}
}

func TestDetach(t *testing.T) {
	s, n := newNet(t, Config{DelayMin: 1, DelayMax: 1})
	got := 0
	n.Attach(2, func(msg.Envelope) { got++ })
	n.Detach(2)
	n.Send(1, 2, ping{})
	s.Run()
	if got != 0 {
		t.Fatal("detached node received")
	}
}

func TestDropReasonStrings(t *testing.T) {
	for r := Delivered; r <= DropNoSuchNode; r++ {
		if r.String() == "" {
			t.Fatalf("empty string for reason %d", r)
		}
	}
	if DropReason(99).String() == "" {
		t.Fatal("unknown reason must format")
	}
}
