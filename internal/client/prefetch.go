package client

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/trace"
)

// Read-ahead: after two consecutive block reads on one object, the
// client speculatively fetches the next Prefetch uncached blocks in one
// vectored SAN read per target disk (the same DiskReadV machinery the
// flush path batches writes with). Prefetch is pure optimization layered
// on the data path, and it must not weaken any protocol invariant:
//
//   - It only ever runs from a read that was admitted under a valid
//     lease and a covering shared lock, and each batch holds ioBegin
//     for its object, so a demand downgrade drains the read-ahead
//     exactly as it drains demand reads — a batch can never complete
//     into a revoked cache.
//   - Completion re-checks that the lock is still held before
//     installing pages (the lease may have expired, or a demand may
//     have been complied with, while the batch was in flight; cancelSAN
//     also fails the batch with ErrStale on expiry and crash).
//   - Installed pages go through Cache.FillPrefetched, which defers to
//     any page a demand read or a write installed first — in
//     particular it never overwrites dirty content.
//
// cache.prefetch_hits / cache.prefetch_wasted attribute the outcome of
// every prefetched page; client.<id>.prefetch_batches counts issued
// batches; trace EvPrefetch records each batch for the event stream.

// prefetchWindow resolves Config.Prefetch (0 = DefaultPrefetch,
// negative = disabled).
func (c *Client) prefetchWindow() int {
	switch {
	case c.cfg.Prefetch < 0:
		return 0
	case c.cfg.Prefetch == 0:
		return DefaultPrefetch
	default:
		return c.cfg.Prefetch
	}
}

// notePrefetchRead advances the per-object sequential detector with a
// demand read of block idx and, once a run is established, issues
// read-ahead for the window after idx.
func (c *Client) notePrefetchRead(ino msg.ObjectID, idx uint64) {
	w := c.prefetchWindow()
	if w <= 0 {
		return
	}
	if c.seqRun[ino] > 0 && c.seqNext[ino] == idx {
		c.seqRun[ino]++
	} else {
		c.seqRun[ino] = 1
		delete(c.pfEnd, ino) // a new scan re-arms read-ahead from scratch
	}
	c.seqNext[ino] = idx + 1
	if c.seqRun[ino] < 2 {
		return
	}
	// Issue a fresh window only when the scan is about to run past the
	// blocks already covered: one w-block batch per w consumed blocks,
	// not a 1-block batch per read.
	if idx+1 < c.pfEnd[ino] {
		return
	}
	o := c.cache.Object(ino)
	if o == nil || !o.HaveMap {
		return
	}
	// Candidates in ascending index order; batches grouped per disk in
	// first-appearance order, so issue order is deterministic (simulated
	// runs must replay identically from a seed).
	type batch struct {
		idxs []uint64
		nums []uint64
	}
	var order []msg.NodeID
	byDisk := make(map[msg.NodeID]*batch)
	end := idx + uint64(w)
	c.pfEnd[ino] = end + 1
	for j := idx + 1; j <= end && j < uint64(len(o.Blocks)); j++ {
		if o.Page(j) != nil || c.prefetchInflight[ino][j] {
			continue
		}
		ref := o.Blocks[j]
		bt := byDisk[ref.Disk]
		if bt == nil {
			bt = &batch{}
			byDisk[ref.Disk] = bt
			order = append(order, ref.Disk)
		}
		bt.idxs = append(bt.idxs, j)
		bt.nums = append(bt.nums, ref.Num)
	}
	for _, d := range order {
		c.issuePrefetch(ino, d, byDisk[d].idxs, byDisk[d].nums)
	}
}

// issuePrefetch sends one read-ahead batch to disk d and installs the
// returned blocks that are still wanted when the reply arrives.
func (c *Client) issuePrefetch(ino msg.ObjectID, d msg.NodeID, idxs, nums []uint64) {
	infl := c.prefetchInflight[ino]
	if infl == nil {
		infl = make(map[uint64]bool)
		c.prefetchInflight[ino] = infl
	}
	for _, j := range idxs {
		infl[j] = true
	}
	c.ioBegin(ino)
	c.prefetchBatches.Inc()
	c.emit(trace.Event{Type: trace.EvPrefetch, Ino: ino, Block: idxs[0],
		Note: fmt.Sprintf("window=%d", len(idxs))})
	c.sanCall(d, func(req msg.ReqID) msg.Message {
		return &msg.DiskReadV{Client: c.id, Req: req, Blocks: nums}
	}, func(reply msg.Message, errno msg.Errno) {
		c.ioEnd(ino)
		for _, j := range idxs {
			delete(infl, j)
		}
		if len(infl) == 0 && len(c.prefetchInflight[ino]) == 0 {
			delete(c.prefetchInflight, ino)
		}
		// The batch was read under the shared lock; install only if both
		// the batch succeeded and that lock still stands (a lease expiry
		// in the window means the content may no longer be ours to cache;
		// cancelSAN delivers ErrStale here on expiry and crash).
		installed := false
		var res *msg.DiskReadVRes
		if errno == msg.OK && reply != nil && c.lockedInos[ino].Covers(msg.LockShared) {
			res = reply.(*msg.DiskReadVRes)
			if len(res.Data) >= len(idxs)*BlockSize {
				installed = true
				for i, j := range idxs {
					if i < len(res.Errs) && res.Errs[i] != msg.OK {
						continue
					}
					var ver uint64
					if i < len(res.Vers) {
						ver = res.Vers[i]
					}
					c.cache.FillPrefetched(ino, j, res.Data[i*BlockSize:(i+1)*BlockSize], ver)
				}
			}
		}
		for i, j := range idxs {
			blockErr := errno
			if blockErr == msg.OK && !installed {
				blockErr = msg.ErrStale
			}
			if blockErr == msg.OK && res != nil && i < len(res.Errs) && res.Errs[i] != msg.OK {
				blockErr = res.Errs[i]
			}
			c.servePrefetchWaiters(ino, j, blockErr)
		}
	})
}

// waitForPrefetch parks a demand read on the in-flight read-ahead batch
// covering idx. The caller verified coverage via prefetchInflight.
func (c *Client) waitForPrefetch(ino msg.ObjectID, idx uint64, done DataCallback) {
	m := c.pfWaiters[ino]
	if m == nil {
		m = make(map[uint64][]DataCallback)
		c.pfWaiters[ino] = m
	}
	m[idx] = append(m[idx], done)
}

// servePrefetchWaiters completes any demand reads parked on block idx
// of a finished read-ahead batch: from the freshly installed page on
// success, or with the batch's error.
func (c *Client) servePrefetchWaiters(ino msg.ObjectID, idx uint64, errno msg.Errno) {
	m := c.pfWaiters[ino]
	ws := m[idx]
	if len(ws) == 0 {
		return
	}
	delete(m, idx)
	if len(m) == 0 {
		delete(c.pfWaiters, ino)
	}
	for _, done := range ws {
		if errno == msg.OK {
			if p := c.cache.Lookup(ino, idx); p != nil {
				c.oracle.Read(c.id, ino, idx, p.Ver)
				done(append([]byte(nil), p.Data...), msg.OK)
				continue
			}
			errno = msg.ErrStale
		}
		done(nil, errno)
	}
}
